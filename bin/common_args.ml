(* Cmdliner arguments shared by the moq subcommands: workload shape
   (--seed/--n/--count/--gap), MOD sources (--db/--updates) and durable
   store knobs (--store/--checkpoint-every/--no-fsync).  One definition per
   flag so every subcommand documents and defaults it identically. *)

open Cmdliner

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed")
let n = Arg.(value & opt int 10 & info [ "n" ] ~doc:"Number of objects")

let db =
  Arg.(value
       & opt (some file) None
       & info [ "db" ] ~doc:"Load the MOD from a file instead of generating one")

(* [extra_names] keeps the historical [--updates] spelling alive where it
   cannot collide with the update-stream file option. *)
let count ?(extra_names = []) ~default () =
  Arg.(value
       & opt int default
       & info ("count" :: extra_names) ~doc:"Number of generated updates")

let gap =
  Arg.(value & opt int 4 & info [ "gap" ] ~doc:"Time between generated updates")

let updates_file =
  Arg.(value
       & opt (some file) None
       & info [ "updates" ]
           ~doc:"Update stream file (mod_io format); generated when absent")

let store_req =
  Arg.(required
       & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Durable store directory (checkpoint.mod + wal.log)")

let store_opt =
  Arg.(value
       & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Durable store directory (a temp directory when absent)")

let checkpoint_every =
  Arg.(value
       & opt int 256
       & info [ "checkpoint-every" ] ~doc:"Checkpoint cadence (accepted updates)")

let no_fsync =
  Arg.(value & flag & info [ "no-fsync" ] ~doc:"Skip fsync per record (benchmarks only)")

let log_level =
  Arg.(value
       & opt string "info"
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Log verbosity: $(b,debug), $(b,info), $(b,warn) or $(b,error)")

let log_json =
  Arg.(value & flag & info [ "log-json" ] ~doc:"Emit logs as JSON lines (on stderr)")
