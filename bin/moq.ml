(* moq — command-line front end for the moving-object query engine.

     moq trace example12        replay the paper's Example 12 / Figure 3
     moq trace figure2          replay Figure 2's redirections
     moq knn ...                k-NN timeline on a random workload
     moq monitor ...            continuous query under a random update stream
     moq classify ...           past/continuing/future classification
     moq reduction ...          the Theorem 2 halting reduction
     moq replay ...             ingest an update stream into a durable store
     moq recover ...            rebuild a MOD from checkpoint + write-ahead log *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module BX = Moq_core.Backend.Exact
module EX = Moq_core.Engine.Make (BX)
module KnnX = Moq_core.Knn.Make (BX)
module MonX = Moq_core.Monitor.Make (BX)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module Classify = Moq_core.Classify
module Gen = Moq_workload.Gen
module Scenario = Moq_workload.Scenario
module Turing = Moq_decide.Turing
module Reduction = Moq_decide.Reduction
module Store = Moq_durable.Store
module Sanitize = Moq_durable.Sanitize
module Wal = Moq_durable.Wal
module Registry = Moq_obs.Registry
module Sink = Moq_obs.Sink
module Export = Moq_obs.Export
module Trace = Moq_obs.Trace
module J = Moq_obs.Json
module Log = Moq_obs.Log
module Recorder = Moq_obs.Recorder
module Explain = Moq_core.Explain
module Agg = Moq_agg.Agg
module AggX = Moq_agg.Agg.Make (BX)
module AlibiX = Moq_agg.Alibi.Make (BX)
module Ingest = Moq_ingest.Ingest

open Cmdliner

let q = Q.of_int

(* Parse and filesystem failures exit with a diagnostic, never a raw
   exception.  Mod_io's string errors look like "line N: msg"; rewrite them
   to the conventional "file:N: msg". *)
let die fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt

let die_parse path e =
  let file_line =
    if String.length e > 5 && String.sub e 0 5 = "line " then begin
      match String.index_opt e ':' with
      | Some i -> Some (String.sub e 5 (i - 5), String.sub e (i + 1) (String.length e - i - 1))
      | None -> None
    end
    else None
  in
  match file_line with
  | Some (line, msg) -> die "%s:%s:%s" path line msg
  | None -> die "%s: %s" path e

let setup_logging level json =
  (match Log.level_of_string level with
   | Ok l -> Log.set_level l
   | Error e -> die "%s" e);
  Log.set_json json

let trace_example12 () =
  let o1, o2, o3, o4 = Scenario.example12_curves () in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 40)
      [ (EX.Obj (1, 0), o1); (EX.Obj (2, 0), o2); (EX.Obj (3, 0), o3); (EX.Obj (4, 0), o4) ]
  in
  let order () =
    String.concat " < "
      (List.map (fun e -> Format.asprintf "%a" EX.pp_label (EX.label e)) (EX.order eng))
  in
  Format.printf "Example 12 (2-NN over [0,40]); initial order: %s@." (order ());
  let emit = function
    | EX.Point i -> Format.printf "  event at t = %a; order: %s@." BX.pp_instant i (order ())
    | EX.Span _ -> ()
  in
  EX.advance eng ~upto:(q 20) ~emit;
  Format.printf "  update chdir(o1) at t = 20@.";
  EX.replace_curve eng ~at:(q 20) (EX.Obj (1, 0)) (Scenario.example12_o1_after_chdir o1);
  EX.advance eng ~upto:(q 40) ~emit;
  Format.printf "done; %d crossings processed@." (EX.stats eng).EX.crossings

let trace_figure2 () =
  let c1, c2 = Scenario.figure2_curves () in
  let eng = EX.create ~start:(q 0) ~horizon:(q 20) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ] in
  let emit = function
    | EX.Point i -> Format.printf "  crossing at t = %a@." BX.pp_instant i
    | EX.Span _ -> ()
  in
  Format.printf "Figure 2: o2 closer, crossing expected at D = 8@.";
  EX.advance eng ~upto:(q 3) ~emit;
  EX.replace_curve eng ~at:(q 3) (EX.Obj (1, 0)) (Scenario.figure2_o1_after_a c1);
  Format.printf "  chdir(o1) at A = 3 (crossing cancelled)@.";
  EX.advance eng ~upto:(q 5) ~emit;
  EX.replace_curve eng ~at:(q 5) (EX.Obj (2, 0)) (Scenario.figure2_o2_after_b c2);
  Format.printf "  chdir(o2) at B = 5 (earlier crossing C expected)@.";
  EX.advance eng ~upto:(q 20) ~emit

let seed_arg = Common_args.seed
let n_arg = Common_args.n
let db_arg = Common_args.db

let load_or_gen dbfile seed n =
  match dbfile with
  | Some path ->
    (match Moq_mod.Mod_io.load_db path with
     | Ok db -> db
     | Error e -> die_parse path e)
  | None -> Gen.uniform_db ~seed ~n ~extent:100 ~speed:6 ()

let load_updates path =
  match Moq_mod.Mod_io.load_updates path with
  | Ok us -> us
  | Error e -> die_parse path e

(* Trace a monitored workload: one span per phase, one per update (annotated
   with the update itself), emitted as an indented span log or JSON. *)
let trace_workload seed n count gap dbfile updates_file as_json =
  let tr = Trace.create () in
  let db = Trace.with_span tr "load-db" (fun () -> load_or_gen dbfile seed n) in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let hi = q (count * gap + 20) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) hi) in
  let m =
    Trace.with_span tr "monitor-init" (fun () -> MonX.create ~db ~gdist ~query ())
  in
  let updates =
    match updates_file with
    | Some path -> load_updates path
    | None -> Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 0) ~gap:(q gap) ~count ()
  in
  Trace.with_span tr "apply-updates" (fun () ->
      List.iter
        (fun u ->
          let sp = Trace.begin_span tr "update" in
          Trace.annotate sp (Format.asprintf "%a" Moq_mod.Update.pp u);
          (match MonX.apply_update m u with
           | Ok () -> ()
           | Error e -> Trace.annotate sp (Format.asprintf "rejected: %a" DB.pp_error e));
          Trace.end_span tr sp)
        updates);
  ignore (Trace.with_span tr "finalize" (fun () -> MonX.finalize m));
  if as_json then print_endline (Moq_obs.Json.to_string (Trace.to_json tr))
  else Format.printf "%a@." Trace.pp tr

(* moq trace pipeline: in-process primary → chaos proxy → follower →
   subscribed client.  One traced UPDATE flows the whole way; the spans it
   left in all four tracers (primary, follower, and the client's two
   connections) are stitched into one causal trace, and the depth-0 stage
   spans — which tile the interval from client send to client delivery —
   are summed and checked against the measured end-to-end latency. *)
let trace_pipeline as_json =
  let module Server = Moq_server.Server in
  let module Client = Moq_server.Client in
  let module Chaos = Moq_chaos.Chaos in
  let module Proto = Moq_proto.Proto in
  let module Sink = Moq_obs.Sink in
  let module Registry = Moq_obs.Registry in
  let fresh_dir tag =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "moq-pipeline-%s-%d" tag (Unix.getpid ()))
    in
    let rec rm p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
    in
    rm d;
    Unix.mkdir d 0o755;
    d
  in
  let loop = "127.0.0.1" in
  let srv_cfg ~dir ~init_db ~follow =
    { (Server.default_config ~listen:(Server.Tcp (loop, 0)) ~store_dir:dir) with
      Server.init_db; fsync = false; follow; trace = true }
  in
  let db = Gen.uniform_db ~seed:42 ~n:4 ~extent:100 ~speed:6 () in
  let pdir = fresh_dir "primary" and fdir = fresh_dir "follower" in
  let primary =
    match Server.start (srv_cfg ~dir:pdir ~init_db:(Some db) ~follow:None) with
    | Ok s -> s
    | Error e -> die "primary: %s" e
  in
  let pport =
    match Server.bound_addr primary with Server.Tcp (_, p) -> p | _ -> die "no port"
  in
  (* the replication link runs through a (quiet) chaos proxy: the stitched
     trace crosses the same path the chaos tests exercise *)
  let proxy =
    Chaos.start ~profile:Chaos.quiet ~seed:7
      ~upstream:(Unix.ADDR_INET (Unix.inet_addr_loopback, pport)) ()
  in
  let follower =
    match
      Server.start
        (srv_cfg ~dir:fdir
           ~init_db:(Some (DB.empty ~dim:2 ~tau:(q 0)))
           ~follow:(Some (Server.Tcp (loop, Chaos.port proxy))))
    with
    | Ok s -> s
    | Error e -> die "follower: %s" e
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Server.repl_connected follower)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if not (Server.repl_connected follower) then die "follower never connected";
  let creg = Registry.create () in
  let csink = Sink.of_registry creg in
  let ctr = Trace.create ~host:"client" () in
  let conn addr =
    match Client.connect ~timeout:10. ~sink:csink ~tracer:ctr addr with
    | Ok c -> c
    | Error e -> die "connect: %s" (Client.error_to_string e)
  in
  let c_up = conn (Server.bound_addr primary) in
  let c_sub = conn (Server.bound_addr follower) in
  (match (Client.hello c_up, Client.hello c_sub) with
   | Ok _, Ok _ -> ()
   | _ -> die "handshake failed");
  (match
     Client.request c_sub
       (Proto.Subscribe { kind = Proto.Sub_knn 1; lo = q 0; hi = q 100 })
   with
   | Ok (Proto.R_subscribe _) -> ()
   | Ok m -> die "subscribe: %s" (Proto.render_server_msg m)
   | Error e -> die "subscribe: %s" (Client.error_to_string e));
  let updates =
    Gen.mixed_stream ~seed:1 ~db ~start:(q 1) ~gap:(q 5) ~count:3 ()
  in
  let warm, traced =
    match List.rev updates with
    | last :: rev_warm -> (List.rev rev_warm, last)
    | [] -> die "empty update stream"
  in
  List.iter
    (fun u ->
      match Client.request c_up (Proto.Update u) with
      | Ok (Proto.R_update _) -> ()
      | Ok m -> die "update: %s" (Proto.render_server_msg m)
      | Error e -> die "update: %s" (Client.error_to_string e))
    warm;
  let ctx = Trace.new_ctx () in
  let t0 = Unix.gettimeofday () in
  (match
     Client.request_attrs c_up
       { Proto.no_attrs with Proto.a_trace = Some (ctx.Trace.trace_id, ctx.Trace.span_id) }
       (Proto.Update traced)
   with
   | Ok (Proto.R_update Proto.V_accepted) -> ()
   | Ok m -> die "traced update not accepted: %s" (Proto.render_server_msg m)
   | Error e -> die "traced update: %s" (Client.error_to_string e));
  (* wait for an event caused by the traced update to reach the client
     through the follower *)
  let rec await deadline =
    if Unix.gettimeofday () > deadline then die "no traced event within 10s"
    else
      match Client.next_event_full ~timeout:0.5 c_sub with
      | Some (_, attrs, _) ->
        (match attrs.Proto.a_trace with
         | Some (tid, _) when tid = ctx.Trace.trace_id -> Unix.gettimeofday ()
         | _ -> await deadline)
      | None -> await deadline
  in
  let t1 = await (t0 +. 10.) in
  let e2e = t1 -. t0 in
  Thread.delay 0.05;  (* let the follower's queue/write spans land *)
  let all_spans =
    List.concat_map Trace.spans
      [ Server.tracer primary; Server.tracer follower; ctr ]
    |> List.filter (fun s ->
        match Trace.span_ctx s with
        | Some c -> c.Trace.trace_id = ctx.Trace.trace_id
        | None -> false)
    |> List.sort (fun a b -> Float.compare (Trace.span_start a) (Trace.span_start b))
  in
  let stage_sum =
    List.fold_left
      (fun acc s -> if Trace.span_depth s = 0 then acc +. Trace.duration s else acc)
      0. all_spans
  in
  let covered = if e2e > 0. then 100. *. stage_sum /. e2e else 0. in
  let ok = Float.abs (stage_sum -. e2e) <= Float.max (0.1 *. e2e) 0.002 in
  if as_json then
    print_endline
      (Moq_obs.Json.to_string
         (Moq_obs.Json.Obj
            [ ("trace", Moq_obs.Json.Str (Trace.ctx_to_string ctx));
              ("e2e_ms", Moq_obs.Json.Float (1e3 *. e2e));
              ("stage_sum_ms", Moq_obs.Json.Float (1e3 *. stage_sum));
              ("covered_pct", Moq_obs.Json.Float covered);
              ("within_tolerance", Moq_obs.Json.Bool ok);
              ("spans",
               Moq_obs.Json.List
                 (List.map
                    (fun s ->
                      Moq_obs.Json.Obj
                        [ ("host", Moq_obs.Json.Str (Trace.span_host s));
                          ("name", Moq_obs.Json.Str (Trace.span_name s));
                          ("depth", Moq_obs.Json.Int (Trace.span_depth s));
                          ("start_ms", Moq_obs.Json.Float (1e3 *. (Trace.span_start s -. t0)));
                          ("dur_ms", Moq_obs.Json.Float (1e3 *. Trace.duration s)) ])
                    all_spans)) ]))
  else begin
    Format.printf "one UPDATE, client → primary → follower → client (trace %s):@."
      (Trace.ctx_to_string ctx);
    List.iter
      (fun s ->
        Format.printf "  [%+8.3f ms] %*s%-10s %-9s %8.3f ms@."
          (1e3 *. (Trace.span_start s -. t0))
          (2 * Trace.span_depth s) "" (Trace.span_name s) (Trace.span_host s)
          (1e3 *. Trace.duration s))
      all_spans;
    Format.printf "stage sum %.3f ms vs end-to-end %.3f ms (%.1f%% covered) — %s@."
      (1e3 *. stage_sum) (1e3 *. e2e) covered
      (if ok then "within tolerance" else "OUT OF TOLERANCE")
  end;
  ignore (Client.request c_up Proto.Bye);
  ignore (Client.request c_sub Proto.Bye);
  Client.close c_up;
  Client.close c_sub;
  Server.stop follower;
  Chaos.stop proxy;
  Server.stop primary;
  if not ok then exit 3

let trace_cmd =
  let scenario =
    Arg.(required
         & pos 0
             (some (enum
                [ ("example12", `Example12); ("figure2", `Figure2);
                  ("workload", `Workload); ("pipeline", `Pipeline) ]))
             None
         & info [] ~docv:"SCENARIO"
             ~doc:"example12, figure2, workload (monitored update stream with \
                   span tracing), or pipeline (one traced update through \
                   primary → follower → client, stitched cross-process)")
  in
  let updates = Common_args.updates_file in
  let count = Common_args.count ~default:10 () in
  let gap = Common_args.gap in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the span log as JSON") in
  let run scenario seed n count gap dbfile updates json =
    match scenario with
    | `Example12 -> trace_example12 ()
    | `Figure2 -> trace_figure2 ()
    | `Workload -> trace_workload seed n count gap dbfile updates json
    | `Pipeline -> trace_pipeline json
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a scenario from the paper, or a workload with span tracing")
    Term.(const run $ scenario $ seed_arg $ n_arg $ count $ gap $ db_arg $ updates $ json)

let generate_run seed n count gap out updates_out =
  let db = Gen.uniform_db ~seed ~n ~extent:100 ~speed:6 () in
  Moq_mod.Mod_io.save_db db out;
  Format.printf "wrote %d objects to %s@." n out;
  match updates_out with
  | Some path ->
    let us = Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 0) ~gap:(q gap) ~count () in
    Moq_mod.Mod_io.save_updates ~dim:(DB.dim db) us path;
    Format.printf "wrote %d updates to %s@." (List.length us) path
  | None -> ()

let generate_cmd =
  let count = Common_args.count ~extra_names:[ "updates" ] ~default:10 () in
  let gap = Common_args.gap in
  let out = Arg.(value & opt string "workload.mod" & info [ "o"; "out" ] ~doc:"Output MOD file") in
  let uout = Arg.(value & opt (some string) None & info [ "updates-out" ] ~doc:"Also write an update stream") in
  Cmd.v (Cmd.info "generate" ~doc:"Generate and save a random workload")
    Term.(const generate_run $ seed_arg $ n_arg $ count $ gap $ out $ uout)

let show_run path =
  match Moq_mod.Mod_io.load_db path with
  | Ok db -> Format.printf "%a@." DB.pp db
  | Error e -> die_parse path e

let show_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print a saved MOD") Term.(const show_run $ path)

(* Backend selection: the sweep, monitor and k-NN pipelines are functors
   over Backend.S, so one flag picks exact, filtered or approx. *)
module BFl = Moq_core.Backend.Filtered

let backend_arg =
  Arg.(value
       & opt
           (enum
              [ ("exact", `Exact); ("filtered", `Filtered);
                ("approx", `Approx); ("sharded-filtered", `ShardedFl) ])
           `Exact
       & info [ "backend" ]
           ~doc:"Numeric backend: $(b,exact) (rational/algebraic), $(b,filtered) \
                 (float-interval fast path with exact fallback, same answers as exact), \
                 $(b,approx) (plain floats), or $(b,sharded-filtered) \
                 (filtered arithmetic under the spatially sharded, \
                 index-pruned sweep driver — same answers as exact)")

let backend_module = function
  | `Exact -> (module BX : Moq_core.Backend.S)
  | `Filtered | `ShardedFl -> (module BFl : Moq_core.Backend.S)
  | `Approx -> (module Moq_core.Backend.Approx : Moq_core.Backend.S)

let print_filter_stats = function
  | `Filtered | `ShardedFl ->
    let s = BFl.filter_stats () in
    Format.printf "filter: %d hits, %d misses (%.1f%% hit rate)@." s.BFl.hits s.BFl.misses
      (100.0 *. float_of_int s.BFl.hits /. float_of_int (max 1 s.BFl.decisions))
  | `Exact | `Approx -> ()

module Knn_pipeline (B : Moq_core.Backend.S) = struct
  module K = Moq_core.Knn.Make (B)

  let run ~db ~gdist ~k ~lo ~hi ~hi_int =
    let r = K.run ~db ~gdist ~k ~lo ~hi in
    Format.printf "%d-NN to the origin over [0, %d] (%d objects):@.%a@." k hi_int
      (DB.cardinal db) K.TL.pp r.K.timeline;
    Format.printf "%d support changes@." r.K.stats.K.E.crossings
end

module Sharded_knn_pipeline (B : Moq_core.Backend.S) = struct
  module Sh = Moq_core.Shard.Make (B)

  let run ~db ~gamma ~k ~lo ~hi ~hi_int =
    let r = Sh.run ~db ~gamma ~k ~lo ~hi () in
    Format.printf "%d-NN to the origin over [0, %d] (%d objects):@.%a@." k hi_int
      (DB.cardinal db) Sh.TL.pp r.Sh.timeline;
    Format.printf "%d support changes@." r.Sh.stats.Sh.E.crossings;
    let s = r.Sh.shard in
    Format.printf "shards: %d/%d touched, %d admitted, %d pruned@."
      s.Sh.shards_touched s.Sh.shards_total s.Sh.admitted s.Sh.pruned
end

let knn_run seed n k hi dbfile backend =
  let db = load_or_gen dbfile seed n in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  BFl.reset_filter_stats ();
  let module B = (val backend_module backend) in
  (match backend with
   | `ShardedFl ->
     let module P = Sharded_knn_pipeline (B) in
     P.run ~db ~gamma ~k ~lo:(q 0) ~hi:(q hi) ~hi_int:hi
   | `Exact | `Filtered | `Approx ->
     let module P = Knn_pipeline (B) in
     P.run ~db ~gdist ~k ~lo:(q 0) ~hi:(q hi) ~hi_int:hi);
  print_filter_stats backend

let knn_cmd =
  let k = Arg.(value & opt int 1 & info [ "k"; "neighbours" ] ~doc:"Number of neighbours") in
  let hi = Arg.(value & opt int 50 & info [ "horizon" ] ~doc:"Interval end") in
  Cmd.v (Cmd.info "knn" ~doc:"k-nearest-neighbour timeline on a random workload")
    Term.(const knn_run $ seed_arg $ n_arg $ k $ hi $ db_arg $ backend_arg)

let monitor_run seed n count gap dbfile =
  let db = load_or_gen dbfile seed n in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let hi = q (count * gap + 20) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) hi) in
  let m = MonX.create ~db ~gdist ~query () in
  let updates = Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 0) ~gap:(q gap) ~count () in
  List.iter
    (fun u ->
      MonX.apply_update_exn m u;
      Format.printf "applied %a@." Moq_mod.Update.pp u)
    updates;
  Format.printf "@.validated timeline:@.%a@." MonX.TL.pp (MonX.finalize m)

let monitor_cmd =
  let count = Common_args.count ~extra_names:[ "updates" ] ~default:5 () in
  let gap = Common_args.gap in
  Cmd.v (Cmd.info "monitor" ~doc:"Monitor a continuing 1-NN query under random updates")
    Term.(const monitor_run $ seed_arg $ n_arg $ count $ gap $ db_arg)

let classify_run lo hi tau =
  let db = DB.empty ~dim:2 ~tau:(q tau) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q lo) (q hi)) in
  Format.printf "interval [%d, %d], last update %d: %a@." lo hi tau Classify.pp
    (Classify.classify db query)

let classify_cmd =
  let lo = Arg.(value & opt int 0 & info [ "lo" ] ~doc:"Interval start") in
  let hi = Arg.(value & opt int 10 & info [ "hi" ] ~doc:"Interval end") in
  let tau = Arg.(value & opt int 5 & info [ "tau" ] ~doc:"MOD last-update time") in
  Cmd.v (Cmd.info "classify" ~doc:"Past/continuing/future classification of an FO(f) query")
    Term.(const classify_run $ lo $ hi $ tau)

let reduction_run machine steps =
  let m = match machine with `Bb3 -> Turing.busy_beaver_3 () | `Loop -> Turing.loop_forever () in
  Format.printf "machine %s, bound %d: query still past? %b@."
    (match machine with `Bb3 -> "busy-beaver-3" | `Loop -> "loop-forever")
    steps
    (Reduction.is_past_up_to m ~max_steps:steps)

let reduction_cmd =
  let machine =
    Arg.(value & opt (enum [ ("bb3", `Bb3); ("loop", `Loop) ]) `Bb3
         & info [ "machine" ] ~doc:"bb3 or loop")
  in
  let steps = Arg.(value & opt int 100 & info [ "steps" ] ~doc:"Step bound") in
  Cmd.v (Cmd.info "reduction" ~doc:"Theorem 2: halting reduction demo")
    Term.(const reduction_run $ machine $ steps)

(* ------------------------------------------------------------------ *)
(* moq agg / alibi / ingest: the workload subsystem                    *)
(* ------------------------------------------------------------------ *)

let rat_of_string_arg what s =
  try Q.of_string s with _ -> die "%s: not a rational: %s" what s

(* "--poi x,y" values; when none are given, [npois] points are spread on
   the diagonal of the default [0,100] extent — deterministic without any
   dependence on the workload seed. *)
let resolve_pois poi_strs npois =
  match poi_strs with
  | _ :: _ ->
    List.map
      (fun s ->
        match String.split_on_char ',' s with
        | [ x; y ] ->
          Qvec.of_list [ rat_of_string_arg "poi" x; rat_of_string_arg "poi" y ]
        | _ -> die "poi: expected x,y (got %s)" s)
      poi_strs
  | [] ->
    if npois < 1 then die "agg: need at least one POI";
    List.init npois (fun i ->
        let c = Q.div (q ((i + 1) * 100)) (q (npois + 1)) in
        Qvec.of_list [ c; c ])

let row_json (r : Agg.row) =
  J.Obj
    [ ("poi", J.Int r.Agg.r_poi);
      ("window", J.Int r.Agg.r_widx);
      ("lo", J.Str (Q.to_string r.Agg.r_lo));
      ("hi", J.Str (Q.to_string r.Agg.r_hi));
      ("count", J.Int r.Agg.r_count);
      ("density", J.Float r.Agg.r_density);
      ("distinct", J.Int r.Agg.r_distinct);
    ]

let agg_run seed n count gap dbfile poi_strs npois d window lo hi check_rescan
    as_json =
  if hi <= lo then die "agg: need lo < hi (got [%d, %d])" lo hi;
  let db = load_or_gen dbfile seed n in
  let pois = resolve_pois poi_strs npois in
  let d = rat_of_string_arg "d" d in
  let window = rat_of_string_arg "window" window in
  let cont =
    try
      AggX.Cont.create ~db ~pois ~d ~window ~lo:(q lo) ~hi:(q hi) ()
    with Invalid_argument m -> die "agg: %s" m
  in
  let updates =
    Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q lo) ~gap:(q gap) ~count ()
  in
  List.iter
    (fun u ->
      match AggX.Cont.apply_update cont u with
      | Ok () -> ()
      | Error e -> die "agg: update rejected: %a" DB.pp_error e)
    updates;
  let rows = AggX.Cont.finalize cont in
  let identical =
    if not check_rescan then None
    else begin
      let ground =
        let db' = DB.apply_all_exn db updates in
        AggX.rescan ~db:db' ~pois ~d ~window ~lo:(q lo) ~hi:(q hi) ()
      in
      Some (AggX.equal_rows rows ground)
    end
  in
  let s = AggX.Cont.stats cont in
  if as_json then begin
    let doc =
      J.Obj
        ([ ("rows", J.List (List.map row_json rows));
           ("pois", J.Int s.Agg.pois);
           ("windows", J.Int s.Agg.windows);
           ("watch_admitted", J.Int s.Agg.admitted);
           ("watch_pruned", J.Int s.Agg.pruned);
           ("updates", J.Int s.Agg.updates);
           ("forwarded", J.Int s.Agg.forwarded);
         ]
         @ match identical with
           | None -> []
           | Some ok -> [ ("rescan_identical", J.Bool ok) ])
    in
    print_endline (J.to_string doc)
  end
  else begin
    List.iter (fun r -> Format.printf "%a@." Agg.pp_row r) rows;
    Format.printf
      "%d POI(s) x %d window(s): %d row(s); watch %d admitted / %d pruned; \
       %d update(s), %d forwarded@."
      s.Agg.pois s.Agg.windows s.Agg.rows s.Agg.admitted s.Agg.pruned
      s.Agg.updates s.Agg.forwarded;
    match identical with
    | None -> ()
    | Some true -> Format.printf "rescan cross-check: bit-identical@."
    | Some false -> die "agg: incremental rows differ from the rescan baseline"
  end;
  match identical with Some false -> exit 1 | _ -> ()

let agg_cmd =
  let count = Common_args.count ~default:10 () in
  let poi =
    Arg.(value & opt_all string []
         & info [ "poi" ] ~docv:"X,Y"
             ~doc:"A place of interest (repeatable); exact rationals or decimals")
  in
  let npois =
    Arg.(value & opt int 2
         & info [ "pois" ]
             ~doc:"Number of POIs to place on the extent diagonal when no \
                   $(b,--poi) is given")
  in
  let d =
    Arg.(value & opt string "25"
         & info [ "dist" ] ~docv:"DIST"
             ~doc:"POI radius: objects within distance DIST count as present")
  in
  let window =
    Arg.(value & opt string "10"
         & info [ "window" ] ~docv:"W" ~doc:"Tumbling window length")
  in
  let lo = Arg.(value & opt int 0 & info [ "lo" ] ~doc:"Aggregation start") in
  let hi = Arg.(value & opt int 40 & info [ "hi" ] ~doc:"Aggregation end") in
  let check =
    Arg.(value & flag
         & info [ "check-rescan" ]
             ~doc:"Recompute every window by a full per-window sweep and \
                   require bit-identical rows")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit rows and stats as JSON") in
  Cmd.v
    (Cmd.info "agg"
       ~doc:"Continuous per-POI aggregation: count, time-weighted density and \
             distinct visitors per tumbling window, maintained incrementally \
             from the update stream")
    Term.(const agg_run $ seed_arg $ n_arg $ count $ Common_args.gap $ db_arg
          $ poi $ npois $ d $ window $ lo $ hi $ check $ json)

let alibi_run seed n dbfile oid1 oid2 d lo hi as_json =
  let db = load_or_gen dbfile seed n in
  let find oid =
    match DB.find db oid with
    | Some tr -> tr
    | None -> die "alibi: no object %d in the MOD" oid
  in
  let o1 = find oid1 and o2 = find oid2 in
  let d = rat_of_string_arg "d" d in
  let verdict = AlibiX.decide ~o1 ~o2 ~d ~lo:(q lo) ~hi:(q hi) in
  if as_json then
    print_endline
      (J.to_string
         (J.Obj
            (( "verdict",
               J.Str (match verdict with
                 | AlibiX.No_meet -> "no_meet"
                 | AlibiX.Meet _ -> "meet") )
             :: (match verdict with
                 | AlibiX.No_meet -> []
                 | AlibiX.Meet w ->
                   [ ("witness", J.Str (Format.asprintf "%a" BX.pp_instant w)) ]))))
  else begin
    match verdict with
    | AlibiX.No_meet ->
      Format.printf
        "alibi holds: objects %d and %d could not have been within %a of \
         each other during [%d, %d]@."
        oid1 oid2 Q.pp d lo hi
    | AlibiX.Meet w ->
      Format.printf
        "no alibi: objects %d and %d are within %a at t = %a (earliest \
         such instant in [%d, %d])@."
        oid1 oid2 Q.pp d BX.pp_instant w lo hi
  end

let alibi_cmd =
  let o1 = Arg.(value & opt int 1 & info [ "o1" ] ~doc:"First object id") in
  let o2 = Arg.(value & opt int 2 & info [ "o2" ] ~doc:"Second object id") in
  let d =
    Arg.(value & opt string "5"
         & info [ "dist" ] ~docv:"DIST"
             ~doc:"Meeting distance; exact rational or decimal")
  in
  let lo = Arg.(value & opt int 0 & info [ "lo" ] ~doc:"Window start") in
  let hi = Arg.(value & opt int 40 & info [ "hi" ] ~doc:"Window end") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as JSON") in
  Cmd.v
    (Cmd.info "alibi"
       ~doc:"The alibi query: decide exactly whether two objects could have \
             been within distance DIST of each other during [lo, hi], with \
             the earliest possible meeting instant as witness")
    Term.(const alibi_run $ seed_arg $ n_arg $ db_arg $ o1 $ o2 $ d $ lo $ hi
          $ json)

let ingest_run csv dim quant terminate out as_json =
  let quant = rat_of_string_arg "quant" quant in
  match Ingest.csv_to_updates ~dim ~quant ~terminate (Moq_mod.Mod_io.read_file csv) with
  | Error e -> die_parse csv e
  | Ok (updates, s) ->
    let stats_line oc =
      Printf.fprintf oc
        "ingested %d sample(s) of %d object(s): %d update(s), %d moving + %d \
         stationary segment(s)\n"
        s.Ingest.samples s.Ingest.objects s.Ingest.updates
        s.Ingest.moving_segments s.Ingest.stationary_segments
    in
    (match out with
     | Some path ->
       Moq_mod.Mod_io.save_updates ~dim updates path;
       if as_json then () else stats_line stdout
     | None ->
       (* update lines to stdout (pipe-friendly), summary to stderr *)
       if not as_json then begin
         List.iter
           (fun u -> print_endline (Moq_mod.Mod_io.update_to_line u))
           updates;
         stats_line stderr
       end);
    if as_json then
      print_endline
        (J.to_string
           (J.Obj
              [ ("samples", J.Int s.Ingest.samples);
                ("objects", J.Int s.Ingest.objects);
                ("updates", J.Int s.Ingest.updates);
                ("moving_segments", J.Int s.Ingest.moving_segments);
                ("stationary_segments", J.Int s.Ingest.stationary_segments);
              ]))

let ingest_cmd =
  let csv =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"CSV" ~doc:"Trace file: oid,t,x,y rows")
  in
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~doc:"Coordinate dimension") in
  let quant =
    Arg.(value & opt string "1/10"
         & info [ "quant" ] ~docv:"Q"
             ~doc:"Quantisation threshold: inter-sample displacement of \
                   length <= Q parks the object instead of moving it")
  in
  let terminate =
    Arg.(value & flag
         & info [ "terminate" ]
             ~doc:"Terminate each object at its last sample instead of \
                   parking it")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the update stream here (mod_io format) instead of \
                   stdout")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON") in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Turn a sampled GPS-style CSV trace into a piecewise-linear \
             update stream: exact pass-through of moving samples, \
             sub-threshold jitter absorbed as stationary segments, \
             equal-time samples serialized by an arbitrarily small rational \
             deferral")
    Term.(const ingest_run $ csv $ dim $ quant $ terminate $ out $ json)

(* ------------------------------------------------------------------ *)
(* moq explain: plan + cost report for one query run                   *)
(* ------------------------------------------------------------------ *)

let backend_name = function
  | `Exact -> "exact"
  | `Filtered -> "filtered"
  | `Approx -> "approx"
  | `ShardedFl -> "sharded-filtered"

(* Runs one query under an instrumented sink and flattens the functorized
   engine stats / hot lists into Explain's plain data. *)
module Explain_pipeline (B : Moq_core.Backend.S) = struct
  module Sw = Moq_core.Sweep.Make (B)
  module K = Moq_core.Knn.Make (B)
  module Sh = Moq_core.Shard.Make (B)

  let run_knn ~sink ~db ~gdist ~k ~lo ~hi =
    let r = K.run_obs ~sink ~db ~gdist ~k ~lo ~hi in
    let s = r.K.stats in
    let sweep =
      { Explain.batches = s.K.E.batches; crossings = s.K.E.crossings;
        births = s.K.E.births; deaths = s.K.E.deaths; jumps = s.K.E.jumps;
        swaps = s.K.E.swaps; comparisons = s.K.E.comparisons;
        support_changes = s.K.E.crossings + s.K.E.births + s.K.E.deaths }
    in
    let hot =
      List.map
        (fun (h : K.E.hot) ->
          { Explain.oid = h.K.E.h_oid; comparisons = h.K.E.h_comparisons;
            swaps = h.K.E.h_swaps })
        r.K.hot
    in
    (sweep, hot, List.length r.K.timeline, None)

  let run_knn_sharded ~sink ~db ~gamma ~k ~lo ~hi =
    let r = Sh.run_obs ~sink ~db ~gamma ~k ~lo ~hi () in
    let s = r.Sh.stats in
    let sweep =
      { Explain.batches = s.Sh.E.batches; crossings = s.Sh.E.crossings;
        births = s.Sh.E.births; deaths = s.Sh.E.deaths; jumps = s.Sh.E.jumps;
        swaps = s.Sh.E.swaps; comparisons = s.Sh.E.comparisons;
        support_changes = s.Sh.E.crossings + s.Sh.E.births + s.Sh.E.deaths }
    in
    let hot =
      List.map
        (fun (h : Sh.E.hot) ->
          { Explain.oid = h.Sh.E.h_oid; comparisons = h.Sh.E.h_comparisons;
            swaps = h.Sh.E.h_swaps })
        r.Sh.hot
    in
    let sb = r.Sh.shard in
    let shards =
      { Explain.s_total = sb.Sh.shards_total; s_touched = sb.Sh.shards_touched;
        s_admitted = sb.Sh.admitted; s_pruned = sb.Sh.pruned;
        s_merge_ops = sb.Sh.frontier_merge_ops; s_events = sb.Sh.shard_events;
        s_band = sb.Sh.band }
    in
    (sweep, hot, List.length r.Sh.timeline, Some shards)

  let run_past ~sink ~db ~gdist ~query =
    let r = Sw.run_obs ~sink ~db ~gdist ~query in
    let s = r.Sw.stats in
    let sweep =
      { Explain.batches = s.Sw.E.batches; crossings = s.Sw.E.crossings;
        births = s.Sw.E.births; deaths = s.Sw.E.deaths; jumps = s.Sw.E.jumps;
        swaps = s.Sw.E.swaps; comparisons = s.Sw.E.comparisons;
        support_changes = r.Sw.support_changes }
    in
    let hot =
      List.map
        (fun (h : Sw.E.hot) ->
          { Explain.oid = h.Sw.E.h_oid; comparisons = h.Sw.E.h_comparisons;
            swaps = h.Sw.E.h_swaps })
        r.Sw.hot
    in
    (sweep, hot, List.length r.Sw.timeline, None)
end

let zero_sweep =
  { Explain.batches = 0; crossings = 0; births = 0; deaths = 0; jumps = 0;
    swaps = 0; comparisons = 0; support_changes = 0 }

let explain_report kind seed n k lo hi dbfile backend =
  if hi < lo then die "explain: empty window [%d, %d]" lo hi;
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  let t0 = Unix.gettimeofday () in
  let db = load_or_gen dbfile seed n in
  let t_load = Unix.gettimeofday () -. t0 in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q lo) (q hi)) in
  let classification =
    Format.asprintf "%a" Classify.pp (Classify.classify db query)
  in
  BFl.reset_filter_stats ();
  let module B = (val backend_module backend) in
  let module P = Explain_pipeline (B) in
  let t1 = Unix.gettimeofday () in
  let agg_block = ref None in
  let kind_s, qdesc, classification, (sweep, hot, pieces, shards) =
    match kind with
    | `Agg ->
      (* continuous POI aggregation over the generated workload: k POIs on
         the extent diagonal, the monitor/harvest path under a short mixed
         update stream; always evaluated on the exact backend *)
      let pois = resolve_pois [] (max 1 k) in
      let cont =
        try
          AggX.Cont.create ~sink ~db ~pois ~d:(q 25) ~window:(q 10)
            ~lo:(q lo) ~hi:(q hi) ()
        with Invalid_argument m -> die "explain agg: %s" m
      in
      let gap = Q.div (Q.sub (q hi) (q lo)) (q 12) in
      let updates =
        if Q.sign gap > 0 then
          Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q lo) ~gap ~count:10 ()
        else []
      in
      List.iter (fun u -> ignore (AggX.Cont.apply_update cont u)) updates;
      let rows = AggX.Cont.finalize cont in
      let s = AggX.Cont.stats cont in
      agg_block :=
        Some
          { Explain.a_pois = s.Agg.pois; a_windows = s.Agg.windows;
            a_rows = s.Agg.rows; a_admitted = s.Agg.admitted;
            a_pruned = s.Agg.pruned; a_updates = s.Agg.updates;
            a_forwarded = s.Agg.forwarded };
      ( "agg",
        Printf.sprintf
          "%d POI(s), radius 25, window 10, aggregated over [%d, %d]"
          (List.length pois) lo hi,
        "continuing",
        (zero_sweep, [], List.length rows, None) )
    | `Knn ->
      ( "knn",
        Printf.sprintf "%d-NN to the origin over [%d, %d]" k lo hi,
        "n/a",
        match backend with
        | `ShardedFl ->
          P.run_knn_sharded ~sink ~db ~gamma ~k ~lo:(q lo) ~hi:(q hi)
        | `Exact | `Filtered | `Approx ->
          P.run_knn ~sink ~db ~gdist ~k ~lo:(q lo) ~hi:(q hi) )
    | `Past ->
      ( "past",
        Printf.sprintf "nearest-neighbour query swept over [%d, %d]" lo hi,
        classification,
        P.run_past ~sink ~db ~gdist ~query )
    | `Cql ->
      (* the Definition 5 classification is the plan: a past query is
         frozen and swept in full; otherwise the sweep belongs to the
         monitor's semi-evaluation and nothing runs here *)
      let run =
        if classification = "past" then P.run_past ~sink ~db ~gdist ~query
        else (zero_sweep, [], 0, None)
      in
      ( "cql",
        Printf.sprintf "FO(f) nearest query over [%d, %d] — %s" lo hi
          (if classification = "past" then "frozen, swept in full (Theorem 4)"
           else "semi-evaluated by the monitor (not swept here)"),
        classification,
        run )
  in
  let t_run = Unix.gettimeofday () -. t1 in
  (match backend with
   | `Filtered | `ShardedFl -> BFl.publish sink
   | `Exact | `Approx -> ());
  let filter =
    match backend with
    | `Filtered | `ShardedFl ->
      let s = BFl.filter_stats () in
      Some
        { Explain.f_hits = s.BFl.hits; f_misses = s.BFl.misses;
          f_decisions = s.BFl.decisions; f_fallback_ns = s.BFl.fallback_ns;
          f_straddles = s.BFl.straddles }
    | `Exact | `Approx -> None
  in
  let backend_str =
    match kind with `Agg -> "exact" | _ -> backend_name backend
  in
  Explain.make ~kind:kind_s ~query:qdesc ~backend:backend_str
    ~classification ~n_objects:(DB.cardinal db) ~lo:(float_of_int lo)
    ~hi:(float_of_int hi) ~timeline_pieces:pieces ~sweep ?filter ?shards
    ?agg:!agg_block ~hot
    ~phases:
      [ { Explain.name = "load_db"; ns = 1e9 *. t_load };
        { Explain.name = "run"; ns = 1e9 *. t_run } ]
    ~counters:(Registry.flatten reg) ()

let explain_run kind seed n k lo hi dbfile backend as_json log_level log_json =
  setup_logging log_level log_json;
  let report = explain_report kind seed n k lo hi dbfile backend in
  if as_json then print_endline (J.to_string (Explain.to_json report))
  else print_string (Explain.to_text report)

let explain_cmd =
  let kind =
    Arg.(value
         & pos 0
             (enum
                [ ("knn", `Knn); ("past", `Past); ("cql", `Cql);
                  ("agg", `Agg) ])
             `Knn
         & info [] ~docv:"KIND"
             ~doc:"What to explain: $(b,knn) (k-NN timeline), $(b,past) \
                   (nearest-neighbour past query), $(b,cql) \
                   (classification-driven: sweeps only if the query is past), \
                   or $(b,agg) (continuous POI aggregation — the agg block)")
  in
  let k =
    Arg.(value & opt int 2
         & info [ "k"; "neighbours" ]
             ~doc:"Neighbours for knn; POI count for agg")
  in
  let lo = Arg.(value & opt int 0 & info [ "lo" ] ~doc:"Window start") in
  let hi = Arg.(value & opt int 50 & info [ "hi" ] ~doc:"Window end") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON (stable schema)") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Run one query and report its plan and cost: backend chosen, \
             sweep events and comparisons, Lemma 9 per-event work vs bound, \
             filter hits/misses and straddled instants, hottest objects")
    Term.(const explain_run $ kind $ seed_arg $ n_arg $ k $ lo $ hi $ db_arg
          $ backend_arg $ json $ Common_args.log_level $ Common_args.log_json)

(* ------------------------------------------------------------------ *)
(* moq blackbox: read a flight-recorder dump, correlate with the WAL   *)
(* ------------------------------------------------------------------ *)

let blackbox_correlate d wal_path =
  match Wal.read wal_path with
  | Error e -> Error (Printf.sprintf "%s: %s" wal_path e)
  | Ok w ->
    let wal_last =
      match List.rev w.Wal.updates with [] -> None | u :: _ -> Some u
    in
    let rec_last =
      List.fold_left
        (fun acc (e : Recorder.event) ->
          if e.Recorder.kind = "update_admitted" then Some e else acc)
        None d.Recorder.d_events
    in
    let field e name =
      match List.assoc_opt name e.Recorder.fields with
      | Some (J.Str s) -> Some s
      | Some (J.Int i) -> Some (string_of_int i)
      | _ -> None
    in
    (match (wal_last, rec_last) with
     | None, None -> Ok "both empty: no updates in WAL, none recorded"
     | Some u, Some e ->
       let w_oid = string_of_int (Moq_mod.Update.oid u) in
       let w_tau = Q.to_string (Moq_mod.Update.time u) in
       if field e "oid" = Some w_oid && field e "tau" = Some w_tau then
         Ok
           (Printf.sprintf
              "last recorded update (oid %s at tau %s) agrees with the WAL tail"
              w_oid w_tau)
       else
         Error
           (Printf.sprintf
              "DIVERGED: WAL tail has oid %s at tau %s; recorder has oid %s at tau %s"
              w_oid w_tau
              (Option.value ~default:"?" (field e "oid"))
              (Option.value ~default:"?" (field e "tau")))
     | Some u, None ->
       Error
         (Printf.sprintf
            "WAL tail has oid %d at tau %s but the recorder saw no admitted update \
             (ring wrapped? dropped=%d)"
            (Moq_mod.Update.oid u)
            (Q.to_string (Moq_mod.Update.time u))
            d.Recorder.d_dropped)
     | None, Some e ->
       Error
         (Printf.sprintf
            "recorder admitted an update (oid %s at tau %s) absent from the WAL"
            (Option.value ~default:"?" (field e "oid"))
            (Option.value ~default:"?" (field e "tau"))))

let blackbox_run dump_path wal_with as_json =
  match Recorder.load dump_path with
  | Error e -> die "%s" e
  | Ok d ->
    let wal_path =
      Option.map
        (fun p -> if Sys.is_directory p then Store.wal_file p else p)
        wal_with
    in
    let correlation = Option.map (blackbox_correlate d) wal_path in
    if as_json then begin
      let corr_json =
        match correlation with
        | None -> []
        | Some (Ok m) ->
          [ ("wal_agrees", J.Bool true); ("wal_verdict", J.Str m) ]
        | Some (Error m) ->
          [ ("wal_agrees", J.Bool false); ("wal_verdict", J.Str m) ]
      in
      print_endline
        (J.to_string
           (J.Obj
              ([ ("file", J.Str dump_path);
                 ("reason", J.Str d.Recorder.d_reason);
                 ("wall", J.Float d.Recorder.d_wall);
                 ("pid", J.Int d.Recorder.d_pid);
                 ("recorded", J.Int d.Recorder.d_recorded);
                 ("dropped", J.Int d.Recorder.d_dropped);
                 ("events",
                  J.List
                    (List.map
                       (fun (e : Recorder.event) ->
                         J.Obj
                           [ ("seq", J.Int e.Recorder.seq);
                             ("ts", J.Float e.Recorder.ts);
                             ("kind", J.Str e.Recorder.kind);
                             ("fields", J.Obj e.Recorder.fields) ])
                       d.Recorder.d_events)) ]
              @ corr_json)))
    end
    else begin
      Format.printf "flight recorder dump %s@." dump_path;
      Format.printf "  reason    %s@." d.Recorder.d_reason;
      Format.printf "  pid       %d@." d.Recorder.d_pid;
      Format.printf "  recorded  %d event(s), %d overwritten@."
        d.Recorder.d_recorded d.Recorder.d_dropped;
      List.iter
        (fun (e : Recorder.event) ->
          Format.printf "  [%6d] %+9.3fs  %-20s %s@." e.Recorder.seq
            (e.Recorder.ts -. d.Recorder.d_wall)
            e.Recorder.kind
            (String.concat " "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=%s" k (J.to_string v))
                  e.Recorder.fields)))
        d.Recorder.d_events;
      match correlation with
      | None -> ()
      | Some (Ok m) -> Format.printf "wal: %s@." m
      | Some (Error m) -> Format.printf "wal: %s@." m
    end;
    match correlation with Some (Error _) -> exit 5 | _ -> ()

let blackbox_cmd =
  let dump =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DUMP"
         ~doc:"A flight-<ms>-<reason>.json dump file")
  in
  let wal =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"PATH"
             ~doc:"Correlate against this write-ahead log (a wal.log file or \
                   a store directory); exits 5 when the dump's last admitted \
                   update disagrees with the WAL tail")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the dump (and verdict) as JSON") in
  Cmd.v
    (Cmd.info "blackbox"
       ~doc:"Pretty-print a flight-recorder dump and correlate it against \
             the store's write-ahead log")
    Term.(const blackbox_run $ dump $ wal $ json)

(* ------------------------------------------------------------------ *)
(* Durable store: replay (ingest) and recover                          *)
(* ------------------------------------------------------------------ *)

let store_arg = Common_args.store_req

let replay_run store_dir dbfile updates_file seed n count gap every no_fsync
    log_level log_json =
  setup_logging log_level log_json;
  let fsync = not no_fsync in
  let store =
    if Sys.file_exists (Filename.concat store_dir "checkpoint.mod") then begin
      match Store.open_ ~fsync ~checkpoint_every:every ~dir:store_dir () with
      | Ok (store, r) ->
        Format.printf "opened store %s: %a@." store_dir Store.pp_recovery r;
        (match r.Store.tail with
         | Wal.Clean -> ()
         | Wal.Corrupt _ as tail ->
           Format.eprintf "warning: %s/wal.log %a (tail dropped)@." store_dir Wal.pp_tail tail);
        store
      | Error e -> die "%s" e
    end
    else begin
      let db = load_or_gen dbfile seed n in
      Format.printf "initialized store %s from %s (%d objects)@." store_dir
        (match dbfile with Some p -> p | None -> "a generated workload")
        (DB.cardinal db);
      Store.init ~fsync ~checkpoint_every:every ~dir:store_dir db
    end
  in
  let updates =
    match updates_file with
    | Some path ->
      (match Moq_mod.Mod_io.load_updates path with
       | Ok us -> us
       | Error e -> die_parse path e)
    | None ->
      Gen.mixed_stream ~seed:(seed + 1) ~db:(Store.db store) ~start:(Store.clock store)
        ~gap:(q gap) ~count ()
  in
  let san = Sanitize.create () in
  List.iter (fun u -> ignore (Store.ingest store san u)) updates;
  Store.close store;
  Format.printf "ingested %d updates: %a@." (List.length updates) Sanitize.pp_counters
    (Sanitize.counters san);
  (match Sanitize.quarantined san with
   | [] -> ()
   | held -> Format.printf "%d updates left in quarantine@." (List.length held));
  Format.printf "store now at clock %s with %d objects@."
    (Q.to_string (Store.clock store)) (DB.cardinal (Store.db store))

let replay_cmd =
  let updates = Common_args.updates_file in
  let count = Common_args.count ~default:20 () in
  let gap = Common_args.gap in
  let every = Common_args.checkpoint_every in
  let no_fsync = Common_args.no_fsync in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Ingest an update stream into a durable store through the sanitizer (WAL + checkpoints)")
    Term.(const replay_run $ store_arg $ db_arg $ updates $ seed_arg $ n_arg $ count $ gap $ every $ no_fsync
          $ Common_args.log_level $ Common_args.log_json)

let recover_run store_dir log_level log_json =
  setup_logging log_level log_json;
  match Store.recover ~dir:store_dir with
  | Ok r ->
    Format.printf "%a@." Store.pp_recovery r;
    (* machine-greppable recovery stats, kept off stdout *)
    Format.eprintf
      "recovery-stats: checkpoint=%s replayed=%d dropped=%d stale=%d invalid=%d tail=%a@."
      (Filename.concat store_dir "checkpoint.mod")
      r.Store.replayed
      (r.Store.stale_skipped + r.Store.invalid_skipped)
      r.Store.stale_skipped r.Store.invalid_skipped Wal.pp_tail r.Store.tail;
    (match r.Store.tail with
     | Wal.Clean -> ()
     | Wal.Corrupt _ as tail ->
       Format.eprintf "warning: %s/wal.log %a; recovered to the last good record@."
         store_dir Wal.pp_tail tail)
  | Error e -> die "recovery failed: %s" e

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Reconstruct the MOD and clock from a store's checkpoint + write-ahead log")
    Term.(const recover_run $ store_arg $ Common_args.log_level $ Common_args.log_json)

(* ------------------------------------------------------------------ *)
(* Telemetry: replay a workload end to end with a live sink, dump the  *)
(* registry.                                                           *)
(* ------------------------------------------------------------------ *)

module Stats_pipeline (B : Moq_core.Backend.S) = struct
  module Mon = Moq_core.Monitor.Make (B)
  module K = Moq_core.Knn.Make (B)
  module Sh = Moq_core.Shard.Make (B)

  (* Top-5 hottest objects (per-object sweep-cost attribution) as flat
     gauges: rank-indexed names keep the registry's flat namespace, and the
     coverage gauge says how concentrated the cost is. *)
  let publish_hot ~sink hots =
    let total =
      List.fold_left (fun a (h : Mon.E.hot) -> a + h.Mon.E.h_comparisons) 0 hots
    in
    let top = ref 0 in
    List.iteri
      (fun i (h : Mon.E.hot) ->
        if i < 5 then begin
          top := !top + h.Mon.E.h_comparisons;
          Sink.set sink (Printf.sprintf "moq_hot_oid_%d" i)
            (float_of_int h.Mon.E.h_oid);
          Sink.set sink (Printf.sprintf "moq_hot_comparisons_%d" i)
            (float_of_int h.Mon.E.h_comparisons);
          Sink.set sink (Printf.sprintf "moq_hot_swaps_%d" i)
            (float_of_int h.Mon.E.h_swaps)
        end)
      hots;
    if total > 0 then
      Sink.set sink "moq_hot_coverage_pct"
        (100. *. float_of_int !top /. float_of_int total)

  let run ~sink ~store ~san ~db ~gamma ~gdist ~query ~updates ~hi ~sharded =
    let m = Mon.create ~sink ~db ~gdist ~query () in
    List.iter
      (fun u ->
        match Store.ingest store san u with
        | Sanitize.Accepted _ ->
          (match Mon.apply_update m u with Ok () -> () | Error _ -> ())
        | Sanitize.Rejected _ | Sanitize.Quarantined _ -> ())
      updates;
    ignore (Mon.audit_and_heal m);
    publish_hot ~sink (Mon.hot_objects m);
    ignore (Mon.finalize m);
    Store.close store;
    (* past-query path, so the sweep metrics are populated too *)
    if sharded then
      ignore (Sh.run_obs ~sink ~db:(Store.db store) ~gamma ~k:2 ~lo:(q 0) ~hi ())
    else ignore (K.run_obs ~sink ~db:(Store.db store) ~gdist ~k:2 ~lo:(q 0) ~hi)
end

let stats_run seed n count gap dbfile updates_file store_dir every format backend
    log_level log_json =
  setup_logging log_level log_json;
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  let dir =
    match store_dir with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "moq-stats-%d" (Unix.getpid ()))
  in
  let db = load_or_gen dbfile seed n in
  let store = Store.init ~fsync:false ~checkpoint_every:every ~sink ~dir db in
  let san = Sanitize.create ~sink () in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let hi = q (count * gap + 20) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) hi) in
  let updates =
    match updates_file with
    | Some path -> load_updates path
    | None -> Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 0) ~gap:(q gap) ~count ()
  in
  BFl.reset_filter_stats ();
  let module B = (val backend_module backend) in
  let module P = Stats_pipeline (B) in
  P.run ~sink ~store ~san ~db ~gamma ~gdist ~query ~updates ~hi
    ~sharded:(backend = `ShardedFl);
  (* filtered backend: surface moq_filter_* alongside the engine metrics *)
  (match backend with
   | `Filtered | `ShardedFl -> BFl.publish sink
   | `Exact | `Approx -> ());
  (match Store.recover_obs ~sink ~dir with Ok _ -> () | Error _ -> ());
  match format with
  | `Json -> print_endline (Export.json_string reg)
  | `Prometheus -> print_string (Export.prometheus reg)

let stats_cmd =
  let updates = Common_args.updates_file in
  let count = Common_args.count ~default:20 () in
  let gap = Common_args.gap in
  let store = Common_args.store_opt in
  let every = Common_args.checkpoint_every in
  let format =
    Arg.(value
         & opt (enum [ ("json", `Json); ("prometheus", `Prometheus) ]) `Json
         & info [ "format" ] ~doc:"json or prometheus")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Replay a workload through the instrumented store, monitor and sweep; dump the metric registry")
    Term.(const stats_run $ seed_arg $ n_arg $ count $ gap $ db_arg $ updates $ store $ every $ format $ backend_arg
          $ Common_args.log_level $ Common_args.log_json)

(* ------------------------------------------------------------------ *)
(* Serving: moq serve (the concurrent MOD server) and moq client (a    *)
(* scriptable moqp driver)                                             *)
(* ------------------------------------------------------------------ *)

module Server = Moq_server.Server
module Client = Moq_server.Client
module Proto = Moq_proto.Proto
module Chaos = Moq_chaos.Chaos

let default_listen = "tcp:127.0.0.1:7407"

let parse_addr s =
  match Server.addr_of_string s with Ok a -> a | Error e -> die "%s" e

let serve_run listen store_dir dbfile seed n every no_fsync max_sessions max_subs
    queue_soft queue_hwm idle_timeout follow digest_every trace slow_query_ms
    no_hot_objects flight_capacity log_level log_json =
  setup_logging log_level log_json;
  let listen = parse_addr listen in
  let follow = Option.map parse_addr follow in
  let init_db =
    if Sys.file_exists (Filename.concat store_dir "checkpoint.mod") then None
    else if follow <> None then
      (* a follower's real state arrives with the bootstrap snapshot *)
      Some (DB.empty ~dim:2 ~tau:(q 0))
    else Some (load_or_gen dbfile seed n)
  in
  let cfg =
    { (Server.default_config ~listen ~store_dir) with
      Server.init_db; fsync = not no_fsync; checkpoint_every = every;
      max_sessions; max_subs_per_session = max_subs; queue_soft; queue_hwm;
      idle_timeout; follow; repl_digest_every = digest_every; trace;
      slow_query_ms; hot_objects = not no_hot_objects; flight_capacity }
  in
  match Server.start cfg with
  | Error e -> die "%s" e
  | Ok srv ->
    let stopped = ref false in
    let stop _ =
      Server.request_stop srv;
      stopped := true
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (* SIGQUIT: dump the flight recorder and keep serving — the live
       counterpart of the on-crash dump *)
    (try
       Sys.set_signal Sys.sigquit
         (Sys.Signal_handle
            (fun _ -> ignore (Server.flight_dump srv ~reason:"sigquit")))
     with Invalid_argument _ -> ());
    Format.printf "listening on %a (store %s, %d objects, clock %s)@."
      Server.pp_addr (Server.bound_addr srv) store_dir
      (DB.cardinal (Server.db_snapshot srv))
      (Q.to_string (Server.clock srv));
    (match follow with
     | Some p -> Format.printf "following %a as a read replica@." Server.pp_addr p
     | None -> ());
    (* keep the main thread in an interruptible sleep: with every server
       thread parked in a blocking syscall, a pending signal's OCaml handler
       only runs when some thread re-enters OCaml code *)
    while not !stopped do
      Thread.delay 0.2
    done;
    Server.run srv;
    Format.printf "drained; store checkpointed@."

let serve_cmd =
  let listen =
    Arg.(value & opt string default_listen
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Listen address: tcp:HOST:PORT, unix:PATH, or a bare port \
                   (port 0 picks a free one)")
  in
  let max_sessions =
    Arg.(value & opt int 64 & info [ "max-sessions" ] ~doc:"Concurrent session cap")
  in
  let max_subs =
    Arg.(value & opt int 8 & info [ "max-subs" ] ~doc:"Subscriptions per session cap")
  in
  let queue_soft =
    Arg.(value & opt int 64
         & info [ "queue-soft" ] ~doc:"Per-session queue length above which event frames coalesce")
  in
  let queue_hwm =
    Arg.(value & opt int 256
         & info [ "queue-hwm" ] ~doc:"Per-session queue length above which the oldest events drop")
  in
  let idle_timeout =
    Arg.(value & opt float 300.
         & info [ "idle-timeout" ] ~doc:"Seconds without a request before a session closes; 0 disables")
  in
  let follow =
    Arg.(value & opt (some string) None
         & info [ "follow" ] ~docv:"ADDR"
             ~doc:"Run as a read replica of this primary (tcp:HOST:PORT or \
                   unix:PATH): bootstrap from its snapshot, tail its commit \
                   stream, reject local UPDATEs")
  in
  let digest_every =
    Arg.(value & opt int 64
         & info [ "digest-every" ]
             ~doc:"Ship a state digest to followers every N streamed updates \
                   (the divergence audit); 0 disables")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Propagate trace= frame contexts and record pipeline spans \
                   (stage histograms are collected regardless)")
  in
  let slow_query_ms =
    Arg.(value & opt float 250.
         & info [ "slow-query-ms" ] ~docv:"MS"
             ~doc:"Capture the explain record of any server-side query or \
                   per-subscription monitor step slower than this into the \
                   structured log (moq_slowq_* counters); 0 disables")
  in
  let no_hot_objects =
    Arg.(value & flag
         & info [ "no-hot-objects" ]
             ~doc:"Disable per-object cost attribution in subscription \
                   monitors (drops the moq_hot_* gauges)")
  in
  let flight_capacity =
    Arg.(value & opt int 2048
         & info [ "flight-capacity" ] ~docv:"N"
             ~doc:"Flight-recorder ring capacity in events — dumped to the \
                   store directory on crash, SIGQUIT or replication \
                   divergence; 0 disables")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a durable MOD over moqp: concurrent sessions, chronological \
             updates through the WAL, live continuous-query subscriptions, \
             optional read replication")
    Term.(const serve_run $ listen $ Common_args.store_req $ Common_args.db
          $ Common_args.seed $ Common_args.n $ Common_args.checkpoint_every
          $ Common_args.no_fsync $ max_sessions $ max_subs $ queue_soft
          $ queue_hwm $ idle_timeout $ follow $ digest_every $ trace
          $ slow_query_ms $ no_hot_objects $ flight_capacity
          $ Common_args.log_level $ Common_args.log_json)

(* Script lines are raw moqp request heads ("SUBSCRIBE knn 1 0 40"), plus
   '#' comments and a "!sleep SECONDS" directive.  Events arriving between
   requests are printed as they drain. *)
let client_run connect script_file wait timeout connect_timeout log_level log_json =
  setup_logging log_level log_json;
  let addr = parse_addr connect in
  match Client.connect ~timeout ~connect_timeout addr with
  | Error e -> die "connect %s: %s" connect (Client.error_to_string e)
  | Ok c ->
    (* drops the server told us about but nothing re-delivered: the exit
       status must not claim a complete stream *)
    let dropped = ref [] in
    let print_msg m =
      (match m with
       | Proto.E_dropped { sub; from_seq; to_seq } ->
         dropped := (sub, from_seq, to_seq) :: !dropped
       | _ -> ());
      print_endline (Proto.render_server_msg m)
    in
    let dim =
      match Client.hello c with
      | Ok (Proto.R_hello { dim; _ } as m) ->
        print_msg m;
        dim
      | Ok m ->
        print_msg m;
        Client.close c;
        die "handshake refused"
      | Error e -> die "hello: %s" (Client.error_to_string e)
    in
    let lines =
      match script_file with
      | Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            let rec go acc =
              match input_line ic with
              | l -> go (l :: acc)
              | exception End_of_file -> List.rev acc
            in
            go [])
      | None ->
        let rec go acc =
          match input_line stdin with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        go []
    in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then begin
          match String.split_on_char ' ' line with
          | "!sleep" :: s :: _ ->
            (match float_of_string_opt s with
             | Some secs -> Thread.delay secs
             | None -> die "!sleep: bad duration %S" s)
          | _ ->
            (match Proto.parse_request ~dim line with
             | Error e -> die "bad request %S: %s" line e
             | Ok req ->
               (match Client.request c req with
                | Ok m -> print_msg m
                | Error e -> die "%S: %s" line (Client.error_to_string e)));
            List.iter print_msg (Client.drain_events c)
        end)
      lines;
    let deadline = Unix.gettimeofday () +. wait in
    let rec drain () =
      let left = deadline -. Unix.gettimeofday () in
      if left > 0. && Client.is_open c then
        match Client.next_event ~timeout:left c with
        | Some m ->
          print_msg m;
          drain ()
        | None -> ()
    in
    drain ();
    if Client.is_open c then ignore (Client.request c Proto.Bye);
    Client.close c;
    if !dropped <> [] then begin
      List.iter
        (fun (sub, from_seq, to_seq) ->
          Format.eprintf "unacknowledged drop: sub %d seqs %d..%d@." sub
            from_seq to_seq)
        (List.rev !dropped);
      exit 4
    end

let client_cmd =
  let connect =
    Arg.(value & opt string default_listen
         & info [ "connect" ] ~docv:"ADDR" ~doc:"Server address (tcp:HOST:PORT or unix:PATH)")
  in
  let script =
    Arg.(value & opt (some file) None
         & info [ "script" ] ~docv:"FILE"
             ~doc:"Request script, one moqp request per line ('#' comments, \
                   '!sleep SECONDS' pauses); stdin when absent")
  in
  let wait =
    Arg.(value & opt float 0.
         & info [ "wait" ] ~doc:"Keep draining pushed events this many seconds after the script")
  in
  let timeout =
    Arg.(value & opt float 30. & info [ "timeout" ] ~doc:"Per-response timeout in seconds")
  in
  let connect_timeout =
    Arg.(value & opt float 10.
         & info [ "connect-timeout" ]
             ~doc:"Connection-establishment timeout in seconds")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Drive a moq server from a request script; print responses and \
             pushed events.  Exits 4 if the server reported dropped events \
             that were never re-delivered.")
    Term.(const client_run $ connect $ script $ wait $ timeout $ connect_timeout
          $ Common_args.log_level $ Common_args.log_json)

let chaos_run upstream seed profile port duration log_level log_json =
  setup_logging log_level log_json;
  let upstream_addr = parse_addr upstream in
  let upstream_sock = Server.sockaddr_of upstream_addr in
  let profile =
    match profile with
    | "quiet" -> Chaos.quiet
    | "flaky" -> Chaos.flaky
    | "hostile" -> Chaos.hostile
    | p -> die "unknown chaos profile %S (quiet|flaky|hostile)" p
  in
  let t = Chaos.start ~profile ~port ~seed ~upstream:upstream_sock () in
  Format.printf "chaos proxy on tcp:127.0.0.1:%d -> %s (seed %d)@."
    (Chaos.port t) upstream seed;
  let stopped = ref false in
  let stop _ = stopped := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  let deadline =
    if duration > 0. then Some (Unix.gettimeofday () +. duration) else None
  in
  let expired () =
    match deadline with
    | Some d -> Unix.gettimeofday () >= d
    | None -> false
  in
  while not (!stopped || expired ()) do
    Thread.delay 0.2
  done;
  Chaos.stop t;
  let s = Chaos.stats t in
  Format.printf
    "conns %d refused %d chunks %d bytes %d delays %d corruptions %d tears %d \
     reorders %d@."
    s.Chaos.conns s.Chaos.refused s.Chaos.chunks s.Chaos.bytes s.Chaos.delays
    s.Chaos.corruptions s.Chaos.tears s.Chaos.reorders

let chaos_cmd =
  let upstream =
    Arg.(value & opt string default_listen
         & info [ "upstream" ] ~docv:"ADDR"
             ~doc:"Real server to relay to (tcp:HOST:PORT or unix:PATH)")
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~doc:"Deterministic fault-injection seed")
  in
  let profile =
    Arg.(value & opt string "flaky"
         & info [ "profile" ] ~docv:"NAME"
             ~doc:"Fault profile: quiet, flaky or hostile")
  in
  let port =
    Arg.(value & opt int 0
         & info [ "port" ] ~doc:"Listen port (0 picks a free one)")
  in
  let duration =
    Arg.(value & opt float 0.
         & info [ "duration" ]
             ~doc:"Stop after this many seconds (0: run until SIGINT/SIGTERM)")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a seeded network chaos proxy in front of a moq server: \
             delays, torn frames, reordering, corruption, partitions")
    Term.(const chaos_run $ upstream $ seed $ profile $ port $ duration
          $ Common_args.log_level $ Common_args.log_json)

(* ------------------------------------------------------------------ *)
(* moq top: live fleet dashboard over STATS json                       *)
(* ------------------------------------------------------------------ *)

(* One short-lived session per poll: connect, HELLO, STATS json, BYE.
   Dashboards poll every couple of seconds; session churn at that rate is
   noise, and a fresh connection per sample means a restarted server just
   shows up again without reconnect bookkeeping here. *)
let fetch_stats ~timeout addr =
  match Client.connect ~timeout ~connect_timeout:timeout addr with
  | Error e -> Error (Client.error_to_string e)
  | Ok c ->
    let r =
      match Client.hello c with
      | Ok (Proto.R_hello _) ->
        (match Client.request c (Proto.Stats `Json) with
         | Ok (Proto.R_stats s) ->
           (match J.of_string s with
            | Ok j -> Ok j
            | Error e -> Error ("bad STATS json: " ^ e))
         | Ok _ -> Error "unexpected response to STATS"
         | Error e -> Error (Client.error_to_string e))
      | Ok _ -> Error "handshake refused"
      | Error e -> Error (Client.error_to_string e)
    in
    if Client.is_open c then ignore (Client.request c Proto.Bye);
    Client.close c;
    r

let jget j section name =
  Option.bind (Option.bind (J.member section j) (J.member name)) J.to_float_opt

(* Every moq_stage_*_ns histogram in the sample, as
   (short name, p50, p99, count); new stages appear without dashboard
   changes. *)
let stage_rows j =
  match J.member "histograms" j with
  | Some (J.Obj kvs) ->
    List.filter_map
      (fun (name, h) ->
        if not (String.length name > 10 && String.sub name 0 10 = "moq_stage_") then
          None
        else begin
          let short = String.sub name 10 (String.length name - 10) in
          let short =
            if Filename.check_suffix short "_ns" then
              String.sub short 0 (String.length short - 3)
            else short
          in
          let q k = Option.bind (J.member k h) J.to_float_opt in
          Some (short, q "p50", q "p99", q "count")
        end)
      kvs
  | _ -> []

(* Rank-indexed moq_hot_* gauges (top-K cost attribution, published by the
   server on STATS and by moq stats), re-assembled into rows. *)
let hot_rows j =
  let g name i = jget j "gauges" (Printf.sprintf "%s_%d" name i) in
  let rec go i acc =
    match g "moq_hot_oid" i with
    | None -> List.rev acc
    | Some oid ->
      go (i + 1)
        ((oid, g "moq_hot_comparisons" i, g "moq_hot_swaps" i) :: acc)
  in
  go 0 []

let hot_sub_rows j =
  let g name i = jget j "gauges" (Printf.sprintf "%s_%d" name i) in
  let rec go i acc =
    match g "moq_hot_sub_id" i with
    | None -> List.rev acc
    | Some id ->
      go (i + 1)
        ((id, g "moq_hot_sub_bytes" i, g "moq_hot_sub_queue" i) :: acc)
  in
  go 0 []

let top_endpoint_json name r ~rate =
  let fopt = function Some v -> J.Float v | None -> J.Null in
  match r with
  | Error e -> J.Obj [ ("endpoint", J.Str name); ("ok", J.Bool false); ("error", J.Str e) ]
  | Ok j ->
    let role =
      if jget j "gauges" "moq_repl_lag_updates" <> None then "follower" else "primary"
    in
    let ns_ms = Option.map (fun v -> v /. 1e6) in
    J.Obj
      [ ("endpoint", J.Str name);
        ("ok", J.Bool true);
        ("role", J.Str role);
        ("rps", fopt (rate "moq_server_rpcs_total"));
        ("pushed_per_s", fopt (rate "moq_server_pushed_events_total"));
        ("wal_appends_per_s", fopt (rate "moq_wal_appends_total"));
        ("fsyncs_per_s", fopt (rate "moq_wal_fsyncs_total"));
        ("sessions", fopt (jget j "gauges" "moq_server_connections"));
        ("subscriptions", fopt (jget j "gauges" "moq_server_subscriptions"));
        ("queue_depth", fopt (jget j "gauges" "moq_server_push_queue_depth"));
        ("dropped_events_total", fopt (jget j "counters" "moq_server_dropped_events_total"));
        ("repl_lag_updates", fopt (jget j "gauges" "moq_repl_lag_updates"));
        ("repl_lag_ms", fopt (jget j "gauges" "moq_repl_lag_ms"));
        ("slow_queries_total", fopt (jget j "counters" "moq_slowq_total"));
        ("hot_objects",
         J.List
           (List.map
              (fun (oid, cmp, swaps) ->
                J.Obj
                  [ ("oid", J.Int (int_of_float oid));
                    ("comparisons", fopt cmp); ("swaps", fopt swaps) ])
              (hot_rows j)));
        ("hot_subs",
         J.List
           (List.map
              (fun (id, bytes, queue) ->
                J.Obj
                  [ ("sub", J.Int (int_of_float id));
                    ("fanout_bytes", fopt bytes); ("queue", fopt queue) ])
              (hot_sub_rows j)));
        ("stages",
         J.Obj
           (List.map
              (fun (s, p50, p99, count) ->
                (s,
                 J.Obj
                   [ ("p50_ms", fopt (ns_ms p50)); ("p99_ms", fopt (ns_ms p99));
                     ("count", fopt count) ]))
              (stage_rows j)));
      ]

let top_endpoint_text name r ~rate =
  let fv = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
  let fms = function Some v -> Printf.sprintf "%.2f" (v /. 1e6) | None -> "-" in
  match r with
  | Error e -> Format.printf "%-28s DOWN  %s@." name e
  | Ok j ->
    let role =
      if jget j "gauges" "moq_repl_lag_updates" <> None then "follower" else "primary"
    in
    Format.printf "%-28s %-8s rps %-8s sessions %s subs %s queue %s dropped %s@."
      name role
      (fv (rate "moq_server_rpcs_total"))
      (fv (jget j "gauges" "moq_server_connections"))
      (fv (jget j "gauges" "moq_server_subscriptions"))
      (fv (jget j "gauges" "moq_server_push_queue_depth"))
      (fv (jget j "counters" "moq_server_dropped_events_total"));
    Format.printf "  wal %s appends/s, %s fsyncs/s"
      (fv (rate "moq_wal_appends_total"))
      (fv (rate "moq_wal_fsyncs_total"));
    (match (jget j "gauges" "moq_repl_lag_updates", jget j "gauges" "moq_repl_lag_ms") with
     | Some u, ms ->
       Format.printf "   repl lag %.0f updates / %s ms" u
         (match ms with Some v -> Printf.sprintf "%.1f" v | None -> "-")
     | None, _ -> ());
    Format.printf "@.";
    (match stage_rows j with
     | [] -> ()
     | rows ->
       Format.printf "  stage p50/p99 ms:";
       List.iter
         (fun (s, p50, p99, _) ->
           Format.printf " %s %s/%s" s (fms p50) (fms p99))
         rows;
       Format.printf "@.");
    (match hot_rows j with
     | [] -> ()
     | rows ->
       Format.printf "  hot objects:";
       List.iter
         (fun (oid, cmp, swaps) ->
           Format.printf " oid %.0f (%s cmp/%s swap)" oid (fv cmp) (fv swaps))
         rows;
       Format.printf "@.");
    (match hot_sub_rows j with
     | [] -> ()
     | rows ->
       Format.printf "  hot subs:";
       List.iter
         (fun (id, bytes, queue) ->
           Format.printf " #%.0f (%s B/%s queued)" id (fv bytes) (fv queue))
         rows;
       Format.printf "@.")

let top_run endpoints interval once as_json timeout =
  if as_json then Log.set_json true;
  let endpoints = if endpoints = [] then [ default_listen ] else endpoints in
  let addrs = List.map (fun e -> (e, parse_addr e)) endpoints in
  let prev : (string, float * J.t) Hashtbl.t = Hashtbl.create 8 in
  let stopped = ref false in
  let stop _ = stopped := true in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop) with Invalid_argument _ -> ());
  let round () =
    let samples =
      List.map
        (fun (name, addr) ->
          let at = Unix.gettimeofday () in
          (name, at, fetch_stats ~timeout addr))
        addrs
    in
    let rendered =
      List.map
        (fun (name, at, r) ->
          let rate cname =
            match (r, Hashtbl.find_opt prev name) with
            | Ok j, Some (at0, j0) when at > at0 ->
              (match (jget j "counters" cname, jget j0 "counters" cname) with
               | Some v, Some v0 -> Some (Float.max 0. ((v -. v0) /. (at -. at0)))
               | _ -> None)
            | _ -> None
          in
          (name, r, rate))
        samples
    in
    let reachable =
      List.length (List.filter (fun (_, _, r) -> Result.is_ok r) samples)
    in
    if as_json then
      print_endline
        (J.to_string
           (J.Obj
              [ ("at", J.Float (Unix.gettimeofday ()));
                ("reachable", J.Int reachable);
                ("endpoints",
                 J.List
                   (List.map (fun (name, r, rate) -> top_endpoint_json name r ~rate)
                      rendered)) ]))
    else begin
      if not once then print_string "\027[2J\027[H";
      Format.printf "moq top — %d endpoint%s, every %gs@." (List.length addrs)
        (if List.length addrs = 1 then "" else "s")
        interval;
      List.iter (fun (name, r, rate) -> top_endpoint_text name r ~rate) rendered;
      Format.print_flush ()
    end;
    List.iter
      (fun (name, at, r) ->
        match r with Ok j -> Hashtbl.replace prev name (at, j) | Error _ -> ())
      samples;
    reachable
  in
  let reachable = round () in
  (* a fleet that is entirely down must not read like an empty-but-healthy
     one in scripts: structured error record + non-zero exit *)
  if once && reachable = 0 then begin
    Log.error "moq top: every endpoint unreachable"
      ~fields:
        [ ("endpoints", J.List (List.map (fun (n, _) -> J.Str n) addrs));
          ("polled", J.Int (List.length addrs)) ];
    exit 2
  end;
  if not once then
    while not !stopped do
      let slept = ref 0. in
      while (not !stopped) && !slept < interval do
        Thread.delay 0.1;
        slept := !slept +. 0.1
      done;
      if not !stopped then ignore (round ())
    done

let top_cmd =
  let endpoints =
    Arg.(value & pos_all string []
         & info [] ~docv:"ADDR"
             ~doc:"Endpoints to poll (tcp:HOST:PORT or unix:PATH); default the \
                   local server")
  in
  let interval =
    Arg.(value & opt float 2.
         & info [ "interval" ] ~doc:"Seconds between refreshes")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Sample once and exit (for scripts)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit samples as JSON instead of a screen")
  in
  let timeout =
    Arg.(value & opt float 5. & info [ "timeout" ] ~doc:"Per-endpoint poll timeout in seconds")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live fleet dashboard: poll STATS from one or more moq servers and \
             show rates, per-stage latency quantiles, replication lag and \
             backpressure counters")
    Term.(const top_run $ endpoints $ interval $ once $ json $ timeout)

let () =
  let doc = "moving-object queries: plane-sweep evaluation (PODS 2002 reproduction)" in
  try
    exit
      (Cmd.eval
         (Cmd.group (Cmd.info "moq" ~doc)
            [ trace_cmd; knn_cmd; monitor_cmd; classify_cmd; reduction_cmd; generate_cmd;
              show_cmd; agg_cmd; alibi_cmd; ingest_cmd; replay_cmd; recover_cmd;
              stats_cmd; serve_cmd; client_cmd; chaos_cmd; top_cmd; explain_cmd;
              blackbox_cmd ]))
  with
  | Moq_mod.Mod_io.Parse (line, msg) -> die "parse error at line %d: %s" line msg
  | Sys_error msg -> die "%s" msg
  | Unix.Unix_error (err, fn, arg) -> die "%s: %s (%s)" fn (Unix.error_message err) arg
