module Q = Moq_numeric.Rat
module L = Moq_cql.Lincons
module E = Moq_cql.Lincons.Expr
module FM = Moq_cql.Fourier_motzkin
module Dnf = Moq_cql.Dnf
module Cql = Moq_cql.Cql
module Ex = Moq_cql.Cql_examples
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Qvec = Moq_geom.Vec.Qvec

let q = Q.of_int
let vec l = Qvec.of_list (List.map Q.of_int l)

let prop ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Linear expressions / constraints                                     *)
(* ------------------------------------------------------------------ *)

let test_expr () =
  let e = E.of_list [ (q 2, "x"); (q 3, "y"); (q (-2), "x") ] (q 5) in
  Alcotest.(check string) "coeff collapsed" "0" (Q.to_string (E.coeff e "x"));
  Alcotest.(check string) "coeff y" "3" (Q.to_string (E.coeff e "y"));
  let env = function "y" -> q 4 | _ -> Q.zero in
  Alcotest.(check string) "eval" "17" (Q.to_string (E.eval env e));
  let e2 = E.subst "y" (E.var "z") e in
  Alcotest.(check string) "subst moves" "3" (Q.to_string (E.coeff e2 "z"))

let test_constraint_eval () =
  (* 2x - y <= 3 *)
  let c = L.le (E.of_list [ (q 2, "x"); (q (-1), "y") ] Q.zero) (E.const (q 3)) in
  let env1 = function "x" -> q 1 | "y" -> q 0 | _ -> Q.zero in
  let env2 = function "x" -> q 5 | "y" -> q 0 | _ -> Q.zero in
  Alcotest.(check bool) "sat" true (L.eval env1 c);
  Alcotest.(check bool) "unsat" false (L.eval env2 c)

let test_negate () =
  let c = L.eq (E.var "x") (E.const (q 3)) in
  let negs = L.negate c in
  Alcotest.(check int) "eq splits" 2 (List.length negs);
  let env v = if v = "x" then q 3 else Q.zero in
  Alcotest.(check bool) "x=3 fails both" false (List.exists (L.eval env) negs);
  let env4 v = if v = "x" then q 4 else Q.zero in
  Alcotest.(check bool) "x=4 passes one" true (List.exists (L.eval env4) negs)

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin                                                      *)
(* ------------------------------------------------------------------ *)

let test_fm_basic () =
  (* ∃x. 1 <= x ∧ x <= 5: satisfiable *)
  let cs = [ L.ge (E.var "x") (E.const (q 1)); L.le (E.var "x") (E.const (q 5)) ] in
  Alcotest.(check bool) "sat" true (FM.satisfiable cs);
  (* ∃x. 5 < x ∧ x < 1: unsat *)
  let cs2 = [ L.gt (E.var "x") (E.const (q 5)); L.lt (E.var "x") (E.const (q 1)) ] in
  Alcotest.(check bool) "unsat" false (FM.satisfiable cs2);
  (* strictness: ∃x. 3 <= x ∧ x <= 3 sat, but 3 < x ∧ x <= 3 unsat *)
  Alcotest.(check bool) "point sat" true
    (FM.satisfiable [ L.ge (E.var "x") (E.const (q 3)); L.le (E.var "x") (E.const (q 3)) ]);
  Alcotest.(check bool) "strict point unsat" false
    (FM.satisfiable [ L.gt (E.var "x") (E.const (q 3)); L.le (E.var "x") (E.const (q 3)) ])

let test_fm_equality_subst () =
  (* ∃x. x = 2y ∧ x <= 3 ∧ y >= 2: becomes 2y <= 3 ∧ y >= 2: unsat *)
  let cs =
    [ L.eq (E.var "x") (E.scale (q 2) (E.var "y"));
      L.le (E.var "x") (E.const (q 3));
      L.ge (E.var "y") (E.const (q 2));
    ]
  in
  let elim = FM.eliminate "x" cs in
  Alcotest.(check bool) "x gone" true
    (List.for_all (fun c -> not (L.Varset.mem "x" (L.vars c))) elim);
  Alcotest.(check bool) "unsat after projecting y" false (FM.satisfiable cs)

let test_fm_unbounded () =
  (* ∃x. x >= y: always true, so eliminating x leaves nothing binding *)
  let cs = [ L.ge (E.var "x") (E.var "y") ] in
  Alcotest.(check bool) "sat" true (FM.satisfiable cs)

(* Property: FM elimination preserves satisfiability vs. a grid search
   witness on 2-variable systems. *)
let arb_system =
  QCheck.list_of_size (QCheck.Gen.int_range 1 5)
    (QCheck.map
       (fun (a, b, c, r) ->
         let expr = E.of_list [ (q a, "x"); (q b, "y") ] (q c) in
         match r mod 3 with
         | 0 -> { L.expr; rel = L.Eq }
         | 1 -> { L.expr; rel = L.Le }
         | _ -> { L.expr; rel = L.Lt })
       QCheck.(quad (int_range (-4) 4) (int_range (-4) 4) (int_range (-6) 6) small_int))

let grid_witness cs =
  (* search x, y in quarter-integer grid [-12, 12]; sound for "found" only *)
  let vals = List.init 193 (fun i -> Q.div (q (i - 96)) (q 4)) in
  List.exists
    (fun x ->
      List.exists
        (fun y ->
          let env v = if v = "x" then x else if v = "y" then y else Q.zero in
          List.for_all (L.eval env) cs)
        vals)
    vals

let fm_props =
  [ prop ~count:300 "grid witness implies FM sat" arb_system (fun cs ->
        (not (grid_witness cs)) || FM.satisfiable cs);
    prop ~count:300 "FM unsat implies no witness" arb_system (fun cs ->
        FM.satisfiable cs || not (grid_witness cs));
    prop ~count:200 "eliminate removes the variable" arb_system (fun cs ->
        List.for_all
          (fun c -> not (L.Varset.mem "x" (L.vars c)))
          (FM.eliminate "x" cs));
  ]

(* ------------------------------------------------------------------ *)
(* DNF                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dnf_logic () =
  let cx = L.ge (E.var "x") (E.const (q 0)) in
  let a = Dnf.atom cx in
  Alcotest.(check bool) "neg . neg sat-equivalent" true
    (Dnf.satisfiable (Dnf.neg (Dnf.neg a)) = Dnf.satisfiable a);
  Alcotest.(check bool) "a and not a unsat" false (Dnf.satisfiable (Dnf.and_ a (Dnf.neg a)));
  Alcotest.(check bool) "a or not a sat" true (Dnf.satisfiable (Dnf.or_ a (Dnf.neg a)));
  Alcotest.(check bool) "exists x. x >= 0" true (Dnf.satisfiable (Dnf.exists "x" a))

(* ------------------------------------------------------------------ *)
(* CQL evaluation                                                       *)
(* ------------------------------------------------------------------ *)

(* Three 2-d objects:
   o1 crosses the box [10,20]^2 (enters it),
   o2 starts inside the box and leaves,
   o3 stays far away. *)
let make_db () =
  let db = DB.empty ~dim:2 ~tau:(q (-10)) in
  let db = DB.apply_exn db (U.New { oid = 1; tau = q 0; a = vec [ 1; 1 ]; b = vec [ 0; 0 ] }) in
  let db = DB.apply_exn db (U.New { oid = 2; tau = q 1; a = vec [ 1; 0 ]; b = vec [ 14; 15 ] }) in
  let db = DB.apply_exn db (U.New { oid = 3; tau = q 2; a = vec [ 0; 1 ]; b = vec [ -100; 0 ] }) in
  db

let region = Ex.box [ (q 10, q 20); (q 10, q 20) ]

let test_cql_inside () =
  let db = make_db () in
  let qr = Ex.inside ~region ~dim:2 ~tau1:(q 0) ~tau2:(q 30) in
  Alcotest.(check (list int)) "o1 o2 inside" [ 1; 2 ] (Cql.answer db qr);
  (* restrict the window before o1 arrives (o1 at (t,t): inside from t=10) *)
  let qr2 = Ex.inside ~region ~dim:2 ~tau1:(q 0) ~tau2:(q 9) in
  Alcotest.(check (list int)) "only o2 early" [ 2 ] (Cql.answer db qr2)

let test_cql_entering () =
  let db = make_db () in
  (* o1 enters at t=10; o2 was already inside at its creation, but time
     instants before its birth are "not in the region", so o2 also counts as
     entering at its birth -- standard constraint semantics.  o3 never. *)
  let qr = Ex.entering ~region ~dim:2 ~tau1:(q 0) ~tau2:(q 30) in
  let ans = Cql.answer db qr in
  Alcotest.(check bool) "o1 enters" true (List.mem 1 ans);
  Alcotest.(check bool) "o3 never" false (List.mem 3 ans);
  (* window that excludes o1's entering moment *)
  let qr2 = Ex.entering ~region ~dim:2 ~tau1:(q 12) ~tau2:(q 30) in
  Alcotest.(check bool) "o1 not entering later" false (List.mem 1 (Cql.answer db qr2))

let test_cql_met_gamma () =
  let db = make_db () in
  (* gamma follows exactly o1's trajectory: o1 meets it everywhere *)
  let gamma = T.linear ~start:(q 0) ~a:(vec [ 1; 1 ]) ~b:(vec [ 0; 0 ]) in
  let qr = Ex.met_gamma ~gamma ~dim:2 ~tau1:(q 0) ~tau2:(q 30) in
  let ans = Cql.answer db qr in
  Alcotest.(check bool) "o1 meets" true (List.mem 1 ans);
  Alcotest.(check bool) "o3 does not" false (List.mem 3 ans);
  (* o2 at (14+t', 15); gamma at (t,t); meet needs t = 15 and 14 + t - 1 =
     15 -- o2's param: position (t+13, 15) at time t, so meet at t = 15 when
     gamma is at (15,15) and o2 at (28,15)?  No: they never meet. *)
  Alcotest.(check bool) "o2 does not" false (List.mem 2 ans)

let test_cql_terminated_past () =
  (* terminated object still answers past queries over its lifetime *)
  let db = make_db () in
  let db = DB.apply_exn db (U.Terminate { oid = 1; tau = q 15 }) in
  let qr = Ex.inside ~region ~dim:2 ~tau1:(q 0) ~tau2:(q 30) in
  Alcotest.(check bool) "o1 was inside before death" true (List.mem 1 (Cql.answer db qr));
  let db2 = DB.apply_exn (make_db ()) (U.Terminate { oid = 1; tau = q 9 }) in
  Alcotest.(check bool) "o1 died before entering" false (List.mem 1 (Cql.answer db2 qr))

let test_cql_multi_piece () =
  (* object turns: heads toward the box, then turns away before reaching it *)
  let db = DB.empty ~dim:2 ~tau:(q (-1)) in
  let db = DB.apply_exn db (U.New { oid = 5; tau = q 0; a = vec [ 1; 1 ]; b = vec [ 0; 0 ] }) in
  let db = DB.apply_exn db (U.Chdir { oid = 5; tau = q 8; a = vec [ -1; -1 ] }) in
  let qr = Ex.inside ~region ~dim:2 ~tau1:(q 0) ~tau2:(q 30) in
  Alcotest.(check (list int)) "never inside" [] (Cql.answer db qr);
  (* and one that turns inside the box *)
  let db2 = DB.apply_exn db (U.Chdir { oid = 5; tau = q 9; a = vec [ 2; 2 ] }) in
  Alcotest.(check (list int)) "turn back in" [ 5 ] (Cql.answer db2 qr)

(* ------------------------------------------------------------------ *)
(* when_holds: finite time representation of snapshot answers           *)
(* ------------------------------------------------------------------ *)

let in_box_body y tvar =
  (* ∃x0 x1 (T(y, t, x̄) ∧ x̄ ∈ [10,20]²) *)
  Cql.exists_rs [ "x0"; "x1" ]
    (Cql.conj
       (Cql.At (y, tvar, [ "x0"; "x1" ])
        :: List.map (fun c -> Cql.Constr c) (Ex.box [ (q 10, q 20); (q 10, q 20) ] [ "x0"; "x1" ])))

let test_when_holds_inside () =
  let db = make_db () in
  let tq = { Cql.tfree = "y"; tvar = "t"; tgamma = None; tbody = in_box_body "y" "t" } in
  let span_strings o =
    List.sort compare
      (List.map (fun s -> Format.asprintf "%a" Cql.pp_span s) (Cql.when_holds db tq o))
  in
  (* o1 moves along (t, t): inside the box exactly for t in [10, 20] *)
  Alcotest.(check (list string)) "o1 window" [ "[10, 20]" ] (span_strings 1);
  (* o2 at (14+t, 15): x in [10,20] for t <= 6, clipped by birth at 1 *)
  Alcotest.(check (list string)) "o2 window" [ "[1, 6]" ] (span_strings 2);
  (* o3 never inside *)
  Alcotest.(check (list string)) "o3 never" [] (span_strings 3)

let test_when_holds_strictness () =
  (* strict constraint: x strictly beyond 5 for an object at x = t *)
  let db = DB.empty ~dim:1 ~tau:(q 0) in
  let db = DB.add_initial db 1 (T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 1 ]) ~b:(Qvec.of_list [ q 0 ])) in
  let body =
    Cql.exists_rs [ "x0" ]
      (Cql.And (Cql.At ("y", "t", [ "x0" ]), Cql.Constr (L.gt (E.var "x0") (E.const (q 5)))))
  in
  let tq = { Cql.tfree = "y"; tvar = "t"; tgamma = None; tbody = body } in
  match Cql.when_holds db tq 1 with
  | [ s ] -> Alcotest.(check string) "open at 5" "(5, +inf)" (Format.asprintf "%a" Cql.pp_span s)
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let () =
  Alcotest.run "cql"
    [ ("lincons", [
        Alcotest.test_case "expr ops" `Quick test_expr;
        Alcotest.test_case "constraint eval" `Quick test_constraint_eval;
        Alcotest.test_case "negate" `Quick test_negate;
      ]);
      ("fourier-motzkin", [
        Alcotest.test_case "basic" `Quick test_fm_basic;
        Alcotest.test_case "equality subst" `Quick test_fm_equality_subst;
        Alcotest.test_case "unbounded" `Quick test_fm_unbounded;
      ]);
      ("fm-props", fm_props);
      ("dnf", [ Alcotest.test_case "logic" `Quick test_dnf_logic ]);
      ("when-holds", [
        Alcotest.test_case "inside-region windows" `Quick test_when_holds_inside;
        Alcotest.test_case "strict bounds" `Quick test_when_holds_strictness;
      ]);
      ("cql-eval", [
        Alcotest.test_case "inside (window)" `Quick test_cql_inside;
        Alcotest.test_case "entering (example 3)" `Quick test_cql_entering;
        Alcotest.test_case "met gamma (example 11)" `Quick test_cql_met_gamma;
        Alcotest.test_case "terminated past" `Quick test_cql_terminated_past;
        Alcotest.test_case "multi-piece trajectories" `Quick test_cql_multi_piece;
      ]);
    ]
