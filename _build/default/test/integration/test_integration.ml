(* Cross-layer integration: the CQL evaluator (quantifier elimination), the
   FO(f) sweep, the specialized operators, and the baselines must tell one
   consistent story on shared workloads. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module Cql = Moq_cql.Cql
module Cql_ex = Moq_cql.Cql_examples
module BX = Moq_core.Backend.Exact
module BF = Moq_core.Backend.Approx
module SwX = Moq_core.Sweep.Make (BX)
module KnnX = Moq_core.Knn.Make (BX)
module KnnF = Moq_core.Knn.Make (BF)
module RangeX = Moq_core.Range_query.Make (BX)
module MonX = Moq_core.Monitor.Make (BX)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module Classify = Moq_core.Classify
module NaiveX = Moq_baseline.Naive.Make (BX)
module LazyX = Moq_baseline.Lazy_eval.Make (BX)
module Gen = Moq_workload.Gen

let q = Q.of_int

let prop ?(count = 25) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* CQL (QE) vs FO(f) sweep: "met gamma" = "within squared distance 0"   *)
(* ------------------------------------------------------------------ *)

let test_cql_vs_fof_meeting () =
  (* objects on a line; gamma crosses some of them *)
  let db = DB.empty ~dim:1 ~tau:(q 0) in
  let add db o x v = DB.add_initial db o (T.linear ~start:(q 0) ~a:(Qvec.of_list [ q v ]) ~b:(Qvec.of_list [ q x ])) in
  let db = add db 1 0 1 in
  (* meets gamma head-on *)
  let db = add db 2 20 (-1) in
  (* parallel to gamma with an offset, never meets *)
  let db = add db 3 6 2 in
  let gamma = T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 2 ]) ~b:(Qvec.of_list [ q 5 ]) in
  (* CQL: same position as gamma at some time in [0, 10] *)
  let cql_ans = Cql.answer db (Cql_ex.met_gamma ~gamma ~dim:1 ~tau1:(q 0) ~tau2:(q 10)) in
  (* FO(f): squared distance to gamma is <= 0 at some time in [0, 10] *)
  let gdist = Gdist.euclidean_sq ~gamma in
  let query = Fof.within_q ~bound:(q 0) ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let r = SwX.run ~db ~gdist ~query in
  let fof_ans = Oid.Set.elements (SwX.TL.existential r.SwX.timeline) in
  Alcotest.(check (list int)) "CQL and FO(f) agree" cql_ans fof_ans;
  (* o1 meets gamma: x0=0,v=1 vs 5+2t: never (gamma faster, ahead).
     o2: 20 - t = 5 + 2t -> t = 5: meets. o3 parallel offset: never. *)
  Alcotest.(check (list int)) "expected answer" [ 2 ] fof_ans

let random_line_db specs =
  List.fold_left
    (fun db (o, x, v) ->
      DB.add_initial db o
        (T.linear ~start:(q 0) ~a:(Qvec.of_list [ q v ]) ~b:(Qvec.of_list [ q x ])))
    (DB.empty ~dim:1 ~tau:(q 0))
    specs

let prop_cql_vs_fof =
  prop "CQL met-gamma = FO(f) within-0, random lines"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5)
       (QCheck.pair (QCheck.int_range (-15) 15) (QCheck.int_range (-3) 3)))
    (fun specs ->
      let specs = List.mapi (fun i (x, v) -> (i + 1, x, v)) specs in
      let db = random_line_db specs in
      let gamma = T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 1 ]) ~b:(Qvec.of_list [ q 0 ]) in
      let cql_ans = Cql.answer db (Cql_ex.met_gamma ~gamma ~dim:1 ~tau1:(q 0) ~tau2:(q 8)) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let query = Fof.within_q ~bound:(q 0) ~interval:(Fof.Interval.closed (q 0) (q 8)) in
      let r = SwX.run ~db ~gdist ~query in
      cql_ans = Oid.Set.elements (SwX.TL.existential r.SwX.timeline))

(* ------------------------------------------------------------------ *)
(* Specialized operators vs generic sweep vs naive baseline             *)
(* ------------------------------------------------------------------ *)

let prop_knn_three_ways =
  prop "1-NN: operator = generic FO(f) = naive, random workloads"
    (QCheck.int_range 0 10000)
    (fun seed ->
      let db = Gen.uniform_db ~seed ~n:6 ~extent:30 ~speed:4 () in
      let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let lo = q 0 and hi = q 15 in
      let op = KnnX.run ~db ~gdist ~k:1 ~lo ~hi in
      let generic =
        SwX.run ~db ~gdist ~query:(Fof.nearest_q ~interval:(Fof.Interval.closed lo hi))
      in
      let naive, _ = NaiveX.knn_run ~db ~gdist ~k:1 ~lo ~hi in
      List.for_all
        (fun j ->
          let t = Q.div (q (3 * j + 1)) (q 2) in
          let at tl = SwX.TL.find_at tl (BX.instant_of_scalar t) in
          match at op.KnnX.timeline, at generic.SwX.timeline, at naive with
          | Some a, Some b, Some c -> Oid.Set.equal a b && Oid.Set.equal b c
          | _ -> false)
        (List.init 10 (fun j -> j)))

let prop_range_vs_generic =
  prop "within-r: operator = generic FO(f)" (QCheck.int_range 0 10000) (fun seed ->
      let db = Gen.uniform_db ~seed ~n:6 ~extent:30 ~speed:4 () in
      let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let bound = q 400 in
      let lo = q 0 and hi = q 15 in
      let op = RangeX.run ~db ~gdist ~bound ~lo ~hi in
      let generic =
        SwX.run ~db ~gdist ~query:(Fof.within_q ~bound ~interval:(Fof.Interval.closed lo hi))
      in
      List.for_all
        (fun j ->
          let t = Q.div (q (3 * j + 1)) (q 2) in
          match
            ( SwX.TL.find_at op.RangeX.timeline (BX.instant_of_scalar t),
              SwX.TL.find_at generic.SwX.timeline (BX.instant_of_scalar t) )
          with
          | Some a, Some b -> Oid.Set.equal a b
          | _ -> false)
        (List.init 10 (fun j -> j)))

(* ------------------------------------------------------------------ *)
(* Monitor = lazy sweep under mixed update streams (eager vs lazy)      *)
(* ------------------------------------------------------------------ *)

let prop_eager_lazy_mixed =
  prop "monitor = lazy sweep under mixed updates" (QCheck.int_range 0 10000) (fun seed ->
      let db = Gen.uniform_db ~seed ~n:5 ~extent:30 ~speed:4 () in
      let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 30)) in
      let updates = Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 0) ~gap:(q 3) ~count:6 () in
      let eager = MonX.create ~db ~gdist ~query () in
      let lazy_ = LazyX.create ~db ~gdist ~query in
      List.iter
        (fun u ->
          MonX.apply_update_exn eager u;
          LazyX.apply_update_exn lazy_ u)
        updates;
      let tl = MonX.finalize eager in
      let r = LazyX.answer lazy_ in
      List.for_all
        (fun j ->
          let t = Q.div (q (6 * j + 1)) (q 4) in
          match
            ( MonX.TL.find_at tl (BX.instant_of_scalar t),
              MonX.TL.find_at r.LazyX.Sw.timeline (BX.instant_of_scalar t) )
          with
          | Some a, Some b -> Oid.Set.equal a b
          | _ -> false)
        (List.init 20 (fun j -> j)))

(* ------------------------------------------------------------------ *)
(* Classification transitions as the clock moves                        *)
(* ------------------------------------------------------------------ *)

let test_classification_lifecycle () =
  (* a query over [5, 10] against a database whose update clock advances *)
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 5) (q 10)) in
  let db0 = DB.empty ~dim:1 ~tau:(q 0) in
  Alcotest.(check bool) "future before any update" true
    (Classify.classify db0 query = Classify.Future);
  let db1 =
    DB.apply_exn db0 (U.New { oid = 1; tau = q 7; a = Qvec.of_list [ q 1 ]; b = Qvec.of_list [ q 0 ] })
  in
  Alcotest.(check bool) "continuing mid-interval" true
    (Classify.classify db1 query = Classify.Continuing);
  let db2 =
    DB.apply_exn db1 (U.Chdir { oid = 1; tau = q 11; a = Qvec.of_list [ q 0 ] })
  in
  Alcotest.(check bool) "past once the clock passes the interval" true
    (Classify.classify db2 query = Classify.Past)

(* ------------------------------------------------------------------ *)
(* Air-traffic end-to-end: Example 1 plane in a fleet, queried 3 ways   *)
(* ------------------------------------------------------------------ *)

let test_airplane_three_queries () =
  let plane = Moq_workload.Scenario.example1_airplane () in
  let db = DB.add_initial (DB.empty ~dim:3 ~tau:(q 0)) 7 plane in
  let db =
    DB.add_initial db 9
      (T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 2; q 0; q 0 ]) ~b:(Qvec.of_list [ q 0; q 0; q 30 ]))
  in
  let gamma = Option.get (DB.find db 9) in
  let gdist = Gdist.euclidean_sq ~gamma in
  (* 1-NN among {7} relative to flight 9 is trivially 7; the point is the
     multi-piece curve sweeps cleanly across the turns at 21 and 22 *)
  let db7 = DB.add_initial (DB.empty ~dim:3 ~tau:(q 0)) 7 plane in
  let r = KnnX.run ~db:db7 ~gdist ~k:1 ~lo:(q 0) ~hi:(q 40) in
  Alcotest.(check (list int)) "plane always the answer" [ 7 ]
    (Oid.Set.elements (KnnX.TL.universal r.KnnX.timeline));
  (* range query with a threshold the plane crosses *)
  let rr = RangeX.run ~db:db7 ~gdist ~bound:(q 2000) ~lo:(q 0) ~hi:(q 40) in
  let ex = Oid.Set.elements (RangeX.TL.existential rr.RangeX.timeline) in
  let un = Oid.Set.elements (RangeX.TL.universal rr.RangeX.timeline) in
  Alcotest.(check (list int)) "within 2000 at some point" [ 7 ] ex;
  Alcotest.(check (list int)) "not within 2000 always" [] un

let () =
  Alcotest.run "integration"
    [ ("cql-vs-fof", [
        Alcotest.test_case "meeting query two ways" `Quick test_cql_vs_fof_meeting;
        prop_cql_vs_fof;
      ]);
      ("operators", [ prop_knn_three_ways; prop_range_vs_generic ]);
      ("eager-vs-lazy", [ prop_eager_lazy_mixed ]);
      ("lifecycle", [ Alcotest.test_case "classification transitions" `Quick test_classification_lifecycle ]);
      ("air-traffic", [ Alcotest.test_case "multi-piece plane, 3 queries" `Quick test_airplane_three_queries ]);
    ]
