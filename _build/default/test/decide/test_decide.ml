module Turing = Moq_decide.Turing
module Reduction = Moq_decide.Reduction
module DB = Moq_mod.Mobdb

let test_busy_beaver_halts () =
  let m = Turing.busy_beaver_3 () in
  (match Turing.halts_within m ~max_steps:100 with
   | Some k -> Alcotest.(check int) "halts in 13 transitions" 13 k
   | None -> Alcotest.fail "BB3 must halt");
  (* it writes six 1s *)
  let final = List.rev (Turing.run m ~max_steps:100) |> List.hd in
  let ones = Hashtbl.fold (fun _ y acc -> if y = 1 then acc + 1 else acc) final.Turing.tape 0 in
  Alcotest.(check int) "six ones" 6 ones;
  Alcotest.(check bool) "halted" true (Turing.is_halted m final)

let test_loop_never_halts () =
  let m = Turing.loop_forever () in
  Alcotest.(check bool) "no halt in 10000" true (Turing.halts_within m ~max_steps:10000 = None)

let test_step_semantics () =
  let m = Turing.busy_beaver_3 () in
  let c0 = Turing.initial in
  (match Turing.step m c0 with
   | Some c1 ->
     Alcotest.(check int) "state B" 1 c1.Turing.state;
     Alcotest.(check int) "head moved right" 1 c1.Turing.head;
     Alcotest.(check int) "wrote 1" 1 (Turing.read c1 0)
   | None -> Alcotest.fail "must step");
  (* halted configs do not step *)
  let halted = { Turing.state = m.Turing.halt; tape = Hashtbl.create 1; head = 0 } in
  Alcotest.(check bool) "halted is stuck" true (Turing.step m halted = None)

let test_encoding_checks_out () =
  (* the encoded halting computation satisfies the query *)
  let m = Turing.busy_beaver_3 () in
  let updates = Reduction.encode_computation m ~max_steps:25 in
  let db = DB.apply_all_exn (Reduction.initial_mod ()) updates in
  Alcotest.(check bool) "query true on halting computation" true (Reduction.query_holds db m);
  (* a truncated (non-halting) prefix does not *)
  let updates' = Reduction.encode_computation m ~max_steps:10 in
  let db' = DB.apply_all_exn (Reduction.initial_mod ()) updates' in
  Alcotest.(check bool) "query false on prefix" false (Reduction.query_holds db' m)

let test_encoding_rejects_forgery () =
  (* a computation of machine A does not satisfy machine B's query unless it
     happens to be a valid halting computation of B too *)
  let bb = Turing.busy_beaver_3 () in
  let loop = Turing.loop_forever () in
  let updates = Reduction.encode_computation bb ~max_steps:25 in
  let db = DB.apply_all_exn (Reduction.initial_mod ()) updates in
  Alcotest.(check bool) "BB trace is not a LOOP halting computation" false
    (Reduction.query_holds db loop)

let test_reduction_theorem2 () =
  (* "is past" is exactly "does not halt (within the bound)" *)
  Alcotest.(check bool) "halting machine: query not past" false
    (Reduction.is_past_up_to (Turing.busy_beaver_3 ()) ~max_steps:100);
  Alcotest.(check bool) "looping machine: query past so far" true
    (Reduction.is_past_up_to (Turing.loop_forever ()) ~max_steps:2000)

let test_empty_db_query_false () =
  let m = Turing.busy_beaver_3 () in
  Alcotest.(check bool) "empty MOD: no computation encoded" false
    (Reduction.query_holds (Reduction.initial_mod ()) m)

let () =
  Alcotest.run "decide"
    [ ("turing", [
        Alcotest.test_case "busy beaver halts" `Quick test_busy_beaver_halts;
        Alcotest.test_case "loop never halts" `Quick test_loop_never_halts;
        Alcotest.test_case "step semantics" `Quick test_step_semantics;
      ]);
      ("reduction", [
        Alcotest.test_case "encoding satisfies query" `Quick test_encoding_checks_out;
        Alcotest.test_case "encoding rejects forgery" `Quick test_encoding_rejects_forgery;
        Alcotest.test_case "theorem 2 equivalence" `Quick test_reduction_theorem2;
        Alcotest.test_case "empty db" `Quick test_empty_db_query_false;
      ]);
    ]
