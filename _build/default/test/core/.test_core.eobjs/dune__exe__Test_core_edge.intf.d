test/core/test_core_edge.mli:
