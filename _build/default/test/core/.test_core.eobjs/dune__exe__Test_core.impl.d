test/core/test_core.ml: Alcotest List Moq_core Moq_geom Moq_mod Moq_numeric Moq_poly Option Printf QCheck QCheck_alcotest
