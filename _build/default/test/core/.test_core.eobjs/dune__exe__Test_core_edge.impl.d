test/core/test_core_edge.ml: Alcotest List Moq_core Moq_geom Moq_mod Moq_numeric Moq_poly Moq_workload Option QCheck QCheck_alcotest
