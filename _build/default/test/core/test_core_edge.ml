(* Edge cases and adversarial scenarios for the sweep engine, the FO(f)
   semantics, and the monitor. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module QP = Moq_poly.Qpoly
module Qpiece = Moq_poly.Piecewise.Qpiece
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module BX = Moq_core.Backend.Exact
module EX = Moq_core.Engine.Make (BX)
module SwX = Moq_core.Sweep.Make (BX)
module TLX = SwX.TL
module KnnX = Moq_core.Knn.Make (BX)
module MonX = Moq_core.Monitor.Make (BX)
module SupX = Moq_core.Support.Make (BX)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module Gen = Moq_workload.Gen

let q = Q.of_int
let qs = Q.of_string

let check_set msg expected actual =
  Alcotest.(check (list int)) msg (List.sort compare expected) (Oid.Set.elements actual)

let prop ?(count = 40) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let line_db specs =
  List.fold_left
    (fun db (o, x0, v) ->
      DB.add_initial db o
        (T.linear ~start:(q 0) ~a:(Qvec.of_list [ q v ]) ~b:(Qvec.of_list [ q x0 ])))
    (DB.empty ~dim:1 ~tau:(q 0))
    specs

let origin = Gdist.distance_sq_to_point (Qvec.of_list [ q 0 ])

(* ------------------------------------------------------------------ *)
(* Degenerate databases and intervals                                   *)
(* ------------------------------------------------------------------ *)

let test_empty_db () =
  let db = DB.empty ~dim:1 ~tau:(q 0) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let r = SwX.run ~db ~gdist:origin ~query in
  check_set "no answers ever" [] (TLX.existential r.SwX.timeline);
  Alcotest.(check int) "no events" 0 r.SwX.support_changes

let test_single_object () =
  let db = line_db [ (1, 3, 1) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let r = SwX.run ~db ~gdist:origin ~query in
  check_set "alone and nearest" [ 1 ] (TLX.universal r.SwX.timeline)

let test_point_interval () =
  let db = line_db [ (1, 1, 0); (2, 5, 0) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 3) (q 3)) in
  let r = SwX.run ~db ~gdist:origin ~query in
  (match r.SwX.timeline with
   | [ TLX.At (i, s) ] ->
     Alcotest.(check (float 1e-9)) "instant" 3.0 (BX.instant_to_float i);
     check_set "answer" [ 1 ] s
   | _ -> Alcotest.fail "expected a single At piece");
  check_set "universal = existential" [ 1 ] (TLX.universal r.SwX.timeline)

let test_everyone_dead_in_interval () =
  (* object's life ends before the query interval begins *)
  let tr = T.terminate (T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 1 ]) ~b:(Qvec.of_list [ q 0 ])) (q 2) in
  let db = DB.add_initial (DB.empty ~dim:1 ~tau:(q 0)) 1 tr in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 5) (q 10)) in
  let r = SwX.run ~db ~gdist:origin ~query in
  check_set "dead objects answer nothing" [] (TLX.existential r.SwX.timeline)

let test_born_and_dying_inside_interval () =
  (* o2 exists only on [3, 6]; o1 always; o2 closer while alive *)
  let tr2 =
    T.terminate
      (T.linear ~start:(q 3) ~a:(Qvec.of_list [ q 0 ]) ~b:(Qvec.of_list [ q 1 ]))
      (q 6)
  in
  let db = DB.add_initial (line_db [ (1, 5, 0) ]) 2 tr2 in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let r = SwX.run ~db ~gdist:origin ~query in
  let at t = Option.get (TLX.find_at r.SwX.timeline (BX.instant_of_scalar t)) in
  check_set "before birth" [ 1 ] (at (q 1));
  check_set "while alive" [ 2 ] (at (q 4));
  check_set "at death (closed lifetime)" [ 2 ] (at (q 6));
  check_set "after death" [ 1 ] (at (q 8))

(* ------------------------------------------------------------------ *)
(* Identical curves and exact ties                                      *)
(* ------------------------------------------------------------------ *)

let test_identical_objects () =
  (* two objects with identical trajectories: permanent tie, no events *)
  let db = line_db [ (1, 4, 1); (2, 4, 1); (3, 50, 0) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let r = SwX.run ~db ~gdist:origin ~query in
  check_set "both tied objects always nearest" [ 1; 2 ] (TLX.universal r.SwX.timeline);
  Alcotest.(check int) "no support changes" 0 r.SwX.support_changes

let test_tangent_curves_knn () =
  (* curves touch without crossing: 1-NN answer includes both at the touch *)
  let c1 = Qpiece.of_poly ~start:(q 0) (QP.of_list [ q 26; q (-10); q 1 ]) in
  let c2 = Qpiece.constant ~start:(q 0) (q 1) in
  let eng = EX.create ~start:(q 0) ~horizon:(q 10) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ] in
  EX.advance eng ~upto:(q 5) ~emit:(fun _ -> ());
  (* no event strictly before 5 *)
  Alcotest.(check int) "no crossings yet" 0 (EX.stats eng).EX.crossings;
  let touch = ref None in
  EX.advance eng ~upto:(q 10) ~emit:(function
    | EX.Point i -> touch := Some (KnnX.answer_at eng 1 i)
    | EX.Span _ -> ());
  (match !touch with
   | Some s -> check_set "tie at tangency" [ 1; 2 ] s
   | None -> Alcotest.fail "expected the touch event");
  check_set "separate after" [ 2 ] (KnnX.answer_span eng 1)

(* ------------------------------------------------------------------ *)
(* FO(f) formula corners                                                *)
(* ------------------------------------------------------------------ *)

let test_same_atom () =
  (* "nearest object other than itself": ∀z (z == y ∨ f(y,t) ≤ f(z,t)) is
     just 1-NN; the dual ∃z (¬(z == y) ∧ f(z,t) < f(y,t)) is "not nearest" *)
  let db = line_db [ (1, 1, 0); (2, 5, 0) ] in
  let not_nearest =
    { Fof.y = "y";
      interval = Fof.Interval.closed (q 0) (q 4);
      phi =
        Fof.Exists
          ( "z",
            Fof.And
              ( Fof.Not (Fof.Same ("z", "y")),
                Fof.Cmp (Fof.Lt, Fof.Dist ("z", Fof.t_var), Fof.Dist ("y", Fof.t_var)) ) ) }
  in
  let r = SwX.run ~db ~gdist:origin ~query:not_nearest in
  check_set "o2 is never nearest" [ 2 ] (TLX.universal r.SwX.timeline)

let test_beyond_query () =
  let db = line_db [ (1, 1, 0); (2, 10, 0) ] in
  let query = Fof.beyond_q ~bound:(q 25) ~interval:(Fof.Interval.closed (q 0) (q 4)) in
  let r = SwX.run ~db ~gdist:origin ~query in
  check_set "only the far one beyond 5" [ 2 ] (TLX.universal r.SwX.timeline)

let test_constant_time_term () =
  (* f(y, 2): compare distances as they were at the fixed instant 2 *)
  let db = line_db [ (1, 1, 1); (2, 10, -4) ] in
  (* at t=2: o1 at 3 (d²=9), o2 at 2 (d²=4): o2 closer at that frozen time *)
  let tt = Fof.at_time (q 2) in
  let query =
    { Fof.y = "y";
      interval = Fof.Interval.closed (q 0) (q 8);
      phi = Fof.Forall ("z", Fof.Cmp (Fof.Le, Fof.Dist ("y", tt), Fof.Dist ("z", tt))) }
  in
  let r = SwX.run ~db ~gdist:origin ~query in
  check_set "frozen-time nearest is o2, always" [ 2 ] (TLX.universal r.SwX.timeline);
  Alcotest.(check int) "constant curves never cross" 0 r.SwX.support_changes

let test_ne_and_eq_atoms () =
  let db = line_db [ (1, 2, 1); (2, 10, -1) ] in
  (* equidistant exactly when 2+t = 10-t (t=4) *)
  let eq_query =
    { Fof.y = "y";
      interval = Fof.Interval.closed (q 0) (q 8);
      phi =
        Fof.Exists
          ("z", Fof.And (Fof.Not (Fof.Same ("z", "y")),
                         Fof.Cmp (Fof.Eq, Fof.Dist ("y", Fof.t_var), Fof.Dist ("z", Fof.t_var)))) }
  in
  let r = SwX.run ~db ~gdist:origin ~query:eq_query in
  let at t = Option.get (TLX.find_at r.SwX.timeline (BX.instant_of_scalar t)) in
  check_set "not equidistant at 1" [] (at (q 1));
  check_set "equidistant at 4" [ 1; 2 ] (at (q 4));
  check_set "not after" [] (at (q 6))

let prop_knn_formula_matches_operator =
  prop ~count:25 "knn_q formula = Knn operator (k = 1..3)"
    (QCheck.pair (QCheck.int_range 0 10000) (QCheck.int_range 1 3))
    (fun (seed, k) ->
      let db = Gen.uniform_db ~seed ~n:5 ~extent:25 ~speed:3 () in
      let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let interval = Fof.Interval.closed (q 0) (q 12) in
      let generic = SwX.run ~db ~gdist ~query:(Fof.knn_q ~k ~interval) in
      let op = KnnX.run ~db ~gdist ~k ~lo:(q 0) ~hi:(q 12) in
      List.for_all
        (fun j ->
          let t = Q.div (q (4 * j + 1)) (q 3) in
          match
            ( TLX.find_at generic.SwX.timeline (BX.instant_of_scalar t),
              TLX.find_at op.KnnX.timeline (BX.instant_of_scalar t) )
          with
          | Some a, Some b ->
            (* the formula is tie-inclusive everywhere; the operator breaks
               span ties by label, so compare by distance multiset *)
            let dist o =
              let tr = Option.get (DB.find db o) in
              Moq_poly.Piecewise.Qpiece.eval (Gdist.curve gdist tr) t
            in
            let key s = List.sort Q.compare (List.map dist (Oid.Set.elements s)) in
            let ka = key a and kb = key b in
            let rec prefix a b =
              match a, b with
              | [], _ -> true
              | x :: a', y :: b' -> Q.equal x y && prefix a' b'
              | _ -> false
            in
            (* operator answer ⊆ formula answer, matching distances *)
            prefix kb ka && List.length ka >= List.length kb
          | _ -> false)
        (List.init 9 (fun j -> j)))

(* ------------------------------------------------------------------ *)
(* Support extraction                                                   *)
(* ------------------------------------------------------------------ *)

let test_support_relation () =
  let db = line_db [ (1, 1, 1); (2, 10, -1) ] in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 10)
      (List.map
         (fun (o, tr) -> (EX.Obj (o, 0), BX.curve_of_qpiece (Gdist.curve origin tr)))
         (DB.objects db))
  in
  let s0 = SupX.current eng (BX.instant_of_scalar (q 0)) in
  Alcotest.(check int) "one adjacent atom" 1 (List.length s0);
  (match s0 with
   | [ a ] ->
     Alcotest.(check bool) "o1 below o2" true
       (EX.compare_label a.SupX.left (EX.Obj (1, 0)) = 0 && a.SupX.rel = SupX.Below)
   | _ -> ());
  (* equality at the meeting instant 4.5: (1+t)² = (10-t)² *)
  EX.advance eng ~upto:(q 10) ~emit:(fun _ -> ());
  let s1 = SupX.current eng (BX.instant_of_scalar (qs "9/2")) in
  (match s1 with
   | [ a ] -> Alcotest.(check bool) "equal at crossing" true (a.SupX.rel = SupX.Equal)
   | _ -> Alcotest.fail "one atom expected")

(* ------------------------------------------------------------------ *)
(* Monitor corner cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_update_beyond_horizon () =
  (* updates after the query interval end must not disturb the answer *)
  let db = line_db [ (1, 1, 0); (2, 5, 0) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let m = MonX.create ~db ~gdist:origin ~query () in
  MonX.apply_update_exn m (U.Chdir { oid = 2; tau = q 50; a = Qvec.of_list [ q (-10) ] });
  let tl = MonX.finalize m in
  check_set "o1 nearest throughout" [ 1 ] (TLX.universal tl)

let test_update_exactly_at_event_time () =
  (* o2 overtakes o1 at t = 2; an update arrives exactly at t = 2 *)
  let db = line_db [ (1, 3, 0); (2, 7, -2) ] in
  (* d1 = 9; d2 = (7-2t)^2 = 9 at t = 2 (and t = 5) *)
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let m = MonX.create ~db ~gdist:origin ~query () in
  (* freeze o2 exactly at the crossing instant, at distance 3 = |o1| *)
  MonX.apply_update_exn m (U.Chdir { oid = 2; tau = q 2; a = Qvec.of_list [ q 0 ] });
  let tl = MonX.finalize m in
  let at t = Option.get (TLX.find_at tl (BX.instant_of_scalar t)) in
  check_set "before: o1" [ 1 ] (at (q 1));
  (* both at distance 3 from t = 2 on: permanent tie *)
  check_set "after: tie" [ 1; 2 ] (at (q 7))

let test_monitor_on_past_interval () =
  (* query entirely in the past: monitor validates immediately *)
  let db = line_db [ (1, 1, 1); (2, 10, -1) ] in
  let db = DB.apply_exn db (U.Chdir { oid = 1; tau = q 20; a = Qvec.of_list [ q 0 ] }) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 8)) in
  Alcotest.(check bool) "classified past" true
    (Moq_core.Classify.classify db query = Moq_core.Classify.Past);
  let m = MonX.create ~db ~gdist:origin ~query () in
  let tl = MonX.valid_timeline m in
  let r = SwX.run ~db ~gdist:origin ~query in
  List.iter
    (fun j ->
      let t = Q.div (q j) (q 2) in
      match TLX.find_at tl (BX.instant_of_scalar t), TLX.find_at r.SwX.timeline (BX.instant_of_scalar t) with
      | Some a, Some b -> check_set "monitor = sweep on past" (Oid.Set.elements b) a
      | _ -> Alcotest.fail "gap")
    (List.init 17 (fun j -> j))

(* ------------------------------------------------------------------ *)
(* Discontinuous g-distances (the paper's Section 5 relaxation)         *)
(* ------------------------------------------------------------------ *)

let test_jump_reorders () =
  (* o1 = 10 until t = 5, then drops to 1 (no crossing root exists);
     o2 = 4 constant.  The order must flip exactly at the jump. *)
  let c1 = Qpiece.make [ (q 0, QP.constant (q 10)); (q 5, QP.constant (q 1)) ] in
  let c2 = Qpiece.constant ~start:(q 0) (q 4) in
  Alcotest.(check bool) "c1 really discontinuous" false (Qpiece.is_continuous c1);
  let eng = EX.create ~start:(q 0) ~horizon:(q 10) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ] in
  let first () =
    match EX.first_n eng 1 with
    | [ e ] -> (match EX.label e with EX.Obj (o, _) -> o | _ -> -1)
    | _ -> -1
  in
  Alcotest.(check int) "o2 nearest initially" 2 (first ());
  let points = ref [] in
  EX.advance eng ~upto:(q 10) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  Alcotest.(check (list (float 1e-9))) "one event, at the jump" [ 5.0 ] (List.rev !points);
  Alcotest.(check int) "o1 nearest after the jump" 1 (first ());
  Alcotest.(check int) "counted as a jump" 1 (EX.stats eng).EX.jumps;
  Alcotest.(check int) "no crossings" 0 (EX.stats eng).EX.crossings;
  EX.check_invariants eng

let test_jump_then_crossing () =
  (* a discontinuous curve interacting with an ordinary crossing:
     o1 = t (rising); o2 = 6 until 4, then 1 + t/2 (jump down below o1 at 4,
     then o1 crosses o2 again at t = 2 after the jump? o1(4)=4, o2(4+)=3:
     o2 below; then o1 = t vs o2 = 1 + t/2: equal at t = 2 < 4 -- already
     passed; after 4 they never meet again?  o1 - o2 = t/2 - 1 > 0 for
     t > 2: o2 stays below.  Add a third phase: o2 jumps back up at 8. *)
  let c1 = Qpiece.of_poly ~start:(q 0) (QP.var) in
  let c2 =
    Qpiece.make
      [ (q 0, QP.constant (q 6));
        (q 4, QP.add (QP.constant (q 1)) (QP.scale (qs "1/2") QP.var));
        (q 8, QP.constant (q 20));
      ]
  in
  let eng = EX.create ~start:(q 0) ~horizon:(q 12) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ] in
  let events = ref [] in
  EX.advance eng ~upto:(q 12) ~emit:(function
    | EX.Point i -> events := BX.instant_to_float i :: !events
    | EX.Span _ -> ());
  (* crossing of o1 = t with o2 = 6 at t = 6? no: o2 jumps at 4 before that.
     expected events: jump at 4 (o2 below o1), jump at 8 (o2 above o1) *)
  Alcotest.(check (list (float 1e-9))) "jump events" [ 4.0; 8.0 ] (List.rev !events);
  let s = EX.stats eng in
  Alcotest.(check int) "two jumps" 2 s.EX.jumps;
  EX.check_invariants eng

let test_jump_monitor_chdir () =
  (* chdir on an entry with pending jumps: stale jump events are harmless *)
  let c1 = Qpiece.make [ (q 0, QP.constant (q 10)); (q 5, QP.constant (q 1)) ] in
  let c2 = Qpiece.constant ~start:(q 0) (q 4) in
  let eng = EX.create ~start:(q 0) ~horizon:(q 10) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ] in
  EX.advance eng ~upto:(q 3) ~emit:(fun _ -> ());
  (* replace o1 before its jump: continuous from value 10 now *)
  EX.replace_curve eng ~at:(q 3) (EX.Obj (1, 0)) (Qpiece.constant ~start:(q 0) (q 10));
  let points = ref [] in
  EX.advance eng ~upto:(q 10) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  (* the stale jump event at 5 fires but repositions to the same place *)
  let first () =
    match EX.first_n eng 1 with
    | [ e ] -> (match EX.label e with EX.Obj (o, _) -> o | _ -> -1)
    | _ -> -1
  in
  Alcotest.(check int) "o2 still nearest" 2 (first ());
  EX.check_invariants eng

(* ------------------------------------------------------------------ *)
(* Timeline algebra                                                     *)
(* ------------------------------------------------------------------ *)

let test_timeline_simplify () =
  let i n = BX.instant_of_scalar (q n) in
  let s l = Oid.Set.of_list l in
  let tl =
    [ TLX.At (i 0, s [ 1 ]);
      TLX.Span (i 0, i 2, s [ 1 ]);
      TLX.At (i 2, s [ 1 ]);
      TLX.Span (i 2, i 5, s [ 1 ]);
      TLX.At (i 5, s [ 1; 2 ]);
      TLX.Span (i 5, i 9, s [ 2 ]);
      TLX.At (i 9, s [ 2 ]);
    ]
  in
  let simplified = TLX.simplify tl in
  (* the touch-free event at 2 merges; the genuine change at 5 stays *)
  Alcotest.(check int) "pieces after simplify" 5 (List.length simplified);
  check_set "find mid-merged-span" [ 1 ] (Option.get (TLX.find_at simplified (i 1)));
  check_set "find at change" [ 1; 2 ] (Option.get (TLX.find_at simplified (i 5)));
  Alcotest.(check bool) "outside" true (TLX.find_at simplified (i 11) = None);
  check_set "existential" [ 1; 2 ] (TLX.existential simplified);
  check_set "universal" [] (TLX.universal simplified);
  Alcotest.(check int) "o1's membership pieces" 5 (List.length (TLX.when_member tl 1))

let test_all_crossings () =
  let module C = EX.C in
  (* sin-like wiggle: (t-1)(t-3)(t-5) vs 0 -- three crossings *)
  let p = QP.mul (QP.mul (QP.of_list [ q (-1); Q.one ]) (QP.of_list [ q (-3); Q.one ]))
            (QP.of_list [ q (-5); Q.one ]) in
  let c1 = Qpiece.of_poly ~start:(q 0) p in
  let c2 = Qpiece.constant ~start:(q 0) Q.zero in
  let xs = C.all_crossings ~after:(BX.instant_of_scalar (q 0)) ~horizon:(q 10) c1 c2 in
  Alcotest.(check (list (float 1e-9))) "three crossings" [ 1.0; 3.0; 5.0 ]
    (List.map BX.instant_to_float xs);
  let xs2 = C.all_crossings ~after:(BX.instant_of_scalar (q 3)) ~horizon:(q 4) c1 c2 in
  Alcotest.(check (list (float 1e-9))) "windowed" [] (List.map BX.instant_to_float xs2
                                                      |> List.filter (fun t -> t > 4.0));
  Alcotest.(check int) "only t=4-window crossings" 0 (List.length xs2)

let test_time_scaled_gdist () =
  (* two stationary cars at distances 3 and 4; from t = 5 the nearer one's
     route is congested (factor 4): effective cost 36 vs 16 -- 1-NN flips at
     the discontinuity *)
  let db = line_db [ (1, 3, 0); (2, 4, 0) ] in
  let base = origin in
  let congested = Gdist.time_scaled base [ (q 5, q 4) ] in
  (* only o1 is congested: build per-object curves on the engine *)
  let tr o = Option.get (DB.find db o) in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 10)
      [ (EX.Obj (1, 0), BX.curve_of_qpiece (Gdist.curve congested (tr 1)));
        (EX.Obj (2, 0), BX.curve_of_qpiece (Gdist.curve base (tr 2)));
      ]
  in
  let first () =
    match EX.first_n eng 1 with
    | [ e ] -> (match EX.label e with EX.Obj (o, _) -> o | _ -> -1)
    | _ -> -1
  in
  Alcotest.(check int) "o1 nearest before congestion" 1 (first ());
  let points = ref [] in
  EX.advance eng ~upto:(q 10) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  Alcotest.(check (list (float 1e-9))) "flip at the schedule boundary" [ 5.0 ] (List.rev !points);
  Alcotest.(check int) "o2 nearest under congestion" 2 (first ());
  EX.check_invariants eng

(* ------------------------------------------------------------------ *)
(* Random stress: invariants + timeline sanity                          *)
(* ------------------------------------------------------------------ *)

let prop_engine_invariants_under_updates =
  prop "engine invariants under random update streams" (QCheck.int_range 0 100000)
    (fun seed ->
      let db = Gen.uniform_db ~seed ~n:8 ~extent:40 ~speed:5 () in
      let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 40)) in
      let m = MonX.create ~db ~gdist ~query () in
      let updates = Gen.mixed_stream ~seed:(seed + 7) ~db ~start:(q 0) ~gap:(q 5) ~count:6 () in
      List.iter
        (fun u ->
          MonX.apply_update_exn m u;
          EX.check_invariants (MonX.engine m))
        updates;
      ignore (MonX.finalize m);
      EX.check_invariants (MonX.engine m);
      true)

let prop_timeline_well_formed =
  prop "timelines are chronological and gap-free" (QCheck.int_range 0 100000) (fun seed ->
      let db = Gen.uniform_db ~seed ~n:7 ~extent:40 ~speed:5 () in
      let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let r = KnnX.run ~db ~gdist ~k:2 ~lo:(q 0) ~hi:(q 20) in
      let rec chrono = function
        | TLX.At (a, _) :: (TLX.Span (b, _, _) :: _ as rest) ->
          BX.compare_instant a b = 0 && chrono rest
        | TLX.Span (_, a, _) :: (TLX.At (b, _) :: _ as rest) ->
          BX.compare_instant a b = 0 && chrono rest
        | [ _ ] -> true
        | [] -> false
        | _ -> false
      in
      chrono r.KnnX.timeline)

let () =
  Alcotest.run "core-edge"
    [ ("degenerate", [
        Alcotest.test_case "empty database" `Quick test_empty_db;
        Alcotest.test_case "single object" `Quick test_single_object;
        Alcotest.test_case "point interval" `Quick test_point_interval;
        Alcotest.test_case "everyone dead" `Quick test_everyone_dead_in_interval;
        Alcotest.test_case "birth and death inside" `Quick test_born_and_dying_inside_interval;
      ]);
      ("ties", [
        Alcotest.test_case "identical objects" `Quick test_identical_objects;
        Alcotest.test_case "tangent curves" `Quick test_tangent_curves_knn;
      ]);
      ("formulas", [
        Alcotest.test_case "Same atom" `Quick test_same_atom;
        Alcotest.test_case "beyond" `Quick test_beyond_query;
        Alcotest.test_case "constant time term" `Quick test_constant_time_term;
        Alcotest.test_case "Eq/Ne atoms" `Quick test_ne_and_eq_atoms;
        prop_knn_formula_matches_operator;
      ]);
      ("support", [ Alcotest.test_case "relation extraction" `Quick test_support_relation ]);
      ("monitor-edges", [
        Alcotest.test_case "update beyond horizon" `Quick test_update_beyond_horizon;
        Alcotest.test_case "update at event time" `Quick test_update_exactly_at_event_time;
        Alcotest.test_case "past interval" `Quick test_monitor_on_past_interval;
      ]);
      ("timeline", [
        Alcotest.test_case "simplify/membership/find" `Quick test_timeline_simplify;
        Alcotest.test_case "all_crossings enumeration" `Quick test_all_crossings;
      ]);
      ("discontinuous", [
        Alcotest.test_case "jump reorders without a root" `Quick test_jump_reorders;
        Alcotest.test_case "jumps mixed with crossings" `Quick test_jump_then_crossing;
        Alcotest.test_case "stale jumps after chdir" `Quick test_jump_monitor_chdir;
        Alcotest.test_case "time-scaled (congestion) g-distance" `Quick test_time_scaled_gdist;
      ]);
      ("stress", [ prop_engine_invariants_under_updates; prop_timeline_well_formed ]);
    ]
