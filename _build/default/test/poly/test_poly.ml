module Q = Moq_numeric.Rat
module QP = Moq_poly.Qpoly
module FP = Moq_poly.Fpoly
module Sturm = Moq_poly.Sturm
module Alg = Moq_poly.Algnum
module Froots = Moq_poly.Froots
module Qpiece = Moq_poly.Piecewise.Qpiece

let q = Q.of_int
let qs = Q.of_string
let poly l = QP.of_list (List.map Q.of_int l)

let prop ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Polynomial ring                                                      *)
(* ------------------------------------------------------------------ *)

let test_eval () =
  (* p = 2 - 3t + t^2, roots 1 and 2 *)
  let p = poly [ 2; -3; 1 ] in
  Alcotest.(check string) "p(0)" "2" (Q.to_string (QP.eval p Q.zero));
  Alcotest.(check string) "p(1)" "0" (Q.to_string (QP.eval p (q 1)));
  Alcotest.(check string) "p(3)" "2" (Q.to_string (QP.eval p (q 3)));
  Alcotest.(check string) "p(1/2)" "3/4" (Q.to_string (QP.eval p (qs "1/2")))

let test_degree_normalization () =
  Alcotest.(check int) "deg 0-poly" (-1) (QP.degree (poly [ 0; 0; 0 ]));
  Alcotest.(check int) "deg const" 0 (QP.degree (poly [ 5 ]));
  Alcotest.(check int) "trailing zeros dropped" 1 (QP.degree (poly [ 1; 2; 0; 0 ]))

let test_arith () =
  let p = poly [ 1; 1 ] (* 1+t *) and r = poly [ -1; 1 ] (* t-1 *) in
  Alcotest.(check bool) "mul" true (QP.equal (QP.mul p r) (poly [ -1; 0; 1 ]));
  Alcotest.(check bool) "add" true (QP.equal (QP.add p r) (poly [ 0; 2 ]));
  Alcotest.(check bool) "sub self" true (QP.is_zero (QP.sub p p))

let test_derivative () =
  Alcotest.(check bool) "d/dt" true
    (QP.equal (QP.derivative (poly [ 5; 3; 0; 2 ])) (poly [ 3; 0; 6 ]))

let test_compose () =
  (* p(t) = t^2, q(t) = t+1 -> p∘q = t^2+2t+1 *)
  Alcotest.(check bool) "compose" true
    (QP.equal (QP.compose (poly [ 0; 0; 1 ]) (poly [ 1; 1 ])) (poly [ 1; 2; 1 ]));
  Alcotest.(check bool) "shift" true
    (QP.equal (QP.shift (poly [ 0; 0; 1 ]) (q 1)) (poly [ 1; 2; 1 ]))

let test_divmod () =
  let a = poly [ -1; 0; 0; 1 ] (* t^3-1 *) and b = poly [ -1; 1 ] in
  let quo, rem = QP.divmod a b in
  Alcotest.(check bool) "quo" true (QP.equal quo (poly [ 1; 1; 1 ]));
  Alcotest.(check bool) "rem" true (QP.is_zero rem)

let test_gcd () =
  (* gcd((t-1)(t-2), (t-1)(t-3)) = t-1 *)
  let a = QP.mul (poly [ -1; 1 ]) (poly [ -2; 1 ]) in
  let b = QP.mul (poly [ -1; 1 ]) (poly [ -3; 1 ]) in
  Alcotest.(check bool) "gcd" true (QP.equal (QP.gcd a b) (poly [ -1; 1 ]))

let test_squarefree () =
  (* (t-1)^2 (t-2) -> (t-1)(t-2) *)
  let p = QP.mul (QP.mul (poly [ -1; 1 ]) (poly [ -1; 1 ])) (poly [ -2; 1 ]) in
  Alcotest.(check bool) "squarefree" true
    (QP.equal (QP.squarefree p) (QP.monic (QP.mul (poly [ -1; 1 ]) (poly [ -2; 1 ]))))

let test_sign_jet () =
  (* p = t^2: zero at 0 but positive just after *)
  Alcotest.(check int) "jet t^2 at 0" 1 (QP.sign_jet (poly [ 0; 0; 1 ]) Q.zero);
  (* p = -t^3 *)
  Alcotest.(check int) "jet -t^3 at 0" (-1) (QP.sign_jet (poly [ 0; 0; 0; -1 ]) Q.zero);
  Alcotest.(check int) "jet at nonroot" 1 (QP.sign_jet (poly [ 3; 1 ]) Q.zero)

let test_infinity_signs () =
  Alcotest.(check int) "+inf even" 1 (QP.sign_at_pos_infinity (poly [ 0; 0; 2 ]));
  Alcotest.(check int) "-inf even" 1 (QP.sign_at_neg_infinity (poly [ 0; 0; 2 ]));
  Alcotest.(check int) "-inf odd" (-1) (QP.sign_at_neg_infinity (poly [ 0; 1 ]));
  Alcotest.(check int) "-inf odd neg" 1 (QP.sign_at_neg_infinity (poly [ 0; -1 ]))

let arb_poly =
  QCheck.map
    (fun l -> poly l)
    (QCheck.list_of_size (QCheck.Gen.int_range 0 6) (QCheck.int_range (-20) 20))

let poly_props =
  [ prop "divmod reconstructs" (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
        QCheck.assume (not (QP.is_zero b));
        let quo, rem = QP.divmod a b in
        QP.equal a (QP.add (QP.mul quo b) rem) && QP.degree rem < QP.degree b);
    prop "mul degree adds" (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
        QCheck.assume (not (QP.is_zero a) && not (QP.is_zero b));
        QP.degree (QP.mul a b) = QP.degree a + QP.degree b);
    prop "gcd divides" (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
        QCheck.assume (not (QP.is_zero a) && not (QP.is_zero b));
        let g = QP.gcd a b in
        QP.is_zero (snd (QP.divmod a g)) && QP.is_zero (snd (QP.divmod b g)));
    prop "compose evaluates" (QCheck.triple arb_poly arb_poly (QCheck.int_range (-5) 5))
      (fun (a, b, x) ->
        let x = q x in
        Q.equal (QP.eval (QP.compose a b) x) (QP.eval a (QP.eval b x)));
    prop "eval cauchy bound positive" arb_poly (fun a ->
        Q.sign (QP.cauchy_bound a) > 0);
  ]

(* ------------------------------------------------------------------ *)
(* Sturm / isolation                                                    *)
(* ------------------------------------------------------------------ *)

let count_roots p = List.length (Alg.roots p)

let test_sturm_counts () =
  (* (t-1)(t-2)(t-3) *)
  let p = QP.mul (QP.mul (poly [ -1; 1 ]) (poly [ -2; 1 ])) (poly [ -3; 1 ]) in
  let c = Sturm.chain p in
  Alcotest.(check int) "total" 3 (Sturm.count_real_roots c);
  Alcotest.(check int) "in (0,10]" 3 (Sturm.count_roots_between c Q.zero (q 10));
  Alcotest.(check int) "in (1,3]" 2 (Sturm.count_roots_between c (q 1) (q 3));
  Alcotest.(check int) "in (4,10]" 0 (Sturm.count_roots_between c (q 4) (q 10))

let test_sturm_no_real_roots () =
  (* t^2+1 *)
  Alcotest.(check int) "t^2+1" 0 (Sturm.count_real_roots (Sturm.chain (poly [ 1; 0; 1 ])))

let test_sturm_multiple_roots () =
  (* (t-1)^3: one distinct root *)
  let p = QP.mul (QP.mul (poly [ -1; 1 ]) (poly [ -1; 1 ])) (poly [ -1; 1 ]) in
  Alcotest.(check int) "isolated" 1 (count_roots p)

let test_isolate_sqrt2 () =
  (* t^2 - 2: roots ±sqrt 2 *)
  let p = poly [ -2; 0; 1 ] in
  match Alg.roots p with
  | [ a; b ] ->
    Alcotest.(check (float 1e-9)) "-sqrt2" (-.sqrt 2.0) (Alg.to_float a);
    Alcotest.(check (float 1e-9)) "sqrt2" (sqrt 2.0) (Alg.to_float b);
    Alcotest.(check int) "order" (-1) (Alg.compare a b)
  | _ -> Alcotest.fail "expected 2 roots"

let test_isolate_rational_root () =
  (* (2t-1)(t^2-2): rational root 1/2 among irrationals *)
  let p = QP.mul (QP.of_list [ q (-1); q 2 ]) (poly [ -2; 0; 1 ]) in
  let roots = Alg.roots p in
  Alcotest.(check int) "3 roots" 3 (List.length roots);
  let floats = List.map Alg.to_float roots in
  List.iter2
    (fun expected actual -> Alcotest.(check (float 1e-9)) "root" expected actual)
    [ -.sqrt 2.0; 0.5; sqrt 2.0 ] floats

let test_isolate_close_roots () =
  (* (t - 1000001/1000000)(t - 1000002/1000000): roots 1e-6 apart *)
  let r1 = qs "1000001/1000000" and r2 = qs "1000002/1000000" in
  let p = QP.mul (QP.of_list [ Q.neg r1; Q.one ]) (QP.of_list [ Q.neg r2; Q.one ]) in
  match Alg.roots p with
  | [ a; b ] ->
    Alcotest.(check int) "distinct" (-1) (Alg.compare a b);
    Alcotest.(check int) "a is r1" 0 (Alg.compare a (Alg.of_rat r1));
    Alcotest.(check int) "b is r2" 0 (Alg.compare b (Alg.of_rat r2))
  | _ -> Alcotest.fail "expected 2 roots"

let test_first_root_after () =
  let p = poly [ -2; 0; 1 ] in
  (match Alg.first_root_after p (Alg.of_int 0) with
   | Some r -> Alcotest.(check (float 1e-9)) "sqrt2" (sqrt 2.0) (Alg.to_float r)
   | None -> Alcotest.fail "expected a root");
  (match Alg.first_root_after p (Alg.of_int 2) with
   | Some _ -> Alcotest.fail "no root after 2"
   | None -> ());
  (* strictness: first root after sqrt2 itself is -none- *)
  let sqrt2 = List.nth (Alg.roots p) 1 in
  (match Alg.first_root_after p sqrt2 with
   | Some _ -> Alcotest.fail "strictly after sqrt2"
   | None -> ())

(* ------------------------------------------------------------------ *)
(* Algebraic numbers                                                    *)
(* ------------------------------------------------------------------ *)

let sqrt_alg n =
  (* positive root of t^2 - n *)
  match Alg.roots (poly [ -n; 0; 1 ]) with
  | [ _; r ] -> r
  | [ r ] -> r (* n = 0 *)
  | _ -> Alcotest.fail "sqrt_alg"

let test_alg_compare_equal_different_polys () =
  (* sqrt2 as root of t^2-2 and as root of (t^2-2)(t-10) *)
  let a = sqrt_alg 2 in
  let p2 = QP.mul (poly [ -2; 0; 1 ]) (poly [ -10; 1 ]) in
  let b = List.find (fun r -> Alg.sign r > 0 && Alg.to_float r < 2.0) (Alg.roots p2) in
  Alcotest.(check int) "equal across polys" 0 (Alg.compare a b)

let test_alg_order () =
  let s2 = sqrt_alg 2 and s3 = sqrt_alg 3 in
  Alcotest.(check int) "sqrt2 < sqrt3" (-1) (Alg.compare s2 s3);
  Alcotest.(check int) "sqrt3 > 0" 1 (Alg.sign s3);
  Alcotest.(check int) "rat vs alg" (-1) (Alg.compare (Alg.of_rat (qs "7/5")) s2);
  Alcotest.(check int) "alg vs rat" (-1) (Alg.compare s2 (Alg.of_rat (qs "3/2")))

let test_alg_sign_of_poly () =
  let s2 = sqrt_alg 2 in
  (* (t^2 - 2) vanishes at sqrt2 *)
  Alcotest.(check int) "vanishes" 0 (Alg.sign_of_poly_at (poly [ -2; 0; 1 ]) s2);
  (* t - 1 positive at sqrt2 *)
  Alcotest.(check int) "positive" 1 (Alg.sign_of_poly_at (poly [ -1; 1 ]) s2);
  (* t - 2 negative at sqrt2 *)
  Alcotest.(check int) "negative" (-1) (Alg.sign_of_poly_at (poly [ -2; 1 ]) s2);
  (* multiple of the minimal polynomial also vanishes *)
  Alcotest.(check int) "multiple vanishes" 0
    (Alg.sign_of_poly_at (QP.mul (poly [ -2; 0; 1 ]) (poly [ 17; 3 ])) s2)

let test_rational_between () =
  let s2 = sqrt_alg 2 and s3 = sqrt_alg 3 in
  let m = Alg.rational_between s2 s3 in
  Alcotest.(check bool) "between" true
    (Alg.compare s2 (Alg.of_rat m) < 0 && Alg.compare (Alg.of_rat m) s3 < 0);
  let m2 = Alg.rational_between (Alg.of_int 1) s2 in
  Alcotest.(check bool) "rat-alg between" true
    (Q.compare Q.one m2 < 0 && Alg.compare (Alg.of_rat m2) s2 < 0)

let test_alg_to_rat () =
  Alcotest.(check bool) "rational" true (Alg.to_rat (Alg.of_int 3) <> None);
  Alcotest.(check bool) "irrational" true (Alg.to_rat (sqrt_alg 2) = None)

let arb_cubic =
  (* random cubic-ish polynomials with at least one root *)
  QCheck.map
    (fun (a, b, c) ->
      QP.mul (QP.of_list [ q a; Q.one ]) (QP.of_list [ q b; q 1; q c ]))
    (QCheck.triple (QCheck.int_range (-8) 8) (QCheck.int_range (-8) 8) (QCheck.int_range (-3) 3))

let alg_props =
  [ prop ~count:150 "roots really vanish" arb_cubic (fun p ->
        List.for_all (fun r -> Alg.sign_of_poly_at p r = 0) (Alg.roots p));
    prop ~count:150 "roots ascending distinct" arb_cubic (fun p ->
        let rec ordered = function
          | a :: (b :: _ as rest) -> Alg.compare a b < 0 && ordered rest
          | _ -> true
        in
        ordered (Alg.roots p));
    prop ~count:150 "float agrees with sign tests" arb_cubic (fun p ->
        List.for_all
          (fun r ->
            let f = Alg.to_float r in
            (* evaluating the float poly at the float root is near zero *)
            Float.abs (FP.eval (FP.of_qpoly p) f) < 1e-5)
          (Alg.roots p));
    prop ~count:150 "root count matches sign changes of floats" arb_cubic (fun p ->
        (* roots of p = roots of float version up to tolerance *)
        let exact = List.map Alg.to_float (Alg.roots p) in
        let approx = Froots.real_roots (FP.of_qpoly p) in
        List.length exact = List.length approx
        && List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) exact approx);
  ]

(* ------------------------------------------------------------------ *)
(* Float roots                                                          *)
(* ------------------------------------------------------------------ *)

let fpoly l = FP.of_list l

let test_froots_quadratic () =
  (* (t-1)(t-3) = 3 - 4t + t^2 *)
  (match Froots.real_roots (fpoly [ 3.0; -4.0; 1.0 ]) with
   | [ a; b ] ->
     Alcotest.(check (float 1e-9)) "r1" 1.0 a;
     Alcotest.(check (float 1e-9)) "r2" 3.0 b
   | _ -> Alcotest.fail "expected 2 roots");
  Alcotest.(check int) "no real roots" 0 (List.length (Froots.real_roots (fpoly [ 1.0; 0.0; 1.0 ])))

let test_froots_cancellation () =
  (* t^2 - 10^8 t + 1: classic catastrophic cancellation case *)
  match Froots.real_roots (fpoly [ 1.0; -1e8; 1.0 ]) with
  | [ a; b ] ->
    Alcotest.(check bool) "small root accurate" true (Float.abs (a -. 1e-8) < 1e-15);
    Alcotest.(check bool) "big root accurate" true (Float.abs (b -. 1e8) < 1.0)
  | _ -> Alcotest.fail "expected 2 roots"

let test_froots_quartic () =
  (* (t^2-1)(t^2-4): roots -2 -1 1 2 *)
  let p = FP.mul (fpoly [ -1.0; 0.0; 1.0 ]) (fpoly [ -4.0; 0.0; 1.0 ]) in
  match Froots.real_roots p with
  | [ a; b; c; d ] ->
    List.iter2
      (fun e g -> Alcotest.(check (float 1e-7)) "root" e g)
      [ -2.0; -1.0; 1.0; 2.0 ] [ a; b; c; d ]
  | l -> Alcotest.failf "expected 4 roots, got %d" (List.length l)

let test_froots_first_after () =
  let p = fpoly [ 3.0; -4.0; 1.0 ] in
  Alcotest.(check (option (float 1e-9))) "after 0" (Some 1.0) (Froots.first_root_after p 0.0);
  Alcotest.(check (option (float 1e-9))) "after 1" (Some 3.0) (Froots.first_root_after p 1.0);
  Alcotest.(check (option (float 1e-9))) "after 3" None (Froots.first_root_after p 3.0)

(* ------------------------------------------------------------------ *)
(* Piecewise                                                            *)
(* ------------------------------------------------------------------ *)

let test_piecewise_eval () =
  (* |t| on [-10, 10]: -t then t *)
  let c = Qpiece.make ~stop:(q 10) [ (q (-10), poly [ 0; -1 ]); (Q.zero, poly [ 0; 1 ]) ] in
  Alcotest.(check string) "at -3" "3" (Q.to_string (Qpiece.eval c (q (-3))));
  Alcotest.(check string) "at 4" "4" (Q.to_string (Qpiece.eval c (q 4)));
  Alcotest.(check string) "at 0" "0" (Q.to_string (Qpiece.eval c Q.zero));
  Alcotest.(check string) "at stop" "10" (Q.to_string (Qpiece.eval c (q 10)));
  Alcotest.(check bool) "continuous" true (Qpiece.is_continuous c);
  Alcotest.check_raises "outside" (Invalid_argument "Piecewise: out of domain") (fun () ->
      ignore (Qpiece.eval c (q 11)))

let test_piecewise_combine () =
  let a = Qpiece.make [ (Q.zero, poly [ 0; 1 ]); (q 5, poly [ 5 ]) ] in
  (* a(t) = t on [0,5), 5 after -- wait: constant 5 from t=5 *)
  let b = Qpiece.constant ~start:(q 1) (q 2) in
  let d = Qpiece.sub a b in
  Alcotest.(check string) "start" "1" (Q.to_string (Qpiece.start d));
  Alcotest.(check string) "(a-b)(3)" "1" (Q.to_string (Qpiece.eval d (q 3)));
  Alcotest.(check string) "(a-b)(7)" "3" (Q.to_string (Qpiece.eval d (q 7)));
  Alcotest.(check int) "breakpoint count" 1 (List.length (Qpiece.breakpoints d))

let test_piecewise_compose_affine () =
  let c = Qpiece.make [ (Q.zero, poly [ 0; 1 ]) ] (* identity from 0 *) in
  let d = Qpiece.compose_affine c ~scale:(q 2) ~offset:(q 6) in
  (* d(t) = 2t+6, valid when 2t+6 >= 0, t >= -3 *)
  Alcotest.(check string) "start" "-3" (Q.to_string (Qpiece.start d));
  Alcotest.(check string) "value" "10" (Q.to_string (Qpiece.eval d (q 2)))

let test_piecewise_extend () =
  let c = Qpiece.make [ (Q.zero, poly [ 0; 1 ]) ] in
  let c' = Qpiece.extend_last_from c (q 5) (poly [ 5 ]) () in
  Alcotest.(check string) "before tau" "3" (Q.to_string (Qpiece.eval c' (q 3)));
  Alcotest.(check string) "after tau" "5" (Q.to_string (Qpiece.eval c' (q 9)));
  Alcotest.(check bool) "continuous" true (Qpiece.is_continuous c')

let test_piecewise_clip () =
  let c = Qpiece.make [ (Q.zero, poly [ 0; 1 ]); (q 5, poly [ 5 ]) ] in
  let d = Qpiece.clip c ~from_:(Some (q 2)) ~until:(Some (q 8)) in
  Alcotest.(check string) "start" "2" (Q.to_string (Qpiece.start d));
  Alcotest.(check bool) "stop" true (Qpiece.stop d = Some (q 8));
  Alcotest.(check string) "inside" "5" (Q.to_string (Qpiece.eval d (q 6)));
  Alcotest.check_raises "clipped out" (Invalid_argument "Piecewise: out of domain") (fun () ->
      ignore (Qpiece.eval d (q 1)))

let () =
  Alcotest.run "poly"
    [ ("ring", [
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "degree/normalization" `Quick test_degree_normalization;
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "derivative" `Quick test_derivative;
        Alcotest.test_case "compose/shift" `Quick test_compose;
        Alcotest.test_case "divmod" `Quick test_divmod;
        Alcotest.test_case "gcd" `Quick test_gcd;
        Alcotest.test_case "squarefree" `Quick test_squarefree;
        Alcotest.test_case "sign_jet" `Quick test_sign_jet;
        Alcotest.test_case "infinity signs" `Quick test_infinity_signs;
      ]);
      ("ring-props", poly_props);
      ("sturm", [
        Alcotest.test_case "counts" `Quick test_sturm_counts;
        Alcotest.test_case "no real roots" `Quick test_sturm_no_real_roots;
        Alcotest.test_case "multiple roots" `Quick test_sturm_multiple_roots;
        Alcotest.test_case "isolate sqrt2" `Quick test_isolate_sqrt2;
        Alcotest.test_case "rational among irrational" `Quick test_isolate_rational_root;
        Alcotest.test_case "close roots separated" `Quick test_isolate_close_roots;
        Alcotest.test_case "first_root_after" `Quick test_first_root_after;
      ]);
      ("algnum", [
        Alcotest.test_case "equal across defining polys" `Quick test_alg_compare_equal_different_polys;
        Alcotest.test_case "order" `Quick test_alg_order;
        Alcotest.test_case "sign_of_poly_at" `Quick test_alg_sign_of_poly;
        Alcotest.test_case "rational_between" `Quick test_rational_between;
        Alcotest.test_case "to_rat" `Quick test_alg_to_rat;
      ]);
      ("algnum-props", alg_props);
      ("froots", [
        Alcotest.test_case "quadratic" `Quick test_froots_quadratic;
        Alcotest.test_case "cancellation-stable" `Quick test_froots_cancellation;
        Alcotest.test_case "quartic" `Quick test_froots_quartic;
        Alcotest.test_case "first after" `Quick test_froots_first_after;
      ]);
      ("piecewise", [
        Alcotest.test_case "eval" `Quick test_piecewise_eval;
        Alcotest.test_case "combine/sub" `Quick test_piecewise_combine;
        Alcotest.test_case "compose affine" `Quick test_piecewise_compose_affine;
        Alcotest.test_case "extend (chdir)" `Quick test_piecewise_extend;
        Alcotest.test_case "clip" `Quick test_piecewise_clip;
      ]);
    ]
