module OL = Moq_dstruct.Order_list
module LH = Moq_dstruct.Leftist_heap
module BH = Moq_dstruct.Bin_heap
module QI = Moq_dstruct.Interval.Make (Moq_poly.Field.Rat_field)
module Q = Moq_numeric.Rat

let prop ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Order_list                                                           *)
(* ------------------------------------------------------------------ *)

let test_ol_insert_sorted () =
  let t = OL.create () in
  let hs = List.map (fun v -> OL.insert_sorted ~cmp:compare t v) [ 5; 1; 3; 2; 4 ] in
  OL.check_invariants t;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (OL.to_list t);
  Alcotest.(check int) "length" 5 (OL.length t);
  List.iter2
    (fun handle v -> Alcotest.(check int) "elt" v (OL.elt handle))
    hs [ 5; 1; 3; 2; 4 ]

let test_ol_neighbors () =
  let t = OL.create () in
  let h3 = OL.insert_sorted ~cmp:compare t 3 in
  let _ = OL.insert_sorted ~cmp:compare t 1 in
  let h5 = OL.insert_sorted ~cmp:compare t 5 in
  (match OL.next t h3 with
   | Some n -> Alcotest.(check int) "next of 3" 5 (OL.elt n)
   | None -> Alcotest.fail "next");
  (match OL.prev t h3 with
   | Some p -> Alcotest.(check int) "prev of 3" 1 (OL.elt p)
   | None -> Alcotest.fail "prev");
  Alcotest.(check bool) "last has no next" true (OL.next t h5 = None);
  (match OL.first t with
   | Some f -> Alcotest.(check int) "first" 1 (OL.elt f)
   | None -> Alcotest.fail "first")

let test_ol_delete () =
  let t = OL.create () in
  let handles = List.map (fun v -> OL.insert_sorted ~cmp:compare t v) [ 1; 2; 3; 4; 5; 6; 7 ] in
  let h4 = List.nth handles 3 in
  OL.delete t h4;
  OL.check_invariants t;
  Alcotest.(check (list int)) "after delete" [ 1; 2; 3; 5; 6; 7 ] (OL.to_list t);
  (* remaining handles still point at their elements *)
  Alcotest.(check int) "handle stable" 5 (OL.elt (List.nth handles 4));
  Alcotest.check_raises "double delete" (Invalid_argument "Order_list: delete: handle already deleted")
    (fun () -> OL.delete t h4)

let test_ol_swap_adjacent () =
  let t = OL.create () in
  let handles = List.map (fun v -> OL.insert_sorted ~cmp:compare t v) [ 1; 2; 3 ] in
  let h1 = List.nth handles 0 and h2 = List.nth handles 1 in
  OL.swap_adjacent t h1 h2;
  Alcotest.(check (list int)) "swapped" [ 2; 1; 3 ] (OL.to_list t);
  (* payloads moved: h1 now holds 2 *)
  Alcotest.(check int) "payload swap" 2 (OL.elt h1);
  Alcotest.check_raises "not adjacent" (Invalid_argument "Order_list.swap_adjacent: not adjacent")
    (fun () -> OL.swap_adjacent t h2 h2)

let test_ol_rank_nth () =
  let t = OL.create () in
  let handles = List.map (fun v -> OL.insert_sorted ~cmp:compare t v) [ 10; 20; 30; 40 ] in
  List.iteri (fun i handle -> Alcotest.(check int) "rank" i (OL.rank t handle)) handles;
  (match OL.nth t 2 with
   | Some n -> Alcotest.(check int) "nth 2" 30 (OL.elt n)
   | None -> Alcotest.fail "nth");
  Alcotest.(check bool) "nth out of range" true (OL.nth t 4 = None)

(* Model-based random testing: a sequence of ops against a sorted-list model. *)
type ol_op = Insert of int | DeleteNth of int | SwapAt of int

let arb_ol_ops =
  QCheck.list_of_size (QCheck.Gen.int_range 1 120)
    (QCheck.map
       (fun (which, v) ->
         if which mod 4 < 2 then Insert v
         else if which mod 4 = 2 then DeleteNth (abs v)
         else SwapAt (abs v))
       (QCheck.pair QCheck.small_int (QCheck.int_range (-50) 50)))

(* Sorted-mode model: inserts and deletes only.  (insert_sorted is only
   meaningful while the sequence is sorted, which is the sweep's invariant:
   adjacent swaps happen exactly when the evolving comparator reorders.) *)
let run_ol_model ops =
  let t = OL.create () in
  let model = ref [] in
  let apply = function
    | Insert v ->
      ignore (OL.insert_sorted ~cmp:compare t v);
      model := List.merge compare [ v ] !model
    | DeleteNth i | SwapAt i ->
      let n = OL.length t in
      if n > 0 then begin
        let i = i mod n in
        (match OL.nth t i with
         | Some handle -> OL.delete t handle
         | None -> assert false);
        model := List.filteri (fun j _ -> j <> i) !model
      end
  in
  List.iter
    (fun op ->
      apply op;
      OL.check_invariants t;
      if OL.to_list t <> !model then failwith "model mismatch")
    ops;
  true

(* Positional-mode model: build once, then adjacent swaps and positional
   deletes against a plain list model. *)
let run_ol_swap_model (init, ops) =
  let t = OL.create () in
  List.iter (fun v -> ignore (OL.insert_sorted ~cmp:compare t v)) init;
  let model = ref (List.sort compare init) in
  let apply = function
    | Insert _ -> ()
    | DeleteNth i ->
      let n = OL.length t in
      if n > 0 then begin
        let i = i mod n in
        OL.delete t (Option.get (OL.nth t i));
        model := List.filteri (fun j _ -> j <> i) !model
      end
    | SwapAt i ->
      let n = OL.length t in
      if n >= 2 then begin
        let i = i mod (n - 1) in
        OL.swap_adjacent t (Option.get (OL.nth t i)) (Option.get (OL.nth t (i + 1)));
        let arr = Array.of_list !model in
        let x = arr.(i) in
        arr.(i) <- arr.(i + 1);
        arr.(i + 1) <- x;
        model := Array.to_list arr
      end
  in
  List.iter
    (fun op ->
      apply op;
      OL.check_invariants t;
      if OL.to_list t <> !model then failwith "swap model mismatch")
    ops;
  true

let ol_props =
  [ prop "model-based ops" arb_ol_ops run_ol_model;
    prop "swap/delete positional model"
      (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 2 30) (QCheck.int_range 0 100)) arb_ol_ops)
      run_ol_swap_model;
    prop "ranks consistent after ops" arb_ol_ops (fun ops ->
        let t = OL.create () in
        List.iter (function Insert v -> ignore (OL.insert_sorted ~cmp:compare t v) | _ -> ()) ops;
        let rec check i =
          if i >= OL.length t then true
          else begin
            match OL.nth t i with
            | Some handle -> OL.rank t handle = i && check (i + 1)
            | None -> false
          end
        in
        check 0);
  ]

(* ------------------------------------------------------------------ *)
(* Leftist heap                                                         *)
(* ------------------------------------------------------------------ *)

let test_lh_basic () =
  let t = LH.create ~cmp:compare in
  let _ = LH.insert t 5 "e" in
  let _ = LH.insert t 1 "a" in
  let _ = LH.insert t 3 "c" in
  LH.check_invariants t;
  Alcotest.(check (option (pair int string))) "min" (Some (1, "a")) (LH.find_min t);
  Alcotest.(check (option (pair int string))) "pop" (Some (1, "a")) (LH.pop_min t);
  Alcotest.(check (option (pair int string))) "pop2" (Some (3, "c")) (LH.pop_min t);
  Alcotest.(check int) "length" 1 (LH.length t)

let test_lh_delete_handle () =
  let t = LH.create ~cmp:compare in
  let handles = List.map (fun k -> LH.insert t k (string_of_int k)) [ 7; 3; 9; 1; 5; 8; 2 ] in
  let h9 = List.nth handles 2 in
  LH.delete t h9;
  LH.check_invariants t;
  Alcotest.(check int) "length" 6 (LH.length t);
  Alcotest.(check bool) "mem false" false (LH.mem h9);
  (* delete is idempotent *)
  LH.delete t h9;
  Alcotest.(check int) "still 6" 6 (LH.length t);
  (* drain in order, 9 gone *)
  let rec drain acc = match LH.pop_min t with None -> List.rev acc | Some (k, _) -> drain (k :: acc) in
  Alcotest.(check (list int)) "drain" [ 1; 2; 3; 5; 7; 8 ] (drain [])

let test_lh_delete_root () =
  let t = LH.create ~cmp:compare in
  let h1 = LH.insert t 1 () in
  let _ = LH.insert t 2 () in
  LH.delete t h1;
  LH.check_invariants t;
  Alcotest.(check (option (pair int unit))) "min" (Some (2, ())) (LH.find_min t)

type lh_op = Push of int | Pop | DeleteIdx of int

let arb_lh_ops =
  QCheck.list_of_size (QCheck.Gen.int_range 1 150)
    (QCheck.map
       (fun (which, v) ->
         if which mod 3 = 0 then Push v else if which mod 3 = 1 then Pop else DeleteIdx (abs v))
       (QCheck.pair QCheck.small_int (QCheck.int_range 0 100)))

let run_lh_model ops =
  let t = LH.create ~cmp:compare in
  (* model: multiset as sorted list; track live handles *)
  let model = ref [] in
  let live = ref [] in
  let apply = function
    | Push v ->
      let handle = LH.insert t v () in
      live := (v, handle) :: !live;
      model := List.merge compare [ v ] !model
    | Pop ->
      (match LH.pop_min t, !model with
       | None, [] -> ()
       | Some (k, ()), m :: rest ->
         if k <> m then failwith "pop mismatch";
         model := rest;
         live := List.filter (fun (_, handle) -> LH.mem handle) !live
       | _ -> failwith "pop disagreement")
    | DeleteIdx i ->
      if !live <> [] then begin
        let i = i mod List.length !live in
        let v, handle = List.nth !live i in
        if LH.mem handle then begin
          LH.delete t handle;
          (* remove one occurrence of v from model *)
          let rec remove = function
            | [] -> failwith "model missing"
            | x :: rest -> if x = v then rest else x :: remove rest
          in
          model := remove !model
        end;
        live := List.filteri (fun j _ -> j <> i) !live
      end
  in
  List.iter
    (fun op ->
      apply op;
      LH.check_invariants t;
      if LH.length t <> List.length !model then failwith "length mismatch")
    ops;
  (* final drain matches sorted model *)
  let rec drain acc = match LH.pop_min t with None -> List.rev acc | Some (k, ()) -> drain (k :: acc) in
  drain [] = !model

let lh_props = [ prop "model-based heap ops" arb_lh_ops run_lh_model ]

(* ------------------------------------------------------------------ *)
(* Binary heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_bh_heapsort () =
  let t = BH.create ~cmp:compare in
  List.iter (fun k -> BH.insert t k ()) [ 4; 1; 7; 3; 9; 2 ];
  BH.check_invariants t;
  let rec drain acc = match BH.pop_min t with None -> List.rev acc | Some (k, ()) -> drain (k :: acc) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 7; 9 ] (drain [])

let bh_props =
  [ prop "heapsort equals sort" (QCheck.list_of_size (QCheck.Gen.int_range 0 80) QCheck.int)
      (fun l ->
        let t = BH.create ~cmp:compare in
        List.iter (fun k -> BH.insert t k ()) l;
        let rec drain acc = match BH.pop_min t with None -> List.rev acc | Some (k, ()) -> drain (k :: acc) in
        drain [] = List.sort compare l);
  ]

(* ------------------------------------------------------------------ *)
(* Interval                                                             *)
(* ------------------------------------------------------------------ *)

let q = Q.of_int

let test_interval () =
  let i = QI.closed (q 1) (q 5) in
  Alcotest.(check bool) "mem" true (QI.mem (q 3) i);
  Alcotest.(check bool) "mem lo" true (QI.mem (q 1) i);
  Alcotest.(check bool) "not mem" false (QI.mem (q 6) i);
  Alcotest.(check bool) "unbounded" true (QI.mem (q 1000) (QI.from (q 0)));
  (match QI.intersect i (QI.closed (q 3) (q 9)) with
   | Some j -> Alcotest.(check bool) "intersect" true (QI.equal j (QI.closed (q 3) (q 5)))
   | None -> Alcotest.fail "intersect");
  Alcotest.(check bool) "disjoint" true (QI.intersect i (QI.closed (q 6) (q 7)) = None);
  Alcotest.(check bool) "touching point" true
    (match QI.intersect i (QI.closed (q 5) (q 7)) with
     | Some j -> QI.is_point j
     | None -> false);
  Alcotest.(check bool) "subset" true (QI.subset (QI.closed (q 2) (q 3)) i);
  Alcotest.(check bool) "subset of all" true (QI.subset i QI.all);
  Alcotest.(check bool) "all not subset" false (QI.subset QI.all i);
  Alcotest.check_raises "bad interval" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (QI.closed (q 5) (q 1)))

let () =
  Alcotest.run "dstruct"
    [ ("order_list", [
        Alcotest.test_case "insert sorted" `Quick test_ol_insert_sorted;
        Alcotest.test_case "neighbors" `Quick test_ol_neighbors;
        Alcotest.test_case "delete/splice" `Quick test_ol_delete;
        Alcotest.test_case "swap adjacent" `Quick test_ol_swap_adjacent;
        Alcotest.test_case "rank/nth" `Quick test_ol_rank_nth;
      ]);
      ("order_list-props", ol_props);
      ("leftist_heap", [
        Alcotest.test_case "basic" `Quick test_lh_basic;
        Alcotest.test_case "delete by handle" `Quick test_lh_delete_handle;
        Alcotest.test_case "delete root" `Quick test_lh_delete_root;
      ]);
      ("leftist_heap-props", lh_props);
      ("bin_heap", [ Alcotest.test_case "heapsort" `Quick test_bh_heapsort ]);
      ("bin_heap-props", bh_props);
      ("interval", [ Alcotest.test_case "ops" `Quick test_interval ]);
    ]
