examples/police_pursuit.ml: Format List Moq_core Moq_geom Moq_mod Moq_numeric Moq_poly
