examples/air_traffic.ml: Format List Moq_core Moq_cql Moq_geom Moq_mod Moq_numeric Moq_workload Option
