examples/quickstart.mli:
