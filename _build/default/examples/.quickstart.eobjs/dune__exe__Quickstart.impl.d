examples/quickstart.ml: Format List Moq_core Moq_geom Moq_mod Moq_numeric
