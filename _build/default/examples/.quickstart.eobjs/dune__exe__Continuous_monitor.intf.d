examples/continuous_monitor.mli:
