examples/police_pursuit.mli:
