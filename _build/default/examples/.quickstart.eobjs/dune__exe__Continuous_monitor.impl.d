examples/continuous_monitor.ml: Format List Moq_baseline Moq_core Moq_geom Moq_mod Moq_numeric Moq_workload
