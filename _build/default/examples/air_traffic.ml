(* Air traffic control — the paper's running scenario (Examples 1, 3, 11).

   Airplanes move in 3-d space; we replay Example 1's airplane, ask the
   constraint query of Example 3 ("which aircraft entered the Santa Barbara
   County airspace?"), and the FO(f) queries of Example 11 ("k nearest
   flights to Flight 623", "flights within 50 km").

   Run with: dune exec examples/air_traffic.exe *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module Cql = Moq_cql.Cql
module Cql_ex = Moq_cql.Cql_examples
module B = Moq_core.Backend.Exact
module Knn = Moq_core.Knn.Make (B)
module Range = Moq_core.Range_query.Make (B)
module Gdist = Moq_core.Gdist
module Scenario = Moq_workload.Scenario

let q = Q.of_int
let vec l = Qvec.of_list (List.map Q.of_int l)

let flight_623 = 623
let fleet () =
  (* Flight 623 cruises east; the Example 1 airplane is flight 7; two more
     flights around. *)
  let db = DB.empty ~dim:3 ~tau:(q 0) in
  let db = DB.add_initial db flight_623 (T.linear ~start:(q 0) ~a:(vec [ 2; 0; 0 ]) ~b:(vec [ 0; 0; 30 ])) in
  let db = DB.add_initial db 7 (Scenario.example1_airplane ()) in
  let db = DB.add_initial db 100 (T.linear ~start:(q 0) ~a:(vec [ 2; 1; 0 ]) ~b:(vec [ 5; -40; 28 ])) in
  let db = DB.add_initial db 200 (T.linear ~start:(q 0) ~a:(vec [ -1; 0; 0 ]) ~b:(vec [ 90; 4; 33 ])) in
  db

let pp_set fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Oid.pp)
    (Oid.Set.elements s)

let () =
  Format.printf "=== air traffic (Examples 1, 3, 11) ===@.@.";
  let db = fleet () in
  let plane7 = Option.get (DB.find db 7) in
  Format.printf "Example 1 airplane: at t=21 it is at %a, at t=22 at %a@." Qvec.pp
    (T.position_exn plane7 (q 21))
    Qvec.pp
    (T.position_exn plane7 (q 22));

  (* --- Example 3: the constraint query "entering the county" ----------- *)
  (* The county is the box [0,40] x [-5,5] (ignore altitude by projecting:
     the CQL model is dimension-generic, we pose it on the 2-d shadow). *)
  let shadow = DB.empty ~dim:2 ~tau:(q 0) in
  let project o tr db2 =
    let pieces =
      List.map
        (fun (p : T.piece) ->
          { T.start = p.T.start;
            a = Qvec.of_list [ Qvec.get p.T.a 0; Qvec.get p.T.a 1 ];
            b = Qvec.of_list [ Qvec.get p.T.b 0; Qvec.get p.T.b 1 ] })
        (T.pieces tr)
    in
    DB.add_initial db2 o (T.of_pieces ?death:(T.death tr) pieces)
  in
  (* Flight 7's 3-piece trajectory makes the nested-quantifier QE blow up
     (the very difficulty Section 3 of the paper uses to motivate FO(f)),
     so the CQL demo poses the query on the constant-velocity flights. *)
  let shadow =
    List.fold_left
      (fun acc (o, tr) -> if List.length (T.pieces tr) = 1 then project o tr acc else acc)
      shadow (DB.objects db)
  in
  let county = Cql_ex.box [ (q 0, q 40); (q (-5), q 5) ] in
  let entering = Cql_ex.entering ~region:county ~dim:2 ~tau1:(q 0) ~tau2:(q 30) in
  Format.printf "@.Example 3 (CQL, quantifier elimination): entering the county in [0,30]: %a@."
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Oid.pp)
    (Cql.answer shadow entering);

  (* --- Example 11: k nearest flights to Flight 623 --------------------- *)
  let gamma = Option.get (DB.find db flight_623) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let others = DB.objects db |> List.filter (fun (o, _) -> o <> flight_623) in
  let db_others = List.fold_left (fun acc (o, tr) -> DB.add_initial acc o tr) (DB.empty ~dim:3 ~tau:(q 0)) others in
  let r = Knn.run ~db:db_others ~gdist ~k:2 ~lo:(q 0) ~hi:(q 40) in
  Format.printf "@.2 nearest flights to Flight %d over [0, 40]:@.%a@." flight_623 Knn.TL.pp
    r.Knn.timeline;

  (* "List all flights that were within 50 km from Flight 623" *)
  let r50 = Range.run ~db:db_others ~gdist ~bound:(q (50 * 50)) ~lo:(q 0) ~hi:(q 40) in
  Format.printf "Within 50 km of Flight %d at some time: %a@." flight_623 pp_set
    (Range.TL.existential r50.Range.timeline);
  Format.printf "Within 50 km throughout [0, 40]: %a@." pp_set
    (Range.TL.universal r50.Range.timeline)
