(* Police pursuit — the paper's "fastest arrival" query (Examples 7, 9 and
   Figure 1): which police car can reach the fleeing target first?

   The g-distance here is interception time squared, t_Δ² =
   |x_target(t) − x_car(t)|² / (v_car² − v_target²) — the paper's quadratic
   form under the Figure 1 pursuit geometry.  Cars have different maximum
   speeds, so this is genuinely not a nearest-neighbour query: a fast car
   far away can beat a slow car nearby.

   Run with: dune exec examples/police_pursuit.exe *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module QP = Moq_poly.Qpoly
module Qpiece = Moq_poly.Piecewise.Qpiece
module B = Moq_core.Backend.Exact
module Engine = Moq_core.Engine.Make (B)
module Monitor = Moq_core.Monitor.Make (B)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist

let q = Q.of_int
let vec l = Qvec.of_list (List.map Q.of_int l)

(* Cars: (oid, start position, patrol velocity, max speed). *)
let cars = [ (1, [ 0; 10 ], [ 1; 0 ], 6); (2, [ 40; -5 ], [ 0; 1 ], 9); (3, [ -30; 0 ], [ 1; 1 ], 12) ]

let () =
  Format.printf "=== police pursuit (Examples 7, 9; Figure 1) ===@.@.";
  (* The target drives east at speed 5. *)
  let target = T.linear ~start:(q 0) ~a:(vec [ 5; 0 ]) ~b:(vec [ 10; 0 ]) in
  let db =
    List.fold_left
      (fun acc (o, b, a, _) -> DB.add_initial acc o (T.linear ~start:(q 0) ~a:(vec a) ~b:(vec b)))
      (DB.empty ~dim:2 ~tau:(q 0))
      cars
  in

  (* Figure 1 check: the interception-time curve is a quadratic polynomial
     of t (the paper's t_Δ² = c₂t² + c₁t + c₀). *)
  let show_curve (o, b, a, vmax) =
    let tr = T.linear ~start:(q 0) ~a:(vec a) ~b:(vec b) in
    let g = Gdist.intercept_time_sq ~gamma:target ~target_speed:(q 5) ~speed:(q vmax) in
    let curve = Gdist.curve g tr in
    let poly, _ = Qpiece.piece_covering curve (q 0) in
    Format.printf "car %d (v_max = %2d): t_delta^2(t) = %a   (degree %d)@." o vmax QP.pp poly
      (QP.degree poly)
  in
  List.iter show_curve cars;

  (* Sweep the per-car interception curves: each car needs its own
     g-distance (its own speed), so we mount the instantiated curves on the
     engine directly. *)
  let entries =
    List.map
      (fun (o, b, a, vmax) ->
        let tr = T.linear ~start:(q 0) ~a:(vec a) ~b:(vec b) in
        let g = Gdist.intercept_time_sq ~gamma:target ~target_speed:(q 5) ~speed:(q vmax) in
        (Engine.Obj (o, 0), B.curve_of_qpiece (Gdist.curve g tr)))
      cars
  in
  let eng = Engine.create ~start:(q 0) ~horizon:(q 30) entries in
  let winner () =
    match Engine.first_n eng 1 with
    | [ e ] -> (match Engine.label e with Engine.Obj (o, _) -> o | Engine.Cst _ -> -1)
    | _ -> -1
  in
  Format.printf "@.fastest car at t = 0: car %d@." (winner ());
  let last = ref (winner ()) in
  Engine.advance eng ~upto:(q 30) ~emit:(function
    | Engine.Point i ->
      let w = winner () in
      if w <> !last then begin
        Format.printf "at t = %a the fastest interceptor becomes car %d@." B.pp_instant i w;
        last := w
      end
    | Engine.Span _ -> ());

  (* And the plain "who reaches a stationary suspect first" as an FO(f)
     query, using the scaled Euclidean g-distance (same speed for all,
     reduces to 1-NN; Example 7's simplified form). *)
  let suspect = T.stationary ~start:(q 0) (vec [ 15; 5 ]) in
  let g = Gdist.scaled_euclidean_sq ~gamma:suspect ~speed:(q 6) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 20)) in
  let m = Monitor.create ~db ~gdist:g ~query () in
  Monitor.apply_update_exn m (U.Chdir { oid = 1; tau = q 4; a = vec [ 3; -1 ] });
  let tl = Monitor.finalize m in
  Format.printf "@.monitored 'first responder' to a suspect at (15,5), with car 1 turning at t=4:@.%a@."
    Monitor.TL.pp tl
