(* Continuous monitoring — future and continuing queries under a live
   update stream (Section 5, Theorems 5 and 10).

   A dispatcher keeps "the 2 nearest vehicles to the depot" continuously
   valid while vehicles appear, turn, and retire; the depot itself then
   relocates (a chdir on the *query* trajectory — the Theorem 10 case).
   At the end we compare the eager monitor against lazy evaluation.

   Run with: dune exec examples/continuous_monitor.exe *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module B = Moq_core.Backend.Exact
module Monitor = Moq_core.Monitor.Make (B)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module Lazy_eval = Moq_baseline.Lazy_eval.Make (B)
module Gen = Moq_workload.Gen

let q = Q.of_int
let vec l = Qvec.of_list (List.map Q.of_int l)

let () =
  Format.printf "=== continuous monitoring (Theorems 5 and 10) ===@.@.";
  let db = Gen.uniform_db ~seed:2024 ~n:12 ~extent:100 ~speed:6 () in
  let depot = T.stationary ~start:(q 0) (vec [ 0; 0 ]) in
  let gdist = Gdist.euclidean_sq ~gamma:depot in
  (* monitor the nearest vehicle over [0, 60] *)
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 60)) in
  let m = Monitor.create ~db ~gdist ~query () in
  let lazy_ = Lazy_eval.create ~db ~gdist ~query in
  Format.printf "initialized: %d objects sorted (Theorem 5.1)@." (DB.cardinal db);

  let updates = Gen.mixed_stream ~seed:7 ~db ~start:(q 0) ~gap:(q 4) ~count:10 () in
  List.iter
    (fun u ->
      let before = (Monitor.stats m).Monitor.E.crossings in
      Monitor.apply_update_exn m u;
      Lazy_eval.apply_update_exn lazy_ u;
      Format.printf "applied %-34s (%d crossings processed before it)@."
        (Format.asprintf "%a" U.pp u)
        ((Monitor.stats m).Monitor.E.crossings - before))
    updates;

  (* the depot relocates at t = 45: every g-distance curve changes at once,
     but the precedence relation at 45 is untouched -- O(N), no re-sort *)
  let depot' = T.chdir depot (q 45) (vec [ 2; 1 ]) in
  Monitor.chdir_query m ~tau:(q 45) ~gdist:(Gdist.euclidean_sq ~gamma:depot');
  Format.printf "@.depot relocated at t = 45 (Theorem 10: O(N) event rebuild)@.";

  let tl = Monitor.finalize m in
  let pieces = List.length tl in
  Format.printf "@.validated timeline has %d pieces; final answers:@." pieces;
  let tail = if pieces > 6 then List.filteri (fun i _ -> i >= pieces - 6) tl else tl in
  Format.printf "%a@." Monitor.TL.pp tail;

  (* lazy evaluation gets the same answer by one big sweep at the end *)
  let r = Lazy_eval.answer lazy_ in
  let same =
    List.for_all
      (fun j ->
        let t = Q.div (q (6 * j + 1)) (q 10) in
        match
          ( Monitor.TL.find_at tl (B.instant_of_scalar t),
            Monitor.TL.find_at r.Lazy_eval.Sw.timeline (B.instant_of_scalar t) )
        with
        | Some a, Some b -> Oid.Set.equal a b
        | _ -> false)
      (List.init 99 (fun j -> j))
  in
  Format.printf "@.lazy (sweep-at-the-end) agrees with eager monitor: %b@." same;
  Format.printf "lazy paid %d support changes at answer time; eager had spread them across %d updates@."
    r.Lazy_eval.Sw.support_changes (List.length updates)
