(* Quickstart: build a moving-object database, ask a nearest-neighbour
   query about the past, then monitor the same query into the future while
   updates arrive.

   Run with: dune exec examples/quickstart.exe *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb

(* The exact backend decides every comparison with rational/algebraic
   arithmetic; swap in Backend.Approx for floats. *)
module B = Moq_core.Backend.Exact
module Sweep = Moq_core.Sweep.Make (B)
module Monitor = Moq_core.Monitor.Make (B)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module Classify = Moq_core.Classify

let q = Q.of_int
let vec l = Qvec.of_list (List.map Q.of_int l)

let () =
  Format.printf "=== moq quickstart ===@.@.";

  (* 1. A MOD with three taxis moving in the plane, last updated at t=0. *)
  let db = DB.empty ~dim:2 ~tau:(q 0) in
  let db = DB.add_initial db 1 (T.linear ~start:(q 0) ~a:(vec [ 1; 0 ]) ~b:(vec [ 0; 5 ])) in
  let db = DB.add_initial db 2 (T.linear ~start:(q 0) ~a:(vec [ 0; -1 ]) ~b:(vec [ 8; 10 ])) in
  let db = DB.add_initial db 3 (T.linear ~start:(q 0) ~a:(vec [ -1; -1 ]) ~b:(vec [ 20; 20 ])) in
  Format.printf "Database: %d taxis, last update at t = %a@.@." (DB.cardinal db) Q.pp
    (DB.last_update db);

  (* 2. A g-distance: squared Euclidean distance to a customer standing at
     the origin (Example 8 of the paper). *)
  let customer = T.stationary ~start:(q 0) (vec [ 0; 0 ]) in
  let gdist = Gdist.euclidean_sq ~gamma:customer in

  (* 3. "Which taxi is nearest, at every instant of [0, 12]?" *)
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 12)) in
  Format.printf "Query %a is %a w.r.t. the database@." Fof.pp_query query Classify.pp
    (Classify.classify db query);

  let r = Sweep.run ~db ~gdist ~query in
  Format.printf "@.Snapshot answer Q^s (timeline):@.%a@." Sweep.TL.pp r.Sweep.timeline;
  let pp_set fmt s =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Moq_mod.Oid.pp)
      (Moq_mod.Oid.Set.elements s)
  in
  Format.printf "Accumulative answer Q^E: %a@." pp_set (Sweep.TL.existential r.Sweep.timeline);
  Format.printf "Persevering answer  Q^A: %a@." pp_set (Sweep.TL.universal r.Sweep.timeline);
  Format.printf "(%d support changes processed)@.@." r.Sweep.support_changes;

  (* 4. The same query as a continuing/future query: monitor it while
     updates arrive chronologically. *)
  let m = Monitor.create ~db ~gdist ~query () in
  Format.printf "Monitoring... taxi 2 turns west at t = 3:@.";
  Monitor.apply_update_exn m (U.Chdir { oid = 2; tau = q 3; a = vec [ -1; 0 ] });
  Format.printf "  clock now %a; events so far: %d crossings@." Q.pp (Monitor.clock m)
    (Monitor.stats m).Monitor.E.crossings;
  Format.printf "Taxi 4 appears at t = 6 right next to the customer:@.";
  Monitor.apply_update_exn m (U.New { oid = 4; tau = q 6; a = vec [ 0; 0 ]; b = vec [ 1; 1 ] });
  let tl = Monitor.finalize m in
  Format.printf "@.Validated answer after all updates:@.%a@." Monitor.TL.pp tl
