module Q = Moq_numeric.Rat
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module Qvec = Moq_geom.Vec.Qvec
module E = Lincons.Expr

type ovar = string
type rvar = Lincons.var

type formula =
  | True
  | False
  | In_db of ovar
  | At of ovar * rvar * rvar list
  | Constr of Lincons.t
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Exists_r of rvar * formula
  | Forall_r of rvar * formula
  | Exists_o of ovar * formula
  | Forall_o of ovar * formula

let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun a b -> And (a, b)) f rest

let disj = function
  | [] -> False
  | f :: rest -> List.fold_left (fun a b -> Or (a, b)) f rest

let exists_rs vars f = List.fold_right (fun x g -> Exists_r (x, g)) vars f

type query = { free : ovar; gamma : T.t option; body : formula }

let gamma_name = "\xce\xb3" (* γ *)

(* Binding of an object variable: a database object or the query
   trajectory. *)
type obinding = Obj of Oid.t * T.t | Gamma of T.t

let traj_of = function Obj (_, tr) -> tr | Gamma tr -> tr

(* Expand T(o, t, x̄) into a DNF over linear constraints: one disjunct per
   trajectory piece.  Pieces use closed validity intervals on both ends
   (the paper's Example 1 does the same; overlap at junctions is harmless by
   continuity). *)
let at_dnf (tr : T.t) (tvar : rvar) (xvars : rvar list) : Dnf.t =
  let n = List.length xvars in
  if n <> T.dim tr then invalid_arg "Cql: coordinate arity mismatch"
  else begin
    let pieces = T.pieces tr in
    let rec piece_intervals = function
      | (p : T.piece) :: ((p' : T.piece) :: _ as rest) ->
        (p, Some p'.T.start) :: piece_intervals rest
      | [ p ] -> [ (p, T.death tr) ]
      | [] -> []
    in
    List.map
      (fun ((p : T.piece), stop) ->
        let t = E.var tvar in
        let coords =
          List.mapi
            (fun i x ->
              (* x_i = a_i * t + b_i *)
              Lincons.eq (E.var x)
                (E.add (E.scale (Qvec.get p.T.a i) t) (E.const (Qvec.get p.T.b i))))
            xvars
        in
        let lo = Lincons.ge t (E.const p.T.start) in
        let hi =
          match stop with
          | Some s -> [ Lincons.le t (E.const s) ]
          | None -> []
        in
        (lo :: hi) @ coords)
      (piece_intervals pieces)
  end

let rec to_dnf (env : (ovar * obinding) list) (objects : obinding list) (f : formula) : Dnf.t =
  match f with
  | True -> Dnf.top
  | False -> Dnf.bottom
  | In_db y ->
    (match List.assoc_opt y env with
     | Some (Obj _) -> Dnf.top
     | Some (Gamma _) -> Dnf.bottom
     | None -> invalid_arg ("Cql: unbound object variable " ^ y))
  | At (y, t, xs) ->
    (match List.assoc_opt y env with
     | Some b -> at_dnf (traj_of b) t xs
     | None -> invalid_arg ("Cql: unbound object variable " ^ y))
  | Constr c -> Dnf.atom c
  | Not g -> Dnf.neg (to_dnf env objects g)
  | And (g, h) -> Dnf.and_ (to_dnf env objects g) (to_dnf env objects h)
  | Or (g, h) -> Dnf.or_ (to_dnf env objects g) (to_dnf env objects h)
  | Exists_r (x, g) -> Dnf.exists x (to_dnf env objects g)
  | Forall_r (x, g) -> Dnf.neg (Dnf.exists x (Dnf.neg (to_dnf env objects g)))
  | Exists_o (y, g) ->
    List.fold_left
      (fun acc b -> Dnf.or_ acc (to_dnf ((y, b) :: env) objects g))
      Dnf.bottom objects
  | Forall_o (y, g) ->
    List.fold_left
      (fun acc b -> Dnf.and_ acc (to_dnf ((y, b) :: env) objects g))
      Dnf.top objects

let bindings db gamma =
  let objs = List.map (fun (o, tr) -> Obj (o, tr)) (DB.objects db) in
  match gamma with
  | Some tr -> Gamma tr :: objs
  | None -> objs

let holds_for db qr o =
  match DB.find db o with
  | None -> false
  | Some tr ->
    let objects = bindings db qr.gamma in
    let env =
      (qr.free, Obj (o, tr))
      :: (match qr.gamma with Some g -> [ (gamma_name, Gamma g) ] | None -> [])
    in
    Dnf.satisfiable (to_dnf env objects qr.body)

let answer db qr = List.filter (holds_for db qr) (List.map fst (DB.objects db))

type bound =
  | Unbounded
  | Inclusive of Q.t
  | Exclusive of Q.t

type span = { lo : bound; hi : bound }

let pp_span fmt s =
  (match s.lo with
   | Unbounded -> Format.pp_print_string fmt "(-inf"
   | Inclusive v -> Format.fprintf fmt "[%a" Q.pp v
   | Exclusive v -> Format.fprintf fmt "(%a" Q.pp v);
  Format.pp_print_string fmt ", ";
  match s.hi with
  | Unbounded -> Format.pp_print_string fmt "+inf)"
  | Inclusive v -> Format.fprintf fmt "%a]" Q.pp v
  | Exclusive v -> Format.fprintf fmt "%a)" Q.pp v

type tquery = {
  tfree : ovar;
  tvar : rvar;
  tgamma : T.t option;
  tbody : formula;
}

(* Conjunction of constraints over the single variable [tv] -> interval, or
   None if contradictory. *)
let span_of_conj tv (cs : Lincons.t list) : span option =
  let tighten_lo current (v, strict) =
    match current with
    | Unbounded -> if strict then Exclusive v else Inclusive v
    | Inclusive w | Exclusive w ->
      let c = Q.compare v w in
      if c > 0 then (if strict then Exclusive v else Inclusive v)
      else if c < 0 then current
      else begin
        match current with
        | Exclusive _ -> current
        | _ -> if strict then Exclusive v else current
      end
  in
  let tighten_hi current (v, strict) =
    match current with
    | Unbounded -> if strict then Exclusive v else Inclusive v
    | Inclusive w | Exclusive w ->
      let c = Q.compare v w in
      if c < 0 then (if strict then Exclusive v else Inclusive v)
      else if c > 0 then current
      else begin
        match current with
        | Exclusive _ -> current
        | _ -> if strict then Exclusive v else current
      end
  in
  let rec go lo hi = function
    | [] ->
      let nonempty =
        match lo, hi with
        | Unbounded, _ | _, Unbounded -> true
        | Inclusive a, Inclusive b -> Q.compare a b <= 0
        | (Inclusive a | Exclusive a), (Inclusive b | Exclusive b) -> Q.compare a b < 0
      in
      if nonempty then Some { lo; hi } else None
    | (c : Lincons.t) :: rest ->
      let a = E.coeff c.Lincons.expr tv in
      if Q.is_zero a then begin
        (* ground constraint *)
        if Lincons.ground_truth c then go lo hi rest else None
      end
      else begin
        (* a·tv + k rel 0  ->  tv rel' -k/a *)
        let k = E.constant c.Lincons.expr in
        let v = Q.neg (Q.div k a) in
        match c.Lincons.rel, Q.sign a > 0 with
        | Lincons.Eq, _ -> go (tighten_lo lo (v, false)) (tighten_hi hi (v, false)) rest
        | Lincons.Le, true -> go lo (tighten_hi hi (v, false)) rest
        | Lincons.Lt, true -> go lo (tighten_hi hi (v, true)) rest
        | Lincons.Le, false -> go (tighten_lo lo (v, false)) hi rest
        | Lincons.Lt, false -> go (tighten_lo lo (v, true)) hi rest
      end
  in
  go Unbounded Unbounded cs

let when_holds db (tq : tquery) o : span list =
  match DB.find db o with
  | None -> []
  | Some tr ->
    let objects = bindings db tq.tgamma in
    let env =
      (tq.tfree, Obj (o, tr))
      :: (match tq.tgamma with Some g -> [ (gamma_name, Gamma g) ] | None -> [])
    in
    let d = to_dnf env objects tq.tbody in
    (* eliminate everything except the free time variable *)
    let project conj =
      let rec go cs =
        let vars =
          List.fold_left
            (fun s c -> Lincons.Varset.union s (Lincons.vars c))
            Lincons.Varset.empty cs
        in
        match Lincons.Varset.choose_opt (Lincons.Varset.remove tq.tvar vars) with
        | None -> cs
        | Some x -> go (Fourier_motzkin.eliminate x cs)
      in
      go conj
    in
    List.filter_map (fun conj -> span_of_conj tq.tvar (project conj)) d

let rec pp_formula fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | In_db y -> Format.fprintf fmt "O(%s)" y
  | At (y, t, xs) ->
    Format.fprintf fmt "T(%s, %s, (%a))" y t
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Format.pp_print_string)
      xs
  | Constr c -> Lincons.pp fmt c
  | Not g -> Format.fprintf fmt "~(%a)" pp_formula g
  | And (g, h) -> Format.fprintf fmt "(%a /\\ %a)" pp_formula g pp_formula h
  | Or (g, h) -> Format.fprintf fmt "(%a \\/ %a)" pp_formula g pp_formula h
  | Exists_r (x, g) -> Format.fprintf fmt "Er %s.(%a)" x pp_formula g
  | Forall_r (x, g) -> Format.fprintf fmt "Ar %s.(%a)" x pp_formula g
  | Exists_o (y, g) -> Format.fprintf fmt "Eo %s.(%a)" y pp_formula g
  | Forall_o (y, g) -> Format.fprintf fmt "Ao %s.(%a)" y pp_formula g
