lib/cql/cql.mli: Format Lincons Moq_mod Moq_numeric
