lib/cql/lincons.ml: Format Int List Map Moq_numeric Set String
