lib/cql/fourier_motzkin.ml: Hashtbl Lincons List Moq_numeric Option
