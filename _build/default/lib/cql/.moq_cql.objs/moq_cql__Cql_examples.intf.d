lib/cql/cql_examples.mli: Cql Lincons Moq_mod Moq_numeric
