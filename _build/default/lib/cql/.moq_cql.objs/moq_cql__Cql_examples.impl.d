lib/cql/cql_examples.ml: Cql Lincons List Moq_numeric Printf
