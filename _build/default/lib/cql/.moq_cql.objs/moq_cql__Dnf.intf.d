lib/cql/dnf.mli: Format Fourier_motzkin Lincons Moq_numeric
