lib/cql/fourier_motzkin.mli: Lincons
