lib/cql/cql.ml: Dnf Format Fourier_motzkin Lincons List Moq_geom Moq_mod Moq_numeric
