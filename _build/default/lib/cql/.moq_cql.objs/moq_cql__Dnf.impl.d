lib/cql/dnf.ml: Format Fourier_motzkin Lincons List
