lib/cql/lincons.mli: Format Moq_numeric Set
