module FM = Fourier_motzkin

type t = FM.conj list

let top = [ [] ]
let bottom = []

let atom c = [ [ c ] ]
let of_conj c = [ c ]

let prune (d : t) : t = List.filter FM.satisfiable (List.map FM.dedup d)

let or_ a b = a @ b

let and_ a b =
  prune (List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) b) a)

(* ¬(∨ᵢ Cᵢ) = ∧ᵢ (∨_{atom a ∈ Cᵢ} ¬a) *)
let neg (d : t) : t =
  List.fold_left
    (fun acc conj ->
      let negated : t =
        List.concat_map (fun a -> List.map (fun c -> [ c ]) (Lincons.negate a)) conj
      in
      and_ acc negated)
    top d

let exists x d = prune (List.map (FM.eliminate x) d)

let satisfiable d = List.exists FM.satisfiable d
let is_true = satisfiable

let eval env d = List.exists (List.for_all (Lincons.eval env)) d

let pp fmt (d : t) =
  match d with
  | [] -> Format.pp_print_string fmt "false"
  | _ ->
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.pp_print_string f " \\/ ")
      (fun f conj ->
        match conj with
        | [] -> Format.pp_print_string f "true"
        | _ ->
          Format.fprintf f "(%a)"
            (Format.pp_print_list
               ~pp_sep:(fun f () -> Format.pp_print_string f " /\\ ")
               Lincons.pp)
            conj)
      fmt d
