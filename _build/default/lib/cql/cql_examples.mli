(** Ready-made CQL queries from the paper's Section 3 examples. *)

module Q = Moq_numeric.Rat

val box : (Q.t * Q.t) list -> Cql.rvar list -> Lincons.t list
(** [box ranges xvars]: the axis-aligned region [lo_i ≤ x_i ≤ hi_i] as
    constraints on the coordinate variables (the ψ of Example 3). *)

val inside :
  region:(Cql.rvar list -> Lincons.t list) ->
  dim:int ->
  tau1:Q.t ->
  tau2:Q.t ->
  Cql.query
(** Objects that are inside the region at some instant of [[tau1, tau2]]. *)

val entering :
  region:(Cql.rvar list -> Lincons.t list) ->
  dim:int ->
  tau1:Q.t ->
  tau2:Q.t ->
  Cql.query
(** Example 3: objects {e entering} the region during [[tau1, tau2]] — in the
    region at some [t], and strictly outside throughout some nonempty open
    interval [(t', t)] just before. *)

val met_gamma :
  gamma:Moq_mod.Trajectory.t ->
  dim:int ->
  tau1:Q.t ->
  tau2:Q.t ->
  Cql.query
(** Example 11 ("what police cars were at the same positions as car #1404"):
    objects at the same position as the query trajectory [γ] at some instant
    of the window.  A location-dependent query in the paper's sense. *)
