(** The constraint query language of Section 3 (linear fragment).

    Many-sorted first-order logic over objects, time instants, and spatial
    coordinates, with the atoms [O(y)], [T(y, t, x̄)], and linear
    constraints.  Object quantifiers range over the finite set of OIDs in
    the MOD (plus the query trajectory [γ], usable "in the same way as an
    object"); real quantifiers are eliminated with Fourier–Motzkin.

    Scope note (recorded in DESIGN.md): the paper's [len] and [unit]
    operators need polynomial constraints, which is precisely why Section 4
    introduces FO(f) — distance comparisons live in [Moq_core], not here.
    [vel] is exposed as the {!Trajectory.velocity_after} primitive rather
    than as a term constructor. *)

module Q = Moq_numeric.Rat

type ovar = string
type rvar = Lincons.var

type formula =
  | True
  | False
  | In_db of ovar  (** [O(y)] *)
  | At of ovar * rvar * rvar list
      (** [T(y, t, (x1,...,xn))]: object [y] is at the position named by the
          coordinate variables at time [t]. *)
  | Constr of Lincons.t
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Exists_r of rvar * formula
  | Forall_r of rvar * formula
  | Exists_o of ovar * formula
  | Forall_o of ovar * formula

val conj : formula list -> formula
val disj : formula list -> formula
val exists_rs : rvar list -> formula -> formula

type query = {
  free : ovar;
  gamma : Moq_mod.Trajectory.t option;  (** the query's own trajectory *)
  body : formula;
}

val gamma_name : ovar
(** The reserved object variable naming the query trajectory. *)

val answer : Moq_mod.Mobdb.t -> query -> Moq_mod.Oid.t list
(** [Q(D)] — evaluate over the current database (Proposition 1).  Sorted by
    OID. *)

val holds_for : Moq_mod.Mobdb.t -> query -> Moq_mod.Oid.t -> bool

(** Snapshot-style answers: queries with a free time variable.  The paper
    notes that snapshot answers "have finite representations in terms of
    time constraints on [t]" — [when_holds] computes that representation by
    eliminating every variable except the free time variable. *)

type bound =
  | Unbounded
  | Inclusive of Q.t
  | Exclusive of Q.t

type span = { lo : bound; hi : bound }
(** A (possibly degenerate) time interval with per-end strictness. *)

val pp_span : Format.formatter -> span -> unit

type tquery = {
  tfree : ovar;       (** free object variable *)
  tvar : rvar;        (** free time variable *)
  tgamma : Moq_mod.Trajectory.t option;
  tbody : formula;    (** free variables: [tfree] and [tvar] *)
}

val when_holds : Moq_mod.Mobdb.t -> tquery -> Moq_mod.Oid.t -> span list
(** The set of time instants at which the formula holds for the object, as a
    finite union of intervals (possibly overlapping, in no particular
    order); empty if never. *)

val pp_formula : Format.formatter -> formula -> unit
