module Q = Moq_numeric.Rat
module E = Lincons.Expr

let coord_vars dim prefix = List.init dim (fun i -> Printf.sprintf "%s%d" prefix i)

let box ranges xvars =
  if List.length ranges <> List.length xvars then invalid_arg "Cql_examples.box: arity"
  else
    List.concat
      (List.map2
         (fun (lo, hi) x ->
           [ Lincons.ge (E.var x) (E.const lo); Lincons.le (E.var x) (E.const hi) ])
         ranges xvars)

let in_region region dim y t =
  (* ∃x̄ (T(y, t, x̄) ∧ ψ(x̄)) *)
  let xs = coord_vars dim "x_" in
  Cql.exists_rs xs
    (Cql.conj (Cql.At (y, t, xs) :: List.map (fun c -> Cql.Constr c) (region xs)))

let window tau1 tau2 t =
  [ Cql.Constr (Lincons.ge (E.var t) (E.const tau1));
    Cql.Constr (Lincons.le (E.var t) (E.const tau2)) ]

let inside ~region ~dim ~tau1 ~tau2 =
  let y = "y" in
  { Cql.free = y;
    gamma = None;
    body = Cql.Exists_r ("t", Cql.conj (window tau1 tau2 "t" @ [ in_region region dim y "t" ])) }

let entering ~region ~dim ~tau1 ~tau2 =
  (* Example 3:
     ∃t (τ1 ≤ t ≤ τ2 ∧ inside(y,t)
         ∧ ∃t' (t' < t ∧ ∀t'' (t' < t'' < t → ¬ inside(y,t'')))) *)
  let y = "y" in
  let before =
    Cql.Exists_r
      ( "t'",
        Cql.And
          ( Cql.Constr (Lincons.lt (E.var "t'") (E.var "t")),
            Cql.Forall_r
              ( "t''",
                Cql.disj
                  [ Cql.Constr (Lincons.le (E.var "t''") (E.var "t'"));
                    Cql.Constr (Lincons.ge (E.var "t''") (E.var "t"));
                    Cql.Not (in_region region dim y "t''");
                  ] ) ) )
  in
  { Cql.free = y;
    gamma = None;
    body =
      Cql.Exists_r
        ("t", Cql.conj (window tau1 tau2 "t" @ [ in_region region dim y "t"; before ])) }

let met_gamma ~gamma ~dim ~tau1 ~tau2 =
  (* ∃t (τ1 ≤ t ≤ τ2 ∧ ∃x̄ (T(y,t,x̄) ∧ T(γ,t,x̄))) *)
  let y = "y" in
  let xs = coord_vars dim "x_" in
  { Cql.free = y;
    gamma = Some gamma;
    body =
      Cql.Exists_r
        ( "t",
          Cql.conj
            (window tau1 tau2 "t"
            @ [ Cql.exists_rs xs
                  (Cql.conj [ Cql.At (y, "t", xs); Cql.At (Cql.gamma_name, "t", xs) ]) ]) ) }
