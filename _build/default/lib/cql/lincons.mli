(** Linear constraints over named real variables (paper, Section 2:
    [Σ aᵢxᵢ θ a₀] interpreted over the reals).

    A constraint is kept in the normal form [expr rel 0] with
    [rel ∈ {=, ≤, <}]; builders accept both sides. *)

module Q = Moq_numeric.Rat

type var = string

module Varset : Set.S with type elt = var

(** Linear expressions [Σ aᵢ·xᵢ + c] with no zero coefficients stored. *)
module Expr : sig
  type t

  val const : Q.t -> t
  val var : var -> t
  val of_list : (Q.t * var) list -> Q.t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : Q.t -> t -> t
  val neg : t -> t
  val coeff : t -> var -> Q.t
  val constant : t -> Q.t
  val vars : t -> Varset.t
  val is_const : t -> bool
  val subst : var -> t -> t -> t
  (** [subst x e expr] replaces [x] by [e]. *)

  val eval : (var -> Q.t) -> t -> Q.t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type rel = Eq | Le | Lt

type t = { expr : Expr.t; rel : rel }
(** The constraint [expr rel 0]. *)

val eq : Expr.t -> Expr.t -> t
val le : Expr.t -> Expr.t -> t
val lt : Expr.t -> Expr.t -> t
val ge : Expr.t -> Expr.t -> t
val gt : Expr.t -> Expr.t -> t

val vars : t -> Varset.t
val subst : var -> Expr.t -> t -> t
val eval : (var -> Q.t) -> t -> bool

val is_ground : t -> bool
val ground_truth : t -> bool
(** Truth value of a variable-free constraint.
    @raise Invalid_argument otherwise. *)

val normalize : t -> t
(** Scale by the positive constant making the coefficient content 1, so
    syntactically different multiples of the same constraint collide (and
    bignum coefficients stay small through Fourier–Motzkin chains). *)

val compare : t -> t -> int
(** Total order on normalized constraints (for deduplication). *)

val negate : t -> t list
(** The negation as a disjunction of constraints:
    [¬(e = 0) ≡ e < 0 ∨ -e < 0]; inequalities negate to one constraint. *)

val pp : Format.formatter -> t -> unit
