(** Fourier–Motzkin quantifier elimination for conjunctions of linear
    constraints — the complete QE procedure for the linear fragment the
    paper's data model lives in (its general real-closed-field QE [7, 24]
    restricted to the constraints Section 2 actually generates). *)

type conj = Lincons.t list
(** A conjunction of constraints. *)

val dedup : conj -> conj
(** Normalize every constraint and drop syntactic duplicates. *)

val eliminate : Lincons.var -> conj -> conj
(** [eliminate x cs] is a conjunction equivalent to [∃x. cs], not
    mentioning [x].  Uses equality substitution when possible, otherwise the
    classic lower×upper bound products. *)

val eliminate_all : conj -> conj
(** Eliminate every variable; the result is ground. *)

val satisfiable : conj -> bool

val simplify : conj -> conj option
(** Drop trivially-true ground constraints; [None] if a ground constraint is
    false. *)
