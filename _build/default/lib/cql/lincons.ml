module Q = Moq_numeric.Rat

type var = string

module VM = Map.Make (String)
module Varset = Set.Make (String)

module Expr = struct
  type t = { coeffs : Q.t VM.t; const : Q.t }

  let normalize coeffs = VM.filter (fun _ c -> not (Q.is_zero c)) coeffs

  let const c = { coeffs = VM.empty; const = c }
  let var x = { coeffs = VM.singleton x Q.one; const = Q.zero }

  let of_list l c =
    let coeffs =
      List.fold_left
        (fun m (a, x) ->
          VM.update x (function None -> Some a | Some b -> Some (Q.add a b)) m)
        VM.empty l
    in
    { coeffs = normalize coeffs; const = c }

  let add e1 e2 =
    { coeffs =
        normalize
          (VM.union (fun _ a b -> Some (Q.add a b)) e1.coeffs e2.coeffs);
      const = Q.add e1.const e2.const }

  let scale k e =
    if Q.is_zero k then const Q.zero
    else { coeffs = VM.map (Q.mul k) e.coeffs; const = Q.mul k e.const }

  let neg e = scale Q.minus_one e
  let sub e1 e2 = add e1 (neg e2)

  let coeff e x = match VM.find_opt x e.coeffs with Some c -> c | None -> Q.zero
  let constant e = e.const
  let vars e = VM.fold (fun x _ s -> Varset.add x s) e.coeffs Varset.empty
  let is_const e = VM.is_empty e.coeffs

  let subst x by e =
    let c = coeff e x in
    if Q.is_zero c then e
    else begin
      let without = { e with coeffs = VM.remove x e.coeffs } in
      add without (scale c by)
    end

  let eval env e =
    VM.fold (fun x c acc -> Q.add acc (Q.mul c (env x))) e.coeffs e.const

  let equal e1 e2 = Q.equal e1.const e2.const && VM.equal Q.equal e1.coeffs e2.coeffs

  let pp fmt e =
    let first = ref true in
    VM.iter
      (fun x c ->
        if !first then begin
          Format.fprintf fmt "%a*%s" Q.pp c x;
          first := false
        end
        else Format.fprintf fmt " + %a*%s" Q.pp c x)
      e.coeffs;
    if !first then Q.pp fmt e.const
    else if not (Q.is_zero e.const) then Format.fprintf fmt " + %a" Q.pp e.const
end

type rel = Eq | Le | Lt

type t = { expr : Expr.t; rel : rel }

let eq a b = { expr = Expr.sub a b; rel = Eq }
let le a b = { expr = Expr.sub a b; rel = Le }
let lt a b = { expr = Expr.sub a b; rel = Lt }
let ge a b = le b a
let gt a b = lt b a

let vars c = Expr.vars c.expr

let subst x by c = { c with expr = Expr.subst x by c.expr }

let holds rel v =
  match rel with
  | Eq -> Q.sign v = 0
  | Le -> Q.sign v <= 0
  | Lt -> Q.sign v < 0

let eval env c = holds c.rel (Expr.eval env c.expr)

let is_ground c = Expr.is_const c.expr

let ground_truth c =
  if not (is_ground c) then invalid_arg "Lincons.ground_truth: not ground"
  else holds c.rel (Expr.constant c.expr)

let normalize c =
  (* positive scale: gcd of all numerators over lcm of denominators *)
  let module B = Moq_numeric.Bigint in
  let nums, dens =
    VM.fold
      (fun _ v (ns, ds) -> (Q.num v :: ns, Q.den v :: ds))
      c.expr.Expr.coeffs
      ((if Q.is_zero c.expr.Expr.const then [] else [ Q.num c.expr.Expr.const ]),
       [ Q.den c.expr.Expr.const ])
  in
  match nums with
  | [] -> c
  | _ ->
    let g = List.fold_left (fun acc n -> B.gcd acc n) B.zero nums in
    let l = List.fold_left (fun acc d -> B.div (B.mul acc d) (B.gcd acc d)) B.one dens in
    if B.is_zero g then c
    else begin
      let k = Q.make l g (* positive since g, l > 0 *) in
      { c with expr = Expr.scale k c.expr }
    end

let compare_rel r1 r2 =
  let rank = function Eq -> 0 | Le -> 1 | Lt -> 2 in
  Int.compare (rank r1) (rank r2)

let compare c1 c2 =
  let e1 = c1.expr and e2 = c2.expr in
  let c = Q.compare e1.Expr.const e2.Expr.const in
  if c <> 0 then c
  else begin
    let c = VM.compare Q.compare e1.Expr.coeffs e2.Expr.coeffs in
    if c <> 0 then c else compare_rel c1.rel c2.rel
  end

let negate c =
  match c.rel with
  | Eq -> [ { expr = c.expr; rel = Lt }; { expr = Expr.neg c.expr; rel = Lt } ]
  | Le -> [ { expr = Expr.neg c.expr; rel = Lt } ]
  | Lt -> [ { expr = Expr.neg c.expr; rel = Le } ]

let pp fmt c =
  let op = match c.rel with Eq -> "=" | Le -> "<=" | Lt -> "<" in
  Format.fprintf fmt "%a %s 0" Expr.pp c.expr op
