module Q = Moq_numeric.Rat
module L = Lincons
module E = Lincons.Expr

type conj = Lincons.t list

(* Normalizing + deduplicating after every step is what keeps the
   double-exponential tendency of FM in check on the formulas the CQL
   evaluator produces (piece disjunctions negated under nested
   quantifiers). *)
let dedup cs = List.sort_uniq L.compare (List.map L.normalize cs)

(* Solve [c] (an equality with nonzero coefficient on [x]) for [x]. *)
let solve_for x (c : L.t) : E.t =
  let a = E.coeff c.L.expr x in
  assert (not (Q.is_zero a));
  (* a*x + rest = 0  ->  x = -rest / a *)
  let rest = E.subst x (E.const Q.zero) c.L.expr in
  E.scale (Q.neg (Q.inv a)) rest

let eliminate x (cs : conj) : conj =
  let mentions, rest = List.partition (fun c -> not (Q.is_zero (E.coeff c.L.expr x))) cs in
  if mentions = [] then cs
  else begin
    let eliminated =
      match List.find_opt (fun c -> c.L.rel = L.Eq) mentions with
      | Some eq_c ->
        let sol = solve_for x eq_c in
        rest
        @ List.filter_map
            (fun c -> if c == eq_c then None else Some (L.subst x sol c))
            mentions
      | None ->
        (* All constraints with x are inequalities a*x + e rel 0.  Normalize:
           a > 0 -> upper bound x rel (-e/a); a < 0 -> lower bound. *)
        let lowers, uppers =
          List.fold_left
            (fun (lo, up) c ->
              let a = E.coeff c.L.expr x in
              let e = E.subst x (E.const Q.zero) c.L.expr in
              let bound = E.scale (Q.neg (Q.inv a)) e in
              if Q.sign a > 0 then (lo, (bound, c.L.rel) :: up)
              else ((bound, c.L.rel) :: lo, up))
            ([], []) mentions
        in
        let pairs =
          List.concat_map
            (fun (lo, rlo) ->
              List.map
                (fun (up, rup) ->
                  if rlo = L.Lt || rup = L.Lt then L.lt lo up else L.le lo up)
                uppers)
            lowers
        in
        rest @ pairs
    in
    dedup eliminated
  end

let simplify cs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest ->
      if L.is_ground c then
        if L.ground_truth c then go acc rest else None
      else go (c :: acc) rest
  in
  go [] cs

(* Pick the cheapest variable: one with an equality (pure substitution), or
   failing that the smallest lower×upper product. *)
let choose_var (cs : conj) : L.var option =
  let stats = Hashtbl.create 8 in
  List.iter
    (fun c ->
      L.Varset.iter
        (fun x ->
          let eqs, lo, up =
            Option.value ~default:(0, 0, 0) (Hashtbl.find_opt stats x)
          in
          let a = E.coeff c.L.expr x in
          let entry =
            if c.L.rel = L.Eq then (eqs + 1, lo, up)
            else if Q.sign a > 0 then (eqs, lo, up + 1)
            else (eqs, lo + 1, up)
          in
          Hashtbl.replace stats x entry)
        (L.vars c))
    cs;
  let best = ref None in
  Hashtbl.iter
    (fun x (eqs, lo, up) ->
      let cost = if eqs > 0 then 0 else lo * up in
      match !best with
      | Some (_, c) when c <= cost -> ()
      | _ -> best := Some (x, cost))
    stats;
  Option.map fst !best

let rec eliminate_all (cs : conj) : conj =
  match simplify (dedup cs) with
  | None -> [ L.lt (E.const Q.one) (E.const Q.zero) ] (* canonical falsity *)
  | Some cs ->
    (match choose_var cs with
     | None -> cs
     | Some x -> eliminate_all (eliminate x cs))

let rec satisfiable (cs : conj) : bool =
  match simplify (dedup cs) with
  | None -> false
  | Some cs ->
    (match choose_var cs with
     | None -> true (* all constraints ground and true *)
     | Some x -> satisfiable (eliminate x cs))
