(** Formulas in disjunctive normal form over linear constraints.

    The working representation of the CQL evaluator: quantifier elimination
    maps over disjuncts, and logical operations distribute.  Unsatisfiable
    disjuncts are pruned eagerly (via {!Fourier_motzkin.satisfiable}) to
    contain the blowup. *)

type t = Fourier_motzkin.conj list

val top : t
val bottom : t
val atom : Lincons.t -> t
val of_conj : Fourier_motzkin.conj -> t
val or_ : t -> t -> t
val and_ : t -> t -> t
val neg : t -> t
val exists : Lincons.var -> t -> t
val is_true : t -> bool
(** Is the (ground) formula true?  A non-ground formula is satisfiable iff
    it has any disjunct; for ground formulas this coincides with truth. *)

val satisfiable : t -> bool
val eval : (Lincons.var -> Moq_numeric.Rat.t) -> t -> bool
val pp : Format.formatter -> t -> unit
