(** The Theorem 2 construction, executable.

    The paper reduces TM halting to deciding whether a query is past: start
    from a fixed MOD [D_M]; update sequences of [new] operations encode
    candidate computations of [M] (objects sorted by insertion time encode a
    sequence of configurations); the query [Q_M] checks whether the database
    encodes a computation reaching the halting state.  Then
    [Q_M] is past w.r.t. [D_M]  iff  no update sequence changes its answer
    iff  [M] never halts — so deciding "past" decides halting.

    We realize every piece operationally.  The {e checking predicate} is
    implemented as a decoder over the MOD (the proof only needs its
    existence as a constraint formula; building that formula is routine but
    immaterial arithmetic coding), and the {e adversary} that makes a
    non-past query reveal itself is the encoder producing the update
    sequence from the halting computation. *)

module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update

val initial_mod : unit -> DB.t
(** [D_M]: the empty starting MOD of the construction. *)

val encode_computation : Turing.t -> max_steps:int -> U.t list
(** The update sequence Δ encoding [M]'s computation prefix (one [new] per
    (step, tape cell) plus one head marker per step), in chronological
    order — the adversary's witness when [M] halts. *)

val query_holds : DB.t -> Turing.t -> bool
(** [Q_M(D)]: does the database encode a valid computation of [M] from the
    blank tape that reaches the halting state? *)

val is_past_up_to : Turing.t -> max_steps:int -> bool
(** The semi-decision procedure the reduction shows cannot be completed to a
    decision procedure: tries all encoded computation prefixes up to the
    bound and reports whether [Q_M] stayed past so far.  Returns [false]
    (query revealed future) iff [M] halts within [max_steps]. *)
