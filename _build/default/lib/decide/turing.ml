type direction = Left | Right

type t = {
  states : int;
  halt : int;
  symbols : int;
  delta : (int * int, int * int * direction) Hashtbl.t;
}

let make ~states ~halt ~symbols delta =
  if halt < 0 || halt >= states then invalid_arg "Turing.make: bad halt state";
  Hashtbl.iter
    (fun (s, y) (s', y', _) ->
      if s < 0 || s >= states || y < 0 || y >= symbols || s' < 0 || s' >= states || y' < 0
         || y' >= symbols
      then invalid_arg "Turing.make: transition out of range")
    delta;
  { states; halt; symbols; delta }

type config = { state : int; tape : (int, int) Hashtbl.t; head : int }

let initial = { state = 0; tape = Hashtbl.create 16; head = 0 }

let read c i = Option.value ~default:0 (Hashtbl.find_opt c.tape i)

let is_halted m c = c.state = m.halt

let step m c =
  if is_halted m c then None
  else begin
    match Hashtbl.find_opt m.delta (c.state, read c c.head) with
    | None -> None
    | Some (s', y', d) ->
      let tape = Hashtbl.copy c.tape in
      if y' = 0 then Hashtbl.remove tape c.head else Hashtbl.replace tape c.head y';
      Some { state = s'; tape; head = (match d with Left -> c.head - 1 | Right -> c.head + 1) }
  end

let run m ~max_steps =
  let rec go acc c k =
    if k >= max_steps then List.rev (c :: acc)
    else begin
      match step m c with
      | None -> List.rev (c :: acc)
      | Some c' -> go (c :: acc) c' (k + 1)
    end
  in
  go [] initial 0

let halts_within m ~max_steps =
  let rec go c k =
    if is_halted m c then Some k
    else if k >= max_steps then None
    else begin
      match step m c with
      | None -> None (* stuck without reaching the halt state *)
      | Some c' -> go c' (k + 1)
    end
  in
  go initial 0

(* The 3-state, 2-symbol busy beaver (halts in 21 steps, writing six 1s).
   States: 0 = A, 1 = B, 2 = C, 3 = HALT. *)
let busy_beaver_3 () =
  let delta = Hashtbl.create 8 in
  Hashtbl.replace delta (0, 0) (1, 1, Right);
  Hashtbl.replace delta (0, 1) (2, 1, Left);
  Hashtbl.replace delta (1, 0) (0, 1, Left);
  Hashtbl.replace delta (1, 1) (1, 1, Right);
  Hashtbl.replace delta (2, 0) (1, 1, Left);
  Hashtbl.replace delta (2, 1) (3, 1, Right);
  make ~states:4 ~halt:3 ~symbols:2 delta

let loop_forever () =
  let delta = Hashtbl.create 2 in
  Hashtbl.replace delta (0, 0) (0, 1, Right);
  Hashtbl.replace delta (0, 1) (0, 1, Right);
  make ~states:2 ~halt:1 ~symbols:2 delta
