module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update
module T = Moq_mod.Trajectory

(* Encoding: stationary objects in R^4.  An object at (step, cell, symbol,
   tag) asserts that at computation step [step], tape cell [cell] holds
   [symbol]; tag = -1 for plain cells, tag = state for the head cell.
   Insertion times are chronological in (step, cell) order, matching the
   paper's "objects sorted by their insertion times". *)

let q = Q.of_int
let dim = 4

let initial_mod () = DB.empty ~dim ~tau:(q 0)

let point step cell symbol tag =
  Qvec.of_list [ q step; q cell; q symbol; q tag ]

let encode_computation m ~max_steps =
  let configs = Turing.run m ~max_steps in
  let updates = ref [] in
  let oid = ref 0 in
  let time = ref 0 in
  List.iteri
    (fun step (c : Turing.config) ->
      (* one object per touched cell (plus the head cell, always) *)
      let cells =
        List.sort_uniq compare (c.Turing.head :: Hashtbl.fold (fun i _ acc -> i :: acc) c.Turing.tape [])
      in
      List.iter
        (fun cell ->
          incr oid;
          incr time;
          let tag = if cell = c.Turing.head then c.Turing.state else -1 in
          updates :=
            U.New { oid = !oid; tau = q !time; a = Qvec.zero dim; b = point step cell (Turing.read c cell) tag }
            :: !updates)
        cells)
    configs;
  List.rev !updates

(* Decode the MOD back into a configuration sequence; [None] if the
   encoding is malformed. *)
let decode (db : DB.t) : (int * int * int * int) list option =
  let cells =
    List.filter_map
      (fun (_, tr) ->
        match List.map Q.to_float (Qvec.to_list (T.position_exn tr (T.birth tr))) with
        | [ s; c; y; g ] ->
          Some (int_of_float s, int_of_float c, int_of_float y, int_of_float g)
        | _ -> None)
      (DB.objects db)
  in
  if List.length cells <> DB.cardinal db then None else Some (List.sort compare cells)

let config_of_cells cells =
  (* cells of one step: [(cell, symbol, tag)] -> a Turing.config, requiring
     exactly one head marker *)
  let tape = Hashtbl.create 16 in
  let head = ref None in
  let ok = ref true in
  List.iter
    (fun (cell, symbol, tag) ->
      if symbol <> 0 then Hashtbl.replace tape cell symbol;
      if tag >= 0 then begin
        match !head with
        | None -> head := Some (tag, cell)
        | Some _ -> ok := false
      end)
    cells;
  match !head with
  | Some (state, head) when !ok -> Some { Turing.state; tape; head }
  | _ -> None

let configs_equal (a : Turing.config) (b : Turing.config) =
  a.Turing.state = b.Turing.state
  && a.Turing.head = b.Turing.head
  && begin
    let cells c = Hashtbl.fold (fun i y acc -> (i, y) :: acc) c.Turing.tape [] in
    List.sort compare (cells a) = List.sort compare (cells b)
  end

let query_holds db m =
  match decode db with
  | None -> false
  | Some cells ->
    let steps =
      List.fold_left (fun acc (s, _, _, _) -> max acc s) (-1) cells
    in
    if steps < 0 then false
    else begin
      let by_step =
        List.init (steps + 1) (fun s ->
            config_of_cells
              (List.filter_map
                 (fun (s', c, y, g) -> if s' = s then Some (c, y, g) else None)
                 cells))
      in
      match by_step with
      | Some c0 :: _ when configs_equal c0 Turing.initial || (c0.Turing.state = 0 && c0.Turing.head = 0) ->
        let rec follow = function
          | Some c :: (Some c' :: _ as rest) ->
            (match Turing.step m c with
             | Some expected -> configs_equal expected c' && follow rest
             | None -> false)
          | [ Some last ] -> Turing.is_halted m last
          | _ -> false
        in
        follow by_step
      | _ -> false
    end

let is_past_up_to m ~max_steps =
  (* Q_M(D_M) = false on the initial (empty) MOD.  The query stops being
     past as soon as some update sequence makes it true; the encoder of the
     halting computation is exactly that sequence. *)
  match Turing.halts_within m ~max_steps with
  | Some k ->
    let db = DB.apply_all_exn (initial_mod ()) (encode_computation m ~max_steps:(k + 1)) in
    not (query_holds db m) (* halting computation found: the answer changed -> not past *)
  | None -> true
