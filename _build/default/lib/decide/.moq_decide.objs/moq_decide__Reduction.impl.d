lib/decide/reduction.ml: Hashtbl List Moq_geom Moq_mod Moq_numeric Turing
