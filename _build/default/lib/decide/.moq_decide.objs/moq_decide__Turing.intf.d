lib/decide/turing.mli: Hashtbl
