lib/decide/turing.ml: Hashtbl List Option
