lib/decide/reduction.mli: Moq_mod Moq_numeric Turing
