(** Single-tape Turing machines on empty input — the source problem of the
    paper's Theorem 2 reduction. *)

type direction = Left | Right

type t = {
  states : int;  (** states are [0 .. states-1]; state 0 is initial *)
  halt : int;    (** the halting state *)
  symbols : int; (** tape symbols are [0 .. symbols-1]; 0 is blank *)
  delta : (int * int, int * int * direction) Hashtbl.t;
      (** [(state, symbol) -> (state', symbol', move)] *)
}

val make :
  states:int -> halt:int -> symbols:int -> (int * int, int * int * direction) Hashtbl.t -> t

type config = { state : int; tape : (int, int) Hashtbl.t; head : int }
(** Sparse tape: absent cells are blank. *)

val initial : config
val read : config -> int -> int
val step : t -> config -> config option
(** [None] when no transition applies or the machine is already halted. *)

val is_halted : t -> config -> bool

val run : t -> max_steps:int -> config list
(** The computation prefix: configurations [c_0, c_1, ...] until halting or
    the step bound.  The last element is halted iff the machine halts within
    the bound. *)

val halts_within : t -> max_steps:int -> int option
(** [Some k]: halts after exactly [k] steps. *)

val busy_beaver_3 : unit -> t
(** The 3-state, 2-symbol busy-beaver champion for ones written: halts from
    the blank tape leaving six 1s (13 transitions under this simulator's
    counting). *)

val loop_forever : unit -> t
(** A machine that provably never halts (moves right forever). *)
