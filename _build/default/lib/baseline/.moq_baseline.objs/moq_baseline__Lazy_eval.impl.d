lib/baseline/lazy_eval.ml: Format Moq_core Moq_mod Moq_numeric
