lib/baseline/grid_index.mli: Moq_mod
