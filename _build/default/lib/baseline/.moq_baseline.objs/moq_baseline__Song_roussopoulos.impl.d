lib/baseline/song_roussopoulos.ml: Grid_index List Moq_geom Moq_mod Moq_numeric Option
