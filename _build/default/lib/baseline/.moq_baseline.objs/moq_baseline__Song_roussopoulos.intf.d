lib/baseline/song_roussopoulos.mli: Moq_mod Moq_numeric
