lib/baseline/naive.ml: List Moq_core Moq_mod Moq_numeric
