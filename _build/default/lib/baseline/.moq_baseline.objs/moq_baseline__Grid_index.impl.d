lib/baseline/grid_index.ml: Float Hashtbl List Moq_mod Option
