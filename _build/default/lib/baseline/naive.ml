(** Naive re-evaluation baseline (experiment B1).

    What evaluation looks like {e without} the paper's Section 5 machinery:
    precompute every pairwise crossing of every pair of curves (O(N²)
    intersection computations — no adjacency pruning), then re-sort all N
    curves from scratch at each distinct crossing instant (O(N log N) per
    event instead of the sweep's O(log N)).  The answers agree with the
    sweep; only the cost differs. *)

module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb

module Make (B : Moq_core.Backend.S) = struct
  module C = Moq_core.Curves.Make (B)
  module TL = Moq_core.Timeline.Make (B)
  module Gdist = Moq_core.Gdist

  type stats = { pair_computations : int; events : int }

  (* Sort the objects alive at instant [i] by curve value (full re-sort). *)
  let order_at curves i =
    let alive = List.filter (fun (_, c) -> C.covers c i) curves in
    List.sort (fun (_, c1) (_, c2) -> C.diff_sign_at c1 c2 i) alive

  let knn_answer curves k i =
    let sorted = order_at curves i in
    let chosen =
      if List.length sorted <= k then sorted
      else begin
        let kth = snd (List.nth sorted (k - 1)) in
        List.filter (fun (_, c) -> C.diff_sign_at c kth i <= 0) sorted
      end
    in
    Oid.Set.of_list (List.map fst chosen)

  let knn_run ~(db : DB.t) ~(gdist : Gdist.t) ~(k : int) ~(lo : Q.t) ~(hi : Q.t) :
      TL.t * stats =
    let lo_s = B.scalar_of_rat lo and hi_s = B.scalar_of_rat hi in
    let lo_i = B.instant_of_scalar lo_s and hi_i = B.instant_of_scalar hi_s in
    let curves =
      List.map (fun (o, tr) -> (o, B.curve_of_qpiece (Gdist.curve gdist tr))) (DB.objects db)
    in
    (* every pairwise crossing, plus every birth/death, in the window *)
    let pairs = ref 0 in
    let crossing_times =
      let rec all = function
        | (_, c1) :: rest ->
          List.concat_map
            (fun (_, c2) ->
              incr pairs;
              try C.all_crossings ~after:lo_i ~horizon:hi_s c1 c2
              with Invalid_argument _ -> [] (* disjoint lifetimes *))
            rest
          @ all rest
        | [] -> []
      in
      all curves
    in
    let lifetime_events =
      List.concat_map
        (fun (_, c) ->
          let s = B.PW.start c in
          let birth =
            if B.P.F.compare s lo_s > 0 && B.P.F.compare s hi_s < 0 then
              [ B.instant_of_scalar s ]
            else []
          in
          match B.PW.stop c with
          | Some e when B.P.F.compare e lo_s > 0 && B.P.F.compare e hi_s < 0 ->
            B.instant_of_scalar e :: birth
          | _ -> birth)
        curves
    in
    let events =
      List.sort_uniq B.compare_instant (crossing_times @ lifetime_events)
      |> List.filter (fun i ->
             B.compare_instant i lo_i > 0 && B.compare_instant i hi_i < 0)
    in
    let answer = knn_answer curves k in
    let rec build prev = function
      | [] ->
        if B.compare_instant prev hi_i < 0 then begin
          let sample = B.instant_of_scalar (B.between prev hi_i) in
          [ TL.Span (prev, hi_i, answer sample); TL.At (hi_i, answer hi_i) ]
        end
        else []
      | e :: rest ->
        let sample = B.instant_of_scalar (B.between prev e) in
        TL.Span (prev, e, answer sample) :: TL.At (e, answer e) :: build e rest
    in
    let timeline = TL.At (lo_i, answer lo_i) :: build lo_i events in
    (TL.simplify timeline, { pair_computations = !pairs; events = List.length events })
end
