module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module T = Moq_mod.Trajectory
module Fvec = Moq_geom.Vec.Fvec
module Qvec = Moq_geom.Vec.Qvec

type sample = { time : float; answer : Oid.Set.t }

let float_pos tr (t : Q.t) =
  Option.map
    (fun v ->
      match List.map Q.to_float (Qvec.to_list v) with
      | [ x ] -> (x, 0.0)
      | x :: y :: _ -> (x, y)
      | [] -> invalid_arg "Song_roussopoulos: zero-dimensional object")
    (T.position tr t)

let run ~db ~gamma ~k ~lo ~hi ~period ?(cell = 50.0) () =
  if period <= 0.0 then invalid_arg "Song_roussopoulos.run: period <= 0";
  let lo_f = Q.to_float lo and hi_f = Q.to_float hi in
  let objects = DB.objects db in
  let rec sample_times t acc =
    if t > hi_f +. 1e-12 then List.rev acc else sample_times (t +. period) (t :: acc)
  in
  List.filter_map
    (fun tf ->
      let t = Q.of_float tf in
      match float_pos gamma t with
      | None -> None
      | Some center ->
        let points =
          List.filter_map
            (fun (o, tr) -> Option.map (fun p -> (o, p)) (float_pos tr t))
            objects
        in
        let index = Grid_index.build ~cell points in
        let nearest = Grid_index.nearest_k index ~center ~k in
        Some { time = tf; answer = Oid.Set.of_list (List.map fst nearest) })
    (sample_times lo_f [])

let answer_at samples t =
  let rec last acc = function
    | s :: rest when s.time <= t +. 1e-12 -> last s.answer rest
    | _ -> acc
  in
  last Oid.Set.empty samples

let mismatch_fraction ~truth ~samples ~lo ~hi ~probes =
  if probes <= 0 then invalid_arg "mismatch_fraction: probes <= 0";
  let wrong = ref 0 and total = ref 0 in
  for j = 0 to probes - 1 do
    let t = lo +. ((hi -. lo) *. (float_of_int j +. 0.5) /. float_of_int probes) in
    match truth t with
    | None -> ()
    | Some expected ->
      incr total;
      if not (Oid.Set.equal expected (answer_at samples t)) then incr wrong
  done;
  if !total = 0 then 0.0 else float_of_int !wrong /. float_of_int !total
