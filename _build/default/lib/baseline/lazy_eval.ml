(** Lazy evaluation of future queries (Section 3's first alternative):
    buffer the updates and do nothing until the query becomes past, then run
    one full sweep.  Correct, but the entire evaluation cost lands at answer
    time — experiment B3 compares this latency against the eager monitor's
    per-update cost. *)

module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update

module Make (B : Moq_core.Backend.S) = struct
  module Sw = Moq_core.Sweep.Make (B)
  module Gdist = Moq_core.Gdist
  module Fof = Moq_core.Fof

  type t = {
    mutable db : DB.t;
    gdist : Gdist.t;
    query : Fof.query;
  }

  let create ~db ~gdist ~query = { db; gdist; query }

  let apply_update t u : (unit, DB.error) result =
    match DB.apply t.db u with
    | Ok db ->
      t.db <- db;
      Ok ()
    | Error e -> Error e

  let apply_update_exn t u =
    match apply_update t u with
    | Ok () -> ()
    | Error e -> invalid_arg (Format.asprintf "Lazy_eval: %a" DB.pp_error e)

  (* The full sweep, paid on demand. *)
  let answer t : Sw.result = Sw.run ~db:t.db ~gdist:t.gdist ~query:t.query
end
