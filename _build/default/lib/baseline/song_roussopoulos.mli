(** The k-NN re-search baseline of Song & Roussopoulos [26], as discussed
    around Figure 2.

    Their setting: only the query point moves; the data objects are indexed
    spatially.  At each re-search instant the method range-searches around
    the query's current position (growing the radius from the distance moved
    since the last search) and reports the k nearest.  Between searches the
    answer is {e assumed} unchanged — so an order exchange like Figure 2's
    time C, occurring between two searches, goes undetected until the next
    search.  Experiment B2 measures exactly that gap against the sweep. *)

module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module T = Moq_mod.Trajectory

type sample = { time : float; answer : Moq_mod.Oid.Set.t }

val run :
  db:DB.t ->
  gamma:T.t ->
  k:int ->
  lo:Q.t ->
  hi:Q.t ->
  period:float ->
  ?cell:float ->
  unit ->
  sample list
(** Re-search every [period] time units over [[lo, hi]].  Objects are
    re-indexed at each search at their current positions (the original
    assumes stationary data; re-indexing extends it fairly to moving
    data). *)

val answer_at : sample list -> float -> Moq_mod.Oid.Set.t
(** The baseline's belief at an arbitrary time: the answer of the most
    recent sample. *)

val mismatch_fraction :
  truth:(float -> Moq_mod.Oid.Set.t option) ->
  samples:sample list ->
  lo:float ->
  hi:float ->
  probes:int ->
  float
(** Fraction of [probes] uniformly-spaced times where the baseline's belief
    differs from the true answer. *)
