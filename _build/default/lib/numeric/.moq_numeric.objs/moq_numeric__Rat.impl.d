lib/numeric/rat.ml: Bigint Float Format Hashtbl Int64 String
