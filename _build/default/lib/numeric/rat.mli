(** Exact rational numbers over {!Bigint}.

    Values are kept canonical: the denominator is strictly positive and
    [gcd num den = 1].  These rationals carry all exact computation in the
    reproduction: trajectory coordinates, polynomial coefficients, Sturm
    sequences, and sweep event times. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints p q] is [p/q]. @raise Division_by_zero if [q = 0]. *)

val of_bigint : Bigint.t -> t
val num : t -> Bigint.t
val den : t -> Bigint.t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero *)

val inv : t -> t
(** @raise Division_by_zero *)

val min : t -> t -> t
val max : t -> t -> t
val is_zero : t -> bool

val floor : t -> Bigint.t
(** Largest integer [<=] the rational. *)

val ceil : t -> Bigint.t

val mediant : t -> t -> t
(** [mediant a b] is [(num a + num b) / (den a + den b)]; lies strictly
    between [a] and [b] when [a <> b].  Used to pick small-representation
    sample points inside isolating intervals. *)

val to_float : t -> float
val of_float : float -> t
(** Exact conversion of a finite float (binary expansion).
    @raise Invalid_argument on nan/infinite. *)

val of_string : string -> t
(** Accepts ["p"], ["p/q"], and decimal notation ["-12.75"]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int

(** Infix operators, for formula-heavy call sites. *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
  val ( =/ ) : t -> t -> bool
  val ( </ ) : t -> t -> bool
  val ( <=/ ) : t -> t -> bool
  val ( >/ ) : t -> t -> bool
  val ( >=/ ) : t -> t -> bool
end
