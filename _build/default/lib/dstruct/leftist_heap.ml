type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable left : ('k, 'v) node option;
  mutable right : ('k, 'v) node option;
  mutable parent : ('k, 'v) node option;
  mutable npl : int; (* null-path length *)
  mutable in_heap : bool;
}

type ('k, 'v) handle = ('k, 'v) node

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable root : ('k, 'v) node option;
  mutable count : int;
}

let create ~cmp = { cmp; root = None; count = 0 }
let length t = t.count
let is_empty t = t.count = 0

let npl = function None -> 0 | Some n -> n.npl

let enforce_leftist x =
  if npl x.left < npl x.right then begin
    let l = x.left in
    x.left <- x.right;
    x.right <- l
  end;
  x.npl <- 1 + npl x.right

let rec merge cmp a b =
  match a, b with
  | None, x | x, None -> x
  | Some x, Some y ->
    let x, y = if cmp x.key y.key <= 0 then (x, y) else (y, x) in
    let m = merge cmp x.right (Some y) in
    x.right <- m;
    (match m with Some m -> m.parent <- Some x | None -> ());
    enforce_leftist x;
    Some x

let set_root t r =
  t.root <- r;
  match r with Some r -> r.parent <- None | None -> ()

let insert t k v =
  let n = { key = k; value = v; left = None; right = None; parent = None; npl = 1; in_heap = true } in
  set_root t (merge t.cmp t.root (Some n));
  t.count <- t.count + 1;
  n

let of_list ~cmp l =
  let nodes =
    List.map
      (fun (k, v) ->
        { key = k; value = v; left = None; right = None; parent = None; npl = 1; in_heap = true })
      l
  in
  (* round-robin pairwise merging: O(n) total *)
  let q = Queue.create () in
  List.iter (fun n -> Queue.add (Some n) q) nodes;
  let root =
    if Queue.is_empty q then None
    else begin
      while Queue.length q > 1 do
        let a = Queue.pop q and b = Queue.pop q in
        Queue.add (merge cmp a b) q
      done;
      Queue.pop q
    end
  in
  let t = { cmp; root; count = List.length nodes } in
  (match root with Some r -> r.parent <- None | None -> ());
  (t, nodes)

let find_min t = Option.map (fun n -> (n.key, n.value)) t.root

let detach_children n =
  let l = n.left and r = n.right in
  n.left <- None;
  n.right <- None;
  (match l with Some l -> l.parent <- None | None -> ());
  (match r with Some r -> r.parent <- None | None -> ());
  (l, r)

let pop_min t =
  match t.root with
  | None -> None
  | Some n ->
    n.in_heap <- false;
    let l, r = detach_children n in
    set_root t (merge t.cmp l r);
    t.count <- t.count - 1;
    Some (n.key, n.value)

(* After a subtree under [p] shrank, restore the leftist invariant upward.
   Stops as soon as a node's npl is unchanged (ancestors then unaffected). *)
let rec fix_up = function
  | None -> ()
  | Some p ->
    let old = p.npl in
    enforce_leftist p;
    if p.npl <> old then fix_up p.parent

let delete t n =
  if n.in_heap then begin
    n.in_heap <- false;
    t.count <- t.count - 1;
    let p = n.parent in
    n.parent <- None;
    let l, r = detach_children n in
    let sub = merge t.cmp l r in
    match p with
    | None -> set_root t sub
    | Some p ->
      (match p.left with
       | Some c when c == n -> p.left <- sub
       | _ -> p.right <- sub);
      (match sub with Some s -> s.parent <- Some p | None -> ());
      fix_up (Some p)
  end

let mem n = n.in_heap
let key n = n.key
let value n = n.value

let to_list t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (go ((n.key, n.value) :: acc) n.left) n.right
  in
  go [] t.root

let check_invariants t =
  let rec check parent = function
    | None -> 0
    | Some n ->
      assert n.in_heap;
      (match parent with
       | None -> assert (n.parent = None)
       | Some p ->
         (match n.parent with Some q -> assert (q == p) | None -> assert false);
         assert (t.cmp p.key n.key <= 0));
      let nl = check (Some n) n.left in
      let nr = check (Some n) n.right in
      assert (nl >= nr);
      assert (n.npl = 1 + nr);
      n.npl
  in
  ignore (check None t.root);
  let rec count = function
    | None -> 0
    | Some n -> 1 + count n.left + count n.right
  in
  assert (count t.root = t.count)
