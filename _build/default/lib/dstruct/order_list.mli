(** The sweep-status structure: a mutable ordered sequence with handles.

    The paper's "object list L" (Section 5, proof of Lemma 9): objects sorted
    by the precedence relation [≤_τ], stored in a balanced BST so that
    insertion and deletion are O(log N), with neighbour access for
    intersection scheduling and O(1) payload swap when two adjacent curves
    exchange order at an event.  Subtree sizes give O(log N) rank/select,
    which the k-NN operator uses.

    Handles stay valid until their node is deleted.  [swap_adjacent]
    exchanges the {e payloads} of two neighbouring nodes; callers that map
    elements to handles must re-point them (the sweep engine keeps a
    back-pointer in its entries). *)

type 'a t
type 'a handle

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val insert_sorted : cmp:('a -> 'a -> int) -> 'a t -> 'a -> 'a handle
(** Insert assuming the sequence is currently sorted w.r.t. [cmp]; the new
    element lands after any existing [cmp]-equal elements.  O(log N). *)

val delete : 'a t -> 'a handle -> unit
(** Remove the node.  Other handles remain valid (node splicing, no payload
    moves).  O(log N).  @raise Invalid_argument if already deleted. *)

val elt : 'a handle -> 'a
val set_elt : 'a handle -> 'a -> unit

val swap_adjacent : 'a t -> 'a handle -> 'a handle -> unit
(** Exchange the payloads of two nodes that are immediate neighbours (first
    argument directly before the second).  O(1).
    @raise Invalid_argument if they are not adjacent. *)

val next : 'a t -> 'a handle -> 'a handle option
val prev : 'a t -> 'a handle -> 'a handle option
val first : 'a t -> 'a handle option
val last : 'a t -> 'a handle option

val rank : 'a t -> 'a handle -> int
(** 0-based position.  O(log N). *)

val nth : 'a t -> int -> 'a handle option
(** Select by 0-based rank.  O(log N). *)

val to_list : 'a t -> 'a list

val check_invariants : 'a t -> unit
(** Assert AVL balance, size bookkeeping, and parent pointers (tests). *)
