(** Height-biased leftist heap with handle deletion.

    The event queue of the paper's Lemma 9: a priority queue that supports
    deleting an arbitrary element in O(log n) through a handle ("deletion
    from the heap requires pointers from objects in the object list ... we
    can use a height biased leftist tree in place of a heap").  The sweep
    keeps at most one event per pair of currently-adjacent curves and deletes
    the pair's event when the pair splits, so the queue length never exceeds
    the number of objects. *)

type ('k, 'v) t
type ('k, 'v) handle

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val insert : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) handle
(** O(log n). *)

val of_list : cmp:('k -> 'k -> int) -> ('k * 'v) list -> ('k, 'v) t * ('k, 'v) handle list
(** Build a heap of n elements in O(n) by round-robin pairwise merging
    (the paper's Theorem 10 needs linear-time event-queue reconstruction).
    Handles are returned in input order. *)

val find_min : ('k, 'v) t -> ('k * 'v) option

val pop_min : ('k, 'v) t -> ('k * 'v) option
(** O(log n). *)

val delete : ('k, 'v) t -> ('k, 'v) handle -> unit
(** Remove an arbitrary element by handle, O(log n).  Idempotent: deleting a
    handle twice (or a handle already removed by [pop_min]) is a no-op. *)

val mem : ('k, 'v) handle -> bool
(** Is the handle still in the heap? *)

val key : ('k, 'v) handle -> 'k
val value : ('k, 'v) handle -> 'v
val to_list : ('k, 'v) t -> ('k * 'v) list
(** Unsorted. *)

val check_invariants : ('k, 'v) t -> unit
