type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable data : ('k * 'v) array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let item = t.data.(0) in
    let data = Array.make (max 8 (2 * cap)) item in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let swap t i j =
  let x = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.cmp (fst t.data.(i)) (fst t.data.(p)) < 0 then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp (fst t.data.(l)) (fst t.data.(!smallest)) < 0 then smallest := l;
  if r < t.len && t.cmp (fst t.data.(r)) (fst t.data.(!smallest)) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t k v =
  if t.len = 0 && Array.length t.data = 0 then t.data <- Array.make 8 (k, v)
  else grow t;
  t.data.(t.len) <- (k, v);
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let find_min t = if t.len = 0 then None else Some t.data.(0)

let pop_min t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some top
  end

let check_invariants t =
  for i = 1 to t.len - 1 do
    assert (t.cmp (fst t.data.((i - 1) / 2)) (fst t.data.(i)) <= 0)
  done
