module Make (F : Moq_poly.Field.ORDERED_FIELD) = struct
  type t = { lo : F.t option; hi : F.t option }

  let make lo hi =
    (match lo, hi with
     | Some a, Some b when F.compare a b > 0 -> invalid_arg "Interval.make: lo > hi"
     | _ -> ());
    { lo; hi }

  let closed a b = make (Some a) (Some b)
  let from a = { lo = Some a; hi = None }
  let until b = { lo = None; hi = Some b }
  let all = { lo = None; hi = None }
  let point a = closed a a

  let lo i = i.lo
  let hi i = i.hi

  let mem x i =
    (match i.lo with None -> true | Some a -> F.compare a x <= 0)
    && (match i.hi with None -> true | Some b -> F.compare x b <= 0)

  let max_lo a b =
    match a, b with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if F.compare x y >= 0 then x else y)

  let min_hi a b =
    match a, b with
    | None, x | x, None -> x
    | Some x, Some y -> Some (if F.compare x y <= 0 then x else y)

  let intersect i j =
    let lo = max_lo i.lo j.lo and hi = min_hi i.hi j.hi in
    match lo, hi with
    | Some a, Some b when F.compare a b > 0 -> None
    | _ -> Some { lo; hi }

  let subset i j =
    (match j.lo with
     | None -> true
     | Some a -> (match i.lo with None -> false | Some x -> F.compare a x <= 0))
    && (match j.hi with
        | None -> true
        | Some b -> (match i.hi with None -> false | Some x -> F.compare x b <= 0))

  let is_point i =
    match i.lo, i.hi with
    | Some a, Some b -> F.compare a b = 0
    | _ -> false

  let equal i j =
    let eq a b =
      match a, b with
      | None, None -> true
      | Some x, Some y -> F.compare x y = 0
      | _ -> false
    in
    eq i.lo j.lo && eq i.hi j.hi

  let pp fmt i =
    let pb fmt = function
      | None -> Format.pp_print_string fmt "inf"
      | Some x -> F.pp fmt x
    in
    Format.fprintf fmt "[%a, %a]" pb i.lo pb i.hi
end
