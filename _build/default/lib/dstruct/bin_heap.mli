(** Array-based binary min-heap without arbitrary deletion.

    Ablation baseline for the event queue (experiment A1 in DESIGN.md): a
    plain heap cannot delete the events of a terminated or redirected object,
    so a sweep built on it must keep stale events and filter them on pop —
    exactly the problem the paper's Lemma 9 solves with the leftist tree. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val insert : ('k, 'v) t -> 'k -> 'v -> unit
val find_min : ('k, 'v) t -> ('k * 'v) option
val pop_min : ('k, 'v) t -> ('k * 'v) option
val check_invariants : ('k, 'v) t -> unit
