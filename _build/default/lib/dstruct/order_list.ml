(* AVL tree with parent pointers, subtree sizes, and stable node identity:
   deletion splices nodes instead of moving payloads, so outstanding handles
   never silently change element. *)

type 'a node = {
  mutable elt : 'a;
  mutable parent : 'a node option;
  mutable left : 'a node option;
  mutable right : 'a node option;
  mutable height : int;
  mutable size : int;
  mutable in_tree : bool;
}

type 'a handle = 'a node
type 'a t = { mutable root : 'a node option }

let create () = { root = None }

let h = function None -> 0 | Some n -> n.height
let sz = function None -> 0 | Some n -> n.size

let update n =
  n.height <- 1 + max (h n.left) (h n.right);
  n.size <- 1 + sz n.left + sz n.right

let length t = sz t.root
let is_empty t = t.root = None

let elt n =
  if not n.in_tree then invalid_arg "Order_list: handle deleted";
  n.elt

let set_elt n v =
  if not n.in_tree then invalid_arg "Order_list: handle deleted";
  n.elt <- v

(* Replace [parent]'s child [old_child] with [child]; [parent = None] means
   the root. *)
let set_child t parent old_child child =
  (match parent with
   | None -> t.root <- child
   | Some p ->
     (match p.left with
      | Some c when c == old_child -> p.left <- child
      | _ -> p.right <- child));
  match child with
  | Some c -> c.parent <- parent
  | None -> ()

(* Rotations return the node now occupying the rotated position. *)
let rotate_left t x =
  let y = match x.right with Some y -> y | None -> assert false in
  x.right <- y.left;
  (match y.left with Some l -> l.parent <- Some x | None -> ());
  set_child t x.parent x (Some y);
  y.left <- Some x;
  x.parent <- Some y;
  update x;
  update y;
  y

let rotate_right t x =
  let y = match x.left with Some y -> y | None -> assert false in
  x.left <- y.right;
  (match y.right with Some r -> r.parent <- Some x | None -> ());
  set_child t x.parent x (Some y);
  y.right <- Some x;
  x.parent <- Some y;
  update x;
  update y;
  y

let rec fix_up t = function
  | None -> ()
  | Some n ->
    update n;
    let bf = h n.left - h n.right in
    let n' =
      if bf > 1 then begin
        let l = match n.left with Some l -> l | None -> assert false in
        if h l.left >= h l.right then rotate_right t n
        else begin
          ignore (rotate_left t l);
          rotate_right t n
        end
      end
      else if bf < -1 then begin
        let r = match n.right with Some r -> r | None -> assert false in
        if h r.right >= h r.left then rotate_left t n
        else begin
          ignore (rotate_right t r);
          rotate_left t n
        end
      end
      else n
    in
    fix_up t n'.parent

let insert_sorted ~cmp t v =
  let node =
    { elt = v; parent = None; left = None; right = None; height = 1; size = 1; in_tree = true }
  in
  (match t.root with
   | None -> t.root <- Some node
   | Some _ ->
     let rec descend n =
       if cmp v n.elt < 0 then begin
         match n.left with
         | Some l -> descend l
         | None ->
           n.left <- Some node;
           node.parent <- Some n
       end
       else begin
         match n.right with
         | Some r -> descend r
         | None ->
           n.right <- Some node;
           node.parent <- Some n
       end
     in
     (match t.root with Some r -> descend r | None -> assert false);
     fix_up t node.parent);
  node

let rec leftmost n = match n.left with Some l -> leftmost l | None -> n
let rec rightmost n = match n.right with Some r -> rightmost r | None -> n

let first t = Option.map leftmost t.root
let last t = Option.map rightmost t.root

let next _t n =
  if not n.in_tree then invalid_arg "Order_list: handle deleted";
  match n.right with
  | Some r -> Some (leftmost r)
  | None ->
    let rec up c = function
      | Some p -> (match p.left with Some l when l == c -> Some p | _ -> up p p.parent)
      | None -> None
    in
    up n n.parent

let prev _t n =
  if not n.in_tree then invalid_arg "Order_list: handle deleted";
  match n.left with
  | Some l -> Some (rightmost l)
  | None ->
    let rec up c = function
      | Some p -> (match p.right with Some r when r == c -> Some p | _ -> up p p.parent)
      | None -> None
    in
    up n n.parent

let delete t n =
  if not n.in_tree then invalid_arg "Order_list: delete: handle already deleted";
  n.in_tree <- false;
  let fix_from =
    match n.left, n.right with
    | None, c | c, None ->
      set_child t n.parent n c;
      n.parent
    | Some _, Some r ->
      let s = leftmost r in
      let fix_from =
        if s == r then Some s
        else begin
          (* detach s (no left child) from its parent, adopt n's right *)
          let sp = s.parent in
          set_child t sp s s.right;
          s.right <- n.right;
          (match n.right with Some nr -> nr.parent <- Some s | None -> ());
          sp
        end
      in
      s.left <- n.left;
      (match n.left with Some nl -> nl.parent <- Some s | None -> ());
      set_child t n.parent n (Some s);
      fix_from
  in
  n.parent <- None;
  n.left <- None;
  n.right <- None;
  fix_up t fix_from

let swap_adjacent t a b =
  if not a.in_tree || not b.in_tree then invalid_arg "Order_list: swap: deleted handle";
  (match next t a with
   | Some n when n == b -> ()
   | _ -> invalid_arg "Order_list.swap_adjacent: not adjacent");
  let va = a.elt in
  a.elt <- b.elt;
  b.elt <- va

let rank _t n =
  if not n.in_tree then invalid_arg "Order_list: handle deleted";
  let rec up c acc = function
    | None -> acc
    | Some p ->
      let acc = match p.right with Some r when r == c -> acc + 1 + sz p.left | _ -> acc in
      up p acc p.parent
  in
  up n (sz n.left) n.parent

let nth t i =
  if i < 0 || i >= length t then None
  else begin
    let rec descend n i =
      let ls = sz n.left in
      if i < ls then descend (Option.get n.left) i
      else if i = ls then n
      else descend (Option.get n.right) (i - ls - 1)
    in
    Some (descend (Option.get t.root) i)
  end

let to_list t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (n.elt :: go acc n.right) n.left
  in
  go [] t.root

let check_invariants t =
  let rec check parent = function
    | None -> (0, 0)
    | Some n ->
      assert n.in_tree;
      (match parent with
       | None -> assert (n.parent = None)
       | Some p -> (match n.parent with Some q -> assert (q == p) | None -> assert false));
      let hl, sl = check (Some n) n.left in
      let hr, sr = check (Some n) n.right in
      assert (n.height = 1 + max hl hr);
      assert (n.size = 1 + sl + sr);
      assert (abs (hl - hr) <= 1);
      (n.height, n.size)
  in
  ignore (check None t.root)
