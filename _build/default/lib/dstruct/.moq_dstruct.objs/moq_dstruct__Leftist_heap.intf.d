lib/dstruct/leftist_heap.mli:
