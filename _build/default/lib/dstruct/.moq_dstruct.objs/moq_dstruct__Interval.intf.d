lib/dstruct/interval.mli: Format Moq_poly
