lib/dstruct/interval.ml: Format Moq_poly
