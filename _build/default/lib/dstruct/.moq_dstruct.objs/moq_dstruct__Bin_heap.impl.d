lib/dstruct/bin_heap.ml: Array
