lib/dstruct/order_list.mli:
