lib/dstruct/bin_heap.mli:
