lib/dstruct/order_list.ml: Option
