lib/dstruct/leftist_heap.ml: List Option Queue
