(** Closed time intervals, possibly unbounded.

    The paper's query intervals [I] and trajectory lifetimes (Section 2
    assumes all time intervals closed or unbounded). *)

module Make (F : Moq_poly.Field.ORDERED_FIELD) : sig
  type t

  val make : F.t option -> F.t option -> t
  (** [make lo hi]: [None] means unbounded on that side.
      @raise Invalid_argument if [lo > hi]. *)

  val closed : F.t -> F.t -> t
  val from : F.t -> t
  (** [[x, +inf)]. *)

  val until : F.t -> t
  val all : t
  val point : F.t -> t
  val lo : t -> F.t option
  val hi : t -> F.t option
  val mem : F.t -> t -> bool
  val intersect : t -> t -> t option
  val subset : t -> t -> bool
  val is_point : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
