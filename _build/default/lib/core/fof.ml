module Q = Moq_numeric.Rat

type ovar = string

type time_term = { scale : Q.t; offset : Q.t }

let t_var = { scale = Q.one; offset = Q.zero }

let affine ~scale ~offset =
  if Q.sign scale < 0 then invalid_arg "Fof.affine: negative scale" else { scale; offset }

let at_time tau = { scale = Q.zero; offset = tau }

type real_term =
  | Const of Q.t
  | Dist of ovar * time_term

type cmp = Lt | Le | Eq | Ne | Ge | Gt

type formula =
  | True
  | False
  | Cmp of cmp * real_term * real_term
  | Same of ovar * ovar
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Forall of ovar * formula
  | Exists of ovar * formula

let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun a b -> And (a, b)) f rest

let disj = function
  | [] -> False
  | f :: rest -> List.fold_left (fun a b -> Or (a, b)) f rest

module Interval = Moq_dstruct.Interval.Make (Moq_poly.Field.Rat_field)

type query = { y : ovar; interval : Interval.t; phi : formula }

let tt_equal a b = Q.equal a.scale b.scale && Q.equal a.offset b.offset

let rec fold_terms f acc = function
  | True | False | Same _ -> acc
  | Cmp (_, a, b) -> f (f acc a) b
  | Not g -> fold_terms f acc g
  | And (g, h) | Or (g, h) -> fold_terms f (fold_terms f acc g) h
  | Forall (_, g) | Exists (_, g) -> fold_terms f acc g

let time_terms q =
  let terms =
    fold_terms
      (fun acc t -> match t with Dist (_, tt) -> tt :: acc | Const _ -> acc)
      [] q.phi
  in
  let dedup =
    List.fold_left
      (fun acc tt -> if List.exists (tt_equal tt) acc then acc else tt :: acc)
      [] terms
  in
  let identity, others = List.partition (tt_equal t_var) dedup in
  identity @ List.rev others

let constants q =
  let consts =
    fold_terms
      (fun acc t -> match t with Const c -> c :: acc | Dist _ -> acc)
      [] q.phi
  in
  List.sort_uniq Q.compare consts

let free_ok q =
  let rec check bound scales_ok = function
    | True | False -> scales_ok
    | Same (y, z) -> scales_ok && List.mem y bound && List.mem z bound
    | Cmp (_, a, b) ->
      let term_ok = function
        | Const _ -> true
        | Dist (y, tt) -> List.mem y bound && Q.sign tt.scale >= 0
      in
      scales_ok && term_ok a && term_ok b
    | Not g -> check bound scales_ok g
    | And (g, h) | Or (g, h) -> check bound scales_ok g && check bound scales_ok h
    | Forall (y, g) | Exists (y, g) -> check (y :: bound) scales_ok g
  in
  check [ q.y ] true q.phi

let nearest_q ~interval =
  { y = "y";
    interval;
    phi = Forall ("z", Cmp (Le, Dist ("y", t_var), Dist ("z", t_var))) }

let knn_q ~k ~interval =
  if k < 1 then invalid_arg "Fof.knn_q: k must be >= 1"
  else begin
    (* ¬∃ z1..zk pairwise distinct, all ≠ y, all with f(zi,t) < f(y,t) *)
    let zs = List.init k (fun i -> Printf.sprintf "z%d" (i + 1)) in
    let distinct =
      let rec pairs = function
        | z :: rest -> List.map (fun z' -> Not (Same (z, z'))) rest @ pairs rest
        | [] -> []
      in
      pairs zs
    in
    let closer = List.map (fun z -> Cmp (Lt, Dist (z, t_var), Dist ("y", t_var))) zs in
    let not_y = List.map (fun z -> Not (Same (z, "y"))) zs in
    let body = conj (distinct @ not_y @ closer) in
    let exists = List.fold_right (fun z g -> Exists (z, g)) zs body in
    { y = "y"; interval; phi = Not exists }
  end

let within_q ~bound ~interval =
  { y = "y"; interval; phi = Cmp (Le, Dist ("y", t_var), Const bound) }

let beyond_q ~bound ~interval =
  { y = "y"; interval; phi = Cmp (Gt, Dist ("y", t_var), Const bound) }

let pp_tt fmt tt =
  if Q.is_zero tt.scale then Q.pp fmt tt.offset
  else if Q.equal tt.scale Q.one && Q.is_zero tt.offset then Format.pp_print_string fmt "t"
  else Format.fprintf fmt "%a·t+%a" Q.pp tt.scale Q.pp tt.offset

let pp_term fmt = function
  | Const c -> Q.pp fmt c
  | Dist (y, tt) -> Format.fprintf fmt "f(%s, %a)" y pp_tt tt

let pp_cmp fmt c =
  Format.pp_print_string fmt
    (match c with Lt -> "<" | Le -> "<=" | Eq -> "=" | Ne -> "<>" | Ge -> ">=" | Gt -> ">")

let rec pp_formula fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Cmp (c, a, b) -> Format.fprintf fmt "%a %a %a" pp_term a pp_cmp c pp_term b
  | Same (y, z) -> Format.fprintf fmt "%s == %s" y z
  | Not g -> Format.fprintf fmt "~(%a)" pp_formula g
  | And (g, h) -> Format.fprintf fmt "(%a /\\ %a)" pp_formula g pp_formula h
  | Or (g, h) -> Format.fprintf fmt "(%a \\/ %a)" pp_formula g pp_formula h
  | Forall (y, g) -> Format.fprintf fmt "A%s.(%a)" y pp_formula g
  | Exists (y, g) -> Format.fprintf fmt "E%s.(%a)" y pp_formula g

let pp_query fmt q =
  Format.fprintf fmt "(%s, t, %a, %a)" q.y Interval.pp q.interval pp_formula q.phi
