(** Sweep backends.

    The plane-sweep engine is parametric in how it represents points on the
    time axis and how it finds curve intersections.  The {!Exact} backend
    computes with rational coefficients and real algebraic event times —
    every comparison the sweep makes is decided exactly, standing in for the
    real-closed-field oracle the paper assumes.  The {!Approx} backend uses
    floats and numeric root finding; it is the fast configuration used by
    the benchmarks (experiment A2 compares the two). *)

module Q = Moq_numeric.Rat

module type S = sig
  module P : Moq_poly.Poly_intf.S
  module PW : Moq_poly.Piecewise_intf.S with type P.t = P.t and type P.F.t = P.F.t

  (** A point on the sweep line (an event time). *)
  type instant

  val instant_of_scalar : P.F.t -> instant
  val compare_instant : instant -> instant -> int
  val compare_instant_scalar : instant -> P.F.t -> int

  val sign_at_instant : P.t -> instant -> int
  (** Exact sign of a polynomial at the instant. *)

  val sign_after_instant : P.t -> instant -> int
  (** Sign immediately to the right of the instant (first non-vanishing
      derivative).  Zero only for the zero polynomial. *)

  val first_root_after : P.t -> instant -> instant option
  val first_root_at_or_after : P.t -> P.F.t -> instant option

  val all_roots : P.t -> instant list
  (** All distinct real roots, ascending (used by the naive baseline, which
      precomputes every pairwise crossing instead of sweeping). *)

  val between : instant -> instant -> P.F.t
  (** A scalar strictly between two distinct instants (the paper's
      "[τ' + ε]" sample points). *)

  val scalar_after : instant -> upto:P.F.t option -> P.F.t
  (** A scalar strictly greater than the instant (and at most [upto] when
      bounded; assumes the instant precedes [upto]). *)

  val scalar_of_rat : Q.t -> P.F.t
  val curve_of_qpiece : Moq_poly.Piecewise.Qpiece.t -> PW.t
  val instant_to_float : instant -> float
  val pp_instant : Format.formatter -> instant -> unit
end

module Exact :
  S
    with type P.t = Moq_poly.Qpoly.t
     and type P.F.t = Q.t
     and type PW.t = Moq_poly.Piecewise.Qpiece.t
     and type instant = Moq_poly.Algnum.t =
struct
  module P = Moq_poly.Qpoly
  module PW = Moq_poly.Piecewise.Qpiece
  module A = Moq_poly.Algnum

  type instant = A.t

  let instant_of_scalar = A.of_rat
  let compare_instant = A.compare
  let compare_instant_scalar i s = A.compare i (A.of_rat s)
  let sign_at_instant p i = A.sign_of_poly_at p i

  let sign_after_instant p i =
    let rec go p =
      if P.is_zero p then 0
      else begin
        let s = A.sign_of_poly_at p i in
        if s <> 0 then s else go (P.derivative p)
      end
    in
    go p

  let first_root_after = A.first_root_after

  let first_root_at_or_after p s = A.first_root_at_or_after p (A.of_rat s)

  let all_roots = A.roots

  let between a b = A.rational_between a b

  let scalar_after i ~upto =
    match upto with
    | None -> A.rational_above i
    | Some u -> A.rational_between i (A.of_rat u)

  let scalar_of_rat q = q
  let curve_of_qpiece c = c
  let instant_to_float = A.to_float
  let pp_instant = A.pp
end

module Approx :
  S
    with type P.t = Moq_poly.Fpoly.t
     and type P.F.t = float
     and type PW.t = Moq_poly.Piecewise.Fpiece.t
     and type instant = float =
struct
  module P = Moq_poly.Fpoly
  module PW = Moq_poly.Piecewise.Fpiece

  type instant = float

  let instant_of_scalar t = t
  let compare_instant = Float.compare
  let compare_instant_scalar = Float.compare

  (* Event instants are roots computed in floating point, so evaluating a
     polynomial "at a crossing" yields a tiny nonzero residue.  Signs are
     therefore taken relative to the polynomial's magnitude at the point —
     the float analogue of the exact backend's algebraic zero test. *)
  let sign_at_instant p t =
    let v = P.eval p t in
    let at = Float.abs t in
    let scale =
      List.fold_left
        (fun (acc, pow) c -> (acc +. (Float.abs c *. pow), pow *. at))
        (0.0, 1.0) (P.to_list p)
      |> fst
    in
    (* Horner's rounding error is a small multiple of eps times the
       magnitude sum; anything beyond that is a real sign. *)
    if Float.abs v <= 32.0 *. epsilon_float *. (1.0 +. scale) then 0 else compare v 0.0

  let sign_after_instant p t =
    let rec go p =
      if P.is_zero p then 0
      else begin
        let s = sign_at_instant p t in
        if s <> 0 then s else go (P.derivative p)
      end
    in
    go p
  let first_root_after = Moq_poly.Froots.first_root_after
  let first_root_at_or_after = Moq_poly.Froots.first_root_at_or_after
  let all_roots = Moq_poly.Froots.real_roots
  let between a b = 0.5 *. (a +. b)

  let scalar_after i ~upto =
    match upto with
    | None -> i +. 1.0
    | Some u -> 0.5 *. (i +. u)

  let scalar_of_rat = Q.to_float
  let curve_of_qpiece = Moq_poly.Piecewise.fpiece_of_qpiece
  let instant_to_float t = t
  let pp_instant fmt t = Format.fprintf fmt "%g" t
end
