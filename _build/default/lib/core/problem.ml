(** Shared construction of a sweep instance from (MOD, g-distance, query):
    one curve per (object, time term) plus one constant curve per real
    constant in the query (paper, end of Section 5). *)

module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module Qpiece = Moq_poly.Piecewise.Qpiece

module Make (B : Backend.S) = struct
  module E = Engine.Make (B)
  module S = Snapshot.Make (B)

  type t = {
    mutable gdist : Gdist.t;
    tts : Fof.time_term array;
    consts : Q.t list;
    query : Fof.query;
    istart : Q.t;  (** interval start (anchors constant curves) *)
    mutable lifetimes : (Q.t * Q.t option) Oid.Map.t;
    mutable curves : B.PW.t option array Oid.Map.t; (* per object, per tt index *)
  }

  let tt_index p (tt : Fof.time_term) =
    let n = Array.length p.tts in
    let rec find i =
      if i >= n then invalid_arg "Problem: unknown time term"
      else begin
        let t = p.tts.(i) in
        if Q.equal t.Fof.scale tt.Fof.scale && Q.equal t.Fof.offset tt.Fof.offset then i
        else find (i + 1)
      end
    in
    find 0

  (* The curve of f(o, θ(t)), exact; [None] when the composed domain is
     empty (e.g. a constant time term outside the object's lifetime). *)
  let qcurve gdist (tr : T.t) (tt : Fof.time_term) ~(istart : Q.t) : Qpiece.t option =
    let base = Gdist.curve gdist tr in
    if Q.sign tt.Fof.scale > 0 then
      Some (Qpiece.compose_affine base ~scale:tt.Fof.scale ~offset:tt.Fof.offset)
    else if Qpiece.defined_at base tt.Fof.offset then
      Some (Qpiece.constant ~start:istart (Qpiece.eval base tt.Fof.offset))
    else None

  let curves_of p tr =
    Array.map
      (fun tt -> Option.map B.curve_of_qpiece (qcurve p.gdist tr tt ~istart:p.istart))
      p.tts

  let create ~(db : DB.t) ~(gdist : Gdist.t) ~(query : Fof.query) ~(istart : Q.t) : t =
    if not (Fof.free_ok query) then invalid_arg "Problem: ill-formed query";
    let tts =
      match Fof.time_terms query with
      | [] -> [| Fof.t_var |] (* queries with no Dist terms still sweep time *)
      | l -> Array.of_list l
    in
    let p =
      { gdist;
        tts;
        consts = Fof.constants query;
        query;
        istart;
        lifetimes = Oid.Map.empty;
        curves = Oid.Map.empty;
      }
    in
    List.iter
      (fun (o, tr) ->
        p.lifetimes <- Oid.Map.add o (T.birth tr, T.death tr) p.lifetimes;
        p.curves <- Oid.Map.add o (curves_of p tr) p.curves)
      (DB.objects db);
    p

  let entry_list p : (E.label * B.PW.t) list =
    let obj_entries =
      Oid.Map.fold
        (fun o arr acc ->
          let acc = ref acc in
          Array.iteri
            (fun k c -> match c with Some c -> acc := (E.Obj (o, k), c) :: !acc | None -> ())
            arr;
          !acc)
        p.curves []
    in
    let const_entries =
      List.map
        (fun c ->
          (E.Cst c, B.PW.constant ~start:(B.scalar_of_rat p.istart) (B.scalar_of_rat c)))
        p.consts
    in
    obj_entries @ const_entries

  let snapshot_ctx p : S.ctx =
    { S.oids = List.map fst (Oid.Map.bindings p.lifetimes);
      alive =
        (fun i o ->
          match Oid.Map.find_opt o p.lifetimes with
          | None -> false
          | Some (b, d) ->
            B.compare_instant_scalar i (B.scalar_of_rat b) >= 0
            && (match d with
                | None -> true
                | Some d -> B.compare_instant_scalar i (B.scalar_of_rat d) <= 0));
      curve =
        (fun o k ->
          match Oid.Map.find_opt o p.curves with
          | Some arr when k < Array.length arr -> arr.(k)
          | _ -> None);
      tt_index = tt_index p;
    }

  (* Mutations used by the monitor. *)

  let add_object p o tr =
    p.lifetimes <- Oid.Map.add o (T.birth tr, T.death tr) p.lifetimes;
    let arr = curves_of p tr in
    p.curves <- Oid.Map.add o arr p.curves;
    arr

  let update_object p o tr =
    p.lifetimes <- Oid.Map.add o (T.birth tr, T.death tr) p.lifetimes;
    let arr = curves_of p tr in
    p.curves <- Oid.Map.add o arr p.curves;
    arr

  let set_gdist p gdist db =
    p.gdist <- gdist;
    List.iter (fun (o, tr) -> p.curves <- Oid.Map.add o (curves_of p tr) p.curves)
      (DB.objects db)
end
