(** Answer timelines.

    Between support changes the answer to an FO(f) query is constant
    (paper, Lemma 8), so the sweep produces a finite alternation of open
    spans and event instants, each carrying an answer set.  The paper's
    three answer modes read off the timeline: the snapshot answer [Q^s] is
    the timeline itself (a finite representation of a possibly-infinite
    set), [Q^∃] is the union of the sets, [Q^∀] the intersection. *)

module Oid = Moq_mod.Oid

module Make (B : Backend.S) = struct
  type piece =
    | Span of B.instant * B.instant * Oid.Set.t
        (** answer over the open interval (lo, hi) *)
    | At of B.instant * Oid.Set.t  (** answer at one instant *)

  type t = piece list
  (** Chronological; adjacent pieces share endpoints. *)

  let set_of = function Span (_, _, s) | At (_, s) -> s

  let existential (tl : t) =
    List.fold_left (fun acc p -> Oid.Set.union acc (set_of p)) Oid.Set.empty tl

  let universal (tl : t) =
    match tl with
    | [] -> Oid.Set.empty
    | p :: rest -> List.fold_left (fun acc p -> Oid.Set.inter acc (set_of p)) (set_of p) rest

  (* Collapse maximal runs with equal sets into single spans: the minimal
     finite representation of Q^s. *)
  let simplify (tl : t) : t =
    let rec go = function
      | At (a, s1) :: At (b, s2) :: rest
        when B.compare_instant a b = 0 && Oid.Set.equal s1 s2 ->
        go (At (a, s1) :: rest)
      | Span (a, _, s1) :: At (_, s2) :: Span (_, b, s3) :: rest
        when Oid.Set.equal s1 s2 && Oid.Set.equal s2 s3 ->
        go (Span (a, b, s1) :: rest)
      | p :: rest -> p :: go rest
      | [] -> []
    in
    let rec fix l =
      let l' = go l in
      if List.length l' = List.length l then l else fix l'
    in
    fix tl

  (* When is an object in the answer?  The object's snapshot-answer time
     set, as a list of timeline pieces it belongs to. *)
  let when_member (tl : t) o = List.filter (fun p -> Oid.Set.mem o (set_of p)) tl

  (* Answer at a given instant, if the timeline covers it. *)
  let find_at (tl : t) (i : B.instant) : Oid.Set.t option =
    let covers = function
      | At (a, _) -> B.compare_instant a i = 0
      | Span (a, b, _) -> B.compare_instant a i < 0 && B.compare_instant i b < 0
    in
    Option.map set_of (List.find_opt covers tl)

  let pp fmt (tl : t) =
    let pp_set fmt s =
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Oid.pp)
        (Oid.Set.elements s)
    in
    Format.fprintf fmt "@[<v>";
    List.iter
      (fun p ->
        match p with
        | Span (a, b, s) ->
          Format.fprintf fmt "(%a, %a): %a@," B.pp_instant a B.pp_instant b pp_set s
        | At (a, s) -> Format.fprintf fmt "[%a]: %a@," B.pp_instant a pp_set s)
      tl;
    Format.fprintf fmt "@]"
end
