lib/core/fof.mli: Format Moq_dstruct Moq_numeric Moq_poly
