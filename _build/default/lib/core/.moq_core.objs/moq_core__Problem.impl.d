lib/core/problem.ml: Array Backend Engine Fof Gdist List Moq_mod Moq_numeric Moq_poly Option Snapshot
