lib/core/support.ml: Backend Engine Format List
