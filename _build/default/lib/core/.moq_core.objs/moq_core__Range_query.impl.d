lib/core/range_query.ml: Backend Engine Gdist List Moq_mod Moq_numeric Timeline
