lib/core/backend.ml: Float Format List Moq_numeric Moq_poly
