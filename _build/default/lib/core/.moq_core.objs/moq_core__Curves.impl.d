lib/core/curves.ml: Backend List
