lib/core/fof.ml: Format List Moq_dstruct Moq_numeric Moq_poly Printf
