lib/core/knn.ml: Backend Engine Gdist List Moq_mod Moq_numeric Timeline
