lib/core/sweep.ml: Backend Engine Fof Gdist List Moq_mod Moq_numeric Problem Timeline
