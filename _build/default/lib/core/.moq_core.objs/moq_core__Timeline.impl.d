lib/core/timeline.ml: Backend Format List Moq_mod Option
