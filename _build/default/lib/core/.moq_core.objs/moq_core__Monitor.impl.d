lib/core/monitor.ml: Array Backend Engine Fof Format Gdist List Moq_mod Moq_numeric Problem Sweep Timeline
