lib/core/snapshot.ml: Backend Curves Fof List Moq_mod Moq_numeric Option
