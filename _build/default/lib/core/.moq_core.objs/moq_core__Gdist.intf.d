lib/core/gdist.mli: Moq_geom Moq_mod Moq_numeric Moq_poly
