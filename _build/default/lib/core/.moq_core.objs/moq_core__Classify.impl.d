lib/core/classify.ml: Fof Format List Moq_mod Moq_numeric Option
