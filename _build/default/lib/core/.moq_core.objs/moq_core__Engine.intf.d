lib/core/engine.mli: Backend Curves Format Moq_mod Moq_numeric
