lib/core/engine.ml: Backend Curves Format Fun Hashtbl Int List Moq_dstruct Moq_mod Moq_numeric Option Queue Sys
