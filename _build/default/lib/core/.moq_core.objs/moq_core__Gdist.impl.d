lib/core/gdist.ml: List Moq_geom Moq_mod Moq_numeric Moq_poly Printf
