(** The reference FO(f) evaluator: compute [Q[D]_τ] at one instant directly
    from the curves, by structural recursion with object quantifiers ranging
    over the objects alive at the instant.

    This is deliberately the slow-but-obviously-correct path (O(N^q) per
    instant): the sweep only calls it once per support change (Lemma 8), and
    the tests cross-validate the specialized operators against it. *)

module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat

module Make (B : Backend.S) = struct
  module C = Curves.Make (B)
  module P = B.P

  type ctx = {
    oids : Oid.t list;
    alive : B.instant -> Oid.t -> bool;
    curve : Oid.t -> int -> B.PW.t option;  (** curve of [f(o, θ_idx(t))] *)
    tt_index : Fof.time_term -> int;
  }

  let sign_matches (cmp : Fof.cmp) s =
    match cmp with
    | Fof.Lt -> s < 0
    | Fof.Le -> s <= 0
    | Fof.Eq -> s = 0
    | Fof.Ne -> s <> 0
    | Fof.Ge -> s >= 0
    | Fof.Gt -> s > 0

  (* Sign of (term1 - term2) at instant [i]; [None] when some referenced
     curve is undefined there (the atom is then false). *)
  let diff_sign ctx env i t1 t2 =
    let curve_of y tt =
      match List.assoc_opt y env with
      | None -> invalid_arg ("Snapshot: unbound object variable " ^ y)
      | Some o ->
        (match ctx.curve o (ctx.tt_index tt) with
         | Some c when C.covers c i -> Some c
         | _ -> None)
    in
    match t1, t2 with
    | Fof.Const a, Fof.Const b -> Some (Q.compare a b)
    | Fof.Dist (y, tt), Fof.Const c ->
      Option.map
        (fun cv ->
          let p, _ = C.piece_at cv i in
          B.sign_at_instant (P.sub p (P.constant (B.scalar_of_rat c))) i)
        (curve_of y tt)
    | Fof.Const c, Fof.Dist (y, tt) ->
      Option.map
        (fun cv ->
          let p, _ = C.piece_at cv i in
          B.sign_at_instant (P.sub (P.constant (B.scalar_of_rat c)) p) i)
        (curve_of y tt)
    | Fof.Dist (y1, tt1), Fof.Dist (y2, tt2) ->
      (match curve_of y1 tt1, curve_of y2 tt2 with
       | Some c1, Some c2 -> Some (C.diff_sign_at c1 c2 i)
       | _ -> None)

  let rec eval ctx env i = function
    | Fof.True -> true
    | Fof.False -> false
    | Fof.Cmp (cmp, t1, t2) ->
      (match diff_sign ctx env i t1 t2 with
       | Some s -> sign_matches cmp s
       | None -> false)
    | Fof.Same (y, z) ->
      (match List.assoc_opt y env, List.assoc_opt z env with
       | Some a, Some b -> Oid.equal a b
       | _ -> invalid_arg "Snapshot: unbound object variable")
    | Fof.Not g -> not (eval ctx env i g)
    | Fof.And (g, h) -> eval ctx env i g && eval ctx env i h
    | Fof.Or (g, h) -> eval ctx env i g || eval ctx env i h
    | Fof.Forall (y, g) ->
      List.for_all
        (fun o -> (not (ctx.alive i o)) || eval ctx ((y, o) :: env) i g)
        ctx.oids
    | Fof.Exists (y, g) ->
      List.exists (fun o -> ctx.alive i o && eval ctx ((y, o) :: env) i g) ctx.oids

  (* Q[D]_i *)
  let answer_at ctx (q : Fof.query) (i : B.instant) : Oid.Set.t =
    List.fold_left
      (fun acc o ->
        if ctx.alive i o && eval ctx [ (q.Fof.y, o) ] i q.Fof.phi then Oid.Set.add o acc
        else acc)
      Oid.Set.empty ctx.oids
end
