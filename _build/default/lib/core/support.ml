(** The support of a query (paper, Section 5): the minimal set of true
    order atoms among instantiated real terms that determines the answer —
    concretely, the relation between each pair of {e adjacent} curves on the
    sweep line (the rest is transitive closure and hence redundant, as the
    paper notes about the base).

    [supp(Q, D, t)] changes exactly at sweep events; the engine's statistics
    count those changes (the paper's m). *)

module Make (B : Backend.S) = struct
  module E = Engine.Make (B)
  module C = E.C

  type rel = Below | Equal

  type atom = { left : E.label; rel : rel; right : E.label }

  type t = atom list

  (* supp at the engine's current position, evaluated at instant [i]. *)
  let current (eng : E.t) (i : B.instant) : t =
    let rec pairs = function
      | l :: (r :: _ as rest) ->
        let s = C.diff_sign_at (E.curve l) (E.curve r) i in
        { left = E.label l;
          rel = (if s = 0 then Equal else Below);
          right = E.label r }
        :: pairs rest
      | _ -> []
    in
    pairs (E.order eng)

  let equal (s1 : t) (s2 : t) =
    List.length s1 = List.length s2
    && List.for_all2
         (fun a b ->
           E.compare_label a.left b.left = 0
           && E.compare_label a.right b.right = 0
           && a.rel = b.rel)
         s1 s2

  let pp fmt (s : t) =
    Format.fprintf fmt "@[<h>";
    List.iteri
      (fun idx a ->
        if idx = 0 then Format.fprintf fmt "%a" E.pp_label a.left;
        let op = match a.rel with Below -> " < " | Equal -> " = " in
        Format.fprintf fmt "%s%a" op E.pp_label a.right)
      s;
    Format.fprintf fmt "@]"
end
