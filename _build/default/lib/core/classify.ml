(** Operational past / continuing / future classification of FO(f) queries
    (paper, Definition 5).

    For the full constraint language this classification is undecidable
    (Theorem 2 — see [Moq_decide.Reduction] for the executable reduction);
    for FO(f) with affine time terms it is decided by comparing the image of
    the query interval under every time term against the MOD's last-update
    time: instants at or before the last update are frozen, instants after
    it can still be rewritten by updates. *)

module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb

type t = Past | Continuing | Future

let pp fmt = function
  | Past -> Format.pp_print_string fmt "past"
  | Continuing -> Format.pp_print_string fmt "continuing"
  | Future -> Format.pp_print_string fmt "future"

(* Image of the interval under an affine time term (scale >= 0):
   (lo_opt, hi_opt) with None = unbounded. *)
let image (tt : Fof.time_term) lo hi =
  if Q.is_zero tt.Fof.scale then (Some tt.Fof.offset, Some tt.Fof.offset)
  else begin
    let f x = Q.add (Q.mul tt.Fof.scale x) tt.Fof.offset in
    (Option.map f lo, Option.map f hi)
  end

let classify (db : DB.t) (q : Fof.query) : t =
  let tau0 = DB.last_update db in
  let lo = Fof.Interval.lo q.Fof.interval and hi = Fof.Interval.hi q.Fof.interval in
  (* the identity term is implicitly queried (liveness at t) *)
  let tts = Fof.t_var :: Fof.time_terms q in
  let images = List.map (fun tt -> image tt lo hi) tts in
  let all_past =
    List.for_all
      (fun (_, h) -> match h with Some h -> Q.compare h tau0 <= 0 | None -> false)
      images
  in
  let all_future =
    List.for_all
      (fun (l, _) -> match l with Some l -> Q.compare l tau0 > 0 | None -> false)
      images
  in
  if all_past then Past else if all_future then Future else Continuing
