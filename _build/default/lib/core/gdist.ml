module Q = Moq_numeric.Rat
module T = Moq_mod.Trajectory
module Qpiece = Moq_poly.Piecewise.Qpiece
module QP = Moq_poly.Qpoly

type t = { name : string; curve : T.t -> Qpiece.t }

let name f = f.name
let curve f tr = f.curve tr

let custom name curve = { name; curve }

(* Σ_i (coord_i(tr1) - coord_i(tr2))², restricted to the common lifetime. *)
let dist_sq_curves tr1 tr2 =
  let n = T.dim tr1 in
  if T.dim tr2 <> n then invalid_arg "Gdist: dimension mismatch"
  else begin
    let sq_diff i =
      Qpiece.combine (fun p q -> let d = QP.sub p q in QP.mul d d) (T.coord tr1 i) (T.coord tr2 i)
    in
    let rec sum i acc = if i >= n then acc else sum (i + 1) (Qpiece.combine QP.add acc (sq_diff i)) in
    sum 1 (sq_diff 0)
  end

let euclidean_sq ~gamma =
  { name = "euclidean_sq"; curve = (fun tr -> dist_sq_curves tr gamma) }

let distance_sq_to_point p =
  { name = "distance_sq_to_point";
    curve =
      (fun tr ->
        let gamma = T.stationary ~start:(T.birth tr) p in
        dist_sq_curves tr gamma) }

let coordinate i = { name = Printf.sprintf "coordinate_%d" i; curve = (fun tr -> T.coord tr i) }

let speed_sq =
  { name = "speed_sq";
    curve =
      (fun tr ->
        let pieces =
          List.map
            (fun (p : T.piece) ->
              (p.T.start, QP.constant (Moq_geom.Vec.Qvec.len2 p.T.a)))
            (T.pieces tr)
        in
        Qpiece.make ?stop:(T.death tr) pieces) }

let scale_curve k c = Qpiece.map (QP.scale k) c

let scaled_euclidean_sq ~gamma ~speed =
  if Q.sign speed <= 0 then invalid_arg "Gdist.scaled_euclidean_sq: speed must be positive"
  else begin
    let k = Q.inv (Q.mul speed speed) in
    { name = "scaled_euclidean_sq";
      curve = (fun tr -> scale_curve k (dist_sq_curves tr gamma)) }
  end

let intercept_time_sq ~gamma ~target_speed ~speed =
  if Q.compare speed target_speed <= 0 then
    invalid_arg "Gdist.intercept_time_sq: pursuer must be faster than target"
  else begin
    let denom = Q.sub (Q.mul speed speed) (Q.mul target_speed target_speed) in
    let k = Q.inv denom in
    { name = "intercept_time_sq";
      curve = (fun tr -> scale_curve k (dist_sq_curves tr gamma)) }
  end

let time_scaled f schedule =
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> Q.compare a b < 0 && sorted rest
    | _ -> true
  in
  if not (sorted schedule) then invalid_arg "Gdist.time_scaled: unsorted schedule"
  else if List.exists (fun (_, k) -> Q.sign k <= 0) schedule then
    invalid_arg "Gdist.time_scaled: factors must be positive"
  else
    { name = f.name ^ "/time_scaled";
      curve =
        (fun tr ->
          let base = curve f tr in
          (* split the base curve at schedule boundaries inside its domain
             and scale each region; boundaries create value discontinuities *)
          let stop = Qpiece.stop base in
          let start = Qpiece.start base in
          let boundaries =
            List.filter
              (fun (b, _) ->
                Q.compare b start > 0
                && (match stop with Some s -> Q.compare b s < 0 | None -> true))
              schedule
          in
          let factor_at t =
            List.fold_left
              (fun acc (b, k) -> if Q.compare b t <= 0 then k else acc)
              Q.one schedule
          in
          let cuts = start :: List.map fst boundaries in
          let pieces =
            List.concat_map
              (fun (lo, hi) ->
                let clipped = Qpiece.clip base ~from_:(Some lo) ~until:hi in
                let k = factor_at lo in
                Qpiece.pieces (Qpiece.map (QP.scale k) clipped))
              (let rec windows = function
                 | a :: (b :: _ as rest) -> (a, Some b) :: windows rest
                 | [ a ] -> [ (a, stop) ]
                 | [] -> []
               in
               windows cuts)
          in
          Qpiece.make ?stop pieces) }

let compose_time_term f ~scale ~offset =
  if Q.sign scale < 0 then invalid_arg "Gdist.compose_time_term: negative scale"
  else
    { name = Printf.sprintf "%s∘(%st+%s)" f.name (Q.to_string scale) (Q.to_string offset);
      curve = (fun tr -> Qpiece.compose_affine (f.curve tr) ~scale ~offset) }
