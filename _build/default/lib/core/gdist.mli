(** Generalized distances (paper, Definition 6): mappings from trajectories
    to continuous functions from time to R.

    Every g-distance here is {e polynomial} in the paper's sense — the
    resulting curve is piecewise polynomial with exact rational
    coefficients — which is the condition Theorems 4 and 5 need.  Curves are
    built exactly; each backend converts them on entry. *)

module Q = Moq_numeric.Rat
module T = Moq_mod.Trajectory
module Qpiece = Moq_poly.Piecewise.Qpiece

type t
(** A polynomial g-distance [f : T → (time → R)]. *)

val name : t -> string

val curve : t -> T.t -> Qpiece.t
(** [curve f tr] is the instantiated function [f(tr)]; its domain is the
    trajectory's lifetime (intersected with the reference trajectory's,
    where applicable). *)

val euclidean_sq : gamma:T.t -> t
(** Example 8: squared Euclidean distance to the query trajectory [γ] —
    piecewise quadratic. *)

val distance_sq_to_point : Moq_geom.Vec.Qvec.t -> t
(** Squared distance to a fixed point. *)

val coordinate : int -> t
(** The [i]-th coordinate of the trajectory — piecewise linear. *)

val speed_sq : t
(** Squared speed [|vel|²] — piecewise constant (the paper's [vel] made
    comparable). *)

val scaled_euclidean_sq : gamma:T.t -> speed:Q.t -> t
(** [|x_o(t) - x_γ(t)|² / speed²]: squared time for an object with maximum
    speed [speed] to reach the query object's current position.  Orders
    pursuers by arrival time against a momentarily-frozen target (the
    fastest-arrival family of Example 7). *)

val intercept_time_sq : gamma:T.t -> target_speed:Q.t -> speed:Q.t -> t
(** Example 9 / Figure 1: [t_Δ² = |x_γ(t) - x_o(t)|² / (speed² - target_speed²)],
    the squared interception time under the paper's perpendicular-pursuit
    geometry, valid for [speed > target_speed] — piecewise quadratic (the
    paper's [t_Δ² = c₂t² + c₁t + c₀]).
    @raise Invalid_argument if [speed <= target_speed]. *)

val time_scaled : t -> (Q.t * Q.t) list -> t
(** [time_scaled f schedule]: multiply [f]'s curve by a time-dependent step
    factor — [schedule] lists [(from_time, factor)] pairs, ascending; before
    the first entry the factor is 1.  The result is {e discontinuous} at the
    schedule boundaries, exercising the paper's Section 5 relaxation of
    continuity to finitely many continuous pieces (e.g. congestion windows
    that repricing travel time).  @raise Invalid_argument on an unsorted
    schedule or non-positive factor. *)

val custom : string -> (T.t -> Qpiece.t) -> t
(** Any user-defined polynomial g-distance.  The supplied function must
    return a curve whose domain is the trajectory's lifetime. *)

val compose_time_term : t -> scale:Q.t -> offset:Q.t -> t
(** The g-distance [fun tr t -> f tr (scale·t + offset)] for affine time
    terms (paper, end of Section 5: one curve per (trajectory, time term)
    pair).  Requires [scale ≥ 0]. *)
