(** Backend-generic operations on g-distance curves: comparing two curves at
    or just after an instant, and finding their next crossing — the
    intersection computation the sweep schedules events with. *)

module Make (B : Backend.S) = struct
  module P = B.P
  module PW = B.PW
  module F = B.P.F

  (* Does the curve's domain contain the instant? *)
  let covers (c : PW.t) (i : B.instant) : bool =
    B.compare_instant_scalar i (PW.start c) >= 0
    && (match PW.stop c with
        | Some s -> B.compare_instant_scalar i s <= 0
        | None -> true)

  (* The polynomial piece of [c] in force at [i], with the end of its
     validity.  @raise Invalid_argument if [i] is outside the domain. *)
  let piece_at (c : PW.t) (i : B.instant) : P.t * F.t option =
    if B.compare_instant_scalar i (PW.start c) < 0 then
      invalid_arg "Curves.piece_at: before curve start"
    else begin
      (match PW.stop c with
       | Some s when B.compare_instant_scalar i s > 0 ->
         invalid_arg "Curves.piece_at: after curve stop"
       | _ -> ());
      let rec find = function
        | (_, p) :: ((b, _) :: _ as rest) ->
          if B.compare_instant_scalar i b < 0 then (p, Some b) else find rest
        | [ (_, p) ] -> (p, PW.stop c)
        | [] -> assert false
      in
      find (PW.pieces c)
    end

  let value_sign_at (c : PW.t) (i : B.instant) : int =
    B.sign_at_instant (fst (piece_at c i)) i

  (* Sign of (c1 - c2) at instant [i]; both curves must cover [i]. *)
  let diff_sign_at c1 c2 i =
    let p1, _ = piece_at c1 i and p2, _ = piece_at c2 i in
    B.sign_at_instant (P.sub p1 p2) i

  (* Sign of (c1 - c2) immediately after [i] (the paper's τ' + ε ordering).
     Note: the jet only sees the current pieces; by continuity this is the
     correct one-sided sign whenever the difference is not identically zero
     on the current piece.  A zero result means the curves coincide on a
     neighbourhood to the right. *)
  let diff_sign_after c1 c2 i =
    let p1, _ = piece_at c1 i and p2, _ = piece_at c2 i in
    B.sign_after_instant (P.sub p1 p2) i

  (* Merged piece boundaries of two curves restricted to their common
     domain: returns [(start, poly_diff, stop_opt)] segments in order. *)
  let diff_segments (c1 : PW.t) (c2 : PW.t) : (F.t * P.t * F.t option) list =
    let ge a b = F.compare a b >= 0 in
    let s = if ge (PW.start c1) (PW.start c2) then PW.start c1 else PW.start c2 in
    let stop =
      match PW.stop c1, PW.stop c2 with
      | None, x | x, None -> x
      | Some a, Some b -> Some (if F.compare a b <= 0 then a else b)
    in
    (match stop with
     | Some e when F.compare s e > 0 -> invalid_arg "Curves.diff_segments: disjoint domains"
     | _ -> ());
    let inside b =
      F.compare s b < 0 && (match stop with None -> true | Some e -> F.compare b e < 0)
    in
    let bps =
      List.sort_uniq F.compare
        (List.filter inside (PW.breakpoints c1 @ PW.breakpoints c2))
    in
    let starts = s :: bps in
    let rec build = function
      | a :: (b :: _ as rest) ->
        let p1, _ = PW.piece_covering c1 a and p2, _ = PW.piece_covering c2 a in
        (a, P.sub p1 p2, Some b) :: build rest
      | [ a ] ->
        let p1, _ = PW.piece_covering c1 a and p2, _ = PW.piece_covering c2 a in
        [ (a, P.sub p1 p2, stop) ]
      | [] -> assert false
    in
    build starts

  (* Earliest instant strictly after [after] (and at most [horizon], when
     given) at which the two curves are equal.  Handles multi-piece curves
     and segments where the curves coincide identically (the crossing is
     then reported where they separate, via the root of the next segment's
     difference at its boundary). *)
  (* Every instant in (after, horizon] at which the two curves are equal,
     ascending.  O(total roots) — the naive baseline's primitive. *)
  let all_crossings ~(after : B.instant) ?horizon (c1 : PW.t) (c2 : PW.t) : B.instant list =
    let within_horizon i =
      match horizon with None -> true | Some h -> B.compare_instant_scalar i h <= 0
    in
    (* closed on both ends: a root at an internal breakpoint appears in two
       segments and is deduplicated below *)
    let in_segment s e i =
      B.compare_instant_scalar i s >= 0
      && (match e with Some e' -> B.compare_instant_scalar i e' <= 0 | None -> true)
    in
    List.concat_map
      (fun (s, d, e) ->
        if P.is_zero d then []
        else
          List.filter
            (fun r ->
              B.compare_instant r after > 0 && within_horizon r && in_segment s e r)
            (B.all_roots d))
      (diff_segments c1 c2)
    |> List.sort_uniq B.compare_instant

  let first_crossing ~(after : B.instant) ?horizon (c1 : PW.t) (c2 : PW.t) : B.instant option =
    let le_scalar a b = F.compare a b <= 0 in
    let within_horizon (i : B.instant) =
      match horizon with None -> true | Some h -> B.compare_instant_scalar i h <= 0
    in
    let segments = diff_segments c1 c2 in
    let rec scan = function
      | [] -> None
      | (s, d, e) :: rest ->
        (* skip segments entirely before [after] *)
        let seg_relevant =
          match e with
          | Some e' -> B.compare_instant_scalar after e' < 0
          | None -> true
        in
        let seg_started_past_horizon =
          match horizon with Some h -> not (le_scalar s h) | None -> false
        in
        if seg_started_past_horizon then None
        else if not seg_relevant then scan rest
        else if P.is_zero d then begin
          (* curves identical on this segment: they remain equal, no order
             change here; a separation shows up as a root at the next
             segment's start *)
          scan rest
        end
        else begin
          let candidate =
            if B.compare_instant_scalar after s < 0 then B.first_root_at_or_after d s
            else B.first_root_after d after
          in
          match candidate with
          | Some r
            when (match e with
                  | Some e' -> B.compare_instant_scalar r e' <= 0
                  | None -> true) ->
            if within_horizon r then Some r else None
          | _ -> scan rest
        end
    in
    scan segments
end
