(** The generalized-distance query language FO(f) (paper, Section 4).

    Many-sorted first-order logic with object variables, one time variable,
    and real terms built from a single g-distance [f]:
    - time terms are affine maps of the time variable (the engine's
      restriction of the paper's polynomial time terms; see DESIGN.md),
    - real terms are rational constants and [f(y, θ(t))],
    - formulas compare real terms and quantify over objects.

    A query [(y, t, I, φ)] asks for the objects [o] such that [φ(o, t)]
    holds, for time instants [t] ranging over the interval [I]; the three
    answer modes ([Q^s], [Q^∃], [Q^∀]) are computed from the same support
    timeline (see {!Timeline}). *)

module Q = Moq_numeric.Rat

type ovar = string

type time_term = { scale : Q.t; offset : Q.t }
(** [θ(t) = scale·t + offset] with [scale ≥ 0]. *)

val t_var : time_term
(** The identity time term [t]. *)

val affine : scale:Q.t -> offset:Q.t -> time_term
val at_time : Q.t -> time_term
(** The constant time term — "at time τ". *)

type real_term =
  | Const of Q.t
  | Dist of ovar * time_term  (** [f(y, θ(t))] *)

type cmp = Lt | Le | Eq | Ne | Ge | Gt

type formula =
  | True
  | False
  | Cmp of cmp * real_term * real_term
  | Same of ovar * ovar  (** object identity — convenient, conservative *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Forall of ovar * formula
  | Exists of ovar * formula

val conj : formula list -> formula
val disj : formula list -> formula

module Interval : module type of Moq_dstruct.Interval.Make (Moq_poly.Field.Rat_field)

type query = {
  y : ovar;          (** the free object variable *)
  interval : Interval.t;
  phi : formula;
}

val free_ok : query -> bool
(** All object variables bound except [y]; time-term scales non-negative. *)

val time_terms : query -> time_term list
(** Distinct time terms appearing in the query, identity first — the curves
    the engine must sweep (paper, end of Section 5: one function per pair of
    a trajectory and a time term). *)

val constants : query -> Q.t list
(** Distinct real constants — swept as constant curves. *)

(** Common queries. *)

val nearest_q : interval:Interval.t -> query
(** 1-NN (Example 10): [φ(y,t) = ∀z. f(y,t) ≤ f(z,t)]. *)

val knn_q : k:int -> interval:Interval.t -> query
(** k-NN as a pure FO(f) formula (Example 6's extension of 1-NN): [y] is a
    k-nearest neighbour iff there are no [k] pairwise-distinct objects all
    strictly closer than [y].  Size grows with [k] (the formula quantifies
    over [k] object variables); the {!Knn} operator is the efficient path —
    this builder exists to witness expressibility and for cross-validation.
    @raise Invalid_argument if [k < 1]. *)

val within_q : bound:Q.t -> interval:Interval.t -> query
(** Objects with [f(y,t) ≤ bound] (Example 11's "within 50 km"). *)

val beyond_q : bound:Q.t -> interval:Interval.t -> query

val pp_formula : Format.formatter -> formula -> unit
val pp_query : Format.formatter -> query -> unit
