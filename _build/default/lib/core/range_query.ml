(** The within-distance operator ("all flights within 50 km", Example 11):
    the query constant is swept as a constant curve; the answer at any
    instant is the set of object curves ranked below it, read off the order
    structure in O(log N) per support change. *)

module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb

module Make (B : Backend.S) = struct
  module E = Engine.Make (B)
  module C = E.C
  module TL = Timeline.Make (B)

  type result = {
    timeline : TL.t;
    stats : E.stats;
  }

  let oid_of e = match E.label e with E.Obj (o, _) -> Some o | E.Cst _ -> None

  let set_of_entries es =
    List.fold_left
      (fun acc e -> match oid_of e with Some o -> Oid.Set.add o acc | None -> acc)
      Oid.Set.empty es

  (* Objects at or below the bound.  On open spans the rank of the bound
     entry suffices: an object curve identically equal to the bound ties and
     is ordered before the constant (Obj < Cst in the stable label order),
     so <=-semantics still include it.  At instants we additionally take the
     run of entries tied with the bound. *)
  let run ~(db : DB.t) ~(gdist : Gdist.t) ~(bound : Q.t) ~(lo : Q.t) ~(hi : Q.t) : result =
    let entries =
      (E.Cst bound, B.PW.constant ~start:(B.scalar_of_rat lo) (B.scalar_of_rat bound))
      :: List.map
           (fun (o, tr) -> (E.Obj (o, 0), B.curve_of_qpiece (Gdist.curve gdist tr)))
           (DB.objects db)
    in
    let eng = E.create ~start:(B.scalar_of_rat lo) ~horizon:(B.scalar_of_rat hi) entries in
    let bound_entry () =
      match E.find eng (E.Cst bound) with
      | Some e -> e
      | None -> invalid_arg "Range_query: bound curve missing"
    in
    let answer_span () =
      let be = bound_entry () in
      set_of_entries (E.first_n eng (E.rank_of eng be))
    in
    let answer_at i =
      let be = bound_entry () in
      let r = E.rank_of eng be in
      let below = E.first_n eng r in
      (* entries tied with the bound at [i] sit just after it in the order *)
      let rec extend j acc =
        match E.nth_entry eng j with
        | Some e when C.diff_sign_at (E.curve e) (E.curve be) i = 0 -> extend (j + 1) (e :: acc)
        | _ -> acc
      in
      (* also those just before the bound and equal to it at i are already in
         [below]; collect ties after the bound *)
      set_of_entries (extend (r + 1) below)
    in
    let pieces = ref [] in
    let emit = function
      | E.Span (a, b) -> pieces := TL.Span (a, b, answer_span ()) :: !pieces
      | E.Point i -> pieces := TL.At (i, answer_at i) :: !pieces
    in
    let lo_i = B.instant_of_scalar (B.scalar_of_rat lo) in
    let hi_s = B.scalar_of_rat hi in
    let hi_i = B.instant_of_scalar hi_s in
    pieces := [ TL.At (lo_i, answer_at lo_i) ];
    if Q.compare lo hi < 0 then begin
      E.advance eng ~upto:hi_s ~emit;
      let last = E.now eng in
      if B.compare_instant last hi_i < 0 then begin
        pieces :=
          TL.At (hi_i, answer_at hi_i) :: TL.Span (last, hi_i, answer_span ()) :: !pieces
      end
    end;
    { timeline = TL.simplify (List.rev !pieces); stats = E.stats eng }
end
