lib/geom/vec.ml: Array Format Moq_poly
