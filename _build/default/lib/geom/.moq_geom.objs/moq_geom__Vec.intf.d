lib/geom/vec.mli: Format Moq_poly
