(** Points / vectors in R{^n} over an ordered field.

    The paper's vector notation [x = (x_1, ..., x_n)] (Section 2).  Squared
    length replaces [len] wherever possible so the exact backend stays inside
    the rationals; the paper itself squares distances for the same reason
    (Example 8). *)

module Make (F : Moq_poly.Field.ORDERED_FIELD) : sig
  type t

  val of_list : F.t list -> t
  val of_array : F.t array -> t
  val to_list : t -> F.t list
  val dim : t -> int
  val get : t -> int -> F.t
  val zero : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : F.t -> t -> t
  val dot : t -> t -> F.t
  val len2 : t -> F.t
  (** Squared Euclidean length. *)

  val dist2 : t -> t -> F.t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Qvec : module type of Make (Moq_poly.Field.Rat_field)
module Fvec : sig
  include module type of Make (Moq_poly.Field.Float_field)

  val len : t -> float
  val unit : t -> t
  (** Unit vector; @raise Invalid_argument on the zero vector. *)
end
