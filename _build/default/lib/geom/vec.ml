module Make (F : Moq_poly.Field.ORDERED_FIELD) = struct
  type t = F.t array

  let of_list = Array.of_list
  let of_array = Array.copy
  let to_list = Array.to_list
  let dim = Array.length
  let get v i = v.(i)
  let zero n = Array.make n F.zero

  let check_dim a b =
    if Array.length a <> Array.length b then invalid_arg "Vec: dimension mismatch"

  let add a b =
    check_dim a b;
    Array.mapi (fun i x -> F.add x b.(i)) a

  let sub a b =
    check_dim a b;
    Array.mapi (fun i x -> F.sub x b.(i)) a

  let neg a = Array.map F.neg a
  let scale c a = Array.map (F.mul c) a

  let dot a b =
    check_dim a b;
    let acc = ref F.zero in
    Array.iteri (fun i x -> acc := F.add !acc (F.mul x b.(i))) a;
    !acc

  let len2 a = dot a a
  let dist2 a b = len2 (sub a b)

  let equal a b = Array.length a = Array.length b && Array.for_all2 F.equal a b

  let pp fmt v =
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") F.pp)
      (Array.to_list v)
end

module Qvec = Make (Moq_poly.Field.Rat_field)

module Fvec = struct
  include Make (Moq_poly.Field.Float_field)

  let len v = sqrt (len2 v)

  let unit v =
    let l = len v in
    if l = 0.0 then invalid_arg "Vec.unit: zero vector" else scale (1.0 /. l) v
end
