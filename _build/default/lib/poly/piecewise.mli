(** Piecewise polynomial functions of time.

    Instantiated generalized distances [f(o)] are continuous piecewise
    polynomial functions from time to R (paper, Definition 6 and the
    "polynomial g-distance" notion of Section 5).  A value covers the domain
    [[start, stop)] ([stop = None] meaning unbounded), split into pieces each
    carrying one polynomial; pieces are stored in ascending order of start
    time.  Operations are documented in {!Piecewise_intf.S}. *)

module Make (P : Poly_intf.S) : Piecewise_intf.S with module P = P

module Qpiece :
  Piecewise_intf.S with type P.t = Qpoly.t and type P.F.t = Moq_numeric.Rat.t

module Fpiece : Piecewise_intf.S with type P.t = Fpoly.t and type P.F.t = float

val fpiece_of_qpiece : Qpiece.t -> Fpiece.t
(** Lossy conversion of an exact curve to the float backend. *)
