(** Sturm sequences and exact root isolation for rational polynomials.

    This is the "known algorithm" the paper delegates curve-intersection
    computation to (citation [21]); we implement it from scratch.  All
    operations are exact over {!Moq_numeric.Rat}. *)

module Q = Moq_numeric.Rat

type chain
(** A Sturm chain for a polynomial. *)

val chain : Qpoly.t -> chain

val poly : chain -> Qpoly.t

val variations_at : chain -> Q.t -> int
(** Number of sign variations of the chain evaluated at a point. *)

val count_roots_between : chain -> Q.t -> Q.t -> int
(** [count_roots_between c lo hi] is the number of distinct real roots in the
    half-open interval [(lo, hi]].  Requires [lo <= hi]. *)

val count_real_roots : chain -> int
(** Total number of distinct real roots. *)

type isolated =
  | Point of Q.t  (** an exactly-rational root *)
  | Open_interval of Q.t * Q.t
      (** an interval [(lo, hi)] with the polynomial nonzero at both endpoints
          and containing exactly one distinct root *)

val isolate : Qpoly.t -> isolated list
(** Isolating intervals for all distinct real roots of the (automatically
    squarefree-d) polynomial, in ascending order. *)

val refine : Qpoly.t -> Q.t -> Q.t -> [ `Exact of Q.t | `Narrower of Q.t * Q.t ]
(** One bisection step on an isolating interval of a squarefree polynomial
    with a sign change between the endpoints.  Either finds the root exactly
    rational, or halves the interval. *)
