module Make (P : Poly_intf.S) = struct
  module P = P
  module F = P.F

  (* Invariants: [pieces] nonempty, strictly increasing start times; when
     [stop = Some s], the last start precedes [s]. *)
  type t = { pieces : (F.t * P.t) list; stop : F.t option }

  let lt a b = F.compare a b < 0
  let le a b = F.compare a b <= 0

  let make ?stop pieces =
    if pieces = [] then invalid_arg "Piecewise.make: empty"
    else begin
      let rec sorted = function
        | (a, _) :: ((b, _) :: _ as rest) -> lt a b && sorted rest
        | _ -> true
      in
      if not (sorted pieces) then invalid_arg "Piecewise.make: unsorted pieces"
      else begin
        (match stop with
         | Some s ->
           let last_start = fst (List.nth pieces (List.length pieces - 1)) in
           if not (lt last_start s) then invalid_arg "Piecewise.make: stop before last piece"
         | None -> ());
        { pieces; stop }
      end
    end

  let constant ~start v = { pieces = [ (start, P.constant v) ]; stop = None }
  let of_poly ~start p = { pieces = [ (start, p) ]; stop = None }

  let pieces c = c.pieces

  let start c =
    match c.pieces with
    | (s, _) :: _ -> s
    | [] -> assert false

  let stop c = c.stop

  let defined_at c t =
    le (start c) t && (match c.stop with None -> true | Some s -> le t s)

  (* The piece in force at time [t]: the last piece whose start is <= t.
     At the right domain endpoint the final piece applies (closed stop, per
     the paper's closed time intervals). *)
  let piece_covering c t =
    if not (defined_at c t) then invalid_arg "Piecewise: out of domain"
    else begin
      let rec find = function
        | (_, p) :: ((b, _) :: _ as rest) -> if lt t b then (p, Some b) else find rest
        | [ (_, p) ] -> (p, c.stop)
        | [] -> assert false
      in
      find c.pieces
    end

  let eval c t = P.eval (fst (piece_covering c t)) t

  let breakpoints c =
    match c.pieces with
    | _ :: rest -> List.map fst rest
    | [] -> assert false

  let map f c = { c with pieces = List.map (fun (a, p) -> (a, f p)) c.pieces }

  let min_stop a b =
    match a, b with
    | None, s | s, None -> s
    | Some x, Some y -> Some (if le x y then x else y)

  let combine f c1 c2 =
    let s = if le (start c1) (start c2) then start c2 else start c1 in
    let stop = min_stop c1.stop c2.stop in
    (match stop with
     | Some e when not (lt s e) -> invalid_arg "Piecewise.combine: disjoint domains"
     | _ -> ());
    (* merged breakpoints within (s, stop) *)
    let bps =
      List.sort_uniq F.compare
        (List.filter
           (fun b -> lt s b && (match stop with None -> true | Some e -> lt b e))
           (breakpoints c1 @ breakpoints c2))
    in
    let starts = s :: bps in
    let pieces =
      List.map
        (fun a -> (a, f (fst (piece_covering c1 a)) (fst (piece_covering c2 a))))
        starts
    in
    { pieces; stop }

  let sub = combine P.sub

  let compose_affine c ~scale ~offset =
    let sc = F.compare scale F.zero in
    if sc < 0 then invalid_arg "Piecewise.compose_affine: negative scale"
    else if sc = 0 then begin
      if not (defined_at c offset) then
        invalid_arg "Piecewise.compose_affine: constant offset out of domain"
      else constant ~start:offset (eval c offset)
    end
    else begin
      (* theta(t) = scale*t + offset; theta is increasing, so pieces map to
         pieces with starts theta^{-1}(a) = (a - offset) / scale. *)
      let inv a = F.div (F.sub a offset) scale in
      let theta = P.of_list [ offset; scale ] in
      { pieces = List.map (fun (a, p) -> (inv a, P.compose p theta)) c.pieces;
        stop = Option.map inv c.stop }
    end

  let clip c ~from_ ~until =
    let s = match from_ with None -> start c | Some f -> if le (start c) f then f else start c in
    let stop = min_stop c.stop until in
    (match stop with
     | Some e when not (lt s e) -> invalid_arg "Piecewise.clip: empty domain"
     | _ -> ());
    if not (defined_at c s) then invalid_arg "Piecewise.clip: from_ before domain"
    else begin
      (* keep pieces whose interval intersects [s, stop); re-anchor the one
         covering s *)
      let rec go = function
        | (a, p) :: ((b, _) :: _ as rest) ->
          if le b s then go rest
          else ((if le a s then s else a), p) :: keep rest
        | [ (a, p) ] -> [ ((if le a s then s else a), p) ]
        | [] -> assert false
      and keep = function
        | (a, p) :: rest ->
          (match stop with
           | Some e when not (lt a e) -> []
           | _ -> (a, p) :: keep rest)
        | [] -> []
      in
      { pieces = go c.pieces; stop }
    end

  let extend_last_from c tau q ?stop () =
    if not (lt (start c) tau) then invalid_arg "Piecewise.extend_last_from: tau before start"
    else begin
      let rec take = function
        | (a, p) :: rest -> if lt a tau then (a, p) :: take rest else []
        | [] -> []
      in
      { pieces = take c.pieces @ [ (tau, q) ]; stop }
    end

  let is_continuous c =
    let rec go = function
      | (_, p) :: (((b, p') :: _) as rest) ->
        F.equal (P.eval p b) (P.eval p' b) && go rest
      | _ -> true
    in
    go c.pieces

  let equal c1 c2 =
    let stop_eq =
      match c1.stop, c2.stop with
      | None, None -> true
      | Some x, Some y -> F.compare x y = 0
      | _ -> false
    in
    stop_eq
    && List.length c1.pieces = List.length c2.pieces
    && List.for_all2
         (fun (a, p) (b, q) -> F.compare a b = 0 && P.equal p q)
         c1.pieces c2.pieces

  let pp fmt c =
    Format.fprintf fmt "@[<v>";
    List.iteri
      (fun i (a, p) ->
        if i > 0 then Format.fprintf fmt "@,";
        Format.fprintf fmt "[%a..) %a" F.pp a P.pp p)
      c.pieces;
    (match c.stop with
     | Some s -> Format.fprintf fmt "@,stop %a" F.pp s
     | None -> ());
    Format.fprintf fmt "@]"
end

module Qpiece = Make (Qpoly)
module Fpiece = Make (Fpoly)

let fpiece_of_qpiece c =
  let f = Moq_numeric.Rat.to_float in
  Fpiece.make
    ?stop:(Option.map f (Qpiece.stop c))
    (List.map (fun (a, p) -> (f a, Fpoly.of_qpoly p)) (Qpiece.pieces c))
