module Q = Moq_numeric.Rat
module P = Qpoly

type chain = { p : P.t; seq : P.t list }

let chain p =
  if P.is_zero p then { p; seq = [] }
  else begin
    let rec build acc a b =
      if P.is_zero b then List.rev acc
      else begin
        let r = P.neg (snd (P.divmod a b)) in
        (* make remainders monic to keep rational coefficients small; scaling
           by a positive constant preserves signs *)
        let r = if P.is_zero r then r else P.scale (Q.inv (Q.abs (P.leading r))) r in
        build (b :: acc) b r
      end
    in
    { p; seq = build [ p ] p (P.derivative p) }
  end

let poly c = c.p

let count_variations signs =
  let rec go last acc = function
    | [] -> acc
    | 0 :: rest -> go last acc rest
    | s :: rest -> if last <> 0 && s <> last then go s (acc + 1) rest else go s acc rest
  in
  go 0 0 signs

let variations_at c x = count_variations (List.map (fun p -> P.sign_at p x) c.seq)

let variations_at_neg_inf c = count_variations (List.map P.sign_at_neg_infinity c.seq)
let variations_at_pos_inf c = count_variations (List.map P.sign_at_pos_infinity c.seq)

let count_roots_between c lo hi =
  if Q.compare lo hi > 0 then invalid_arg "Sturm.count_roots_between: lo > hi"
  else variations_at c lo - variations_at c hi

let count_real_roots c =
  if P.is_zero c.p then 0 else variations_at_neg_inf c - variations_at_pos_inf c

type isolated =
  | Point of Q.t
  | Open_interval of Q.t * Q.t

let half = Q.of_ints 1 2

let refine p lo hi =
  let m = Q.mul half (Q.add lo hi) in
  let sm = P.sign_at p m in
  if sm = 0 then `Exact m
  else if sm * P.sign_at p lo < 0 then `Narrower (lo, m)
  else `Narrower (m, hi)

let isolate p0 =
  let p = P.squarefree p0 in
  if P.degree p <= 0 then []
  else begin
    let c = chain p in
    let bound = P.cauchy_bound p in
    (* [shrink_around m lo hi] : m is a rational root inside (lo, hi); find a
       delta such that (m-delta, m+delta) contains only the root m. *)
    let rec shrink_around m lo hi delta =
      let a = Q.max lo (Q.sub m delta) and b = Q.min hi (Q.add m delta) in
      if P.sign_at p a <> 0 && P.sign_at p b <> 0 && count_roots_between c a b = 1
      then (a, b)
      else shrink_around m lo hi (Q.mul half delta)
    in
    (* Invariant: p nonzero at lo and hi. *)
    let rec bisect lo hi acc =
      let n = count_roots_between c lo hi in
      if n = 0 then acc
      else if n = 1 then Open_interval (lo, hi) :: acc
      else begin
        let m = Q.mul half (Q.add lo hi) in
        if P.sign_at p m = 0 then begin
          let a, b = shrink_around m lo hi (Q.mul half (Q.sub hi lo)) in
          bisect lo a (Point m :: bisect b hi acc)
        end
        else bisect lo m (bisect m hi acc)
      end
    in
    (* If an isolated interval's root happens to be its midpoint after one
       refinement we still report the interval; Algnum detects exact-rational
       roots lazily.  Cauchy bound endpoints are never roots. *)
    bisect (Q.neg bound) bound []
  end
