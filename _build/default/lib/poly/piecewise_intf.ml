(** Module type of {!Piecewise.Make}'s result (see {!Piecewise} for the
    semantics). *)

module type S = sig
  module P : Poly_intf.S

  type t

  val make : ?stop:P.F.t -> (P.F.t * P.t) list -> t
  val constant : start:P.F.t -> P.F.t -> t
  val of_poly : start:P.F.t -> P.t -> t
  val pieces : t -> (P.F.t * P.t) list
  val start : t -> P.F.t
  val stop : t -> P.F.t option
  val defined_at : t -> P.F.t -> bool
  val eval : t -> P.F.t -> P.F.t
  val piece_covering : t -> P.F.t -> P.t * P.F.t option
  val breakpoints : t -> P.F.t list
  val map : (P.t -> P.t) -> t -> t
  val combine : (P.t -> P.t -> P.t) -> t -> t -> t
  val sub : t -> t -> t
  val compose_affine : t -> scale:P.F.t -> offset:P.F.t -> t
  val clip : t -> from_:P.F.t option -> until:P.F.t option -> t
  val extend_last_from : t -> P.F.t -> P.t -> ?stop:P.F.t -> unit -> t
  val is_continuous : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
