(** Dense univariate polynomials over an ordered field.

    Polynomials represent time terms and instantiated generalized-distance
    curves (paper, Sections 4–5).  The representation is a dense coefficient
    array, lowest degree first, with no trailing zero coefficient; the zero
    polynomial is the empty array.  See {!Poly_intf.S} for the operation
    docs. *)

module Make (F : Field.ORDERED_FIELD) : Poly_intf.S with module F = F
