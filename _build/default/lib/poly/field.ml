(** Signatures for the coefficient fields of {!Poly.Make}. *)

(** An ordered field.  Instantiated by exact rationals ({!Moq_numeric.Rat})
    and by IEEE floats (an "almost field": the float instance trades the field
    axioms for speed and is only used by the benchmark backend). *)
module type ORDERED_FIELD = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val to_float : t -> float
  val of_float : float -> t
  val pp : Format.formatter -> t -> unit
end

(** Floats as an [ORDERED_FIELD]. *)
module Float_field : ORDERED_FIELD with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -. x
  let compare = Float.compare
  let equal = Float.equal
  let is_zero x = x = 0.0
  let to_float x = x
  let of_float x = x
  let pp fmt x = Format.fprintf fmt "%g" x
end

(** Exact rationals as an [ORDERED_FIELD]. *)
module Rat_field : ORDERED_FIELD with type t = Moq_numeric.Rat.t = struct
  include Moq_numeric.Rat
end
