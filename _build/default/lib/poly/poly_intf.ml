(** Module type of {!Poly.Make}'s result, shared so downstream functors
    ({!Piecewise}, the sweep backends) can abstract over the coefficient
    field. *)

module type S = sig
  module F : Field.ORDERED_FIELD

  type t

  val zero : t
  val one : t
  val var : t
  val constant : F.t -> t
  val of_list : F.t list -> t
  val to_list : t -> F.t list
  val coeff : t -> int -> F.t
  val degree : t -> int
  val leading : t -> F.t
  val is_zero : t -> bool
  val equal : t -> t -> bool
  val eval : t -> F.t -> F.t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val scale : F.t -> t -> t
  val derivative : t -> t
  val compose : t -> t -> t
  val shift : t -> F.t -> t
  val divmod : t -> t -> t * t
  val gcd : t -> t -> t
  val monic : t -> t
  val squarefree : t -> t
  val sign_at : t -> F.t -> int
  val sign_jet : t -> F.t -> int
  val sign_at_neg_infinity : t -> int
  val sign_at_pos_infinity : t -> int
  val cauchy_bound : t -> F.t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
