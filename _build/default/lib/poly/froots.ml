module P = Fpoly

let bisection_steps = 200

(* Root of a sign change in [a, b] with p(a), p(b) of opposite signs. *)
let bisect p a b =
  let sa = compare (P.eval p a) 0.0 in
  let rec go a b k =
    if k = 0 then 0.5 *. (a +. b)
    else begin
      let m = 0.5 *. (a +. b) in
      if m <= a || m >= b then m
      else begin
        let sm = compare (P.eval p m) 0.0 in
        if sm = 0 then m
        else if sm = sa then go m b (k - 1)
        else go a m (k - 1)
      end
    end
  in
  go a b bisection_steps

let quadratic_roots c0 c1 c2 =
  let disc = (c1 *. c1) -. (4.0 *. c2 *. c0) in
  if disc < 0.0 then []
  else if disc = 0.0 then [ -. c1 /. (2.0 *. c2) ]
  else begin
    (* numerically stable form: avoid cancellation in -c1 ± sqrt(disc) *)
    let sq = sqrt disc in
    let q = if c1 >= 0.0 then -0.5 *. (c1 +. sq) else -0.5 *. (c1 -. sq) in
    if q = 0.0 then [ 0.0 ]
    else List.sort_uniq compare [ q /. c2; c0 /. q ]
  end

let rec real_roots p =
  match P.degree p with
  | d when d <= 0 -> []
  | 1 -> [ -. P.coeff p 0 /. P.coeff p 1 ]
  | 2 -> quadratic_roots (P.coeff p 0) (P.coeff p 1) (P.coeff p 2)
  | _ ->
    (* p is monotone between consecutive critical points: bisect each
       monotone segment bounded by the Cauchy bound. *)
    let bound = P.cauchy_bound p in
    let crits =
      List.filter (fun c -> c > -. bound && c < bound) (real_roots (P.derivative p))
    in
    let cuts = (-. bound) :: crits @ [ bound ] in
    let rec scan acc = function
      | a :: (b :: _ as rest) ->
        let va = P.eval p a and vb = P.eval p b in
        let acc = if va = 0.0 then a :: acc else acc in
        let acc = if va *. vb < 0.0 then bisect p a b :: acc else acc in
        scan acc rest
      | [ b ] -> if P.eval p b = 0.0 then b :: acc else acc
      | [] -> acc
    in
    List.sort_uniq compare (scan [] cuts)

(* Strict float comparison suffices: a root equal to the current instant is
   excluded by [>], and a re-found crossing one ulp later is processed as a
   harmless no-swap event (the jet already reflects the exchange).  Any
   positive guard risks swallowing genuinely distinct crossings that cluster
   within a few ulps. *)
let first_root_after p t = List.find_opt (fun r -> r > t) (real_roots p)

let first_root_at_or_after p t = List.find_opt (fun r -> r >= t) (real_roots p)
