(** Numeric real-root finding for float polynomials.

    The fast sweep backend's counterpart to exact Sturm isolation: closed
    forms for degree ≤ 2 (the paper's Euclidean and fastest-arrival
    g-distances are piecewise quadratics), recursive critical-point
    subdivision plus bisection for higher degree. *)

val real_roots : Fpoly.t -> float list
(** Distinct real roots in ascending order (within float tolerance). *)

val first_root_after : Fpoly.t -> float -> float option
(** Least root strictly greater than the given time (with a small relative
    guard so a root equal to the current instant is not returned again). *)

val first_root_at_or_after : Fpoly.t -> float -> float option
