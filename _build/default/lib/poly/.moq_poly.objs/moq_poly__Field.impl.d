lib/poly/field.ml: Float Format Moq_numeric
