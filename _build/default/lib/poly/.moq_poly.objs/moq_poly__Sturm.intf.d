lib/poly/sturm.mli: Moq_numeric Qpoly
