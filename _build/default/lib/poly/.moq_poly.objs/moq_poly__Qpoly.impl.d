lib/poly/qpoly.ml: Field Poly
