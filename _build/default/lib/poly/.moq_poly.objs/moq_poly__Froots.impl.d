lib/poly/froots.ml: Fpoly List
