lib/poly/piecewise_intf.ml: Format Poly_intf
