lib/poly/piecewise.mli: Fpoly Moq_numeric Piecewise_intf Poly_intf Qpoly
