lib/poly/poly_intf.ml: Field Format
