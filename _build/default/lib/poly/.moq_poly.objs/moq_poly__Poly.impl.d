lib/poly/poly.ml: Array Field Format
