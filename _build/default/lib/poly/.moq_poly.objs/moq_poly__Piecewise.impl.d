lib/poly/piecewise.ml: Format Fpoly List Moq_numeric Option Poly_intf Qpoly
