lib/poly/froots.mli: Fpoly
