lib/poly/algnum.mli: Format Moq_numeric Qpoly
