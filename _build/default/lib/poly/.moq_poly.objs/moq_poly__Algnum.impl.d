lib/poly/algnum.ml: Format List Moq_numeric Qpoly Sturm
