lib/poly/fpoly.ml: Field List Moq_numeric Poly Qpoly
