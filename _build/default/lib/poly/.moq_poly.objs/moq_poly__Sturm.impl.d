lib/poly/sturm.ml: List Moq_numeric Qpoly
