lib/poly/poly.mli: Field Poly_intf
