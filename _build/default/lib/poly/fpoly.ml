(** Polynomials with float coefficients — the fast benchmark backend. *)

include Poly.Make (Field.Float_field)

let of_qpoly (p : Qpoly.t) : t =
  of_list (List.map Moq_numeric.Rat.to_float (Qpoly.to_list p))
