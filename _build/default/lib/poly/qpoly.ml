(** Polynomials with exact rational coefficients — the coefficient domain of
    every exact computation in the sweep engine. *)

include Poly.Make (Field.Rat_field)
