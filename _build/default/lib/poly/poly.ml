module Make (F : Field.ORDERED_FIELD) = struct
  module F = F

  (* Coefficients lowest-degree first; canonical: no trailing zeros. *)
  type t = F.t array

  let zero = [||]

  let normalize (a : F.t array) : t =
    let n = Array.length a in
    let rec top i = if i >= 0 && F.is_zero a.(i) then top (i - 1) else i in
    let hi = top (n - 1) in
    if hi < 0 then [||] else if hi = n - 1 then a else Array.sub a 0 (hi + 1)

  let constant c = normalize [| c |]
  let one = constant F.one
  let var = normalize [| F.zero; F.one |]

  let of_list l = normalize (Array.of_list l)
  let to_list p = Array.to_list p

  let degree p = Array.length p - 1
  let is_zero p = Array.length p = 0
  let coeff p i = if i >= 0 && i < Array.length p then p.(i) else F.zero

  let leading p =
    if is_zero p then invalid_arg "Poly.leading: zero polynomial"
    else p.(Array.length p - 1)

  let equal p q =
    Array.length p = Array.length q && Array.for_all2 F.equal p q

  let eval p x =
    (* Horner *)
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc x) p.(i)
    done;
    !acc

  let add p q =
    let n = max (Array.length p) (Array.length q) in
    normalize (Array.init n (fun i -> F.add (coeff p i) (coeff q i)))

  let neg p = Array.map F.neg p

  let sub p q =
    let n = max (Array.length p) (Array.length q) in
    normalize (Array.init n (fun i -> F.sub (coeff p i) (coeff q i)))

  let mul p q =
    if is_zero p || is_zero q then zero
    else begin
      let r = Array.make (Array.length p + Array.length q - 1) F.zero in
      Array.iteri
        (fun i pi ->
          if not (F.is_zero pi) then
            Array.iteri (fun j qj -> r.(i + j) <- F.add r.(i + j) (F.mul pi qj)) q)
        p;
      normalize r
    end

  let scale c p = normalize (Array.map (F.mul c) p)

  let derivative p =
    if Array.length p <= 1 then zero
    else normalize (Array.init (Array.length p - 1) (fun i -> F.mul (F.of_int (i + 1)) p.(i + 1)))

  let compose p q =
    (* Horner over polynomials *)
    let acc = ref zero in
    for i = Array.length p - 1 downto 0 do
      acc := add (mul !acc q) (constant p.(i))
    done;
    !acc

  let shift p c = compose p (of_list [ c; F.one ])

  let divmod a b =
    if is_zero b then raise Division_by_zero
    else begin
      let db = degree b and lb = leading b in
      let r = ref a and q = ref zero in
      while not (is_zero !r) && degree !r >= db do
        let dr = degree !r in
        let c = F.div (leading !r) lb in
        let shift_deg = dr - db in
        let term = normalize (Array.init (shift_deg + 1) (fun i -> if i = shift_deg then c else F.zero)) in
        q := add !q term;
        r := sub !r (mul term b)
      done;
      (!q, !r)
    end

  let monic p = if is_zero p then p else scale (F.div F.one (leading p)) p

  let rec gcd_aux a b =
    if is_zero b then monic a
    else gcd_aux b (monic (snd (divmod a b)))
  (* [monic] after each remainder keeps exact-rational coefficients small. *)

  let gcd a b = if is_zero a then monic b else gcd_aux a b

  let squarefree p =
    if degree p <= 1 then monic p
    else begin
      let g = gcd p (derivative p) in
      if degree g <= 0 then monic p else monic (fst (divmod p g))
    end

  let sign_at p x = F.compare (eval p x) F.zero

  let sign_jet p x =
    let rec go p =
      if is_zero p then 0
      else begin
        let s = sign_at p x in
        if s <> 0 then s else go (derivative p)
      end
    in
    go p

  let sign_at_pos_infinity p =
    if is_zero p then 0 else F.compare (leading p) F.zero

  let sign_at_neg_infinity p =
    if is_zero p then 0
    else begin
      let s = F.compare (leading p) F.zero in
      if degree p mod 2 = 0 then s else - s
    end

  let cauchy_bound p =
    if degree p <= 0 then F.one
    else begin
      let lb = leading p in
      let m = ref F.zero in
      for i = 0 to Array.length p - 2 do
        let r = F.div p.(i) lb in
        let a = if F.compare r F.zero < 0 then F.neg r else r in
        if F.compare a !m > 0 then m := a
      done;
      F.add F.one !m
    end

  let pp fmt p =
    if is_zero p then Format.pp_print_string fmt "0"
    else begin
      let first = ref true in
      for i = Array.length p - 1 downto 0 do
        if not (F.is_zero p.(i)) then begin
          if not !first then Format.pp_print_string fmt " + ";
          first := false;
          if i = 0 then F.pp fmt p.(i)
          else begin
            if not (F.equal p.(i) F.one) then Format.fprintf fmt "%a*" F.pp p.(i);
            if i = 1 then Format.pp_print_string fmt "t"
            else Format.fprintf fmt "t^%d" i
          end
        end
      done
    end

  let to_string p = Format.asprintf "%a" pp p
end
