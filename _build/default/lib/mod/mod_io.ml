module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec

let buf_vec b v = List.iter (fun c -> Buffer.add_char b ' '; Buffer.add_string b (Q.to_string c)) (Qvec.to_list v)

let db_to_string db =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "moddb 1 %d %s\n" (Mobdb.dim db) (Q.to_string (Mobdb.last_update db)));
  List.iter
    (fun (o, tr) ->
      (match Trajectory.death tr with
       | Some d -> Buffer.add_string b (Printf.sprintf "object %d death %s\n" o (Q.to_string d))
       | None -> Buffer.add_string b (Printf.sprintf "object %d\n" o));
      List.iter
        (fun (p : Trajectory.piece) ->
          Buffer.add_string b "piece ";
          Buffer.add_string b (Q.to_string p.Trajectory.start);
          buf_vec b p.Trajectory.a;
          buf_vec b p.Trajectory.b;
          Buffer.add_char b '\n')
        (Trajectory.pieces tr))
    (Mobdb.objects db);
  Buffer.contents b

let updates_to_string ~dim us =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "updates 1 %d\n" dim);
  List.iter
    (fun u ->
      (match u with
       | Update.New { oid; tau; a; b = pos } ->
         Buffer.add_string b (Printf.sprintf "new %d %s" oid (Q.to_string tau));
         buf_vec b a;
         buf_vec b pos
       | Update.Chdir { oid; tau; a } ->
         Buffer.add_string b (Printf.sprintf "chdir %d %s" oid (Q.to_string tau));
         buf_vec b a
       | Update.Terminate { oid; tau } ->
         Buffer.add_string b (Printf.sprintf "terminate %d %s" oid (Q.to_string tau)));
      Buffer.add_char b '\n')
    us;
  Buffer.contents b

(* ---------------------------------------------------------------- *)

exception Parse of int * string

let fail line msg = raise (Parse (line, msg))

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let rat line s = try Q.of_string s with _ -> fail line ("bad rational " ^ s)

let int_ line s = try int_of_string s with _ -> fail line ("bad integer " ^ s)

let vec line ws = Qvec.of_list (List.map (rat line) ws)

let split_n line n l =
  let rec go k acc rest =
    if k = 0 then (List.rev acc, rest)
    else begin
      match rest with
      | x :: rest -> go (k - 1) (x :: acc) rest
      | [] -> fail line "too few fields"
    end
  in
  go n [] l

let lines_of s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && not (String.length l > 0 && l.[0] = '#'))

let db_of_string s =
  try
    match lines_of s with
    | [] -> Error "empty input"
    | (hline, header) :: rest ->
      (match words header with
       | [ "moddb"; "1"; d; tau ] ->
         let dim = int_ hline d in
         let tau = rat hline tau in
         (* group: object line followed by its piece lines *)
         let rec objects acc = function
           | (l, line) :: rest when String.length line >= 6 && String.sub line 0 6 = "object" ->
             let oid, death =
               match words line with
               | [ "object"; o ] -> (int_ l o, None)
               | [ "object"; o; "death"; d ] -> (int_ l o, Some (rat l d))
               | _ -> fail l "malformed object line"
             in
             let rec pieces acc rest =
               match rest with
               | (l', line') :: rest' when String.length line' >= 5 && String.sub line' 0 5 = "piece" ->
                 (match words line' with
                  | "piece" :: fields ->
                    (match fields with
                     | start :: coords when List.length coords = 2 * dim ->
                       let a_ws, b_ws = split_n l' dim coords in
                       pieces
                         ({ Trajectory.start = rat l' start; a = vec l' a_ws; b = vec l' b_ws }
                          :: acc)
                         rest'
                     | _ -> fail l' "piece arity mismatch")
                  | _ -> fail l' "malformed piece line")
               | rest' -> (List.rev acc, rest')
             in
             let ps, rest = pieces [] rest in
             if ps = [] then fail l "object with no pieces"
             else begin
               let tr =
                 try Trajectory.of_pieces ?death ps
                 with Invalid_argument m -> fail l m
               in
               objects ((oid, tr) :: acc) rest
             end
           | (l, _) :: _ -> fail l "expected an object line"
           | [] -> List.rev acc
         in
         let objs = objects [] rest in
         let db =
           List.fold_left
             (fun db (o, tr) ->
               try Mobdb.add_initial db o tr with Invalid_argument m -> fail hline m)
             (Mobdb.empty ~dim ~tau) objs
         in
         Ok db
       | _ -> Error "expected 'moddb 1 <dim> <tau>' header")
  with Parse (l, m) -> Error (Printf.sprintf "line %d: %s" l m)

let updates_of_string s =
  try
    match lines_of s with
    | [] -> Error "empty input"
    | (hline, header) :: rest ->
      (match words header with
       | [ "updates"; "1"; d ] ->
         let dim = int_ hline d in
         let parse (l, line) =
           match words line with
           | "new" :: o :: tau :: coords when List.length coords = 2 * dim ->
             let a_ws, b_ws = split_n l dim coords in
             Update.New { oid = int_ l o; tau = rat l tau; a = vec l a_ws; b = vec l b_ws }
           | "chdir" :: o :: tau :: coords when List.length coords = dim ->
             Update.Chdir { oid = int_ l o; tau = rat l tau; a = vec l coords }
           | [ "terminate"; o; tau ] -> Update.Terminate { oid = int_ l o; tau = rat l tau }
           | _ -> fail l "malformed update line"
         in
         Ok (List.map parse rest)
       | _ -> Error "expected 'updates 1 <dim>' header")
  with Parse (l, m) -> Error (Printf.sprintf "line %d: %s" l m)

let write_file path contents =
  let oc = open_out path in
  try
    output_string oc contents;
    close_out oc
  with e ->
    close_out_noerr oc;
    raise e

let read_file path =
  let ic = open_in path in
  try
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with e ->
    close_in_noerr ic;
    raise e

let save_db db path = write_file path (db_to_string db)
let load_db path = db_of_string (read_file path)
let save_updates ~dim us path = write_file path (updates_to_string ~dim us)
let load_updates path = updates_of_string (read_file path)
