(** Object identifiers (the paper's infinite set [O] of OIDs). *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
