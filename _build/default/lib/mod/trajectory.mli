(** Trajectories: continuous piecewise-linear functions from time to R{^n}
    (paper, Definition 1).

    Each linear piece has the paper's form [x = A·t + B] valid from its start
    time; the last piece extends to the object's termination time (or
    forever).  Coordinates are exact rationals — the ground-truth data both
    sweep backends read. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec

type t

type piece = { start : Q.t; a : Qvec.t; b : Qvec.t }
(** On [[start, next_start)]: position [a·t + b]. *)

val linear : start:Q.t -> a:Qvec.t -> b:Qvec.t -> t
(** The trajectory created by [new(o, start, A, B)]: [x = A t + B ∧ start ≤ t]. *)

val stationary : start:Q.t -> Qvec.t -> t
(** A fixed point from [start] on (the paper's "stationary points whose
    motions are constant vectors"). *)

val of_pieces : ?death:Q.t -> piece list -> t
(** @raise Invalid_argument if empty, unsorted, or discontinuous. *)

val terminate : t -> Q.t -> t
(** [terminate tr tau]: the object ceases to exist after [tau]
    ([T(o) ∧ t ≤ τ]).  @raise Invalid_argument if [tau] is outside the
    current lifetime. *)

val chdir : t -> Q.t -> Qvec.t -> t
(** [chdir tr tau a]: keep the trajectory up to [tau], then move with
    velocity [a] from the position at [tau] (paper's chdir semantics).
    @raise Invalid_argument if the trajectory is not defined at [tau]. *)

val birth : t -> Q.t
val death : t -> Q.t option
val defined_at : t -> Q.t -> bool
val dim : t -> int

val position : t -> Q.t -> Qvec.t option
(** Position at a time instant; [None] outside the lifetime. *)

val position_exn : t -> Q.t -> Qvec.t

val velocity_after : t -> Q.t -> Qvec.t option
(** Right derivative at a time instant — the paper's [vel] function. *)

val turns : t -> Q.t list
(** Time instants where the derivative is discontinuous (Definition:
    "turn").  Excludes birth. *)

val pieces : t -> piece list

val coord : t -> int -> Moq_poly.Piecewise.Qpiece.t
(** Coordinate [i] as a piecewise (degree ≤ 1) polynomial of time, domain
    the object's lifetime. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
