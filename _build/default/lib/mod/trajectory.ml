module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module Qpiece = Moq_poly.Piecewise.Qpiece
module QP = Moq_poly.Qpoly

type piece = { start : Q.t; a : Qvec.t; b : Qvec.t }

(* Invariants: [pieces] nonempty, strictly increasing starts, all the same
   dimension, continuous at each junction, [death] (if any) strictly after
   the last start. *)
type t = { pieces : piece list; death : Q.t option }

let position_of_piece p t = Qvec.add (Qvec.scale t p.a) p.b

let lt a b = Q.compare a b < 0
let le a b = Q.compare a b <= 0

let validate pieces death =
  (match pieces with [] -> invalid_arg "Trajectory: no pieces" | _ -> ());
  let dim0 = Qvec.dim (List.hd pieces).a in
  List.iter
    (fun p ->
      if Qvec.dim p.a <> dim0 || Qvec.dim p.b <> dim0 then
        invalid_arg "Trajectory: dimension mismatch")
    pieces;
  let rec check = function
    | p :: (p' :: _ as rest) ->
      if not (lt p.start p'.start) then invalid_arg "Trajectory: unsorted pieces";
      if not (Qvec.equal (position_of_piece p p'.start) (position_of_piece p' p'.start)) then
        invalid_arg "Trajectory: discontinuous";
      check rest
    | [ p ] ->
      (match death with
       | Some d when not (lt p.start d) -> invalid_arg "Trajectory: death before last piece"
       | _ -> ())
    | [] -> ()
  in
  check pieces

let of_pieces ?death pieces =
  validate pieces death;
  { pieces; death }

let linear ~start ~a ~b = { pieces = [ { start; a; b } ]; death = None }

let stationary ~start p =
  linear ~start ~a:(Qvec.zero (Qvec.dim p)) ~b:p

let birth tr = (List.hd tr.pieces).start
let death tr = tr.death
let dim tr = Qvec.dim (List.hd tr.pieces).a

let defined_at tr t =
  le (birth tr) t && (match tr.death with None -> true | Some d -> le t d)

(* The piece in force at time [t] (last piece with start <= t). *)
let piece_at tr t =
  let rec find = function
    | p :: (p' :: _ as rest) -> if lt t p'.start then p else find rest
    | [ p ] -> p
    | [] -> assert false
  in
  find tr.pieces

let position tr t =
  if defined_at tr t then Some (position_of_piece (piece_at tr t) t) else None

let position_exn tr t =
  match position tr t with
  | Some p -> p
  | None -> invalid_arg "Trajectory.position_exn: outside lifetime"

let velocity_after tr t =
  if not (defined_at tr t) then None
  else begin
    match tr.death with
    | Some d when Q.equal t d -> Some (Qvec.zero (dim tr)) (* no motion after death *)
    | _ -> Some (piece_at tr t).a
  end

let turns tr =
  (* starts of non-first pieces where the velocity actually changes *)
  let rec go = function
    | p :: (p' :: _ as rest) ->
      if Qvec.equal p.a p'.a then go rest else p'.start :: go rest
    | _ -> []
  in
  go tr.pieces

let pieces tr = tr.pieces

let terminate tr tau =
  if not (defined_at tr tau) then invalid_arg "Trajectory.terminate: outside lifetime"
  else if not (lt (birth tr) tau) then invalid_arg "Trajectory.terminate: at or before birth"
  else begin
    let rec keep = function
      | p :: rest -> if lt p.start tau then p :: keep rest else []
      | [] -> []
    in
    { pieces = keep tr.pieces; death = Some tau }
  end

let chdir tr tau a =
  if not (defined_at tr tau) then invalid_arg "Trajectory.chdir: not defined at tau"
  else begin
    let pos = position_exn tr tau in
    (* x = a·(t - tau) + pos  =  a·t + (pos - a·tau) *)
    let b = Qvec.sub pos (Qvec.scale tau a) in
    let rec keep = function
      | p :: rest -> if lt p.start tau then p :: keep rest else []
      | [] -> []
    in
    { pieces = keep tr.pieces @ [ { start = tau; a; b } ]; death = None }
  end

let coord tr i =
  let poly_of p = QP.of_list [ Qvec.get p.b i; Qvec.get p.a i ] in
  Qpiece.make ?stop:tr.death (List.map (fun p -> (p.start, poly_of p)) tr.pieces)

let equal t1 t2 =
  let death_eq =
    match t1.death, t2.death with
    | None, None -> true
    | Some a, Some b -> Q.equal a b
    | _ -> false
  in
  death_eq
  && List.length t1.pieces = List.length t2.pieces
  && List.for_all2
       (fun p q -> Q.equal p.start q.start && Qvec.equal p.a q.a && Qvec.equal p.b q.b)
       t1.pieces t2.pieces

let pp fmt tr =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun p ->
      Format.fprintf fmt "x = %a*t + %a, t >= %a@," Qvec.pp p.a Qvec.pp p.b Q.pp p.start)
    tr.pieces;
  (match tr.death with
   | Some d -> Format.fprintf fmt "until %a" Q.pp d
   | None -> ());
  Format.fprintf fmt "@]"
