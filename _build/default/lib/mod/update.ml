module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec

type t =
  | New of { oid : Oid.t; tau : Q.t; a : Qvec.t; b : Qvec.t }
  | Terminate of { oid : Oid.t; tau : Q.t }
  | Chdir of { oid : Oid.t; tau : Q.t; a : Qvec.t }

let time = function
  | New { tau; _ } | Terminate { tau; _ } | Chdir { tau; _ } -> tau

let oid = function
  | New { oid; _ } | Terminate { oid; _ } | Chdir { oid; _ } -> oid

let pp fmt = function
  | New { oid; tau; a; b } ->
    Format.fprintf fmt "new(%a, %a, %a, %a)" Oid.pp oid Q.pp tau Qvec.pp a Qvec.pp b
  | Terminate { oid; tau } -> Format.fprintf fmt "terminate(%a, %a)" Oid.pp oid Q.pp tau
  | Chdir { oid; tau; a } ->
    Format.fprintf fmt "chdir(%a, %a, %a)" Oid.pp oid Q.pp tau Qvec.pp a
