(** The moving object database (paper, Definition 2): a finite set of
    objects with trajectories plus the time of the last update, with updates
    applied chronologically.

    The structure is persistent (an applicative map): the lazy-evaluation
    baseline and the monitor both hold snapshots without copying. *)

module Q = Moq_numeric.Rat

type t

type error =
  | Stale_update of { tau : Q.t; last : Q.t }
      (** Update not strictly after the last update time (paper: [τ0 < τ]). *)
  | Duplicate_oid of Oid.t
  | Unknown_oid of Oid.t
  | Not_defined_at of Oid.t * Q.t
  | Dimension_mismatch

val pp_error : Format.formatter -> error -> unit

val empty : dim:int -> tau:Q.t -> t
(** An empty MOD with last-update time [tau]. *)

val apply : t -> Update.t -> (t, error) result
val apply_exn : t -> Update.t -> t
(** @raise Invalid_argument on a rejected update. *)

val apply_all_exn : t -> Update.t list -> t

val dim : t -> int
val last_update : t -> Q.t

val cardinal : t -> int
(** Number of objects in O.  Per Definition 3, [terminate] does not remove
    the object from O — it clips the trajectory — so terminated objects
    still count (and remain queryable in past queries). *)

val mem : t -> Oid.t -> bool
val find : t -> Oid.t -> Trajectory.t option

val live : t -> Q.t -> (Oid.t * Trajectory.t) list
(** Objects whose lifetime contains the given instant. *)

val objects : t -> (Oid.t * Trajectory.t) list
(** All objects, sorted by OID. *)

val oids : t -> Oid.t list

val add_initial : t -> Oid.t -> Trajectory.t -> t
(** Bulk-load an object without advancing the update clock (for building
    test fixtures and workloads "at time [τ0]").
    @raise Invalid_argument on duplicate OID or dimension mismatch. *)

val pp : Format.formatter -> t -> unit
