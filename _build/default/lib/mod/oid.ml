type t = int

let compare = Int.compare
let equal = Int.equal
let pp fmt o = Format.fprintf fmt "o%d" o

module Map = Map.Make (Int)
module Set = Set.Make (Int)
