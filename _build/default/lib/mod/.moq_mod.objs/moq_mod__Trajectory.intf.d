lib/mod/trajectory.mli: Format Moq_geom Moq_numeric Moq_poly
