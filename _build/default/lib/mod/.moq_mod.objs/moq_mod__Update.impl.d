lib/mod/update.ml: Format Moq_geom Moq_numeric Oid
