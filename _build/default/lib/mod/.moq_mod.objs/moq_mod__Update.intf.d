lib/mod/update.mli: Format Moq_geom Moq_numeric Oid
