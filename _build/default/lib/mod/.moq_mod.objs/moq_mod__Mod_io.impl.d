lib/mod/mod_io.ml: Buffer List Mobdb Moq_geom Moq_numeric Printf String Trajectory Update
