lib/mod/mobdb.mli: Format Moq_numeric Oid Trajectory Update
