lib/mod/mobdb.ml: Format List Moq_geom Moq_numeric Oid Trajectory Update
