lib/mod/oid.mli: Format Map Set
