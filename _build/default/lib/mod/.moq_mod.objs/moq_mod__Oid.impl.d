lib/mod/oid.ml: Format Int Map Set
