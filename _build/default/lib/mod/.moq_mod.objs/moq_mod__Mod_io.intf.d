lib/mod/mod_io.mli: Mobdb Update
