lib/mod/trajectory.ml: Format List Moq_geom Moq_numeric Moq_poly
