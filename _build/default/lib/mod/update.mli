(** Updates on a moving object database (paper, Definition 3). *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec

type t =
  | New of { oid : Oid.t; tau : Q.t; a : Qvec.t; b : Qvec.t }
      (** Create object [oid] at time [tau] with trajectory [x = a·t + b ∧ tau ≤ t]. *)
  | Terminate of { oid : Oid.t; tau : Q.t }
  | Chdir of { oid : Oid.t; tau : Q.t; a : Qvec.t }
      (** Change velocity to [a] at time [tau], keeping the position continuous. *)

val time : t -> Q.t
val oid : t -> Oid.t
val pp : Format.formatter -> t -> unit
