(** Plain-text serialization of MODs and update streams.

    A line-oriented format with exact rational coordinates, so databases and
    workloads round-trip losslessly:

    {v
    moddb 1 <dim> <last-update>
    object <oid> [death <q>]
    piece <start> <a_1> .. <a_dim> <b_1> .. <b_dim>
    ...
    v}

    and for update streams:

    {v
    updates 1 <dim>
    new <oid> <tau> <a_1> .. <a_dim> <b_1> .. <b_dim>
    chdir <oid> <tau> <a_1> .. <a_dim>
    terminate <oid> <tau>
    v} *)

val db_to_string : Mobdb.t -> string

val db_of_string : string -> (Mobdb.t, string) result
(** Parse; the error carries a line number and reason. *)

val updates_to_string : dim:int -> Update.t list -> string
val updates_of_string : string -> (Update.t list, string) result

val save_db : Mobdb.t -> string -> unit
(** [save_db db path]. *)

val load_db : string -> (Mobdb.t, string) result
val save_updates : dim:int -> Update.t list -> string -> unit
val load_updates : string -> (Update.t list, string) result
