module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec

(* Per the paper's Definition 3, [terminate] does NOT remove the object from
   O: it clips the trajectory to [t ≤ τ].  Later updates on a terminated
   object are rejected because its trajectory is no longer defined at the
   update time. *)
type t = {
  dim : int;
  objects : Trajectory.t Oid.Map.t;
  last_update : Q.t;
}

type error =
  | Stale_update of { tau : Q.t; last : Q.t }
  | Duplicate_oid of Oid.t
  | Unknown_oid of Oid.t
  | Not_defined_at of Oid.t * Q.t
  | Dimension_mismatch

let pp_error fmt = function
  | Stale_update { tau; last } ->
    Format.fprintf fmt "update at %a not after last update %a" Q.pp tau Q.pp last
  | Duplicate_oid o -> Format.fprintf fmt "object %a already exists" Oid.pp o
  | Unknown_oid o -> Format.fprintf fmt "object %a does not exist" Oid.pp o
  | Not_defined_at (o, tau) ->
    Format.fprintf fmt "object %a has no trajectory at %a" Oid.pp o Q.pp tau
  | Dimension_mismatch -> Format.pp_print_string fmt "vector dimension mismatch"

let empty ~dim ~tau = { dim; objects = Oid.Map.empty; last_update = tau }

let dim db = db.dim
let last_update db = db.last_update
let cardinal db = Oid.Map.cardinal db.objects
let mem db o = Oid.Map.mem o db.objects
let find db o = Oid.Map.find_opt o db.objects

let objects db = Oid.Map.bindings db.objects
let oids db = List.map fst (objects db)

let live db t =
  List.filter (fun (_, tr) -> Trajectory.defined_at tr t) (objects db)

let apply db u =
  let tau = Update.time u in
  if Q.compare tau db.last_update <= 0 then
    Error (Stale_update { tau; last = db.last_update })
  else begin
    match u with
    | Update.New { oid; tau; a; b } ->
      if Oid.Map.mem oid db.objects then Error (Duplicate_oid oid)
      else if Qvec.dim a <> db.dim || Qvec.dim b <> db.dim then Error Dimension_mismatch
      else
        Ok
          { db with
            objects = Oid.Map.add oid (Trajectory.linear ~start:tau ~a ~b) db.objects;
            last_update = tau }
    | Update.Terminate { oid; tau } ->
      (match Oid.Map.find_opt oid db.objects with
       | None -> Error (Unknown_oid oid)
       | Some tr ->
         if not (Trajectory.defined_at tr tau) then Error (Not_defined_at (oid, tau))
         else
           Ok
             { db with
               objects = Oid.Map.add oid (Trajectory.terminate tr tau) db.objects;
               last_update = tau })
    | Update.Chdir { oid; tau; a } ->
      (match Oid.Map.find_opt oid db.objects with
       | None -> Error (Unknown_oid oid)
       | Some tr ->
         if Qvec.dim a <> db.dim then Error Dimension_mismatch
         else if not (Trajectory.defined_at tr tau) then Error (Not_defined_at (oid, tau))
         else
           Ok
             { db with
               objects = Oid.Map.add oid (Trajectory.chdir tr tau a) db.objects;
               last_update = tau })
  end

let apply_exn db u =
  match apply db u with
  | Ok db -> db
  | Error e -> invalid_arg (Format.asprintf "Mobdb.apply: %a" pp_error e)

let apply_all_exn db us = List.fold_left apply_exn db us

let add_initial db o tr =
  if Oid.Map.mem o db.objects then invalid_arg "Mobdb.add_initial: duplicate oid"
  else if Trajectory.dim tr <> db.dim then invalid_arg "Mobdb.add_initial: dimension mismatch"
  else { db with objects = Oid.Map.add o tr db.objects }

let pp fmt db =
  Format.fprintf fmt "@[<v>MOD (dim %d, last update %a, %d objects)@," db.dim Q.pp
    db.last_update (cardinal db);
  Oid.Map.iter (fun o tr -> Format.fprintf fmt "%a: %a@," Oid.pp o Trajectory.pp tr) db.objects;
  Format.fprintf fmt "@]"
