module Q = Moq_numeric.Rat
module QP = Moq_poly.Qpoly
module Qpiece = Moq_poly.Piecewise.Qpiece
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory

let q = Q.of_int
let qpoly l = QP.of_list (List.map Q.of_string l)
let vec l = Qvec.of_list (List.map Q.of_int l)
let vecs l = Qvec.of_list (List.map Q.of_string l)

let example1_airplane () =
  T.of_pieces
    [ { start = q 0; a = vec [ 2; -1; 0 ]; b = vec [ -40; 23; 30 ] };
      { start = q 21; a = vec [ 0; -1; -5 ]; b = vec [ 2; 23; 135 ] };
      { start = q 22; a = vecs [ "1/2"; "0"; "-1" ]; b = vec [ -9; 1; 47 ] };
    ]

let example2_landing () = T.chdir (example1_airplane ()) (q 47) (vec [ 0; 0; 0 ])

let figure2_curves () =
  (* o1 = 10 - t/2; o2 = 2 + t/2: cross at D = 8 *)
  ( Qpiece.of_poly ~start:(q 0) (qpoly [ "10"; "-1/2" ]),
    Qpiece.of_poly ~start:(q 0) (qpoly [ "2"; "1/2" ]) )

let figure2_o1_after_a c1 =
  (* from (3, 8.5) with slope +1/2: 7 + t/2 *)
  Qpiece.extend_last_from c1 (q 3) (qpoly [ "7"; "1/2" ]) ()

let figure2_o2_after_b c2 =
  (* from (5, 4.5) with slope 3: 3t - 21/2, crossing o1' at C = 7 *)
  Qpiece.extend_last_from c2 (q 5) (qpoly [ "-21/2"; "3" ]) ()

(* Curves engineered to the paper's Example 12 event times:
     o3(t) = 10
     o4(t) = 10 - (t-8)(t-17)/34        crosses o3 at 8 and 17
     o2(t) = 14 - 4t/31                 crosses o3 at 31
     o1(t) = 20 - 113t/155 until 12, then slope -97/930
                                        crosses o2 at 10, and o3 at 24 *)
let example12_curves () =
  let o3 = Qpiece.constant ~start:(q 0) (q 10) in
  let o4 = Qpiece.of_poly ~start:(q 0) (qpoly [ "204/34"; "25/34"; "-1/34" ]) in
  let o2 = Qpiece.of_poly ~start:(q 0) (qpoly [ "14"; "-4/31" ]) in
  let o1 =
    Qpiece.make
      [ (q 0, qpoly [ "20"; "-113/155" ]);
        (q 12, QP.add (qpoly [ "1744/155" ]) (QP.mul (qpoly [ "-97/930" ]) (qpoly [ "-12"; "1" ])));
      ]
  in
  (o1, o2, o3, o4)

let example12_o1_after_chdir o1 =
  (* from (20, 4844/465) with slope -97/465: crosses o3 = 10 at t = 22 *)
  Qpiece.extend_last_from o1 (q 20)
    (QP.add (qpoly [ "4844/465" ]) (QP.mul (qpoly [ "-97/465" ]) (qpoly [ "-20"; "1" ])))
    ()
