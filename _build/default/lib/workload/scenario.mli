(** The paper's named scenarios, as reusable fixtures (figures F1–F3 of
    DESIGN.md). *)

module Q = Moq_numeric.Rat
module Qpiece = Moq_poly.Piecewise.Qpiece
module T = Moq_mod.Trajectory

val example1_airplane : unit -> T.t
(** Example 1: the 3-piece 3-d airplane trajectory. *)

val example2_landing : unit -> T.t
(** Example 2: the same airplane after [chdir(o, 47, (0,0,0))]. *)

val figure2_curves : unit -> Qpiece.t * Qpiece.t
(** Figure 2: g-distance curves of [o1] (higher, falling) and [o2] (lower,
    rising), expected to cross at D = 8. *)

val figure2_o1_after_a : Qpiece.t -> Qpiece.t
(** The [chdir] on [o1] at A = 3 that cancels the crossing at D. *)

val figure2_o2_after_b : Qpiece.t -> Qpiece.t
(** The [chdir] on [o2] at B = 5 that re-creates the crossing at C = 7 < D. *)

val example12_curves : unit -> Qpiece.t * Qpiece.t * Qpiece.t * Qpiece.t
(** Figure 3 / Example 12: the curves of [o1..o4], engineered so the sweep
    reproduces the paper's trace exactly: initial order [o4 < o3 < o2 < o1];
    crossings at 8 ([o3,o4]), 10 ([o1,o2]), 17 ([o3,o4] again); without the
    update, [o1,o3] cross at 24 and [o2,o3] at 31. *)

val example12_o1_after_chdir : Qpiece.t -> Qpiece.t
(** The update at time 20 on [o1] (the dashed curve): the crossing expected
    at 24 moves earlier, to 22. *)
