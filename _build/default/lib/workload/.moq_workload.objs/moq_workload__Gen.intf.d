lib/workload/gen.mli: Moq_mod Moq_numeric
