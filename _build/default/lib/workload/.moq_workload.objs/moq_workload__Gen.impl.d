lib/workload/gen.ml: Array List Moq_geom Moq_mod Moq_numeric Random
