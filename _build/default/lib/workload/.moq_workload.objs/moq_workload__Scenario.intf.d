lib/workload/scenario.mli: Moq_mod Moq_numeric Moq_poly
