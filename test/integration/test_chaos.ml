(* Network-resilience suite: kill-the-primary failover with a resilient
   subscriber (the canonical stream must come through gap-free,
   duplicate-free and byte-identical to a reference monitor), follower
   catch-up across a partition injected by the seeded chaos proxy, and a
   request workload surviving a torn, delayed, reordered link.  Seeds
   come from MOQ_FAULT_SEEDS so CI can sweep a matrix. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module IO = Moq_mod.Mod_io
module Oid = Moq_mod.Oid
module Gen = Moq_workload.Gen
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module BX = Moq_core.Backend.Exact
module MonX = Moq_core.Monitor.Make (BX)
module Proto = Moq_proto.Proto
module Server = Moq_server.Server
module Client = Moq_server.Client
module Chaos = Moq_chaos.Chaos
module Registry = Moq_obs.Registry
module Sink = Moq_obs.Sink
module Trace = Moq_obs.Trace

let q = Q.of_int

let seeds =
  match Sys.getenv_opt "MOQ_FAULT_SEEDS" with
  | None | Some "" -> [ 7; 19 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun w -> int_of_string_opt (String.trim w))

let tmp_ctr = ref 0

let tmp_dir () =
  incr tmp_ctr;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "moq_chaos_%d_%d" (Unix.getpid ()) !tmp_ctr)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o700;
  d

let rm_dir d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    try Unix.rmdir d with Unix.Unix_error _ -> ()
  end

let wait_for ?(deadline = 15.) what pred =
  let stop = Unix.gettimeofday () +. deadline in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > stop then Alcotest.failf "timed out: %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let with_primary ?(trace = false) db f =
  let dir = tmp_dir () in
  let cfg =
    { (Server.default_config ~listen:(Server.Tcp ("127.0.0.1", 0)) ~store_dir:dir)
      with
      Server.init_db = Some db; fsync = false; idle_timeout = 0.;
      repl_digest_every = 1; trace }
  in
  let srv =
    match Server.start cfg with Ok s -> s | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      (try Server.stop srv with _ -> ());
      rm_dir dir)
    (fun () -> f srv)

(* A follower of [of_] (usually the primary's address, possibly behind a
   chaos proxy). *)
let with_follower ?(trace = false) ~of_ f =
  let dir = tmp_dir () in
  let cfg =
    { (Server.default_config ~listen:(Server.Tcp ("127.0.0.1", 0)) ~store_dir:dir)
      with
      Server.init_db = Some (DB.empty ~dim:2 ~tau:(q 0)); fsync = false;
      idle_timeout = 0.; follow = Some of_; trace }
  in
  let fol =
    match Server.start cfg with Ok s -> s | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      (try Server.stop fol with _ -> ());
      rm_dir dir)
    (fun () -> f fol)

let connect srv =
  match Client.connect ~timeout:10. (Server.bound_addr srv) with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.error_to_string e)

let req c r =
  match Client.request c r with
  | Ok m -> m
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e)

let hello c =
  match req c (Proto.Hello Proto.version) with
  | Proto.R_hello _ -> ()
  | m -> Alcotest.failf "unexpected hello response: %s" (Proto.render_server_msg m)

(* Mirror the server's timeline->wire conversion (as in the server suite)
   so streams compare as plain values. *)
let wire_instant i = Format.asprintf "%a" BX.pp_instant i

let wire_piece = function
  | MonX.TL.At (i, s) -> Proto.P_at (wire_instant i, Oid.Set.elements s)
  | MonX.TL.Span (a, b, s) ->
    Proto.P_span (wire_instant a, wire_instant b, Oid.Set.elements s)

let origin_gamma dim = T.stationary ~start:(q (-1_000_000_000)) (Qvec.zero dim)

(* Keep only updates the database accepts, so the wire run and the
   reference monitor see the identical committed stream. *)
let clean_updates db us =
  let rec go db acc = function
    | [] -> List.rev acc
    | u :: rest ->
      (match DB.apply db u with
       | Ok db' -> go db' (u :: acc) rest
       | Error _ -> go db acc rest)
  in
  go db [] us

let assoc0 k l = Option.value ~default:0 (List.assoc_opt k l)

let rec is_prefix xs ys =
  match xs, ys with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let converged pri fol =
  Q.equal (Server.clock fol) (Server.clock pri)
  && IO.db_to_string (Server.db_snapshot fol)
     = IO.db_to_string (Server.db_snapshot pri)

(* ------------------------------------------------------------------ *)
(* Kill the primary: the subscriber fails over to the replica and the  *)
(* observed canonical stream is the uninterrupted one                  *)
(* ------------------------------------------------------------------ *)

let test_kill_primary_failover seed () =
  let db = Gen.uniform_db ~seed ~n:6 ~extent:20 ~speed:4 () in
  with_primary db (fun pri ->
      with_follower ~of_:(Server.bound_addr pri) (fun fol ->
          wait_for "follower bootstrap" (fun () ->
              Server.repl_connected fol && converged pri fol);
          (* reference: an uninterrupted monitor over the same query *)
          let mon =
            MonX.create ~db
              ~gdist:(Gdist.euclidean_sq ~gamma:(origin_gamma (DB.dim db)))
              ~query:(Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 1000)))
              ()
          in
          let reference = ref (List.map wire_piece (MonX.drain_valid mon)) in
          (* resilient subscriber: primary first, replica as failover *)
          let conf =
            Client.Resilient.conf ~seed ~timeout:5. ~connect_timeout:2.
              [ Server.bound_addr pri; Server.bound_addr fol ]
          in
          let rc =
            match Client.Resilient.connect conf with
            | Ok c -> c
            | Error e -> Alcotest.fail (Client.error_to_string e)
          in
          (match
             Client.Resilient.subscribe rc ~kind:(Proto.Sub_knn 1) ~lo:(q 0)
               ~hi:(q 1000)
           with
           | Ok () -> ()
           | Error e -> Alcotest.fail (Client.error_to_string e));
          (* drive committed updates through the primary, pulling as we go *)
          let uc = connect pri in
          hello uc;
          let updates =
            clean_updates db
              (Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 1) ~gap:(q 1)
                 ~count:24 ())
          in
          Alcotest.(check bool) "workload is non-trivial" true
            (List.length updates >= 10);
          let drain_ready () =
            let rec go () =
              match Client.Resilient.pull ~timeout:0.05 rc with
              | `Piece _ -> go ()
              | `Complete | `Error _ -> ()
            in
            go ()
          in
          List.iter
            (fun u ->
              (match req uc (Proto.Update u) with
               | Proto.R_update Proto.V_accepted -> ()
               | m ->
                 Alcotest.failf "update not accepted: %s"
                   (Proto.render_server_msg m));
              (match MonX.apply_update mon u with
               | Ok () -> ()
               | Error e -> Alcotest.failf "reference monitor: %a" DB.pp_error e);
              reference := !reference @ List.map wire_piece (MonX.drain_valid mon);
              drain_ready ())
            updates;
          (* every commit replicated, then the primary dies without warning *)
          wait_for "replica caught up" (fun () -> converged pri fol);
          Server.crash pri;
          Client.close uc;
          (* keep pulling: the client must fail over and resume by itself *)
          wait_for "failover" ~deadline:20. (fun () ->
              drain_ready ();
              assoc0 "moq_client_failovers_total" (Client.Resilient.stats rc) >= 1);
          drain_ready ();
          let stats = Client.Resilient.stats rc in
          let delivered = Client.Resilient.delivered rc in
          let canonical = Proto.simplify_pieces !reference in
          Alcotest.(check (list (pair int int))) "gap-free" []
            (Client.Resilient.dropped_ranges rc);
          Alcotest.(check int) "no divergence across the failover" 0
            (assoc0 "moq_client_divergence_total" stats);
          Alcotest.(check bool) "resume suppressed the replayed prefix" true
            (assoc0 "moq_client_suppressed_duplicates_total" stats >= 1);
          Alcotest.(check int) "replica digest audit stayed clean" 0
            (Server.repl_divergence fol);
          Alcotest.(check bool) "delivered stream is byte-identical" true
            (is_prefix delivered canonical);
          (* only the still-malleable canonical tail may be outstanding *)
          Alcotest.(check bool) "delivered stream is complete" true
            (List.length delivered >= List.length canonical - 2);
          Alcotest.(check bool) "stream was substantial" true
            (List.length delivered >= 5);
          Client.Resilient.close rc))

(* ------------------------------------------------------------------ *)
(* Replication link through the chaos proxy: partition, heal, catch up *)
(* ------------------------------------------------------------------ *)

let test_partition_heal seed () =
  let db = Gen.uniform_db ~seed ~n:6 ~extent:20 ~speed:4 () in
  with_primary db (fun pri ->
      let proxy =
        Chaos.start ~profile:Chaos.quiet ~seed
          ~upstream:(Server.sockaddr_of (Server.bound_addr pri)) ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          with_follower ~of_:(Server.Tcp ("127.0.0.1", Chaos.port proxy))
            (fun fol ->
              wait_for "follower bootstrap" (fun () ->
                  Server.repl_connected fol && converged pri fol);
              let uc = connect pri in
              hello uc;
              let updates =
                clean_updates db
                  (Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 1) ~gap:(q 1)
                     ~count:12 ())
              in
              let send u =
                match req uc (Proto.Update u) with
                | Proto.R_update Proto.V_accepted -> ()
                | m ->
                  Alcotest.failf "update not accepted: %s"
                    (Proto.render_server_msg m)
              in
              let n = List.length updates in
              let before = List.filteri (fun i _ -> i < n / 2) updates in
              let after = List.filteri (fun i _ -> i >= n / 2) updates in
              List.iter send before;
              wait_for "pre-partition convergence" (fun () -> converged pri fol);
              (* the network splits: the follower loses its primary *)
              Chaos.partition proxy;
              wait_for "link observed down" (fun () ->
                  not (Server.repl_connected fol));
              List.iter send after;
              Alcotest.(check bool) "follower is behind" true
                (not (Q.equal (Server.clock fol) (Server.clock pri)));
              (* hold the split until the follower has actually been
                 refused at least once, then heal *)
              wait_for "reconnect attempt refused" (fun () ->
                  (Chaos.stats proxy).Chaos.refused >= 1);
              Chaos.heal proxy;
              wait_for "post-heal convergence" (fun () ->
                  Server.repl_connected fol && converged pri fol);
              Alcotest.(check int) "no divergence" 0 (Server.repl_divergence fol);
              Alcotest.(check bool) "the partition refused connections" true
                ((Chaos.stats proxy).Chaos.refused >= 1);
              Client.close uc)))

(* ------------------------------------------------------------------ *)
(* Stitched trace: one update's spans across primary, follower and     *)
(* client tile the measured end-to-end latency                         *)
(* ------------------------------------------------------------------ *)

let test_stitched_trace seed () =
  let db = Gen.uniform_db ~seed ~n:6 ~extent:20 ~speed:4 () in
  with_primary ~trace:true db (fun pri ->
      let proxy =
        Chaos.start ~profile:Chaos.quiet ~seed
          ~upstream:(Server.sockaddr_of (Server.bound_addr pri)) ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          with_follower ~trace:true
            ~of_:(Server.Tcp ("127.0.0.1", Chaos.port proxy))
            (fun fol ->
              wait_for "follower bootstrap" (fun () ->
                  Server.repl_connected fol && converged pri fol);
              let ctr = Trace.create ~host:"client" () in
              let creg = Registry.create () in
              let csink = Sink.of_registry creg in
              let conn srv =
                match
                  Client.connect ~timeout:10. ~sink:csink ~tracer:ctr
                    (Server.bound_addr srv)
                with
                | Ok c -> c
                | Error e -> Alcotest.fail (Client.error_to_string e)
              in
              let c_sub = conn fol and c_up = conn pri in
              hello c_sub;
              hello c_up;
              (match
                 Client.request c_sub
                   (Proto.Subscribe
                      { kind = Proto.Sub_knn 1; lo = q 0; hi = q 1000 })
               with
               | Ok (Proto.R_subscribe _) -> ()
               | Ok m ->
                 Alcotest.failf "subscribe: %s" (Proto.render_server_msg m)
               | Error e ->
                 Alcotest.failf "subscribe: %s" (Client.error_to_string e));
              let updates =
                clean_updates db
                  (Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 1) ~gap:(q 2)
                     ~count:8 ())
              in
              (* trace every commit; the first traced event to surface at the
                 client (through the follower) picks the trace we audit *)
              let sent = Hashtbl.create 16 in
              let matched = ref None in
              let poll timeout =
                match Client.next_event_full ~timeout c_sub with
                | Some (_, attrs, _) ->
                  (match attrs.Proto.a_trace with
                   | Some (tid, _) when Hashtbl.mem sent tid && !matched = None
                     ->
                     matched :=
                       Some (tid, Hashtbl.find sent tid, Unix.gettimeofday ())
                   | _ -> ())
                | None -> ()
              in
              List.iter
                (fun u ->
                  if !matched = None then begin
                    let ctx = Trace.new_ctx () in
                    Hashtbl.replace sent ctx.Trace.trace_id
                      (Unix.gettimeofday ());
                    (match
                       Client.request_attrs c_up
                         { Proto.no_attrs with
                           Proto.a_trace =
                             Some (ctx.Trace.trace_id, ctx.Trace.span_id) }
                         (Proto.Update u)
                     with
                     | Ok (Proto.R_update _) -> ()
                     | Ok m ->
                       Alcotest.failf "update: %s" (Proto.render_server_msg m)
                     | Error e ->
                       Alcotest.failf "update: %s" (Client.error_to_string e));
                    poll 0.3
                  end)
                updates;
              let stop = Unix.gettimeofday () +. 10. in
              while !matched = None && Unix.gettimeofday () < stop do
                poll 0.3
              done;
              (match !matched with
               | None -> Alcotest.fail "no traced event reached the client"
               | Some (tid, t0, t1) ->
                 let e2e = t1 -. t0 in
                 Thread.delay 0.05;  (* let trailing queue spans land *)
                 let spans =
                   List.concat_map Trace.spans
                     [ Server.tracer pri; Server.tracer fol; ctr ]
                   |> List.filter (fun s ->
                       match Trace.span_ctx s with
                       | Some c -> c.Trace.trace_id = tid
                       | None -> false)
                 in
                 Alcotest.(check (list string)) "spans from every hop"
                   [ "client"; "follower"; "primary" ]
                   (List.sort_uniq compare (List.map Trace.span_host spans));
                 (* the depth-0 spans tile the pipeline: their durations must
                    account for the measured end-to-end latency *)
                 let stage_sum =
                   List.fold_left
                     (fun acc s ->
                       if Trace.span_depth s = 0 then acc +. Trace.duration s
                       else acc)
                     0. spans
                 in
                 let tol = Float.max (0.1 *. e2e) 0.002 in
                 if Float.abs (stage_sum -. e2e) > tol then
                   Alcotest.failf
                     "stage spans sum to %.3f ms but e2e is %.3f ms (tol %.3f ms)"
                     (1000. *. stage_sum) (1000. *. e2e) (1000. *. tol);
                 (* the client sink saw the delivery *)
                 Alcotest.(check bool) "e2e histogram populated" true
                   (List.assoc_opt "moq_client_e2e_seconds_count"
                      (Registry.flatten creg)
                    |> Option.value ~default:0. > 0.));
              Client.close c_up;
              Client.close c_sub)))

(* ------------------------------------------------------------------ *)
(* Replication lag gauge: climbs while partitioned, back to 0 on heal  *)
(* ------------------------------------------------------------------ *)

let lag_gauges fol =
  let flat = Registry.flatten (Server.registry fol) in
  ( List.assoc_opt "moq_repl_lag_updates" flat,
    List.assoc_opt "moq_repl_lag_ms" flat )

let test_lag_heals seed () =
  let db = Gen.uniform_db ~seed ~n:6 ~extent:20 ~speed:4 () in
  with_primary db (fun pri ->
      let proxy =
        Chaos.start ~profile:Chaos.quiet ~seed
          ~upstream:(Server.sockaddr_of (Server.bound_addr pri)) ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          with_follower ~of_:(Server.Tcp ("127.0.0.1", Chaos.port proxy))
            (fun fol ->
              wait_for "follower bootstrap" (fun () ->
                  Server.repl_connected fol && converged pri fol);
              (* the gauges exist from the start, so dashboards never miss
                 the metric on a healthy follower *)
              (match lag_gauges fol with
               | Some u, Some ms ->
                 Alcotest.(check (float 0.)) "lag starts at 0" 0. u;
                 Alcotest.(check (float 0.)) "lag ms starts at 0" 0. ms
               | _ -> Alcotest.fail "lag gauges not registered at start");
              let uc = connect pri in
              hello uc;
              let updates =
                clean_updates db
                  (Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 1) ~gap:(q 1)
                     ~count:12 ())
              in
              let send u =
                match req uc (Proto.Update u) with
                | Proto.R_update Proto.V_accepted -> ()
                | m ->
                  Alcotest.failf "update not accepted: %s"
                    (Proto.render_server_msg m)
              in
              Chaos.partition proxy;
              wait_for "link observed down" (fun () ->
                  not (Server.repl_connected fol));
              List.iter send updates;
              Alcotest.(check bool) "follower is behind" true
                (not (Q.equal (Server.clock fol) (Server.clock pri)));
              wait_for "reconnect attempt refused" (fun () ->
                  (Chaos.stats proxy).Chaos.refused >= 1);
              Chaos.heal proxy;
              wait_for "post-heal convergence" (fun () ->
                  Server.repl_connected fol && converged pri fol);
              (* the acceptance criterion: lag back to exactly 0 once the
                 backlog has replayed *)
              wait_for "lag gauge back to 0" (fun () ->
                  match lag_gauges fol with
                  | Some u, Some ms -> u = 0. && ms = 0.
                  | _ -> false);
              Alcotest.(check int) "no divergence" 0 (Server.repl_divergence fol);
              Client.close uc)))

(* ------------------------------------------------------------------ *)
(* Request workload through a torn, delayed, reordered link            *)
(* ------------------------------------------------------------------ *)

let test_requests_through_chaos seed () =
  let db = Gen.uniform_db ~seed ~n:4 ~extent:20 ~speed:4 () in
  with_primary db (fun pri ->
      let profile =
        { Chaos.flaky with Chaos.tear_p = 0.15; delay_p = 0.3; delay_s = 0.005 }
      in
      let proxy =
        Chaos.start ~profile ~seed
          ~upstream:(Server.sockaddr_of (Server.bound_addr pri)) ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop proxy)
        (fun () ->
          let conf =
            Client.Resilient.conf ~seed ~timeout:5. ~connect_timeout:2.
              ~retry_max:12
              [ Server.Tcp ("127.0.0.1", Chaos.port proxy) ]
          in
          let rc =
            match Client.Resilient.connect conf with
            | Ok c -> c
            | Error e -> Alcotest.fail (Client.error_to_string e)
          in
          let answered = ref 0 in
          for i = 1 to 40 do
            match Client.Resilient.request rc Proto.Ping with
            | Ok (Proto.R_pong _) -> incr answered
            | Ok m ->
              Alcotest.failf "ping %d: unexpected %s" i (Proto.render_server_msg m)
            | Error e ->
              Alcotest.failf "ping %d failed: %s" i (Client.error_to_string e)
          done;
          Alcotest.(check int) "every request answered" 40 !answered;
          let s = Chaos.stats proxy in
          Alcotest.(check bool) "the link actually misbehaved" true
            (s.Chaos.tears + s.Chaos.delays + s.Chaos.reorders > 0);
          Client.Resilient.close rc))

let () =
  let per_seed name f =
    List.map
      (fun seed ->
        Alcotest.test_case (Printf.sprintf "%s (seed %d)" name seed) `Quick
          (f seed))
      seeds
  in
  Alcotest.run "chaos"
    [ ("failover", per_seed "kill the primary" test_kill_primary_failover);
      ("partition", per_seed "partition and heal" test_partition_heal);
      ("trace", per_seed "stitched cross-process trace" test_stitched_trace);
      ("lag", per_seed "lag gauge heals" test_lag_heals);
      ("proxy", per_seed "requests through chaos" test_requests_through_chaos) ]
