(* Unit tests for the spatio-temporal grid: exact boxes, time-sorted cell
   lists, boundary cell assignment, ring enumeration, and the separation
   lower bound. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module Grid = Moq_index.Grid
module Gen = Moq_workload.Gen

let q = Q.of_int
let qs = Q.to_string

let vec2 x y = Qvec.of_list [ q x; q y ]

let db_of specs =
  List.fold_left
    (fun db (o, ax, ay, bx, by) ->
      DB.add_initial db o (T.linear ~start:(q 0) ~a:(vec2 ax ay) ~b:(vec2 bx by)))
    (DB.empty ~dim:2 ~tau:(q 0))
    specs

let test_cell_of () =
  Alcotest.(check (pair int int)) "interior" (0, 0) (Grid.cell_of ~cell:10.0 (3.0, 7.0));
  Alcotest.(check (pair int int)) "negative floor" (-1, -1) (Grid.cell_of ~cell:10.0 (-0.5, -10.0));
  (* a point exactly on a boundary belongs to the higher cell *)
  Alcotest.(check (pair int int)) "boundary up" (1, 0) (Grid.cell_of ~cell:10.0 (10.0, 9.99))

let test_exact_boxes () =
  (* one object moving (5,5) -> (25,-15) over [0,10]: box from endpoints *)
  let db = db_of [ (1, 2, -2, 5, 5) ] in
  let g = Grid.build ~cell:10.0 ~lo:(q 0) ~hi:(q 10) db in
  (match Grid.shards g with
   | [ (_, [ 1 ], Some b) ] ->
     Alcotest.(check string) "x0" "5" (qs b.Grid.x0);
     Alcotest.(check string) "x1" "25" (qs b.Grid.x1);
     Alcotest.(check string) "y0" "-15" (qs b.Grid.y0);
     Alcotest.(check string) "y1" "5" (qs b.Grid.y1)
   | _ -> Alcotest.fail "expected one shard with a box");
  Alcotest.(check int) "population" 1 (Grid.population g)

let test_window_clipping () =
  (* the window cuts the motion: box must cover only [2, 4] *)
  let db = db_of [ (1, 10, 0, 0, 0) ] in
  let g = Grid.build ~cell:10.0 ~lo:(q 2) ~hi:(q 4) db in
  (match Grid.shards g with
   | [ (_, _, Some b) ] ->
     Alcotest.(check string) "x0 clipped" "20" (qs b.Grid.x0);
     Alcotest.(check string) "x1 clipped" "40" (qs b.Grid.x1)
   | _ -> Alcotest.fail "expected a box");
  (* no window presence at all: home shard exists, box is None *)
  let dead = DB.empty ~dim:2 ~tau:(q 0) in
  let dead =
    DB.add_initial dead 7
      (T.of_pieces
         [ { T.start = q 0; a = Qvec.zero 2; b = vec2 1 1 } ]
         ~death:(q 1))
  in
  let g' = Grid.build ~cell:10.0 ~lo:(q 5) ~hi:(q 9) dead in
  match Grid.shards g' with
  | [ (_, [ 7 ], None) ] -> ()
  | _ -> Alcotest.fail "dead-before-window object should have no box"

let test_entries_time_sorted () =
  let db = Gen.uniform_db ~seed:3 ~n:12 ~extent:30 ~speed:6 () in
  let g = Grid.build ~cell:16.0 ~lo:(q 0) ~hi:(q 25) db in
  List.iter
    (fun (key, _, _) ->
      let es = Grid.entries g key in
      let rec sorted = function
        | a :: (b :: _ as tl) ->
          Q.compare a.Grid.e_t0 b.Grid.e_t0 <= 0 && sorted tl
        | _ -> true
      in
      Alcotest.(check bool) "ascending e_t0" true (sorted es);
      List.iter
        (fun e ->
          Alcotest.(check bool) "t0 <= t1" true
            (Q.compare e.Grid.e_t0 e.Grid.e_t1 <= 0))
        es)
    (Grid.shards g)

let test_boundary_assignment () =
  (* position exactly on the (0,0)/(1,0) cell boundary: home shard is the
     higher cell, consistent with cell_of's floor semantics *)
  let db = db_of [ (1, 0, 0, 10, 0) ] in
  let g = Grid.build ~cell:10.0 ~lo:(q 0) ~hi:(q 5) db in
  Alcotest.(check (option (pair int int))) "boundary home" (Some (1, 0))
    (Grid.shard_of g 1)

let test_ring_search () =
  (* objects in three cells along the x-axis: (0,0), (2,0), (5,0) *)
  let db = db_of [ (1, 0, 0, 5, 5); (2, 0, 0, 25, 5); (3, 0, 0, 55, 5) ] in
  let g = Grid.build ~cell:10.0 ~lo:(q 0) ~hi:(q 1) db in
  let at ring = Grid.ring_candidates g ~center:(0, 0) ~ring in
  Alcotest.(check (list int)) "ring 0" [ 1 ] (at 0);
  Alcotest.(check (list int)) "ring 1 empty" [] (at 1);
  Alcotest.(check (list int)) "ring 2" [ 2 ] (at 2);
  Alcotest.(check (list int)) "ring 5" [ 3 ] (at 5);
  Alcotest.(check bool) "max_ring reaches the far cell" true
    (Grid.max_ring g ~center:(0, 0) >= 5)

let test_box_separation () =
  let box x0 x1 y0 y1 =
    { Grid.x0 = q x0; x1 = q x1; y0 = q y0; y1 = q y1 }
  in
  let sep a b = qs (Grid.box_separation_sq a b) in
  Alcotest.(check string) "overlap" "0" (sep (box 0 10 0 10) (box 5 15 5 15));
  Alcotest.(check string) "touching" "0" (sep (box 0 10 0 10) (box 10 20 0 10));
  Alcotest.(check string) "x gap" "25" (sep (box 0 10 0 10) (box 15 20 0 10));
  Alcotest.(check string) "diagonal" "25" (sep (box 0 10 0 10) (box 13 20 14 20))

let test_trajectory_box () =
  let tr = T.linear ~start:(q 0) ~a:(vec2 (-3) 1) ~b:(vec2 10 0) in
  (match Grid.trajectory_box tr ~lo:(q 0) ~hi:(q 10) with
   | Some b ->
     Alcotest.(check string) "x0" "-20" (qs b.Grid.x0);
     Alcotest.(check string) "x1" "10" (qs b.Grid.x1);
     Alcotest.(check string) "y1" "10" (qs b.Grid.y1)
   | None -> Alcotest.fail "expected a box");
  Alcotest.(check bool) "no presence" true
    (Grid.trajectory_box (T.linear ~start:(q 50) ~a:(vec2 0 0) ~b:(vec2 0 0))
       ~lo:(q 0) ~hi:(q 10)
     = None)

let () =
  Alcotest.run "index"
    [ ("grid", [
        Alcotest.test_case "cell_of floor semantics" `Quick test_cell_of;
        Alcotest.test_case "exact piece boxes" `Quick test_exact_boxes;
        Alcotest.test_case "window clipping + dead object" `Quick test_window_clipping;
        Alcotest.test_case "cell lists time-sorted" `Quick test_entries_time_sorted;
        Alcotest.test_case "boundary cell assignment" `Quick test_boundary_assignment;
        Alcotest.test_case "ring search" `Quick test_ring_search;
        Alcotest.test_case "box separation lower bound" `Quick test_box_separation;
        Alcotest.test_case "trajectory window box" `Quick test_trajectory_box;
      ]);
    ]
