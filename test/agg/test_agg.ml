(* The aggregation subsystem's two exactness contracts:

   1. incremental ≡ rescan: the per-POI monitors fed update-by-update,
      with grid-pruned lazy admission, produce row-for-row bit-identical
      aggregates to a full per-window per-POI sweep of the final database;
   2. alibi exact ≡ filtered, and both are consistent with dense rational
      sampling of the inter-object distance (200-workload property suite,
      the acceptance gate of ISSUE 10). *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update
module T = Moq_mod.Trajectory
module A = Moq_poly.Algnum
module Gen = Moq_workload.Gen
module Prng = Moq_workload.Prng
module Ingest = Moq_ingest.Ingest

module BX = Moq_core.Backend.Exact
module BFl = Moq_core.Backend.Filtered
module AggX = Moq_agg.Agg.Make (BX)
module AlibiX = Moq_agg.Alibi.Make (BX)
module AlibiF = Moq_agg.Alibi.Make (BFl)

let q = Q.of_int

let pp_rows rows =
  Format.asprintf "@[<v>%a@]"
    (Format.pp_print_list Moq_agg.Agg.pp_row)
    rows

(* ---- incremental vs rescan ---- *)

let pois_near ~seed ~k (db : DB.t) =
  (* drop POIs near actual object birth positions so aggregates are
     non-trivial *)
  let st = Prng.create (seed * 7919) in
  let objs = Array.of_list (DB.objects db) in
  List.init k (fun _ ->
      let _, tr = objs.(Prng.int st (Array.length objs)) in
      let pos = T.position_exn tr (T.birth tr) in
      Qvec.add pos (Qvec.of_list [ q (Prng.int st 21 - 10); q (Prng.int st 21 - 10) ]))

let check_cont_vs_rescan ~seed ~n ~k ~d ~window ~lo ~hi ~updates () =
  let db = Gen.uniform_db ~seed ~n ~extent:100 ~speed:5 () in
  let stream =
    Gen.mixed_stream ~seed:(seed + 1) ~db ~start:lo
      ~gap:(Q.div (Q.sub hi lo) (q (updates + 1)))
      ~count:updates ~extent:100 ()
  in
  let pois = pois_near ~seed ~k db in
  let cont =
    AggX.Cont.create ~cell:32.0 ~db ~pois ~d ~window ~lo ~hi ()
  in
  List.iter (AggX.Cont.apply_update_exn cont) stream;
  let inc_rows = AggX.Cont.finalize cont in
  let final_db = DB.apply_all_exn db stream in
  let scan_rows = AggX.rescan ~db:final_db ~pois ~d ~window ~lo ~hi () in
  if not (AggX.equal_rows inc_rows scan_rows) then
    Alcotest.failf "seed %d: rows diverge@.incremental:@.%s@.rescan:@.%s" seed
      (pp_rows inc_rows) (pp_rows scan_rows);
  let st = AggX.Cont.stats cont in
  Alcotest.(check int) "row count" (k * st.Moq_agg.Agg.windows)
    (List.length inc_rows)

let test_cont_small () =
  check_cont_vs_rescan ~seed:3 ~n:20 ~k:3 ~d:(q 30) ~window:(q 10) ~lo:(q 0)
    ~hi:(q 40) ~updates:12 ()

let test_cont_sweep () =
  for seed = 1 to 12 do
    check_cont_vs_rescan ~seed ~n:15 ~k:2 ~d:(q 25) ~window:(q 8) ~lo:(q 0)
      ~hi:(q 30) ~updates:10 ()
  done

let test_cont_truncated_window () =
  (* (hi - lo) not a multiple of the window: last window is short *)
  check_cont_vs_rescan ~seed:5 ~n:12 ~k:2 ~d:(q 20) ~window:(q 7) ~lo:(q 2)
    ~hi:(q 25) ~updates:8 ()

let test_cont_no_updates () =
  check_cont_vs_rescan ~seed:8 ~n:18 ~k:3 ~d:(q 40) ~window:(q 5) ~lo:(q 0)
    ~hi:(q 20) ~updates:0 ()

let test_cont_ingested_trace () =
  (* the w1 pipeline in miniature: trace → segmentation → update stream *)
  let rows = Gen.trace_like ~seed:21 ~n:8 ~steps:12 ~extent:60 ~speed:4 () in
  let samples =
    List.map (fun (oid, t, pos) -> { Ingest.oid; t; pos }) rows
  in
  let stream = Ingest.segment samples in
  let news, rest =
    List.partition (function U.New _ -> true | _ -> false) stream
  in
  let db =
    List.fold_left
      (fun db u ->
        match u with
        | U.New { oid; tau; a; b } ->
          DB.add_initial db oid
            (T.of_pieces [ { T.start = tau; a; b } ])
        | _ -> db)
      (DB.empty ~dim:2 ~tau:Q.zero)
      news
  in
  let lo = q 0 and hi = q 11 in
  let pois = pois_near ~seed:21 ~k:2 db in
  let d = q 15 and window = q 3 in
  let cont = AggX.Cont.create ~cell:16.0 ~db ~pois ~d ~window ~lo ~hi () in
  List.iter (AggX.Cont.apply_update_exn cont) rest;
  let inc_rows = AggX.Cont.finalize cont in
  let final_db = DB.apply_all_exn db rest in
  let scan_rows = AggX.rescan ~db:final_db ~pois ~d ~window ~lo ~hi () in
  if not (AggX.equal_rows inc_rows scan_rows) then
    Alcotest.failf "ingested trace rows diverge@.incremental:@.%s@.rescan:@.%s"
      (pp_rows inc_rows) (pp_rows scan_rows)

let test_cont_prunes () =
  (* clustered db, POI at the origin: far clusters must be pruned *)
  let db = Gen.clustered_db ~seed:4 ~n:200 ~clusters:8 ~spacing:100_000 () in
  let pois = [ Qvec.of_list [ q 0; q 0 ] ] in
  let cont =
    AggX.Cont.create ~cell:512.0 ~db ~pois ~d:(q 300) ~window:(q 10)
      ~lo:(q 0) ~hi:(q 20) ()
  in
  let st = AggX.Cont.stats cont in
  if st.Moq_agg.Agg.admitted >= 100 then
    Alcotest.failf "expected heavy pruning, admitted %d of 200"
      st.Moq_agg.Agg.admitted;
  if st.Moq_agg.Agg.admitted = 0 then
    Alcotest.fail "origin cluster should be admitted";
  (* and pruning must not change answers *)
  let inc_rows = AggX.Cont.finalize cont in
  let scan_rows =
    AggX.rescan ~db ~pois ~d:(q 300) ~window:(q 10) ~lo:(q 0) ~hi:(q 20) ()
  in
  if not (AggX.equal_rows inc_rows scan_rows) then
    Alcotest.failf "pruned rows diverge@.incremental:@.%s@.rescan:@.%s"
      (pp_rows inc_rows) (pp_rows scan_rows)

(* ---- alibi ---- *)

let random_traj st ~extent ~speed ~segments =
  let b = Qvec.of_list [ q (Prng.int st (2 * extent + 1) - extent);
                         q (Prng.int st (2 * extent + 1) - extent) ] in
  let a = Qvec.of_list [ q (Prng.int st (2 * speed + 1) - speed);
                         q (Prng.int st (2 * speed + 1) - speed) ] in
  let tr = T.linear ~start:(q 0) ~a ~b in
  let rec chdirs tr i =
    if i > segments then tr
    else begin
      let tau = q (i * 5) in
      let a = Qvec.of_list [ q (Prng.int st (2 * speed + 1) - speed);
                             q (Prng.int st (2 * speed + 1) - speed) ] in
      chdirs (T.chdir tr tau a) (i + 1)
    end
  in
  chdirs tr 1

let alibi_case seed =
  let st = Prng.create seed in
  let o1 = random_traj st ~extent:50 ~speed:6 ~segments:(Prng.int st 4) in
  let o2 = random_traj st ~extent:50 ~speed:6 ~segments:(Prng.int st 4) in
  let d = q (1 + Prng.int st 40) in
  let lo = q (Prng.int st 10) in
  let hi = Q.add lo (q (1 + Prng.int st 30)) in
  (o1, o2, d, lo, hi)

let test_alibi_exact_vs_filtered () =
  (* the 200-workload bit-identity property suite of the acceptance
     criteria: verdicts AND witnesses must agree exactly *)
  for seed = 1 to 200 do
    let o1, o2, d, lo, hi = alibi_case seed in
    let vx = AlibiX.decide ~o1 ~o2 ~d ~lo ~hi in
    let vf = AlibiF.decide ~o1 ~o2 ~d ~lo ~hi in
    match vx, vf with
    | AlibiX.No_meet, AlibiF.No_meet -> ()
    | AlibiX.Meet wx, AlibiF.Meet wf ->
      if A.compare wx (BFl.to_algnum wf) <> 0 then
        Alcotest.failf "seed %d: witness mismatch (%a vs %a)" seed A.pp wx
          A.pp (BFl.to_algnum wf)
    | AlibiX.Meet _, AlibiF.No_meet ->
      Alcotest.failf "seed %d: exact meets, filtered refutes" seed
    | AlibiX.No_meet, AlibiF.Meet _ ->
      Alcotest.failf "seed %d: filtered meets, exact refutes" seed
  done

let test_alibi_vs_sampling () =
  (* dense rational sampling can only ever agree with the exact verdict:
     a sample within distance refutes No_meet and must not precede the
     earliest witness *)
  for seed = 1 to 200 do
    let o1, o2, d, lo, hi = alibi_case seed in
    let v = AlibiX.decide ~o1 ~o2 ~d ~lo ~hi in
    let steps = 64 in
    let step = Q.div (Q.sub hi lo) (q steps) in
    for i = 0 to steps do
      let t = Q.add lo (Q.mul (q i) step) in
      if AlibiX.sample_within ~o1 ~o2 ~d t then begin
        match v with
        | AlibiX.No_meet ->
          Alcotest.failf "seed %d: sample at %a within %a but verdict No_meet"
            seed Q.pp t Q.pp d
        | AlibiX.Meet w ->
          if BX.compare_instant_scalar w t > 0 then
            Alcotest.failf
              "seed %d: witness %a later than in-range sample %a" seed A.pp w
              Q.pp t
      end
    done
  done

let test_alibi_known_cases () =
  (* head-on meeting: x from 0 moving +1, y from 10 moving -1 on a line;
     they are within 2 from t = 4 *)
  let o1 = T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 1; q 0 ]) ~b:(Qvec.of_list [ q 0; q 0 ]) in
  let o2 = T.linear ~start:(q 0) ~a:(Qvec.of_list [ q (-1); q 0 ]) ~b:(Qvec.of_list [ q 10; q 0 ]) in
  (match AlibiX.decide ~o1 ~o2 ~d:(q 2) ~lo:(q 0) ~hi:(q 10) with
   | AlibiX.Meet w ->
     Alcotest.(check int) "earliest approach instant" 0
       (BX.compare_instant_scalar w (q 4))
   | AlibiX.No_meet -> Alcotest.fail "head-on objects must meet");
  (* the same pair, but the window closes before they converge *)
  (match AlibiX.decide ~o1 ~o2 ~d:(q 2) ~lo:(q 0) ~hi:(q 3) with
   | AlibiX.No_meet -> ()
   | AlibiX.Meet _ -> Alcotest.fail "alibi holds on [0,3]");
  (* parallel movers, never within 1 *)
  let o3 = T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 1; q 0 ]) ~b:(Qvec.of_list [ q 0; q 5 ]) in
  (match AlibiX.decide ~o1 ~o2:o3 ~d:(q 1) ~lo:(q 0) ~hi:(q 100) with
   | AlibiX.No_meet -> ()
   | AlibiX.Meet _ -> Alcotest.fail "parallel movers stay 5 apart");
  (* tangency: exactly distance d at one instant — closed semantics meet *)
  (match AlibiX.decide ~o1 ~o2:o3 ~d:(q 5) ~lo:(q 0) ~hi:(q 100) with
   | AlibiX.Meet w ->
     Alcotest.(check int) "tangency from the start" 0
       (BX.compare_instant_scalar w (q 0))
   | AlibiX.No_meet -> Alcotest.fail "distance-5 parallel movers touch at d=5");
  (* disjoint lifetimes: o4 dies before o5 is born *)
  let o4 = T.terminate o1 (q 5) in
  let o5 =
    T.of_pieces [ { T.start = q 8; a = Qvec.of_list [ q 0; q 0 ]; b = Qvec.of_list [ q 0; q 0 ] } ]
  in
  (match AlibiX.decide ~o1:o4 ~o2:o5 ~d:(q 1000) ~lo:(q 0) ~hi:(q 100) with
   | AlibiX.No_meet -> ()
   | AlibiX.Meet _ -> Alcotest.fail "disjoint lifetimes can never meet")

let () =
  Alcotest.run "agg"
    [
      ( "cont-vs-rescan",
        [
          Alcotest.test_case "small" `Quick test_cont_small;
          Alcotest.test_case "seed sweep" `Slow test_cont_sweep;
          Alcotest.test_case "truncated window" `Quick test_cont_truncated_window;
          Alcotest.test_case "no updates" `Quick test_cont_no_updates;
          Alcotest.test_case "ingested trace" `Quick test_cont_ingested_trace;
          Alcotest.test_case "grid pruning" `Quick test_cont_prunes;
        ] );
      ( "alibi",
        [
          Alcotest.test_case "known cases" `Quick test_alibi_known_cases;
          Alcotest.test_case "exact = filtered (200 workloads)" `Slow
            test_alibi_exact_vs_filtered;
          Alcotest.test_case "consistent with sampling (200 workloads)" `Slow
            test_alibi_vs_sampling;
        ] );
    ]
