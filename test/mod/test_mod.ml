module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Qpiece = Moq_poly.Piecewise.Qpiece

let q = Q.of_int
let _qs = Q.of_string
let vec l = Qvec.of_list (List.map Q.of_int l)
let vecs l = Qvec.of_list (List.map Q.of_string l)

let check_vec msg expected actual =
  Alcotest.(check bool)
    (Format.asprintf "%s: expected %a got %a" msg Qvec.pp expected Qvec.pp actual)
    true (Qvec.equal expected actual)

(* The airplane of the paper's Example 1:
   x = (2,-1,0) t + (-40,23,30)    for 0  <= t <= 21
   x = (0,-1,-5) t + (2,23,135)    for 21 <= t <= 22
   x = (0.5,0,-1) t + (-9,1,47)    for 22 <= t *)
let example1 () =
  T.of_pieces
    [ { start = q 0; a = vec [ 2; -1; 0 ]; b = vec [ -40; 23; 30 ] };
      { start = q 21; a = vec [ 0; -1; -5 ]; b = vec [ 2; 23; 135 ] };
      { start = q 22; a = vecs [ "1/2"; "0"; "-1" ]; b = vec [ -9; 1; 47 ] };
    ]

let test_example1_positions () =
  let tr = example1 () in
  (* the paper: turned at time 21 at position (2,2,30); at 22 at (2,1,25) *)
  check_vec "turn 1" (vec [ 2; 2; 30 ]) (T.position_exn tr (q 21));
  check_vec "turn 2" (vec [ 2; 1; 25 ]) (T.position_exn tr (q 22));
  check_vec "start" (vec [ -40; 23; 30 ]) (T.position_exn tr (q 0));
  Alcotest.(check bool) "before birth" true (T.position tr (q (-1)) = None);
  Alcotest.(check (list string)) "turns" [ "21"; "22" ] (List.map Q.to_string (T.turns tr))

let test_example2_chdir () =
  (* Example 2: chdir(o, 47, (0,0,0)) lands the plane at (14.5, 1, 0) *)
  let tr = example1 () in
  let tr' = T.chdir tr (q 47) (vec [ 0; 0; 0 ]) in
  check_vec "landing position" (vecs [ "29/2"; "1"; "0" ]) (T.position_exn tr' (q 47));
  check_vec "stays put" (vecs [ "29/2"; "1"; "0" ]) (T.position_exn tr' (q 100));
  Alcotest.(check int) "4 pieces" 4 (List.length (T.pieces tr'));
  Alcotest.(check (list string)) "turns" [ "21"; "22"; "47" ] (List.map Q.to_string (T.turns tr'))

let test_terminate () =
  let tr = example1 () in
  let tr' = T.terminate tr (q 30) in
  Alcotest.(check bool) "death set" true (T.death tr' = Some (q 30));
  Alcotest.(check bool) "defined at 30" true (T.defined_at tr' (q 30));
  Alcotest.(check bool) "not defined at 31" false (T.defined_at tr' (q 31));
  check_vec "position still valid" (T.position_exn tr (q 25)) (T.position_exn tr' (q 25));
  (* terminating mid-piece drops later pieces *)
  let tr'' = T.terminate tr (q 10) in
  Alcotest.(check int) "single piece" 1 (List.length (T.pieces tr''))

let test_chdir_continuity () =
  let tr = T.linear ~start:(q 0) ~a:(vec [ 1; 1 ]) ~b:(vec [ 0; 0 ]) in
  let tr' = T.chdir tr (q 5) (vec [ -2; 0 ]) in
  check_vec "at tau" (vec [ 5; 5 ]) (T.position_exn tr' (q 5));
  check_vec "after" (vec [ 3; 5 ]) (T.position_exn tr' (q 6));
  check_vec "before unchanged" (vec [ 2; 2 ]) (T.position_exn tr' (q 2));
  (* velocity function (paper's vel) *)
  (match T.velocity_after tr' (q 6) with
   | Some v -> check_vec "vel" (vec [ -2; 0 ]) v
   | None -> Alcotest.fail "vel");
  (match T.velocity_after tr' (q 2) with
   | Some v -> check_vec "vel before" (vec [ 1; 1 ]) v
   | None -> Alcotest.fail "vel")

let test_coord_piecewise () =
  let tr = example1 () in
  let c0 = T.coord tr 0 in
  Alcotest.(check string) "x(10)" "-20" (Q.to_string (Qpiece.eval c0 (q 10)));
  Alcotest.(check string) "x(21)" "2" (Q.to_string (Qpiece.eval c0 (q 21)));
  Alcotest.(check string) "x(24)" "3" (Q.to_string (Qpiece.eval c0 (q 24)));
  Alcotest.(check bool) "continuous" true (Qpiece.is_continuous c0);
  let c2 = T.coord tr 2 in
  Alcotest.(check string) "z(22)" "25" (Q.to_string (Qpiece.eval c2 (q 22)))

let test_discontinuous_rejected () =
  Alcotest.check_raises "discontinuous" (Invalid_argument "Trajectory: discontinuous") (fun () ->
      ignore
        (T.of_pieces
           [ { start = q 0; a = vec [ 1 ]; b = vec [ 0 ] };
             { start = q 1; a = vec [ 1 ]; b = vec [ 5 ] };
           ]))

let test_stationary () =
  let tr = T.stationary ~start:(q 0) (vec [ 3; 4 ]) in
  check_vec "always there" (vec [ 3; 4 ]) (T.position_exn tr (q 100))

(* ------------------------------------------------------------------ *)
(* MOD + updates                                                        *)
(* ------------------------------------------------------------------ *)

let test_mod_updates () =
  let db = DB.empty ~dim:2 ~tau:(q 0) in
  let db = DB.apply_exn db (U.New { oid = 1; tau = q 1; a = vec [ 1; 0 ]; b = vec [ 0; 0 ] }) in
  let db = DB.apply_exn db (U.New { oid = 2; tau = q 2; a = vec [ 0; 1 ]; b = vec [ 5; 0 ] }) in
  Alcotest.(check int) "two objects" 2 (DB.cardinal db);
  Alcotest.(check string) "clock" "2" (Q.to_string (DB.last_update db));
  let db = DB.apply_exn db (U.Chdir { oid = 1; tau = q 3; a = vec [ 0; 0 ] }) in
  let tr1 = Option.get (DB.find db 1) in
  check_vec "frozen" (vec [ 3; 0 ]) (T.position_exn tr1 (q 10));
  let db = DB.apply_exn db (U.Terminate { oid = 2; tau = q 4 }) in
  (* Definition 3: terminate keeps the object in O, clipping its trajectory *)
  Alcotest.(check int) "O unchanged" 2 (DB.cardinal db);
  Alcotest.(check bool) "terminated still in O" true (DB.mem db 2);
  Alcotest.(check bool) "trajectory kept for past" true (DB.find db 2 <> None);
  Alcotest.(check int) "live at 3" 2 (List.length (DB.live db (q 3)));
  Alcotest.(check int) "live at 5" 1 (List.length (DB.live db (q 5)))

let test_mod_errors () =
  let db = DB.empty ~dim:2 ~tau:(q 10) in
  let check_err name u expected =
    match DB.apply db u with
    | Error e -> Alcotest.(check string) name expected (Format.asprintf "%a" DB.pp_error e)
    | Ok _ -> Alcotest.failf "%s: expected error" name
  in
  check_err "stale" (U.New { oid = 1; tau = q 5; a = vec [ 1; 0 ]; b = vec [ 0; 0 ] })
    "update at 5 not after last update 10";
  check_err "equal time also stale" (U.New { oid = 1; tau = q 10; a = vec [ 1; 0 ]; b = vec [ 0; 0 ] })
    "update at 10 not after last update 10";
  check_err "unknown" (U.Terminate { oid = 9; tau = q 11 }) "object o9 does not exist";
  let db1 = DB.apply_exn db (U.New { oid = 1; tau = q 11; a = vec [ 1; 0 ]; b = vec [ 0; 0 ] }) in
  (match DB.apply db1 (U.New { oid = 1; tau = q 12; a = vec [ 1; 0 ]; b = vec [ 0; 0 ] }) with
   | Error (DB.Duplicate_oid 1) -> ()
   | _ -> Alcotest.fail "duplicate expected");
  (match DB.apply db1 (U.New { oid = 2; tau = q 12; a = vec [ 1 ]; b = vec [ 0 ] }) with
   | Error DB.Dimension_mismatch -> ()
   | _ -> Alcotest.fail "dimension mismatch expected");
  (* updates after termination fail because the trajectory ends at death *)
  let db2 = DB.apply_exn db1 (U.Terminate { oid = 1; tau = q 13 }) in
  (match DB.apply db2 (U.Chdir { oid = 1; tau = q 14; a = vec [ 0; 0 ] }) with
   | Error (DB.Not_defined_at (1, _)) -> ()
   | _ -> Alcotest.fail "chdir on terminated should fail");
  (match DB.apply db2 (U.Terminate { oid = 1; tau = q 14 }) with
   | Error (DB.Not_defined_at (1, _)) -> ()
   | _ -> Alcotest.fail "double terminate should fail")

let test_example2_via_updates () =
  (* replay Example 1 + 2 through the update interface *)
  let db = DB.empty ~dim:3 ~tau:(q (-1)) in
  let db = DB.apply_exn db (U.New { oid = 7; tau = q 0; a = vec [ 2; -1; 0 ]; b = vec [ -40; 23; 30 ] }) in
  let db = DB.apply_exn db (U.Chdir { oid = 7; tau = q 21; a = vec [ 0; -1; -5 ] }) in
  let db = DB.apply_exn db (U.Chdir { oid = 7; tau = q 22; a = vecs [ "1/2"; "0"; "-1" ] }) in
  let db = DB.apply_exn db (U.Chdir { oid = 7; tau = q 47; a = vec [ 0; 0; 0 ] }) in
  let tr = Option.get (DB.find db 7) in
  Alcotest.(check bool) "matches example 1+2" true (T.equal tr (T.chdir (example1 ()) (q 47) (vec [ 0; 0; 0 ])))

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

module IO = Moq_mod.Mod_io

let test_io_roundtrip () =
  let db = DB.empty ~dim:3 ~tau:(q (-1)) in
  let db = DB.add_initial db 7 (example1 ()) in
  let db = DB.apply_exn db (U.New { oid = 2; tau = q 0; a = vecs [ "1/2"; "0"; "-3" ]; b = vec [ 1; 2; 3 ] }) in
  let db = DB.apply_exn db (U.Terminate { oid = 2; tau = q 9 }) in
  let s = IO.db_to_string db in
  (match IO.db_of_string s with
   | Ok db' ->
     Alcotest.(check int) "dim" (DB.dim db) (DB.dim db');
     Alcotest.(check string) "tau" (Q.to_string (DB.last_update db)) (Q.to_string (DB.last_update db'));
     List.iter2
       (fun (o, tr) (o', tr') ->
         Alcotest.(check int) "oid" o o';
         Alcotest.(check bool) "trajectory equal" true (T.equal tr tr'))
       (DB.objects db) (DB.objects db')
   | Error e -> Alcotest.failf "parse failed: %s" e)

let test_io_updates_roundtrip () =
  let us =
    [ U.New { oid = 1; tau = q 1; a = vec [ 1; 0 ]; b = vecs [ "1/3"; "-5" ] };
      U.Chdir { oid = 1; tau = q 2; a = vec [ 0; -2 ] };
      U.Terminate { oid = 1; tau = q 3 };
    ]
  in
  match IO.updates_of_string (IO.updates_to_string ~dim:2 us) with
  | Ok us' ->
    Alcotest.(check int) "count" 3 (List.length us');
    List.iter2
      (fun u u' ->
        Alcotest.(check string) "update" (Format.asprintf "%a" U.pp u)
          (Format.asprintf "%a" U.pp u'))
      us us'
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_io_errors () =
  let check_err name s =
    match IO.db_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected parse error" name
  in
  check_err "empty" "";
  check_err "bad header" "nonsense 1 2\n";
  check_err "no pieces" "moddb 1 2 0\nobject 1\n";
  check_err "bad arity" "moddb 1 2 0\nobject 1\npiece 0 1 2 3\n";
  check_err "bad rational" "moddb 1 1 0\nobject 1\npiece zero 1 2\n";
  check_err "discontinuous" "moddb 1 1 0\nobject 1\npiece 0 1 0\npiece 1 1 5\n";
  check_err "empty vectors" "moddb 1 0 0\nobject 1\npiece 0\n";
  check_err "duplicate piece start" "moddb 1 1 0\nobject 1\npiece 0 1 0\npiece 0 1 0\n";
  check_err "out-of-order piece start" "moddb 1 1 0\nobject 1\npiece 3 1 3\npiece 1 1 1\n"

(* Random update sequences keep trajectories continuous and clock monotone. *)
let arb_update_seq =
  let open QCheck in
  list_of_size (Gen.int_range 1 60)
    (triple (int_range 0 5) (int_range 1 8) (pair (int_range (-9) 9) (int_range (-9) 9)))

(* Interpret a random op list as a chronological update stream; returns the
   resulting database and the accepted updates, oldest first. *)
let replay_ops ops =
  let db = ref (DB.empty ~dim:2 ~tau:(q 0)) in
  let accepted = ref [] in
  let time = ref 0 in
  List.iter
    (fun (kind, o, (ax, ay)) ->
      incr time;
      let tau = q !time in
      let u =
        if kind <= 2 || not (DB.mem !db o) then
          U.New { oid = o + (!time * 100); tau; a = vec [ ax; ay ]; b = vec [ 0; 0 ] }
        else if kind = 3 then U.Terminate { oid = o; tau }
        else U.Chdir { oid = o; tau; a = vec [ ax; ay ] }
      in
      match DB.apply !db u with
      | Ok db' ->
        db := db';
        accepted := u :: !accepted
      | Error _ -> ())
    ops;
  (!db, List.rev !accepted)

let prop_updates_continuous =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random updates: continuity & monotone clock" arb_update_seq
       (fun ops ->
         let db, _ = replay_ops ops in
         List.for_all
           (fun (_, tr) ->
             (* each coordinate curve must be continuous *)
             List.for_all (fun i -> Moq_poly.Piecewise.Qpiece.is_continuous (T.coord tr i)) [ 0; 1 ])
           (DB.objects db)
         && Q.compare (DB.last_update db) (q 0) >= 0))

let db_equal a b =
  DB.dim a = DB.dim b
  && Q.compare (DB.last_update a) (DB.last_update b) = 0
  && List.length (DB.objects a) = List.length (DB.objects b)
  && List.for_all2
       (fun (o, tr) (o', tr') -> o = o' && T.equal tr tr')
       (DB.objects a) (DB.objects b)

let prop_db_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random db: db_to_string/db_of_string roundtrip"
       arb_update_seq
       (fun ops ->
         let db, _ = replay_ops ops in
         match IO.db_of_string (IO.db_to_string db) with
         | Ok db' -> db_equal db db'
         | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e))

let prop_updates_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random updates: serialization roundtrip" arb_update_seq
       (fun ops ->
         let _, us = replay_ops ops in
         let pp u = Format.asprintf "%a" U.pp u in
         (* batch format *)
         (match IO.updates_of_string (IO.updates_to_string ~dim:2 us) with
          | Ok us' -> List.map pp us = List.map pp us'
          | Error e -> QCheck.Test.fail_reportf "batch parse failed: %s" e)
         (* single-line codec, as used by the write-ahead log *)
         && List.for_all
              (fun u ->
                match IO.update_of_line ~dim:2 (IO.update_to_line u) with
                | Ok u' -> pp u = pp u'
                | Error e -> QCheck.Test.fail_reportf "line parse failed: %s" e)
              us))

let () =
  Alcotest.run "mod"
    [ ("trajectory", [
        Alcotest.test_case "example 1 positions" `Quick test_example1_positions;
        Alcotest.test_case "example 2 chdir" `Quick test_example2_chdir;
        Alcotest.test_case "terminate" `Quick test_terminate;
        Alcotest.test_case "chdir continuity" `Quick test_chdir_continuity;
        Alcotest.test_case "coord piecewise" `Quick test_coord_piecewise;
        Alcotest.test_case "discontinuous rejected" `Quick test_discontinuous_rejected;
        Alcotest.test_case "stationary" `Quick test_stationary;
      ]);
      ("mobdb", [
        Alcotest.test_case "updates" `Quick test_mod_updates;
        Alcotest.test_case "error cases" `Quick test_mod_errors;
        Alcotest.test_case "example 2 via updates" `Quick test_example2_via_updates;
        prop_updates_continuous;
      ]);
      ("serialization", [
        Alcotest.test_case "db roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "updates roundtrip" `Quick test_io_updates_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_io_errors;
        prop_db_roundtrip;
        prop_updates_roundtrip;
      ]);
    ]
