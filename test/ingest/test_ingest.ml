module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update
module Ingest = Moq_ingest.Ingest

let q = Q.of_int
let qs = Q.of_string
let v2 x y = Qvec.of_list [ x; y ]
let s oid t pos = { Ingest.oid; t; pos }

let apply updates =
  let tau =
    match updates with [] -> Q.zero | u :: _ -> Q.sub (U.time u) Q.one
  in
  DB.apply_all_exn (DB.empty ~dim:2 ~tau) updates

let check_q name expected got =
  Alcotest.(check string) name (Q.to_string expected) (Q.to_string got)

let check_pos name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %s got %s" name
       (String.concat "," (List.map Q.to_string (Qvec.to_list expected)))
       (String.concat "," (List.map Q.to_string (Qvec.to_list got))))
    true (Qvec.equal expected got)

(* ------------------------------------------------------------------ *)
(* Segmentation contract *)

(* Moving samples are passed through exactly: the reconstructed
   trajectory goes through every sample whose displacement clears the
   quantisation threshold. *)
let test_moving_exact () =
  let samples =
    [ s 1 (q 0) (v2 (q 0) (q 0));
      s 1 (q 1) (v2 (q 3) (q 4));
      s 1 (q 2) (v2 (q 3) (q 10));
      s 1 (q 5) (v2 (qs "-6") (q 10)) ]
  in
  let us = Ingest.segment samples in
  let db = apply us in
  let tr = Option.get (DB.find db 1) in
  List.iter
    (fun { Ingest.t; pos; _ } ->
      check_pos (Printf.sprintf "through sample at t=%s" (Q.to_string t))
        pos (T.position_exn tr t))
    samples;
  (* no spurious velocity changes between samples: the first leg is the
     straight line between its endpoints *)
  check_pos "midpoint of first leg" (v2 (qs "3/2") (q 2))
    (T.position_exn tr (qs "1/2"))

(* Sub-threshold jitter is absorbed: the object parks at its first
   position and never integrates the noise. *)
let test_jitter_absorbed () =
  let eps = qs "1/100" in
  let samples =
    [ s 7 (q 0) (v2 (q 5) (q 5));
      s 7 (q 1) (v2 (Q.add (q 5) eps) (q 5));
      s 7 (q 2) (v2 (q 5) (Q.sub (q 5) eps));
      s 7 (q 3) (v2 (Q.sub (q 5) eps) (Q.add (q 5) eps)) ]
  in
  let us = Ingest.segment samples in
  let db = apply us in
  let tr = Option.get (DB.find db 7) in
  List.iter
    (fun t -> check_pos "parked" (v2 (q 5) (q 5)) (T.position_exn tr t))
    [ q 0; q 1; q 2; q 3 ];
  let st = Ingest.segment_stats samples in
  Alcotest.(check int) "no moving segments" 0 st.Ingest.moving_segments;
  Alcotest.(check int) "three stationary segments" 3
    st.Ingest.stationary_segments

(* The same displacement above the threshold moves; drift never exceeds
   quant because each moving leg re-aims at the true sample. *)
let test_threshold_boundary () =
  let quant = q 1 in
  let below = [ s 1 (q 0) (v2 (q 0) (q 0)); s 1 (q 1) (v2 (q 1) (q 0)) ] in
  let above =
    [ s 1 (q 0) (v2 (q 0) (q 0)); s 1 (q 1) (v2 (qs "101/100") (q 0)) ]
  in
  let stb = Ingest.segment_stats ~quant below in
  Alcotest.(check int) "displacement = quant parks" 0 stb.Ingest.moving_segments;
  let sta = Ingest.segment_stats ~quant above in
  Alcotest.(check int) "displacement > quant moves" 1 sta.Ingest.moving_segments;
  (* after parking once, the next moving leg starts from the *model*
     position (the park spot), not the noisy sample, and still lands
     exactly on the next sample *)
  let samples =
    [ s 1 (q 0) (v2 (q 0) (q 0));
      s 1 (q 1) (v2 (qs "1/2") (q 0));
      (* parked: model stays at origin *)
      s 1 (q 2) (v2 (q 4) (q 0)) ]
  in
  let db = apply (Ingest.segment ~quant samples) in
  let tr = Option.get (DB.find db 1) in
  check_pos "still parked at t=1" (v2 (q 0) (q 0)) (T.position_exn tr (q 1));
  check_pos "lands on sample at t=2" (v2 (q 4) (q 0)) (T.position_exn tr (q 2));
  (* the leg t=1..2 covers the whole distance from the park spot *)
  check_pos "re-aimed leg midpoint" (v2 (q 2) (q 0))
    (T.position_exn tr (qs "3/2"))

(* Equal-time samples across objects are serialized into strictly
   increasing update times the MOD accepts, and moving samples are still
   hit exactly. *)
let test_collision_serialization () =
  let samples =
    List.concat_map
      (fun oid ->
        [ s oid (q 0) (v2 (q oid) (q 0));
          s oid (q 10) (v2 (q oid) (q 10));
          s oid (q 20) (v2 (q (oid + 5)) (q 10)) ])
      [ 1; 2; 3; 4 ]
  in
  let us = Ingest.segment samples in
  (* strictly increasing times *)
  let rec check_mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "strictly increasing: %s < %s"
             (Q.to_string (U.time a)) (Q.to_string (U.time b)))
          true
          (Q.compare (U.time a) (U.time b) < 0);
        check_mono rest
    | _ -> ()
  in
  check_mono us;
  let db = apply us in
  Alcotest.(check int) "all four objects live" 4 (DB.cardinal db);
  (* deferred moving events are re-aimed: every non-final sample is hit
     exactly despite the serialization *)
  List.iter
    (fun oid ->
      let tr = Option.get (DB.find db oid) in
      check_pos "sample t=10 exact" (v2 (q oid) (q 10))
        (T.position_exn tr (q 10));
      check_pos "sample t=20 exact" (v2 (q (oid + 5)) (q 10))
        (T.position_exn tr (q 20)))
    [ 1; 2; 3; 4 ]

let test_lone_sample_and_terminate () =
  let us = Ingest.segment [ s 9 (q 4) (v2 (q 1) (q 2)) ] in
  let db = apply us in
  let tr = Option.get (DB.find db 9) in
  check_pos "lone sample parks" (v2 (q 1) (q 2)) (T.position_exn tr (q 100));
  let samples =
    [ s 1 (q 0) (v2 (q 0) (q 0)); s 1 (q 2) (v2 (q 8) (q 0)) ]
  in
  (match List.rev (Ingest.segment samples) with
  | U.Chdir { a; tau; _ } :: _ ->
      check_q "parking chdir at last sample" (q 2) tau;
      Alcotest.(check bool) "velocity zero" true
        (List.for_all (fun c -> Q.equal c Q.zero) (Qvec.to_list a))
  | _ -> Alcotest.fail "default tail must be a parking Chdir");
  (match List.rev (Ingest.segment ~terminate:true samples) with
  | U.Terminate { tau; _ } :: _ -> check_q "terminate at last sample" (q 2) tau
  | _ -> Alcotest.fail "terminate:true tail must be a Terminate")

let test_duplicate_and_order () =
  (* rows may arrive in any order; an object+time repeat keeps the first *)
  let shuffled =
    [ s 1 (q 2) (v2 (q 6) (q 0));
      s 1 (q 0) (v2 (q 0) (q 0));
      s 1 (q 1) (v2 (q 3) (q 0));
      s 1 (q 1) (v2 (q 99) (q 99)) ]
  in
  let db = apply (Ingest.segment shuffled) in
  let tr = Option.get (DB.find db 1) in
  check_pos "first occurrence wins" (v2 (q 3) (q 0)) (T.position_exn tr (q 1));
  check_pos "sorted before segmenting" (v2 (q 6) (q 0))
    (T.position_exn tr (q 2))

(* ------------------------------------------------------------------ *)
(* CSV parsing *)

let test_parse_line () =
  let ok = function Ok x -> x | Error e -> Alcotest.fail e in
  Alcotest.(check bool) "blank" true (ok (Ingest.parse_line ~dim:2 "  ") = None);
  Alcotest.(check bool) "comment" true
    (ok (Ingest.parse_line ~dim:2 "# comment") = None);
  Alcotest.(check bool) "header" true
    (ok (Ingest.parse_line ~dim:2 "oid,t,x,y") = None);
  (match ok (Ingest.parse_line ~dim:2 "3, 7/2, 1.5, -2") with
  | Some { Ingest.oid; t; pos } ->
      Alcotest.(check int) "oid" 3 oid;
      check_q "rational time" (qs "7/2") t;
      check_pos "decimal + negative coords" (v2 (qs "3/2") (qs "-2")) pos
  | None -> Alcotest.fail "expected a sample");
  (match Ingest.parse_line ~dim:2 "3,1,2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong arity must fail");
  (match Ingest.parse_line ~dim:2 "x,1,2,3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer oid must fail");
  (match Ingest.parse_line ~dim:2 "1,zzz,2,3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad time must fail")

let test_parse_csv_errors () =
  match Ingest.parse_csv "oid,t,x,y\n1,0,0,0\n\n1,1,bogus,0\n" with
  | Ok _ -> Alcotest.fail "bad row must fail"
  | Error e ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error cites line 4: %s" e)
        true (contains e "line 4")

let test_csv_roundtrip () =
  let csv =
    "oid,t,x,y\n\
     # two objects, one parked\n\
     1,0,0,0\n\
     1,1,10,0\n\
     1,2,10,10\n\
     2,0,50,50\n\
     2,1,50.01,50\n\
     2,2,50,50.01\n"
  in
  match Ingest.csv_to_updates csv with
  | Error e -> Alcotest.fail e
  | Ok (us, st) ->
      Alcotest.(check int) "samples" 6 st.Ingest.samples;
      Alcotest.(check int) "objects" 2 st.Ingest.objects;
      Alcotest.(check int) "updates" (List.length us) st.Ingest.updates;
      Alcotest.(check int) "moving" 2 st.Ingest.moving_segments;
      Alcotest.(check int) "stationary" 2 st.Ingest.stationary_segments;
      let db = apply us in
      let tr1 = Option.get (DB.find db 1) in
      check_pos "o1 corner" (v2 (q 10) (q 0)) (T.position_exn tr1 (q 1));
      check_pos "o1 end" (v2 (q 10) (q 10)) (T.position_exn tr1 (q 2));
      let tr2 = Option.get (DB.find db 2) in
      check_pos "o2 parked through jitter" (v2 (q 50) (q 50))
        (T.position_exn tr2 (q 2))

(* Property: for a single-object trace (no collision groups, so no
   serialization slack), segmentation at quant 0 followed by MOD
   reconstruction passes through every sample exactly. *)
let prop_roundtrip =
  let gen =
    QCheck.make
      ~print:(fun (seed, steps) -> Printf.sprintf "seed=%d steps=%d" seed steps)
      QCheck.Gen.(pair (int_bound 1000) (int_range 4 12))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"segment passes through every sample" gen
       (fun (seed, steps) ->
         let module Gen = Moq_workload.Gen in
         let rows = Gen.trace_like ~seed ~n:1 ~steps () in
         let samples =
           List.map (fun (oid, t, pos) -> { Ingest.oid; t; pos }) rows
         in
         let us = Ingest.segment ~quant:Q.zero samples in
         let db = apply us in
         List.for_all
           (fun { Ingest.oid; t; pos } ->
             match DB.find db oid with
             | None -> false
             | Some tr -> Qvec.equal pos (T.position_exn tr t))
           samples))

let () =
  Alcotest.run "ingest"
    [ ("segment", [
        Alcotest.test_case "moving samples hit exactly" `Quick test_moving_exact;
        Alcotest.test_case "sub-threshold jitter absorbed" `Quick
          test_jitter_absorbed;
        Alcotest.test_case "threshold boundary + re-aim" `Quick
          test_threshold_boundary;
        Alcotest.test_case "equal-time collision groups serialized" `Quick
          test_collision_serialization;
        Alcotest.test_case "lone sample / terminate tail" `Quick
          test_lone_sample_and_terminate;
        Alcotest.test_case "row order and duplicates" `Quick
          test_duplicate_and_order;
        prop_roundtrip;
      ]);
      ("csv", [
        Alcotest.test_case "parse_line accepts and rejects" `Quick
          test_parse_line;
        Alcotest.test_case "parse errors cite line numbers" `Quick
          test_parse_csv_errors;
        Alcotest.test_case "csv -> updates roundtrip" `Quick test_csv_roundtrip;
      ]);
    ]
