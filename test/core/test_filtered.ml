(* Filtered backend ≡ Exact backend, on hundreds of seeded workloads.

   The filtered backend answers from float intervals when they are
   conclusive and falls back to exact arithmetic otherwise, so its event
   sequence, final order and support sets must be bit-identical to the
   exact backend's — including on the engineered tangency, near-tangency
   and simultaneous-crossing workloads where a bare float backend guesses
   wrong.  Also checks the filter's own accounting: hits + misses equals
   the number of filtered decisions. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module Oid = Moq_mod.Oid
module A = Moq_poly.Algnum
module Core = Moq_core
module BX = Core.Backend.Exact
module BFl = Core.Backend.Filtered
module KnnX = Core.Knn.Make (BX)
module KnnFl = Core.Knn.Make (BFl)
module Gdist = Core.Gdist
module Gen = Moq_workload.Gen
module Sink = Moq_obs.Sink
module Registry = Moq_obs.Registry

let q = Q.of_int
let origin dim = T.linear ~start:(q 0) ~a:(Qvec.zero dim) ~b:(Qvec.zero dim)

(* Normalized timeline pieces, instants as exact algebraic numbers. *)
type npiece =
  | NSpan of A.t * A.t * int list
  | NAt of A.t * int list

let norm_exact (tl : KnnX.TL.t) =
  List.map
    (function
      | KnnX.TL.Span (a, b, s) -> NSpan (a, b, Oid.Set.elements s)
      | KnnX.TL.At (a, s) -> NAt (a, Oid.Set.elements s))
    tl

let norm_filtered (tl : KnnFl.TL.t) =
  List.map
    (function
      | KnnFl.TL.Span (a, b, s) ->
        NSpan (BFl.to_algnum a, BFl.to_algnum b, Oid.Set.elements s)
      | KnnFl.TL.At (a, s) -> NAt (BFl.to_algnum a, Oid.Set.elements s))
    tl

let npiece_equal p p' =
  match p, p' with
  | NSpan (a, b, s), NSpan (a', b', s') ->
    A.compare a a' = 0 && A.compare b b' = 0 && s = s'
  | NAt (a, s), NAt (a', s') -> A.compare a a' = 0 && s = s'
  | _ -> false

let pp_npiece fmt = function
  | NSpan (a, b, s) ->
    Format.fprintf fmt "span(%a,%a):{%a}" A.pp a A.pp b
      Format.(pp_print_list ~pp_sep:(fun f () -> pp_print_string f ",") pp_print_int)
      s
  | NAt (a, s) ->
    Format.fprintf fmt "at(%a):{%a}" A.pp a
      Format.(pp_print_list ~pp_sep:(fun f () -> pp_print_string f ",") pp_print_int)
      s

(* One workload, checked end to end: timelines (event sequence + support
   sets per span/instant), sweep statistics, and the final engine order. *)
let check_workload name ~db ~gdist ~k ~lo ~hi =
  let rx = KnnX.run_obs ~sink:Sink.noop ~db ~gdist ~k ~lo ~hi in
  let rf = KnnFl.run_obs ~sink:Sink.noop ~db ~gdist ~k ~lo ~hi in
  let nx = norm_exact rx.KnnX.timeline and nf = norm_filtered rf.KnnFl.timeline in
  if List.length nx <> List.length nf then
    Alcotest.failf "%s: piece counts differ (exact %d, filtered %d)" name (List.length nx)
      (List.length nf);
  List.iteri
    (fun i (px, pf) ->
      if not (npiece_equal px pf) then
        Alcotest.failf "%s: piece %d differs: exact %a, filtered %a" name i pp_npiece px
          pp_npiece pf)
    (List.combine nx nf);
  let sx = rx.KnnX.stats and sf = rf.KnnFl.stats in
  if
    sx.KnnX.E.crossings <> sf.KnnFl.E.crossings
    || sx.KnnX.E.swaps <> sf.KnnFl.E.swaps
    || sx.KnnX.E.births <> sf.KnnFl.E.births
    || sx.KnnX.E.deaths <> sf.KnnFl.E.deaths
    || sx.KnnX.E.batches <> sf.KnnFl.E.batches
  then
    Alcotest.failf "%s: sweep stats differ (exact %d/%d/%d/%d/%d, filtered %d/%d/%d/%d/%d)"
      name sx.KnnX.E.crossings sx.KnnX.E.swaps sx.KnnX.E.births sx.KnnX.E.deaths
      sx.KnnX.E.batches sf.KnnFl.E.crossings sf.KnnFl.E.swaps sf.KnnFl.E.births
      sf.KnnFl.E.deaths sf.KnnFl.E.batches;
  (* Final order via fresh engines advanced to the horizon. *)
  let engx = KnnX.engine ~db ~gdist ~lo ~hi () in
  KnnX.E.advance engx ~upto:hi ~emit:(fun _ -> ());
  let engf = KnnFl.engine ~db ~gdist ~lo ~hi () in
  KnnFl.E.advance engf ~upto:hi ~emit:(fun _ -> ());
  let ox =
    List.map (fun e -> Format.asprintf "%a" KnnX.E.pp_label (KnnX.E.label e)) (KnnX.E.order engx)
  in
  let off =
    List.map
      (fun e -> Format.asprintf "%a" KnnFl.E.pp_label (KnnFl.E.label e))
      (KnnFl.E.order engf)
  in
  Alcotest.(check (list string)) (name ^ ": final order") ox off

let euclid_origin = Gdist.euclidean_sq ~gamma:(origin 2)
let coord0 = Gdist.coordinate 0

(* >= 200 seeded workloads across four families; counter bookkeeping is
   asserted over the whole batch. *)
let test_filtered_equals_exact () =
  BFl.reset_filter_stats ();
  for seed = 1 to 100 do
    let db = Gen.inversions_db ~seed ~n:8 ~inversions:16 ~horizon:(q 50) in
    check_workload
      (Printf.sprintf "inversions seed %d" seed)
      ~db ~gdist:coord0 ~k:2 ~lo:(q 0) ~hi:(q 50)
  done;
  for seed = 1 to 60 do
    let db = Gen.uniform_db ~seed ~n:6 ~dim:2 ~extent:40 ~speed:4 () in
    check_workload
      (Printf.sprintf "uniform seed %d" seed)
      ~db ~gdist:euclid_origin ~k:2 ~lo:(q 0) ~hi:(q 25)
  done;
  for seed = 1 to 20 do
    let db = Gen.tangency_db ~seed ~n:8 () in
    check_workload
      (Printf.sprintf "tangency seed %d" seed)
      ~db ~gdist:euclid_origin ~k:3 ~lo:(q 0) ~hi:(q 20)
  done;
  for seed = 1 to 20 do
    let db = Gen.pencil_db ~seed ~n:7 ~at:(q 5) () in
    check_workload
      (Printf.sprintf "pencil seed %d" seed)
      ~db ~gdist:coord0 ~k:2 ~lo:(q 0) ~hi:(q 10)
  done;
  let s = BFl.filter_stats () in
  Alcotest.(check int) "hits + misses = decisions" s.BFl.decisions (s.BFl.hits + s.BFl.misses);
  Alcotest.(check bool) "made decisions" true (s.BFl.decisions > 0);
  Alcotest.(check bool) "some hits" true (s.BFl.hits > 0);
  Alcotest.(check bool) "some misses (degenerate cases fell back)" true (s.BFl.misses > 0)

(* The counters survive the sink round-trip with the documented names. *)
let test_publish () =
  BFl.reset_filter_stats ();
  let db = Gen.uniform_db ~seed:7 ~n:5 ~dim:2 ~extent:30 ~speed:3 () in
  let (_ : KnnFl.result) =
    KnnFl.run_obs ~sink:Sink.noop ~db ~gdist:euclid_origin ~k:2 ~lo:(q 0) ~hi:(q 20)
  in
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  BFl.publish sink;
  let s = BFl.filter_stats () in
  Alcotest.(check (option int)) "hit counter" (Some s.BFl.hits)
    (Registry.counter_value reg "moq_filter_hit");
  Alcotest.(check (option int)) "miss counter" (Some s.BFl.misses)
    (Registry.counter_value reg "moq_filter_miss");
  Alcotest.(check bool) "fallback_ns present" true
    (Registry.counter_value reg "moq_filter_fallback_ns" <> None)

(* Tangency workloads must make the filter fall back: an exact tangency
   cannot be decided by outward-rounded intervals. *)
let test_tangency_forces_fallback () =
  BFl.reset_filter_stats ();
  let db = Gen.tangency_db ~seed:3 ~n:6 () in
  let (_ : KnnFl.result) =
    KnnFl.run_obs ~sink:Sink.noop ~db ~gdist:euclid_origin ~k:2 ~lo:(q 0) ~hi:(q 10)
  in
  let s = BFl.filter_stats () in
  Alcotest.(check bool) "tangencies fell back" true (s.BFl.misses > 0)

let () =
  Alcotest.run "filtered-backend"
    [
      ( "filtered-vs-exact",
        [
          Alcotest.test_case "≥200 seeded workloads identical" `Slow
            test_filtered_equals_exact;
          Alcotest.test_case "publish counter names" `Quick test_publish;
          Alcotest.test_case "tangency forces exact fallback" `Quick
            test_tangency_forces_fallback;
        ] );
    ]
