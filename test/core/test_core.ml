module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module QP = Moq_poly.Qpoly
module Qpiece = Moq_poly.Piecewise.Qpiece
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid

module Core = Moq_core
module BX = Core.Backend.Exact
module BF = Core.Backend.Approx
module EX = Core.Engine.Make (BX)
module SwX = Core.Sweep.Make (BX)
module TLX = SwX.TL
module KnnX = Core.Knn.Make (BX)
module RangeX = Core.Range_query.Make (BX)
module MonX = Core.Monitor.Make (BX)
module KnnF = Core.Knn.Make (BF)
module Fof = Core.Fof
module Gdist = Core.Gdist
module Classify = Core.Classify

let q = Q.of_int
let qs = Q.of_string
let vec l = Qvec.of_list (List.map Q.of_int l)
let poly l = QP.of_list (List.map Q.of_int l)
let qpoly l = QP.of_list (List.map Q.of_string l)
let set l = Oid.Set.of_list l

let check_set msg expected actual =
  Alcotest.(check (list int)) msg (List.sort compare expected) (Oid.Set.elements actual)

let prop ?(count = 60) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Engine basics: two lines crossing                                    *)
(* ------------------------------------------------------------------ *)

let line ~start a b = Qpiece.of_poly ~start (qpoly [ b; a ])
(* curve a*t + b from [start] *)

let test_engine_two_lines () =
  (* o1 = 10 - t/2, o2 = 2 + t/2: cross at t = 8 *)
  let c1 = line ~start:(q 0) "-1/2" "10" and c2 = line ~start:(q 0) "1/2" "2" in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 20)
      [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ]
  in
  Alcotest.(check int) "o2 first" 0
    (match EX.order eng with
     | [ a; _ ] -> (match EX.label a with EX.Obj (2, 0) -> 0 | _ -> 1)
     | _ -> 2);
  let points = ref [] in
  EX.advance eng ~upto:(q 20) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  Alcotest.(check (list (float 1e-9))) "one crossing at 8" [ 8.0 ] (List.rev !points);
  Alcotest.(check int) "o1 now first" 0
    (match EX.order eng with
     | [ a; _ ] -> (match EX.label a with EX.Obj (1, 0) -> 0 | _ -> 1)
     | _ -> 2);
  Alcotest.(check int) "one swap" 1 (EX.stats eng).EX.swaps;
  EX.check_invariants eng

let test_engine_touching_curves () =
  (* o1 = (t-5)^2 + 1 touches o2 = 1 at t=5 without crossing *)
  let c1 = Qpiece.of_poly ~start:(q 0) (poly [ 26; -10; 1 ]) in
  let c2 = Qpiece.constant ~start:(q 0) (q 1) in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 10) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ]
  in
  let points = ref [] in
  EX.advance eng ~upto:(q 10) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  Alcotest.(check (list (float 1e-9))) "touch event at 5" [ 5.0 ] (List.rev !points);
  Alcotest.(check int) "no swap" 0 (EX.stats eng).EX.swaps;
  EX.check_invariants eng

let test_engine_irrational_crossing () =
  (* o1 = t^2, o2 = 2: cross at sqrt 2 (irrational, exact backend) *)
  let c1 = Qpiece.of_poly ~start:(q 0) (poly [ 0; 0; 1 ]) in
  let c2 = Qpiece.constant ~start:(q 0) (q 2) in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 10) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ]
  in
  let points = ref [] in
  EX.advance eng ~upto:(q 10) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  (match !points with
   | [ p ] -> Alcotest.(check (float 1e-9)) "sqrt 2" (sqrt 2.0) p
   | _ -> Alcotest.fail "expected exactly one event");
  EX.check_invariants eng

let test_engine_simultaneous_crossings () =
  (* three lines all meeting at t = 5: order reverses *)
  let c1 = line ~start:(q 0) "1" "0" (* t *) in
  let c2 = Qpiece.constant ~start:(q 0) (q 5) in
  let c3 = line ~start:(q 0) "-1" "10" (* 10 - t *) in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 10)
      [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2); (EX.Obj (3, 0), c3) ]
  in
  let labels () =
    List.map (fun e -> match EX.label e with EX.Obj (o, _) -> o | _ -> -1) (EX.order eng)
  in
  Alcotest.(check (list int)) "initial order" [ 1; 2; 3 ] (labels ());
  EX.advance eng ~upto:(q 10) ~emit:(fun _ -> ());
  Alcotest.(check (list int)) "reversed" [ 3; 2; 1 ] (labels ());
  Alcotest.(check int) "one batch" 1 (EX.stats eng).EX.batches;
  EX.check_invariants eng

let test_engine_birth_death () =
  (* o1 on [0,20]; o2 lives on [5, 12] below o1 *)
  let c1 = Qpiece.constant ~start:(q 0) (q 10) in
  let c2 = Qpiece.make ~stop:(q 12) [ (q 5, poly [ 3 ]) ] in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 20) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ]
  in
  Alcotest.(check int) "one alive at start" 1 (EX.size eng);
  EX.advance eng ~upto:(q 8) ~emit:(fun _ -> ());
  Alcotest.(check int) "two alive at 8" 2 (EX.size eng);
  Alcotest.(check int) "o2 first" 0 (EX.rank_of eng (Option.get (EX.find eng (EX.Obj (2, 0)))));
  EX.advance eng ~upto:(q 20) ~emit:(fun _ -> ());
  Alcotest.(check int) "one alive after death" 1 (EX.size eng);
  let s = EX.stats eng in
  Alcotest.(check int) "births" 1 s.EX.births;
  Alcotest.(check int) "deaths" 1 s.EX.deaths;
  EX.check_invariants eng

(* ------------------------------------------------------------------ *)
(* Figure 2: updates redirect expected crossings                        *)
(* ------------------------------------------------------------------ *)

let test_figure2 () =
  (* o2 closer; curves expected to cross at D = 8.  chdir on o1 at A = 3
     cancels it; chdir on o2 at B = 5 re-creates it earlier, at C = 7. *)
  let c1 = line ~start:(q 0) "-1/2" "10" and c2 = line ~start:(q 0) "1/2" "2" in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 20) [ (EX.Obj (1, 0), c1); (EX.Obj (2, 0), c2) ]
  in
  let points = ref [] in
  let emit = function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ()
  in
  (* update at A = 3: o1 turns away -- slope +1/2 from value 8.5 *)
  EX.advance eng ~upto:(q 3) ~emit;
  let c1' = Qpiece.extend_last_from c1 (q 3) (qpoly [ "7"; "1/2" ]) () in
  (* 7 + t/2 passes through (3, 8.5) *)
  EX.replace_curve eng ~at:(q 3) (EX.Obj (1, 0)) c1';
  Alcotest.(check (list (float 1e-9))) "no event before A" [] (List.rev !points);
  (* update at B = 5: o2 accelerates upward -- slope 3 from value 4.5 *)
  EX.advance eng ~upto:(q 5) ~emit;
  let c2' = Qpiece.extend_last_from c2 (q 5) (qpoly [ "-21/2"; "3" ]) () in
  (* 3t - 10.5 passes through (5, 4.5) *)
  EX.replace_curve eng ~at:(q 5) (EX.Obj (2, 0)) c2';
  EX.advance eng ~upto:(q 20) ~emit;
  Alcotest.(check (list (float 1e-9))) "crossing at C = 7 only" [ 7.0 ] (List.rev !points);
  Alcotest.(check int) "o1 closer after C" 0
    (EX.rank_of eng (Option.get (EX.find eng (EX.Obj (1, 0)))));
  EX.check_invariants eng

(* ------------------------------------------------------------------ *)
(* Example 12 / Figure 3: 2-NN with four objects                        *)
(* ------------------------------------------------------------------ *)

(* Curves engineered to the paper's event times (see DESIGN.md, F3):
   o3(t) = 10
   o4(t) = 10 - (t-8)(t-17)/34                 (crosses o3 at 8 and 17)
   o2(t) = 14 - 4t/31                          (crosses o3 at 31)
   o1: 20 - 113t/155 until 12, then slope -97/930 (crosses o2 at 10,
       heading to cross o3 at 24); chdir at 20 to slope -97/465 crosses
       o3 at 22 instead. *)
let example12_curves () =
  let o3 = Qpiece.constant ~start:(q 0) (q 10) in
  let o4 =
    (* 10 - (t^2 - 25t + 136)/34 = -t^2/34 + 25t/34 + (340-136)/34 *)
    Qpiece.of_poly ~start:(q 0) (qpoly [ "204/34"; "25/34"; "-1/34" ])
  in
  let o2 = Qpiece.of_poly ~start:(q 0) (qpoly [ "14"; "-4/31" ]) in
  let o1 =
    Qpiece.make
      [ (q 0, qpoly [ "20"; "-113/155" ]);
        (q 12, qpoly [ "10" (* placeholder replaced below *); "0" ]);
      ]
  in
  ignore o1;
  (* piece 2 of o1: value 1744/155 at t=12, slope -97/930:
     p(t) = 1744/155 - 97/930 (t - 12) = 1744/155 + 97*12/930 - 97t/930 *)
  let o1 =
    Qpiece.make
      [ (q 0, qpoly [ "20"; "-113/155" ]);
        (q 12, QP.add (qpoly [ "1744/155" ]) (QP.mul (qpoly [ "-97/930" ]) (qpoly [ "-12"; "1" ])));
      ]
  in
  (o1, o2, o3, o4)

let o1_after_chdir o1 =
  (* from (20, 4844/465) with slope -97/465: crosses o3 = 10 at t = 22 *)
  Qpiece.extend_last_from o1 (q 20)
    (QP.add (qpoly [ "4844/465" ]) (QP.mul (qpoly [ "-97/465" ]) (qpoly [ "-20"; "1" ])))
    ()

let test_example12_trace () =
  let o1, o2, o3, o4 = example12_curves () in
  Alcotest.(check bool) "o1 continuous" true (Qpiece.is_continuous o1);
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 40)
      [ (EX.Obj (1, 0), o1); (EX.Obj (2, 0), o2); (EX.Obj (3, 0), o3); (EX.Obj (4, 0), o4) ]
  in
  let labels () =
    List.map (fun e -> match EX.label e with EX.Obj (o, _) -> o | _ -> -1) (EX.order eng)
  in
  (* paper: "the ordering is o4 < o3 < o2 < o1" *)
  Alcotest.(check (list int)) "initial order" [ 4; 3; 2; 1 ] (labels ());
  let twonn () = KnnX.answer_span eng 2 in
  check_set "answer up to current time 3 is {o3, o4}" [ 3; 4 ] (twonn ());
  let points = ref [] in
  let emit = function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ()
  in
  (* "We will process all events before 20 and then perform the update" *)
  EX.advance eng ~upto:(q 20) ~emit;
  Alcotest.(check (list (float 1e-9))) "events 8, 10, 17" [ 8.0; 10.0; 17.0 ] (List.rev !points);
  Alcotest.(check (list int)) "order after 17" [ 4; 3; 1; 2 ] (labels ());
  check_set "2-NN after 17" [ 3; 4 ] (twonn ());
  (* update: chdir on o1; the crossing expected at 24 moves earlier, to 22 *)
  EX.replace_curve eng ~at:(q 20) (EX.Obj (1, 0)) (o1_after_chdir o1);
  points := [];
  EX.advance eng ~upto:(q 40) ~emit;
  Alcotest.(check (list (float 1e-9))) "then 22 (moved from 24), 31" [ 22.0; 31.0 ]
    (List.rev !points);
  Alcotest.(check (list int)) "final order" [ 4; 1; 2; 3 ] (labels ());
  check_set "final 2-NN is {o4, o1}" [ 1; 4 ] (twonn ());
  EX.check_invariants eng

let test_example12_without_update () =
  (* without the chdir, the o1/o3 crossing happens at 24 as initially
     expected *)
  let o1, o2, o3, o4 = example12_curves () in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 40)
      [ (EX.Obj (1, 0), o1); (EX.Obj (2, 0), o2); (EX.Obj (3, 0), o3); (EX.Obj (4, 0), o4) ]
  in
  let points = ref [] in
  EX.advance eng ~upto:(q 40) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  Alcotest.(check (list (float 1e-9))) "events" [ 8.0; 10.0; 17.0; 24.0; 31.0 ]
    (List.rev !points)

(* ------------------------------------------------------------------ *)
(* Past sweep (generic FO(f)) on trajectories                           *)
(* ------------------------------------------------------------------ *)

(* 1-d MOD: objects move on a line; the query object sits at the origin. *)
let line_db specs =
  (* specs: (oid, x0 : Q.t, v : Q.t) *)
  let db = DB.empty ~dim:1 ~tau:(q 0) in
  List.fold_left
    (fun db (o, x0, v) ->
      DB.add_initial db o
        (T.linear ~start:(q 0) ~a:(Qvec.of_list [ v ]) ~b:(Qvec.of_list [ x0 ])))
    db specs

let origin_gdist () = Gdist.distance_sq_to_point (vec [ 0 ])

let test_sweep_nearest () =
  (* o1 at 1 moving away (v=1); o2 at 10 moving in (v=-1).
     d1 = (1+t)^2, d2 = (10-t)^2: equal when 1+t = 10-t -> t = 4.5 *)
  let db = line_db [ (1, q 1, q 1); (2, q 10, q (-1)) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 8)) in
  let r = SwX.run ~db ~gdist:(origin_gdist ()) ~query in
  (match r.SwX.timeline with
   | [ TLX.At (_, s0); TLX.Span (_, _, s1); TLX.At (m, s2); TLX.Span (_, _, s3); TLX.At (_, s4) ] ->
     check_set "start" [ 1 ] s0;
     check_set "before crossing" [ 1 ] s1;
     Alcotest.(check (float 1e-9)) "crossing at 4.5" 4.5 (BX.instant_to_float m);
     check_set "tie at crossing" [ 1; 2 ] s2;
     check_set "after" [ 2 ] s3;
     check_set "end" [ 2 ] s4
   | tl -> Alcotest.failf "unexpected timeline shape (%d pieces)" (List.length tl));
  Alcotest.(check int) "one support change" 1 r.SwX.support_changes

let test_sweep_existential_universal () =
  let db = line_db [ (1, q 1, q 1); (2, q 10, q (-1)) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 8)) in
  let r = SwX.run ~db ~gdist:(origin_gdist ()) ~query in
  check_set "existential = both" [ 1; 2 ] (TLX.existential r.SwX.timeline);
  check_set "universal = none" [] (TLX.universal r.SwX.timeline)

let test_sweep_universal_restricted () =
  let db = line_db [ (1, q 1, q 1); (2, q 10, q (-1)) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 4)) in
  let r = SwX.run ~db ~gdist:(origin_gdist ()) ~query in
  check_set "universal = o1" [ 1 ] (TLX.universal r.SwX.timeline)

let test_sweep_within () =
  (* objects within distance 5 of origin: d^2 <= 25 *)
  let db = line_db [ (1, q 1, q 1); (2, q 10, q (-1)) ] in
  let query = Fof.within_q ~bound:(q 25) ~interval:(Fof.Interval.closed (q 0) (q 8)) in
  let r = SwX.run ~db ~gdist:(origin_gdist ()) ~query in
  (* o1: (1+t)^2 <= 25 until t = 4; o2: (10-t)^2 <= 25 from t = 5 *)
  let at t = TLX.find_at r.SwX.timeline (BX.instant_of_scalar t) in
  check_set "t=2: o1" [ 1 ] (Option.get (at (q 2)));
  check_set "t=4: o1 on boundary" [ 1 ] (Option.get (at (q 4)));
  check_set "t=4.5: none" [] (Option.get (at (qs "9/2")));
  check_set "t=6: o2" [ 2 ] (Option.get (at (q 6)));
  (* specialized operator agrees *)
  let rr = RangeX.run ~db ~gdist:(origin_gdist ()) ~bound:(q 25) ~lo:(q 0) ~hi:(q 8) in
  List.iter
    (fun t ->
      let a = Option.get (TLX.find_at r.SwX.timeline (BX.instant_of_scalar t)) in
      let b = Option.get (TLX.find_at rr.RangeX.timeline (BX.instant_of_scalar t)) in
      check_set "range matches generic" (Oid.Set.elements a) b)
    [ q 1; q 3; q 4; qs "9/2"; q 5; q 7 ]

let test_sweep_with_time_term () =
  (* f(y, t+2): query about a shifted time -- o1 nearest when (1+(t+2))^2
     < (10-(t+2))^2, i.e. t+2 < 4.5, t < 2.5 *)
  let db = line_db [ (1, q 1, q 1); (2, q 10, q (-1)) ] in
  let tt = Fof.affine ~scale:Q.one ~offset:(q 2) in
  let query =
    { Fof.y = "y";
      interval = Fof.Interval.closed (q 0) (q 6);
      phi = Fof.Forall ("z", Fof.Cmp (Fof.Le, Fof.Dist ("y", tt), Fof.Dist ("z", tt))) }
  in
  let r = SwX.run ~db ~gdist:(origin_gdist ()) ~query in
  let at t = Option.get (TLX.find_at r.SwX.timeline (BX.instant_of_scalar t)) in
  check_set "t=1" [ 1 ] (at (q 1));
  check_set "t=2.5 tie" [ 1; 2 ] (at (qs "5/2"));
  check_set "t=3" [ 2 ] (at (q 3))

(* ------------------------------------------------------------------ *)
(* k-NN operator vs. generic evaluation, random workloads               *)
(* ------------------------------------------------------------------ *)

let arb_specs =
  QCheck.list_of_size (QCheck.Gen.int_range 2 7)
    (QCheck.pair (QCheck.int_range (-20) 20) (QCheck.int_range (-3) 3))

let specs_to_db specs =
  List.mapi (fun i (x0, v) -> (i + 1, q x0, q v)) specs |> line_db

(* brute-force k-NN at rational time: sort by squared distance, take k with
   ties *)
let brute_knn specs k (t : Q.t) =
  let d (x0, v) =
    let open Q.Infix in
    let p = q x0 +/ (q v */ t) in
    p */ p
  in
  let ds = List.mapi (fun i s -> (i + 1, d s)) specs in
  let sorted = List.sort (fun (_, a) (_, b) -> Q.compare a b) ds in
  if List.length sorted <= k then set (List.map fst sorted)
  else begin
    let kth = snd (List.nth sorted (k - 1)) in
    set (List.map fst (List.filter (fun (_, d) -> Q.compare d kth <= 0) sorted))
  end

let knn_matches_brute (specs, k) =
  let k = 1 + (abs k mod 3) in
  let db = specs_to_db specs in
  let r = KnnX.run ~db ~gdist:(origin_gdist ()) ~k ~lo:(q 0) ~hi:(q 10) in
  (* check at a grid of sample times *)
  List.for_all
    (fun num ->
      let t = Q.div (q num) (q 4) in
      match TLX.find_at r.KnnX.timeline (BX.instant_of_scalar t) with
      | None -> false
      | Some answer ->
        let brute = brute_knn specs k t in
        (* on spans the answer has exactly k elements (ties broken); the
           brute answer includes all ties: sweep answer must be a subset
           with the same distance multiset, so compare by distances *)
        let dist o =
          let x0, v = List.nth specs (o - 1) in
          let open Q.Infix in
          let p = q x0 +/ (q v */ t) in
          p */ p
        in
        let dists s = List.sort Q.compare (List.map dist (Oid.Set.elements s)) in
        (match List.length (Oid.Set.elements answer) = min k (List.length specs) with
         | true ->
           let da = dists answer and db_ = dists brute in
           let rec prefix a b =
             match a, b with
             | [], _ -> true
             | x :: a', y :: b' -> Q.equal x y && prefix a' b'
             | _ -> false
           in
           prefix da db_
         | false -> Oid.Set.equal answer brute))
    (List.init 41 (fun i -> i))

let knn_exact_matches_float (specs, k) =
  let k = 1 + (abs k mod 3) in
  let db = specs_to_db specs in
  let rx = KnnX.run ~db ~gdist:(origin_gdist ()) ~k ~lo:(q 0) ~hi:(q 10) in
  let rf = KnnF.run ~db ~gdist:(origin_gdist ()) ~k ~lo:(q 0) ~hi:(q 10) in
  (* same number of support changes and same answers at integer times *)
  rx.KnnX.stats.KnnX.E.crossings = rf.KnnF.stats.KnnF.E.crossings
  && List.for_all
       (fun i ->
         let t = q i in
         match
           ( TLX.find_at rx.KnnX.timeline (BX.instant_of_scalar t),
             KnnF.TL.find_at rf.KnnF.timeline (BF.instant_of_scalar (Q.to_float t)) )
         with
         | Some a, Some b -> Oid.Set.equal a b
         | _ -> false)
       (* avoid integer times where ties might resolve differently in float:
          sample at thirds *)
       []
  |> fun base ->
  base
  && List.for_all
       (fun i ->
         let t = Q.div (q (3 * i + 1)) (q 3) in
         match
           ( TLX.find_at rx.KnnX.timeline (BX.instant_of_scalar t),
             KnnF.TL.find_at rf.KnnF.timeline (BF.instant_of_scalar (Q.to_float t)) )
         with
         | Some a, Some b -> Oid.Set.equal a b
         | _ -> false)
       (List.init 9 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Monitor: future queries with updates                                 *)
(* ------------------------------------------------------------------ *)

let test_monitor_basic () =
  (* query [0, 20]; db last update 0; updates arrive at 5 and 12 *)
  let db = line_db [ (1, q 1, q 1); (2, q 10, q (-1)) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 20)) in
  let m = MonX.create ~db ~gdist:(origin_gdist ()) ~query () in
  Alcotest.(check bool) "classified continuing/future" true
    (Classify.classify db query <> Classify.Past);
  (* before any update, nothing beyond time 0 is valid *)
  (* o2 turns around at 4 (before reaching the crossing at 4.5):
     chdir(2, 4, +1): o2 at 4 is 6, moving away again *)
  MonX.apply_update_exn m (U.Chdir { oid = 2; tau = q 4; a = vec [ 1 ] });
  (* now o1 stays nearest forever: finalize and check *)
  let tl = MonX.finalize m in
  let at t = Option.get (MonX.TL.find_at tl (BX.instant_of_scalar t)) in
  check_set "t=2" [ 1 ] (at (q 2));
  check_set "t=10" [ 1 ] (at (q 10));
  check_set "t=20" [ 1 ] (at (q 20));
  check_set "universal = o1" [ 1 ] (MonX.TL.universal tl)

let test_monitor_matches_lazy_sweep () =
  (* eager monitor result must equal a lazy past sweep over the final db *)
  let db = line_db [ (1, q 1, q 1); (2, q 10, q (-1)); (3, q (-20), q 2) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 20)) in
  let m = MonX.create ~db ~gdist:(origin_gdist ()) ~query () in
  let updates =
    [ U.Chdir { oid = 2; tau = q 3; a = vec [ 0 ] };
      U.New { oid = 4; tau = q 6; a = vec [ -1 ]; b = vec [ 2 ] };
      U.Terminate { oid = 1; tau = q 9 };
      U.Chdir { oid = 4; tau = q 15; a = vec [ 3 ] };
    ]
  in
  List.iter (MonX.apply_update_exn m) updates;
  let tl_eager = MonX.finalize m in
  let final_db = DB.apply_all_exn db updates in
  let r_lazy = SwX.run ~db:final_db ~gdist:(origin_gdist ()) ~query in
  (* compare answers on a dense rational grid *)
  List.iter
    (fun i ->
      let t = Q.div (q i) (q 2) in
      let a = TLX.find_at tl_eager (BX.instant_of_scalar t) in
      let b = TLX.find_at r_lazy.SwX.timeline (BX.instant_of_scalar t) in
      match a, b with
      | Some a, Some b ->
        check_set (Printf.sprintf "t=%d/2" i) (Oid.Set.elements b) a
      | _ -> Alcotest.failf "timeline gap at %d/2" i)
    (List.init 41 (fun i -> i))

let test_monitor_insert_and_remove () =
  let db = line_db [ (1, q 5, q 0) ] in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let m = MonX.create ~db ~gdist:(origin_gdist ()) ~query () in
  (* new object at 2, closer *)
  MonX.apply_update_exn m (U.New { oid = 2; tau = q 2; a = vec [ 0 ]; b = vec [ 1 ] });
  (* it terminates at 6 *)
  MonX.apply_update_exn m (U.Terminate { oid = 2; tau = q 6 });
  let tl = MonX.finalize m in
  let at t = Option.get (MonX.TL.find_at tl (BX.instant_of_scalar t)) in
  check_set "before birth" [ 1 ] (at (q 1));
  check_set "while o2 lives" [ 2 ] (at (q 4));
  check_set "after o2 death" [ 1 ] (at (q 8))

let test_monitor_theorem10_chdir_query () =
  (* the query object itself turns: replace the g-distance wholesale *)
  let db = line_db [ (1, q 0, q 0); (2, q 8, q 0) ] in
  (* gamma starts at 2 moving +1: d1 grows, d2 shrinks; cross when
     gamma = midpoint 4 -> t = 2... distances: |2+t-0| vs |2+t-8|:
     equal when 2+t = 4 -> t = 2 *)
  let gamma = T.linear ~start:(q 0) ~a:(vec [ 1 ]) ~b:(vec [ 2 ]) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 10)) in
  let m = MonX.create ~db ~gdist:(Gdist.euclidean_sq ~gamma) ~query () in
  (* at tau=1 gamma reverses: chdir query trajectory *)
  let gamma' = T.chdir gamma (q 1) (vec [ -1 ]) in
  MonX.chdir_query m ~tau:(q 1) ~gdist:(Gdist.euclidean_sq ~gamma:gamma');
  let tl = MonX.finalize m in
  let at t = Option.get (MonX.TL.find_at tl (BX.instant_of_scalar t)) in
  (* gamma heads back toward 0: o1 stays nearest forever *)
  check_set "t=0.5" [ 1 ] (at (qs "1/2"));
  check_set "t=5" [ 1 ] (at (q 5));
  check_set "universal" [ 1 ] (MonX.TL.universal tl)

let test_monitor_theorem10_vs_sweep () =
  (* Theorem 10 under load: interleave object updates with a chdir of the
     query trajectory itself, then check the O(N)-rebuilt monitor against
     a from-scratch lazy sweep over the final database with the same
     piecewise gamma *)
  let db = line_db [ (1, q 0, q 1); (2, q 12, q (-2)); (3, q (-6), q 0) ] in
  let gamma = T.linear ~start:(q 0) ~a:(vec [ 2 ]) ~b:(vec [ 1 ]) in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 16)) in
  let m = MonX.create ~db ~gdist:(Gdist.euclidean_sq ~gamma) ~query () in
  let before = [ U.Chdir { oid = 2; tau = q 2; a = vec [ 1 ] } ] in
  let after =
    [ U.New { oid = 4; tau = q 7; a = vec [ 0 ]; b = vec [ -2 ] };
      U.Terminate { oid = 3; tau = q 11 } ]
  in
  List.iter (MonX.apply_update_exn m) before;
  let gamma' = T.chdir gamma (q 5) (vec [ -1 ]) in
  MonX.chdir_query m ~tau:(q 5) ~gdist:(Gdist.euclidean_sq ~gamma:gamma');
  Alcotest.(check (list string)) "audit clean after the O(N) rebuild" []
    (MonX.audit m);
  List.iter (MonX.apply_update_exn m) after;
  let tl_eager = MonX.finalize m in
  let final_db = DB.apply_all_exn db (before @ after) in
  let r_lazy =
    SwX.run ~db:final_db ~gdist:(Gdist.euclidean_sq ~gamma:gamma') ~query
  in
  List.iter
    (fun i ->
      let t = Q.div (q i) (q 2) in
      match
        ( TLX.find_at tl_eager (BX.instant_of_scalar t),
          TLX.find_at r_lazy.SwX.timeline (BX.instant_of_scalar t) )
      with
      | Some a, Some b ->
        check_set (Printf.sprintf "t=%d/2" i) (Oid.Set.elements b) a
      | _ -> Alcotest.failf "timeline gap at %d/2" i)
    (List.init 33 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Classification                                                       *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  let db = line_db [ (1, q 0, q 1) ] in
  (* last update = 0 *)
  let mk lo hi = Fof.nearest_q ~interval:(Fof.Interval.closed lo hi) in
  Alcotest.(check bool) "past" true (Classify.classify db (mk (q (-10)) (q 0)) = Classify.Past);
  Alcotest.(check bool) "future" true (Classify.classify db (mk (q 1) (q 5)) = Classify.Future);
  Alcotest.(check bool) "continuing" true
    (Classify.classify db (mk (q (-5)) (q 5)) = Classify.Continuing);
  (* a time term reaching into the future makes a past-looking interval not past *)
  let tt = Fof.affine ~scale:Q.one ~offset:(q 100) in
  let shifted =
    { Fof.y = "y";
      interval = Fof.Interval.closed (q (-10)) (q 0);
      phi = Fof.Forall ("z", Fof.Cmp (Fof.Le, Fof.Dist ("y", tt), Fof.Dist ("z", tt))) }
  in
  Alcotest.(check bool) "shifted is not past" true
    (Classify.classify db shifted <> Classify.Past)

let () =
  Alcotest.run "core"
    [ ("engine", [
        Alcotest.test_case "two lines" `Quick test_engine_two_lines;
        Alcotest.test_case "touching curves" `Quick test_engine_touching_curves;
        Alcotest.test_case "irrational crossing (exact)" `Quick test_engine_irrational_crossing;
        Alcotest.test_case "simultaneous crossings" `Quick test_engine_simultaneous_crossings;
        Alcotest.test_case "birth and death" `Quick test_engine_birth_death;
      ]);
      ("figure-2", [ Alcotest.test_case "redirections" `Quick test_figure2 ]);
      ("example-12", [
        Alcotest.test_case "paper trace with update" `Quick test_example12_trace;
        Alcotest.test_case "without update: crossing at 24" `Quick test_example12_without_update;
      ]);
      ("sweep", [
        Alcotest.test_case "1-NN timeline" `Quick test_sweep_nearest;
        Alcotest.test_case "existential/universal" `Quick test_sweep_existential_universal;
        Alcotest.test_case "universal on restricted interval" `Quick test_sweep_universal_restricted;
        Alcotest.test_case "within distance" `Quick test_sweep_within;
        Alcotest.test_case "affine time term" `Quick test_sweep_with_time_term;
      ]);
      ("knn-props", [
        prop "knn matches brute force on grid" (QCheck.pair arb_specs QCheck.small_int)
          knn_matches_brute;
        prop "exact and float backends agree" (QCheck.pair arb_specs QCheck.small_int)
          knn_exact_matches_float;
      ]);
      ("monitor", [
        Alcotest.test_case "basic" `Quick test_monitor_basic;
        Alcotest.test_case "eager matches lazy" `Quick test_monitor_matches_lazy_sweep;
        Alcotest.test_case "insert and remove" `Quick test_monitor_insert_and_remove;
        Alcotest.test_case "theorem 10 chdir query" `Quick test_monitor_theorem10_chdir_query;
        Alcotest.test_case "theorem 10 vs lazy sweep" `Quick test_monitor_theorem10_vs_sweep;
      ]);
      ("classify", [ Alcotest.test_case "past/future/continuing" `Quick test_classify ]);
    ]
