(* Sharded-filtered driver ≡ Exact backend, on hundreds of seeded
   workloads.

   The sharded driver sweeps each spatial shard independently, prunes
   shards outside an exact band bound, and merges only the admitted
   frontier union — so its simplified timeline must be bit-identical to a
   plain exact sweep over the full database.  The families below stress
   every way pruning could go wrong: objects migrating across shard
   boundaries mid-interval (fast movers under a small cell), simultaneous
   crossings straddling two shards (the pencil), positions snapped exactly
   onto cell boundaries, tangencies under the filtered arithmetic, and a
   moving query trajectory.  Sweep statistics are deliberately NOT
   compared — the sharded driver does different (less) work; only answers
   must agree. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module A = Moq_poly.Algnum
module Core = Moq_core
module BX = Core.Backend.Exact
module BFl = Core.Backend.Filtered
module KnnX = Core.Knn.Make (BX)
module ShF = Core.Shard.Make (BFl)
module Gdist = Core.Gdist
module Gen = Moq_workload.Gen
module Sink = Moq_obs.Sink

let q = Q.of_int
let origin dim = T.linear ~start:(q (-100)) ~a:(Qvec.zero dim) ~b:(Qvec.zero dim)

type npiece =
  | NSpan of A.t * A.t * int list
  | NAt of A.t * int list

let norm_exact (tl : KnnX.TL.t) =
  List.map
    (function
      | KnnX.TL.Span (a, b, s) -> NSpan (a, b, Oid.Set.elements s)
      | KnnX.TL.At (a, s) -> NAt (a, Oid.Set.elements s))
    tl

let norm_sharded (tl : ShF.TL.t) =
  List.map
    (function
      | ShF.TL.Span (a, b, s) ->
        NSpan (BFl.to_algnum a, BFl.to_algnum b, Oid.Set.elements s)
      | ShF.TL.At (a, s) -> NAt (BFl.to_algnum a, Oid.Set.elements s))
    tl

let npiece_equal p p' =
  match p, p' with
  | NSpan (a, b, s), NSpan (a', b', s') ->
    A.compare a a' = 0 && A.compare b b' = 0 && s = s'
  | NAt (a, s), NAt (a', s') -> A.compare a a' = 0 && s = s'
  | _ -> false

let pp_npiece fmt = function
  | NSpan (a, b, s) ->
    Format.fprintf fmt "span(%a,%a):{%a}" A.pp a A.pp b
      Format.(pp_print_list ~pp_sep:(fun f () -> pp_print_string f ",") pp_print_int)
      s
  | NAt (a, s) ->
    Format.fprintf fmt "at(%a):{%a}" A.pp a
      Format.(pp_print_list ~pp_sep:(fun f () -> pp_print_string f ",") pp_print_int)
      s

(* One workload: sharded-filtered timeline vs exact timeline, piece by
   piece, plus the driver's own pruning accounting. *)
let check_workload name ~db ~gamma ~k ~lo ~hi ~cell =
  let gdist = Gdist.euclidean_sq ~gamma in
  let rx = KnnX.run_obs ~sink:Sink.noop ~db ~gdist ~k ~lo ~hi in
  let rs = ShF.run_obs ~sink:Sink.noop ~db ~gamma ~k ~lo ~hi ~cell () in
  let nx = norm_exact rx.KnnX.timeline and ns = norm_sharded rs.ShF.timeline in
  if List.length nx <> List.length ns then
    Alcotest.failf "%s: piece counts differ (exact %d, sharded %d)" name
      (List.length nx) (List.length ns);
  List.iteri
    (fun i (px, ps) ->
      if not (npiece_equal px ps) then
        Alcotest.failf "%s: piece %d differs: exact %a, sharded %a" name i
          pp_npiece px pp_npiece ps)
    (List.combine nx ns);
  let sh = rs.ShF.shard in
  if sh.ShF.admitted + sh.ShF.pruned <> DB.cardinal db then
    Alcotest.failf "%s: admitted %d + pruned %d <> population %d" name
      sh.ShF.admitted sh.ShF.pruned (DB.cardinal db);
  if sh.ShF.shards_touched > sh.ShF.shards_total then
    Alcotest.failf "%s: touched %d > total %d" name sh.ShF.shards_touched
      sh.ShF.shards_total;
  sh

(* A query trajectory drifting diagonally: exercises band search and shard
   pruning around a moving anchor. *)
let drifting_gamma () =
  T.linear ~start:(q (-100))
    ~a:(Qvec.of_list [ q 1; q (-1) ])
    ~b:(Qvec.of_list [ q (-5); q 5 ])

(* >= 200 seeded workloads across six families. *)
let test_sharded_equals_exact () =
  let pruned_somewhere = ref false in
  (* 1. uniform, small cell: fast movers migrate across many shard
     boundaries inside the window; half the seeds use a moving gamma *)
  for seed = 1 to 60 do
    let db = Gen.uniform_db ~seed ~n:6 ~dim:2 ~extent:40 ~speed:10 () in
    let gamma = if seed mod 2 = 0 then origin 2 else drifting_gamma () in
    let (_ : ShF.shard_stats) =
      check_workload
        (Printf.sprintf "uniform seed %d" seed)
        ~db ~gamma ~k:(1 + (seed mod 3)) ~lo:(q 0) ~hi:(q 25) ~cell:8.0
    in
    ()
  done;
  (* 2. clustered: distant clusters must be pruned, near ones swept *)
  for seed = 1 to 40 do
    let db =
      Gen.clustered_db ~seed ~n:24 ~clusters:4 ~spacing:2_000 ~spread:50
        ~speed:3 ()
    in
    let sh =
      check_workload
        (Printf.sprintf "clustered seed %d" seed)
        ~db ~gamma:(origin 2) ~k:2 ~lo:(q 0) ~hi:(q 20) ~cell:64.0
    in
    if sh.ShF.pruned > 0 then pruned_somewhere := true
  done;
  (* 3. boundary-snapped: integer positions under cell 1.0 put every
     object exactly on a cell corner *)
  for seed = 1 to 20 do
    let db = Gen.uniform_db ~seed ~n:6 ~dim:2 ~extent:10 ~speed:2 () in
    let (_ : ShF.shard_stats) =
      check_workload
        (Printf.sprintf "boundary seed %d" seed)
        ~db ~gamma:(origin 2) ~k:2 ~lo:(q 0) ~hi:(q 15) ~cell:1.0
    in
    ()
  done;
  (* 4. tangencies under the filtered arithmetic *)
  for seed = 1 to 20 do
    let db = Gen.tangency_db ~seed ~n:8 () in
    let (_ : ShF.shard_stats) =
      check_workload
        (Printf.sprintf "tangency seed %d" seed)
        ~db ~gamma:(origin 2) ~k:3 ~lo:(q 0) ~hi:(q 20) ~cell:4.0
    in
    ()
  done;
  (* 5. the 1-d pencil: every pair crosses simultaneously at t=5, and a
     small cell makes the crossing straddle shard boundaries *)
  for seed = 1 to 30 do
    let db = Gen.pencil_db ~seed ~n:7 ~at:(q 5) () in
    let (_ : ShF.shard_stats) =
      check_workload
        (Printf.sprintf "pencil seed %d" seed)
        ~db ~gamma:(origin 1) ~k:2 ~lo:(q 0) ~hi:(q 10) ~cell:2.0
    in
    ()
  done;
  (* 6. k at and past the population; degenerate point window *)
  for seed = 1 to 30 do
    let db = Gen.uniform_db ~seed ~n:5 ~dim:2 ~extent:30 ~speed:4 () in
    let k = if seed mod 2 = 0 then 5 else 9 in
    let (_ : ShF.shard_stats) =
      check_workload
        (Printf.sprintf "clamp seed %d" seed)
        ~db ~gamma:(origin 2) ~k ~lo:(q 0) ~hi:(q 20) ~cell:16.0
    in
    let (_ : ShF.shard_stats) =
      check_workload
        (Printf.sprintf "point-window seed %d" seed)
        ~db ~gamma:(origin 2) ~k:2 ~lo:(q 7) ~hi:(q 7) ~cell:16.0
    in
    ()
  done;
  Alcotest.(check bool) "clustered family pruned objects" true !pruned_somewhere

(* The shard counters reach the sink under their documented names. *)
let test_shard_counters () =
  let reg = Moq_obs.Registry.create () in
  let sink = Sink.of_registry reg in
  let db =
    Gen.clustered_db ~seed:9 ~n:30 ~clusters:5 ~spacing:3_000 ~spread:40
      ~speed:2 ()
  in
  let r =
    ShF.run_obs ~sink ~db ~gamma:(origin 2) ~k:2 ~lo:(q 0) ~hi:(q 15)
      ~cell:64.0 ()
  in
  let cval name = Moq_obs.Registry.counter_value reg name in
  Alcotest.(check (option int)) "admissions" (Some r.ShF.shard.ShF.admitted)
    (cval "moq_shard_admissions_total");
  Alcotest.(check (option int)) "prunes" (Some r.ShF.shard.ShF.pruned)
    (cval "moq_shard_prunes_total");
  Alcotest.(check (option int)) "touched" (Some r.ShF.shard.ShF.shards_touched)
    (cval "moq_shard_touched_total");
  Alcotest.(check (option int)) "merge ops"
    (Some r.ShF.shard.ShF.frontier_merge_ops)
    (cval "moq_shard_frontier_merge_ops_total")

let test_invalid_k () =
  let db = Gen.uniform_db ~seed:1 ~n:3 ~dim:2 ~extent:10 ~speed:1 () in
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Shard.run: k must be positive") (fun () ->
      ignore (ShF.run ~db ~gamma:(origin 2) ~k:0 ~lo:(q 0) ~hi:(q 10) ()))

let () =
  Alcotest.run "sharded-driver"
    [
      ( "sharded-vs-exact",
        [
          Alcotest.test_case "≥200 seeded workloads identical" `Slow
            test_sharded_equals_exact;
          Alcotest.test_case "shard counters reach the sink" `Quick
            test_shard_counters;
          Alcotest.test_case "k <= 0 rejected" `Quick test_invalid_k;
        ] );
    ]
