(* Explain-report tests: the JSON schema is golden (key set and order are
   stable), the report's counters reconcile exactly with the registry the
   run counted into, the Lemma 9 block is the in-batch per-event quantity
   (initial sort excluded), and hot-object attribution is ranked and
   covers the attributed comparisons. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module Registry = Moq_obs.Registry
module Sink = Moq_obs.Sink
module Json = Moq_obs.Json
module Gdist = Moq_core.Gdist
module Explain = Moq_core.Explain
module Gen = Moq_workload.Gen
module BX = Moq_core.Backend.Exact
module KnnX = Moq_core.Knn.Make (BX)

let q = Q.of_int

(* Run a k-NN sweep against a live registry and assemble the report the
   way the CLI and the server do. *)
let run_report ?(seed = 11) ?(n = 16) ?(k = 2) ?(lo = 0) ?(hi = 40) () =
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  let db = Gen.uniform_db ~seed ~n ~extent:50 ~speed:5 () in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let r = KnnX.run_obs ~sink ~db ~gdist ~k ~lo:(q lo) ~hi:(q hi) in
  let s = r.KnnX.stats in
  let sweep =
    { Explain.batches = s.KnnX.E.batches; crossings = s.KnnX.E.crossings;
      births = s.KnnX.E.births; deaths = s.KnnX.E.deaths;
      jumps = s.KnnX.E.jumps; swaps = s.KnnX.E.swaps;
      comparisons = s.KnnX.E.comparisons;
      support_changes = s.KnnX.E.crossings + s.KnnX.E.births + s.KnnX.E.deaths }
  in
  let hot =
    List.map
      (fun (h : KnnX.E.hot) ->
        { Explain.oid = h.KnnX.E.h_oid; comparisons = h.KnnX.E.h_comparisons;
          swaps = h.KnnX.E.h_swaps })
      r.KnnX.hot
  in
  let report =
    Explain.make ~kind:"knn" ~query:"test knn" ~backend:"exact" ~n_objects:n
      ~lo:(float_of_int lo) ~hi:(float_of_int hi)
      ~timeline_pieces:(List.length r.KnnX.timeline) ~sweep ~hot
      ~phases:[ { Explain.name = "run"; ns = 1e6 } ]
      ~counters:(Registry.flatten reg) ()
  in
  (report, reg)

(* The golden schema: any key added, removed or reordered here is a
   deliberate, versioned change (bump moq_explain alongside). *)
let golden_keys =
  [ "moq_explain"; "kind"; "query"; "backend"; "classification"; "n_objects";
    "lo"; "hi"; "timeline_pieces"; "sweep"; "lemma9"; "filter"; "shards";
    "agg"; "hot"; "hot_coverage_top5"; "phases"; "counters" ]

let golden_agg_keys =
  [ "pois"; "windows"; "rows"; "watch_admitted"; "watch_pruned"; "updates";
    "forwarded" ]

let golden_shards_keys =
  [ "total"; "touched"; "admitted"; "pruned"; "frontier_merge_ops";
    "shard_events"; "band" ]

let golden_sweep_keys =
  [ "batches"; "crossings"; "births"; "deaths"; "jumps"; "swaps";
    "comparisons"; "support_changes" ]

let golden_lemma9_keys =
  [ "events"; "event_comparisons"; "ops_per_event"; "bound"; "within" ]

let obj_keys = function
  | Json.Obj kvs -> List.map fst kvs
  | _ -> Alcotest.fail "expected a JSON object"

let field j k =
  match j with
  | Json.Obj kvs ->
    (match List.assoc_opt k kvs with
     | Some v -> v
     | None -> Alcotest.failf "field %s missing" k)
  | _ -> Alcotest.fail "expected a JSON object"

let test_golden_schema () =
  let report, _ = run_report () in
  let j = Explain.to_json report in
  Alcotest.(check (list string)) "top-level keys" golden_keys (obj_keys j);
  Alcotest.(check (list string)) "sweep keys" golden_sweep_keys
    (obj_keys (field j "sweep"));
  Alcotest.(check (list string)) "lemma9 keys" golden_lemma9_keys
    (obj_keys (field j "lemma9"));
  (match field j "moq_explain" with
   | Json.Int 3 -> ()
   | _ -> Alcotest.fail "schema version tag must be 3");
  (* the exact backend carries no filter block *)
  (match field j "filter" with
   | Json.Null -> ()
   | _ -> Alcotest.fail "exact backend: filter must be null");
  (* an unsharded run carries no shards block *)
  (match field j "shards" with
   | Json.Null -> ()
   | _ -> Alcotest.fail "unsharded run: shards must be null");
  (* a non-aggregation run carries no agg block *)
  (match field j "agg" with
   | Json.Null -> ()
   | _ -> Alcotest.fail "non-aggregation run: agg must be null");
  (* the report must also survive a print (no exceptions, non-empty) *)
  Alcotest.(check bool) "to_text renders" true
    (String.length (Explain.to_text report) > 0)

(* A sharded run populates the shards block with self-consistent pruning
   accounting, under the same golden key order. *)
let test_sharded_report () =
  let module BFl = Moq_core.Backend.Filtered in
  let module Sh = Moq_core.Shard.Make (BFl) in
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  let n = 30 in
  let db =
    Gen.clustered_db ~seed:21 ~n ~clusters:5 ~spacing:3_000 ~spread:40
      ~speed:2 ()
  in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let r = Sh.run_obs ~sink ~db ~gamma ~k:2 ~lo:(q 0) ~hi:(q 20) ~cell:64.0 () in
  let s = r.Sh.stats in
  let sweep =
    { Explain.batches = s.Sh.E.batches; crossings = s.Sh.E.crossings;
      births = s.Sh.E.births; deaths = s.Sh.E.deaths; jumps = s.Sh.E.jumps;
      swaps = s.Sh.E.swaps; comparisons = s.Sh.E.comparisons;
      support_changes = s.Sh.E.crossings + s.Sh.E.births + s.Sh.E.deaths }
  in
  let sb = r.Sh.shard in
  let shards =
    { Explain.s_total = sb.Sh.shards_total; s_touched = sb.Sh.shards_touched;
      s_admitted = sb.Sh.admitted; s_pruned = sb.Sh.pruned;
      s_merge_ops = sb.Sh.frontier_merge_ops; s_events = sb.Sh.shard_events;
      s_band = sb.Sh.band }
  in
  let report =
    Explain.make ~kind:"knn" ~query:"test sharded knn"
      ~backend:"sharded-filtered" ~n_objects:n ~lo:0. ~hi:20.
      ~timeline_pieces:(List.length r.Sh.timeline) ~sweep ~shards
      ~counters:(Registry.flatten reg) ()
  in
  let j = Explain.to_json report in
  Alcotest.(check (list string)) "top-level keys" golden_keys (obj_keys j);
  Alcotest.(check (list string)) "shards keys" golden_shards_keys
    (obj_keys (field j "shards"));
  (match field j "shards" with
   | Json.Obj kvs ->
     let geti k =
       match List.assoc_opt k kvs with
       | Some (Json.Int i) -> i
       | _ -> Alcotest.failf "shards.%s missing or not an int" k
     in
     Alcotest.(check int) "admitted + pruned = population" n
       (geti "admitted" + geti "pruned");
     Alcotest.(check bool) "touched <= total" true
       (geti "touched" <= geti "total");
     Alcotest.(check bool) "clustered run pruned objects" true
       (geti "pruned" > 0)
   | _ -> Alcotest.fail "shards must be an object for a sharded run");
  (* the text rendering mentions the sharding section *)
  let txt = Explain.to_text report in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "to_text has sharding section" true
    (contains txt "sharding")

(* An aggregation run populates the agg block under the same golden key
   order; prune accounting is self-consistent. *)
let test_agg_report () =
  let sweep =
    { Explain.batches = 0; crossings = 0; births = 0; deaths = 0; jumps = 0;
      swaps = 0; comparisons = 0; support_changes = 0 }
  in
  let agg =
    { Explain.a_pois = 3; a_windows = 5; a_rows = 15; a_admitted = 9;
      a_pruned = 21; a_updates = 40; a_forwarded = 24 }
  in
  let report =
    Explain.make ~kind:"agg" ~query:"test agg" ~backend:"exact" ~n_objects:10
      ~lo:0. ~hi:50. ~timeline_pieces:0 ~sweep ~agg ~counters:[] ()
  in
  let j = Explain.to_json report in
  Alcotest.(check (list string)) "top-level keys" golden_keys (obj_keys j);
  Alcotest.(check (list string)) "agg keys" golden_agg_keys
    (obj_keys (field j "agg"));
  let txt = Explain.to_text report in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "to_text has aggregation section" true
    (contains txt "aggregation")

let test_counters_reconcile () =
  let report, reg = run_report () in
  let c name =
    match Registry.counter_value reg name with Some v -> v | None -> 0
  in
  let s = report.Explain.sweep in
  Alcotest.(check int) "crossings = registry" (c "moq_sweep_crossings_total")
    s.Explain.crossings;
  Alcotest.(check int) "swaps = registry" (c "moq_sweep_swaps_total")
    s.Explain.swaps;
  Alcotest.(check int) "batches = registry" (c "moq_sweep_batches_total")
    s.Explain.batches;
  (* the registry counts order-line exchanges (swaps + births + deaths);
     the report's support_changes is Corollary 6's m — distinct support
     change events (crossings + births + deaths) *)
  Alcotest.(check int) "registry support changes = swaps + births + deaths"
    (c "moq_sweep_support_changes_total")
    (s.Explain.swaps + s.Explain.births + s.Explain.deaths);
  (* lemma9 reads the in-batch counters, so it reconciles by construction;
     check it against the registry rather than the engine total (which
     includes the initial O(N log N) sort) *)
  let l = report.Explain.lemma9 in
  Alcotest.(check int) "lemma9 events" (c "moq_sweep_events_total") l.Explain.events;
  Alcotest.(check int) "lemma9 comparisons" (c "moq_sweep_comparisons_total")
    l.Explain.event_comparisons;
  Alcotest.(check bool) "in-batch < total comparisons" true
    (l.Explain.event_comparisons < s.Explain.comparisons);
  (* and the flattened registry embedded in the report agrees too *)
  Alcotest.(check (option (float 0.))) "embedded counters agree"
    (Some (float_of_int s.Explain.crossings))
    (List.assoc_opt "moq_sweep_crossings_total" report.Explain.counters)

let test_lemma9_regime () =
  (* per-event work stays within the generous c·log2(N+1) + c' reference
     line across sizes — the Lemma 9 regime check the report automates *)
  List.iter
    (fun n ->
      let report, _ = run_report ~seed:7 ~n () in
      let l = report.Explain.lemma9 in
      if l.Explain.events > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "within bound at n=%d (%.2f <= %.2f)" n
             l.Explain.ops_per_event l.Explain.bound)
          true l.Explain.within)
    [ 4; 16; 48 ]

let test_hot_ranked_and_covering () =
  let report, _ = run_report ~n:24 () in
  let hot = report.Explain.hot in
  Alcotest.(check bool) "attribution on" true (hot <> []);
  let rec sorted = function
    | a :: (b :: _ as tl) ->
      a.Explain.comparisons >= b.Explain.comparisons && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "hottest first" true (sorted hot);
  let cov = Explain.hot_coverage report in
  Alcotest.(check bool) "coverage in (0,1]" true (cov > 0. && cov <= 1.);
  (* top_hot truncates without reordering *)
  Alcotest.(check int) "top_hot caps at k" (min 3 (List.length hot))
    (List.length (Explain.top_hot ~k:3 report))

let test_bound_monotone () =
  Alcotest.(check bool) "bound grows with N" true
    (Explain.lemma9_bound ~n_objects:1000 > Explain.lemma9_bound ~n_objects:10);
  Alcotest.(check bool) "bound sane at N=0" true
    (Explain.lemma9_bound ~n_objects:0 >= 8.)

let () =
  Alcotest.run "explain"
    [ ("schema",
       [ Alcotest.test_case "golden JSON key set" `Quick test_golden_schema;
         Alcotest.test_case "sharded report shards block" `Quick
           test_sharded_report;
         Alcotest.test_case "agg report agg block" `Quick test_agg_report ]);
      ("reconcile",
       [ Alcotest.test_case "report = registry" `Quick test_counters_reconcile ]);
      ("lemma9",
       [ Alcotest.test_case "per-event regime" `Quick test_lemma9_regime;
         Alcotest.test_case "bound monotone" `Quick test_bound_monotone ]);
      ("hot",
       [ Alcotest.test_case "ranked attribution" `Quick
           test_hot_ranked_and_covering ]) ]
