(* Soundness properties for outward-rounded float intervals.

   Every operation must produce an interval that contains the exact
   rational result — checked with [Fintval.contains_rat], which compares
   the exact value against the endpoints via [Rat.of_float] and so does
   not itself round.  Certainty claims ([sign], [compare_certain]) are
   checked against exact rational arithmetic: whenever the interval
   commits to an answer, the answer must be right. *)

module Q = Moq_numeric.Rat
module IV = Moq_numeric.Fintval

let prop ?(count = 1000) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* Rationals with awkward denominators: p/q scaled by 2^-k so many values
   are not exactly representable as floats. *)
let arb_rat =
  QCheck.map
    (fun (p, qd, k) ->
      let qd = if qd = 0 then 1 else qd in
      Q.div (Q.of_ints p qd) (Q.of_bigint (Moq_numeric.Bigint.shift_left Moq_numeric.Bigint.one k)))
    (QCheck.triple
       (QCheck.int_range (-1_000_000_000) 1_000_000_000)
       (QCheck.int_range 1 1_000_000)
       (QCheck.int_range 0 40))

let arb_rat2 = QCheck.pair arb_rat arb_rat

let iv = IV.of_rat

let soundness_props =
  [ prop "of_rat contains" arb_rat (fun a -> IV.contains_rat (iv a) a);
    prop "neg sound" arb_rat (fun a -> IV.contains_rat (IV.neg (iv a)) (Q.neg a));
    prop "add sound" arb_rat2 (fun (a, b) ->
        IV.contains_rat (IV.add (iv a) (iv b)) (Q.add a b));
    prop "sub sound" arb_rat2 (fun (a, b) ->
        IV.contains_rat (IV.sub (iv a) (iv b)) (Q.sub a b));
    prop "mul sound" arb_rat2 (fun (a, b) ->
        IV.contains_rat (IV.mul (iv a) (iv b)) (Q.mul a b));
    prop "div sound" arb_rat2 (fun (a, b) ->
        QCheck.assume (not (Q.is_zero b));
        IV.contains_rat (IV.div (iv a) (iv b)) (Q.div a b));
    prop "sqrt sound (square root in interval of square)" arb_rat (fun a ->
        (* √(a²) = |a| must lie in sqrt of an enclosure of a². *)
        let sq = Q.mul a a in
        let s = IV.sqrt (IV.mul (iv a) (iv a)) in
        (* |a| ∈ s ⟹ a² ∈ s·s; check the latter, which only needs
           rational arithmetic. *)
        IV.contains_rat (IV.mul s s) sq);
    prop "sign certain ⟹ correct" arb_rat (fun a ->
        match IV.sign (iv a) with Some s -> s = Q.sign a | None -> true);
    prop "sign decides points" arb_rat (fun a ->
        (* A width-respecting filter: an interval built from one rational
           either knows the sign or straddles zero. *)
        match IV.sign (iv a) with
        | Some _ -> true
        | None -> IV.contains_zero (iv a));
    prop "compare certain ⟹ correct" arb_rat2 (fun (a, b) ->
        match IV.compare_certain (iv a) (iv b) with
        | Some c -> c = Q.compare a b
        | None -> true);
    prop "eval sound" (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arb_rat) arb_rat)
      (fun (cs, x) ->
        let exact =
          List.fold_right (fun c acc -> Q.add c (Q.mul x acc)) cs Q.zero
        in
        IV.contains_rat (IV.eval (Array.of_list (List.map iv cs)) (iv x)) exact);
    prop "of_rat_bounds contains both" arb_rat2 (fun (a, b) ->
        let lo = Q.min a b and hi = Q.max a b in
        let v = IV.of_rat_bounds lo hi in
        IV.contains_rat v lo && IV.contains_rat v hi);
  ]

let test_top_and_div_by_straddler () =
  Alcotest.(check bool) "top contains everything" true
    (IV.contains_rat IV.top (Q.of_ints 355 113));
  let straddler = IV.of_rat_bounds (Q.of_int (-1)) Q.one in
  let d = IV.div (IV.of_rat Q.one) straddler in
  Alcotest.(check bool) "div by straddler is top" true
    (IV.contains_rat d (Q.of_int 1_000_000_000));
  Alcotest.(check bool) "straddler sign unknown" true (IV.sign straddler = None)

let test_sqrt_negative () =
  Alcotest.check_raises "sqrt of negative interval"
    (Invalid_argument "Fintval.sqrt: negative interval") (fun () ->
      ignore (IV.sqrt (IV.of_rat (Q.of_int (-4)))))

let test_exact_point_arithmetic () =
  (* Small integers are exact floats; [point]-based arithmetic on them
     that stays exact must still enclose (and sign must resolve). *)
  let two = IV.of_int 2 and three = IV.of_int 3 in
  Alcotest.(check bool) "2*3 contains 6" true (IV.contains_rat (IV.mul two three) (Q.of_int 6));
  Alcotest.(check (option int)) "2 < 3 certain" (Some (-1)) (IV.compare_certain two three);
  Alcotest.(check (option int)) "sign of -2" (Some (-1)) (IV.sign (IV.of_int (-2)))

let () =
  Alcotest.run "fintval"
    [ ("soundness-props", soundness_props);
      ( "units",
        [ Alcotest.test_case "top / div straddling zero" `Quick test_top_and_div_by_straddler;
          Alcotest.test_case "sqrt negative raises" `Quick test_sqrt_negative;
          Alcotest.test_case "exact points" `Quick test_exact_point_arithmetic;
        ] );
    ]
