(* Differential tests for the Small/Big bignum against the pre-change
   schoolbook implementation.

   [Ref] below is the original always-limb-array bignum, kept verbatim as
   the reference semantics; every public operation of the new
   [Moq_numeric.Bigint] is cross-checked against it on values engineered
   around the Small/Big boundary: ±2^62, [min_int]/[max_int], carry
   chains, and random multi-limb compositions. *)

module B = Moq_numeric.Bigint

(* ------------------------------------------------------------------ *)
(* Reference: the pre-change schoolbook bignum                          *)
(* ------------------------------------------------------------------ *)

module Ref = struct
  let base_bits = 30
  let base = 1 lsl base_bits
  let limb_mask = base - 1

  type t = { sign : int; mag : int array }

  let zero = { sign = 0; mag = [||] }

  let normalize sign mag =
    let n = Array.length mag in
    let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
    let hi = top (n - 1) in
    if hi < 0 then zero
    else if hi = n - 1 then { sign; mag }
    else { sign; mag = Array.sub mag 0 (hi + 1) }

  let is_zero x = x.sign = 0

  let of_int n =
    if n = 0 then zero
    else begin
      let s = if n < 0 then -1 else 1 in
      if n = min_int then begin
        let l0 = n land limb_mask in
        let l1 = (n lsr base_bits) land limb_mask in
        let l2 = (n lsr (2 * base_bits)) land limb_mask in
        normalize (-1) [| l0; l1; l2 |]
      end
      else begin
        let a = abs n in
        let rec count v k = if v = 0 then k else count (v lsr base_bits) (k + 1) in
        let k = count a 0 in
        let mag = Array.make k 0 in
        let v = ref a in
        for i = 0 to k - 1 do
          mag.(i) <- !v land limb_mask;
          v := !v lsr base_bits
        done;
        { sign = s; mag }
      end
    end

  let to_int x =
    let n = Array.length x.mag in
    if n = 0 then Some 0
    else if n > 3 then None
    else begin
      let v = ref 0 in
      let ok = ref true in
      for i = n - 1 downto 0 do
        if !v > (max_int - x.mag.(i)) / base then ok := false
        else v := (!v lsl base_bits) lor x.mag.(i)
      done;
      if !ok then Some (if x.sign < 0 then - !v else !v)
      else if x.sign < 0 && n = 3 && x.mag.(2) = 4 && x.mag.(1) = 0 && x.mag.(0) = 0
      then Some min_int
      else None
    end

  let to_int_exn x =
    match to_int x with Some n -> n | None -> invalid_arg "Ref.to_int_exn"

  let cmp_mag a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then compare la lb
    else begin
      let rec go i =
        if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1)
      in
      go (la - 1)
    end

  let compare x y =
    if x.sign <> y.sign then compare x.sign y.sign
    else if x.sign >= 0 then cmp_mag x.mag y.mag
    else cmp_mag y.mag x.mag

  let add_mag a b =
    let la = Array.length a and lb = Array.length b in
    let l = Stdlib.max la lb in
    let r = Array.make (l + 1) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
      r.(i) <- s land limb_mask;
      carry := s lsr base_bits
    done;
    r.(l) <- !carry;
    r

  let sub_mag a b =
    let la = Array.length a and lb = Array.length b in
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin r.(i) <- d + base; borrow := 1 end
      else begin r.(i) <- d; borrow := 0 end
    done;
    assert (!borrow = 0);
    r

  let add x y =
    if x.sign = 0 then y
    else if y.sign = 0 then x
    else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
    else begin
      let c = cmp_mag x.mag y.mag in
      if c = 0 then zero
      else if c > 0 then normalize x.sign (sub_mag x.mag y.mag)
      else normalize y.sign (sub_mag y.mag x.mag)
    end

  let neg x = if x.sign = 0 then x else { x with sign = - x.sign }
  let abs x = if x.sign < 0 then neg x else x
  let sub x y = add x (neg y)

  let mul_mag a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then [||]
    else begin
      let r = Array.make (la + lb) 0 in
      for i = 0 to la - 1 do
        let carry = ref 0 in
        let ai = a.(i) in
        if ai <> 0 then begin
          for j = 0 to lb - 1 do
            let s = r.(i + j) + (ai * b.(j)) + !carry in
            r.(i + j) <- s land limb_mask;
            carry := s lsr base_bits
          done;
          let k = ref (i + lb) in
          while !carry <> 0 do
            let s = r.(!k) + !carry in
            r.(!k) <- s land limb_mask;
            carry := s lsr base_bits;
            incr k
          done
        end
      done;
      r
    end

  let mul x y =
    if x.sign = 0 || y.sign = 0 then zero
    else normalize (x.sign * y.sign) (mul_mag x.mag y.mag)

  let shl_mag a k =
    if Array.length a = 0 then [||]
    else begin
      let limbs = k / base_bits and bits = k mod base_bits in
      let la = Array.length a in
      let r = Array.make (la + limbs + 1) 0 in
      for i = 0 to la - 1 do
        let v = a.(i) lsl bits in
        r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
        r.(i + limbs + 1) <- v lsr base_bits
      done;
      r
    end

  let shr_mag a k =
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then [||]
    else begin
      let l = la - limbs in
      let r = Array.make l 0 in
      for i = 0 to l - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask
          else 0
        in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      r
    end

  let shift_left x k =
    if k < 0 then invalid_arg "Ref.shift_left"
    else if x.sign = 0 || k = 0 then x
    else normalize x.sign (shl_mag x.mag k)

  let shift_right x k =
    if k < 0 then invalid_arg "Ref.shift_right"
    else if x.sign = 0 || k = 0 then x
    else normalize x.sign (shr_mag x.mag k)

  let bits_of_limb v =
    let rec go v k = if v = 0 then k else go (v lsr 1) (k + 1) in
    go v 0

  let divmod_mag_limb a d =
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (q, !r)

  let divmod_mag a b =
    let lb = Array.length b in
    let shift = base_bits - bits_of_limb b.(lb - 1) in
    let u = shl_mag a shift in
    let v = shl_mag b shift in
    let v =
      let n = Array.length v in
      let rec top i = if i >= 0 && v.(i) = 0 then top (i - 1) else i in
      Array.sub v 0 (top (n - 1) + 1)
    in
    let n = Array.length v in
    let m =
      let lu = Array.length u in
      let rec top i = if i >= 0 && u.(i) = 0 then top (i - 1) else i in
      top (lu - 1) + 1
    in
    if m < n then ([||], shr_mag a 0)
    else begin
      let u =
        if m + 1 <= Array.length u then Array.sub u 0 (m + 1)
        else begin
          let u' = Array.make (m + 1) 0 in
          Array.blit u 0 u' 0 (Array.length u);
          u'
        end
      in
      let q = Array.make (m - n + 1) 0 in
      let vn1 = v.(n - 1) in
      let vn2 = if n >= 2 then v.(n - 2) else 0 in
      for j = m - n downto 0 do
        let ujn = u.(j + n) and ujn1 = u.(j + n - 1) in
        let num = (ujn lsl base_bits) lor ujn1 in
        let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
        let ujn2 = u.(j + n - 2) in
        let continue_test = ref true in
        while !continue_test do
          if !qhat >= base || !qhat * vn2 > (!rhat lsl base_bits) lor ujn2 then begin
            decr qhat;
            rhat := !rhat + vn1;
            if !rhat >= base then continue_test := false
          end
          else continue_test := false
        done;
        let borrow = ref 0 and carry = ref 0 in
        for i = 0 to n - 1 do
          let p = !qhat * v.(i) + !carry in
          carry := p lsr base_bits;
          let d = u.(i + j) - (p land limb_mask) - !borrow in
          if d < 0 then begin u.(i + j) <- d + base; borrow := 1 end
          else begin u.(i + j) <- d; borrow := 0 end
        done;
        let d = u.(j + n) - !carry - !borrow in
        if d < 0 then begin
          u.(j + n) <- d + base;
          decr qhat;
          let carry2 = ref 0 in
          for i = 0 to n - 1 do
            let s = u.(i + j) + v.(i) + !carry2 in
            u.(i + j) <- s land limb_mask;
            carry2 := s lsr base_bits
          done;
          u.(j + n) <- (u.(j + n) + !carry2) land limb_mask
        end
        else u.(j + n) <- d;
        q.(j) <- !qhat
      done;
      let r = shr_mag (Array.sub u 0 n) shift in
      (q, r)
    end

  let divmod a b =
    if b.sign = 0 then raise Division_by_zero
    else if a.sign = 0 then (zero, zero)
    else begin
      let c = cmp_mag a.mag b.mag in
      if c < 0 then (zero, a)
      else if Array.length b.mag = 1 then begin
        let q, r = divmod_mag_limb a.mag b.mag.(0) in
        (normalize (a.sign * b.sign) q, if r = 0 then zero else { sign = a.sign; mag = [| r |] })
      end
      else begin
        let q, r = divmod_mag a.mag b.mag in
        (normalize (a.sign * b.sign) q, normalize a.sign r)
      end
    end

  let rem a b = snd (divmod a b)

  let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
  let gcd a b = gcd_aux (abs a) (abs b)

  let billion = of_int 1_000_000_000

  let to_string x =
    if x.sign = 0 then "0"
    else begin
      let buf = Buffer.create 32 in
      let rec chunks v acc =
        if is_zero v then acc
        else begin
          let q, r = divmod v billion in
          chunks q (to_int_exn r :: acc)
        end
      in
      if x.sign < 0 then Buffer.add_char buf '-';
      (match chunks (abs x) [] with
       | [] -> Buffer.add_char buf '0'
       | first :: rest ->
         Buffer.add_string buf (string_of_int first);
         List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
      Buffer.contents buf
    end

  let num_bits x =
    let n = Array.length x.mag in
    if n = 0 then 0 else ((n - 1) * base_bits) + bits_of_limb x.mag.(n - 1)
end

(* ------------------------------------------------------------------ *)
(* Differential harness                                                 *)
(* ------------------------------------------------------------------ *)

(* The same value in both implementations, built with the same op
   sequence: x * 2^k + y. *)
let pair_of (x, k, y) =
  ( B.add (B.shift_left (B.of_int x) k) (B.of_int y),
    Ref.add (Ref.shift_left (Ref.of_int x) k) (Ref.of_int y) )

let check_same ctx (b : B.t) (r : Ref.t) =
  let sb = B.to_string b and sr = Ref.to_string r in
  if sb <> sr then Alcotest.failf "%s: new %s, reference %s" ctx sb sr

(* Edge ints around the Small/Big and small-multiply boundaries. *)
let edge_ints =
  [ 0; 1; -1; 2; -7; 1000; (1 lsl 30) - 1; 1 lsl 30; -(1 lsl 30);
    (1 lsl 31) - 1; 1 lsl 31; -(1 lsl 31); (1 lsl 31) + 1;
    (1 lsl 60) - 1; 1 lsl 60; max_int; min_int; max_int - 1; min_int + 1 ]

let edge_triples =
  (* (x, k, y): spans Small, exactly-2^62, and multi-limb values *)
  List.concat_map
    (fun x -> [ (x, 0, 0); (x, 1, 0); (x, 1, 1); (x, 31, 17); (x, 62, -3); (x, 70, 123) ])
    edge_ints

let test_edges () =
  List.iter
    (fun ta ->
      List.iter
        (fun tb ->
          let a, ra = pair_of ta and b, rb = pair_of tb in
          let ctx op = Printf.sprintf "%s %s %s" (B.to_string a) op (B.to_string b) in
          check_same "construct a" a ra;
          check_same (ctx "+") (B.add a b) (Ref.add ra rb);
          check_same (ctx "-") (B.sub a b) (Ref.sub ra rb);
          check_same (ctx "*") (B.mul a b) (Ref.mul ra rb);
          check_same (ctx "gcd") (B.gcd a b) (Ref.gcd ra rb);
          Alcotest.(check int) (ctx "cmp") (Ref.compare ra rb) (B.compare a b);
          Alcotest.(check int) (ctx "bits") (Ref.num_bits ra) (B.num_bits a);
          if not (B.is_zero b) then begin
            let q, r = B.divmod a b in
            let q', r' = Ref.divmod ra rb in
            check_same (ctx "/") q q';
            check_same (ctx "mod") r r'
          end)
        edge_triples)
    (List.filteri (fun i _ -> i mod 3 = 0) edge_triples)
(* subsample the left side to keep the quadratic loop quick *)

(* Carry chains: (2^k - 1) + 1, (2^k) - 1, and additions that ripple
   through every limb. *)
let test_carry_chains () =
  for k = 58 to 70 do
    let b1 = B.sub (B.shift_left B.one k) B.one in
    let r1 = Ref.sub (Ref.shift_left (Ref.of_int 1) k) (Ref.of_int 1) in
    check_same "2^k - 1" b1 r1;
    check_same "ripple add" (B.add b1 B.one) (Ref.add r1 (Ref.of_int 1));
    check_same "ripple sub" (B.sub (B.neg b1) B.one)
      (Ref.sub (Ref.neg r1) (Ref.of_int 1));
    check_same "square" (B.mul b1 b1) (Ref.mul r1 r1)
  done

let arb_triple =
  QCheck.triple (QCheck.int_range (-max_int) max_int) (QCheck.int_range 0 70)
    (QCheck.int_range (-max_int) max_int)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

let diff_props =
  [ prop "add" (QCheck.pair arb_triple arb_triple) (fun (ta, tb) ->
        let a, ra = pair_of ta and b, rb = pair_of tb in
        B.to_string (B.add a b) = Ref.to_string (Ref.add ra rb));
    prop "sub" (QCheck.pair arb_triple arb_triple) (fun (ta, tb) ->
        let a, ra = pair_of ta and b, rb = pair_of tb in
        B.to_string (B.sub a b) = Ref.to_string (Ref.sub ra rb));
    prop "mul" (QCheck.pair arb_triple arb_triple) (fun (ta, tb) ->
        let a, ra = pair_of ta and b, rb = pair_of tb in
        B.to_string (B.mul a b) = Ref.to_string (Ref.mul ra rb));
    prop "divmod" (QCheck.pair arb_triple arb_triple) (fun (ta, tb) ->
        let a, ra = pair_of ta and b, rb = pair_of tb in
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        let q', r' = Ref.divmod ra rb in
        B.to_string q = Ref.to_string q' && B.to_string r = Ref.to_string r');
    prop "gcd" (QCheck.pair arb_triple arb_triple) (fun (ta, tb) ->
        let a, ra = pair_of ta and b, rb = pair_of tb in
        B.to_string (B.gcd a b) = Ref.to_string (Ref.gcd ra rb));
    prop "compare" (QCheck.pair arb_triple arb_triple) (fun (ta, tb) ->
        let a, ra = pair_of ta and b, rb = pair_of tb in
        B.compare a b = Ref.compare ra rb);
    prop "shift_right" (QCheck.pair arb_triple (QCheck.int_range 0 80)) (fun (ta, k) ->
        let a, ra = pair_of ta in
        B.to_string (B.shift_right a k) = Ref.to_string (Ref.shift_right ra k));
    prop "num_bits" arb_triple (fun ta ->
        let a, ra = pair_of ta in
        B.num_bits a = Ref.num_bits ra);
  ]

(* The rewritten to_float must be exact on representable values and
   correctly rounded at the 2^60-scale rounding boundaries. *)
let test_to_float_exact () =
  let two60 = B.shift_left B.one 60 in
  Alcotest.(check (float 0.0)) "2^60" (Float.ldexp 1.0 60) (B.to_float two60);
  (* ulp(2^60) = 256: +128 ties to even (down), +129 rounds up *)
  Alcotest.(check (float 0.0)) "tie to even"
    (Float.ldexp 1.0 60)
    (B.to_float (B.add two60 (B.of_int 128)));
  Alcotest.(check (float 0.0)) "tie + sticky rounds up"
    (Float.ldexp 1.0 60 +. 256.0)
    (B.to_float (B.add two60 (B.of_int 129)));
  Alcotest.(check (float 0.0)) "exact multiple"
    (Float.ldexp 1.0 60 +. 256.0)
    (B.to_float (B.add two60 (B.of_int 256)));
  Alcotest.(check (float 0.0)) "2^100" (Float.ldexp 1.0 100)
    (B.to_float (B.shift_left B.one 100));
  Alcotest.(check (float 0.0)) "negative"
    (-.Float.ldexp 1.0 100)
    (B.to_float (B.neg (B.shift_left B.one 100)))

let () =
  Alcotest.run "bigint-differential"
    [ ( "vs-schoolbook",
        [ Alcotest.test_case "edge values" `Quick test_edges;
          Alcotest.test_case "carry chains" `Quick test_carry_chains;
          Alcotest.test_case "to_float rounding" `Quick test_to_float_exact;
        ] );
      ("vs-schoolbook-props", diff_props);
    ]
