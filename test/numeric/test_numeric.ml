(* Unit + property tests for the bignum / rational kernel. *)

module B = Moq_numeric.Bigint
module Q = Moq_numeric.Rat

let check_b msg expected actual =
  Alcotest.(check string) msg expected (B.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; 1 lsl 30; (1 lsl 30) + 7; max_int; min_int;
      max_int - 1; min_int + 1; 999_999_999_999 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-999999999999999999999999999999999999"; "1000000000" ]

let test_add_carry () =
  let a = B.of_string "999999999999999999999999999999" in
  check_b "add 1" "1000000000000000000000000000000" (B.add a B.one)

let test_mul_big () =
  let a = B.of_string "12345678901234567890" in
  let b = B.of_string "98765432109876543210" in
  check_b "mul" "1219326311370217952237463801111263526900" (B.mul a b)

let test_divmod_exact () =
  let a = B.of_string "1219326311370217952237463801111263526900" in
  let b = B.of_string "98765432109876543210" in
  let q, r = B.divmod a b in
  check_b "quotient" "12345678901234567890" q;
  check_b "remainder" "0" r

let test_divmod_signs () =
  let d = B.of_int 7 and n = B.of_int 23 in
  let cases = [ (23, 7); (-23, 7); (23, -7); (-23, -7) ] in
  ignore (d, n);
  List.iter
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      Alcotest.(check int) "q" (a / b) (Option.get (B.to_int q));
      Alcotest.(check int) "r" (a mod b) (Option.get (B.to_int r)))
    cases

let test_div_by_zero () =
  Alcotest.check_raises "div0" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_gcd () =
  check_b "gcd" "6" (B.gcd (B.of_int 54) (B.of_int (-24)));
  check_b "gcd0" "5" (B.gcd B.zero (B.of_int 5));
  check_b "gcd00" "0" (B.gcd B.zero B.zero);
  let a = B.of_string "123456789123456789123456789" in
  check_b "gcd self" (B.to_string a) (B.gcd a a)

let test_pow () =
  check_b "2^100" "1267650600228229401496703205376" (B.pow (B.of_int 2) 100);
  check_b "x^0" "1" (B.pow (B.of_int 12345) 0)

let test_shift () =
  check_b "shl" (B.to_string (B.pow (B.of_int 2) 100)) (B.shift_left B.one 100);
  check_b "shr" "1" (B.shift_right (B.pow (B.of_int 2) 100) 100);
  check_b "shr mixed" "5" (B.shift_right (B.of_int 87) 4)

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "bits 2^100" 101 (B.num_bits (B.pow (B.of_int 2) 100))

let test_compare () =
  let v = List.map B.of_string [ "-100"; "-1"; "0"; "1"; "99999999999999999999" ] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b -> Alcotest.(check int) "cmp" (compare i j) (B.compare a b))
        v)
    v

let test_to_float () =
  Alcotest.(check (float 1e-9)) "to_float" 1.5e20 (B.to_float (B.of_string "150000000000000000000"))

(* ------------------------------------------------------------------ *)
(* Bigint properties                                                    *)
(* ------------------------------------------------------------------ *)

let arb_small = QCheck.int_range (-1_000_000_000) 1_000_000_000

let arb_big =
  (* random products so multi-limb values are exercised *)
  QCheck.map
    (fun (a, b, c) -> B.add (B.mul (B.of_int a) (B.of_int b)) (B.of_int c))
    (QCheck.triple arb_small arb_small arb_small)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

let bigint_props =
  [ prop "add matches int" (QCheck.pair arb_small arb_small) (fun (a, b) ->
        B.to_int (B.add (B.of_int a) (B.of_int b)) = Some (a + b));
    prop "mul matches int" (QCheck.pair (QCheck.int_range (-100000) 100000) (QCheck.int_range (-100000) 100000))
      (fun (a, b) -> B.to_int (B.mul (B.of_int a) (B.of_int b)) = Some (a * b));
    prop "divmod reconstructs" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0);
    prop "add commutative" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.equal (B.add a b) (B.add b a));
    prop "mul distributes" (QCheck.triple arb_big arb_big arb_big) (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub then add" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.equal a (B.add (B.sub a b) b));
    prop "string roundtrip" arb_big (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "gcd divides both" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "compare antisym" (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.compare a b = - (B.compare b a));
  ]

(* ------------------------------------------------------------------ *)
(* Rat unit tests                                                       *)
(* ------------------------------------------------------------------ *)

let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_rat_canonical () =
  check_q "normalized" "2/3" (Q.of_ints 4 6);
  check_q "sign in num" "-2/3" (Q.of_ints 4 (-6));
  check_q "zero" "0" (Q.of_ints 0 17);
  check_q "int" "5" (Q.of_ints 10 2)

let test_rat_arith () =
  let open Q.Infix in
  check_q "1/2+1/3" "5/6" (Q.of_ints 1 2 +/ Q.of_ints 1 3);
  check_q "1/2-1/3" "1/6" (Q.of_ints 1 2 -/ Q.of_ints 1 3);
  check_q "2/3*3/4" "1/2" (Q.of_ints 2 3 */ Q.of_ints 3 4);
  check_q "(1/2)/(3/4)" "2/3" (Q.of_ints 1 2 // Q.of_ints 3 4)

let test_rat_compare () =
  let open Q.Infix in
  Alcotest.(check bool) "1/3 < 1/2" true (Q.of_ints 1 3 </ Q.of_ints 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.of_ints (-1) 2 </ Q.of_ints 1 3);
  Alcotest.(check bool) "eq" true (Q.of_ints 2 4 =/ Q.of_ints 1 2)

let test_rat_floor_ceil () =
  Alcotest.(check string) "floor 7/2" "3" (B.to_string (Q.floor (Q.of_ints 7 2)));
  Alcotest.(check string) "floor -7/2" "-4" (B.to_string (Q.floor (Q.of_ints (-7) 2)));
  Alcotest.(check string) "ceil 7/2" "4" (B.to_string (Q.ceil (Q.of_ints 7 2)));
  Alcotest.(check string) "ceil -7/2" "-3" (B.to_string (Q.ceil (Q.of_ints (-7) 2)));
  Alcotest.(check string) "floor int" "5" (B.to_string (Q.floor (Q.of_int 5)))

let test_rat_of_float () =
  check_q "0.5" "1/2" (Q.of_float 0.5);
  check_q "-0.75" "-3/4" (Q.of_float (-0.75));
  check_q "3" "3" (Q.of_float 3.0);
  Alcotest.(check (float 0.0)) "roundtrip" 0.1 (Q.to_float (Q.of_float 0.1))

let test_rat_of_string () =
  check_q "p/q" "-5/7" (Q.of_string "-5/7");
  check_q "decimal" "-51/4" (Q.of_string "-12.75");
  check_q "decimal2" "1/8" (Q.of_string "0.125");
  check_q "int" "42" (Q.of_string "42")

let test_rat_mediant () =
  check_q "mediant" "2/5" (Q.mediant (Q.of_ints 1 3) (Q.of_ints 1 2));
  let a = Q.of_ints 1 3 and b = Q.of_ints 1 2 in
  let m = Q.mediant a b in
  Alcotest.(check bool) "between" true Q.Infix.(a </ m && m </ b)

(* Regressions for the correctly-rounded [Q.to_float]: denominators (and
   numerators) far beyond float range must underflow/overflow cleanly
   instead of dividing garbage, and representable values must convert
   exactly. *)
let test_rat_to_float_huge () =
  let pow2 k = B.shift_left B.one k in
  let tiny = Q.make B.one (pow2 2000) in
  Alcotest.(check (float 0.0)) "1/2^2000 underflows to 0" 0.0 (Q.to_float tiny);
  Alcotest.(check (float 0.0)) "-1/2^2000 underflows to -0" 0.0
    (Float.abs (Q.to_float (Q.neg tiny)));
  Alcotest.(check (float 0.0)) "(2^2000+1)/2^2000 is 1" 1.0
    (Q.to_float (Q.make (B.add (pow2 2000) B.one) (pow2 2000)));
  Alcotest.(check (float 0.0)) "(2^2000+2^1999)/2^2000 is 1.5" 1.5
    (Q.to_float (Q.make (B.add (pow2 2000) (pow2 1999)) (pow2 2000)));
  Alcotest.(check bool) "2^2000 overflows to +inf" true
    (Q.to_float (Q.of_bigint (pow2 2000)) = Float.infinity);
  Alcotest.(check bool) "-2^2000 overflows to -inf" true
    (Q.to_float (Q.neg (Q.of_bigint (pow2 2000))) = Float.neg_infinity);
  (* huge but equal-magnitude numerator and denominator: the value is
     moderate even though both sides are 600+ digits *)
  Alcotest.(check (float 0.0)) "7·2^2000 / 2^2002 = 7/4" 1.75
    (Q.to_float (Q.make (B.mul (B.of_int 7) (pow2 2000)) (pow2 2002)))

let test_rat_to_float_correctly_rounded () =
  Alcotest.(check (float 0.0)) "1/3" (1.0 /. 3.0) (Q.to_float (Q.of_ints 1 3));
  Alcotest.(check (float 0.0)) "-2/3" (-2.0 /. 3.0) (Q.to_float (Q.of_ints (-2) 3));
  Alcotest.(check (float 0.0)) "1/10" 0.1 (Q.to_float (Q.of_ints 1 10));
  (* ulp(1) below 2 is 2^-52: 1 + 2^-53 ties to even (1.0), 1 + 2^-53 +
     2^-105 must round up *)
  let pow2 k = B.shift_left B.one k in
  Alcotest.(check (float 0.0)) "tie to even"
    1.0
    (Q.to_float (Q.make (B.add (pow2 53) B.one) (pow2 53)));
  Alcotest.(check (float 0.0)) "tie + sticky rounds up"
    (1.0 +. Float.ldexp 1.0 (-52))
    (Q.to_float (Q.make (B.add (B.mul (B.add (pow2 53) B.one) (pow2 52)) B.one) (pow2 105)))

let arb_rat =
  QCheck.map
    (fun (p, q) -> Q.of_ints p (if q = 0 then 1 else q))
    (QCheck.pair (QCheck.int_range (-10000) 10000) (QCheck.int_range (-10000) 10000))

(* Rationals with denominators up to 2^1200 — far beyond float range. *)
let arb_rat_wide =
  QCheck.map
    (fun ((p, q, k), up) ->
      let base = Q.of_ints p (if q = 0 then 1 else abs q) in
      let scale = Q.of_bigint (B.shift_left B.one k) in
      if up then Q.mul base scale else Q.div base scale)
    (QCheck.pair
       (QCheck.triple
          (QCheck.int_range (-1_000_000_000) 1_000_000_000)
          (QCheck.int_range 1 1_000_000)
          (QCheck.int_range 0 1200))
       QCheck.bool)

let rat_props =
  [ prop "add assoc" (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
        Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c));
    prop "mul inverse" arb_rat (fun a ->
        QCheck.assume (not (Q.is_zero a));
        Q.equal Q.one (Q.mul a (Q.inv a)));
    prop "canonical gcd" arb_rat (fun a ->
        B.equal B.one (B.gcd (Q.num a) (Q.den a)) || Q.is_zero a);
    prop "den positive" (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        B.sign (Q.den (Q.sub a b)) > 0);
    prop "float order-preserving" (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        QCheck.assume (Q.compare a b <> 0);
        (* floats of small rationals are close enough to preserve strict order *)
        Float.compare (Q.to_float a) (Q.to_float b) = Q.compare a b
        || Float.abs (Q.to_float a -. Q.to_float b) < 1e-12);
    prop "of_float exact" (QCheck.float_range (-1e6) 1e6) (fun f ->
        Q.to_float (Q.of_float f) = f);
    prop "to_float monotone (wide range)" (QCheck.pair arb_rat_wide arb_rat_wide)
      (fun (a, b) ->
        (* correct rounding is monotone, including through underflow *)
        let c = Q.compare a b in
        let fc = Float.compare (Q.to_float a) (Q.to_float b) in
        if c < 0 then fc <= 0 else if c > 0 then fc >= 0 else fc = 0);
    prop "to_float within half ulp (wide range)" arb_rat_wide (fun a ->
        let f = Q.to_float a in
        (* the rounding error is bounded by the gap to the next float *)
        (not (Float.is_finite f))
        ||
        let err = Q.abs (Q.sub a (Q.of_float f)) in
        let ulp_gap =
          Q.of_float (Float.max (Float.succ f -. f) (f -. Float.pred f))
        in
        Q.compare err ulp_gap <= 0);
    prop "roundtrip exact on all floats" (QCheck.float_range (-1e300) 1e300) (fun f ->
        Q.to_float (Q.of_float f) = f);
    prop "string roundtrip" arb_rat (fun a -> Q.equal a (Q.of_string (Q.to_string a)));
    prop "floor <= x < floor+1" arb_rat (fun a ->
        let f = Q.of_bigint (Q.floor a) in
        Q.compare f a <= 0 && Q.compare a (Q.add f Q.one) < 0);
  ]

let () =
  Alcotest.run "numeric"
    [ ("bigint", [
        Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "add carry" `Quick test_add_carry;
        Alcotest.test_case "mul big" `Quick test_mul_big;
        Alcotest.test_case "divmod exact" `Quick test_divmod_exact;
        Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero;
        Alcotest.test_case "gcd" `Quick test_gcd;
        Alcotest.test_case "pow" `Quick test_pow;
        Alcotest.test_case "shift" `Quick test_shift;
        Alcotest.test_case "num_bits" `Quick test_num_bits;
        Alcotest.test_case "compare total" `Quick test_compare;
        Alcotest.test_case "to_float" `Quick test_to_float;
      ]);
      ("bigint-props", bigint_props);
      ("rat", [
        Alcotest.test_case "canonical" `Quick test_rat_canonical;
        Alcotest.test_case "arith" `Quick test_rat_arith;
        Alcotest.test_case "compare" `Quick test_rat_compare;
        Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
        Alcotest.test_case "of_float" `Quick test_rat_of_float;
        Alcotest.test_case "of_string" `Quick test_rat_of_string;
        Alcotest.test_case "mediant" `Quick test_rat_mediant;
        Alcotest.test_case "to_float huge num/den" `Quick test_rat_to_float_huge;
        Alcotest.test_case "to_float correctly rounded" `Quick
          test_rat_to_float_correctly_rounded;
      ]);
      ("rat-props", rat_props);
    ]
