module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update
module Oid = Moq_mod.Oid
module BX = Moq_core.Backend.Exact
module BF = Moq_core.Backend.Approx
module KnnX = Moq_core.Knn.Make (BX)
module MonX = Moq_core.Monitor.Make (BX)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module NaiveX = Moq_baseline.Naive.Make (BX)
module Grid = Moq_baseline.Grid_index
module SR = Moq_baseline.Song_roussopoulos
module LazyX = Moq_baseline.Lazy_eval.Make (BX)
module Gen = Moq_workload.Gen

let q = Q.of_int

let prop ?(count = 40) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Naive vs sweep                                                       *)
(* ------------------------------------------------------------------ *)

let naive_agrees_with_sweep (seed, n, k) =
  let n = 2 + (n mod 6) and k = 1 + (k mod 3) in
  let db = Gen.uniform_db ~seed ~n ~extent:50 ~speed:5 () in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let sweep = KnnX.run ~db ~gdist ~k ~lo:(q 0) ~hi:(q 20) in
  let naive_tl, _ = NaiveX.knn_run ~db ~gdist ~k ~lo:(q 0) ~hi:(q 20) in
  (* compare on a rational grid *)
  List.for_all
    (fun j ->
      let t = Q.div (q (2 * j + 1)) (q 5) in
      match
        ( KnnX.TL.find_at sweep.KnnX.timeline (BX.instant_of_scalar t),
          NaiveX.TL.find_at naive_tl (BX.instant_of_scalar t) )
      with
      | Some a, Some b -> Oid.Set.equal a b
      | _ -> false)
    (List.init 49 (fun j -> j))

let test_naive_more_work () =
  (* naive does O(N^2) pair computations; the sweep schedules only adjacent
     pairs *)
  let db = Gen.inversions_db ~seed:5 ~n:20 ~inversions:19 ~horizon:(q 50) in
  let gdist = Gdist.coordinate 0 in
  let _, stats = NaiveX.knn_run ~db ~gdist ~k:1 ~lo:(q 0) ~hi:(q 50) in
  Alcotest.(check int) "pairs = n(n-1)/2" 190 stats.NaiveX.pair_computations;
  (* distinct instants, <= inversions (several pairs may cross at once) *)
  Alcotest.(check bool) "events positive, at most inversions" true
    (stats.NaiveX.events > 0 && stats.NaiveX.events <= 19)

(* ------------------------------------------------------------------ *)
(* Grid index                                                           *)
(* ------------------------------------------------------------------ *)

let test_grid_range () =
  let points = [ (1, (0.0, 0.0)); (2, (3.0, 4.0)); (3, (10.0, 0.0)); (4, (-2.0, -2.0)) ] in
  let g = Grid.build ~cell:2.5 points in
  Alcotest.(check int) "size" 4 (Grid.size g);
  let within r = List.sort compare (List.map fst (Grid.range g ~center:(0.0, 0.0) ~radius:r)) in
  Alcotest.(check (list int)) "r=1" [ 1 ] (within 1.0);
  Alcotest.(check (list int)) "r=5" [ 1; 2; 4 ] (within 5.0);
  Alcotest.(check (list int)) "r=20" [ 1; 2; 3; 4 ] (within 20.0)

let test_grid_nearest_k () =
  let points = [ (1, (1.0, 0.0)); (2, (5.0, 0.0)); (3, (2.0, 0.0)); (4, (100.0, 0.0)) ] in
  let g = Grid.build ~cell:3.0 points in
  let nearest k = List.map fst (Grid.nearest_k g ~center:(0.0, 0.0) ~k) in
  Alcotest.(check (list int)) "k=1" [ 1 ] (nearest 1);
  Alcotest.(check (list int)) "k=3" [ 1; 3; 2 ] (nearest 3);
  Alcotest.(check (list int)) "k=10 clamps" [ 1; 3; 2; 4 ] (nearest 10)

(* nearest_k edge cases: the index must agree with a naive scan element
   for element (not just by distance multiset) — oids break ties, so
   duplicate positions, equidistant points and boundary-snapped points all
   have one canonical answer.  k may be 0, exceed the population, etc. *)

let naive_nearest points ~center:(cx, cy) ~k =
  if k <= 0 then []
  else
    List.sort
      (fun (o1, (x1, y1)) (o2, (x2, y2)) ->
        match
          Float.compare
            (Float.hypot (x1 -. cx) (y1 -. cy))
            (Float.hypot (x2 -. cx) (y2 -. cy))
        with
        | 0 -> compare o1 o2
        | c -> c)
      points
    |> List.filteri (fun i _ -> i < k)
    |> List.map (fun (o, (x, y)) -> (o, Float.hypot (x -. cx) (y -. cy)))

let grid_agrees ~cell points ~center ~k =
  let g = Grid.build ~cell points in
  Grid.nearest_k g ~center ~k = naive_nearest points ~center ~k

(* Generator biased toward the hard cases: coordinates snapped to cell
   boundaries (multiples of the cell size) and duplicated positions. *)
let hard_points_arb =
  let cell = 5.0 in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (pair
           (oneof
              [ float_range (-50.) 50.;
                map (fun i -> float_of_int i *. cell) (int_range (-10) 10) ])
           (oneof
              [ float_range (-50.) 50.;
                map (fun i -> float_of_int i *. cell) (int_range (-10) 10) ]))
      >>= fun pts ->
      (* duplicate a random prefix so several oids share one position *)
      int_range 0 (List.length pts) >|= fun d ->
      let dupes = List.filteri (fun i _ -> i < d) pts in
      pts @ dupes)
  in
  QCheck.make gen ~print:QCheck.Print.(list (pair float float))

let prop_grid_nearest_k_edges =
  prop ~count:200 "grid nearest_k = naive scan (ties, boundaries, any k)"
    (QCheck.pair hard_points_arb (QCheck.int_range 0 6))
    (fun (pts, kk) ->
      let points = List.mapi (fun i p -> (i + 1, p)) pts in
      let pop = List.length points in
      (* k = 0, small, exactly the population, and past it *)
      List.for_all
        (fun k -> grid_agrees ~cell:5.0 points ~center:(0.0, 0.0) ~k)
        [ 0; kk; pop; pop + 5 ]
      (* a boundary-snapped query center too *)
      && grid_agrees ~cell:5.0 points ~center:(5.0, -10.0) ~k:(max 1 kk))

let test_grid_nearest_k_duplicates () =
  (* five oids on two positions in one cell: ties broken by oid, k past
     the population clamps *)
  let points =
    [ (5, (1.0, 1.0)); (3, (1.0, 1.0)); (1, (2.0, 0.0)); (4, (2.0, 0.0));
      (2, (1.0, 1.0)) ]
  in
  let g = Grid.build ~cell:10.0 points in
  let nearest k = List.map fst (Grid.nearest_k g ~center:(0.0, 0.0) ~k) in
  Alcotest.(check (list int)) "ties by oid" [ 2; 3; 5 ] (nearest 3);
  Alcotest.(check (list int)) "k > pop" [ 2; 3; 5; 1; 4 ] (nearest 9);
  Alcotest.(check (list int)) "k = 0" [] (nearest 0)

let test_grid_nearest_k_boundary () =
  (* points exactly on cell boundaries: floor keying must not lose them *)
  let points = [ (1, (5.0, 0.0)); (2, (10.0, 0.0)); (3, (-5.0, 0.0)); (4, (0.0, 5.0)) ] in
  let g = Grid.build ~cell:5.0 points in
  Alcotest.(check (list int)) "all found, canonical order" [ 1; 3; 4; 2 ]
    (List.map fst (Grid.nearest_k g ~center:(0.0, 0.0) ~k:4))

let prop_grid_matches_linear_scan =
  prop "grid nearest_k = sort by distance"
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 30)
                    (QCheck.pair (QCheck.float_range (-100.) 100.) (QCheck.float_range (-100.) 100.)))
       (QCheck.int_range 1 5))
    (fun (pts, k) ->
      let points = List.mapi (fun i p -> (i + 1, p)) pts in
      let g = Grid.build ~cell:7.0 points in
      let got = List.map fst (Grid.nearest_k g ~center:(0.0, 0.0) ~k) in
      let expected =
        List.sort
          (fun (_, (x1, y1)) (_, (x2, y2)) ->
            Float.compare (Float.hypot x1 y1) (Float.hypot x2 y2))
          points
        |> List.filteri (fun i _ -> i < k)
        |> List.map fst
      in
      (* compare by distance multiset to tolerate exact ties *)
      let d o = let _, (x, y) = List.find (fun (o', _) -> o' = o) points in Float.hypot x y in
      List.map d got = List.map d expected)

(* ------------------------------------------------------------------ *)
(* Song-Roussopoulos: correctness gap (Figure 2's discussion)           *)
(* ------------------------------------------------------------------ *)

let figure2_like_db () =
  (* 1-NN to gamma moving right; o1 placed to overtake o2 briefly between
     re-search instants *)
  let db = DB.empty ~dim:2 ~tau:(q 0) in
  (* gamma at (t, 0); o2 rides near gamma; o1 dips close around t in (4,6) *)
  let db = DB.add_initial db 1
      (T.of_pieces
         [ { start = q 0; a = Qvec.of_list [ q 1; q (-2) ]; b = Qvec.of_list [ q 0; q 9 ] };
           { start = q 5; a = Qvec.of_list [ q 1; q 2 ]; b = Qvec.of_list [ q 0; q (-11) ] };
         ])
  in
  (* o1: x = t, y = 9-2t until 5 (y=-1 at 5), then y = 2t-11: |y| dips to 1 near t=5 *)
  let db = DB.add_initial db 2
      (T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 1; q 0 ]) ~b:(Qvec.of_list [ q 0; q 3 ]))
  in
  (* o2: constant offset 3 above gamma *)
  db

let test_sr_misses_exchange () =
  let db = figure2_like_db () in
  let gamma = T.linear ~start:(q 0) ~a:(Qvec.of_list [ q 1; q 0 ]) ~b:(Qvec.of_list [ q 0; q 0 ]) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let sweep = KnnX.run ~db ~gdist ~k:1 ~lo:(q 0) ~hi:(q 10) in
  let truth t =
    KnnX.TL.find_at sweep.KnnX.timeline (BX.instant_of_scalar (Q.of_float t))
  in
  (* o1 is nearest exactly while |9-2t| < 3 resp |2t-11| < 3: t in (3, 7) *)
  (match truth 5.0 with
   | Some s -> Alcotest.(check (list int)) "o1 nearest at 5" [ 1 ] (Oid.Set.elements s)
   | None -> Alcotest.fail "no truth at 5");
  (* coarse re-search: period 8 samples at 0 and 8 only: never sees o1 *)
  let coarse = SR.run ~db ~gamma ~k:1 ~lo:(q 0) ~hi:(q 10) ~period:8.0 () in
  let miss_coarse = SR.mismatch_fraction ~truth ~samples:coarse ~lo:0.0 ~hi:10.0 ~probes:1000 in
  Alcotest.(check bool) "coarse misses the o1 window" true (miss_coarse > 0.3);
  (* fine re-search: period 0.25 tracks it closely *)
  let fine = SR.run ~db ~gamma ~k:1 ~lo:(q 0) ~hi:(q 10) ~period:0.25 () in
  let miss_fine = SR.mismatch_fraction ~truth ~samples:fine ~lo:0.0 ~hi:10.0 ~probes:1000 in
  Alcotest.(check bool) "fine much better" true (miss_fine < miss_coarse /. 2.0);
  (* the sweep itself never misses *)
  Alcotest.(check bool) "fine still not exact" true (miss_fine > 0.0)

(* ------------------------------------------------------------------ *)
(* Lazy vs eager                                                        *)
(* ------------------------------------------------------------------ *)

let test_lazy_matches_eager () =
  let db = Gen.uniform_db ~seed:11 ~n:8 ~extent:40 ~speed:4 () in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let query = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 30)) in
  let updates = Gen.chdir_stream ~seed:12 ~db ~start:(q 0) ~gap:(q 6) ~count:4 () in
  let eager = MonX.create ~db ~gdist ~query () in
  let lazy_ = LazyX.create ~db ~gdist ~query in
  List.iter
    (fun u ->
      MonX.apply_update_exn eager u;
      LazyX.apply_update_exn lazy_ u)
    updates;
  let tl_eager = MonX.finalize eager in
  let r_lazy = LazyX.answer lazy_ in
  List.iter
    (fun j ->
      let t = Q.div (q (3 * j + 1)) (q 4) in
      match
        ( MonX.TL.find_at tl_eager (BX.instant_of_scalar t),
          MonX.TL.find_at r_lazy.LazyX.Sw.timeline (BX.instant_of_scalar t) )
      with
      | Some a, Some b ->
        Alcotest.(check (list int))
          (Printf.sprintf "t=%s" (Q.to_string t))
          (Oid.Set.elements b) (Oid.Set.elements a)
      | _ -> Alcotest.fail "timeline gap")
    (List.init 39 (fun j -> j))

let () =
  Alcotest.run "baseline"
    [ ("naive", [
        prop "naive knn = sweep knn" (QCheck.triple QCheck.small_int QCheck.small_int QCheck.small_int)
          naive_agrees_with_sweep;
        Alcotest.test_case "naive work accounting" `Quick test_naive_more_work;
      ]);
      ("grid", [
        Alcotest.test_case "range" `Quick test_grid_range;
        Alcotest.test_case "nearest_k" `Quick test_grid_nearest_k;
        Alcotest.test_case "nearest_k duplicates + clamp" `Quick test_grid_nearest_k_duplicates;
        Alcotest.test_case "nearest_k boundary points" `Quick test_grid_nearest_k_boundary;
        prop_grid_matches_linear_scan;
        prop_grid_nearest_k_edges;
      ]);
      ("song-roussopoulos", [
        Alcotest.test_case "misses exchanges between searches" `Quick test_sr_misses_exchange;
      ]);
      ("lazy", [ Alcotest.test_case "lazy answer = eager answer" `Quick test_lazy_matches_eager ]);
    ]
