(* Telemetry subsystem tests: histogram quantile accuracy, counter
   saturation, deterministic Prometheus exposition (golden), the span
   tracer's ring buffer, and a cross-check of the sweep instrumentation
   against an independent all-pairs crossing count. *)

module Histo = Moq_obs.Histo
module Registry = Moq_obs.Registry
module Export = Moq_obs.Export
module Json = Moq_obs.Json
module Sink = Moq_obs.Sink
module Help = Moq_obs.Help
module Trace = Moq_obs.Trace
module Recorder = Moq_obs.Recorder

module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module BX = Moq_core.Backend.Exact
module KnnX = Moq_core.Knn.Make (BX)
module CX = KnnX.E.C
module Gdist = Moq_core.Gdist
module Gen = Moq_workload.Gen

let q = Q.of_int

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let test_histo_quantiles () =
  let h = Histo.create "lat" in
  (* uniform grid on (0, 1]: the q-quantile is ~q *)
  for i = 1 to 1000 do
    Histo.observe h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 1000 (Histo.count h);
  List.iter
    (fun p ->
      let est = Histo.quantile h p in
      let err = Float.abs (est -. p) /. p in
      if err > 0.15 then
        Alcotest.failf "p%.0f: estimate %f off true %f by %.1f%%" (100.0 *. p)
          est p (100.0 *. err))
    [ 0.5; 0.9; 0.99 ];
  (* estimates are clamped into [min, max] *)
  Alcotest.(check bool) "p99 <= max" true (Histo.quantile h 0.99 <= Histo.max_value h);
  Alcotest.(check bool) "p50 >= min" true (Histo.quantile h 0.5 >= Histo.min_value h)

let test_histo_degenerate () =
  let h = Histo.create "one" in
  for _ = 1 to 17 do Histo.observe h 42.0 done;
  (* a single-valued distribution reports exactly, thanks to clamping *)
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q%.2f exact" p) 42.0 (Histo.quantile h p))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  Alcotest.(check (float 1e-9)) "mean" 42.0 (Histo.mean h);
  Alcotest.(check (float 1e-9)) "sum" (42.0 *. 17.0) (Histo.sum h)

let test_histo_edges () =
  let h = Histo.create ~lo:1.0 ~ratio:2.0 ~buckets:4 "edge" in
  Histo.observe h 1e-30;   (* below lo: bucket 0 *)
  Histo.observe h 1e30;    (* beyond the last bound: clamped into bucket 3 *)
  Histo.observe h nan;     (* ignored *)
  Alcotest.(check int) "NaN ignored" 2 (Histo.count h);
  (match Histo.cumulative h with
   | [ (b0, 1); (_, 2) ] ->
     Alcotest.(check (float 1e-9)) "bucket 0 bound" 1.0 b0
   | other ->
     Alcotest.failf "unexpected cumulative shape (%d buckets)" (List.length other));
  (* empty histogram: nan quantiles, not exceptions *)
  let e = Histo.create "empty" in
  Alcotest.(check bool) "empty quantile nan" true (Float.is_nan (Histo.quantile e 0.5));
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Histo.mean e))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_overflow () =
  let reg = Registry.create () in
  let c = Registry.counter reg "c_total" in
  Registry.add c (max_int - 2);
  Registry.add c 10;
  Alcotest.(check int) "saturates at max_int" max_int (Registry.value c);
  Registry.add c 1;
  Alcotest.(check int) "stays saturated" max_int (Registry.value c);
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Registry.add: counters are monotonic") (fun () ->
      Registry.add c (-1))

(* Regression for the unsynchronised-increment bug: counters, sinks and
   histograms must tally exactly under contention, not approximately.
   Before the registry grew its mutex, parallel [add]s lost updates. *)
let test_registry_race () =
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  let h = Registry.histogram reg "race_lat" in
  let c = Registry.counter reg "race_total" in
  let threads = 8 and iters = 10_000 in
  let worker _ =
    for _ = 1 to iters do
      Registry.add c 1;
      (* exercises lazy registration under contention too *)
      Sink.count sink "race_sink_total" 1;
      Histo.observe h 1.0
    done
  in
  let ts = List.init threads (fun i -> Thread.create worker i) in
  List.iter Thread.join ts;
  let expect = threads * iters in
  Alcotest.(check int) "counter exact" expect (Registry.value c);
  Alcotest.(check (option int)) "sink counter exact" (Some expect)
    (Registry.counter_value reg "race_sink_total");
  Alcotest.(check int) "histogram count exact" expect (Histo.count h);
  Alcotest.(check (float 1e-6)) "histogram sum exact" (float_of_int expect)
    (Histo.sum h)

let test_registry_idempotent () =
  let reg = Registry.create () in
  let c1 = Registry.counter reg "shared_total" in
  Registry.add c1 3;
  let c2 = Registry.counter reg "shared_total" in
  Registry.add c2 4;
  Alcotest.(check int) "one metric" 7 (Registry.value c1);
  Alcotest.(check (option int)) "by name" (Some 7)
    (Registry.counter_value reg "shared_total");
  Alcotest.check_raises "wrong type re-registration"
    (Invalid_argument "Registry.gauge: shared_total registered as another type")
    (fun () -> ignore (Registry.gauge reg "shared_total"));
  let h = Registry.histogram reg "h" in
  Histo.observe h 2.0;
  Histo.observe h 3.0;
  Alcotest.(check bool) "flatten exposes histogram _count/_sum" true
    (List.mem ("h_count", 2.0) (Registry.flatten reg)
     && List.mem ("h_sum", 5.0) (Registry.flatten reg))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_prometheus_golden () =
  let reg = Registry.create () in
  let c = Registry.counter ~help:"processed events" reg "moq_events_total" in
  Registry.add c 42;
  let g = Registry.gauge ~help:"order list length" reg "moq_order_len" in
  Registry.set g 17.5;
  let h = Registry.histogram ~help:"latency" ~lo:1.0 ~ratio:2.0 ~buckets:8 reg "moq_lat" in
  List.iter (Histo.observe h) [ 0.5; 1.0; 3.0; 100.0 ];
  let expected =
    "# HELP moq_events_total processed events\n\
     # TYPE moq_events_total counter\n\
     moq_events_total 42\n\
     # HELP moq_lat latency\n\
     # TYPE moq_lat histogram\n\
     moq_lat_bucket{le=\"1\"} 2\n\
     moq_lat_bucket{le=\"4\"} 3\n\
     moq_lat_bucket{le=\"128\"} 4\n\
     moq_lat_bucket{le=\"+Inf\"} 4\n\
     moq_lat_sum 104.5\n\
     moq_lat_count 4\n\
     # HELP moq_order_len order list length\n\
     # TYPE moq_order_len gauge\n\
     moq_order_len 17.5\n"
  in
  Alcotest.(check string) "exposition" expected (Export.prometheus reg)

(* Hostile metric names and help strings must not corrupt the exposition
   stream: names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]*, HELP text gets
   backslash and newline escaped (format 0.0.4), nothing else changes. *)
let test_prometheus_pathological () =
  let reg = Registry.create () in
  let anon = Registry.counter ~help:"anonymous" reg "" in
  Registry.add anon 1;
  let c = Registry.counter ~help:"nine\nlives \\ counted" reg "9lives_total" in
  Registry.add c 9;
  Registry.set (Registry.gauge reg "moq bad gauge!") 2.5;
  let expected =
    "# HELP _ anonymous\n\
     # TYPE _ counter\n\
     _ 1\n\
     # HELP _lives_total nine\\nlives \\\\ counted\n\
     # TYPE _lives_total counter\n\
     _lives_total 9\n\
     # TYPE moq_bad_gauge_ gauge\n\
     moq_bad_gauge_ 2.5\n"
  in
  Alcotest.(check string) "sanitized exposition" expected (Export.prometheus reg)

let test_json_export () =
  let reg = Registry.create () in
  Registry.add (Registry.counter reg "n_total") 3;
  Registry.set (Registry.gauge reg "depth") 2.0;
  Histo.observe (Registry.histogram reg "lat") 0.25;
  let s = Export.json_string reg in
  List.iter
    (fun needle ->
      if not
           (let ln = String.length needle and ls = String.length s in
            let rec go i = i + ln <= ls && (String.sub s i ln = needle || go (i + 1)) in
            go 0)
      then Alcotest.failf "JSON export missing %S in %s" needle s)
    [ "\"n_total\":3"; "\"depth\":2.0"; "\"lat\""; "\"p99\"" ];
  (* NaN/infinity are emitted as null, keeping the document parseable *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "escaping" "\"a\\\"b\\n\""
    (Json.to_string (Json.Str "a\"b\n"))

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:2 () in
  let finish name =
    let s = Trace.begin_span tr name in
    Trace.annotate s (name ^ "-note");
    Trace.end_span tr s
  in
  List.iter finish [ "a"; "b"; "c" ];
  Alcotest.(check int) "finished" 3 (Trace.finished_count tr);
  Alcotest.(check int) "dropped" 1 (Trace.dropped_count tr);
  Alcotest.(check (list string)) "most recent retained, oldest first"
    [ "b"; "c" ]
    (List.map Trace.span_name (Trace.spans tr));
  (match Trace.spans tr with
   | s :: _ ->
     Alcotest.(check (list string)) "annotation" [ "b-note" ]
       (List.map snd (Trace.events s))
   | [] -> Alcotest.fail "no spans")

let test_trace_nesting () =
  let tr = Trace.create () in
  Trace.with_span tr "outer" (fun () ->
      Trace.with_span tr "inner" (fun () -> ()));
  (match Trace.spans tr with
   | [ inner; outer ] ->
     (* inner finishes first, so it sits earlier in the ring *)
     Alcotest.(check string) "inner name" "inner" (Trace.span_name inner);
     Alcotest.(check int) "inner depth" 1 (Trace.span_depth inner);
     Alcotest.(check int) "outer depth" 0 (Trace.span_depth outer);
     Alcotest.(check bool) "durations non-negative" true
       (Trace.duration inner >= 0.0 && Trace.duration outer >= 0.0)
   | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  Alcotest.(check int) "stack drained" 0 (Trace.open_count tr);
  (* an exception still closes the span *)
  (try Trace.with_span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "exception-safe" 3 (Trace.finished_count tr)

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)
(* ------------------------------------------------------------------ *)

let test_sink () =
  Alcotest.(check bool) "noop inactive" false (Sink.active Sink.noop);
  (* the noop sink swallows everything without allocating registry state *)
  Sink.count Sink.noop "x" 1;
  Sink.observe Sink.noop "x" 1.0;
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  Alcotest.(check bool) "live sink active" true (Sink.active sink);
  Sink.count sink "ops_total" 2;
  Sink.count sink "ops_total" 3;
  Sink.set sink "depth" 4.0;
  let r = Sink.time sink "dur_seconds" (fun () -> 7) in
  Alcotest.(check int) "time passes result through" 7 r;
  Alcotest.(check (option int)) "counter" (Some 5)
    (Registry.counter_value reg "ops_total");
  (match Registry.find reg "dur_seconds" with
   | Some (Registry.Histogram h) -> Alcotest.(check int) "timed once" 1 (Histo.count h)
   | _ -> Alcotest.fail "dur_seconds not a histogram")

(* ------------------------------------------------------------------ *)
(* Sweep instrumentation vs an independent baseline                    *)
(* ------------------------------------------------------------------ *)

(* The inversions workload makes ground truth computable two independent
   ways: the generator promises exactly [inversions] crossings, and the
   naive all-pairs enumeration finds each one without any sweep machinery.
   The sink counters must agree with both. *)
let test_sweep_matches_naive () =
  let n = 12 and inversions = 20 in
  let db = Gen.inversions_db ~seed:7 ~n ~inversions ~horizon:(q 100) in
  let gdist = Gdist.coordinate 0 in
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  let r = KnnX.run_obs ~sink ~db ~gdist ~k:1 ~lo:(q 0) ~hi:(q 100) in
  (* independent ground truth: all-pairs crossing enumeration *)
  let curves =
    List.map (fun (_, tr) -> BX.curve_of_qpiece (Gdist.curve gdist tr)) (DB.objects db)
  in
  let after = BX.instant_of_scalar (BX.scalar_of_rat (q 0)) in
  let horizon = BX.scalar_of_rat (q 100) in
  let rec all_pairs = function
    | c1 :: rest ->
      List.fold_left
        (fun acc c2 -> acc + List.length (CX.all_crossings ~after ~horizon c1 c2))
        (all_pairs rest) rest
    | [] -> 0
  in
  let naive_crossings = all_pairs curves in
  Alcotest.(check int) "naive agrees with the generator" inversions naive_crossings;
  (* the paper's m counts transpositions of the order list: a batch of
     simultaneous crossings pops as one event but performs several swaps,
     so swaps -- not event pops -- must match the all-pairs count *)
  Alcotest.(check (option int)) "sink swaps = naive"
    (Some naive_crossings)
    (Registry.counter_value reg "moq_sweep_swaps_total");
  Alcotest.(check (option int)) "sink support changes = naive"
    (Some naive_crossings)
    (Registry.counter_value reg "moq_sweep_support_changes_total");
  (* the sink's pop counts mirror the engine's own stats *)
  let s = r.KnnX.stats in
  Alcotest.(check (option int)) "sink crossings = engine crossings"
    (Some s.KnnX.E.crossings)
    (Registry.counter_value reg "moq_sweep_crossings_total");
  Alcotest.(check (option int)) "sink events = engine events"
    (Some (s.KnnX.E.crossings + s.KnnX.E.births + s.KnnX.E.deaths + s.KnnX.E.jumps))
    (Registry.counter_value reg "moq_sweep_events_total");
  (* Lemma 9 sanity: bounded comparisons per event on this workload *)
  (match Registry.find reg "moq_sweep_ops_per_event" with
   | Some (Registry.Histogram h) ->
     Alcotest.(check bool) "per-event ops observed" true (Histo.count h > 0)
   | _ -> Alcotest.fail "moq_sweep_ops_per_event missing")

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_recorder_ring () =
  let r = Recorder.create ~capacity:4 () in
  for i = 1 to 10 do
    Recorder.record r ~kind:"tick" ~fields:[ ("i", Json.Int i) ] ()
  done;
  Alcotest.(check int) "recorded total" 10 (Recorder.recorded r);
  Alcotest.(check int) "dropped by wrap" 6 (Recorder.dropped r);
  let evs = Recorder.events r in
  Alcotest.(check int) "ring holds capacity" 4 (List.length evs);
  (* oldest-first, seq monotonic, and only the newest four survive *)
  let seqs = List.map (fun (e : Recorder.event) -> e.Recorder.seq) evs in
  Alcotest.(check (list int)) "newest four, in order" [ 6; 7; 8; 9 ] seqs;
  (match Recorder.last ~kind:"tick" r with
   | Some e ->
     Alcotest.(check bool) "last field" true
       (List.assoc_opt "i" e.Recorder.fields = Some (Json.Int 10))
   | None -> Alcotest.fail "last event missing");
  Recorder.clear r;
  Alcotest.(check int) "clear empties the ring" 0 (List.length (Recorder.events r));
  Alcotest.(check int) "clear keeps the totals" 10 (Recorder.recorded r)

let test_recorder_disabled () =
  let r = Recorder.create ~capacity:0 () in
  Alcotest.(check bool) "disabled" false (Recorder.enabled r);
  Recorder.record r ~kind:"tick" ();
  Alcotest.(check int) "record is a no-op" 0 (Recorder.recorded r)

let test_recorder_dump_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "moq_rec_%d" (Unix.getpid ()))
  in
  let r = Recorder.create ~capacity:8 () in
  Recorder.record r ~kind:"update_admitted"
    ~fields:[ ("oid", Json.Int 7); ("tau", Json.Str "3/2") ] ();
  Recorder.record r ~kind:"session_close" ~fields:[ ("session", Json.Int 1) ] ();
  (match Recorder.dump r ~dir ~reason:"test" with
   | Error e -> Alcotest.fail e
   | Ok path ->
     (match Recorder.load path with
      | Error e -> Alcotest.fail e
      | Ok d ->
        Alcotest.(check string) "reason" "test" d.Recorder.d_reason;
        Alcotest.(check int) "events" 2 (List.length d.Recorder.d_events);
        let kinds =
          List.map (fun (e : Recorder.event) -> e.Recorder.kind) d.Recorder.d_events
        in
        Alcotest.(check (list string)) "kinds oldest-first"
          [ "update_admitted"; "session_close" ] kinds;
        (match d.Recorder.d_events with
         | e :: _ ->
           Alcotest.(check bool) "fields survive the roundtrip" true
             (List.assoc_opt "tau" e.Recorder.fields = Some (Json.Str "3/2"))
         | [] -> Alcotest.fail "empty"));
     Sys.remove path);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* HELP-string parity: Help table <-> README metric glossary <-> export *)
(* ------------------------------------------------------------------ *)

(* Backticked moq_shard_* / moq_agg_* names in the README glossary table.
   The table rows are the lines starting with "| `moq_"; a row may name
   several metrics (slash-separated cells). *)
let glossary_names () =
  (* cwd is the repo root under `dune exec`, the test's own directory
     under `dune runtest` (where the dune dep materializes the file two
     levels up) *)
  let path =
    List.find Sys.file_exists [ "README.md"; "../../README.md" ]
  in
  let ic = open_in path in
  let names = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.length l > 3 && String.sub l 0 3 = "| `" then begin
         (* collect every `...` span on the row, keep full metric names *)
         let n = String.length l in
         let i = ref 0 in
         while !i < n do
           if l.[!i] = '`' then begin
             let j = try String.index_from l (!i + 1) '`' with Not_found -> n in
             if j < n then begin
               let tok = String.sub l (!i + 1) (j - !i - 1) in
               let has_prefix p =
                 String.length tok >= String.length p
                 && String.sub tok 0 (String.length p) = p
               in
               if has_prefix "moq_shard_" || has_prefix "moq_agg_" then
                 names := tok :: !names;
               i := j + 1
             end
             else i := n
           end
           else incr i
         done
       end
     done
   with End_of_file -> ());
  close_in ic;
  List.sort_uniq compare !names

let test_help_glossary_parity () =
  let glossary = glossary_names () in
  let table = List.sort_uniq compare (List.map fst Help.all) in
  Alcotest.(check (list string))
    "README glossary rows and Help table carry the same metric names"
    glossary table

let test_help_reaches_exporter () =
  let reg = Registry.create () in
  let sink = Sink.of_registry reg in
  List.iter
    (fun (name, _) ->
      let is_suffix suf =
        let ls = String.length suf and ln = String.length name in
        ln >= ls && String.sub name (ln - ls) ls = suf
      in
      if is_suffix "_seconds" then Sink.observe sink name 0.01
      else if name = "moq_shard_shards" then Sink.set sink name 4.
      else Sink.count sink name 1)
    Help.all;
  let out = Export.prometheus reg in
  List.iter
    (fun (name, help) ->
      let expect = Printf.sprintf "# HELP %s %s\n" name help in
      let found =
        let ln = String.length out and le = String.length expect in
        let rec scan i =
          i + le <= ln && (String.sub out i le = expect || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) (name ^ " exports its HELP line") true found)
    Help.all

let () =
  Alcotest.run "obs"
    [ ("histo",
       [ Alcotest.test_case "quantile accuracy" `Quick test_histo_quantiles;
         Alcotest.test_case "degenerate distribution" `Quick test_histo_degenerate;
         Alcotest.test_case "edges and NaN" `Quick test_histo_edges ]);
      ("registry",
       [ Alcotest.test_case "counter saturation" `Quick test_counter_overflow;
         Alcotest.test_case "exact under contention" `Quick test_registry_race;
         Alcotest.test_case "idempotent registration" `Quick test_registry_idempotent ]);
      ("export",
       [ Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
         Alcotest.test_case "pathological names escaped" `Quick
           test_prometheus_pathological;
         Alcotest.test_case "json snapshot" `Quick test_json_export ]);
      ("trace",
       [ Alcotest.test_case "ring buffer" `Quick test_trace_ring;
         Alcotest.test_case "nesting and safety" `Quick test_trace_nesting ]);
      ("sink", [ Alcotest.test_case "noop and live" `Quick test_sink ]);
      ("help",
       [ Alcotest.test_case "table matches README glossary" `Quick
           test_help_glossary_parity;
         Alcotest.test_case "HELP lines reach the exporter" `Quick
           test_help_reaches_exporter ]);
      ("sweep",
       [ Alcotest.test_case "instrumentation vs naive baseline" `Quick
           test_sweep_matches_naive ]);
      ("recorder",
       [ Alcotest.test_case "bounded ring" `Quick test_recorder_ring;
         Alcotest.test_case "capacity 0 disables" `Quick test_recorder_disabled;
         Alcotest.test_case "dump/load roundtrip" `Quick
           test_recorder_dump_roundtrip ]);
    ]
