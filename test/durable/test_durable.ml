(* Durability suite: WAL replay fidelity, checkpoint recovery, the
   kill-and-recover acceptance test (recovery equals the uninterrupted
   run), fault-injected streams through the sanitizer, and the engine's
   audit + self-healing rebuild.

   Workload seeds come from MOQ_FAULT_SEEDS (comma-separated) so CI can
   sweep fixed seeds; default "11,22,33". *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module IO = Moq_mod.Mod_io
module Gen = Moq_workload.Gen
module Crc32 = Moq_durable.Crc32
module Wal = Moq_durable.Wal
module Store = Moq_durable.Store
module Sanitize = Moq_durable.Sanitize
module Faults = Moq_durable.Faults

module BX = Moq_core.Backend.Exact
module EX = Moq_core.Engine.Make (BX)
module MonX = Moq_core.Monitor.Make (BX)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist

let q = Q.of_int

let seeds =
  match Sys.getenv_opt "MOQ_FAULT_SEEDS" with
  | None | Some "" -> [ 11; 22; 33 ]
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun w -> int_of_string_opt (String.trim w))

let tmp_ctr = ref 0

let tmp_dir () =
  incr tmp_ctr;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "moq_durable_%d_%d" (Unix.getpid ()) !tmp_ctr)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o700;
  d

let update_str u = Format.asprintf "%a" U.pp u
let db_str db = IO.db_to_string db

let check_updates_equal msg expected actual =
  Alcotest.(check (list string)) msg (List.map update_str expected) (List.map update_str actual)

(* accepted-update reference: fold apply, skipping rejects *)
let apply_lenient db us =
  List.fold_left
    (fun db u -> match DB.apply db u with Ok db' -> db' | Error _ -> db)
    db us

let workload seed =
  let db = Gen.uniform_db ~seed ~n:10 ~extent:60 ~speed:5 () in
  let us = Gen.mixed_stream ~seed:(seed + 1) ~db ~start:(q 0) ~gap:(q 2) ~count:20 () in
  (db, us)

(* ------------------------------------------------------------------ *)
(* CRC32                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32 () =
  Alcotest.(check string) "check value" "cbf43926" (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.string ""));
  Alcotest.(check (option int)) "hex roundtrip" (Some 0xcbf43926) (Crc32.of_hex "cbf43926");
  Alcotest.(check (option int)) "bad hex" None (Crc32.of_hex "xyzw1234");
  Alcotest.(check (option int)) "wrong width" None (Crc32.of_hex "12345")

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)
(* ------------------------------------------------------------------ *)

let wal_with seed =
  let db, us = workload seed in
  let accepted =
    (* the WAL only ever sees validated updates *)
    List.rev
      (snd
         (List.fold_left
            (fun (db, acc) u ->
              match DB.apply db u with Ok db' -> (db', u :: acc) | Error _ -> (db, acc))
            (db, []) us))
  in
  let path = Filename.concat (tmp_dir ()) "wal.log" in
  let w = Wal.create ~fsync:false ~path ~dim:(DB.dim db) () in
  List.iter (Wal.append w) accepted;
  Wal.close w;
  (path, accepted)

let test_wal_roundtrip () =
  List.iter
    (fun seed ->
      let path, accepted = wal_with seed in
      match Wal.read path with
      | Ok r ->
        Alcotest.(check bool) "clean tail" true (r.Wal.tail = Wal.Clean);
        check_updates_equal "records" accepted r.Wal.updates
      | Error e -> Alcotest.failf "read failed: %s" e)
    seeds

let is_prefix_of full part =
  let full = List.map update_str full and part = List.map update_str part in
  List.length part <= List.length full
  && List.for_all2 (fun a b -> a = b) part (List.filteri (fun i _ -> i < List.length part) full)

let test_wal_truncated_tail () =
  List.iter
    (fun seed ->
      let path, accepted = wal_with seed in
      let contents = IO.read_file path in
      let faults = Faults.create ~seed in
      for _ = 1 to 20 do
        let cut = Faults.truncate_string faults contents in
        IO.write_file path cut;
        match Wal.read path with
        | Ok r ->
          Alcotest.(check bool) "good prefix" true (is_prefix_of accepted r.Wal.updates);
          (* a mid-record cut must be reported; a cut that only lost a
             record's trailing newline leaves a complete CRC-valid record *)
          if r.Wal.tail = Wal.Clean then
            Alcotest.(check bool) "clean tail only at record boundary" true
              (String.length cut = String.length contents
              || cut.[String.length cut - 1] = '\n'
              || contents.[String.length cut] = '\n')
        | Error _ -> () (* header itself truncated: reported, not raised *)
      done)
    seeds

let test_wal_bit_flip () =
  List.iter
    (fun seed ->
      let path, accepted = wal_with seed in
      let contents = IO.read_file path in
      let faults = Faults.create ~seed in
      for _ = 1 to 40 do
        IO.write_file path (Faults.bit_flip faults contents);
        match Wal.read path with
        | Ok r ->
          (* the flip damaged exactly one record: replay stops there with
             the failure reported, keeping the good prefix *)
          Alcotest.(check bool) "good prefix" true (is_prefix_of accepted r.Wal.updates);
          Alcotest.(check bool) "flip reported" true (r.Wal.tail <> Wal.Clean)
        | Error _ -> () (* flip hit the header *)
      done)
    seeds

(* A hostile write syscall: at most [chunk] bytes per call, raising EINTR
   on a fixed cadence before anything is written.  Every durable path goes
   through Fsutil.write_all, which must still land every byte. *)
let with_short_writes ~chunk ~eintr_every f =
  let calls = ref 0 in
  Moq_durable.Fsutil.set_write_for_tests
    (Some
       (fun fd buf pos len ->
         incr calls;
         if eintr_every > 0 && !calls mod eintr_every = 0 then
           raise (Unix.Unix_error (Unix.EINTR, "write", ""));
         Unix.write fd buf pos (min chunk len)));
  Fun.protect ~finally:(fun () -> Moq_durable.Fsutil.set_write_for_tests None) f

let test_wal_short_writes () =
  List.iter
    (fun seed ->
      let path, accepted =
        with_short_writes ~chunk:3 ~eintr_every:5 (fun () -> wal_with seed)
      in
      match Wal.read path with
      | Ok r ->
        Alcotest.(check bool) "clean tail under short writes" true (r.Wal.tail = Wal.Clean);
        check_updates_equal "no byte lost" accepted r.Wal.updates
      | Error e -> Alcotest.failf "read failed: %s" e)
    seeds

let test_checkpoint_short_writes () =
  List.iter
    (fun seed ->
      let db, us = workload seed in
      let dir = tmp_dir () in
      with_short_writes ~chunk:1 ~eintr_every:7 (fun () ->
          let store = Store.init ~fsync:false ~checkpoint_every:5 ~dir db in
          List.iter (fun u -> ignore (Store.append store u)) us;
          Store.close store);
      let reference = apply_lenient db us in
      match Store.recover ~dir with
      | Ok r ->
        Alcotest.(check string) "state identical under short writes"
          (db_str reference) (db_str r.Store.db)
      | Error e -> Alcotest.failf "recover failed: %s" e)
    seeds

(* ------------------------------------------------------------------ *)
(* Store: checkpoint + log recovery                                    *)
(* ------------------------------------------------------------------ *)

let test_store_recovery_equals_direct () =
  List.iter
    (fun seed ->
      let db, us = workload seed in
      let dir = tmp_dir () in
      let store = Store.init ~fsync:false ~checkpoint_every:7 ~dir db in
      List.iter (fun u -> ignore (Store.append store u)) us;
      Store.close store;
      let reference = apply_lenient db us in
      match Store.recover ~dir with
      | Ok r ->
        Alcotest.(check string) "database" (db_str reference) (db_str r.Store.db);
        Alcotest.(check string) "clock"
          (Q.to_string (DB.last_update reference))
          (Q.to_string r.Store.clock);
        Alcotest.(check bool) "clean tail" true (r.Store.tail = Wal.Clean)
      | Error e -> Alcotest.failf "recover failed: %s" e)
    seeds

let test_store_corrupt_checkpoint_reported () =
  let db, _ = workload (List.hd seeds) in
  let dir = tmp_dir () in
  let store = Store.init ~fsync:false ~dir db in
  Store.close store;
  let ck = Filename.concat dir "checkpoint.mod" in
  let contents = IO.read_file ck in
  let faults = Faults.create ~seed:5 in
  IO.write_file ck (Faults.bit_flip faults contents);
  (match Store.recover ~dir with
   | Error _ -> () (* reported, not raised *)
   | Ok _ -> Alcotest.fail "expected checkpoint corruption to be reported");
  (* torn checkpoint (truncated mid-write) is also reported *)
  IO.write_file ck (String.sub contents 0 (String.length contents / 2));
  match Store.recover ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected torn checkpoint to be reported"

(* A rotated store keeps the previous checkpoint generation: losing the
   current one to any fault must fall back to prev + both WAL segments
   and land on the identical state. *)
let test_store_fallback_to_prev_checkpoint () =
  List.iter
    (fun seed ->
      let db, us = workload seed in
      let dir = tmp_dir () in
      let store = Store.init ~fsync:false ~checkpoint_every:4 ~dir db in
      List.iter (fun u -> ignore (Store.append store u)) us;
      Store.close store;
      let reference = apply_lenient db us in
      let ck = Store.checkpoint_file dir in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: a previous generation exists" seed) true
        (Sys.file_exists (Store.checkpoint_prev_file dir));
      let contents = IO.read_file ck in
      let damage =
        [ ( "bit flip",
            fun () ->
              let faults = Faults.create ~seed:(seed + 11) in
              IO.write_file ck (Faults.bit_flip faults contents) );
          ( "truncation",
            fun () ->
              IO.write_file ck (String.sub contents 0 (String.length contents / 3)) );
          ("deletion", fun () -> Sys.remove ck) ]
      in
      List.iter
        (fun (what, break) ->
          IO.write_file ck contents;
          break ();
          match Store.recover ~dir with
          | Error e -> Alcotest.failf "seed %d %s: fallback failed: %s" seed what e
          | Ok r ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d %s: via fallback" seed what) true
              r.Store.fallback;
            Alcotest.(check string)
              (Printf.sprintf "seed %d %s: state identical" seed what)
              (db_str reference) (db_str r.Store.db))
        damage)
    seeds

let test_store_both_generations_corrupt () =
  let db, us = workload (List.hd seeds) in
  let dir = tmp_dir () in
  let store = Store.init ~fsync:false ~checkpoint_every:4 ~dir db in
  List.iter (fun u -> ignore (Store.append store u)) us;
  Store.close store;
  let faults = Faults.create ~seed:23 in
  List.iter
    (fun path -> IO.write_file path (Faults.bit_flip faults (IO.read_file path)))
    [ Store.checkpoint_file dir; Store.checkpoint_prev_file dir ];
  match Store.recover ~dir with
  | Error _ -> () (* reported, not raised *)
  | Ok _ -> Alcotest.fail "expected recovery to fail with both generations corrupt"

(* ------------------------------------------------------------------ *)
(* Kill-and-recover: recovery + resumed monitor equals the             *)
(* uninterrupted run (the acceptance criterion)                        *)
(* ------------------------------------------------------------------ *)

let nearest_query hi = Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) hi)

let monitor_timeline ~db ~hi us =
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let m = MonX.create ~db ~gdist ~query:(nearest_query hi) () in
  List.iter (fun u -> match MonX.apply_update m u with Ok () | Error _ -> ()) us;
  MonX.finalize m

module Oid = Moq_mod.Oid

(* Semantic equality: algebraic instants print their isolating interval,
   whose width depends on how much each run refined it — compare with the
   backend's exact instant comparison instead of the rendering. *)
let timeline_equal (a : MonX.TL.t) (b : MonX.TL.t) =
  List.length a = List.length b
  && List.for_all2
       (fun pa pb ->
         match pa, pb with
         | MonX.TL.Span (a1, a2, sa), MonX.TL.Span (b1, b2, sb) ->
           BX.compare_instant a1 b1 = 0 && BX.compare_instant a2 b2 = 0 && Oid.Set.equal sa sb
         | MonX.TL.At (a1, sa), MonX.TL.At (b1, sb) ->
           BX.compare_instant a1 b1 = 0 && Oid.Set.equal sa sb
         | _ -> false)
       a b

let check_timeline_equal msg expected actual =
  if not (timeline_equal expected actual) then
    Alcotest.failf "%s:@.expected:@.%a@.got:@.%a" msg MonX.TL.pp expected MonX.TL.pp
      actual

let test_kill_and_recover () =
  List.iter
    (fun seed ->
      let db, us = workload seed in
      let hi = q 30 in
      (* uninterrupted reference run *)
      let reference = monitor_timeline ~db ~hi us in
      (* interrupted run: ingest a prefix, crash (torn tail), recover *)
      let faults = Faults.create ~seed:(seed * 7 + 1) in
      let kill_at = 1 + Faults.int faults (List.length us - 1) in
      let dir = tmp_dir () in
      let store = Store.init ~fsync:false ~checkpoint_every:5 ~dir db in
      List.iteri (fun i u -> if i < kill_at then ignore (Store.append store u)) us;
      Store.close store;
      (* simulate the crash arriving mid-append: tear bytes off the log *)
      let wal_path = Filename.concat dir "wal.log" in
      let contents = IO.read_file wal_path in
      let torn = 1 + Faults.int faults 4 in
      IO.write_file wal_path (String.sub contents 0 (max 0 (String.length contents - torn)));
      match Store.recover ~dir with
      | Error e -> Alcotest.failf "seed %d: recovery failed: %s" seed e
      | Ok r ->
        (* resume: a fresh monitor over the recovered db, replaying the
           stream; already-applied updates are stale and skip themselves *)
        let resumed = monitor_timeline ~db:r.Store.db ~hi us in
        check_timeline_equal
          (Printf.sprintf "seed %d (killed at %d, tore %d bytes): timelines equal" seed
             kill_at torn)
          reference resumed)
    seeds

(* ------------------------------------------------------------------ *)
(* Sanitizer under fault-injected streams                              *)
(* ------------------------------------------------------------------ *)

let test_sanitizer_fault_storm () =
  List.iter
    (fun seed ->
      let db, us = workload seed in
      let faults = Faults.create ~seed in
      let dirty = Faults.mangle faults us in
      let san = Sanitize.create () in
      let final = Sanitize.ingest_all san db dirty in
      let c = Sanitize.counters san in
      Alcotest.(check bool) "no crash, clock monotone" true
        (Q.compare (DB.last_update final) (DB.last_update db) >= 0);
      Alcotest.(check bool) "every update classified" true
        (c.Sanitize.accepted + Sanitize.rejected san + c.Sanitize.unknown_oid
         + c.Sanitize.not_defined
         >= List.length dirty);
      (* determinism: same seed, same verdicts *)
      let faults2 = Faults.create ~seed in
      let dirty2 = Faults.mangle faults2 us in
      check_updates_equal "fault injection is deterministic" dirty dirty2;
      let san2 = Sanitize.create () in
      let final2 = Sanitize.ingest_all san2 db dirty2 in
      Alcotest.(check string) "same final db" (db_str final) (db_str final2))
    seeds

let test_store_ingest_faulty_stream () =
  List.iter
    (fun seed ->
      let db, us = workload seed in
      let faults = Faults.create ~seed:(seed + 100) in
      let dirty = Faults.mangle faults us in
      let dir = tmp_dir () in
      let store = Store.init ~fsync:false ~checkpoint_every:6 ~dir db in
      let san = Sanitize.create () in
      List.iter (fun u -> ignore (Store.ingest store san u)) dirty;
      let in_memory = db_str (Store.db store) in
      Store.close store;
      match Store.recover ~dir with
      | Ok r ->
        Alcotest.(check string) "recovery equals in-memory state" in_memory (db_str r.Store.db)
      | Error e -> Alcotest.failf "recover failed: %s" e)
    seeds

(* ------------------------------------------------------------------ *)
(* Engine audit + self-healing rebuild                                 *)
(* ------------------------------------------------------------------ *)

let example_engine () =
  (* two linear curves crossing at t = 8 *)
  let line a b =
    Moq_poly.Piecewise.Qpiece.of_poly ~start:(q 0)
      (Moq_poly.Qpoly.of_list [ q b; q a ])
  in
  EX.create ~start:(q 0) ~horizon:(q 100)
    [ (EX.Obj (1, 0), line 1 0); (EX.Obj (2, 0), line (-1) 16) ]

let test_audit_clean () =
  let eng = example_engine () in
  Alcotest.(check (list string)) "clean at start" [] (EX.audit eng);
  EX.advance eng ~upto:(q 50) ~emit:(fun _ -> ());
  Alcotest.(check (list string)) "clean after events" [] (EX.audit eng);
  Alcotest.(check (list string)) "heal is a no-op when healthy" [] (EX.audit_and_heal eng);
  Alcotest.(check int) "no rebuilds" 0 (EX.stats eng).EX.rebuilds

let test_audit_detects_skipped_events_and_heals () =
  (* a buggy caller jumps the clock past a pending crossing without
     advancing: monotone batch time is violated *)
  let eng = example_engine () in
  EX.sync_clock eng ~at:(q 10);
  let violations = EX.audit eng in
  Alcotest.(check bool) "violation found" true (violations <> []);
  let healed = EX.audit_and_heal eng in
  Alcotest.(check bool) "heal reports the violations" true (healed <> []);
  Alcotest.(check int) "audit failure counted" 1 (EX.stats eng).EX.audit_failures;
  Alcotest.(check int) "rebuild performed" 1 (EX.stats eng).EX.rebuilds;
  Alcotest.(check (list string)) "clean after heal" [] (EX.audit eng);
  (* the rebuild re-sorted at now = 10, which is past the crossing at 8:
     the order reflects the post-crossing world *)
  (match List.map EX.label (EX.order eng) with
   | [ EX.Obj (2, 0); EX.Obj (1, 0) ] -> ()
   | _ -> Alcotest.fail "order not re-sorted at the recovered clock")

let test_forced_rebuild_preserves_semantics () =
  List.iter
    (fun seed ->
      let db, us = workload seed in
      let hi = q 30 in
      let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
      let gdist = Gdist.euclidean_sq ~gamma in
      let run ~heal_every =
        let m = MonX.create ~db ~gdist ~query:(nearest_query hi) () in
        List.iteri
          (fun i u ->
            (match MonX.apply_update m u with Ok () | Error _ -> ());
            if heal_every > 0 && i mod heal_every = 0 then MonX.heal m)
          us;
        MonX.finalize m
      in
      let plain = run ~heal_every:0 in
      let healed = run ~heal_every:3 in
      check_timeline_equal
        (Printf.sprintf "seed %d: rebuild mid-stream preserves the timeline" seed)
        plain healed)
    seeds

let test_monitor_audit () =
  let db, us = workload (List.hd seeds) in
  let gamma = T.stationary ~start:(q 0) (Qvec.zero 2) in
  let gdist = Gdist.euclidean_sq ~gamma in
  let m = MonX.create ~db ~gdist ~query:(nearest_query (q 30)) () in
  List.iter (fun u -> match MonX.apply_update m u with Ok () | Error _ -> ()) us;
  Alcotest.(check (list string)) "monitor audit clean" [] (MonX.audit m);
  Alcotest.(check (list string)) "monitor heal no-op" [] (MonX.audit_and_heal m)

let () =
  Alcotest.run "durable"
    [ ("crc32", [ Alcotest.test_case "known vectors" `Quick test_crc32 ]);
      ("wal",
       [ Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
         Alcotest.test_case "truncated tail tolerated" `Quick test_wal_truncated_tail;
         Alcotest.test_case "bit flips detected" `Quick test_wal_bit_flip;
         Alcotest.test_case "short writes and EINTR lose nothing" `Quick
           test_wal_short_writes;
       ]);
      ("store",
       [ Alcotest.test_case "recovery equals direct application" `Quick
           test_store_recovery_equals_direct;
         Alcotest.test_case "corrupt checkpoint reported" `Quick
           test_store_corrupt_checkpoint_reported;
         Alcotest.test_case "fallback to previous checkpoint" `Quick
           test_store_fallback_to_prev_checkpoint;
         Alcotest.test_case "both generations corrupt reported" `Quick
           test_store_both_generations_corrupt;
         Alcotest.test_case "kill-and-recover equals uninterrupted run" `Quick
           test_kill_and_recover;
         Alcotest.test_case "checkpoint under short writes" `Quick
           test_checkpoint_short_writes;
       ]);
      ("sanitize",
       [ Alcotest.test_case "fault storm" `Quick test_sanitizer_fault_storm;
         Alcotest.test_case "faulty stream through the store" `Quick
           test_store_ingest_faulty_stream;
       ]);
      ("audit",
       [ Alcotest.test_case "clean engine" `Quick test_audit_clean;
         Alcotest.test_case "skipped events detected and healed" `Quick
           test_audit_detects_skipped_events_and_heals;
         Alcotest.test_case "forced rebuild preserves semantics" `Quick
           test_forced_rebuild_preserves_semantics;
         Alcotest.test_case "monitor audit" `Quick test_monitor_audit;
       ]);
    ]
