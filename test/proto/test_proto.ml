(* Wire-protocol suite: length-prefixed framing over a real socketpair
   (roundtrip, timeout, EOF, garbage, oversize) and the moqp 1 codec
   (request / server-message / piece roundtrips, percent-encoded algebraic
   instants, malformed input). *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module U = Moq_mod.Update
module Frame = Moq_proto.Frame
module Proto = Moq_proto.Proto

let q = Q.of_int
let vec l = Qvec.of_list (List.map Q.of_int l)
let pair () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0

let fwrite fd s =
  match Frame.write fd s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "Frame.write: %s" (Frame.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let a, b = pair () in
  let r = Frame.reader b in
  let payloads =
    [ "x"; "HELLO moqp 1"; "multi\nline\npayload"; "sp ace \t tab";
      String.make 100_000 'z' ]
  in
  List.iter (fwrite a) payloads;
  List.iter
    (fun p ->
      match Frame.read r with
      | `Frame got -> Alcotest.(check string) "frame payload" p got
      | `Eof | `Timeout | `Garbage _ -> Alcotest.fail "expected a frame")
    payloads;
  Unix.close a;
  (match Frame.read r with
   | `Eof -> ()
   | _ -> Alcotest.fail "expected eof after peer close");
  Unix.close b

let test_frame_timeout () =
  let a, b = pair () in
  let r = Frame.reader b in
  (match Frame.read ~timeout:0.05 r with
   | `Timeout -> ()
   | _ -> Alcotest.fail "expected timeout on an idle peer");
  fwrite a "late";
  (match Frame.read ~timeout:5.0 r with
   | `Frame s -> Alcotest.(check string) "frame after timeout" "late" s
   | _ -> Alcotest.fail "expected the late frame");
  Unix.close a;
  Unix.close b

let write_raw fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let test_frame_garbage () =
  let a, b = pair () in
  let r = Frame.reader b in
  write_raw a "nonsense without a length prefix\n";
  (match Frame.read r with
   | `Garbage _ -> ()
   | _ -> Alcotest.fail "expected garbage on a malformed prefix");
  Unix.close a;
  Unix.close b

let test_frame_oversize () =
  let a, b = pair () in
  let r = Frame.reader b in
  (* writing beyond the cap is refused locally, as a typed error *)
  (match Frame.write a (String.make (Frame.max_payload + 1) 'y') with
   | Error (Frame.Oversize { size; limit }) ->
     Alcotest.(check int) "oversize size" (Frame.max_payload + 1) size;
     Alcotest.(check int) "oversize limit" Frame.max_payload limit
   | Ok () -> Alcotest.fail "oversize write accepted"
   | Error e -> Alcotest.failf "wrong write error: %s" (Frame.error_to_string e));
  (* a peer announcing an oversize frame is rejected before allocating *)
  write_raw a (Printf.sprintf "%d x\n" (Frame.max_payload + 1));
  (match Frame.read r with
   | `Garbage (Frame.Oversize _) -> ()
   | _ -> Alcotest.fail "expected a typed oversize announcement");
  Unix.close a;
  Unix.close b

let test_frame_torn () =
  (* the peer vanishes mid-length-prefix *)
  let a, b = pair () in
  let r = Frame.reader b in
  write_raw a "123";
  Unix.close a;
  (match Frame.read r with
   | `Garbage Frame.Torn -> ()
   | _ -> Alcotest.fail "expected torn on a mid-prefix eof");
  Unix.close b;
  (* ... and mid-payload *)
  let a, b = pair () in
  let r = Frame.reader b in
  write_raw a "10 abc";
  Unix.close a;
  (match Frame.read r with
   | `Garbage Frame.Torn -> ()
   | _ -> Alcotest.fail "expected torn on a mid-payload eof");
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_token_codec () =
  let raw = "root(t^2 + -448/11*t + 663/11) in (1011/704, 337/176) ~ 1.53799" in
  let enc = Proto.encode_token raw in
  Alcotest.(check bool) "no spaces survive encoding" false
    (String.contains enc ' ');
  Alcotest.(check string) "decode inverts encode" raw (Proto.decode_token enc);
  let tricky = "a%b c\nd\te%%20" in
  Alcotest.(check string) "percent and whitespace" tricky
    (Proto.decode_token (Proto.encode_token tricky))

let requests =
  [ Proto.Hello 1;
    Proto.Update (U.New { oid = 3; tau = q 7; a = vec [ 1; 0 ]; b = vec [ 5; 5 ] });
    Proto.Update (U.Chdir { oid = 3; tau = Q.of_string "19/2"; a = vec [ 0; -2 ] });
    Proto.Update (U.Terminate { oid = 3; tau = q 12 });
    Proto.Subscribe { kind = Proto.Sub_knn 2; lo = q 0; hi = q 100 };
    Proto.Subscribe { kind = Proto.Sub_range (Q.of_string "49/4"); lo = q 1; hi = q 10 };
    Proto.Subscribe { kind = Proto.Sub_gdist (Proto.Speed_sq, q 9); lo = q 0; hi = q 5 };
    Proto.Subscribe { kind = Proto.Sub_gdist (Proto.Euclidean_sq, q 16); lo = q 0; hi = q 5 };
    Proto.Subscribe
      { kind =
          Proto.Sub_agg
            { d = q 5; window = Q.of_string "10/3";
              pois = [ [ q 0; q 0 ]; [ Q.of_string "-40"; Q.of_string "163/7" ] ] };
        lo = q 0; hi = q 100 };
    Proto.Unsubscribe 4;
    Proto.Query { kind = Proto.Qk_knn 1; lo = q 0; hi = q 40 };
    Proto.Query { kind = Proto.Qk_range (q 50); lo = q 0; hi = q 40 };
    Proto.Stats `Json;
    Proto.Stats `Prometheus;
    Proto.Ping;
    Proto.Bye;
    Proto.Repl_hello { version = 1; since = None };
    Proto.Repl_hello { version = 1; since = Some (170001, 42) } ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let s = Proto.render_request req in
      match Proto.parse_request ~dim:2 s with
      | Ok got -> Alcotest.(check bool) s true (got = req)
      | Error e -> Alcotest.failf "%s: %s" s e)
    requests

let algebraic = "root(t^2 + -448/11*t + 663/11) in (1011/704, 337/176) ~ 1.53799"

let server_msgs =
  [ Proto.R_hello { session = 5; dim = 2; clock = q 3 };
    Proto.R_update Proto.V_accepted;
    Proto.R_update (Proto.V_rejected "stale update at 3");
    Proto.R_update (Proto.V_quarantined "unknown oid 9");
    Proto.R_subscribe { sub = 1 };
    Proto.R_unsubscribe
      { sub = 1;
        pieces = [ Proto.P_at (algebraic, [ 1; 2 ]); Proto.P_span ("0", "5/2", []) ] };
    Proto.R_query [ Proto.P_span ("1/3", algebraic, [ 7 ]) ];
    Proto.R_stats "{\"a\": 1,\n \"b\": [2, 3]}";
    Proto.R_pong { clock = Q.of_string "8/3" };
    Proto.R_bye;
    Proto.R_err { code = "busy"; msg = "at most 64 sessions" };
    Proto.E_pieces
      { sub = 2; first_seq = 10;
        pieces = [ Proto.P_at (algebraic, [ 1 ]); Proto.P_span ("4", "9/2", [ 1; 3 ]) ] };
    Proto.E_dropped { sub = 2; from_seq = 11; to_seq = 19 };
    Proto.E_complete { sub = 2 };
    Proto.E_shutdown { reason = "draining" };
    Proto.R_repl_hello
      { dim = 2; clock = q 3; epoch = 170001; seq = 42; snapshot = None };
    Proto.R_repl_hello
      { dim = 2; clock = Q.of_string "7/2"; epoch = 170002; seq = 0;
        snapshot = Some "dim 2\nnew 1 0 0 0 1 1\n" };
    Proto.E_repl_update
      { seq = 43; dim = 2;
        u = U.New { oid = 3; tau = q 7; a = vec [ 1; 0 ]; b = vec [ 5; 5 ] } };
    Proto.E_repl_digest { clock = q 9; bytes = 1234; crc = "deadbeef" } ]

let test_server_msg_roundtrip () =
  List.iter
    (fun msg ->
      let s = Proto.render_server_msg msg in
      match Proto.parse_server_msg s with
      | Ok got ->
        Alcotest.(check bool) (String.split_on_char '\n' s |> List.hd) true (got = msg)
      | Error e -> Alcotest.failf "%s: %s" s e)
    server_msgs

let test_is_event () =
  List.iter
    (fun msg ->
      let expect =
        match msg with
        | Proto.E_pieces _ | Proto.E_dropped _ | Proto.E_complete _
        | Proto.E_shutdown _ | Proto.E_repl_update _ | Proto.E_repl_digest _ ->
          true
        | _ -> false
      in
      Alcotest.(check bool) "is_event" expect (Proto.is_event msg))
    server_msgs

let test_piece_roundtrip () =
  List.iter
    (fun p ->
      let s = Proto.render_piece p in
      match Proto.parse_piece s with
      | Ok got -> Alcotest.(check bool) s true (got = p)
      | Error e -> Alcotest.failf "%s: %s" s e)
    [ Proto.P_at ("0", []);
      Proto.P_at (algebraic, [ 1; 2; 3 ]);
      Proto.P_span ("-7/2", algebraic, [ 9 ]);
      Proto.P_agg
        { poi = 0; widx = 3; w_lo = "30"; w_hi = "40"; count = 2;
          density = 2.5; distinct = 4 } ]

(* The agg wire grammar: arity is data-dependent (npois × dim
   coordinates), and density travels as a hex float literal. *)
let test_agg_wire () =
  (* hex-float density is lossless even for values with no finite decimal
     (or binary-decimal) rendering *)
  List.iter
    (fun density ->
      let p =
        Proto.P_agg
          { poi = 1; widx = 0; w_lo = "0"; w_hi = "10/3"; count = 3; density;
            distinct = 7 }
      in
      match Proto.parse_piece (Proto.render_piece p) with
      | Ok (Proto.P_agg got) ->
        Alcotest.(check bool)
          (Printf.sprintf "density %.17g bit-exact" density)
          true
          (Int64.equal (Int64.bits_of_float got.density)
             (Int64.bits_of_float density))
      | Ok _ -> Alcotest.fail "parsed to a non-agg piece"
      | Error e -> Alcotest.fail e)
    [ 0.0; 1.0 /. 3.0; 0.1; 1e-300; 12345.6789 ];
  (* agg rows ride the EVENT stream like any other piece *)
  let msg =
    Proto.E_pieces
      { sub = 3; first_seq = 0;
        pieces =
          [ Proto.P_agg
              { poi = 0; widx = 0; w_lo = "0"; w_hi = "10"; count = 1;
                density = 0.75; distinct = 1 };
            Proto.P_at ("5", [ 1 ]) ] }
  in
  (match Proto.parse_server_msg (Proto.render_server_msg msg) with
   | Ok got -> Alcotest.(check bool) "agg pieces in EVENT" true (got = msg)
   | Error e -> Alcotest.fail e);
  (* np / coordinate-arity validation *)
  List.iter
    (fun s ->
      match Proto.parse_request ~dim:2 s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed agg subscription %S" s)
    [ "SUBSCRIBE agg";
      "SUBSCRIBE agg 5 10";
      "SUBSCRIBE agg 5 10 x 0 0 0 100";
      (* np = 2 but only one POI's coordinates present *)
      "SUBSCRIBE agg 5 10 2 0 0 0 100";
      (* coordinates fine, lo/hi missing *)
      "SUBSCRIBE agg 5 10 2 0 0 40 40";
      (* one coordinate short for dim 2 *)
      "SUBSCRIBE agg 5 10 1 0 0 100";
      (* non-rational coordinate *)
      "SUBSCRIBE agg 5 10 1 0 z 0 100" ];
  (* the same np-sensitive head parses under the right dim *)
  match Proto.parse_request ~dim:3 "SUBSCRIBE agg 5 10 1 1 2 3 0 100" with
  | Ok (Proto.Subscribe { kind = Proto.Sub_agg { pois = [ [ _; _; _ ] ]; _ }; _ }) -> ()
  | Ok _ -> Alcotest.fail "dim-3 agg subscription parsed to the wrong shape"
  | Error e -> Alcotest.fail e

let test_malformed_requests () =
  List.iter
    (fun s ->
      match Proto.parse_request ~dim:2 s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %S" s)
    [ ""; "FROB"; "HELLO"; "HELLO moqp x"; "UPDATE"; "UPDATE new 1 2 3";
      "UPDATE teleport 1 2"; "SUBSCRIBE"; "SUBSCRIBE knn"; "SUBSCRIBE knn 2 0";
      "UNSUBSCRIBE"; "UNSUBSCRIBE x"; "QUERY knn 2"; "STATS xml"; "PING extra" ]

let test_malformed_server_msgs () =
  List.iter
    (fun s ->
      match Proto.parse_server_msg s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed server message %S" s)
    [ ""; "WAT"; "OK"; "EVENT"; "EVENT x y z"; "EVENT-DROPPED 1 2";
      "OK REPL-HELLO moqp 1 dim 2 clock 3 epoch 1 seq 0 mode teleport";
      "REPL-UPDATE 1 2"; "REPL-DIGEST 3 x y" ]

(* ------------------------------------------------------------------ *)
(* Frame attributes (tracing extension)                                *)
(* ------------------------------------------------------------------ *)

(* Heads whose grammar admits a [trace=]/[ts=]/[wm=] suffix. *)
let attr_requests =
  List.filter
    (function
      | Proto.Update _ | Proto.Query _ | Proto.Subscribe _ | Proto.Unsubscribe _ ->
        true
      | _ -> false)
    requests

let attr_server_msgs =
  List.filter
    (function
      | Proto.E_pieces _ | Proto.E_dropped _ | Proto.E_complete _
      | Proto.E_repl_update _ | Proto.E_repl_digest _ ->
        true
      | _ -> false)
    server_msgs

let full_attrs =
  { Proto.a_trace = Some (0x1fabc, 0x9d);
    a_ts = Some 1723112345.5;
    a_wm = Some (170001, 42) }

let test_attrs_roundtrip () =
  List.iter
    (fun req ->
      let s = Proto.render_request_attrs full_attrs req in
      match Proto.parse_request_attrs ~dim:2 s with
      | Ok (req', a) ->
        Alcotest.(check bool) s true (req' = req && a = full_attrs)
      | Error e -> Alcotest.failf "%s: %s" s e)
    attr_requests;
  List.iter
    (fun msg ->
      let s = Proto.render_server_msg_attrs full_attrs msg in
      match Proto.parse_server_msg_attrs s with
      | Ok (msg', a) ->
        Alcotest.(check bool)
          (String.split_on_char '\n' s |> List.hd)
          true
          (msg' = msg && a = full_attrs)
      | Error e -> Alcotest.failf "%s: %s" s e)
    attr_server_msgs

let test_attrs_free_text_untouched () =
  (* free-text heads neither gain nor lose attribute-shaped tokens *)
  let err = Proto.R_err { code = "busy"; msg = "retry later trace=1/2" } in
  (match Proto.parse_server_msg_attrs (Proto.render_server_msg err) with
   | Ok (got, a) ->
     Alcotest.(check bool) "ERR text verbatim" true
       (got = err && a = Proto.no_attrs)
   | Error e -> Alcotest.failf "ERR: %s" e);
  (* attrs requested on a non-capable head are dropped, not smuggled *)
  Alcotest.(check string) "HELLO ignores attrs"
    (Proto.render_request (Proto.Hello 1))
    (Proto.render_request_attrs full_attrs (Proto.Hello 1))

let test_attrs_malformed_ignored () =
  let base = Proto.render_request (Proto.Unsubscribe 4) in
  List.iter
    (fun suffix ->
      match Proto.parse_request_attrs ~dim:2 (base ^ suffix) with
      | Ok (req, a) ->
        Alcotest.(check bool) (base ^ suffix) true
          (req = Proto.Unsubscribe 4 && a = Proto.no_attrs)
      | Error e -> Alcotest.failf "%s: %s" (base ^ suffix) e)
    [ " trace=xyz"; " trace=1"; " ts=bogus"; " ts=nan"; " ts=inf"; " wm=5";
      " wm=a/b"; " trace=zz ts=oops wm=x" ]

(* Property coverage: a moqp 1 peer must parse every attributed frame to
   the same request/message (forward interop), and the attr-aware parsers
   must accept every attribute-free moqp 1 frame as [no_attrs] (backward
   interop).  Attribute codecs roundtrip exactly — [ts] values are drawn
   on the microsecond grid the wire format preserves. *)

let gen_opt g = QCheck.Gen.(frequency [ (1, return None); (3, map Option.some g) ])

let gen_attrs =
  let open QCheck.Gen in
  let id = int_bound 0xFFFFFFF in
  let ts = map (fun k -> float_of_int k /. 1e6) (int_bound 2_000_000_000) in
  map
    (fun (tr, t, wm) -> { Proto.a_trace = tr; a_ts = t; a_wm = wm })
    (triple (gen_opt (pair id id)) (gen_opt ts) (gen_opt (pair id id)))

let arb_attrs_req =
  QCheck.make
    ~print:(fun (a, r) -> Proto.render_request_attrs a r)
    QCheck.Gen.(pair gen_attrs (oneofl attr_requests))

let arb_attrs_msg =
  QCheck.make
    ~print:(fun (a, m) -> Proto.render_server_msg_attrs a m)
    QCheck.Gen.(pair gen_attrs (oneofl attr_server_msgs))

let prop_attrs_roundtrip_req =
  QCheck.Test.make ~name:"attrs request roundtrip" ~count:300 arb_attrs_req
    (fun (a, req) ->
      Proto.parse_request_attrs ~dim:2 (Proto.render_request_attrs a req)
      = Ok (req, a))

let prop_attrs_roundtrip_msg =
  QCheck.Test.make ~name:"attrs server msg roundtrip" ~count:300 arb_attrs_msg
    (fun (a, msg) ->
      Proto.parse_server_msg_attrs (Proto.render_server_msg_attrs a msg)
      = Ok (msg, a))

let prop_moqp1_reads_attrs =
  QCheck.Test.make ~name:"moqp 1 parser strips attrs" ~count:300 arb_attrs_req
    (fun (a, req) ->
      Proto.parse_request ~dim:2 (Proto.render_request_attrs a req) = Ok req)

let prop_moqp1_reads_attrs_msg =
  QCheck.Test.make ~name:"moqp 1 parser strips attrs (msgs)" ~count:300
    arb_attrs_msg
    (fun (a, msg) ->
      Proto.parse_server_msg (Proto.render_server_msg_attrs a msg) = Ok msg)

let prop_attrs_read_moqp1 =
  QCheck.Test.make ~name:"attr parser accepts moqp 1 frames" ~count:100
    (QCheck.make ~print:Proto.render_request QCheck.Gen.(oneofl requests))
    (fun req ->
      Proto.parse_request_attrs ~dim:2 (Proto.render_request req)
      = Ok (req, Proto.no_attrs))

let prop_attrs_read_moqp1_msg =
  QCheck.Test.make ~name:"attr parser accepts moqp 1 frames (msgs)" ~count:100
    (QCheck.make ~print:Proto.render_server_msg QCheck.Gen.(oneofl server_msgs))
    (fun msg ->
      Proto.parse_server_msg_attrs (Proto.render_server_msg msg)
      = Ok (msg, Proto.no_attrs))

(* ------------------------------------------------------------------ *)
(* Canonical piece streams                                             *)
(* ------------------------------------------------------------------ *)

let canon_cases =
  [ ( "dup instants collapse",
      [ Proto.P_at ("1", [ 2 ]); Proto.P_at ("1", [ 2 ]);
        Proto.P_span ("1", "2", [ 2 ]) ] );
    ( "span·at·span run with one answer set",
      [ Proto.P_span ("0", "1", [ 4; 7 ]); Proto.P_at ("1", [ 4; 7 ]);
        Proto.P_span ("1", "2", [ 4; 7 ]); Proto.P_at ("2", [ 4 ]) ] );
    ( "distinct answers survive",
      [ Proto.P_span ("0", "1", [ 1 ]); Proto.P_at ("1", [ 1; 2 ]);
        Proto.P_span ("1", "2", [ 2 ]) ] );
    ( "long homogeneous chain",
      [ Proto.P_span ("0", "1", []); Proto.P_at ("1", []);
        Proto.P_span ("1", "2", []); Proto.P_at ("2", []);
        Proto.P_span ("2", "3", []); Proto.P_at ("3", [ 5 ]) ] );
    ("empty", []);
    ("lone instant", [ Proto.P_at ("4", [ 9 ]) ]) ]

let test_simplify_idempotent () =
  List.iter
    (fun (name, ps) ->
      let once = Proto.simplify_pieces ps in
      Alcotest.(check bool) (name ^ ": idempotent") true
        (Proto.simplify_pieces once = once))
    canon_cases

(* The incremental canonicalizer must agree with the batch simplifier on
   every input AND on every way of splitting that input across pushes. *)
let test_canon_matches_simplify () =
  List.iter
    (fun (name, ps) ->
      let c = Proto.Canon.create () in
      let pushed = List.concat_map (Proto.Canon.push c) ps in
      let out = pushed @ Proto.Canon.flush c in
      Alcotest.(check bool) name true (out = Proto.simplify_pieces ps))
    canon_cases

let test_canon_streaming_prefixes () =
  (* feeding a stream piecewise and all at once give identical output *)
  List.iter
    (fun (name, ps) ->
      let whole =
        let c = Proto.Canon.create () in
        let pushed = List.concat_map (Proto.Canon.push c) ps in
        pushed @ Proto.Canon.flush c
      in
      (* chunk the stream at every split point *)
      let rec splits k =
        if k > List.length ps then ()
        else begin
          let c = Proto.Canon.create () in
          let fst_part = List.filteri (fun i _ -> i < k) ps in
          let snd_part = List.filteri (fun i _ -> i >= k) ps in
          let out1 = List.concat_map (Proto.Canon.push c) fst_part in
          let out2 = List.concat_map (Proto.Canon.push c) snd_part in
          let out = out1 @ out2 @ Proto.Canon.flush c in
          Alcotest.(check bool) (Printf.sprintf "%s @ split %d" name k) true
            (out = whole);
          splits (k + 1)
        end
      in
      splits 0)
    canon_cases

let () =
  Alcotest.run "proto"
    [ ("frame",
       [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
         Alcotest.test_case "timeout" `Quick test_frame_timeout;
         Alcotest.test_case "garbage" `Quick test_frame_garbage;
         Alcotest.test_case "oversize" `Quick test_frame_oversize;
         Alcotest.test_case "torn" `Quick test_frame_torn ]);
      ("codec",
       [ Alcotest.test_case "token percent-coding" `Quick test_token_codec;
         Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
         Alcotest.test_case "server msg roundtrip" `Quick test_server_msg_roundtrip;
         Alcotest.test_case "is_event" `Quick test_is_event;
         Alcotest.test_case "piece roundtrip" `Quick test_piece_roundtrip;
         Alcotest.test_case "agg wire grammar" `Quick test_agg_wire;
         Alcotest.test_case "malformed requests" `Quick test_malformed_requests;
         Alcotest.test_case "malformed server msgs" `Quick test_malformed_server_msgs ]);
      ("attrs",
       Alcotest.test_case "full roundtrip" `Quick test_attrs_roundtrip
       :: Alcotest.test_case "free text untouched" `Quick
            test_attrs_free_text_untouched
       :: Alcotest.test_case "malformed ignored" `Quick test_attrs_malformed_ignored
       :: List.map QCheck_alcotest.to_alcotest
            [ prop_attrs_roundtrip_req; prop_attrs_roundtrip_msg;
              prop_moqp1_reads_attrs; prop_moqp1_reads_attrs_msg;
              prop_attrs_read_moqp1; prop_attrs_read_moqp1_msg ]);
      ("canon",
       [ Alcotest.test_case "simplify idempotent" `Quick test_simplify_idempotent;
         Alcotest.test_case "canon = simplify" `Quick test_canon_matches_simplify;
         Alcotest.test_case "canon split-invariant" `Quick test_canon_streaming_prefixes ]) ]
