module Q = Moq_numeric.Rat
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update
module Gen = Moq_workload.Gen
module Scenario = Moq_workload.Scenario
module BX = Moq_core.Backend.Exact
module EX = Moq_core.Engine.Make (BX)
module KnnX = Moq_core.Knn.Make (BX)
module Gdist = Moq_core.Gdist
module Qvec = Moq_geom.Vec.Qvec

let q = Q.of_int

let prop ?(count = 50) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let test_uniform_db () =
  let db = Gen.uniform_db ~seed:42 ~n:50 () in
  Alcotest.(check int) "50 objects" 50 (DB.cardinal db);
  Alcotest.(check int) "dim 2" 2 (DB.dim db);
  (* deterministic: same seed, same db *)
  let db' = Gen.uniform_db ~seed:42 ~n:50 () in
  List.iter2
    (fun (o, tr) (o', tr') ->
      Alcotest.(check int) "oid" o o';
      Alcotest.(check bool) "trajectory" true (T.equal tr tr'))
    (DB.objects db) (DB.objects db');
  (* different seed differs *)
  let db2 = Gen.uniform_db ~seed:43 ~n:50 () in
  Alcotest.(check bool) "seed matters" false
    (List.for_all2 (fun (_, a) (_, b) -> T.equal a b) (DB.objects db) (DB.objects db2))

(* swaps, not popped events: simultaneous multi-way intersections are one
   batch but still one swap per inverted pair *)
let count_crossings db ~hi =
  let g = Gdist.coordinate 0 in
  let r = KnnX.run ~db ~gdist:g ~k:1 ~lo:(q 0) ~hi in
  r.KnnX.stats.KnnX.E.swaps

let test_inversions_controlled () =
  (* the number of sweep crossings equals the requested inversions *)
  List.iter
    (fun inv ->
      let db = Gen.inversions_db ~seed:7 ~n:12 ~inversions:inv ~horizon:(q 100) in
      Alcotest.(check int)
        (Printf.sprintf "crossings for %d inversions" inv)
        inv
        (count_crossings db ~hi:(q 100)))
    [ 0; 1; 5; 20; 50 ]

let prop_inversions =
  prop "inversions = crossings" (QCheck.pair (QCheck.int_range 2 15) (QCheck.int_range 0 40))
    (fun (n, inv) ->
      let inv = min inv (n * (n - 1) / 2) in
      let db = Gen.inversions_db ~seed:(n + inv) ~n ~inversions:inv ~horizon:(q 50) in
      count_crossings db ~hi:(q 50) = inv)

let test_chdir_stream () =
  let db = Gen.uniform_db ~seed:1 ~n:10 () in
  let us = Gen.chdir_stream ~seed:2 ~db ~start:(q 0) ~gap:(q 5) ~count:8 () in
  Alcotest.(check int) "8 updates" 8 (List.length us);
  (* all applicable in order, chronological *)
  let final = DB.apply_all_exn db us in
  Alcotest.(check string) "clock" "40" (Q.to_string (DB.last_update final));
  List.iter (function U.Chdir _ -> () | _ -> Alcotest.fail "expected chdir") us

let test_mixed_stream () =
  let db = Gen.uniform_db ~seed:1 ~n:10 () in
  let us = Gen.mixed_stream ~seed:3 ~db ~start:(q 0) ~gap:(q 2) ~count:40 () in
  Alcotest.(check int) "40 updates" 40 (List.length us);
  let final = DB.apply_all_exn db us in
  Alcotest.(check bool) "objects grew or shrank sensibly" true (DB.cardinal final >= 10);
  let kinds =
    List.fold_left
      (fun (n, t, c) -> function
        | U.New _ -> (n + 1, t, c)
        | U.Terminate _ -> (n, t + 1, c)
        | U.Chdir _ -> (n, t, c + 1))
      (0, 0, 0) us
  in
  let n, _, c = kinds in
  Alcotest.(check bool) "has news and chdirs" true (n > 0 && c > 0)

let test_scenario_example1 () =
  let tr = Scenario.example1_airplane () in
  Alcotest.(check (list string)) "turns" [ "21"; "22" ] (List.map Q.to_string (T.turns tr));
  let tr2 = Scenario.example2_landing () in
  Alcotest.(check bool) "landed and parked" true
    (Qvec.equal (T.position_exn tr2 (q 47)) (T.position_exn tr2 (q 99)))

(* the Scenario curves must reproduce the paper's Example 12 trace (the
   deep assertions live in test/core; here we pin the scenario fixture) *)
let test_scenario_example12 () =
  let o1, o2, o3, o4 = Scenario.example12_curves () in
  let eng =
    EX.create ~start:(q 0) ~horizon:(q 40)
      [ (EX.Obj (1, 0), o1); (EX.Obj (2, 0), o2); (EX.Obj (3, 0), o3); (EX.Obj (4, 0), o4) ]
  in
  let points = ref [] in
  EX.advance eng ~upto:(q 20) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  Alcotest.(check (list (float 1e-9))) "events before 20" [ 8.0; 10.0; 17.0 ] (List.rev !points);
  EX.replace_curve eng ~at:(q 20) (EX.Obj (1, 0)) (Scenario.example12_o1_after_chdir o1);
  points := [];
  EX.advance eng ~upto:(q 40) ~emit:(function
    | EX.Point i -> points := BX.instant_to_float i :: !points
    | EX.Span _ -> ());
  Alcotest.(check (list (float 1e-9))) "events after update" [ 22.0; 31.0 ] (List.rev !points)

(* Regression: coincident crossing clusters once made the engine drop a
   neighbour's pending event without rescheduling it (the pair's crossing was
   then lost and the final order stayed wrong).  The inversions workload is
   dense in such clusters; both backends must end in the true final order. *)
let test_coincident_cluster_final_order () =
  let module EF = Moq_core.Engine.Make (Moq_core.Backend.Approx) in
  let module BF = Moq_core.Backend.Approx in
  let n = 64 in
  let db = Gen.inversions_db ~seed:n ~n ~inversions:(2 * n) ~horizon:(q 1000) in
  let gd = Gdist.coordinate 0 in
  let ex =
    EX.create ~start:(q 0) ~horizon:(q 1000)
      (List.map (fun (o, tr) -> (EX.Obj (o, 0), BX.curve_of_qpiece (Gdist.curve gd tr)))
         (DB.objects db))
  in
  let ef =
    EF.create ~start:0.0 ~horizon:1000.0
      (List.map (fun (o, tr) -> (EF.Obj (o, 0), BF.curve_of_qpiece (Gdist.curve gd tr)))
         (DB.objects db))
  in
  EX.advance ex ~upto:(q 1000) ~emit:(fun _ -> ());
  EF.advance ef ~upto:1000.0 ~emit:(fun _ -> ());
  EX.check_invariants ex;
  EF.check_invariants ef;
  let ox = List.map (fun e -> match EX.label e with EX.Obj (o, _) -> o | _ -> -1) (EX.order ex) in
  let of_ = List.map (fun e -> match EF.label e with EF.Obj (o, _) -> o | _ -> -1) (EF.order ef) in
  Alcotest.(check (list int)) "final orders identical" ox of_;
  Alcotest.(check int) "exact swaps = inversions" (2 * n) (EX.stats ex).EX.swaps;
  let sf = EF.stats ef in
  Alcotest.(check int) "float swaps = inversions" (2 * n) sf.EF.swaps

let test_scenario_figure2 () =
  let c1, c2 = Scenario.figure2_curves () in
  let module C = EX.C in
  (match C.first_crossing ~after:(BX.instant_of_scalar (q 0)) c1 c2 with
   | Some i -> Alcotest.(check (float 1e-9)) "D = 8" 8.0 (BX.instant_to_float i)
   | None -> Alcotest.fail "expected crossing at D");
  let c1' = Scenario.figure2_o1_after_a c1 in
  (match C.first_crossing ~after:(BX.instant_of_scalar (q 3)) c1' c2 with
   | None -> ()
   | Some _ -> Alcotest.fail "crossing should be cancelled");
  let c2' = Scenario.figure2_o2_after_b c2 in
  (match C.first_crossing ~after:(BX.instant_of_scalar (q 5)) c1' c2' with
   | Some i -> Alcotest.(check (float 1e-9)) "C = 7" 7.0 (BX.instant_to_float i)
   | None -> Alcotest.fail "expected crossing at C")

(* ------------------------------------------------------------------ *)
(* Determinism regression: the generators are specified to emit exactly
   the same bytes for the same seed on every supported OCaml (the CI
   matrix runs 4.14 and 5.1).  All randomness flows through the repo's
   own splitmix64 Prng and all numbers are exact rationals, so these
   digests are golden — a change means a silent workload change and
   breaks cross-version bench comparability. *)

let digest s = Digest.to_hex (Digest.string s)

let render_trace rows =
  String.concat "\n"
    (List.map
       (fun (oid, t, pos) ->
         Printf.sprintf "%d,%s,%s" oid (Q.to_string t)
           (String.concat "," (List.map Q.to_string (Qvec.to_list pos))))
       rows)

let test_generator_digests () =
  let db = Gen.uniform_db ~seed:42 ~n:25 () in
  Alcotest.(check string) "uniform_db seed 42"
    "92a4b07bbccf00e7a160555d03479618"
    (digest (Moq_mod.Mod_io.db_to_string db));
  let clustered = Gen.clustered_db ~seed:9 ~n:60 () in
  Alcotest.(check string) "clustered_db seed 9"
    "c1617011bf0d49e509fbaf8bde09c00f"
    (digest (Moq_mod.Mod_io.db_to_string clustered));
  let stream =
    Gen.mixed_stream ~seed:43 ~db ~start:(q 0) ~gap:(q 3) ~count:20 ()
  in
  Alcotest.(check string) "mixed_stream seed 43"
    "ed33c95be5a32858d7f00b59abe8bc07"
    (digest (Moq_mod.Mod_io.updates_to_string ~dim:2 stream));
  let trace = Gen.trace_like ~seed:5 ~n:6 ~steps:10 () in
  Alcotest.(check string) "trace_like seed 5"
    "158a61b150b616494e474b0527a80288"
    (digest (render_trace trace))

let () =
  Alcotest.run "workload"
    [ ("gen", [
        Alcotest.test_case "uniform deterministic" `Quick test_uniform_db;
        Alcotest.test_case "inversions controlled" `Quick test_inversions_controlled;
        prop_inversions;
        Alcotest.test_case "chdir stream" `Quick test_chdir_stream;
        Alcotest.test_case "mixed stream" `Quick test_mixed_stream;
      ]);
      ("scenario", [
        Alcotest.test_case "example 1/2 airplane" `Quick test_scenario_example1;
        Alcotest.test_case "example 12 trace" `Quick test_scenario_example12;
        Alcotest.test_case "figure 2 crossings" `Quick test_scenario_figure2;
      ]);
      ("regression", [
        Alcotest.test_case "coincident clusters: no lost events" `Quick
          test_coincident_cluster_final_order;
        Alcotest.test_case "byte-identical generator output per seed" `Quick
          test_generator_digests;
      ]);
    ]
