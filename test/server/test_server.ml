(* Server integration suite, all over real sockets on 127.0.0.1:
   handshake discipline, wire-level rejection of out-of-order and
   duplicate updates, quarantine graduation, subscription push streams
   checked against a reference in-process Monitor, admission control,
   backpressure drops with exact sequence accounting, idle timeout,
   SIGKILL-equivalent crash + WAL recovery bit-identity, and graceful
   drain with checkpoint. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module IO = Moq_mod.Mod_io
module Oid = Moq_mod.Oid
module Gen = Moq_workload.Gen
module Store = Moq_durable.Store
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module BX = Moq_core.Backend.Exact
module MonX = Moq_core.Monitor.Make (BX)
module Agg = Moq_agg.Agg
module AggX = Moq_agg.Agg.Make (BX)
module Frame = Moq_proto.Frame
module Proto = Moq_proto.Proto
module Server = Moq_server.Server
module Client = Moq_server.Client
module Recorder = Moq_obs.Recorder
module Json = Moq_obs.Json
module Wal = Moq_durable.Wal

let q = Q.of_int
let vec l = Qvec.of_list (List.map Q.of_int l)

let tmp_ctr = ref 0

let tmp_dir () =
  incr tmp_ctr;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "moq_server_%d_%d" (Unix.getpid ()) !tmp_ctr)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Unix.mkdir d 0o700;
  d

let rm_dir d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    try Unix.rmdir d with Unix.Unix_error _ -> ()
  end

let mk_db () = Gen.uniform_db ~seed:3 ~n:4 ~extent:20 ~speed:4 ()

(* Start a fresh server on an ephemeral port, run [f], always stop and
   clean up.  [tweak] adjusts the config (queue sizes, timeouts, ...). *)
let with_server ?(tweak = fun c -> c) f =
  let dir = tmp_dir () in
  let db = mk_db () in
  let cfg =
    tweak
      { (Server.default_config ~listen:(Server.Tcp ("127.0.0.1", 0)) ~store_dir:dir)
        with
        Server.init_db = Some db; fsync = false; idle_timeout = 0. }
  in
  let srv =
    match Server.start cfg with Ok s -> s | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      (try Server.stop srv with _ -> ());
      rm_dir dir)
    (fun () -> f srv dir db)

let connect srv =
  match Client.connect ~timeout:10. (Server.bound_addr srv) with
  | Ok c -> c
  | Error e -> Alcotest.fail (Client.error_to_string e)

let req c r =
  match Client.request c r with
  | Ok m -> m
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e)

let hello c =
  match req c (Proto.Hello Proto.version) with
  | Proto.R_hello { session = _; dim; clock } -> (dim, clock)
  | m -> Alcotest.failf "unexpected hello response: %s" (Proto.render_server_msg m)

let expect_err code m =
  match m with
  | Proto.R_err { code = got; _ } when got = code -> ()
  | m ->
    Alcotest.failf "expected ERR %s, got: %s" code (Proto.render_server_msg m)

(* ------------------------------------------------------------------ *)
(* Handshake and basics                                                *)
(* ------------------------------------------------------------------ *)

let test_hello_ping_bye () =
  with_server (fun srv _dir db ->
      let c = connect srv in
      let dim, hclock = hello c in
      Alcotest.(check int) "dim" (DB.dim db) dim;
      Alcotest.(check bool) "clock" true (Q.compare hclock (q 0) >= 0);
      (match req c Proto.Ping with
       | Proto.R_pong { clock } ->
         Alcotest.(check bool) "pong clock" true (Q.equal clock hclock)
       | m -> Alcotest.failf "expected PONG: %s" (Proto.render_server_msg m));
      (match req c (Proto.Stats `Json) with
       | Proto.R_stats body ->
         Alcotest.(check bool) "stats json" true
           (String.length body > 0 && body.[0] = '{')
       | m -> Alcotest.failf "expected STATS: %s" (Proto.render_server_msg m));
      (match req c Proto.Bye with
       | Proto.R_bye -> ()
       | m -> Alcotest.failf "expected BYE: %s" (Proto.render_server_msg m));
      Client.close c)

let test_hello_first () =
  with_server (fun srv _dir _db ->
      let c = connect srv in
      expect_err "proto" (req c Proto.Ping);
      Client.close c)

let test_bad_version () =
  with_server (fun srv _dir _db ->
      let c = connect srv in
      expect_err "bad-version" (req c (Proto.Hello 99));
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Update discipline over the wire                                     *)
(* ------------------------------------------------------------------ *)

let test_wire_rejection () =
  with_server (fun srv _dir _db ->
      let c = connect srv in
      ignore (hello c);
      (* duplicate [new] for a live oid: permanent reject *)
      (match req c (Proto.Update (U.New { oid = 1; tau = q 1; a = vec [ 0; 0 ]; b = vec [ 0; 0 ] })) with
       | Proto.R_update (Proto.V_rejected _) -> ()
       | m -> Alcotest.failf "duplicate new not rejected: %s" (Proto.render_server_msg m));
      (* a good chdir advances the clock *)
      (match req c (Proto.Update (U.Chdir { oid = 1; tau = q 5; a = vec [ 1; 0 ] })) with
       | Proto.R_update Proto.V_accepted -> ()
       | m -> Alcotest.failf "chdir not accepted: %s" (Proto.render_server_msg m));
      (* out-of-order (stale) update: permanent reject, clock unchanged *)
      (match req c (Proto.Update (U.Chdir { oid = 2; tau = q 2; a = vec [ 0; 1 ] })) with
       | Proto.R_update (Proto.V_rejected _) -> ()
       | m -> Alcotest.failf "stale chdir not rejected: %s" (Proto.render_server_msg m));
      (* a replay of the accepted update is just as stale *)
      (match req c (Proto.Update (U.Chdir { oid = 1; tau = q 5; a = vec [ 1; 0 ] })) with
       | Proto.R_update (Proto.V_rejected _) -> ()
       | m -> Alcotest.failf "duplicate chdir not rejected: %s" (Proto.render_server_msg m));
      (match req c Proto.Ping with
       | Proto.R_pong { clock } -> Alcotest.(check bool) "clock is 5" true (Q.equal clock (q 5))
       | m -> Alcotest.failf "expected PONG: %s" (Proto.render_server_msg m));
      Alcotest.(check bool) "server clock" true (Q.equal (Server.clock srv) (q 5));
      Client.close c)

let test_quarantine_graduates () =
  with_server (fun srv _dir _db ->
      let c = connect srv in
      ignore (hello c);
      (* chdir for an unknown oid arrives before its [new]: quarantined *)
      (match req c (Proto.Update (U.Chdir { oid = 9; tau = q 5; a = vec [ 1; 1 ] })) with
       | Proto.R_update (Proto.V_quarantined _) -> ()
       | m -> Alcotest.failf "early chdir not quarantined: %s" (Proto.render_server_msg m));
      (* the [new] lands; the quarantined chdir must graduate with it *)
      (match req c (Proto.Update (U.New { oid = 9; tau = q 3; a = vec [ 0; 0 ]; b = vec [ 7; 7 ] })) with
       | Proto.R_update Proto.V_accepted -> ()
       | m -> Alcotest.failf "new not accepted: %s" (Proto.render_server_msg m));
      (match req c Proto.Ping with
       | Proto.R_pong { clock } ->
         Alcotest.(check bool) "clock reached the graduated update" true
           (Q.equal clock (q 5))
       | m -> Alcotest.failf "expected PONG: %s" (Proto.render_server_msg m));
      (* the recovered object turned at 5: velocity after 5 is (1,1) *)
      let db = Server.db_snapshot srv in
      (match DB.find db 9 with
       | Some tr ->
         Alcotest.(check bool) "turn applied" true
           (Qvec.equal (Option.get (T.velocity_after tr (q 5))) (vec [ 1; 1 ]))
       | None -> Alcotest.fail "oid 9 missing after graduation");
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Subscriptions vs a reference monitor                                *)
(* ------------------------------------------------------------------ *)

(* Mirror the server's timeline->wire conversion so streams compare as
   plain values. *)
let wire_instant i = Format.asprintf "%a" BX.pp_instant i

let wire_piece = function
  | MonX.TL.At (i, s) -> Proto.P_at (wire_instant i, Oid.Set.elements s)
  | MonX.TL.Span (a, b, s) ->
    Proto.P_span (wire_instant a, wire_instant b, Oid.Set.elements s)

let origin_gamma dim = T.stationary ~start:(q (-1_000_000_000)) (Qvec.zero dim)

let wire_row (r : Agg.row) =
  Proto.P_agg
    { poi = r.Agg.r_poi; widx = r.Agg.r_widx; w_lo = Q.to_string r.Agg.r_lo;
      w_hi = Q.to_string r.Agg.r_hi; count = r.Agg.r_count;
      density = r.Agg.r_density; distinct = r.Agg.r_distinct }

let test_subscription_matches_monitor () =
  with_server (fun srv _dir db ->
      let c = connect srv in
      ignore (hello c);
      let sub =
        match req c (Proto.Subscribe { kind = Proto.Sub_knn 1; lo = q 0; hi = q 30 }) with
        | Proto.R_subscribe { sub } -> sub
        | m -> Alcotest.failf "subscribe failed: %s" (Proto.render_server_msg m)
      in
      (* reference: same query, same g-distance, same database *)
      let mon =
        MonX.create ~db
          ~gdist:(Gdist.euclidean_sq ~gamma:(origin_gamma (DB.dim db)))
          ~query:(Fof.nearest_q ~interval:(Fof.Interval.closed (q 0) (q 30)))
          ()
      in
      let reference = ref (List.map wire_piece (MonX.drain_valid mon)) in
      let updates =
        [ U.Chdir { oid = 1; tau = q 2; a = vec [ -3; 0 ] };
          U.New { oid = 5; tau = q 4; a = vec [ 2; 2 ]; b = vec [ -10; -10 ] };
          U.Chdir { oid = 2; tau = q 7; a = vec [ 0; 0 ] };
          U.Terminate { oid = 3; tau = q 9 };
          U.Chdir { oid = 5; tau = q 11; a = vec [ 0; -1 ] } ]
      in
      List.iter
        (fun u ->
          (match req c (Proto.Update u) with
           | Proto.R_update Proto.V_accepted -> ()
           | m -> Alcotest.failf "update not accepted: %s" (Proto.render_server_msg m));
          (match MonX.apply_update mon u with
           | Ok () -> ()
           | Error e -> Alcotest.failf "reference monitor: %a" DB.pp_error e);
          reference := !reference @ List.map wire_piece (MonX.drain_valid mon))
        updates;
      (* one more request acts as a FIFO barrier: every event pushed before
         its response is already in our queue *)
      ignore (req c Proto.Ping);
      let streamed = ref [] in
      let next_seq = ref 0 in
      List.iter
        (fun ev ->
          match ev with
          | Proto.E_pieces { sub = s; first_seq; pieces } ->
            Alcotest.(check int) "event sub id" sub s;
            Alcotest.(check int) "contiguous sequence" !next_seq first_seq;
            next_seq := first_seq + List.length pieces;
            streamed := !streamed @ pieces
          | Proto.E_dropped _ -> Alcotest.fail "no drops expected at this rate"
          | _ -> ())
        (Client.drain_events c);
      Alcotest.(check bool) "pushed stream equals reference drain" true
        (!streamed = !reference);
      (* the retirement timeline equals the reference's validated prefix *)
      (match req c (Proto.Unsubscribe sub) with
       | Proto.R_unsubscribe { sub = s; pieces } ->
         Alcotest.(check int) "unsubscribe sub id" sub s;
         Alcotest.(check bool) "validated timeline matches" true
           (pieces = List.map wire_piece (MonX.valid_timeline mon))
       | m -> Alcotest.failf "unsubscribe failed: %s" (Proto.render_server_msg m));
      Client.close c)

(* SUBSCRIBE agg end to end: the pushed P_agg rows equal a reference
   in-process Cont fed the same updates, the stream ends with
   EVENT-COMPLETE once the horizon is valid, and the fanout counters
   land in the exporter. *)
let test_agg_subscription_end_to_end () =
  with_server (fun srv _dir db ->
      let c = connect srv in
      ignore (hello c);
      let d = q 40 and window = q 5 and lo = q 0 and hi = q 10 in
      let pois = [ [ q 0; q 0 ]; [ q 15; q (-15) ] ] in
      let sub =
        match
          req c
            (Proto.Subscribe
               { kind = Proto.Sub_agg { d; window; pois }; lo; hi })
        with
        | Proto.R_subscribe { sub } -> sub
        | m -> Alcotest.failf "subscribe failed: %s" (Proto.render_server_msg m)
      in
      let cont =
        AggX.Cont.create ~db ~pois:(List.map Qvec.of_list pois) ~d ~window ~lo
          ~hi ()
      in
      let reference = ref (List.map wire_row (AggX.Cont.drain_rows cont)) in
      let updates =
        [ U.Chdir { oid = 1; tau = q 2; a = vec [ -3; 0 ] };
          U.New { oid = 5; tau = q 4; a = vec [ 2; 2 ]; b = vec [ -10; -10 ] };
          U.Chdir { oid = 2; tau = q 7; a = vec [ 0; 0 ] };
          U.Terminate { oid = 3; tau = q 9 };
          (* past hi: validates the whole interval and completes the sub *)
          U.Chdir { oid = 5; tau = q 11; a = vec [ 0; -1 ] } ]
      in
      List.iter
        (fun u ->
          (match req c (Proto.Update u) with
           | Proto.R_update Proto.V_accepted -> ()
           | m -> Alcotest.failf "update not accepted: %s" (Proto.render_server_msg m));
          (match AggX.Cont.apply_update cont u with
           | Ok () -> ()
           | Error e -> Alcotest.failf "reference cont: %a" DB.pp_error e);
          reference := !reference @ List.map wire_row (AggX.Cont.drain_rows cont))
        updates;
      (* mirror the server's completion flush *)
      ignore (AggX.Cont.finalize cont);
      reference := !reference @ List.map wire_row (AggX.Cont.drain_rows cont);
      ignore (req c Proto.Ping);
      let streamed = ref [] and next_seq = ref 0 and completed = ref false in
      List.iter
        (fun ev ->
          match ev with
          | Proto.E_pieces { sub = s; first_seq; pieces } ->
            Alcotest.(check int) "event sub id" sub s;
            Alcotest.(check int) "contiguous sequence" !next_seq first_seq;
            next_seq := first_seq + List.length pieces;
            List.iter
              (function
                | Proto.P_agg _ -> ()
                | p ->
                  Alcotest.failf "non-agg piece on an agg stream: %s"
                    (Proto.render_piece p))
              pieces;
            streamed := !streamed @ pieces
          | Proto.E_complete { sub = s } ->
            Alcotest.(check int) "complete sub id" sub s;
            completed := true
          | Proto.E_dropped _ -> Alcotest.fail "no drops expected at this rate"
          | _ -> ())
        (Client.drain_events c);
      Alcotest.(check bool) "rows were streamed" true (!streamed <> []);
      Alcotest.(check bool) "pushed rows equal reference drain" true
        (!streamed = !reference);
      Alcotest.(check bool) "EVENT-COMPLETE after horizon" true !completed;
      (* the completed subscription is retired server-side *)
      expect_err "unknown-sub" (req c (Proto.Unsubscribe sub));
      (* fanout accounting is visible in the exporter *)
      (match req c (Proto.Stats `Prometheus) with
       | Proto.R_stats text ->
         let value name =
           let v = ref None in
           List.iter
             (fun line ->
               match String.split_on_char ' ' line with
               | [ n; x ] when n = name -> v := Some x
               | _ -> ())
             (String.split_on_char '\n' text);
           match !v with
           | Some x -> x
           | None -> Alcotest.failf "%s missing from exporter output" name
         in
         Alcotest.(check string) "one agg subscription" "1"
           (value "moq_agg_subscriptions_total");
         Alcotest.(check string) "every pushed row accounted"
           (string_of_int (List.length !streamed))
           (value "moq_agg_rows_pushed_total")
       | m -> Alcotest.failf "stats failed: %s" (Proto.render_server_msg m));
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Admission control, backpressure, idle timeout                       *)
(* ------------------------------------------------------------------ *)

let test_admission_busy () =
  with_server
    ~tweak:(fun c -> { c with Server.max_sessions = 1 })
    (fun srv _dir _db ->
      let c1 = connect srv in
      ignore (hello c1);
      let c2 = connect srv in
      (match Client.request c2 (Proto.Hello Proto.version) with
       | Ok m -> expect_err "busy" m
       | Error _ -> () (* server may close before the request is written *));
      Client.close c2;
      (* the slot frees up once the first session leaves *)
      ignore (req c1 Proto.Bye);
      Client.close c1;
      let rec retry n =
        let c3 = connect srv in
        match Client.request c3 (Proto.Hello Proto.version) with
        | Ok (Proto.R_hello _) -> Client.close c3
        | _ when n > 0 ->
          Client.close c3;
          Thread.delay 0.05;
          retry (n - 1)
        | Ok m -> Alcotest.failf "slot not freed: %s" (Proto.render_server_msg m)
        | Error e -> Alcotest.failf "slot not freed: %s" (Client.error_to_string e)
      in
      retry 40)

let test_sub_limit () =
  with_server
    ~tweak:(fun c -> { c with Server.max_subs_per_session = 1 })
    (fun srv _dir _db ->
      let c = connect srv in
      ignore (hello c);
      (match req c (Proto.Subscribe { kind = Proto.Sub_knn 1; lo = q 0; hi = q 10 }) with
       | Proto.R_subscribe _ -> ()
       | m -> Alcotest.failf "first subscribe failed: %s" (Proto.render_server_msg m));
      expect_err "limit"
        (req c (Proto.Subscribe { kind = Proto.Sub_knn 1; lo = q 0; hi = q 10 }));
      Client.close c)

(* Every dropped sequence number must be covered by an EVENT-DROPPED
   marker: walk the stream and check the numbers tile with no gap. *)
let account_events evs =
  let expected = ref 0 and pushed = ref 0 and dropped = ref 0 in
  let lost = ref 0 and dup = ref 0 in
  List.iter
    (fun ev ->
      let arrive ~first ~next ~count counter =
        if first > !expected then lost := !lost + (first - !expected)
        else if first < !expected then dup := !dup + (!expected - first);
        expected := next;
        counter := !counter + count
      in
      match ev with
      | Proto.E_pieces { first_seq; pieces; _ } ->
        let c = List.length pieces in
        arrive ~first:first_seq ~next:(first_seq + c) ~count:c pushed
      | Proto.E_dropped { from_seq; to_seq; _ } ->
        arrive ~first:from_seq ~next:(to_seq + 1)
          ~count:(to_seq - from_seq + 1) dropped
      | _ -> ())
    evs;
  (!pushed, !dropped, !lost, !dup)

let test_backpressure_drops () =
  with_server
    ~tweak:(fun c ->
      { c with Server.queue_soft = 2; queue_hwm = 4; writer_delay = 0.01 })
    (fun srv _dir _db ->
      (* raw socket: blast requests without awaiting responses, so the push
         queue actually builds up behind the throttled writer *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Server.sockaddr_of (Server.bound_addr srv));
      let r = Frame.reader fd in
      let send req =
        match Frame.write fd (Proto.render_request req) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "send: %s" (Frame.error_to_string e)
      in
      let next_msg () =
        match Frame.read ~timeout:30. r with
        | `Frame p ->
          (match Proto.parse_server_msg p with
           | Ok m -> m
           | Error e -> Alcotest.failf "bad server frame: %s" e)
        | _ -> Alcotest.fail "connection dropped mid-test"
      in
      send (Proto.Hello Proto.version);
      (match next_msg () with
       | Proto.R_hello _ -> ()
       | m -> Alcotest.failf "hello: %s" (Proto.render_server_msg m));
      send (Proto.Subscribe { kind = Proto.Sub_range (q 100_000); lo = q 0; hi = q 1000 });
      (match next_msg () with
       | Proto.R_subscribe _ -> ()
       | m -> Alcotest.failf "subscribe: %s" (Proto.render_server_msg m));
      for i = 1 to 40 do
        send (Proto.Update (U.Chdir { oid = 1 + (i mod 4); tau = q i; a = vec [ i mod 3; 1 ] }))
      done;
      send Proto.Ping;
      let events = ref [] and accepted = ref 0 in
      (* everything enqueued before the PONG precedes it on the wire *)
      let rec collect () =
        match next_msg () with
        | Proto.R_pong _ -> ()
        | Proto.R_update Proto.V_accepted ->
          incr accepted;
          collect ()
        | Proto.R_update _ -> collect ()
        | m when Proto.is_event m ->
          events := m :: !events;
          collect ()
        | m -> Alcotest.failf "unexpected: %s" (Proto.render_server_msg m)
      in
      collect ();
      Alcotest.(check int) "all updates accepted" 40 !accepted;
      (* the queue is idle again: one more update must stream through
         intact, with its sequence number continuing the accounted range *)
      send (Proto.Update (U.Chdir { oid = 1; tau = q 100; a = vec [ 0; 0 ] }));
      let rec tail () =
        match next_msg () with
        | Proto.R_update Proto.V_accepted -> ()
        | m when Proto.is_event m ->
          events := m :: !events;
          tail ()
        | m -> Alcotest.failf "unexpected tail: %s" (Proto.render_server_msg m)
      in
      tail ();
      Unix.close fd;
      let pushed, dropped, lost, dup = account_events (List.rev !events) in
      Alcotest.(check int) "no lost sequence numbers" 0 lost;
      Alcotest.(check int) "no duplicated sequence numbers" 0 dup;
      Alcotest.(check bool) "something was delivered" true (pushed > 0);
      Alcotest.(check bool) "slow consumer saw drops" true (dropped > 0))

let test_idle_timeout () =
  with_server
    ~tweak:(fun c -> { c with Server.idle_timeout = 0.3 })
    (fun srv _dir _db ->
      let c = connect srv in
      ignore (hello c);
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        if not (Client.is_open c) then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "idle session not closed"
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      wait ();
      Client.close c)

(* A listener that accepts and then says nothing: the client's typed
   deadlines must fire instead of hanging. *)
let test_silent_peer_timeouts () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 4;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Client.connect ~timeout:0.3 (Server.Tcp ("127.0.0.1", port)) with
      | Error e -> Alcotest.failf "connect: %s" (Client.error_to_string e)
      | Ok c ->
        (match Client.hello c with
         | Error (Client.Timeout _) -> ()
         | Error e ->
           Alcotest.failf "expected a timeout, got: %s" (Client.error_to_string e)
         | Ok m ->
           Alcotest.failf "silent peer answered: %s" (Proto.render_server_msg m));
        Client.close c)

(* ------------------------------------------------------------------ *)
(* Replication                                                         *)
(* ------------------------------------------------------------------ *)

let wait_for ?(deadline = 10.) what pred =
  let stop = Unix.gettimeofday () +. deadline in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > stop then Alcotest.failf "timed out: %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* Start a follower of [srv] in its own store dir, run [f], clean up. *)
let with_follower srv f =
  let dir = tmp_dir () in
  let cfg =
    { (Server.default_config ~listen:(Server.Tcp ("127.0.0.1", 0)) ~store_dir:dir)
      with
      Server.init_db = Some (DB.empty ~dim:2 ~tau:(q 0)); fsync = false;
      idle_timeout = 0.; follow = Some (Server.bound_addr srv) }
  in
  let fol =
    match Server.start cfg with Ok s -> s | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      (try Server.stop fol with _ -> ());
      rm_dir dir)
    (fun () -> f fol)

let test_follower_replicates () =
  with_server
    ~tweak:(fun c -> { c with Server.repl_digest_every = 1 })
    (fun srv _dir _db ->
      with_follower srv (fun fol ->
          Alcotest.(check bool) "is_follower" true (Server.is_follower fol);
          wait_for "follower bootstrap" (fun () -> Server.repl_connected fol);
          (* snapshot bootstrap is already bit-identical *)
          wait_for "snapshot applied" (fun () ->
              IO.db_to_string (Server.db_snapshot fol)
              = IO.db_to_string (Server.db_snapshot srv));
          (* stream updates through the primary; follower must converge *)
          let c = connect srv in
          ignore (hello c);
          List.iter
            (fun u ->
              match req c (Proto.Update u) with
              | Proto.R_update Proto.V_accepted -> ()
              | m -> Alcotest.failf "update: %s" (Proto.render_server_msg m))
            [ U.Chdir { oid = 1; tau = q 2; a = vec [ 1; 1 ] };
              U.New { oid = 7; tau = q 3; a = vec [ 0; 1 ]; b = vec [ -4; 2 ] };
              U.Terminate { oid = 2; tau = q 4 };
              U.Chdir { oid = 7; tau = q 5; a = vec [ -1; 0 ] } ];
          wait_for "tail applied" (fun () ->
              Q.equal (Server.clock fol) (Server.clock srv)
              && IO.db_to_string (Server.db_snapshot fol)
                 = IO.db_to_string (Server.db_snapshot srv));
          (* with digest-every=1 the digests have been checked; none diverged *)
          Alcotest.(check int) "no divergence" 0 (Server.repl_divergence fol);
          (* a query served by the replica equals the primary's answer *)
          let cf = connect fol in
          ignore (hello cf);
          let query c =
            match
              req c (Proto.Query { kind = Proto.Qk_knn 1; lo = q 0; hi = q 40 })
            with
            | Proto.R_query pieces -> pieces
            | m -> Alcotest.failf "query: %s" (Proto.render_server_msg m)
          in
          Alcotest.(check bool) "replica answers bit-identically" true
            (query cf = query c);
          (* the replica is read-only *)
          (match
             Client.request cf
               (Proto.Update (U.Chdir { oid = 1; tau = q 9; a = vec [ 0; 0 ] }))
           with
           | Ok m -> expect_err "read-only" m
           | Error e -> Alcotest.failf "read-only: %s" (Client.error_to_string e));
          Client.close cf;
          Client.close c))

let test_follower_catches_up_after_partition () =
  with_server (fun srv _dir _db ->
      with_follower srv (fun fol ->
          wait_for "follower bootstrap" (fun () -> Server.repl_connected fol);
          let c = connect srv in
          ignore (hello c);
          (* cut the replication link mid-stream; the follower must
             reconnect by itself and resume as a delta *)
          Server.shutdown_repl_link fol;
          List.iter
            (fun u ->
              match req c (Proto.Update u) with
              | Proto.R_update Proto.V_accepted -> ()
              | m -> Alcotest.failf "update: %s" (Proto.render_server_msg m))
            [ U.Chdir { oid = 1; tau = q 2; a = vec [ 2; 0 ] };
              U.Chdir { oid = 3; tau = q 3; a = vec [ 0; 2 ] } ];
          wait_for "reconnected and converged" (fun () ->
              Server.repl_connected fol
              && IO.db_to_string (Server.db_snapshot fol)
                 = IO.db_to_string (Server.db_snapshot srv));
          Alcotest.(check int) "no divergence" 0 (Server.repl_divergence fol);
          Client.close c))

(* ------------------------------------------------------------------ *)
(* Crash recovery and graceful drain                                   *)
(* ------------------------------------------------------------------ *)

let test_kill_and_recover () =
  with_server (fun srv dir _db ->
      let c = connect srv in
      ignore (hello c);
      List.iter
        (fun u ->
          match req c (Proto.Update u) with
          | Proto.R_update Proto.V_accepted -> ()
          | m -> Alcotest.failf "update: %s" (Proto.render_server_msg m))
        [ U.Chdir { oid = 1; tau = q 1; a = vec [ 2; 0 ] };
          U.New { oid = 8; tau = q 2; a = vec [ -1; 1 ]; b = vec [ 3; 3 ] };
          U.Terminate { oid = 2; tau = q 3 };
          U.Chdir { oid = 8; tau = q 4; a = vec [ 0; 0 ] } ];
      let pre = IO.db_to_string (Server.db_snapshot srv) in
      let pre_clock = Server.clock srv in
      Server.crash srv;
      Client.close c;
      (match Store.recover ~dir with
       | Ok r ->
         Alcotest.(check string) "database bit-identical" pre (IO.db_to_string r.Store.db);
         Alcotest.(check bool) "clock identical" true (Q.equal pre_clock r.Store.clock);
         Alcotest.(check int) "WAL replayed past the checkpoint" 4 r.Store.replayed
       | Error e -> Alcotest.fail e))

(* The on-crash flight dump is a parseable forensic artifact whose last
   recorded admission agrees with the WAL tail. *)
let test_flight_dump_on_crash () =
  with_server (fun srv dir _db ->
      let c = connect srv in
      ignore (hello c);
      List.iter
        (fun u ->
          match req c (Proto.Update u) with
          | Proto.R_update Proto.V_accepted -> ()
          | m -> Alcotest.failf "update: %s" (Proto.render_server_msg m))
        [ U.Chdir { oid = 1; tau = q 1; a = vec [ 2; 0 ] };
          U.New { oid = 9; tau = q 2; a = vec [ -1; 1 ]; b = vec [ 3; 3 ] };
          U.Chdir { oid = 9; tau = q 3; a = vec [ 0; 1 ] } ];
      Server.crash srv;
      Client.close c;
      let dumps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 7 && String.sub f 0 7 = "flight-")
      in
      Alcotest.(check int) "one crash dump" 1 (List.length dumps);
      match Recorder.load (Filename.concat dir (List.hd dumps)) with
      | Error e -> Alcotest.fail e
      | Ok d ->
        Alcotest.(check string) "reason" "crash" d.Recorder.d_reason;
        let last_admitted =
          List.fold_left
            (fun acc (e : Recorder.event) ->
              if e.Recorder.kind = "update_admitted" then Some e else acc)
            None d.Recorder.d_events
        in
        (match last_admitted, Wal.read (Store.wal_file dir) with
         | Some e, Ok r ->
           let wal_last = List.nth r.Wal.updates (List.length r.Wal.updates - 1) in
           let oid =
             match List.assoc_opt "oid" e.Recorder.fields with
             | Some (Json.Int i) -> i
             | _ -> -1
           in
           let tau =
             match List.assoc_opt "tau" e.Recorder.fields with
             | Some (Json.Str s) -> s
             | _ -> "?"
           in
           Alcotest.(check int) "last recorded oid = WAL tail" (U.oid wal_last) oid;
           Alcotest.(check string) "last recorded tau = WAL tail"
             (Q.to_string (U.time wal_last)) tau
         | None, _ -> Alcotest.fail "no update_admitted event in the dump"
         | _, Error e -> Alcotest.fail e))

(* A query over an epsilon threshold lands in the slow-query log: the
   counter moves and the explain record is in the flight-recorder ring. *)
let test_slow_query_capture () =
  with_server
    ~tweak:(fun c -> { c with Server.slow_query_ms = 0.000001 })
    (fun srv _dir _db ->
      let c = connect srv in
      ignore (hello c);
      (match req c (Proto.Query { kind = Proto.Qk_knn 1; lo = q 0; hi = q 10 }) with
       | Proto.R_query _ -> ()
       | m -> Alcotest.failf "query: %s" (Proto.render_server_msg m));
      let reg = Server.registry srv in
      Alcotest.(check bool) "moq_slowq_total moved" true
        (match Moq_obs.Registry.counter_value reg "moq_slowq_total" with
         | Some n -> n >= 1
         | None -> false);
      (match Recorder.last ~kind:"slow_query" (Server.recorder srv) with
       | None -> Alcotest.fail "no slow_query event recorded"
       | Some e ->
         (* the captured record is a full explain document *)
         (match List.assoc_opt "explain" e.Recorder.fields with
          | Some (Json.Obj kvs) ->
            Alcotest.(check bool) "explain schema tag" true
              (List.assoc_opt "moq_explain" kvs = Some (Json.Int 3))
          | _ -> Alcotest.fail "slow_query event carries no explain"));
      Client.close c)

(* STATS publishes rank-indexed hot-object and hot-subscription gauges. *)
let test_hot_gauges_on_stats () =
  with_server (fun srv _dir _db ->
      let c = connect srv in
      ignore (hello c);
      (match req c (Proto.Subscribe { kind = Proto.Sub_knn 1; lo = q 0; hi = q 40 }) with
       | Proto.R_subscribe _ -> ()
       | m -> Alcotest.failf "subscribe: %s" (Proto.render_server_msg m));
      List.iter
        (fun u -> ignore (req c (Proto.Update u)))
        [ U.Chdir { oid = 1; tau = q 1; a = vec [ 2; 0 ] };
          U.Chdir { oid = 2; tau = q 2; a = vec [ 0; 2 ] };
          U.Chdir { oid = 3; tau = q 3; a = vec [ 1; 1 ] } ];
      (match req c (Proto.Stats `Json) with
       | Proto.R_stats _ -> ()
       | m -> Alcotest.failf "stats: %s" (Proto.render_server_msg m));
      let flat = Moq_obs.Registry.flatten (Server.registry srv) in
      Alcotest.(check bool) "rank-0 hot object gauge" true
        (List.mem_assoc "moq_hot_oid_0" flat);
      Alcotest.(check bool) "rank-0 hot object cost" true
        (match List.assoc_opt "moq_hot_comparisons_0" flat with
         | Some v -> v > 0.
         | None -> false);
      Alcotest.(check bool) "hot coverage gauge" true
        (match List.assoc_opt "moq_hot_coverage_pct" flat with
         | Some v -> v > 0. && v <= 100.
         | None -> false);
      Alcotest.(check bool) "rank-0 hot subscription gauge" true
        (List.mem_assoc "moq_hot_sub_id_0" flat);
      Client.close c)

let test_graceful_drain () =
  with_server (fun srv dir _db ->
      let c = connect srv in
      ignore (hello c);
      (match req c (Proto.Update (U.Chdir { oid = 1; tau = q 1; a = vec [ 1; 1 ] })) with
       | Proto.R_update Proto.V_accepted -> ()
       | m -> Alcotest.failf "update: %s" (Proto.render_server_msg m));
      let pre = IO.db_to_string (Server.db_snapshot srv) in
      Server.stop srv;
      (* the drain notifies connected clients before closing *)
      let saw_shutdown =
        let deadline = Unix.gettimeofday () +. 5.0 in
        let rec wait () =
          match Client.next_event ~timeout:0.2 c with
          | Some (Proto.E_shutdown _) -> true
          | Some _ -> wait ()
          | None ->
            if Unix.gettimeofday () > deadline then false
            else if Client.is_open c then wait ()
            else
              List.exists
                (function Proto.E_shutdown _ -> true | _ -> false)
                (Client.drain_events c)
        in
        wait ()
      in
      Alcotest.(check bool) "SHUTDOWN delivered" true saw_shutdown;
      Client.close c;
      (* drain checkpointed: recovery replays nothing and matches exactly *)
      (match Store.recover ~dir with
       | Ok r ->
         Alcotest.(check int) "nothing to replay" 0 r.Store.replayed;
         Alcotest.(check string) "checkpoint matches" pre (IO.db_to_string r.Store.db)
       | Error e -> Alcotest.fail e);
      (* and a new server picks the checkpoint up without an init db *)
      let cfg =
        { (Server.default_config ~listen:(Server.Tcp ("127.0.0.1", 0)) ~store_dir:dir)
          with
          Server.fsync = false }
      in
      match Server.start cfg with
      | Ok srv2 ->
        Alcotest.(check string) "restarted state" pre (IO.db_to_string (Server.db_snapshot srv2));
        Server.stop srv2
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "server"
    [ ("handshake",
       [ Alcotest.test_case "hello ping stats bye" `Quick test_hello_ping_bye;
         Alcotest.test_case "hello required first" `Quick test_hello_first;
         Alcotest.test_case "bad version" `Quick test_bad_version ]);
      ("updates",
       [ Alcotest.test_case "stale and duplicate rejected" `Quick test_wire_rejection;
         Alcotest.test_case "quarantine graduates" `Quick test_quarantine_graduates ]);
      ("subscriptions",
       [ Alcotest.test_case "stream matches reference monitor" `Quick
           test_subscription_matches_monitor;
         Alcotest.test_case "agg stream end to end" `Quick
           test_agg_subscription_end_to_end ]);
      ("limits",
       [ Alcotest.test_case "admission busy" `Quick test_admission_busy;
         Alcotest.test_case "subscription limit" `Quick test_sub_limit;
         Alcotest.test_case "backpressure accounting" `Quick test_backpressure_drops;
         Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
         Alcotest.test_case "silent peer timeouts" `Quick test_silent_peer_timeouts ]);
      ("replication",
       [ Alcotest.test_case "follower replicates" `Quick test_follower_replicates;
         Alcotest.test_case "delta resume after a cut link" `Quick
           test_follower_catches_up_after_partition ]);
      ("durability",
       [ Alcotest.test_case "kill and recover" `Quick test_kill_and_recover;
         Alcotest.test_case "graceful drain" `Quick test_graceful_drain ]);
      ("observability",
       [ Alcotest.test_case "flight dump on crash" `Quick test_flight_dump_on_crash;
         Alcotest.test_case "slow-query capture" `Quick test_slow_query_capture;
         Alcotest.test_case "hot gauges on stats" `Quick test_hot_gauges_on_stats ]) ]
