(** Query plan + cost reports ([moq explain]).

    A report is plain data (ints, floats, strings — no functor types) built
    after a query run from three sources: the engine's {!Engine.Make.stats},
    the backend's filter statistics (when the interval-filtered backend ran),
    and the observability registry the run counted into.  It answers, for one
    concrete query: which backend evaluated it, how much sweep work it did
    (batches, events, comparisons — the cost unit of the paper's analysis),
    whether the per-event work stayed within the Lemma 9 O(log N) regime,
    which instants defeated the interval filter, and which objects were
    hottest.

    Rendered as aligned text for humans and as a stable JSON document for
    tooling; the JSON schema is golden-tested and versioned by
    [moq_explain]. *)

(** Engine counters for the run (from {!Engine.Make.stats}). *)
type sweep = {
  batches : int;       (** distinct event instants processed *)
  crossings : int;
  births : int;
  deaths : int;
  jumps : int;
  swaps : int;         (** the paper's m is counted in these *)
  comparisons : int;   (** total, including the initial O(N log N) sort *)
  support_changes : int;  (** crossings + births + deaths (Corollary 6's m) *)
}

(** Lemma 9 check: per-event order-list work, measured over the event
    batches only (the initial sort is excluded — the paper's analysis
    charges it separately as O(N log N)). *)
type lemma9 = {
  events : int;           (** events processed across all batches *)
  event_comparisons : int;  (** comparisons spent inside batches *)
  ops_per_event : float;  (** event_comparisons / max 1 events *)
  bound : float;          (** the report's c·log2(N+1) + c' reference line *)
  within : bool;          (** ops_per_event <= bound *)
}

(** Interval-filter outcome (filtered backend only). *)
type filter = {
  f_hits : int;
  f_misses : int;       (** inconclusive intervals — exact fallbacks *)
  f_decisions : int;
  f_fallback_ns : float;
  f_straddles : float list;
      (** midpoints of the first inconclusive intervals (capped), i.e. the
          concrete instants that straddled the filter *)
}

(** Sharded-sweep pruning outcome (sharded backends only). *)
type shards = {
  s_total : int;       (** home shards in the spatial index *)
  s_touched : int;     (** shards actually swept *)
  s_admitted : int;    (** objects admitted into the merge sweep *)
  s_pruned : int;      (** objects never admitted *)
  s_merge_ops : int;   (** frontier labels offered to the admitted union *)
  s_events : int;      (** events across all shard sweeps *)
  s_band : float option;  (** the band bound B (squared distance) *)
}

(** Continuous POI aggregation outcome ([moq agg] / agg subscriptions). *)
type agg = {
  a_pois : int;      (** places of interest *)
  a_windows : int;   (** tumbling windows per POI *)
  a_rows : int;      (** rows finalized *)
  a_admitted : int;  (** watch admissions across POIs (initial + lazy) *)
  a_pruned : int;    (** admission tests that kept an object out *)
  a_updates : int;   (** updates offered to the aggregation *)
  a_forwarded : int; (** update deliveries into per-POI monitors *)
}

(** Per-object attribution, hottest first. *)
type hot = {
  oid : int;
  comparisons : int;
  swaps : int;
}

(** A named wall-clock phase of the run. *)
type phase = {
  name : string;
  ns : float;
}

type t = {
  kind : string;     (** ["past"] | ["knn"] | ["cql"] *)
  query : string;    (** human-readable description of what ran *)
  backend : string;  (** ["exact"] | ["filtered"] | ["approx"] *)
  classification : string;
      (** Definition 5 classification of the query against the MOD clock:
          ["past"] | ["continuing"] | ["future"]; ["n/a"] when the run is
          not classification-driven (plain k-NN) *)
  n_objects : int;
  lo : float;
  hi : float;        (** query window, as floats for display *)
  timeline_pieces : int;  (** spans+instants in the simplified answer *)
  sweep : sweep;
  lemma9 : lemma9;
  filter : filter option;
  shards : shards option;
  agg : agg option;
  hot : hot list;
  phases : phase list;
  counters : (string * float) list;
      (** the run's registry, flattened — lets a reader reconcile the
          report against the exported metrics *)
}

val lemma9_bound : n_objects:int -> float
(** The reference line [8 + 4·log2 (N+1)] comparisons per event.  The
    constants are generous by design: the report flags regime changes
    (quadratic blowups, audit storms), not constant-factor noise. *)

val make :
  kind:string -> query:string -> backend:string -> ?classification:string ->
  n_objects:int -> lo:float -> hi:float -> timeline_pieces:int ->
  sweep:sweep -> ?filter:filter -> ?shards:shards -> ?agg:agg -> ?hot:hot list ->
  ?phases:phase list ->
  counters:(string * float) list -> unit -> t
(** Assemble a report.  The {!lemma9} block is derived here: events and
    event-comparisons are read from the [moq_sweep_events_total] /
    [moq_sweep_comparisons_total] counters (falling back to zero when the
    run was unobserved), the bound from {!lemma9_bound}. *)

val top_hot : ?k:int -> t -> hot list
(** First [k] (default 5) hot objects. *)

val hot_coverage : t -> float
(** Fraction (0..1) of total attributed comparisons covered by the top-5
    hot objects; 0 when attribution is off or nothing was attributed. *)

val to_json : t -> Moq_obs.Json.t
(** Stable, golden-tested schema; top-level key [moq_explain = 3].
    Version history: 1 = original; 2 = added the [shards] block (null for
    unsharded runs); 3 = added the [agg] block (null for non-aggregation
    runs). *)

val to_text : t -> string
(** Aligned human-readable report (what [moq explain] prints without
    [--json]). *)
