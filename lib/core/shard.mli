(** The sharded, index-pruned k-NN sweep driver.

    The plain sweep ({!Knn}) maintains one global order over all N distance
    curves, so every event pays O(log N) even when all the action is in one
    corner of the plane.  This driver makes per-event cost a function of
    {e local} activity instead:

    + {b Index}: bucket every trajectory piece by its exact (x, y, t)
      bounding box in a {!Moq_index.Grid}; each object gets a {e home
      shard} (the cell under its window-entry position) carrying the exact
      union box of its members' window motion.
    + {b Band}: find k pilot objects near the query trajectory by ring
      search, compute each pilot's exact maximum squared distance over the
      window, and let B be the k-th smallest — at every instant of the
      window at least k objects sit within B, so nothing farther than B
      throughout the window can ever enter (or tie) the top-k band.
    + {b Prune}: skip every shard whose box separation from the query
      trajectory's window box exceeds B.  No engine is built for a pruned
      shard; its members' curves are never constructed.
    + {b Shard sweeps}: each surviving shard runs its own independent
      order-list/event-queue ({!Engine.Make}) over only its members, and
      emits its {e candidate frontier}: the shard-local top-k on every
      span, extended with shard-local k-th ties at event instants.
    + {b Merge}: an object enters the final order list only if some shard's
      frontier admitted it.  One small merge sweep over the admitted union
      produces the global timeline.

    Soundness of the frontier (why the result is bit-identical to
    {!Knn.run_obs} over the full database): an object in the global answer
    at instant t has global rank <= k, hence shard-local rank <= k; an
    object tied with the global k-th at t either has shard-local rank <= k
    or — because at most k-1 objects anywhere are strictly closer than the
    global k-th — ties its shard's local k-th, and is admitted by the tie
    extension.  Pruned-shard members stay strictly outside the band by the
    exact bound B.  The admitted union therefore contains every object that
    ever appears in the exact timeline, and since {!Timeline.simplify}
    collapses answer-preserving event instants in both runs, the merge
    sweep's simplified timeline equals the exact backend's, piece for
    piece.

    All pruning decisions are made in exact rational arithmetic — the
    driver never trades answers for speed.  Composes with any backend; use
    {!Backend.Filtered} for the production [sharded-filtered] mode. *)

module Q = Moq_numeric.Rat

module Make (B : Backend.S) : sig
  module E : module type of Engine.Make (B)
  module TL : module type of Timeline.Make (B)

  (** Pruning-effectiveness accounting for one run (the [moq_shard_*]
      counters and the [moq explain] shards block read these). *)
  type shard_stats = {
    shards_total : int;  (** home shards in the index *)
    shards_touched : int;  (** shards actually swept *)
    admitted : int;  (** objects admitted into the merge sweep *)
    pruned : int;  (** objects never admitted (band- or frontier-pruned) *)
    frontier_merge_ops : int;
        (** frontier labels offered to the admitted union *)
    shard_events : int;  (** events across all shard sweeps *)
    band : float option;
        (** the band bound B (squared distance), as a float for display;
            [None] when no sound band was found (everything swept) *)
  }

  type result = {
    timeline : TL.t;  (** bit-identical to {!Knn.run_obs} on the full DB *)
    stats : E.stats;  (** aggregate over shard sweeps + merge sweep *)
    shard : shard_stats;
    hot : E.hot list;  (** aggregate per-object attribution, hottest first *)
  }

  val run_obs :
    sink:Moq_obs.Sink.t ->
    db:Moq_mod.Mobdb.t ->
    gamma:Moq_mod.Trajectory.t ->
    k:int ->
    lo:Q.t ->
    hi:Q.t ->
    ?cell:float ->
    unit ->
    result
  (** Sharded k-NN under the squared-Euclidean g-distance to [gamma]
      (the geometric distance the spatial index prunes against).  [cell]
      (default 64.) is the grid cell side.  Counts [moq_shard_*] metrics
      into [sink] alongside the usual sweep counters.  Band pruning
      degrades gracefully: when [gamma] does not cover the window or fewer
      than k objects live throughout it, every shard is swept (frontier
      pruning still applies) and answers are unaffected.
      @raise Invalid_argument if [k <= 0]. *)

  val run :
    db:Moq_mod.Mobdb.t -> gamma:Moq_mod.Trajectory.t -> k:int -> lo:Q.t ->
    hi:Q.t -> ?cell:float -> unit -> result
end
