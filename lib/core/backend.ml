(** Sweep backends.

    The plane-sweep engine is parametric in how it represents points on the
    time axis and how it finds curve intersections.  The {!Exact} backend
    computes with rational coefficients and real algebraic event times —
    every comparison the sweep makes is decided exactly, standing in for the
    real-closed-field oracle the paper assumes.  The {!Approx} backend uses
    floats and numeric root finding; it is the fast configuration used by
    the benchmarks (experiment A2 compares the two).  The {!Filtered}
    backend is the exact-geometric-computation middle ground: it carries an
    outward-rounded float interval alongside every exact value, decides
    signs and comparisons from the intervals when they are conclusive, and
    falls back to the exact machinery only when an interval straddles zero —
    bit-identical answers to {!Exact} at a fraction of the cost (experiment
    A3 measures the hit rate and speedup). *)

module Q = Moq_numeric.Rat

module type S = sig
  module P : Moq_poly.Poly_intf.S
  module PW : Moq_poly.Piecewise_intf.S with type P.t = P.t and type P.F.t = P.F.t

  (** A point on the sweep line (an event time). *)
  type instant

  val instant_of_scalar : P.F.t -> instant
  val compare_instant : instant -> instant -> int
  val compare_instant_scalar : instant -> P.F.t -> int

  val sign_at_instant : P.t -> instant -> int
  (** Exact sign of a polynomial at the instant. *)

  val sign_after_instant : P.t -> instant -> int
  (** Sign immediately to the right of the instant (first non-vanishing
      derivative).  Zero only for the zero polynomial. *)

  val first_root_after : P.t -> instant -> instant option
  val first_root_at_or_after : P.t -> P.F.t -> instant option

  val all_roots : P.t -> instant list
  (** All distinct real roots, ascending (used by the naive baseline, which
      precomputes every pairwise crossing instead of sweeping). *)

  val between : instant -> instant -> P.F.t
  (** A scalar strictly between two distinct instants (the paper's
      "[τ' + ε]" sample points). *)

  val scalar_after : instant -> upto:P.F.t option -> P.F.t
  (** A scalar strictly greater than the instant (and at most [upto] when
      bounded; assumes the instant precedes [upto]). *)

  val scalar_of_rat : Q.t -> P.F.t
  val curve_of_qpiece : Moq_poly.Piecewise.Qpiece.t -> PW.t
  val instant_to_float : instant -> float
  val pp_instant : Format.formatter -> instant -> unit
end

module Exact :
  S
    with type P.t = Moq_poly.Qpoly.t
     and type P.F.t = Q.t
     and type PW.t = Moq_poly.Piecewise.Qpiece.t
     and type instant = Moq_poly.Algnum.t =
struct
  module P = Moq_poly.Qpoly
  module PW = Moq_poly.Piecewise.Qpiece
  module A = Moq_poly.Algnum

  type instant = A.t

  let instant_of_scalar = A.of_rat
  let compare_instant = A.compare
  let compare_instant_scalar i s = A.compare i (A.of_rat s)
  let sign_at_instant p i = A.sign_of_poly_at p i

  let sign_after_instant p i =
    let rec go p =
      if P.is_zero p then 0
      else begin
        let s = A.sign_of_poly_at p i in
        if s <> 0 then s else go (P.derivative p)
      end
    in
    go p

  let first_root_after = A.first_root_after

  let first_root_at_or_after p s = A.first_root_at_or_after p (A.of_rat s)

  let all_roots = A.roots

  let between a b = A.rational_between a b

  let scalar_after i ~upto =
    match upto with
    | None -> A.rational_above i
    | Some u -> A.rational_between i (A.of_rat u)

  let scalar_of_rat q = q
  let curve_of_qpiece c = c
  let instant_to_float = A.to_float
  let pp_instant = A.pp
end

module Approx :
  S
    with type P.t = Moq_poly.Fpoly.t
     and type P.F.t = float
     and type PW.t = Moq_poly.Piecewise.Fpiece.t
     and type instant = float =
struct
  module P = Moq_poly.Fpoly
  module PW = Moq_poly.Piecewise.Fpiece

  type instant = float

  let instant_of_scalar t = t
  let compare_instant = Float.compare
  let compare_instant_scalar = Float.compare

  (* Event instants are roots computed in floating point, so evaluating a
     polynomial "at a crossing" yields a tiny nonzero residue.  Signs are
     therefore taken relative to the polynomial's magnitude at the point —
     the float analogue of the exact backend's algebraic zero test. *)
  let sign_at_instant p t =
    let v = P.eval p t in
    let at = Float.abs t in
    let scale =
      List.fold_left
        (fun (acc, pow) c -> (acc +. (Float.abs c *. pow), pow *. at))
        (0.0, 1.0) (P.to_list p)
      |> fst
    in
    (* Horner's rounding error is a small multiple of eps times the
       magnitude sum; anything beyond that is a real sign. *)
    if Float.abs v <= 32.0 *. epsilon_float *. (1.0 +. scale) then 0 else compare v 0.0

  let sign_after_instant p t =
    let rec go p =
      if P.is_zero p then 0
      else begin
        let s = sign_at_instant p t in
        if s <> 0 then s else go (P.derivative p)
      end
    in
    go p
  let first_root_after = Moq_poly.Froots.first_root_after
  let first_root_at_or_after = Moq_poly.Froots.first_root_at_or_after
  let all_roots = Moq_poly.Froots.real_roots
  let between a b = 0.5 *. (a +. b)

  let scalar_after i ~upto =
    match upto with
    | None -> i +. 1.0
    | Some u -> 0.5 *. (i +. u)

  let scalar_of_rat = Q.to_float
  let curve_of_qpiece = Moq_poly.Piecewise.fpiece_of_qpiece
  let instant_to_float t = t
  let pp_instant fmt t = Format.fprintf fmt "%g" t
end

(** Filtered exact backend.

    Every [instant] is an exact algebraic number shadowed by an
    outward-rounded float interval ({!Moq_numeric.Fintval}); polynomial
    coefficients get memoized interval shadows ({!Moq_poly.Shadow}).  Each
    predicate first tries to decide from the intervals — a {e hit} — and
    only when the interval answer is inconclusive runs the exact
    Sturm/Algnum machinery — a {e miss}, whose wall time is accumulated so
    the benchmarks can attribute cost.  Because every decision the sweep
    engine consumes (signs, comparisons, root existence and order) is
    either proved by an enclosing interval or delegated to [Exact], the
    produced event sequence, orders and support sets are bit-identical to
    the exact backend's. *)
module Filtered : sig
  include
    S
      with type P.t = Moq_poly.Qpoly.t
       and type P.F.t = Q.t
       and type PW.t = Moq_poly.Piecewise.Qpiece.t

  type filter_stats = {
    hits : int;  (** decisions settled by intervals alone *)
    misses : int;  (** decisions that fell back to exact arithmetic *)
    decisions : int;  (** total filtered decisions (= hits + misses) *)
    fallback_ns : float;  (** wall time spent inside exact fallbacks *)
    straddles : float list;
        (** approximate locations (float midpoints of the inconclusive
            enclosure) of the first few instants whose interval straddled
            and forced an exact fallback — the concrete places the filter
            lost, surfaced by [moq explain]; capped at 16, capture order *)
  }

  val filter_stats : unit -> filter_stats
  val reset_filter_stats : unit -> unit

  val publish : Moq_obs.Sink.t -> unit
  (** Push the current absolute [moq_filter_hit] / [moq_filter_miss] /
      [moq_filter_fallback_ns] values as counter increments; callers reset
      first ({!reset_filter_stats}) to publish one run's worth. *)

  val to_algnum : instant -> Moq_poly.Algnum.t
  (** The exact value, for cross-backend comparison in tests/benchmarks. *)

  val of_algnum : Moq_poly.Algnum.t -> instant
end = struct
  module P = Moq_poly.Qpoly
  module PW = Moq_poly.Piecewise.Qpiece
  module A = Moq_poly.Algnum
  module IV = Moq_numeric.Fintval
  module Shadow = Moq_poly.Shadow
  module Sink = Moq_obs.Sink

  (* [zero_of]: a polynomial this instant is known to be an exact root of
     (set when the instant was produced as a root).  Lets [sign_at_instant]
     certify the zero sign structurally — intervals alone can never prove a
     sign of exactly zero at a non-dyadic point. *)
  type instant = { ex : A.t; mutable iv : IV.t; zero_of : P.t option }

  type filter_stats = {
    hits : int;
    misses : int;
    decisions : int;
    fallback_ns : float;
    straddles : float list;
  }

  let hits = ref 0
  let misses = ref 0
  let decisions = ref 0
  let fallback_ns = ref 0.0

  let straddle_cap = 16
  let straddles = ref []  (* first [straddle_cap] captures, newest first *)
  let straddle_count = ref 0

  let filter_stats () =
    { hits = !hits; misses = !misses; decisions = !decisions;
      fallback_ns = !fallback_ns; straddles = List.rev !straddles }

  let reset_filter_stats () =
    hits := 0;
    misses := 0;
    decisions := 0;
    fallback_ns := 0.0;
    straddles := [];
    straddle_count := 0

  let note_straddle (iv : IV.t) =
    incr straddle_count;
    if !straddle_count <= straddle_cap then
      straddles := (0.5 *. (IV.lo iv +. IV.hi iv)) :: !straddles

  let publish sink =
    Sink.count sink "moq_filter_hit" !hits;
    Sink.count sink "moq_filter_miss" !misses;
    Sink.count sink "moq_filter_fallback_ns" (int_of_float !fallback_ns)

  let hit v =
    incr hits;
    v

  let miss ?at f =
    incr misses;
    (match at with Some iv -> note_straddle iv | None -> ());
    let t0 = Sink.wall () in
    let r = f () in
    fallback_ns := !fallback_ns +. ((Sink.wall () -. t0) *. 1e9);
    r

  (* Re-pull the (possibly refined-in-place) exact enclosure into the float
     shadow after an exact fallback, so later decisions hit. *)
  let refresh i =
    let lo, hi = A.bounds i.ex in
    i.iv <- IV.of_rat_bounds lo hi

  let of_algnum x =
    let lo, hi = A.bounds x in
    { ex = x; iv = IV.of_rat_bounds lo hi; zero_of = None }

  let to_algnum i = i.ex
  let instant_of_scalar s = { ex = A.of_rat s; iv = IV.of_rat s; zero_of = None }

  (* Is [p] the stored root polynomial, up to sign?  (The engine recomputes
     difference polynomials on the fly, so [p1 - p2] and [p2 - p1] both
     occur for the same crossing.) *)
  let is_zero_of i p =
    match i.zero_of with
    | Some p0 -> P.equal p p0 || P.equal p (P.neg p0)
    | None -> false

  let compare_instant a b =
    if a == b then 0
    else begin
      incr decisions;
      match IV.compare_certain a.iv b.iv with
      | Some c -> hit c
      | None when
          (match a.zero_of, b.zero_of with
           | Some pa, Some pb ->
             P.degree pa = 1 && (P.equal pa pb || P.equal pa (P.neg pb))
           | _ -> false) ->
        hit 0 (* both are the unique root of the same linear polynomial *)
      | None ->
        miss ~at:a.iv (fun () ->
          let c = A.compare a.ex b.ex in
          refresh a;
          refresh b;
          c)
    end

  let compare_instant_scalar i s =
    incr decisions;
    match IV.compare_certain i.iv (IV.of_rat s) with
    | Some c -> hit c
    | None ->
      miss ~at:i.iv (fun () ->
        let c = A.compare i.ex (A.of_rat s) in
        refresh i;
        c)

  let sign_at_instant p i =
    if P.is_zero p then 0
    else begin
      incr decisions;
      match IV.sign (Shadow.eval_at p i.iv) with
      | Some s -> hit s
      | None when is_zero_of i p -> hit 0
      | None ->
        miss ~at:i.iv (fun () ->
          let s = A.sign_of_poly_at p i.ex in
          refresh i;
          s)
    end

  let sign_after_instant p i =
    let rec go p =
      if P.is_zero p then 0
      else begin
        let s = sign_at_instant p i in
        if s <> 0 then s else go (P.derivative p)
      end
    in
    go p

  (* --- root filtering ------------------------------------------------- *)

  let linear_root p = Q.neg (Q.div (P.coeff p 0) (P.coeff p 1))

  (* Promote a finite interval [rc], already proved to contain exactly one
     root of [p] strictly beyond the threshold, into an exact instant.  The
     endpoint signs are checked exactly (cheap dyadic rationals); a zero or
     same-sign endpoint means the float certificate was too optimistic and
     the caller must fall back. *)
  let certify_root p (rc : IV.t) : instant option =
    if not (IV.is_finite rc) then None
    else begin
      let ql = Q.of_float (IV.lo rc) and qh = Q.of_float (IV.hi rc) in
      if Q.compare ql qh >= 0 then None
      else if P.sign_at p ql * P.sign_at p qh < 0 then
        Some { ex = A.root_of_isolating_exn p ~lo:ql ~hi:qh; iv = rc; zero_of = Some p }
      else None
    end

  (* Interval prefilter for the first root of a quadratic at-or-beyond a
     threshold enclosed by [tv].  Outer [None] = inconclusive (exact
     fallback); [Some ans] = certain answer.  A root exactly at the
     threshold is never certified, so the same filter serves both the
     strict ("after") and weak ("at or after") variants — they only differ
     on that always-fallback case. *)
  let quad_first_root p (tv : IV.t) : instant option option =
    let a2 = Shadow.coeff p 2 and a1 = Shadow.coeff p 1 and a0 = Shadow.coeff p 0 in
    let disc = IV.sub (IV.mul a1 a1) (IV.mul (IV.of_int 4) (IV.mul a2 a0)) in
    match IV.sign disc with
    | Some s when s < 0 -> Some None (* certainly no real roots *)
    | Some s when s > 0 ->
      let sq = IV.sqrt disc in
      let two_a2 = IV.mul (IV.of_int 2) a2 in
      let r1 = IV.div (IV.sub (IV.neg a1) sq) two_a2 in
      let r2 = IV.div (IV.add (IV.neg a1) sq) two_a2 in
      let ordered =
        if IV.hi r1 < IV.lo r2 then Some (r1, r2)
        else if IV.hi r2 < IV.lo r1 then Some (r2, r1)
        else None (* enclosures overlap: near-tangency, fall back *)
      in
      (match ordered with
       | None -> None
       | Some (rmin, rmax) ->
         if IV.hi rmax < IV.lo tv then Some None (* both roots certainly before *)
         else if IV.lo rmin > IV.hi tv then
           (match certify_root p rmin with Some i -> Some (Some i) | None -> None)
         else if IV.hi rmin < IV.lo tv && IV.lo rmax > IV.hi tv then
           (match certify_root p rmax with Some i -> Some (Some i) | None -> None)
         else None)
    | _ -> None (* double root or inconclusive discriminant *)

  let first_root_after p i =
    let d = P.degree p in
    if d <= 0 then None
    else begin
      incr decisions;
      if d = 1 then begin
        let r = linear_root p in
        let rv = IV.of_rat r in
        let root () = Some { ex = A.of_rat r; iv = rv; zero_of = Some p } in
        match IV.compare_certain rv i.iv with
        | Some c -> hit (if c > 0 then root () else None)
        | None ->
          (* [i] the unique root of [p] itself: no root strictly after *)
          if is_zero_of i p then hit None
          else
            miss ~at:rv (fun () ->
              if A.compare (A.of_rat r) i.ex > 0 then root () else None)
      end
      else if d = 2 then begin
        match quad_first_root p i.iv with
        | Some ans -> hit ans
        | None -> miss ~at:i.iv (fun () -> Option.map of_algnum (A.first_root_after p i.ex))
      end
      else miss ~at:i.iv (fun () -> Option.map of_algnum (A.first_root_after p i.ex))
    end

  let first_root_at_or_after p s =
    let d = P.degree p in
    if d <= 0 then None
    else begin
      incr decisions;
      if d = 1 then begin
        let r = linear_root p in
        let rv = IV.of_rat r in
        let root () = Some { ex = A.of_rat r; iv = rv; zero_of = Some p } in
        match IV.compare_certain rv (IV.of_rat s) with
        | Some c -> hit (if c >= 0 then root () else None)
        | None ->
          miss ~at:rv (fun () ->
            if Q.compare r s >= 0 then root () else None)
      end
      else if d = 2 then begin
        match quad_first_root p (IV.of_rat s) with
        | Some ans -> hit ans
        | None ->
          miss ~at:(IV.of_rat s)
            (fun () -> Option.map of_algnum (A.first_root_at_or_after p (A.of_rat s)))
      end
      else
        miss ~at:(IV.of_rat s)
          (fun () -> Option.map of_algnum (A.first_root_at_or_after p (A.of_rat s)))
    end

  let all_roots p = List.map of_algnum (A.roots p)

  (* A float strictly inside the open gap (l, h), if one exists. *)
  let gap_mid l h =
    let m = 0.5 *. (l +. h) in
    if l < m && m < h && Float.is_finite m then Some m else None

  let between a b =
    incr decisions;
    let fast =
      if IV.hi a.iv < IV.lo b.iv then gap_mid (IV.hi a.iv) (IV.lo b.iv)
      else if IV.hi b.iv < IV.lo a.iv then gap_mid (IV.hi b.iv) (IV.lo a.iv)
      else None
    in
    match fast with
    | Some m -> hit (Q.of_float m) (* exact dyadic, strictly between *)
    | None -> miss ~at:a.iv (fun () -> A.rational_between a.ex b.ex)

  let scalar_after i ~upto =
    match upto with
    | None -> A.rational_above i.ex
    | Some u ->
      incr decisions;
      let uv = IV.of_rat u in
      let fast = if IV.hi i.iv < IV.lo uv then gap_mid (IV.hi i.iv) (IV.lo uv) else None in
      (match fast with
       | Some m -> hit (Q.of_float m)
       | None -> miss ~at:i.iv (fun () -> A.rational_between i.ex (A.of_rat u)))

  let scalar_of_rat q = q
  let curve_of_qpiece c = c
  let instant_to_float i = A.to_float i.ex
  let pp_instant fmt i = A.pp fmt i.ex
end
