(** The k-NN operator (paper, Examples 6, 10, 12): the answer at each
    instant is the set of the k lowest g-distance curves — read directly off
    the sweep's order structure instead of re-evaluating a formula, so each
    support change costs O(log N + k).

    At event instants, objects tied with the k-th curve are all reported
    (the crossing pair is momentarily equal — the paper's step 1 where
    [o ≡_τ' o']). *)

module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module Sink = Moq_obs.Sink

module Make (B : Backend.S) = struct
  module E = Engine.Make (B)
  module C = E.C
  module TL = Timeline.Make (B)

  type result = {
    timeline : TL.t;
    stats : E.stats;
    hot : E.hot list;  (** per-object cost attribution, hottest first *)
  }

  let oid_of e = match E.label e with E.Obj (o, _) -> Some o | E.Cst _ -> None

  let set_of_entries es =
    List.fold_left
      (fun acc e -> match oid_of e with Some o -> Oid.Set.add o acc | None -> acc)
      Oid.Set.empty es

  (* first k entries; at an instant, extend with the run of entries tied
     with the k-th *)
  let answer_span eng k = set_of_entries (E.first_n eng k)

  let answer_at eng k i =
    let firsts = E.first_n eng k in
    let n = List.length firsts in
    if n < k then set_of_entries firsts
    else begin
      let kth = List.nth firsts (k - 1) in
      let rec extend j acc =
        match E.nth_entry eng j with
        | Some e when C.diff_sign_at (E.curve e) (E.curve kth) i = 0 ->
          extend (j + 1) (e :: acc)
        | _ -> acc
      in
      set_of_entries (extend k firsts)
    end

  let entries ~(db : DB.t) ~(gdist : Gdist.t) =
    List.map
      (fun (o, tr) -> (E.Obj (o, 0), B.curve_of_qpiece (Gdist.curve gdist tr)))
      (DB.objects db)

  let engine ?(sink = Sink.noop) ~db ~gdist ~lo ~hi () =
    E.create ~sink ~start:(B.scalar_of_rat lo) ~horizon:(B.scalar_of_rat hi)
      (entries ~db ~gdist)

  let run_obs ~(sink : Sink.t) ~(db : DB.t) ~(gdist : Gdist.t) ~(k : int)
      ~(lo : Q.t) ~(hi : Q.t) : result =
    if k <= 0 then invalid_arg "Knn.run: k must be positive";
    Sink.count sink "moq_query_knn_total" 1;
    Sink.time sink "moq_query_knn_seconds" @@ fun () ->
    let eng = engine ~sink ~db ~gdist ~lo ~hi () in
    let pieces = ref [] in
    let emit = function
      | E.Span (a, b) -> pieces := TL.Span (a, b, answer_span eng k) :: !pieces
      | E.Point i -> pieces := TL.At (i, answer_at eng k i) :: !pieces
    in
    let lo_i = B.instant_of_scalar (B.scalar_of_rat lo) in
    let hi_s = B.scalar_of_rat hi in
    let hi_i = B.instant_of_scalar hi_s in
    pieces := [ TL.At (lo_i, answer_at eng k lo_i) ];
    if Q.compare lo hi < 0 then begin
      E.advance eng ~upto:hi_s ~emit;
      let last = E.now eng in
      if B.compare_instant last hi_i < 0 then begin
        pieces :=
          TL.At (hi_i, answer_at eng k hi_i)
          :: TL.Span (last, hi_i, answer_span eng k)
          :: !pieces
      end
    end;
    { timeline = TL.simplify (List.rev !pieces); stats = E.stats eng;
      hot = E.hot_objects eng }

  let run ~db ~gdist ~k ~lo ~hi = run_obs ~sink:Sink.noop ~db ~gdist ~k ~lo ~hi
end
