(** The plane-sweep core (paper, Section 5).

    Maintains the precedence relation [≤_τ] of a set of g-distance curves as
    a balanced ordered sequence (the paper's object list [L]), and an event
    queue holding — per Lemma 9's optimization — at most one pending
    intersection event for each pair of {e currently adjacent} curves, in a
    deletable leftist heap.  Crossings, births (curve domain starts) and
    deaths (domain ends) are processed in chronological batches; after each
    batch the engine re-establishes the invariant by re-examining the
    neighbourhoods that changed.

    Simultaneous events (several curves meeting at one instant) are resolved
    by a local bubble pass with the "just after τ′" comparator — the paper's
    "the precedence relation is modified before the propagation is done".

    Both the past-query evaluator ({!Sweep}) and the future-query monitor
    ({!Monitor}) drive this engine. *)

module Make (B : Backend.S) : sig
  module C : module type of Curves.Make (B)

  type label =
    | Obj of Moq_mod.Oid.t * int
        (** object OID and time-term index (0 = the plain variable [t]) *)
    | Cst of Moq_numeric.Rat.t
        (** a constant curve for a real constant appearing in the query *)

  val compare_label : label -> label -> int
  val pp_label : Format.formatter -> label -> unit

  type entry

  val label : entry -> label
  val curve : entry -> B.PW.t

  type t

  type stats = {
    mutable crossings : int;  (** crossing events processed *)
    mutable swaps : int;      (** adjacent transpositions performed *)
    mutable births : int;
    mutable deaths : int;
    mutable batches : int;    (** distinct event instants processed *)
    mutable jumps : int;
        (** discontinuity repositionings (Section 5's piecewise-continuous
            g-distance relaxation) *)
    mutable comparisons : int;
        (** curve-order comparisons — the cost unit of the paper's analysis,
            which explicitly excludes intersection computation *)
    mutable audit_failures : int;
        (** {!audit_and_heal} passes that found a violated invariant *)
    mutable rebuilds : int;  (** self-healing {!rebuild} passes performed *)
    mutable audit_structure : int;
        (** order-list structural violations (AVL balance, sizes) found *)
    mutable audit_order : int;  (** sweep-order inversions found *)
    mutable audit_event : int;
        (** event-queue/adjacency violations (stale or mistargeted) found *)
    mutable audit_dead : int;   (** dead entries found still mounted *)
    mutable audit_clock : int;  (** events found preceding the clock *)
  }

  (** Audit violations, typed by the invariant they break — the per-kind
      counters in {!stats} and the [moq_engine_audit_violation_*_total]
      metrics aggregate these. *)
  type violation_kind = V_structure | V_order | V_event | V_dead | V_clock

  val violation_kind_name : violation_kind -> string

  val create :
    ?sink:Moq_obs.Sink.t -> ?attr:bool -> start:B.P.F.t -> ?horizon:B.P.F.t ->
    (label * B.PW.t) list -> t
  (** Initialize the sweep at time [start]: curves alive at [start] are
      sorted into the object list (O(N log N), Theorem 5(1)); curves whose
      domain begins later are scheduled as birth events.  Curves ending
      before [start] are ignored.  Events after [horizon] are never
      scheduled.  [attr] (default [true]) keeps per-object comparison/swap
      attribution ({!hot_objects}); pass [false] to shave the per-comparison
      table probe off the hot path. *)

  (** Per-object attribution of the sweep's cost units: how many
      curve-order comparisons and adjacent transpositions each object
      participated in (a comparison bumps both participants, so the sum
      over objects is up to 2× {!stats}.comparisons — constant curves from
      query terms carry the rest). *)
  type hot = {
    h_oid : Moq_mod.Oid.t;
    h_comparisons : int;
    h_swaps : int;
  }

  val hot_objects : t -> hot list
  (** Every attributed object, hottest (most comparisons) first; [[]] when
      attribution is off. *)

  val now : t -> B.instant
  val stats : t -> stats
  val order : t -> entry list
  (** Current order of the sweep line, ascending by curve value. *)

  val first_n : t -> int -> entry list
  (** The [n] lowest entries (fewer if the list is shorter). *)

  val nth_entry : t -> int -> entry option
  (** Entry at 0-based rank, O(log N). *)

  val rank_of : t -> entry -> int
  (** Current 0-based rank of a mounted entry, O(log N). *)

  val size : t -> int
  val queue_length : t -> int

  val find : t -> label -> entry option
  (** An entry currently in the sweep (born and not dead). *)

  type step =
    | Span of B.instant * B.instant
        (** the open interval between consecutive event instants, over which
            the order (hence the support, by Lemma 8) was constant; the
            engine state reflects this span's order when emitted *)
    | Point of B.instant
        (** an event instant; emitted after crossings and births applied,
            before deaths removed *)

  val advance : t -> upto:B.P.F.t -> emit:(step -> unit) -> unit
  (** Process all events with instant strictly before [upto].  [emit] is
      called per the [step] protocol; the final span up to [upto] is {e not}
      emitted (callers close it — they know whether [upto] is an update time
      or the query horizon). *)

  (* Update-time mutations (the paper's three cases).  Each runs in
     O(log N) plus rescheduling, per Lemma 9. *)

  (* Each mutation carries its update time [at ≥ now]; the engine clock
     moves to [at] (the paper "increments the time in the MOD").  Advancing
     past the events that precede [at] is the caller's job. *)

  val sync_clock : t -> at:B.P.F.t -> unit
  (** Move the clock to [at ≥ now] without touching the curves (an update
      that does not affect mounted entries). *)

  val insert : t -> at:B.P.F.t -> label -> B.PW.t -> unit
  (** [new]: insert a curve (its domain must contain [at]). *)

  val remove : t -> at:B.P.F.t -> label -> unit
  (** [terminate]: remove the entry and its events; the newly adjacent pair
      is re-examined. *)

  val replace_curve : t -> at:B.P.F.t -> label -> B.PW.t -> unit
  (** [chdir]: substitute the entry's curve (which must agree with the old
      one at [at], by trajectory continuity); the order does not change, but
      the entry's pending intersections are recomputed — exactly the paper's
      chdir case. *)

  val replace_all_curves : t -> at:B.P.F.t -> (entry -> B.PW.t) -> unit
  (** Theorem 10: a direction update on the {e query} trajectory changes
      every curve at once while preserving the current precedence relation.
      Rebuilds all pending events in O(N) heap construction without
      re-sorting the object list. *)

  val audit : t -> string list
  (** Non-raising invariant audit: order list sorted by curve value at the
      current clock (modulo crossings batched exactly at [now]), heap and
      adjacency consistency (one live event per adjacent pair, correctly
      targeted), no dead entries mounted, and no pending event before the
      clock (monotone batch times).  Returns human-readable violations,
      [[]] when clean. *)

  val audit_kinds : t -> (violation_kind * string) list
  (** {!audit} with each violation tagged by the invariant kind it breaks. *)

  val note_violations : t -> (violation_kind * string) list -> unit
  (** Record audit findings in the per-kind {!stats} fields and the sink
      (used by {!audit_and_heal} and the monitor's own heal path). *)

  val rebuild : t -> unit
  (** The Theorem 10 fallback: discard the sweep structures and rebuild the
      object list and event queue from the entries' curves at the current
      clock, in O(N log N).  Also heals entries whose birth or death event
      was lost.  Semantics-preserving on a healthy engine. *)

  val audit_and_heal : t -> string list
  (** {!audit}; on any violation, count it in {!stats} and {!rebuild}.
      Returns the violations found (empty = healthy, no rebuild). *)

  val check_invariants : t -> unit
  (** Order list sorted w.r.t. "just after now", one event per adjacent
      pair, no stale events (tests; raises on violation — production paths
      use {!audit_and_heal}). *)
end
