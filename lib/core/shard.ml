(* Sharded, index-pruned k-NN sweep.  See shard.mli for the algorithm and
   the soundness argument; the invariant that matters throughout this file
   is that every decision that can change an answer — the band bound B, the
   shard separation test, the frontier tie extension — is made in exact
   arithmetic. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module Oid = Moq_mod.Oid
module Grid = Moq_index.Grid
module Sink = Moq_obs.Sink

module Make (B : Backend.S) = struct
  module E = Engine.Make (B)
  module C = E.C
  module TL = Timeline.Make (B)

  type shard_stats = {
    shards_total : int;
    shards_touched : int;
    admitted : int;
    pruned : int;
    frontier_merge_ops : int;
    shard_events : int;
    band : float option;
  }

  type result = {
    timeline : TL.t;
    stats : E.stats;
    shard : shard_stats;
    hot : E.hot list;
  }

  let default_cell = 64.0

  (* ---------------------------------------------------------------- *)
  (* Exact band bound                                                  *)
  (* ---------------------------------------------------------------- *)

  let covers tr ~lo ~hi =
    Q.compare (T.birth tr) lo <= 0
    && (match T.death tr with None -> true | Some d -> Q.compare d hi >= 0)

  (* Max over [lo, hi] of |tr(t) - gamma(t)|², exact.  Both trajectories
     are piecewise linear, so the squared distance is piecewise quadratic
     with non-negative leading coefficient (|Δa|² t² + ...): convex on
     each piece, hence maximal at a piece breakpoint.  Requires both
     trajectories defined throughout the window. *)
  let dmax_sq tr gamma ~lo ~hi =
    let breaks tr =
      List.filter
        (fun t -> Q.compare lo t < 0 && Q.compare t hi < 0)
        (List.map (fun (p : T.piece) -> p.T.start) (T.pieces tr))
    in
    let pts = (lo :: hi :: breaks tr) @ breaks gamma in
    List.fold_left
      (fun acc t ->
        let d = Qvec.dist2 (T.position_exn tr t) (T.position_exn gamma t) in
        match acc with None -> Some d | Some m -> Some (Q.max m d))
      None pts

  (* The band bound B: the k-th smallest exact window-max distance among
     pilot objects found by ring search around gamma.  Any k pilots alive
     throughout the window make the bound sound — at every instant at
     least k objects sit within B — and near pilots make it tight.
     [None] when gamma does not cover the window or pilots run out. *)
  let band_bound grid db gamma ~k ~lo ~hi =
    if not (covers gamma ~lo ~hi) then None
    else begin
      let pos = T.position_exn gamma lo in
      let x = Q.to_float (Qvec.get pos 0) in
      let y = if Qvec.dim pos >= 2 then Q.to_float (Qvec.get pos 1) else 0.0 in
      let center = Grid.cell_of ~cell:(Grid.cell_size grid) (x, y) in
      let last = Grid.max_ring grid ~center in
      (* an object's pieces can span cells in several rings — pilots must
         be distinct or k copies of one nearby object fake a tight band *)
      let seen = Hashtbl.create 16 in
      let rec collect ring extra acc count =
        if ring > last || extra < 0 then acc
        else begin
          let fresh =
            List.filter
              (fun o ->
                (not (Hashtbl.mem seen o))
                &&
                (Hashtbl.add seen o ();
                 match DB.find db o with
                 | Some tr -> covers tr ~lo ~hi
                 | None -> false))
              (Grid.ring_candidates grid ~center ~ring)
          in
          let count = count + List.length fresh in
          (* one extra ring after reaching k pilots, for tightness *)
          let extra = if count >= k then extra - 1 else extra in
          collect (ring + 1) extra (List.rev_append fresh acc) count
        end
      in
      let pilots = collect 0 1 [] 0 in
      let dmaxes =
        List.filter_map
          (fun o ->
            match DB.find db o with
            | Some tr -> dmax_sq tr gamma ~lo ~hi
            | None -> None)
          pilots
      in
      let sorted = List.sort Q.compare dmaxes in
      if List.length sorted >= k then Some (List.nth sorted (k - 1)) else None
    end

  (* ---------------------------------------------------------------- *)
  (* Frontier extraction                                               *)
  (* ---------------------------------------------------------------- *)

  (* A shard sweep admits its local top-k on every span, extended with
     local k-th ties at event instants — the smallest set guaranteed to
     contain every shard member that can ever appear in the global
     answer. *)
  let sweep_shard ~sink ~admit ~k ~lo ~hi entries =
    let eng = E.create ~sink ~start:(B.scalar_of_rat lo)
        ~horizon:(B.scalar_of_rat hi) entries
    in
    let admit_entry e = admit (E.label e) in
    let frontier_span () = List.iter admit_entry (E.first_n eng k) in
    let frontier_at i =
      let firsts = E.first_n eng k in
      List.iter admit_entry firsts;
      if List.length firsts >= k then begin
        let kth = List.nth firsts (k - 1) in
        let rec extend j =
          match E.nth_entry eng j with
          | Some e when C.diff_sign_at (E.curve e) (E.curve kth) i = 0 ->
            admit_entry e;
            extend (j + 1)
          | _ -> ()
        in
        extend k
      end
    in
    let lo_i = B.instant_of_scalar (B.scalar_of_rat lo) in
    frontier_at lo_i;
    if Q.compare lo hi < 0 then begin
      let emit = function
        | E.Span (_, _) -> frontier_span ()
        | E.Point i -> frontier_at i
      in
      E.advance eng ~upto:(B.scalar_of_rat hi) ~emit;
      (* the final span up to the horizon, and the horizon instant *)
      frontier_span ();
      frontier_at (B.instant_of_scalar (B.scalar_of_rat hi))
    end;
    eng

  (* ---------------------------------------------------------------- *)
  (* The driver                                                        *)
  (* ---------------------------------------------------------------- *)

  let zero_stats () =
    { E.crossings = 0; swaps = 0; births = 0; deaths = 0; batches = 0;
      jumps = 0; comparisons = 0; audit_failures = 0; rebuilds = 0;
      audit_structure = 0; audit_order = 0; audit_event = 0; audit_dead = 0;
      audit_clock = 0 }

  let accumulate acc (s : E.stats) =
    acc.E.crossings <- acc.E.crossings + s.E.crossings;
    acc.E.swaps <- acc.E.swaps + s.E.swaps;
    acc.E.births <- acc.E.births + s.E.births;
    acc.E.deaths <- acc.E.deaths + s.E.deaths;
    acc.E.batches <- acc.E.batches + s.E.batches;
    acc.E.jumps <- acc.E.jumps + s.E.jumps;
    acc.E.comparisons <- acc.E.comparisons + s.E.comparisons;
    acc.E.audit_failures <- acc.E.audit_failures + s.E.audit_failures;
    acc.E.rebuilds <- acc.E.rebuilds + s.E.rebuilds

  let events_of (s : E.stats) =
    s.E.crossings + s.E.births + s.E.deaths + s.E.jumps

  let merge_hot tbl hots =
    List.iter
      (fun (h : E.hot) ->
        let c, s =
          Option.value ~default:(0, 0) (Hashtbl.find_opt tbl h.E.h_oid)
        in
        Hashtbl.replace tbl h.E.h_oid
          (c + h.E.h_comparisons, s + h.E.h_swaps))
      hots

  let run_obs ~(sink : Sink.t) ~(db : DB.t) ~(gamma : T.t) ~(k : int)
      ~(lo : Q.t) ~(hi : Q.t) ?(cell = default_cell) () : result =
    if k <= 0 then invalid_arg "Shard.run: k must be positive";
    Sink.count sink "moq_query_sharded_knn_total" 1;
    let gdist = Gdist.euclidean_sq ~gamma in
    let grid =
      Sink.time sink "moq_shard_index_build_seconds" @@ fun () ->
      Grid.build ~cell ~lo ~hi db
    in
    let band = band_bound grid db gamma ~k ~lo ~hi in
    let gamma_box = Grid.trajectory_box gamma ~lo ~hi in
    let shards = Grid.shards grid in
    let admitted = Hashtbl.create 64 in
    let merge_ops = ref 0 in
    let admit = function
      | E.Obj (o, _) ->
        incr merge_ops;
        if not (Hashtbl.mem admitted o) then Hashtbl.add admitted o ()
      | E.Cst _ -> ()
    in
    let entries_of oids =
      List.filter_map
        (fun o ->
          Option.map
            (fun tr -> (E.Obj (o, 0), B.curve_of_qpiece (Gdist.curve gdist tr)))
            (DB.find db o))
        oids
    in
    let stats = zero_stats () in
    let hot_tbl = Hashtbl.create 64 in
    let touched = ref 0 in
    let shard_events = ref 0 in
    (Sink.time sink "moq_shard_sweep_seconds" @@ fun () ->
     List.iter
       (fun ((_key : int * int), members, box) ->
         let skip =
           match box with
           | None -> true  (* no window presence: never in any answer *)
           | Some sbox ->
             (match band, gamma_box with
              | Some b, Some gbox ->
                Q.compare (Grid.box_separation_sq sbox gbox) b > 0
              | _ -> false)
         in
         if not skip then begin
           incr touched;
           let eng = sweep_shard ~sink ~admit ~k ~lo ~hi (entries_of members) in
           let s = E.stats eng in
           shard_events := !shard_events + events_of s;
           accumulate stats s;
           merge_hot hot_tbl (E.hot_objects eng)
         end)
       shards);
    (* Merge sweep over the admitted union: the same emit protocol as the
       plain k-NN run, so the simplified timeline is bit-identical to it. *)
    let admitted_oids =
      List.sort Oid.compare (Hashtbl.fold (fun o () acc -> o :: acc) admitted [])
    in
    let eng = E.create ~sink ~start:(B.scalar_of_rat lo)
        ~horizon:(B.scalar_of_rat hi) (entries_of admitted_oids)
    in
    let oid_of e = match E.label e with E.Obj (o, _) -> Some o | E.Cst _ -> None in
    let set_of_entries es =
      List.fold_left
        (fun acc e ->
          match oid_of e with Some o -> Oid.Set.add o acc | None -> acc)
        Oid.Set.empty es
    in
    let answer_span () = set_of_entries (E.first_n eng k) in
    let answer_at i =
      let firsts = E.first_n eng k in
      let n = List.length firsts in
      if n < k then set_of_entries firsts
      else begin
        let kth = List.nth firsts (k - 1) in
        let rec extend j acc =
          match E.nth_entry eng j with
          | Some e when C.diff_sign_at (E.curve e) (E.curve kth) i = 0 ->
            extend (j + 1) (e :: acc)
          | _ -> acc
        in
        set_of_entries (extend k firsts)
      end
    in
    let pieces = ref [] in
    let emit = function
      | E.Span (a, b) -> pieces := TL.Span (a, b, answer_span ()) :: !pieces
      | E.Point i -> pieces := TL.At (i, answer_at i) :: !pieces
    in
    let lo_i = B.instant_of_scalar (B.scalar_of_rat lo) in
    let hi_s = B.scalar_of_rat hi in
    let hi_i = B.instant_of_scalar hi_s in
    pieces := [ TL.At (lo_i, answer_at lo_i) ];
    if Q.compare lo hi < 0 then begin
      E.advance eng ~upto:hi_s ~emit;
      let last = E.now eng in
      if B.compare_instant last hi_i < 0 then
        pieces :=
          TL.At (hi_i, answer_at hi_i)
          :: TL.Span (last, hi_i, answer_span ())
          :: !pieces
    end;
    let merge_stats = E.stats eng in
    accumulate stats merge_stats;
    merge_hot hot_tbl (E.hot_objects eng);
    let n_admitted = List.length admitted_oids in
    let shard =
      { shards_total = List.length shards;
        shards_touched = !touched;
        admitted = n_admitted;
        pruned = Grid.population grid - n_admitted;
        frontier_merge_ops = !merge_ops;
        shard_events = !shard_events;
        band = Option.map Q.to_float band }
    in
    Sink.set sink "moq_shard_shards" (float_of_int shard.shards_total);
    Sink.count sink "moq_shard_touched_total" shard.shards_touched;
    Sink.count sink "moq_shard_admissions_total" shard.admitted;
    Sink.count sink "moq_shard_prunes_total" shard.pruned;
    Sink.count sink "moq_shard_frontier_merge_ops_total" shard.frontier_merge_ops;
    Sink.count sink "moq_shard_events_total" shard.shard_events;
    let hot =
      Hashtbl.fold
        (fun o (c, s) acc ->
          { E.h_oid = o; h_comparisons = c; h_swaps = s } :: acc)
        hot_tbl []
      |> List.sort (fun (a : E.hot) b ->
             match compare b.E.h_comparisons a.E.h_comparisons with
             | 0 -> Oid.compare a.E.h_oid b.E.h_oid
             | c -> c)
    in
    { timeline = TL.simplify (List.rev !pieces); stats; shard; hot }

  let run ~db ~gamma ~k ~lo ~hi ?cell () =
    run_obs ~sink:Sink.noop ~db ~gamma ~k ~lo ~hi ?cell ()
end
