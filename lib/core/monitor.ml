(** Future and continuing queries (paper, Theorem 5, Corollary 6,
    Theorem 10).

    The monitor "semi-evaluates" the query eagerly: it holds the sweep state
    at the current clock and, as updates arrive chronologically, processes
    the intersection events that precede each update, turning predicted
    answer pieces into {e valid} ones (Definition 4: a valid answer can no
    longer change under any update sequence, because updates strictly follow
    the clock).  The three update kinds are handled exactly as in the
    paper's case analysis; a direction change of the query object itself is
    the O(N) rebuild of Theorem 10. *)

module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module T = Moq_mod.Trajectory
module U = Moq_mod.Update
module DB = Moq_mod.Mobdb
module Sink = Moq_obs.Sink

module Make (B : Backend.S) = struct
  module E = Engine.Make (B)
  module P = Problem.Make (B)
  module S = P.S
  module TL = Timeline.Make (B)
  module Sw = Sweep.Make (B)

  type t = {
    mutable db : DB.t;
    problem : P.t;
    engine : E.t;
    sink : Sink.t;
    query : Fof.query;
    hi : Q.t;  (** interval end *)
    materialize : bool;
        (** evaluate and record answers (default); [false] maintains the
            support only — the object Theorem 5 bounds — and leaves the
            timeline empty *)
    mutable valid : TL.piece list;  (** reversed; answers that can no longer change *)
    mutable drained : int;  (** prefix of [valid] already handed to {!drain_valid} *)
    mutable clock : Q.t;  (** no update can arrive at or before this time *)
  }

  let interval_bounds (q : Fof.query) =
    match Fof.Interval.lo q.Fof.interval, Fof.Interval.hi q.Fof.interval with
    | Some lo, Some hi -> (lo, hi)
    | _ -> invalid_arg "Monitor: queries need a bounded interval"

  let advance_engine m (upto : Q.t) =
    if not m.materialize then E.advance m.engine ~upto:(B.scalar_of_rat upto) ~emit:(fun _ -> ())
    else begin
      let ctx = P.snapshot_ctx m.problem in
      let answer i = S.answer_at ctx m.query i in
      let emit = function
        | E.Span (a, b) ->
          let sample = B.instant_of_scalar (B.between a b) in
          m.valid <- TL.Span (a, b, answer sample) :: m.valid
        | E.Point i -> m.valid <- TL.At (i, answer i) :: m.valid
      in
      E.advance m.engine ~upto:(B.scalar_of_rat upto) ~emit
    end

  (* Theorem 5(1): initialization, O(N log N). *)
  let create ?(sink = Sink.noop) ?(attr = true) ?(materialize = true) ~(db : DB.t)
      ~(gdist : Gdist.t) ~(query : Fof.query) () : t =
    let lo, hi = interval_bounds query in
    let p = P.create ~db ~gdist ~query ~istart:lo in
    let eng =
      E.create ~sink ~attr ~start:(B.scalar_of_rat lo) ~horizon:(B.scalar_of_rat hi)
        (P.entry_list p)
    in
    if Sink.active sink then begin
      Sink.count sink "moq_monitor_created_total" 1;
      let kind =
        match Classify.classify db query with
        | Classify.Past -> "past"
        | Classify.Continuing -> "continuing"
        | Classify.Future -> "future"
      in
      Sink.count sink (Printf.sprintf "moq_query_kind_%s_total" kind) 1
    end;
    let m =
      { db; problem = p; engine = eng; sink; query; hi; materialize;
        valid = []; drained = 0; clock = lo }
    in
    if materialize then begin
      let lo_i = B.instant_of_scalar (B.scalar_of_rat lo) in
      let ctx = P.snapshot_ctx p in
      m.valid <- [ TL.At (lo_i, S.answer_at ctx query lo_i) ]
    end;
    (* the part of the interval already in the past is valid immediately *)
    let tau0 = DB.last_update db in
    if Q.compare lo tau0 < 0 then advance_engine m (Q.min tau0 hi);
    m.clock <- Q.max lo (Q.min tau0 hi);
    m

  (* Emit the span between the engine's position and [tau] with the current
     (pre-update) answers.  The engine clock itself is moved by the
     subsequent update operation or sync. *)
  let close_span_to m (tau : Q.t) =
    if not m.materialize then ()
    else
    let now = E.now m.engine in
    let tau_i = B.instant_of_scalar (B.scalar_of_rat tau) in
    if B.compare_instant now tau_i < 0 then begin
      let ctx = P.snapshot_ctx m.problem in
      let sample = B.instant_of_scalar (B.between now tau_i) in
      m.valid <- TL.Span (now, tau_i, S.answer_at ctx m.query sample) :: m.valid
    end

  let emit_at m (tau : Q.t) =
    if not m.materialize then ()
    else
    let ctx = P.snapshot_ctx m.problem in
    let tau_i = B.instant_of_scalar (B.scalar_of_rat tau) in
    m.valid <- TL.At (tau_i, S.answer_at ctx m.query tau_i) :: m.valid

  (* Close the validated timeline up to [upto] (trailing span + endpoint). *)
  let close_until m (upto : Q.t) =
    let now = E.now m.engine in
    let upto_i = B.instant_of_scalar (B.scalar_of_rat upto) in
    if B.compare_instant now upto_i < 0 then begin
      close_span_to m upto;
      emit_at m upto
    end

  (* Theorem 5(2): one update, O(m log N) where m is the number of support
     changes since the previous update. *)
  let apply_update_raw m (u : U.t) : (unit, DB.error) result =
    match DB.apply m.db u with
    | Error e -> Error e
    | Ok db' ->
      let tau = U.time u in
      let tau_eff = Q.min tau m.hi in
      if Q.compare m.clock tau_eff < 0 then advance_engine m tau_eff;
      (* validate the span leading up to the update with pre-update state *)
      let emitted_span = B.compare_instant (E.now m.engine) (B.instant_of_scalar (B.scalar_of_rat tau_eff)) < 0 in
      if emitted_span then close_span_to m tau_eff;
      E.sync_clock m.engine ~at:(B.scalar_of_rat tau_eff);
      m.db <- db';
      let o = U.oid u in
      (* refresh problem-side curves *)
      (match DB.find db' o with
       | Some tr -> ignore (P.update_object m.problem o tr)
       | None -> ());
      (* engine-side, only when the update time is within the horizon *)
      if Q.compare tau m.hi <= 0 then begin
        let tau_s = B.scalar_of_rat tau in
        let arr = Oid.Map.find o m.problem.P.curves in
        (match u with
         | U.New _ ->
           Array.iteri
             (fun k c ->
               match c with
               | Some c when B.PW.defined_at c tau_s -> E.insert m.engine ~at:tau_s (E.Obj (o, k)) c
               | Some _ | None ->
                 (* curve starting later (affine time term) is picked up as
                    a birth event when the problem curves are rebuilt *)
                 ())
             arr
         | U.Terminate _ ->
           Array.iteri
             (fun k _ ->
               match E.find m.engine (E.Obj (o, k)) with
               | Some _ -> E.remove m.engine ~at:tau_s (E.Obj (o, k))
               | None -> ())
             arr
         | U.Chdir _ ->
           Array.iteri
             (fun k c ->
               match c, E.find m.engine (E.Obj (o, k)) with
               | Some c, Some _ -> E.replace_curve m.engine ~at:tau_s (E.Obj (o, k)) c
               | Some c, None when B.PW.defined_at c tau_s ->
                 E.insert m.engine ~at:tau_s (E.Obj (o, k)) c
               | _ -> ())
             arr)
      end;
      (* the answer at the update instant reflects the update *)
      if emitted_span then emit_at m tau_eff;
      if Q.compare m.clock tau_eff < 0 then m.clock <- tau_eff;
      Ok ()

  (* Corollary 6 check: per-update latency and the support-change count m
     this update triggered (events processed while advancing to the update
     time, plus the update's own births/deaths). *)
  let support_of (s : E.stats) = s.E.crossings + s.E.births + s.E.deaths

  let hot_objects m = E.hot_objects m.engine

  let apply_update m (u : U.t) : (unit, DB.error) result =
    if not (Sink.active m.sink) then apply_update_raw m u
    else begin
      Sink.count m.sink "moq_monitor_updates_total" 1;
      let s0 = support_of (E.stats m.engine) in
      let r =
        Sink.time m.sink "moq_monitor_update_seconds" (fun () ->
            apply_update_raw m u)
      in
      (match r with
       | Ok () ->
         Sink.observe m.sink "moq_monitor_support_delta"
           (float_of_int (support_of (E.stats m.engine) - s0))
       | Error _ -> Sink.count m.sink "moq_monitor_update_errors_total" 1);
      r
    end

  let apply_update_exn m u =
    match apply_update m u with
    | Ok () -> ()
    | Error e -> invalid_arg (Format.asprintf "Monitor.apply_update: %a" DB.pp_error e)

  (* A clock tick (discussion after Corollary 6): assert that no update will
     arrive at or before [tau]; answers up to [tau] become valid. *)
  let advance_clock m (tau : Q.t) =
    if Q.compare tau m.clock > 0 then begin
      let tau_eff = Q.min tau m.hi in
      if Q.compare m.clock tau_eff < 0 then advance_engine m tau_eff;
      m.clock <- Q.max m.clock tau_eff
    end

  (* Theorem 10: a chdir on the query trajectory.  The caller supplies the
     updated g-distance (same γ position at [tau], so every curve is
     continuous through [tau] and the precedence relation is unchanged); the
     engine rebuilds all pending events in O(N) without re-sorting. *)
  let chdir_query m ~(tau : Q.t) ~(gdist : Gdist.t) =
    Sink.count m.sink "moq_monitor_query_chdirs_total" 1;
    let tau_eff = Q.min tau m.hi in
    if Q.compare m.clock tau_eff < 0 then advance_engine m tau_eff;
    let emitted_span =
      B.compare_instant (E.now m.engine) (B.instant_of_scalar (B.scalar_of_rat tau_eff)) < 0
    in
    if emitted_span then close_span_to m tau_eff;
    E.sync_clock m.engine ~at:(B.scalar_of_rat tau_eff);
    P.set_gdist m.problem gdist m.db;
    if Q.compare tau m.hi <= 0 then
      E.replace_all_curves m.engine ~at:(B.scalar_of_rat tau) (fun e ->
          match E.label e with
          | E.Obj (o, k) ->
            (match Oid.Map.find_opt o m.problem.P.curves with
             | Some arr when k < Array.length arr ->
               (match arr.(k) with Some c -> c | None -> E.curve e)
             | _ -> E.curve e)
          | E.Cst _ -> E.curve e);
    if emitted_span then emit_at m tau_eff;
    if Q.compare m.clock tau_eff < 0 then m.clock <- tau_eff

  (* Incremental consumers (a live subscription's push path): the validated
     pieces produced since the previous drain, chronological.  Unlike
     {!valid_timeline} the pieces are raw — not simplified, no synthetic
     closing span — so consecutive drains concatenate into exactly the
     monitor's validated piece stream. *)
  let drain_valid m : TL.piece list =
    let n = List.length m.valid in
    let fresh = n - m.drained in
    if fresh <= 0 then []
    else begin
      m.drained <- n;
      let rec take k l =
        if k = 0 then [] else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
      in
      List.rev (take fresh m.valid)
    end

  (* The validated prefix of the answer (everything up to the clock). *)
  let valid_timeline m : TL.t =
    let closed = { m with valid = m.valid } in
    close_until closed m.clock;
    TL.simplify (List.rev closed.valid)

  (* Predict the rest of the interval from the current state by lazily
     sweeping a copy (the "lazy evaluation" alternative of Section 3 — used
     here only for the not-yet-valid suffix). *)
  let predict m : TL.t =
    if Q.compare m.clock m.hi >= 0 then []
    else begin
      let query =
        { m.query with Fof.interval = Fof.Interval.closed m.clock m.hi }
      in
      let r = Sw.run ~db:m.db ~gdist:m.problem.P.gdist ~query in
      r.Sw.timeline
    end

  (* Finish: no more updates will ever arrive (the query has become past).
     Returns the complete, valid timeline. *)
  let finalize m : TL.t =
    advance_clock m m.hi;
    close_until m m.hi;
    m.clock <- m.hi;
    TL.simplify (List.rev m.valid)

  let stats m = E.stats m.engine
  let engine m = m.engine
  let db m = m.db
  let clock m = m.clock

  (* Robustness hooks: a long-lived monitor periodically audits the sweep
     invariants and, on violation, falls back to the O(N log N) rebuild
     (Theorem 10's initialization cost) instead of crashing mid-stream. *)
  let audit_kinds m =
    let eng = E.audit_kinds m.engine in
    let local = ref [] in
    if Q.compare m.clock m.hi > 0 then
      local := (E.V_clock, "monitor clock past the interval end") :: !local;
    if Q.compare (DB.last_update m.db) m.clock > 0 && Q.compare m.clock m.hi < 0 then
      local := (E.V_clock, "validated clock behind the database's last update") :: !local;
    eng @ List.rev !local

  let audit m = List.map snd (audit_kinds m)

  let audit_and_heal m =
    Sink.count m.sink "moq_engine_audits_total" 1;
    match audit_kinds m with
    | [] -> []
    | violations ->
      (E.stats m.engine).E.audit_failures <- (E.stats m.engine).E.audit_failures + 1;
      Sink.count m.sink "moq_engine_audit_failures_total" 1;
      E.note_violations m.engine violations;
      E.rebuild m.engine;
      if Q.compare m.clock m.hi > 0 then m.clock <- m.hi;
      List.map snd violations

  let heal m = E.rebuild m.engine
end
