module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module OL = Moq_dstruct.Order_list
module LH = Moq_dstruct.Leftist_heap
module Sink = Moq_obs.Sink

module Make (B : Backend.S) = struct
  module C = Curves.Make (B)
  module PW = B.PW
  module F = B.P.F

  type label = Obj of Oid.t * int | Cst of Q.t

  let compare_label l1 l2 =
    match l1, l2 with
    | Obj (o1, k1), Obj (o2, k2) ->
      let c = Oid.compare o1 o2 in
      if c <> 0 then c else Int.compare k1 k2
    | Obj _, Cst _ -> -1
    | Cst _, Obj _ -> 1
    | Cst a, Cst b -> Q.compare a b

  let pp_label fmt = function
    | Obj (o, 0) -> Oid.pp fmt o
    | Obj (o, k) -> Format.fprintf fmt "%a#%d" Oid.pp o k
    | Cst c -> Format.fprintf fmt "const(%a)" Q.pp c

  type entry = {
    lbl : label;
    mutable curve : PW.t;
    mutable node : entry OL.handle option; (* Some iff currently on the sweep line *)
    mutable right_event : (B.instant, event_data) LH.handle option;
    mutable dead : bool; (* lifetime over (death processed or removed) *)
  }

  and event_data = Cross of entry * entry | Birth of entry | Death of entry | Jump of entry

  let label e = e.lbl
  let curve e = e.curve

  type stats = {
    mutable crossings : int;
    mutable swaps : int;
    mutable births : int;
    mutable deaths : int;
    mutable batches : int;
    mutable jumps : int;
        (* discontinuity repositionings: the paper's Section 5 remark allows
           g-distances with finitely many continuous pieces *)
    mutable comparisons : int;
        (* curve-order comparisons: the cost unit of the paper's analysis,
           which excludes intersection computation *)
    mutable audit_failures : int; (* audits that found a violated invariant *)
    mutable rebuilds : int;       (* full O(N log N) self-healing rebuilds *)
    (* audit violations by invariant kind (see [violation_kind]) *)
    mutable audit_structure : int;
    mutable audit_order : int;
    mutable audit_event : int;
    mutable audit_dead : int;
    mutable audit_clock : int;
  }

  type violation_kind = V_structure | V_order | V_event | V_dead | V_clock

  let violation_kind_name = function
    | V_structure -> "structure"
    | V_order -> "order"
    | V_event -> "event"
    | V_dead -> "dead"
    | V_clock -> "clock"

  (* Per-object cost attribution: one mutable cell per OID seen on the
     sweep, bumped on each comparison/swap the object participates in.  The
     table is bounded by the number of distinct objects, and the hot-path
     cost is a hashtable probe — [None] (attribution off) skips even
     that. *)
  type attr_cell = { mutable a_cmp : int; mutable a_swap : int }

  type hot = {
    h_oid : Moq_mod.Oid.t;
    h_comparisons : int;
    h_swaps : int;
  }

  type t = {
    order : entry OL.t;
    mutable queue : (B.instant, event_data) LH.t;
    mutable now : B.instant;
    horizon : F.t option;
    by_label : (label, entry) Hashtbl.t;
    stats : stats;
    sink : Sink.t;
    attr : (Moq_mod.Oid.t, attr_cell) Hashtbl.t option;
  }

  let now t = t.now
  let stats t = t.stats
  let order t = OL.to_list t.order
  let size t = OL.length t.order
  let queue_length t = LH.length t.queue

  let first_n t n =
    let rec go acc k handle =
      match handle with
      | None -> List.rev acc
      | Some h ->
        if k = 0 then List.rev acc
        else go (OL.elt h :: acc) (k - 1) (OL.next t.order h)
    in
    go [] n (OL.first t.order)

  let nth_entry t i = Option.map OL.elt (OL.nth t.order i)

  let find t lbl =
    match Hashtbl.find_opt t.by_label lbl with
    | Some e when e.node <> None -> Some e
    | _ -> None

  (* Ordering of two live entries at instant [i]: value, then one-sided jet,
     then stable label order. *)
  let attr_cell h oid =
    match Hashtbl.find_opt h oid with
    | Some c -> c
    | None ->
      let c = { a_cmp = 0; a_swap = 0 } in
      Hashtbl.add h oid c;
      c

  let note_cmp t e =
    match t.attr, e.lbl with
    | Some h, Obj (oid, _) ->
      let c = attr_cell h oid in
      c.a_cmp <- c.a_cmp + 1
    | _ -> ()

  let note_swap t e =
    match t.attr, e.lbl with
    | Some h, Obj (oid, _) ->
      let c = attr_cell h oid in
      c.a_swap <- c.a_swap + 1
    | _ -> ()

  let hot_objects t =
    match t.attr with
    | None -> []
    | Some h ->
      Hashtbl.fold
        (fun oid c acc -> { h_oid = oid; h_comparisons = c.a_cmp; h_swaps = c.a_swap } :: acc)
        h []
      |> List.sort (fun a b ->
             match compare b.h_comparisons a.h_comparisons with
             | 0 ->
               (match compare b.h_swaps a.h_swaps with
                | 0 -> Moq_mod.Oid.compare a.h_oid b.h_oid
                | c -> c)
             | c -> c)

  let cmp_entries_at t i e1 e2 =
    t.stats.comparisons <- t.stats.comparisons + 1;
    if t.attr <> None then begin
      note_cmp t e1;
      note_cmp t e2
    end;
    let s = C.diff_sign_at e1.curve e2.curve i in
    if s <> 0 then s
    else begin
      let s = C.diff_sign_after e1.curve e2.curve i in
      if s <> 0 then s else compare_label e1.lbl e2.lbl
    end

  let node_of e =
    match e.node with
    | Some n -> n
    | None -> invalid_arg "Engine: entry not on the sweep line"

  let next_entry t e = Option.map OL.elt (OL.next t.order (node_of e))
  let prev_entry t e = Option.map OL.elt (OL.prev t.order (node_of e))
  let rank_of t e = OL.rank t.order (node_of e)

  let drop_right_event t e =
    match e.right_event with
    | Some h ->
      LH.delete t.queue h;
      e.right_event <- None
    | None -> ()

  (* Re-examine the pair (l, r), which must be adjacent: replace l's pending
     event with the pair's earliest future crossing (Lemma 9: one event per
     adjacent pair). *)
  let debug = Sys.getenv_opt "MOQ_DEBUG" <> None

  let schedule_pair t l r =
    drop_right_event t l;
    match C.first_crossing ~after:t.now ?horizon:t.horizon l.curve r.curve with
    | Some i ->
      if debug then
        Format.eprintf "sched (%a,%a) at %a (now %a)@." pp_label l.lbl pp_label r.lbl
          B.pp_instant i B.pp_instant t.now;
      l.right_event <- Some (LH.insert t.queue i (Cross (l, r)))
    | None ->
      if debug then
        Format.eprintf "sched (%a,%a): none (now %a)@." pp_label l.lbl pp_label r.lbl
          B.pp_instant t.now

  let schedule_around t e =
    (match prev_entry t e with Some p -> schedule_pair t p e | None -> ());
    match next_entry t e with
    | Some n -> schedule_pair t e n
    | None -> drop_right_event t e

  (* The paper's Section 5 remark relaxes continuity to finitely many
     continuous pieces: at a value discontinuity the entry's position in the
     order can change without a curve intersection, so each discontinuous
     breakpoint within the horizon becomes a "jump" event that re-inserts
     the entry.  Curves are right-continuous at jumps (the piece starting at
     the breakpoint is in force there).  Jump events are not handle-tracked:
     a stale one (after a chdir) costs one harmless repositioning. *)
  let schedule_jumps t e =
    let rec scan = function
      | (_, p1) :: (((b, p2) :: _) as rest) ->
        if not (F.equal (B.P.eval p1 b) (B.P.eval p2 b)) then begin
          if B.compare_instant_scalar t.now b < 0 then begin
            match t.horizon with
            | Some h when F.compare b h > 0 -> ()
            | _ -> ignore (LH.insert t.queue (B.instant_of_scalar b) (Jump e))
          end
        end;
        scan rest
      | _ -> ()
    in
    scan (PW.pieces e.curve)

  let schedule_death t e =
    match PW.stop e.curve with
    | Some s when B.compare_instant_scalar t.now s < 0 ->
      (match t.horizon with
       | Some h when F.compare s h > 0 -> ()
       | _ -> ignore (LH.insert t.queue (B.instant_of_scalar s) (Death e)))
    | _ -> ()

  (* Put a live entry on the sweep line at instant [i] and fix its
     neighbourhood's events. *)
  let mount t i e =
    let handle = OL.insert_sorted ~cmp:(cmp_entries_at t i) t.order e in
    e.node <- Some handle;
    (* the previous neighbour's event (if any) is now stale *)
    (match prev_entry t e with Some p -> drop_right_event t p | None -> ());
    schedule_around t e;
    schedule_death t e;
    schedule_jumps t e

  let unmount t e =
    let p = prev_entry t e and n = next_entry t e in
    drop_right_event t e;
    (match p with Some p -> drop_right_event t p | None -> ());
    OL.delete t.order (node_of e);
    e.node <- None;
    e.dead <- true;
    match p, n with
    | Some p, Some _ -> schedule_around t p
    | _ -> ()

  let create ?(sink = Sink.noop) ?(attr = true) ~start ?horizon curves =
    let start_i = B.instant_of_scalar start in
    let t =
      { order = OL.create ();
        queue = LH.create ~cmp:B.compare_instant;
        now = start_i;
        horizon;
        by_label = Hashtbl.create 64;
        stats = { crossings = 0; swaps = 0; births = 0; deaths = 0; batches = 0; jumps = 0; comparisons = 0; audit_failures = 0; rebuilds = 0;
                  audit_structure = 0; audit_order = 0; audit_event = 0; audit_dead = 0; audit_clock = 0 };
        sink;
        attr = (if attr then Some (Hashtbl.create 64) else None);
      }
    in
    let entries =
      List.map
        (fun (lbl, c) ->
          let e = { lbl; curve = c; node = None; right_event = None; dead = false } in
          Hashtbl.replace t.by_label lbl e;
          e)
        curves
    in
    let alive, rest =
      List.partition
        (fun e ->
          F.compare (PW.start e.curve) start <= 0
          && (match PW.stop e.curve with None -> true | Some s -> F.compare start s <= 0))
        entries
    in
    (* initial sort: the O(N log N) of Theorem 5(1) *)
    let sorted = List.sort (cmp_entries_at t start_i) alive in
    List.iter
      (fun e ->
        let handle = OL.insert_sorted ~cmp:(cmp_entries_at t start_i) t.order e in
        e.node <- Some handle)
      sorted;
    (* one event per adjacent pair *)
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        schedule_pair t a b;
        pairs rest
      | _ -> ()
    in
    pairs (order t);
    List.iter
      (fun e ->
        schedule_death t e;
        schedule_jumps t e)
      alive;
    (* future births within the horizon *)
    List.iter
      (fun e ->
        let s = PW.start e.curve in
        if F.compare s start > 0 then begin
          match horizon with
          | Some h when F.compare s h > 0 -> ()
          | _ -> ignore (LH.insert t.queue (B.instant_of_scalar s) (Birth e))
        end
        else e.dead <- true (* whole lifetime before the sweep *))
      rest;
    t

  (* Local bubble pass with the "just after i" comparator, starting from the
     entries whose neighbourhood changed.  Converges because each swap
     removes one inversion of the strict after-i order.  Every entry whose
     pending event is dropped (or whose neighbourhood moves) is recorded via
     [note] so the caller re-establishes the one-event-per-adjacent-pair
     invariant for it afterwards. *)
  let bubble t i touched ~note =
    let work = Queue.create () in
    let push e = if (not e.dead) && e.node <> None then Queue.add e work in
    (* [note] marks entries whose pending events a swap invalidated; merely
       examining an entry does not require rescheduling it *)
    let push_noted e =
      if (not e.dead) && e.node <> None then begin
        note e;
        Queue.add e work
      end
    in
    List.iter push touched;
    while not (Queue.is_empty work) do
      let e = Queue.pop work in
      if (not e.dead) && e.node <> None then begin
        (match next_entry t e with
         | Some n when cmp_entries_at t i e n > 0 ->
           let en = node_of e and nn = node_of n in
           OL.swap_adjacent t.order en nn;
           (* payloads moved: nodes exchanged owners *)
           e.node <- Some nn;
           n.node <- Some en;
           t.stats.swaps <- t.stats.swaps + 1;
           if t.attr <> None then begin
             note_swap t e;
             note_swap t n
           end;
           (* stale events around the swapped pair *)
           drop_right_event t e;
           drop_right_event t n;
           (match prev_entry t n with
            | Some p ->
              drop_right_event t p;
              push_noted p
            | None -> ());
           push_noted n;
           push_noted e;
           (match next_entry t e with Some x -> push_noted x | None -> ())
         | _ ->
           (match prev_entry t e with
            | Some p when cmp_entries_at t i p e > 0 -> push p
            | _ -> ()))
      end
    done

  (* Restore the just-after-now order and the one-event-per-pair invariant
     around [touched].  Needed after updates as well as events: a curve
     introduced or replaced at the update instant may cross a neighbour
     exactly there, and crossings AT the current instant are never scheduled
     (event search is strictly-after). *)
  let settle t touched =
    (* callers have already scheduled their own suspects; only entries the
       bubble actually moved need their events re-established *)
    let disturbed = ref [] in
    bubble t t.now touched ~note:(fun e -> disturbed := e :: !disturbed);
    let seen = Hashtbl.create 16 in
    List.iter
      (fun e ->
        if (not e.dead) && e.node <> None && not (Hashtbl.mem seen e.lbl) then begin
          Hashtbl.replace seen e.lbl ();
          schedule_around t e
        end)
      !disturbed

  (* Re-insert a mounted entry at instant [i] (a value discontinuity moved
     it).  Neighbour events are repaired through the caller's touched set. *)
  let reposition t i e touched =
    let p = prev_entry t e and n = next_entry t e in
    drop_right_event t e;
    (match p with Some p -> drop_right_event t p | None -> ());
    OL.delete t.order (node_of e);
    e.node <- None;
    let handle = OL.insert_sorted ~cmp:(cmp_entries_at t i) t.order e in
    e.node <- Some handle;
    (match prev_entry t e with Some p' -> drop_right_event t p' | None -> ());
    t.stats.jumps <- t.stats.jumps + 1;
    touched := e :: (match p with Some p -> [ p ] | None -> []) @ (match n with Some n -> [ n ] | None -> []) @ !touched

  type step = Span of B.instant * B.instant | Point of B.instant

  let pop_batch t =
    match LH.find_min t.queue with
    | None -> None
    | Some (i, _) ->
      let rec pop acc =
        match LH.find_min t.queue with
        | Some (j, _) when B.compare_instant j i = 0 ->
          (match LH.pop_min t.queue with
           | Some (_, d) -> pop (d :: acc)
           | None -> acc)
        | _ -> acc
      in
      Some (i, pop [])

  let process_batch t i events emit =
    if debug then begin
      Format.eprintf "batch at %a:" B.pp_instant i;
      List.iter
        (function
          | Cross (l, r) -> Format.eprintf " cross(%a,%a)" pp_label l.lbl pp_label r.lbl
          | Birth e -> Format.eprintf " birth(%a)" pp_label e.lbl
          | Death e -> Format.eprintf " death(%a)" pp_label e.lbl
          | Jump e -> Format.eprintf " jump(%a)" pp_label e.lbl)
        events;
      Format.eprintf "@."
    end;
    t.stats.batches <- t.stats.batches + 1;
    let cmp0 = t.stats.comparisons in
    let swaps0 = t.stats.swaps in
    let touched = ref [] in
    let deaths = ref [] in
    (* births first: objects created at i take part in the i-order *)
    List.iter
      (function
        | Birth e ->
          t.stats.births <- t.stats.births + 1;
          mount t i e;
          touched := e :: !touched
        | Cross (l, r) ->
          t.stats.crossings <- t.stats.crossings + 1;
          (* the handle was popped; clear the dangling reference *)
          (match l.right_event with
           | Some h when not (LH.mem h) -> l.right_event <- None
           | _ -> ());
          touched := l :: r :: !touched
        | Jump e -> if (not e.dead) && e.node <> None then reposition t i e touched
        | Death e -> deaths := e :: !deaths)
      events;
    let disturbed = ref !touched in
    bubble t i !touched ~note:(fun e -> disturbed := e :: !disturbed);
    emit (Point i);
    List.iter
      (fun e ->
        if e.node <> None then begin
          t.stats.deaths <- t.stats.deaths + 1;
          unmount t e
        end)
      !deaths;
    (* restore the one-event-per-pair invariant around everything we moved *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun e ->
        if (not e.dead) && e.node <> None && not (Hashtbl.mem seen e.lbl) then begin
          Hashtbl.replace seen e.lbl ();
          schedule_around t e
        end)
      !disturbed;
    if Sink.active t.sink then begin
      (* per-event telemetry: the paper's m (support changes) and Lemma 9's
         O(log N) order-list work per event, as comparisons per event *)
      let nev = List.length events in
      let classify (c, b, d, j) = function
        | Cross _ -> (c + 1, b, d, j)
        | Birth _ -> (c, b + 1, d, j)
        | Death _ -> (c, b, d + 1, j)
        | Jump _ -> (c, b, d, j + 1)
      in
      let nc, nb, nd, nj = List.fold_left classify (0, 0, 0, 0) events in
      (* a simultaneous batch resolves several transpositions under one
         popped crossing event, so the paper's m is counted in swaps *)
      let nswaps = t.stats.swaps - swaps0 in
      Sink.count t.sink "moq_sweep_batches_total" 1;
      Sink.count t.sink "moq_sweep_events_total" nev;
      Sink.count t.sink "moq_sweep_crossings_total" nc;
      Sink.count t.sink "moq_sweep_swaps_total" nswaps;
      Sink.count t.sink "moq_sweep_births_total" nb;
      Sink.count t.sink "moq_sweep_deaths_total" nd;
      Sink.count t.sink "moq_sweep_jumps_total" nj;
      Sink.count t.sink "moq_sweep_support_changes_total" (nswaps + nb + nd);
      Sink.count t.sink "moq_sweep_comparisons_total" (t.stats.comparisons - cmp0);
      Sink.observe t.sink "moq_sweep_ops_per_event"
        (float_of_int (t.stats.comparisons - cmp0) /. float_of_int (max 1 nev));
      Sink.set t.sink "moq_sweep_order_len" (float_of_int (OL.length t.order));
      Sink.set t.sink "moq_sweep_queue_len" (float_of_int (LH.length t.queue))
    end

  let advance t ~upto ~emit =
    let continue_ = ref true in
    while !continue_ do
      match LH.find_min t.queue with
      | Some (i, _) when B.compare_instant_scalar i upto < 0 ->
        (match pop_batch t with
         | Some (i, events) ->
           if B.compare_instant t.now i < 0 then emit (Span (t.now, i));
           (* move the clock first so rescheduling searches strictly after
              this batch and never re-finds its own events *)
           t.now <- i;
           process_batch t i events emit
         | None -> continue_ := false)
      | _ -> continue_ := false
    done

  (* Updates carry their own time (the paper's τ1 > current time); the
     caller advances past the preceding events first. *)
  let move_clock t at =
    let i = B.instant_of_scalar at in
    if B.compare_instant t.now i > 0 then
      invalid_arg "Engine: update before the current sweep time"
    else t.now <- i

  let sync_clock t ~at = move_clock t at

  let insert t ~at lbl c =
    if not (PW.defined_at c at) then invalid_arg "Engine.insert: curve not defined at insertion time"
    else begin
      move_clock t at;
      let e = { lbl; curve = c; node = None; right_event = None; dead = false } in
      Hashtbl.replace t.by_label lbl e;
      t.stats.births <- t.stats.births + 1;
      mount t t.now e;
      settle t [ e ];
      if Sink.active t.sink then begin
        Sink.count t.sink "moq_engine_inserts_total" 1;
        Sink.count t.sink "moq_sweep_support_changes_total" 1
      end
    end

  let remove t ~at lbl =
    match find t lbl with
    | None -> invalid_arg "Engine.remove: no such live entry"
    | Some e ->
      move_clock t at;
      t.stats.deaths <- t.stats.deaths + 1;
      let p = prev_entry t e and n = next_entry t e in
      unmount t e;
      (* the newly adjacent pair may cross exactly at the update instant *)
      settle t (List.filter_map Fun.id [ p; n ]);
      if Sink.active t.sink then begin
        Sink.count t.sink "moq_engine_removes_total" 1;
        Sink.count t.sink "moq_sweep_support_changes_total" 1
      end

  let replace_curve t ~at lbl c =
    match find t lbl with
    | None -> invalid_arg "Engine.replace_curve: no such live entry"
    | Some e ->
      move_clock t at;
      e.curve <- c;
      (* the order at the current instant is unchanged (curves agree at the
         update time); only this entry's pending intersections move — but
         the new curve may leave the neighbourhood immediately (a crossing
         exactly at the update time), which [settle] repairs *)
      (match prev_entry t e with Some p -> drop_right_event t p | None -> ());
      drop_right_event t e;
      schedule_around t e;
      schedule_death t e;
      schedule_jumps t e;
      settle t [ e ];
      Sink.count t.sink "moq_engine_replaces_total" 1

  let replace_all_curves_now t f =
    (* Theorem 10: no re-sorting; rebuild the event queue in O(N). *)
    let entries = order t in
    List.iter
      (fun e ->
        e.curve <- f e;
        e.right_event <- None)
      entries;
    let events = ref [] in
    let rec pairs = function
      | l :: (r :: _ as rest) ->
        (match C.first_crossing ~after:t.now ?horizon:t.horizon l.curve r.curve with
         | Some i -> events := (`Pair l, i, Cross (l, r)) :: !events
         | None -> ());
        pairs rest
      | _ -> ()
    in
    pairs entries;
    List.iter
      (fun e ->
        (match PW.stop e.curve with
         | Some s when B.compare_instant_scalar t.now s < 0 ->
           (match t.horizon with
            | Some h when F.compare s h > 0 -> ()
            | _ -> events := (`Plain, B.instant_of_scalar s, Death e) :: !events)
         | _ -> ());
        let rec scan = function
          | (_, p1) :: (((b, p2) :: _) as rest) ->
            if (not (F.equal (B.P.eval p1 b) (B.P.eval p2 b)))
               && B.compare_instant_scalar t.now b < 0
               && (match t.horizon with Some h -> F.compare b h <= 0 | None -> true)
            then events := (`Plain, B.instant_of_scalar b, Jump e) :: !events;
            scan rest
          | _ -> ()
        in
        scan (PW.pieces e.curve))
      entries;
    (* unborn entries keep their birth events *)
    Hashtbl.iter
      (fun _ e ->
        if e.node = None && not e.dead then begin
          e.curve <- f e;
          let s = PW.start e.curve in
          if B.compare_instant_scalar t.now s < 0 then begin
            match t.horizon with
            | Some h when F.compare s h > 0 -> ()
            | _ -> events := (`Plain, B.instant_of_scalar s, Birth e) :: !events
          end
          else e.dead <- true
        end)
      t.by_label;
    let heap, handles =
      LH.of_list ~cmp:B.compare_instant (List.map (fun (_, i, d) -> (i, d)) !events)
    in
    t.queue <- heap;
    List.iter2
      (fun (tag, _, _) h ->
        match tag with
        | `Pair l -> l.right_event <- Some h
        | `Plain -> ())
      !events handles

  let replace_all_curves t ~at f =
    move_clock t at;
    replace_all_curves_now t f;
    (* the wholesale curve change preserves values at [at] but may invert
       just-after-now jets anywhere: one O(N) settling pass *)
    settle t (order t);
    Sink.count t.sink "moq_engine_mass_replaces_total" 1

  (* ---------------------------------------------------------------- *)
  (* Invariant audit + self-healing rebuild.                           *)

  (* Non-raising sweep audit: collect violations of the structural
     invariants instead of asserting.  O(N) comparisons plus the order
     list's structural check. *)
  let audit_kinds t =
    let violations = ref [] in
    let note kind fmt =
      Format.kasprintf (fun s -> violations := (kind, s) :: !violations) fmt
    in
    (* 1. order-list structure (AVL balance, sizes, parent pointers) *)
    (try OL.check_invariants t.order
     with e -> note V_structure "order list structure: %s" (Printexc.to_string e));
    let entries = order t in
    (* 2. sorted w.r.t. just-after-now; an inversion is only legal when
       backed by a pending crossing batched exactly at [now] *)
    let rec sorted = function
      | a :: (b :: _ as rest) ->
        if cmp_entries_at t t.now a b > 0 then begin
          let excused =
            match a.right_event with
            | Some h -> LH.mem h && B.compare_instant (LH.key h) t.now = 0
            | None -> false
          in
          if not excused then
            note V_order "order violated at (%a, %a) with no pending event at now"
              pp_label a.lbl pp_label b.lbl
        end;
        sorted rest
      | _ -> ()
    in
    sorted entries;
    (* 3. one live event per adjacent pair, correctly targeted *)
    let rec events = function
      | l :: (r :: _ as rest) ->
        (match l.right_event with
         | Some h ->
           if not (LH.mem h) then
             note V_event "stale (deleted) event handle on %a" pp_label l.lbl
           else begin
             match LH.value h with
             | Cross (a, b) ->
               if not (a == l && b == r) then
                 note V_event "event on %a targets a non-adjacent pair" pp_label l.lbl
             | _ -> note V_event "right event of %a is not a crossing" pp_label l.lbl
           end
         | None -> ());
        events rest
      | [ e ] ->
        if e.right_event <> None then
          note V_event "last entry %a holds an event" pp_label e.lbl
      | [] -> ()
    in
    events entries;
    (* 4. dead/unmounted entries must not appear on the sweep line *)
    List.iter
      (fun e ->
        if e.dead then note V_dead "dead entry %a still mounted" pp_label e.lbl)
      entries;
    (* 5. monotone batch times: no event precedes the clock *)
    (match LH.find_min t.queue with
     | Some (i, _) when B.compare_instant i t.now < 0 ->
       note V_clock "pending event precedes the clock"
     | _ -> ());
    List.rev !violations

  let audit t = List.map snd (audit_kinds t)

  (* Record audit findings in the per-kind stats fields and the sink —
     shared with {!Monitor.audit_and_heal}, which adds its own
     monitor-level violations. *)
  let note_violations t violations =
    List.iter
      (fun (kind, _) ->
        (match kind with
         | V_structure -> t.stats.audit_structure <- t.stats.audit_structure + 1
         | V_order -> t.stats.audit_order <- t.stats.audit_order + 1
         | V_event -> t.stats.audit_event <- t.stats.audit_event + 1
         | V_dead -> t.stats.audit_dead <- t.stats.audit_dead + 1
         | V_clock -> t.stats.audit_clock <- t.stats.audit_clock + 1);
        if Sink.active t.sink then
          Sink.count t.sink
            ("moq_engine_audit_violation_" ^ violation_kind_name kind ^ "_total") 1)
      violations

  (* Theorem 10 fallback: discard the sweep structures and rebuild them
     from the entries' curves in O(N log N) — a graceful degradation when
     an audit finds corrupted state (instead of crashing mid-stream). *)
  let rebuild t =
    t.stats.rebuilds <- t.stats.rebuilds + 1;
    Sink.count t.sink "moq_engine_rebuilds_total" 1;
    let mounted = order t in
    List.iter
      (fun e ->
        (match e.node with Some n -> OL.delete t.order n | None -> ());
        e.node <- None;
        e.right_event <- None)
      mounted;
    (* every non-dead entry is re-examined against the clock: alive curves
       are re-sorted onto the line (healing entries that missed a birth or
       death event), future ones get fresh birth events *)
    let candidates = Hashtbl.fold (fun _ e acc -> if e.dead then acc else e :: acc) t.by_label [] in
    let alive, future =
      List.partition
        (fun e ->
          B.compare_instant_scalar t.now (PW.start e.curve) >= 0
          && (match PW.stop e.curve with
              | None -> true
              | Some s -> B.compare_instant_scalar t.now s <= 0))
        candidates
    in
    t.queue <- LH.create ~cmp:B.compare_instant;
    let sorted = List.sort (cmp_entries_at t t.now) alive in
    List.iter
      (fun e ->
        e.node <- Some (OL.insert_sorted ~cmp:(cmp_entries_at t t.now) t.order e))
      sorted;
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        schedule_pair t a b;
        pairs rest
      | _ -> ()
    in
    pairs sorted;
    List.iter
      (fun e ->
        schedule_death t e;
        schedule_jumps t e)
      sorted;
    List.iter
      (fun e ->
        let s = PW.start e.curve in
        if B.compare_instant_scalar t.now s < 0 then begin
          match t.horizon with
          | Some h when F.compare s h > 0 -> ()
          | _ -> ignore (LH.insert t.queue (B.instant_of_scalar s) (Birth e))
        end
        else e.dead <- true (* lifetime entirely behind the clock *))
      future

  let audit_and_heal t =
    Sink.count t.sink "moq_engine_audits_total" 1;
    match audit_kinds t with
    | [] -> []
    | violations ->
      t.stats.audit_failures <- t.stats.audit_failures + 1;
      Sink.count t.sink "moq_engine_audit_failures_total" 1;
      note_violations t violations;
      rebuild t;
      List.map snd violations

  let check_invariants t =
    OL.check_invariants t.order;
    let entries = order t in
    (* sorted w.r.t. just-after-now — except that an update may land exactly
       on a crossing instant of an unrelated pair, whose swap then still
       sits in the queue as a batch at [now]; such an inversion must be
       backed by that pending event *)
    let rec sorted = function
      | a :: (b :: _ as rest) ->
        if cmp_entries_at t t.now a b > 0 then begin
          match a.right_event with
          | Some h ->
            assert (LH.mem h);
            assert (B.compare_instant (LH.key h) t.now = 0)
          | None -> assert false
        end;
        sorted rest
      | _ -> ()
    in
    sorted entries;
    (* each right_event is a live Cross event for a currently adjacent pair *)
    let rec check_events = function
      | l :: (r :: _ as rest) ->
        (match l.right_event with
         | Some h ->
           assert (LH.mem h);
           (match LH.value h with
            | Cross (a, b) ->
              assert (a == l);
              assert (b == r)
            | _ -> assert false)
         | None -> ());
        check_events rest
      | [ e ] -> assert (e.right_event = None)
      | [] -> ()
    in
    check_events entries
end
