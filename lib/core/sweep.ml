(** Past-query evaluation (paper, Theorem 4).

    Sweep the time line across the query interval: sort the curves once,
    then process the O(m) support-change events, evaluating the answer only
    on the spans and instants between them (Lemma 8).  Total
    O((m + N) log N) object-list work plus one answer evaluation per
    support change. *)

module Oid = Moq_mod.Oid
module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module Sink = Moq_obs.Sink

module Make (B : Backend.S) = struct
  module E = Engine.Make (B)
  module P = Problem.Make (B)
  module S = P.S
  module TL = Timeline.Make (B)

  type result = {
    timeline : TL.t;
    stats : E.stats;
    support_changes : int;  (** the paper's m *)
    hot : E.hot list;  (** per-object cost attribution, hottest first *)
  }

  let interval_bounds (q : Fof.query) =
    match Fof.Interval.lo q.Fof.interval, Fof.Interval.hi q.Fof.interval with
    | Some lo, Some hi -> (lo, hi)
    | _ -> invalid_arg "Sweep: past queries need a bounded interval"

  let run_obs ~(sink : Sink.t) ~(db : DB.t) ~(gdist : Gdist.t)
      ~(query : Fof.query) : result =
    Sink.count sink "moq_query_past_total" 1;
    Sink.time sink "moq_query_past_seconds" @@ fun () ->
    let lo, hi = interval_bounds query in
    let p = P.create ~db ~gdist ~query ~istart:lo in
    let eng =
      E.create ~sink ~start:(B.scalar_of_rat lo)
        ~horizon:(B.scalar_of_rat hi) (P.entry_list p)
    in
    let ctx = P.snapshot_ctx p in
    let answer i = S.answer_at ctx query i in
    let pieces = ref [] in
    let emit = function
      | E.Span (a, b) ->
        let sample = B.instant_of_scalar (B.between a b) in
        pieces := TL.Span (a, b, answer sample) :: !pieces
      | E.Point i -> pieces := TL.At (i, answer i) :: !pieces
    in
    let lo_i = B.instant_of_scalar (B.scalar_of_rat lo) in
    let hi_s = B.scalar_of_rat hi in
    let hi_i = B.instant_of_scalar hi_s in
    pieces := [ TL.At (lo_i, answer lo_i) ];
    if Q.compare lo hi < 0 then begin
      E.advance eng ~upto:hi_s ~emit;
      (* close the final span *)
      let last = E.now eng in
      if B.compare_instant last hi_i < 0 then begin
        let sample = B.instant_of_scalar (B.between last hi_i) in
        pieces := TL.At (hi_i, answer hi_i) :: TL.Span (last, hi_i, answer sample) :: !pieces
      end
    end;
    let timeline = TL.simplify (List.rev !pieces) in
    let stats = E.stats eng in
    { timeline; stats;
      support_changes = stats.E.crossings + stats.E.births + stats.E.deaths;
      hot = E.hot_objects eng }

  let run ~db ~gdist ~query = run_obs ~sink:Sink.noop ~db ~gdist ~query
end
