(* Plan + cost report assembly and rendering.  Deliberately functor-free:
   every field is already a plain int/float/string by the time a report is
   built, so one module serves all three backends and the CLI can print a
   report without knowing which functor instantiation produced it. *)

module Json = Moq_obs.Json

type sweep = {
  batches : int;
  crossings : int;
  births : int;
  deaths : int;
  jumps : int;
  swaps : int;
  comparisons : int;
  support_changes : int;
}

type lemma9 = {
  events : int;
  event_comparisons : int;
  ops_per_event : float;
  bound : float;
  within : bool;
}

type filter = {
  f_hits : int;
  f_misses : int;
  f_decisions : int;
  f_fallback_ns : float;
  f_straddles : float list;
}

type shards = {
  s_total : int;
  s_touched : int;
  s_admitted : int;
  s_pruned : int;
  s_merge_ops : int;
  s_events : int;
  s_band : float option;
}

type agg = {
  a_pois : int;
  a_windows : int;
  a_rows : int;
  a_admitted : int;
  a_pruned : int;
  a_updates : int;
  a_forwarded : int;
}

type hot = {
  oid : int;
  comparisons : int;
  swaps : int;
}

type phase = {
  name : string;
  ns : float;
}

type t = {
  kind : string;
  query : string;
  backend : string;
  classification : string;
  n_objects : int;
  lo : float;
  hi : float;
  timeline_pieces : int;
  sweep : sweep;
  lemma9 : lemma9;
  filter : filter option;
  shards : shards option;
  agg : agg option;
  hot : hot list;
  phases : phase list;
  counters : (string * float) list;
}

let lemma9_bound ~n_objects =
  8. +. (4. *. (log (float_of_int (n_objects + 1)) /. log 2.))

let counter counters name =
  match List.assoc_opt name counters with Some v -> v | None -> 0.

let make ~kind ~query ~backend ?(classification = "n/a") ~n_objects ~lo ~hi
    ~timeline_pieces ~sweep ?filter ?shards ?agg ?(hot = []) ?(phases = [])
    ~counters () =
  let events = int_of_float (counter counters "moq_sweep_events_total") in
  let event_comparisons =
    int_of_float (counter counters "moq_sweep_comparisons_total")
  in
  let ops_per_event =
    float_of_int event_comparisons /. float_of_int (max 1 events)
  in
  let bound = lemma9_bound ~n_objects in
  let lemma9 =
    { events; event_comparisons; ops_per_event; bound;
      within = ops_per_event <= bound }
  in
  { kind; query; backend; classification; n_objects; lo; hi; timeline_pieces;
    sweep; lemma9; filter; shards; agg; hot; phases; counters }

let top_hot ?(k = 5) t =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take (max 0 k) t.hot

let hot_coverage t =
  let total =
    List.fold_left (fun a h -> a + h.comparisons) 0 t.hot
  in
  if total = 0 then 0.
  else begin
    let top =
      List.fold_left (fun a h -> a + h.comparisons) 0 (top_hot ~k:5 t)
    in
    float_of_int top /. float_of_int total
  end

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let sweep_to_json s =
  Json.Obj
    [ ("batches", Json.Int s.batches);
      ("crossings", Json.Int s.crossings);
      ("births", Json.Int s.births);
      ("deaths", Json.Int s.deaths);
      ("jumps", Json.Int s.jumps);
      ("swaps", Json.Int s.swaps);
      ("comparisons", Json.Int s.comparisons);
      ("support_changes", Json.Int s.support_changes);
    ]

let lemma9_to_json l =
  Json.Obj
    [ ("events", Json.Int l.events);
      ("event_comparisons", Json.Int l.event_comparisons);
      ("ops_per_event", Json.Float l.ops_per_event);
      ("bound", Json.Float l.bound);
      ("within", Json.Bool l.within);
    ]

let filter_to_json f =
  Json.Obj
    [ ("hits", Json.Int f.f_hits);
      ("misses", Json.Int f.f_misses);
      ("decisions", Json.Int f.f_decisions);
      ("fallback_ns", Json.Float f.f_fallback_ns);
      ("straddles", Json.List (List.map (fun x -> Json.Float x) f.f_straddles));
    ]

let shards_to_json s =
  Json.Obj
    [ ("total", Json.Int s.s_total);
      ("touched", Json.Int s.s_touched);
      ("admitted", Json.Int s.s_admitted);
      ("pruned", Json.Int s.s_pruned);
      ("frontier_merge_ops", Json.Int s.s_merge_ops);
      ("shard_events", Json.Int s.s_events);
      ( "band",
        match s.s_band with None -> Json.Null | Some b -> Json.Float b );
    ]

let agg_to_json a =
  Json.Obj
    [ ("pois", Json.Int a.a_pois);
      ("windows", Json.Int a.a_windows);
      ("rows", Json.Int a.a_rows);
      ("watch_admitted", Json.Int a.a_admitted);
      ("watch_pruned", Json.Int a.a_pruned);
      ("updates", Json.Int a.a_updates);
      ("forwarded", Json.Int a.a_forwarded);
    ]

let hot_to_json h =
  Json.Obj
    [ ("oid", Json.Int h.oid);
      ("comparisons", Json.Int h.comparisons);
      ("swaps", Json.Int h.swaps);
    ]

let phase_to_json p =
  Json.Obj [ ("name", Json.Str p.name); ("ns", Json.Float p.ns) ]

let to_json t =
  Json.Obj
    [ ("moq_explain", Json.Int 3);
      ("kind", Json.Str t.kind);
      ("query", Json.Str t.query);
      ("backend", Json.Str t.backend);
      ("classification", Json.Str t.classification);
      ("n_objects", Json.Int t.n_objects);
      ("lo", Json.Float t.lo);
      ("hi", Json.Float t.hi);
      ("timeline_pieces", Json.Int t.timeline_pieces);
      ("sweep", sweep_to_json t.sweep);
      ("lemma9", lemma9_to_json t.lemma9);
      ( "filter",
        match t.filter with None -> Json.Null | Some f -> filter_to_json f );
      ( "shards",
        match t.shards with None -> Json.Null | Some s -> shards_to_json s );
      ("agg", match t.agg with None -> Json.Null | Some a -> agg_to_json a);
      ("hot", Json.List (List.map hot_to_json t.hot));
      ("hot_coverage_top5", Json.Float (hot_coverage t));
      ("phases", Json.List (List.map phase_to_json t.phases));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.counters) );
    ]

(* ------------------------------------------------------------------ *)
(* Text                                                                *)
(* ------------------------------------------------------------------ *)

let to_text t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "moq explain: %s" t.query;
  line "  kind          %s" t.kind;
  line "  backend       %s" t.backend;
  if t.classification <> "n/a" then
    line "  classified    %s (Definition 5, vs the MOD clock)" t.classification;
  line "  objects       %d" t.n_objects;
  line "  window        [%g, %g]" t.lo t.hi;
  line "  answer        %d timeline piece(s)" t.timeline_pieces;
  let s = t.sweep in
  line "sweep";
  line "  batches       %d" s.batches;
  line "  events        %d crossings, %d births, %d deaths, %d jumps"
    s.crossings s.births s.deaths s.jumps;
  line "  swaps         %d" s.swaps;
  line "  comparisons   %d (incl. initial sort)" s.comparisons;
  line "  support chg   %d (the paper's m)" s.support_changes;
  let l = t.lemma9 in
  line "lemma 9 (per-event order-list work)";
  line "  events        %d" l.events;
  line "  comparisons   %d (in-batch)" l.event_comparisons;
  line "  ops/event     %.2f  (bound %.2f — %s)" l.ops_per_event l.bound
    (if l.within then "within" else "EXCEEDED");
  (match t.filter with
   | None -> ()
   | Some f ->
     line "interval filter";
     line "  decisions     %d (%d hit / %d miss)" f.f_decisions f.f_hits
       f.f_misses;
     let rate =
       if f.f_decisions = 0 then 0.
       else 100. *. float_of_int f.f_hits /. float_of_int f.f_decisions
     in
     line "  hit rate      %.1f%%" rate;
     line "  fallback      %.3f ms exact-arithmetic time"
       (f.f_fallback_ns /. 1e6);
     (match f.f_straddles with
      | [] -> ()
      | xs ->
        line "  straddled at  %s"
          (String.concat ", "
             (List.map (fun x -> Printf.sprintf "%.4g" x) xs))));
  (match t.shards with
   | None -> ()
   | Some s ->
     line "sharding";
     line "  shards        %d touched of %d" s.s_touched s.s_total;
     line "  admitted      %d object(s), %d pruned" s.s_admitted s.s_pruned;
     let pop = s.s_admitted + s.s_pruned in
     if pop > 0 then
       line "  prune rate    %.1f%%"
         (100. *. float_of_int s.s_pruned /. float_of_int pop);
     line "  frontier      %d merge op(s), %d shard event(s)" s.s_merge_ops
       s.s_events;
     (match s.s_band with
      | None -> line "  band          none (all shards swept)"
      | Some b -> line "  band          %.6g (squared distance)" b));
  (match t.agg with
   | None -> ()
   | Some a ->
     line "aggregation";
     line "  pois          %d, %d window(s) each" a.a_pois a.a_windows;
     line "  rows          %d finalized" a.a_rows;
     line "  watch         %d admitted, %d pruned" a.a_admitted a.a_pruned;
     let pop = a.a_admitted + a.a_pruned in
     if pop > 0 then
       line "  prune rate    %.1f%%"
         (100. *. float_of_int a.a_pruned /. float_of_int pop);
     line "  updates       %d offered, %d forwarded into POI monitors"
       a.a_updates a.a_forwarded);
  (match top_hot t with
   | [] -> ()
   | hs ->
     line "hot objects (top %d of %d, %.0f%% of attributed comparisons)"
       (List.length hs) (List.length t.hot) (100. *. hot_coverage t);
     List.iter
       (fun h ->
         line "  oid %-6d    %d comparisons, %d swaps" h.oid h.comparisons
           h.swaps)
       hs);
  (match t.phases with
   | [] -> ()
   | ps ->
     line "phases";
     List.iter (fun p -> line "  %-12s  %.3f ms" p.name (p.ns /. 1e6)) ps);
  Buffer.contents b
