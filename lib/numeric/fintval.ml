(* Outward-rounded float intervals — the numeric half of the filtered
   (exact-geometric-computation) backend.

   Every interval produced here encloses the exact real it shadows.  We do
   not switch the FPU rounding mode: each operation is computed in
   round-to-nearest and then widened one ulp outward with
   [Float.pred]/[Float.succ], which over-approximates directed rounding.
   Any NaN (e.g. from 0 * inf) degrades to the whole real line, never to a
   false enclosure. *)

type t = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }

let lo i = i.lo
let hi i = i.hi

(* A float known to be exact (integer arithmetic, dyadic rationals). *)
let point f = { lo = f; hi = f }

let down f = if f = neg_infinity || Float.is_nan f then neg_infinity else Float.pred f
let up f = if f = infinity || Float.is_nan f then infinity else Float.succ f

let make_out l h =
  if Float.is_nan l || Float.is_nan h then top else { lo = down l; hi = up h }

(* Encloses the real approximated by [f] to within one rounding (1/2 ulp),
   so widening one ulp each way is sound. *)
let of_float f = if Float.is_finite f then { lo = Float.pred f; hi = Float.succ f } else top

let two53 = 9007199254740992.0 (* 2^53 *)

let of_int n =
  let f = float_of_int n in
  if Float.abs f <= two53 then point f else { lo = Float.pred f; hi = Float.succ f }

(* A canonical rational n / 2^k is exactly a double when the numerator has
   at most 53 bits and k <= 1074: the value is then a multiple of the ulp
   of its binade (normal or subnormal), and its mantissa fits.  Such values
   convert exactly ([Rat.to_float] is correctly rounded), so their
   enclosure is a point — this is what lets the filter decide equalities
   between instants and the integer/dyadic scalars the engine compares
   against (curve starts, horizons, sample points from [between]). *)
let exactly_representable q =
  Bigint.num_bits (Rat.num q) <= 53
  &&
  let d = Rat.den q in
  let bd = Bigint.num_bits d in
  bd <= 1075 && Bigint.equal d (Bigint.shift_left Bigint.one (bd - 1))

(* Rat.to_float is correctly rounded, so the exact rational lies within
   1/2 ulp of the conversion — strictly inside [pred f, succ f].  (In the
   subnormal range the conversion may round twice; the error is still
   below one ulp, so the same enclosure holds.) *)
let of_rat q =
  let f = Rat.to_float q in
  if Float.is_finite f && exactly_representable q then point f else of_float f

(* Enclosure of the exact interval [lo, hi] given as rationals. *)
let of_rat_bounds qlo qhi =
  let l = (of_rat qlo).lo and h = (of_rat qhi).hi in
  { lo = l; hi = h }

let neg a = { lo = -.a.hi; hi = -.a.lo } (* negation is exact *)
let add a b = make_out (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = make_out (a.lo -. b.hi) (a.hi -. b.lo)

let mul a b =
  let x1 = a.lo *. b.lo
  and x2 = a.lo *. b.hi
  and x3 = a.hi *. b.lo
  and x4 = a.hi *. b.hi in
  if Float.is_nan x1 || Float.is_nan x2 || Float.is_nan x3 || Float.is_nan x4 then top
  else begin
    let mn = Float.min (Float.min x1 x2) (Float.min x3 x4) in
    let mx = Float.max (Float.max x1 x2) (Float.max x3 x4) in
    make_out mn mx
  end

(* Undefined (whole line) when the divisor straddles zero. *)
let div a b =
  if b.lo <= 0.0 && 0.0 <= b.hi then top
  else begin
    let x1 = a.lo /. b.lo
    and x2 = a.lo /. b.hi
    and x3 = a.hi /. b.lo
    and x4 = a.hi /. b.hi in
    if Float.is_nan x1 || Float.is_nan x2 || Float.is_nan x3 || Float.is_nan x4 then top
    else begin
      let mn = Float.min (Float.min x1 x2) (Float.min x3 x4) in
      let mx = Float.max (Float.max x1 x2) (Float.max x3 x4) in
      make_out mn mx
    end
  end

(* Square root of the non-negative part; caller must rule out an interval
   entirely below zero.  IEEE sqrt is correctly rounded, so one-ulp
   widening is sound; the lower bound is clamped at zero. *)
let sqrt a =
  if a.hi < 0.0 then invalid_arg "Fintval.sqrt: negative interval"
  else begin
    let l = if a.lo <= 0.0 then 0.0 else Stdlib.max 0.0 (down (Float.sqrt a.lo)) in
    let h = up (Float.sqrt a.hi) in
    { lo = l; hi = h }
  end

(* Certainty queries: [Some] answers are proved, [None] means the filter
   must fall back to exact arithmetic. *)

let sign a =
  if a.lo > 0.0 then Some 1
  else if a.hi < 0.0 then Some (-1)
  else if a.lo = 0.0 && a.hi = 0.0 then Some 0 (* exact-point zero *)
  else None

let compare_certain a b =
  if a.hi < b.lo then Some (-1)
  else if b.hi < a.lo then Some 1
  else if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some 0
  else None

let contains_zero a = a.lo <= 0.0 && 0.0 <= a.hi
let is_finite a = Float.is_finite a.lo && Float.is_finite a.hi
let width a = a.hi -. a.lo
let mid a = 0.5 *. (a.lo +. a.hi)

(* Interval Horner over interval coefficients, lowest degree first (the
   layout of [Poly.Make]). *)
let eval (coeffs : t array) (x : t) =
  let n = Array.length coeffs in
  if n = 0 then point 0.0
  else begin
    let acc = ref coeffs.(n - 1) in
    for i = n - 2 downto 0 do
      acc := add (mul !acc x) coeffs.(i)
    done;
    !acc
  end

(* Exact membership test (for soundness properties in tests). *)
let contains_rat a (q : Rat.t) =
  (not (Float.is_finite a.lo) || Rat.compare (Rat.of_float a.lo) q <= 0)
  && (not (Float.is_finite a.hi) || Rat.compare q (Rat.of_float a.hi) <= 0)

let pp fmt a = Format.fprintf fmt "[%h, %h]" a.lo a.hi
