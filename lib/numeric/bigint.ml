(* Sign-magnitude bignum with a small-integer fast path.

   [Small n] holds every value that fits OCaml's native [int]; [Big] holds
   the rest as base-2^30 little-endian limbs with no leading zero limb.
   The split is canonical — an int-fitting value is ALWAYS [Small] — so
   structural equality and [Hashtbl.hash] coincide with value equality
   (rationals built from these appear as hash-table keys downstream).
   Division is Knuth's Algorithm D; everything else is schoolbook.  The
   sweep workloads are overwhelmingly single-limb, so the [Small]/[Small]
   branches below are the exact backend's real inner loop. *)

let base_bits = 30
let base = 1 lsl base_bits (* 2^30 *)
let limb_mask = base - 1

type t = Small of int | Big of { sign : int; mag : int array }

let zero = Small 0
let one = Small 1
let minus_one = Small (-1)

(* |min_int| = 2^62 in limbs. *)
let mag_min_int () = [| 0; 0; 4 |]

(* Magnitude limbs of |n| for n <> 0 ([min_int] included). *)
let mag_of_abs n =
  if n = min_int then mag_min_int ()
  else begin
    let a = abs n in
    let rec count v k = if v = 0 then k else count (v lsr base_bits) (k + 1) in
    let k = count a 0 in
    let mag = Array.make k 0 in
    let v = ref a in
    for i = 0 to k - 1 do
      mag.(i) <- !v land limb_mask;
      v := !v lsr base_bits
    done;
    mag
  end

(* (sign, magnitude) view for the big-number code paths. *)
let repr = function
  | Small 0 -> (0, [||])
  | Small n -> ((if n < 0 then -1 else 1), mag_of_abs n)
  | Big { sign; mag } -> (sign, mag)

(* [Some v] when sign * mag fits a native [int]; mag has no leading zero. *)
let int_of_mag sign mag =
  match Array.length mag with
  | 0 -> Some 0
  | 1 -> Some (if sign < 0 then -mag.(0) else mag.(0))
  | 2 ->
    let v = (mag.(1) lsl base_bits) lor mag.(0) in
    Some (if sign < 0 then -v else v)
  | 3 ->
    if mag.(2) <= 3 then begin
      (* max_int = 3 * 2^60 + (2^30 - 1) * 2^30 + (2^30 - 1). *)
      let v = (((mag.(2) lsl base_bits) lor mag.(1)) lsl base_bits) lor mag.(0) in
      Some (if sign < 0 then -v else v)
    end
    else if sign < 0 && mag.(2) = 4 && mag.(1) = 0 && mag.(0) = 0 then Some min_int
    else None
  | _ -> None

(* Canonicalize: strip leading zero limbs, collapse to [Small] when the
   value fits. *)
let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then Small 0
  else begin
    let mag = if hi = n - 1 then mag else Array.sub mag 0 (hi + 1) in
    if hi <= 2 then
      match int_of_mag sign mag with
      | Some v -> Small v
      | None -> Big { sign; mag }
    else Big { sign; mag }
  end

let is_zero = function Small 0 -> true | _ -> false
let sign = function Small n -> Stdlib.compare n 0 | Big b -> b.sign
let of_int n = Small n

(* Canonical form: a [Big] never fits an [int]. *)
let to_int = function Small n -> Some n | Big _ -> None

let to_int_exn x =
  match to_int x with
  | Some n -> n
  | None -> invalid_arg "Bigint.to_int_exn: overflow"

(* Bit length of |n| for n <> 0 ([min_int] included). *)
let bits_of_int_abs n =
  if n = min_int then 63
  else begin
    let rec go v k = if v = 0 then k else go (v lsr 1) (k + 1) in
    go (abs n) 0
  end

(* Magnitude comparison. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare x y =
  match x, y with
  | Small a, Small b -> Stdlib.compare a b
  (* A [Big] magnitude strictly exceeds every [int]. *)
  | Small _, Big b -> if b.sign > 0 then -1 else 1
  | Big a, Small _ -> if a.sign > 0 then 1 else -1
  | Big a, Big b ->
    if a.sign <> b.sign then Stdlib.compare a.sign b.sign
    else if a.sign >= 0 then cmp_mag a.mag b.mag
    else cmp_mag b.mag a.mag

let equal x y = compare x y = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let add_big (sx, mx) (sy, my) =
  if sx = 0 then normalize sy my
  else if sy = 0 then normalize sx mx
  else if sx = sy then normalize sx (add_mag mx my)
  else begin
    let c = cmp_mag mx my in
    if c = 0 then Small 0
    else if c > 0 then normalize sx (sub_mag mx my)
    else normalize sy (sub_mag my mx)
  end

let add x y =
  match x, y with
  | Small a, Small b ->
    let s = a + b in
    (* Overflow only when the operands agree in sign and the sum doesn't. *)
    if (a >= 0) <> (b >= 0) || (s >= 0) = (a >= 0) then Small s
    else add_big (repr x) (repr y)
  | _ -> add_big (repr x) (repr y)

let neg = function
  | Small n when n <> min_int -> Small (-n)
  | Small _ -> Big { sign = 1; mag = mag_min_int () } (* 2^62 > max_int *)
  | Big b -> Big { sign = -b.sign; mag = b.mag }

let abs = function
  | Small n when n >= 0 -> Small n
  | Small n when n <> min_int -> Small (-n)
  | Small _ -> Big { sign = 1; mag = mag_min_int () }
  | Big b as x -> if b.sign > 0 then x else Big { sign = 1; mag = b.mag }

let sub x y =
  match x, y with
  | Small a, Small b ->
    let d = a - b in
    if (a >= 0) = (b >= 0) || (d >= 0) = (a >= 0) then Small d
    else add_big (repr x) (repr (neg y))
  | _ -> add_big (repr x) (repr (neg y))

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land limb_mask;
          carry := s lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land limb_mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    r
  end

let mul_big (sx, mx) (sy, my) =
  if sx = 0 || sy = 0 then Small 0
  else normalize (sx * sy) (mul_mag mx my)

let small_lim = 1 lsl 31

let mul x y =
  match x, y with
  | Small a, Small b ->
    if a > -small_lim && a < small_lim && b > -small_lim && b < small_lim then
      Small (a * b) (* |a*b| <= (2^31 - 1)^2 < 2^62 *)
    else if
      a <> 0 && b <> 0 && a <> min_int && b <> min_int
      && bits_of_int_abs a + bits_of_int_abs b <= 62
    then Small (a * b) (* |a*b| < 2^62, so it fits *)
    else mul_big (repr x) (repr y)
  | _ -> mul_big (repr x) (repr y)

let mul_int x n = mul x (Small n)

(* Shift magnitude left by [k] bits. *)
let shl_mag a k =
  if Array.length a = 0 then [||]
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    r
  end

let shr_mag a k =
  let limbs = k / base_bits and bits = k mod base_bits in
  let la = Array.length a in
  if limbs >= la then [||]
  else begin
    let l = la - limbs in
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      let lo = a.(i + limbs) lsr bits in
      let hi =
        if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask
        else 0
      in
      r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
    done;
    r
  end

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left"
  else
    match x with
    | Small 0 -> x
    | _ when k = 0 -> x
    | Small n when n <> min_int && bits_of_int_abs n + k <= 62 -> Small (n lsl k)
    | _ ->
      let s, m = repr x in
      normalize s (shl_mag m k)

(* Truncates the magnitude toward zero: sign(x) * (|x| lsr k). *)
let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right"
  else
    match x with
    | Small 0 -> x
    | _ when k = 0 -> x
    | Small n when n <> min_int ->
      if k >= 62 then Small 0
      else begin
        let m = Stdlib.abs n lsr k in
        Small (if n < 0 then -m else m)
      end
    | _ ->
      let s, m = repr x in
      normalize s (shr_mag m k)

let bits_of_limb v =
  let rec go v k = if v = 0 then k else go (v lsr 1) (k + 1) in
  go v 0

let num_bits = function
  | Small 0 -> 0
  | Small n -> bits_of_int_abs n
  | Big b ->
    let n = Array.length b.mag in
    (n - 1) * base_bits + bits_of_limb b.mag.(n - 1)

(* Divide magnitude by a single limb; returns (quotient, remainder). *)
let divmod_mag_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth Algorithm D on magnitudes: |a| / |b| with Array.length b >= 2.
   Returns (quotient, remainder) magnitudes. *)
let divmod_mag a b =
  let lb = Array.length b in
  (* Normalize so the top limb of b has its high bit set. *)
  let shift = base_bits - bits_of_limb b.(lb - 1) in
  let u = shl_mag a shift in
  (* keep an explicit extra top limb on u *)
  let v = shl_mag b shift in
  let v =
    (* drop possible leading zero introduced by shl_mag *)
    let n = Array.length v in
    let rec top i = if i >= 0 && v.(i) = 0 then top (i - 1) else i in
    Array.sub v 0 (top (n - 1) + 1)
  in
  let n = Array.length v in
  let m =
    (* significant limbs of u *)
    let lu = Array.length u in
    let rec top i = if i >= 0 && u.(i) = 0 then top (i - 1) else i in
    top (lu - 1) + 1
  in
  if m < n then ([||], shr_mag a 0)
  else begin
    (* Ensure a zero sentinel limb at index m. *)
    let u =
      if m + 1 <= Array.length u then Array.sub u 0 (m + 1)
      else begin
        let u' = Array.make (m + 1) 0 in
        Array.blit u 0 u' 0 (Array.length u);
        u'
      end
    in
    let q = Array.make (m - n + 1) 0 in
    let vn1 = v.(n - 1) in
    let vn2 = if n >= 2 then v.(n - 2) else 0 in
    for j = m - n downto 0 do
      (* Estimate qhat from top two limbs of current u against vn1. *)
      let ujn = u.(j + n) and ujn1 = u.(j + n - 1) in
      let num = (ujn lsl base_bits) lor ujn1 in
      let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
      let ujn2 = u.(j + n - 2) in
      let continue_test = ref true in
      while !continue_test do
        if !qhat >= base || !qhat * vn2 > (!rhat lsl base_bits) lor ujn2 then begin
          decr qhat;
          rhat := !rhat + vn1;
          if !rhat >= base then continue_test := false
        end
        else continue_test := false
      done;
      (* Multiply-subtract qhat * v from u[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * v.(i) + !carry in
        carry := p lsr base_bits;
        let d = u.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin u.(i + j) <- d + base; borrow := 1 end
        else begin u.(i + j) <- d; borrow := 0 end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !carry2 in
          u.(i + j) <- s land limb_mask;
          carry2 := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry2) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = shr_mag (Array.sub u 0 n) shift in
    (q, r)
  end

let divmod_big (sa, ma) (sb, mb) =
  if sb = 0 then raise Division_by_zero
  else if sa = 0 then (Small 0, Small 0)
  else begin
    let c = cmp_mag ma mb in
    if c < 0 then (Small 0, normalize sa ma)
    else if Array.length mb = 1 then begin
      let q, r = divmod_mag_limb ma mb.(0) in
      (normalize (sa * sb) q, if r = 0 then Small 0 else Small (if sa < 0 then -r else r))
    end
    else begin
      let q, r = divmod_mag ma mb in
      (normalize (sa * sb) q, normalize sa r)
    end
  end

let divmod a b =
  match a, b with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y ->
    if x = min_int && y = -1 then (Big { sign = 1; mag = mag_min_int () }, Small 0)
    else (Small (x / y), Small (x mod y))
  | _ -> divmod_big (repr a) (repr b)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* a, b >= 0. *)
let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)
let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)

let gcd a b =
  match a, b with
  | Small x, Small y when x <> min_int && y <> min_int ->
    Small (gcd_int (Stdlib.abs x) (Stdlib.abs y))
  | _ -> gcd_aux (abs a) (abs b)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow"
  else begin
    let rec go acc b k =
      if k = 0 then acc
      else if k land 1 = 1 then go (mul acc b) (mul b b) (k lsr 1)
      else go acc (mul b b) (k lsr 1)
    in
    go one x k
  end

let to_float = function
  | Small n -> float_of_int n (* single correctly-rounded conversion *)
  | Big b ->
    (* Correctly rounded: take the top 60 bits h = floor(|x| / 2^e), OR any
       dropped bit into bit 0 of h (strictly below the rounding position),
       and let the one float_of_int conversion do the round-to-nearest-even.
       ldexp by a power of two is exact (or overflows to infinity). *)
    let mag = b.mag in
    let n = Array.length mag in
    let nb = (n - 1) * base_bits + bits_of_limb mag.(n - 1) in
    let e = nb - 60 in
    (* Big implies nb >= 63, so e > 0 and h has exactly 60 bits. *)
    let top = shr_mag mag e in
    let h = ref 0 in
    for i = Array.length top - 1 downto 0 do
      h := (!h lsl base_bits) lor top.(i)
    done;
    let sticky = ref false in
    let limbs = e / base_bits and bits = e mod base_bits in
    for i = 0 to limbs - 1 do
      if mag.(i) <> 0 then sticky := true
    done;
    if bits > 0 && mag.(limbs) land ((1 lsl bits) - 1) <> 0 then sticky := true;
    let h = if !sticky then !h lor 1 else !h in
    let f = Float.ldexp (float_of_int h) e in
    if b.sign < 0 then -.f else f

let billion = Small 1_000_000_000

let to_string = function
  | Small n -> string_of_int n
  | Big _ as x ->
    let buf = Buffer.create 32 in
    let rec chunks v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v billion in
        chunks q (to_int_exn r :: acc)
      end
    in
    if sign x < 0 then Buffer.add_char buf '-';
    (match chunks (abs x) [] with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty"
  else begin
    let negative = s.[0] = '-' in
    let start = if negative || s.[0] = '+' then 1 else 0 in
    if start >= n then invalid_arg "Bigint.of_string: no digits";
    let acc = ref zero in
    let ten = Small 10 in
    for i = start to n - 1 do
      let c = s.[i] in
      if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
      acc := add (mul !acc ten) (Small (Char.code c - Char.code '0'))
    done;
    if negative then neg !acc else !acc
  end

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Canonical representation: structural hashing is value hashing. *)
let hash x = Hashtbl.hash x

let pp fmt x = Format.pp_print_string fmt (to_string x)
