(** Arbitrary-precision signed integers.

    Values that fit a native [int] are carried unboxed ([Small]); only
    larger values fall back to sign-magnitude base-[2{^30}] limbs stored
    little-endian in an [int array].  The container is sealed (no zarith), so
    the exact-arithmetic kernel of the whole reproduction rests on this
    module.  The representation is canonical — every int-fitting value uses
    the small form, and a magnitude never has a leading zero limb — so
    structural equality and [Hashtbl.hash] agree with value equality. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int option
(** [to_int x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int

val of_string : string -> t
(** Decimal, with optional leading [-]. @raise Invalid_argument on junk. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated toward zero, so
    [r] has the sign of [a] and [|r| < |b|].  @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t
val gcd : t -> t -> t
(** Greatest common divisor; always non-negative, [gcd zero zero = zero]. *)

val mul_int : t -> int -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val pow : t -> int -> t
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
(** Correctly rounded (round-to-nearest-even) conversion; overflows to
    infinity for huge values. *)

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
