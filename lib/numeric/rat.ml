(* Canonical rationals: den > 0, gcd(num, den) = 1. *)

module B = Bigint

type t = { n : B.t; d : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    if B.is_zero num then { n = B.zero; d = B.one }
    else begin
      let g = B.gcd num den in
      { n = B.div num g; d = B.div den g }
    end
  end

let zero = { n = B.zero; d = B.one }
let one = { n = B.one; d = B.one }
let minus_one = { n = B.minus_one; d = B.one }

let of_bigint n = { n; d = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints p q = make (B.of_int p) (B.of_int q)

let num x = x.n
let den x = x.d

let sign x = B.sign x.n
let is_zero x = B.is_zero x.n

let compare x y = B.compare (B.mul x.n y.d) (B.mul y.n x.d)
let equal x y = B.equal x.n y.n && B.equal x.d y.d

let neg x = { x with n = B.neg x.n }
let abs x = { x with n = B.abs x.n }

let add x y = make (B.add (B.mul x.n y.d) (B.mul y.n x.d)) (B.mul x.d y.d)
let sub x y = make (B.sub (B.mul x.n y.d) (B.mul y.n x.d)) (B.mul x.d y.d)
let mul x y = make (B.mul x.n y.n) (B.mul x.d y.d)
let div x y = if is_zero y then raise Division_by_zero else make (B.mul x.n y.d) (B.mul x.d y.n)
let inv x = if is_zero x then raise Division_by_zero else make x.d x.n

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor x =
  let q, r = B.divmod x.n x.d in
  if B.sign r < 0 then B.sub q B.one else q

let ceil x =
  let q, r = B.divmod x.n x.d in
  if B.sign r > 0 then B.add q B.one else q

let mediant a b = make (B.add a.n b.n) (B.add a.d b.d)

let to_float x =
  if is_zero x then 0.0
  else begin
    (* Naive [to_float num /. to_float den] overflows when the denominator
       exceeds the float range (e.g. subnormal reconstructions), and scaling
       to an ~80-bit quotient still rounded twice.  Instead scale so the
       truncated quotient q = trunc(n * 2^k / d) has 60-61 significant bits
       (fits an int), OR the divides-inexactly sticky bit below the rounding
       position, and let the single float_of_int conversion round; ldexp by
       2^-k is then exact away from the subnormal range. *)
    let bn = B.num_bits x.n and bd = B.num_bits x.d in
    let k = 60 - (bn - bd) in
    let q, r =
      if k >= 0 then B.divmod (B.shift_left x.n k) x.d
      else B.divmod x.n (B.shift_left x.d (- k))
    in
    (* |n/d| is in [2^(bn-bd-1), 2^(bn-bd+1)), so |q| is in [2^59, 2^61]. *)
    let m = Stdlib.abs (B.to_int_exn q) in
    let m = if not (B.is_zero r) && m land 1 = 0 then m lor 1 else m in
    let f = Float.ldexp (float_of_int m) (- k) in
    if sign x < 0 then -.f else f
  end

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float: not finite"
  else if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* m in [0.5, 1), f = m * 2^e; m * 2^53 is an integer. *)
    let mantissa = Int64.to_int (Int64.of_float (m *. 9007199254740992.0)) in
    let e = e - 53 in
    let mag = of_bigint (B.of_int mantissa) in
    if e >= 0 then make (B.shift_left (num mag) e) B.one
    else make (num mag) (B.shift_left B.one (- e))
  end

let to_string x =
  if B.equal x.d B.one then B.to_string x.n
  else B.to_string x.n ^ "/" ^ B.to_string x.d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let p = B.of_string (String.sub s 0 i) in
    let q = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make p q
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (B.of_string s)
     | Some i ->
       let whole = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       let negative = String.length whole > 0 && whole.[0] = '-' in
       let w = if whole = "" || whole = "-" || whole = "+" then B.zero else B.of_string whole in
       let f = if frac = "" then zero
         else make (B.of_string frac) (B.pow (B.of_int 10) (String.length frac)) in
       let v = add (of_bigint (B.abs w)) f in
       if negative || B.sign w < 0 then neg v else v)

let pp fmt x = Format.pp_print_string fmt (to_string x)

let hash x = Hashtbl.hash (B.hash x.n, B.hash x.d)

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
  let ( =/ ) a b = compare a b = 0
  let ( </ ) a b = compare a b < 0
  let ( <=/ ) a b = compare a b <= 0
  let ( >/ ) a b = compare a b > 0
  let ( >=/ ) a b = compare a b >= 0
end
