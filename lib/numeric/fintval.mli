(** Outward-rounded float intervals.

    The numeric half of the filtered exact backend: every interval encloses
    the exact real it shadows, so a sign or an ordering that is decided by
    the interval alone is proved, and only straddling-zero cases pay for
    exact arithmetic.  Operations compute in round-to-nearest and widen one
    ulp outward ([Float.pred]/[Float.succ]); no FPU mode switching. *)

type t = private { lo : float; hi : float }

val top : t
(** The whole real line — the "don't know" interval. *)

val lo : t -> float
val hi : t -> float

val point : float -> t
(** Exact float, zero width.  Only sound for values known exact. *)

val of_float : float -> t
(** Encloses any real within 1/2 ulp of the argument (i.e. the preimage of
    one correct rounding). *)

val of_int : int -> t
val of_rat : Rat.t -> t

val of_rat_bounds : Rat.t -> Rat.t -> t
(** [of_rat_bounds lo hi] encloses the exact interval [[lo, hi]]. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** [top] when the divisor straddles zero. *)

val sqrt : t -> t
(** Square root of the non-negative part.  @raise Invalid_argument when the
    interval is entirely negative. *)

val sign : t -> int option
(** [Some s] only when the sign of every real in the interval is [s]. *)

val compare_certain : t -> t -> int option
(** [Some c] only when the order of the two enclosed reals is proved
    (disjoint intervals, or both exact equal points). *)

val contains_zero : t -> bool
val is_finite : t -> bool
val width : t -> float
val mid : t -> float

val eval : t array -> t -> t
(** Interval Horner; coefficients lowest degree first. *)

val contains_rat : t -> Rat.t -> bool
(** Exact membership (soundness oracle for the property tests). *)

val pp : Format.formatter -> t -> unit
