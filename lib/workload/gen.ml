module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update

let q = Q.of_int

let rand_int st lo hi = lo + Prng.int st (hi - lo + 1)

let rand_vec st dim bound =
  Qvec.of_list (List.init dim (fun _ -> q (rand_int st (- bound) bound)))

let uniform_db ~seed ~n ?(dim = 2) ?(extent = 1000) ?(speed = 10) () =
  let st = Prng.create seed in
  let db = DB.empty ~dim ~tau:(q 0) in
  let rec add db i =
    if i > n then db
    else begin
      let tr =
        T.linear ~start:(q 0) ~a:(rand_vec st dim speed) ~b:(rand_vec st dim extent)
      in
      add (DB.add_initial db i tr) (i + 1)
    end
  in
  add db 1

let clustered_db ~seed ~n ?(dim = 2) ?(clusters = 0) ?(spacing = 10_000)
    ?(spread = 200) ?(speed = 5) () =
  let st = Prng.create seed in
  let clusters = if clusters > 0 then clusters else max 1 (n / 100) in
  let w = int_of_float (Float.ceil (sqrt (float_of_int clusters))) in
  let center d c =
    (* cluster 0 sits at the origin; the rest march along a grid row by
       row, [spacing] apart — far enough that distant clusters never
       interact with an origin-anchored query *)
    if c = 0 then Q.zero
    else if d = 0 then q (c mod w * spacing)
    else if d = 1 then q (c / w * spacing)
    else Q.zero
  in
  let db = DB.empty ~dim ~tau:(q 0) in
  let rec add db i =
    if i > n then db
    else begin
      let c = (i - 1) mod clusters in
      let b =
        Qvec.of_list
          (List.init dim (fun d ->
               Q.add (center d c) (q (rand_int st (-spread) spread))))
      in
      let tr = T.linear ~start:(q 0) ~a:(rand_vec st dim speed) ~b in
      add (DB.add_initial db i tr) (i + 1)
    end
  in
  add db 1

(* A permutation of 0..n-1 with exactly [k] inversions: start from the
   identity and repeatedly swap a random adjacent in-order pair (each such
   swap adds exactly one inversion). *)
let permutation_with_inversions st n k =
  let p = Array.init n (fun i -> i) in
  let k = min k (n * (n - 1) / 2) in
  let made = ref 0 in
  while !made < k do
    let i = Prng.int st (n - 1) in
    if p.(i) < p.(i + 1) then begin
      let x = p.(i) in
      p.(i) <- p.(i + 1);
      p.(i + 1) <- x;
      incr made
    end
  done;
  p

let inversions_db ~seed ~n ~inversions ~horizon =
  if Q.sign horizon <= 0 then invalid_arg "Gen.inversions_db: horizon must be positive";
  let st = Prng.create seed in
  let p = permutation_with_inversions st n inversions in
  let db = DB.empty ~dim:1 ~tau:(q 0) in
  (* object i: height i at time 0, height p(i)·n + i/(n+1) at the horizon —
     the fractional epsilon keeps crossing times generically distinct *)
  let rec add db i =
    if i >= n then db
    else begin
      let b = q i in
      let target = Q.add (q (p.(i) * n)) (Q.div (q i) (q (n + 1))) in
      let a = Q.div (Q.sub target b) horizon in
      let tr = T.linear ~start:(q 0) ~a:(Qvec.of_list [ a ]) ~b:(Qvec.of_list [ b ]) in
      add (DB.add_initial db (i + 1) tr) (i + 1)
    end
  in
  add db 0

(* Engineered degeneracies for the filtered backend: curve pairs whose
   g-distance difference has a double root (tangency) or two roots a hair
   apart (near-tangency) — exactly where a float filter must fall back to
   exact arithmetic instead of guessing. *)
let tangency_db ~seed ~n () =
  let st = Prng.create seed in
  let db = DB.empty ~dim:2 ~tau:(q 0) in
  let eps = Q.of_ints 1 1_000_000 in
  let rec add db j =
    if 2 * j >= n then db
    else begin
      let c = q (j + 1) in
      (* tangency instant *)
      let k = q (rand_int st 1 5) in
      (* offset from the origin query point *)
      let k' =
        match j mod 3 with
        | 0 -> k (* exact tangency: d² difference is 3(t-c)², a double root *)
        | 1 -> Q.add k eps (* grazing pass: minimum of the difference ~ 0, no root *)
        | _ -> Q.sub k eps (* near-tangency: two roots O(√eps) apart *)
      in
      (* A at (t-c, k), B at (2(t-c), k'): d² to the origin differ by
         3(t-c)² + (k'² - k²). *)
      let tra =
        T.linear ~start:(q 0)
          ~a:(Qvec.of_list [ q 1; q 0 ])
          ~b:(Qvec.of_list [ Q.neg c; k ])
      in
      let trb =
        T.linear ~start:(q 0)
          ~a:(Qvec.of_list [ q 2; q 0 ])
          ~b:(Qvec.of_list [ Q.mul (q (-2)) c; k' ])
      in
      let db = DB.add_initial db (2 * j + 1) tra in
      let db = DB.add_initial db (2 * j + 2) trb in
      add db (j + 1)
    end
  in
  add db 0

(* All trajectories pass through the common point (at, y0): every pair
   crosses simultaneously at [at], so the sweep pops one N-way batch —
   the simultaneous-crossing stress case. *)
let pencil_db ~seed ~n ~at () =
  let st = Prng.create seed in
  let y0 = q (rand_int st (-5) 5) in
  let db = DB.empty ~dim:1 ~tau:(q 0) in
  let rec add db i =
    if i > n then db
    else begin
      let s = q i in
      (* distinct slopes, common point: x_i(t) = y0 + s_i (t - at) *)
      let tr =
        T.linear ~start:(q 0)
          ~a:(Qvec.of_list [ s ])
          ~b:(Qvec.of_list [ Q.sub y0 (Q.mul s at) ])
      in
      add (DB.add_initial db i tr) (i + 1)
    end
  in
  add db 1

let live_oids db t = List.map fst (DB.live db t)

let chdir_stream ~seed ~db ~start ~gap ~count ?(speed = 10) () =
  let st = Prng.create seed in
  let dim = DB.dim db in
  let rec go acc db i =
    if i > count then List.rev acc
    else begin
      let tau = Q.add start (Q.mul (q i) gap) in
      match live_oids db tau with
      | [] -> List.rev acc
      | oids ->
        let o = List.nth oids (Prng.int st (List.length oids)) in
        let u = U.Chdir { oid = o; tau; a = rand_vec st dim speed } in
        go (u :: acc) (DB.apply_exn db u) (i + 1)
    end
  in
  go [] db 1

(* GPS-style sampled trace: each object alternates dwell phases (parked,
   with sub-metre jitter an ingest quantisation threshold should absorb)
   and travel phases (a velocity held for a few samples).  Positions live
   on a 1/100 grid so the CSV round-trips exactly through decimal
   notation.  Rows come out sorted by (t, oid), like a real trace file. *)
let trace_like ~seed ~n ~steps ?(dt = Q.one) ?(extent = 1000) ?(speed = 10)
    ?(pause = 30) () =
  if n <= 0 || steps <= 0 then invalid_arg "Gen.trace_like";
  if Q.sign dt <= 0 then invalid_arg "Gen.trace_like: dt must be positive";
  let st = Prng.create seed in
  let centi k = Q.of_ints k 100 in
  (* per-object mutable state: position, velocity, samples left in phase *)
  let pos = Array.init n (fun _ -> Array.init 2 (fun _ -> q (rand_int st (-extent) extent))) in
  let vel = Array.make n [| Q.zero; Q.zero |] in
  let hold = Array.make n 0 in
  let rows = ref [] in
  for step = 0 to steps - 1 do
    let t = Q.mul (q step) dt in
    for o = 0 to n - 1 do
      if step > 0 then begin
        if hold.(o) = 0 then begin
          if Prng.int st 100 < pause then begin
            vel.(o) <- [| Q.zero; Q.zero |];
            hold.(o) <- rand_int st 2 5
          end
          else begin
            vel.(o) <-
              Array.init 2 (fun _ ->
                  Q.add (q (rand_int st (-speed) speed))
                    (centi (rand_int st (-99) 99)));
            hold.(o) <- rand_int st 2 6
          end
        end;
        hold.(o) <- hold.(o) - 1;
        let parked = Array.for_all (fun v -> Q.sign v = 0) vel.(o) in
        pos.(o) <-
          Array.mapi
            (fun d x ->
              if parked then
                (* dwell jitter, well under any sane quantisation threshold *)
                Q.add x (centi (rand_int st (-3) 3))
              else Q.add x (Q.mul vel.(o).(d) dt))
            pos.(o)
      end;
      rows := (o + 1, t, Qvec.of_list (Array.to_list pos.(o))) :: !rows
    done
  done;
  List.rev !rows

let mixed_stream ~seed ~db ~start ~gap ~count ?(speed = 10) ?(extent = 1000) () =
  let st = Prng.create seed in
  let dim = DB.dim db in
  let next_oid = ref (1 + List.fold_left max 0 (DB.oids db)) in
  let rec go acc db i =
    if i > count then List.rev acc
    else begin
      let tau = Q.add start (Q.mul (q i) gap) in
      let roll = Prng.int st 10 in
      let u =
        if roll < 2 || live_oids db tau = [] then begin
          let o = !next_oid in
          incr next_oid;
          U.New { oid = o; tau; a = rand_vec st dim speed; b = rand_vec st dim extent }
        end
        else begin
          let oids = live_oids db tau in
          let o = List.nth oids (Prng.int st (List.length oids)) in
          if roll = 2 && List.length oids > 1 then U.Terminate { oid = o; tau }
          else U.Chdir { oid = o; tau; a = rand_vec st dim speed }
        end
      in
      go (u :: acc) (DB.apply_exn db u) (i + 1)
    end
  in
  go [] db 1
