type t = { mutable s : int64 }

(* Mix the integer seed through one golden-gamma step so that small seeds
   (0, 1, 2, ...) still start far apart in state space. *)
let create seed = { s = Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L }

let copy t = { s = t.s }

let next64 t =
  t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
  let z = t.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* OCaml's native int is 63-bit; keep 62 bits so the value stays
     non-negative after Int64.to_int *)
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  r /. 9007199254740992.0 *. bound
