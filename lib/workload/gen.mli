(** Seeded synthetic workloads.

    The paper motivates its model with air traffic and police-car fleets but
    reports no datasets (it is a theory paper); these generators produce the
    MODs and update streams the experiment harness sweeps, with full control
    over the paper's two complexity knobs: the number of objects N and the
    number of support changes m. *)

module Q = Moq_numeric.Rat
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update

val uniform_db :
  seed:int -> n:int -> ?dim:int -> ?extent:int -> ?speed:int -> unit -> DB.t
(** [n] objects (OIDs 1..n) born at time 0 with integer positions in
    [[-extent, extent]^dim] and integer velocities in [[-speed, speed]^dim].
    Default [dim = 2], [extent = 1000], [speed = 10]. *)

val clustered_db :
  seed:int -> n:int -> ?dim:int -> ?clusters:int -> ?spacing:int ->
  ?spread:int -> ?speed:int -> unit -> DB.t
(** Spatially local activity: [n] objects dealt round-robin into
    [clusters] clusters (default [max 1 (n/100)]), each a [spread]-sized
    blob of slow movers ([speed], default 5) around its center.  Cluster 0
    is centered at the origin; the rest sit on a square grid [spacing]
    (default 10000) apart, so an origin-anchored query interacts with one
    cluster and growing N only adds far-away clusters — the workload under
    which per-event cost should stay flat in N for an index-pruned sweep
    while a global sweep degrades. *)

val inversions_db : seed:int -> n:int -> inversions:int -> horizon:Q.t -> DB.t
(** One-dimensional workload with an exactly controlled number of support
    changes: object [i] starts at height [i] and moves linearly so that at
    [horizon] the heights realize a permutation with the requested number of
    inversions — under the [coordinate 0] g-distance, the sweep performs
    exactly [inversions] adjacent swaps (several may share an instant).
    [inversions] is clamped to [n(n-1)/2]. *)

val tangency_db : seed:int -> n:int -> unit -> DB.t
(** Two-dimensional pairs engineered to stress a numeric filter under the
    origin [euclidean_sq] g-distance: pair [j] is tangent at time [j+1]
    (the d² difference has a double root), grazes without touching, or
    crosses twice within [O(√eps)] — cycling through the three variants.
    [n] is rounded down to a whole number of pairs. *)

val pencil_db : seed:int -> n:int -> at:Q.t -> unit -> DB.t
(** One-dimensional pencil of lines through a common point at time [at]:
    under [coordinate 0] every pair of the [n] objects crosses
    simultaneously at [at], producing one N-way batch — the
    simultaneous-crossing stress case for event batching and for exact
    equality of event times. *)

val trace_like :
  seed:int -> n:int -> steps:int -> ?dt:Q.t -> ?extent:int -> ?speed:int ->
  ?pause:int -> unit -> (int * Q.t * Moq_geom.Vec.Qvec.t) list
(** GPS-style sampled trace rows [(oid, t, position)], sorted by [(t, oid)]:
    [n] objects (OIDs 1..n) sampled at times [0, dt, 2·dt, ...] for [steps]
    samples each.  Objects alternate dwell phases — parked, with ±0.03
    positional jitter that a quantisation threshold ≥ 0.1 absorbs — and
    travel phases holding a velocity (≤ [speed] + 1 per axis) for a few
    samples.  [pause] is the percent chance (default 30) a phase change
    starts a dwell.  Positions are exact rationals on a 1/100 grid, so
    rendering them as decimals round-trips exactly.  Feed the rows to
    {!Moq_ingest.Ingest.segment} to obtain an update stream — benches get
    ingest-shaped load with no external data. *)

val chdir_stream :
  seed:int -> db:DB.t -> start:Q.t -> gap:Q.t -> count:int -> ?speed:int -> unit -> U.t list
(** [count] direction changes on random live objects, one every [gap],
    beginning at [start + gap]. *)

val mixed_stream :
  seed:int ->
  db:DB.t ->
  start:Q.t ->
  gap:Q.t ->
  count:int ->
  ?speed:int ->
  ?extent:int ->
  unit ->
  U.t list
(** Like {!chdir_stream} with a mix of [new] (20%), [terminate] (10%) and
    [chdir] (70%) updates.  Freshly created OIDs start above any existing
    OID. *)
