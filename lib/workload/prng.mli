(** Self-contained splitmix64 PRNG.

    [Stdlib.Random] changed algorithms between OCaml 4.x (legacy linear
    feedback) and 5.x (L64X128MX), so the same seed produces different
    workloads on the two compilers CI exercises.  Benches compared across
    compiler versions need byte-identical generator output, hence this
    tiny version-independent generator: splitmix64 (Steele–Lea–Flood,
    OOPSLA 2014), defined purely in terms of [Int64] wraparound
    arithmetic, which OCaml specifies identically everywhere. *)

type t

val create : int -> t
(** Seed a fresh stream.  Equal seeds yield equal streams on every OCaml
    version and platform. *)

val copy : t -> t

val next64 : t -> int64
(** The raw 64-bit splitmix64 output. *)

val bits : t -> int
(** 30 uniform bits (range [0, 2^30)), mirroring [Random.bits]. *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [0, bound).  Raises [Invalid_argument]
    if [bound <= 0].  (Modulo reduction over 63 bits: bias is < 2^-50 for
    every bound this repo uses — irrelevant for workload generation, and
    determinism is the point.) *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound), from 53 bits. *)
