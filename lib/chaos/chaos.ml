module Faults = Moq_durable.Faults
module Log = Moq_obs.Log
module Json = Moq_obs.Json

type profile = {
  delay_p : float;
  delay_s : float;
  corrupt_p : float;
  tear_p : float;
  reorder_p : float;
  throttle_bps : int;
}

let quiet =
  { delay_p = 0.; delay_s = 0.; corrupt_p = 0.; tear_p = 0.; reorder_p = 0.;
    throttle_bps = 0 }

let flaky =
  { delay_p = 0.05; delay_s = 0.02; corrupt_p = 0.; tear_p = 0.01;
    reorder_p = 0.05; throttle_bps = 0 }

let hostile =
  { delay_p = 0.1; delay_s = 0.05; corrupt_p = 0.02; tear_p = 0.05;
    reorder_p = 0.1; throttle_bps = 0 }

type stats = {
  conns : int;
  refused : int;
  chunks : int;
  bytes : int;
  delays : int;
  corruptions : int;
  tears : int;
  reorders : int;
}

type conn = {
  id : int;
  a : Unix.file_descr;  (* client side *)
  b : Unix.file_descr;  (* upstream side *)
  mutable live_pumps : int;
}

type t = {
  seed : int;
  profile : profile;
  upstream : Unix.sockaddr;
  listen_fd : Unix.file_descr;
  port : int;
  m : Mutex.t;
  mutable partitioned : bool;
  mutable conns : conn list;
  mutable next_id : int;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  mutable pumps : Thread.t list;
  (* counters, guarded by [m] *)
  mutable c_conns : int;
  mutable c_refused : int;
  mutable c_chunks : int;
  mutable c_bytes : int;
  mutable c_delays : int;
  mutable c_corruptions : int;
  mutable c_tears : int;
  mutable c_reorders : int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let port t = t.port
let sockaddr t = Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)

let stats t =
  with_lock t.m (fun () ->
      { conns = t.c_conns; refused = t.c_refused; chunks = t.c_chunks;
        bytes = t.c_bytes; delays = t.c_delays; corruptions = t.c_corruptions;
        tears = t.c_tears; reorders = t.c_reorders })

let shutdown_conn c =
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    [ c.a; c.b ]

let partition t =
  with_lock t.m (fun () -> t.partitioned <- true);
  Log.info
    ~fields:[ ("port", Json.Int t.port);
              ("cut_conns", Json.Int (List.length (with_lock t.m (fun () -> t.conns)))) ]
    "chaos: partitioned";
  (* existing flows die too: a partition cuts, it does not just refuse *)
  List.iter shutdown_conn (with_lock t.m (fun () -> t.conns))

let heal t =
  with_lock t.m (fun () -> t.partitioned <- false);
  Log.info ~fields:[ ("port", Json.Int t.port) ] "chaos: healed"

let tear_all t = List.iter shutdown_conn (with_lock t.m (fun () -> t.conns))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* One direction of one connection.  Every fault decision draws from this
   pump's own seeded stream, so a given (seed, connection index,
   direction) misbehaves the same way on every run — modulo how the
   kernel chunks the byte stream. *)
let pump t rng src dst conn =
  let buf = Bytes.create 4096 in
  let held = ref None in
  let ship s =
    (match !held with
     | Some h ->
       held := None;
       with_lock t.m (fun () -> t.c_reorders <- t.c_reorders + 1);
       write_all dst s;
       write_all dst h
     | None ->
       if Faults.flip rng t.profile.reorder_p then held := Some s
       else write_all dst s);
    if t.profile.throttle_bps > 0 then
      Thread.delay (float_of_int (String.length s) /. float_of_int t.profile.throttle_bps)
  in
  let rec go () =
    (* a held (reordered) chunk must not stall a request/response lull:
       if no successor shows up promptly, ship it un-swapped *)
    (match !held with
     | Some h ->
       (match Unix.select [ src ] [] [] 0.02 with
        | [], _, _ ->
          held := None;
          write_all dst h
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
     | None -> ());
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 ->
      (match !held with Some h -> write_all dst h | None -> ());
      (try Unix.shutdown dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
    | n ->
      let s = Bytes.sub_string buf 0 n in
      with_lock t.m (fun () ->
          t.c_chunks <- t.c_chunks + 1;
          t.c_bytes <- t.c_bytes + n);
      if Faults.flip rng t.profile.delay_p then begin
        with_lock t.m (fun () -> t.c_delays <- t.c_delays + 1);
        Thread.delay (t.profile.delay_s *. (float_of_int (Faults.int rng 1000) /. 1000.))
      end;
      if Faults.flip rng t.profile.tear_p then begin
        (* a torn frame: ship a ragged prefix, then cut the connection *)
        with_lock t.m (fun () -> t.c_tears <- t.c_tears + 1);
        Log.debug ~fields:[ ("conn", Json.Int conn.id) ] "chaos: tearing connection";
        (try write_all dst (String.sub s 0 (Faults.int rng n)) with Unix.Unix_error _ -> ());
        shutdown_conn conn
      end
      else begin
        let s =
          if Faults.flip rng t.profile.corrupt_p then begin
            with_lock t.m (fun () -> t.c_corruptions <- t.c_corruptions + 1);
            Faults.bit_flip rng s
          end
          else s
        in
        ship s;
        go ()
      end
  in
  (try go () with Unix.Unix_error _ | Sys_error _ -> ());
  let last =
    with_lock t.m (fun () ->
        conn.live_pumps <- conn.live_pumps - 1;
        if conn.live_pumps = 0 then begin
          t.conns <- List.filter (fun c -> c.id <> conn.id) t.conns;
          true
        end
        else false)
  in
  if last then
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ conn.a; conn.b ]

let handle t client =
  let refuse () =
    with_lock t.m (fun () -> t.c_refused <- t.c_refused + 1);
    Log.debug ~fields:[ ("port", Json.Int t.port) ] "chaos: refused connection";
    try Unix.close client with Unix.Unix_error _ -> ()
  in
  if with_lock t.m (fun () -> t.partitioned || t.stopping) then refuse ()
  else begin
    match
      let up = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect up t.upstream
       with e ->
         (try Unix.close up with Unix.Unix_error _ -> ());
         raise e);
      up
    with
    | exception Unix.Unix_error _ -> refuse ()
    | up ->
      Unix.set_close_on_exec up;
      let conn =
        with_lock t.m (fun () ->
            let id = t.next_id in
            t.next_id <- id + 1;
            t.c_conns <- t.c_conns + 1;
            let c = { id; a = client; b = up; live_pumps = 2 } in
            t.conns <- c :: t.conns;
            c)
      in
      (* distinct deterministic streams per (seed, conn, direction) *)
      Log.debug ~fields:[ ("conn", Json.Int conn.id) ] "chaos: proxying connection";
      let rng_fwd = Faults.create ~seed:(t.seed + (conn.id * 2)) in
      let rng_bwd = Faults.create ~seed:(t.seed + (conn.id * 2) + 1) in
      let th_f = Thread.create (fun () -> pump t rng_fwd client up conn) () in
      let th_b = Thread.create (fun () -> pump t rng_bwd up client conn) () in
      with_lock t.m (fun () -> t.pumps <- th_f :: th_b :: t.pumps)
  end

let accept_loop t =
  let rec go () =
    if not t.stopping then begin
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.set_close_on_exec fd;
        handle t fd;
        go ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  try go () with _ -> ()

let start ?(profile = flaky) ?(port = 0) ~seed ~upstream () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec listen_fd;
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 16;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> 0
  in
  let t =
    { seed; profile; upstream; listen_fd; port; m = Mutex.create ();
      partitioned = false; conns = []; next_id = 0; stopping = false;
      accept_thread = None; pumps = []; c_conns = 0; c_refused = 0;
      c_chunks = 0; c_bytes = 0; c_delays = 0; c_corruptions = 0; c_tears = 0;
      c_reorders = 0 }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  t.stopping <- true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  List.iter shutdown_conn (with_lock t.m (fun () -> t.conns));
  (match t.accept_thread with
   | Some th -> ( try Thread.join th with _ -> ())
   | None -> ());
  List.iter
    (fun th -> try Thread.join th with _ -> ())
    (with_lock t.m (fun () -> t.pumps))
