(** Seeded network chaos proxy.

    A TCP relay that sits between a moqp client (or follower) and a
    server and misbehaves on purpose: delays, torn frames (a ragged
    prefix then a cut), single-bit corruption, chunk reordering,
    slow-link throttling, and whole-proxy partitions.  It extends the
    {!Moq_durable.Faults} deterministic-seed discipline from files to
    sockets: every fault decision on one connection direction draws from
    a PRNG seeded by [(seed, connection index, direction)], so a failing
    case replays from its seed — modulo kernel chunking of the byte
    stream.

    The proxy listens on an ephemeral loopback port ({!port}); point
    clients at it and give it the real server as [upstream]. *)

type profile = {
  delay_p : float;  (** per-chunk probability of an added delay *)
  delay_s : float;  (** maximum added delay, seconds *)
  corrupt_p : float;  (** per-chunk probability of one flipped bit *)
  tear_p : float;
      (** per-chunk probability of shipping a ragged prefix and cutting
          the connection *)
  reorder_p : float;  (** per-chunk probability of holding it back one chunk *)
  throttle_bps : int;  (** slow-link budget, bytes/second; 0 = unthrottled *)
}

val quiet : profile
(** Faithful relay — useful as a baseline and for pure partition tests. *)

val flaky : profile
(** Mild trouble: delays, occasional tears and reorders, no corruption. *)

val hostile : profile
(** Everything at once, including bit corruption. *)

type stats = {
  conns : int;
  refused : int;  (** connections refused while partitioned *)
  chunks : int;
  bytes : int;
  delays : int;
  corruptions : int;
  tears : int;
  reorders : int;
}

type t

val start :
  ?profile:profile -> ?port:int -> seed:int -> upstream:Unix.sockaddr ->
  unit -> t
(** Bind a loopback listener ([port] 0 — the default — picks a free one)
    and start relaying.  [profile] defaults to {!flaky}. *)

val port : t -> int
val sockaddr : t -> Unix.sockaddr

val partition : t -> unit
(** Refuse new connections and cut every live one — both halves of a
    network partition as one end sees it. *)

val heal : t -> unit
(** Accept connections again. *)

val tear_all : t -> unit
(** Cut every live connection once, without partitioning. *)

val stats : t -> stats
val stop : t -> unit
