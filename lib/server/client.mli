(** Blocking moqp client used by the CLI, tests and benches.

    A background thread reads frames and sorts them into a response queue
    (consumed by {!request}, which pairs one response per request, in
    order) and an event queue (consumed by {!next_event} /
    {!drain_events}).  All failures are typed {!error}s: a bounded
    connect, a response deadline, a peer close — never a raw exception.

    {!Resilient} layers reconnection on top: an address ring (primary
    first, replicas after), capped exponential backoff with
    deterministic seeded jitter, and subscription resume — after a
    failover the subscription is re-issued from its window start and the
    replayed canonical prefix is byte-compared against what was already
    delivered and suppressed, so the consumer observes one gap-free,
    duplicate-free canonical stream across server crashes. *)

module Proto := Moq_proto.Proto
module Q := Moq_numeric.Rat

type error =
  | Timeout of string  (** connect or response deadline exceeded *)
  | Closed of string  (** the transport failed or the peer went away *)
  | Protocol of string  (** the peer spoke, but wrongly *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

type t

val connect :
  ?timeout:float -> ?connect_timeout:float -> ?sink:Moq_obs.Sink.t ->
  ?tracer:Moq_obs.Trace.t -> Server.addr -> (t, error) result
(** [timeout] (default 30s) bounds each {!request}'s wait for its
    response; [connect_timeout] (default 10s) bounds the TCP/Unix
    connect itself, so a black-holed peer yields [Error (Timeout _)]
    rather than a hang.  [sink] receives the delivery-latency histograms
    ([moq_stage_deliver_ns], [moq_client_e2e_seconds]); [tracer] records
    link/deliver spans for frames carrying a [trace=] attribute. *)

val hello : t -> (Proto.server_msg, error) result
(** Send the protocol handshake; servers require it first. *)

val request : t -> Proto.request -> (Proto.server_msg, error) result
(** Send one request and wait (≤ timeout) for its response.  Thread-safe;
    concurrent requests are serialized. *)

val request_attrs :
  t -> Proto.attrs -> Proto.request -> (Proto.server_msg, error) result
(** As {!request} with frame attributes attached; when a trace context is
    present the [ts=] stamp is (re)taken just before the socket write, so
    the receiver's link span measures transit, not client-side queueing. *)

val next_event : ?timeout:float -> t -> Proto.server_msg option
(** Next queued asynchronous event, waiting up to [timeout] (default: the
    connect-time timeout).  [None] on timeout or a closed connection. *)

val next_event_full :
  ?timeout:float -> t -> (Proto.server_msg * Proto.attrs * float) option
(** As {!next_event}, also exposing the frame's attributes and its local
    arrival time (Unix seconds) — what the e2e latency accounting uses. *)

val drain_events : t -> Proto.server_msg list
val is_open : t -> bool
val close : t -> unit

(** Reconnecting client with failover and subscription resume. *)
module Resilient : sig
  type conf = {
    addrs : Server.addr list;  (** tried in order; first is preferred *)
    timeout : float;
    connect_timeout : float;
    retry_max : int;  (** reconnect campaigns before giving up *)
    backoff_base : float;  (** seconds; doubles each retry *)
    backoff_max : float;  (** backoff cap *)
    seed : int;  (** deterministic jitter stream *)
    resync_max : int;
        (** on an [EVENT-DROPPED] hole, re-subscribe-and-dedup this many
            times before recording the range as permanently lost *)
    sink : Moq_obs.Sink.t;  (** receives the [moq_client_*] counters *)
  }

  val conf :
    ?timeout:float -> ?connect_timeout:float -> ?retry_max:int ->
    ?backoff_base:float -> ?backoff_max:float -> ?seed:int ->
    ?resync_max:int -> ?sink:Moq_obs.Sink.t -> Server.addr list -> conf
  (** Defaults: timeout 30s, connect_timeout 5s, retry_max 8,
      backoff 0.05s doubling capped at 2s, seed 0, resync_max 4. *)

  type t

  val connect : conf -> (t, error) result

  val request : t -> Proto.request -> (Proto.server_msg, error) result
  (** As {!request}, but a connection loss triggers reconnect (with
      failover and subscription resume) and a retry of the request. *)

  val subscribe :
    t -> kind:Proto.sub_kind -> lo:Q.t -> hi:Q.t -> (unit, error) result
  (** Open the client's (single) tracked subscription. *)

  val pull :
    ?timeout:float -> t ->
    [ `Piece of Proto.piece | `Complete | `Error of error ]
  (** Next piece of the subscription's {e canonical} validated stream
      (see {!Moq_proto.Proto.Canon}).  Drives the connection: reconnects,
      fails over, resumes and dedups as needed.  Not thread-safe — one
      puller per client. *)

  val delivered : t -> Proto.piece list
  (** Every canonical piece delivered so far, in order. *)

  val dropped_ranges : t -> (int * int) list
  (** Sequence ranges (inclusive) lost to backpressure drops that resyncs
      could not heal.  Empty iff the delivered stream is gap-free. *)

  val stats : t -> (string * int) list
  (** The [moq_client_*] counters: [reconnects], [failovers],
      [retry_attempts], [suppressed_duplicates], [resyncs],
      [divergence] — sorted by name. *)

  val close : t -> unit
end
