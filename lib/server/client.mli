(** Blocking moqp client: one socket, one background reader thread.

    Responses are matched to requests by order (the protocol guarantees one
    response per request, in order); asynchronous events ([EVENT],
    [EVENT-DROPPED], [EVENT-COMPLETE], [SHUTDOWN]) land in an internal
    queue read with {!next_event}/{!drain_events}.  Safe for concurrent
    callers: requests are serialized on the socket. *)

module Proto := Moq_proto.Proto

type t

val connect : ?timeout:float -> Server.addr -> (t, string) result
(** TCP or Unix-domain connect; [timeout] bounds each response wait (and
    the connection attempt), default 30 s. *)

val request : t -> Proto.request -> (Proto.server_msg, string) result
(** Send one frame, wait for its response.  [Error] on timeout, closed
    connection, or unparsable reply. *)

val hello : t -> (Proto.server_msg, string) result
(** [request (Hello Proto.version)]. *)

val next_event : ?timeout:float -> t -> Proto.server_msg option
(** Oldest undelivered event, waiting up to [timeout] (default: the
    connect timeout) for one to arrive.  [None] on timeout or once the
    connection is closed and the queue empty. *)

val drain_events : t -> Proto.server_msg list
(** All queued events, oldest first, without waiting. *)

val is_open : t -> bool

val close : t -> unit
(** Close the socket and join the reader.  Idempotent. *)
