module Frame = Moq_proto.Frame
module Proto = Moq_proto.Proto

type t = {
  fd : Unix.file_descr;
  timeout : float;
  m : Mutex.t;  (* guards [resps], [events], [closed] *)
  wm : Mutex.t;  (* serializes request/response pairs on the wire *)
  mutable resps : Proto.server_msg list;  (* oldest first *)
  mutable events : Proto.server_msg list;  (* oldest first *)
  mutable closed : bool;
  mutable reader : Thread.t option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let reader_loop c =
  let r = Frame.reader c.fd in
  let rec go () =
    match Frame.read r with
    | `Eof | `Timeout -> ()
    | `Garbage _ -> ()
    | `Frame payload ->
      (match Proto.parse_server_msg payload with
       | Error _ -> ()
       | Ok msg ->
         with_lock c.m (fun () ->
             if Proto.is_event msg then c.events <- c.events @ [ msg ]
             else c.resps <- c.resps @ [ msg ]);
         go ())
  in
  (try go () with _ -> ());
  with_lock c.m (fun () -> c.closed <- true)

let connect ?(timeout = 30.) addr =
  (* a server closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let domain =
      match addr with Server.Tcp _ -> Unix.PF_INET | Server.Unix_sock _ -> Unix.PF_UNIX
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    (try Unix.connect fd (Server.sockaddr_of addr)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd
  with
  | fd ->
    let c =
      { fd; timeout; m = Mutex.create (); wm = Mutex.create (); resps = [];
        events = []; closed = false; reader = None }
    in
    c.reader <- Some (Thread.create (fun () -> reader_loop c) ());
    Ok c
  | exception Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))

(* Poll for the next queued response.  OCaml's [Condition] has no timed
   wait, so a short sleep loop stands in; the granularity only matters on
   the failure path. *)
let await_resp c =
  let deadline = Unix.gettimeofday () +. c.timeout in
  let rec go () =
    let r =
      with_lock c.m (fun () ->
          match c.resps with
          | msg :: rest ->
            c.resps <- rest;
            Some (Ok msg)
          | [] -> if c.closed then Some (Error "connection closed") else None)
    in
    match r with
    | Some r -> r
    | None ->
      if Unix.gettimeofday () > deadline then Error "timed out waiting for response"
      else begin
        Thread.delay 0.002;
        go ()
      end
  in
  go ()

let request c req =
  with_lock c.wm (fun () ->
      if c.closed then Error "connection closed"
      else
        match Frame.write c.fd (Proto.render_request req) with
        | () -> await_resp c
        | exception Unix.Unix_error (err, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message err)))

let hello c = request c (Proto.Hello Proto.version)

let next_event ?timeout c =
  let timeout = match timeout with Some s -> s | None -> c.timeout in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let r =
      with_lock c.m (fun () ->
          match c.events with
          | msg :: rest ->
            c.events <- rest;
            Some (Some msg)
          | [] -> if c.closed then Some None else None)
    in
    match r with
    | Some r -> r
    | None ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Thread.delay 0.002;
        go ()
      end
  in
  go ()

let drain_events c =
  with_lock c.m (fun () ->
      let evs = c.events in
      c.events <- [];
      evs)

let is_open c = not (with_lock c.m (fun () -> c.closed))

let close c =
  let was_closed = with_lock c.m (fun () -> c.closed) in
  if not was_closed then (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (match c.reader with Some th -> (try Thread.join th with _ -> ()) | None -> ());
  c.reader <- None;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  with_lock c.m (fun () -> c.closed <- true)
