module Frame = Moq_proto.Frame
module Proto = Moq_proto.Proto
module Q = Moq_numeric.Rat
module Faults = Moq_durable.Faults
module Sink = Moq_obs.Sink
module Trace = Moq_obs.Trace

type error =
  | Timeout of string
  | Closed of string
  | Protocol of string

let error_to_string = function
  | Timeout s -> "timeout: " ^ s
  | Closed s -> "connection closed: " ^ s
  | Protocol s -> "protocol: " ^ s

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type t = {
  fd : Unix.file_descr;
  timeout : float;
  sink : Sink.t;  (* receives moq_stage_deliver_ns / moq_client_e2e_seconds *)
  tracer : Trace.t option;  (* records link/deliver spans when given *)
  m : Mutex.t;  (* guards [resps], [events], [closed] *)
  wm : Mutex.t;  (* serializes request/response pairs on the wire *)
  mutable resps : Proto.server_msg list;  (* oldest first *)
  mutable events : (Proto.server_msg * Proto.attrs * float) list;
      (* oldest first; (message, frame attrs, local arrival time) *)
  mutable closed : bool;
  mutable reader : Thread.t option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let reader_loop c =
  let r = Frame.reader c.fd in
  let rec go () =
    (* the short read deadline is a liveness poll: it lets the thread
       notice [closed] set by {!close} even when the peer is silent *)
    match Frame.read ~timeout:0.25 r with
    | `Eof | `Garbage _ -> ()
    | `Timeout -> if with_lock c.m (fun () -> c.closed) then () else go ()
    | `Frame payload ->
      let arrival = Unix.gettimeofday () in
      (match Proto.parse_server_msg_attrs payload with
       | Error _ -> ()
       | Ok (msg, attrs) ->
         (match (c.tracer, attrs.Proto.a_trace, attrs.Proto.a_ts) with
          | Some tr, Some (trace_id, span_id), Some ts ->
            (* transit span; the sender clock may be skewed against ours,
               so clamp the start to arrival — a skewed link span shrinks
               to zero rather than going negative *)
            let start = Float.min ts arrival in
            ignore
              (Trace.record ~ctx:{ Trace.trace_id; span_id } tr ~name:"link"
                 ~start ~dur:(arrival -. start) ())
          | _ -> ());
         with_lock c.m (fun () ->
             if Proto.is_event msg then c.events <- c.events @ [ (msg, attrs, arrival) ]
             else c.resps <- c.resps @ [ msg ]);
         go ())
  in
  (try go () with _ -> ());
  with_lock c.m (fun () -> c.closed <- true)

exception Connect_timed_out

let connect ?(timeout = 30.) ?(connect_timeout = 10.) ?(sink = Sink.noop) ?tracer
    addr =
  (* a server closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let domain =
      match addr with Server.Tcp _ -> Unix.PF_INET | Server.Unix_sock _ -> Unix.PF_UNIX
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    (try
       (* non-blocking connect bounded by [connect_timeout]: a black-hole
          peer (dropped SYNs, a partitioned proxy) must not hang forever *)
       Unix.set_nonblock fd;
       (try Unix.connect fd (Server.sockaddr_of addr) with
        | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
          ->
          let _, ws, _ = Unix.select [] [ fd ] [] connect_timeout in
          if ws = [] then raise Connect_timed_out;
          (match Unix.getsockopt_error fd with
           | None -> ()
           | Some err -> raise (Unix.Unix_error (err, "connect", ""))));
       Unix.clear_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd ->
    let c =
      { fd; timeout; sink; tracer; m = Mutex.create (); wm = Mutex.create ();
        resps = []; events = []; closed = false; reader = None }
    in
    c.reader <- Some (Thread.create (fun () -> reader_loop c) ());
    Ok c
  | exception Connect_timed_out ->
    Error (Timeout (Printf.sprintf "connect: no answer in %gs" connect_timeout))
  | exception Unix.Unix_error (err, fn, _) ->
    Error (Closed (Printf.sprintf "%s: %s" fn (Unix.error_message err)))

(* Poll for the next queued response.  OCaml's [Condition] has no timed
   wait, so a short sleep loop stands in; the granularity only matters on
   the failure path. *)
let await_resp c =
  let deadline = Unix.gettimeofday () +. c.timeout in
  let rec go () =
    let r =
      with_lock c.m (fun () ->
          match c.resps with
          | msg :: rest ->
            c.resps <- rest;
            Some (Ok msg)
          | [] -> if c.closed then Some (Error (Closed "by peer")) else None)
    in
    match r with
    | Some r -> r
    | None ->
      if Unix.gettimeofday () > deadline then
        Error (Timeout (Printf.sprintf "no response in %gs" c.timeout))
      else begin
        Thread.delay 0.002;
        go ()
      end
  in
  go ()

let request_attrs c attrs req =
  with_lock c.wm (fun () ->
      if with_lock c.m (fun () -> c.closed) then Error (Closed "by peer")
      else begin
        (* stamp the send clock as late as possible, so the link span
           measures wire transit rather than queueing in this process *)
        let attrs =
          if attrs.Proto.a_trace <> None then
            { attrs with Proto.a_ts = Some (Unix.gettimeofday ()) }
          else attrs
        in
        match Frame.write c.fd (Proto.render_request_attrs attrs req) with
        | Ok () -> await_resp c
        | Error e -> Error (Protocol (Frame.error_to_string e))
        | exception Unix.Unix_error (err, fn, _) ->
          Error (Closed (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
      end)

let request c req = request_attrs c Proto.no_attrs req
let hello c = request c (Proto.Hello Proto.version)

(* Delivery accounting at the moment the consumer takes the event: the
   deliver span covers local queue wait (arrival → pull); end-to-end uses
   the sender's [ts=] stamp, meaningful when peers share a clock (same
   host, or NTP-close — same caveat as the link spans). *)
let note_delivery c (_, attrs, arrival) =
  let now = Unix.gettimeofday () in
  if Sink.active c.sink then begin
    Sink.observe c.sink "moq_stage_deliver_ns" ((now -. arrival) *. 1e9);
    match attrs.Proto.a_ts with
    | Some ts -> Sink.observe c.sink "moq_client_e2e_seconds" (Float.max 0. (now -. ts))
    | None -> ()
  end;
  match (c.tracer, attrs.Proto.a_trace) with
  | Some tr, Some (trace_id, span_id) ->
    ignore
      (Trace.record ~ctx:{ Trace.trace_id; span_id } tr ~name:"deliver"
         ~start:arrival ~dur:(now -. arrival) ())
  | _ -> ()

let next_event_full ?timeout c =
  let timeout = match timeout with Some s -> s | None -> c.timeout in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let r =
      with_lock c.m (fun () ->
          match c.events with
          | ev :: rest ->
            c.events <- rest;
            Some (Some ev)
          | [] -> if c.closed then Some None else None)
    in
    match r with
    | Some (Some ev) ->
      note_delivery c ev;
      Some ev
    | Some None -> None
    | None ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Thread.delay 0.002;
        go ()
      end
  in
  go ()

let next_event ?timeout c =
  match next_event_full ?timeout c with
  | Some (msg, _, _) -> Some msg
  | None -> None

let drain_events c =
  let evs =
    with_lock c.m (fun () ->
        let evs = c.events in
        c.events <- [];
        evs)
  in
  List.iter (note_delivery c) evs;
  List.map (fun (msg, _, _) -> msg) evs

let is_open c = not (with_lock c.m (fun () -> c.closed))

let close c =
  let was_closed = with_lock c.m (fun () -> c.closed) in
  with_lock c.m (fun () -> c.closed <- true);
  if not was_closed then (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (match c.reader with Some th -> (try Thread.join th with _ -> ()) | None -> ());
  c.reader <- None;
  (try Unix.close c.fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Resilient layer: reconnect, failover, resume.                       *)

type client = t

let cconnect = connect
let creq = request
let cclose = close
let cnext_event = next_event
let cis_open = is_open

module Resilient = struct
  module Canon = Proto.Canon

  type conf = {
    addrs : Server.addr list;
    timeout : float;
    connect_timeout : float;
    retry_max : int;
    backoff_base : float;
    backoff_max : float;
    seed : int;
    resync_max : int;
    sink : Sink.t;
  }

  let conf ?(timeout = 30.) ?(connect_timeout = 5.) ?(retry_max = 8)
      ?(backoff_base = 0.05) ?(backoff_max = 2.) ?(seed = 0) ?(resync_max = 4)
      ?(sink = Sink.noop) addrs =
    { addrs; timeout; connect_timeout; retry_max; backoff_base; backoff_max;
      seed; resync_max; sink }

  type rsub = {
    kind : Proto.sub_kind;
    lo : Q.t;
    hi : Q.t;
    mutable server_sub : int;  (* id on the current connection; -1 = none *)
    mutable canon : Canon.t;
    mutable replay : Proto.piece list;
        (* after a resume: the canonical prefix already delivered, to be
           byte-compared and suppressed as the new stream replays it *)
    mutable delivered_rev : Proto.piece list;
    mutable ready : Proto.piece list;  (* deliverable, oldest first *)
    mutable complete : bool;
    mutable expected_seq : int;
    mutable dropped : (int * int) list;  (* unacked dropped ranges, newest first *)
    mutable resyncs : int;
  }

  type t = {
    conf : conf;
    rng : Faults.t;  (* deterministic backoff jitter *)
    mutable c : client option;
    mutable addr_ix : int;
    mutable ever_connected : bool;
    mutable sub : rsub option;
    stats : (string, int) Hashtbl.t;
  }

  let bump t k n =
    Sink.count t.conf.sink k n;
    Hashtbl.replace t.stats k
      (n + Option.value ~default:0 (Hashtbl.find_opt t.stats k))

  let stats t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.stats []
    |> List.sort compare

  (* One reconnect campaign: walk the address ring starting at the last
     good address, capped exponential backoff with deterministic jitter
     between rounds. *)
  let try_connect t =
    let n = List.length t.conf.addrs in
    let rec rounds attempt =
      if attempt > t.conf.retry_max then
        Error (Closed (Printf.sprintf "no server reachable after %d retries"
                         t.conf.retry_max))
      else begin
        if attempt > 0 then begin
          bump t "moq_client_retry_attempts_total" 1;
          let base = t.conf.backoff_base *. (2. ** float_of_int (attempt - 1)) in
          let capped = Float.min t.conf.backoff_max base in
          let jitter = float_of_int (Faults.int t.rng 1000) /. 1000. in
          Thread.delay (capped *. (0.5 +. (0.5 *. jitter)))
        end;
        let rec walk k =
          if k >= n then None
          else begin
            let ix = (t.addr_ix + k) mod n in
            let addr = List.nth t.conf.addrs ix in
            match
              cconnect ~timeout:t.conf.timeout
                ~connect_timeout:t.conf.connect_timeout ~sink:t.conf.sink addr
            with
            | Ok c ->
              (match creq c (Proto.Hello Proto.version) with
               | Ok (Proto.R_hello _) -> Some (c, ix)
               | Ok _ | Error _ ->
                 cclose c;
                 walk (k + 1))
            | Error _ -> walk (k + 1)
          end
        in
        match walk 0 with
        | Some (c, ix) ->
          if t.ever_connected then begin
            bump t "moq_client_reconnects_total" 1;
            if ix <> t.addr_ix then bump t "moq_client_failovers_total" 1
          end;
          t.ever_connected <- true;
          t.addr_ix <- ix;
          t.c <- Some c;
          Ok c
        | None -> rounds (attempt + 1)
      end
    in
    rounds 0

  let resume_sub t c =
    match t.sub with
    | None -> Ok ()
    | Some s when s.complete -> Ok ()
    | Some s ->
      (match creq c (Proto.Subscribe { kind = s.kind; lo = s.lo; hi = s.hi }) with
       | Ok (Proto.R_subscribe { sub }) ->
         s.server_sub <- sub;
         s.canon <- Canon.create ();
         s.replay <- List.rev s.delivered_rev;
         s.expected_seq <- 0;
         Ok ()
       | Ok (Proto.R_err { code; msg }) -> Error (Protocol (code ^ ": " ^ msg))
       | Ok _ -> Error (Protocol "unexpected response to SUBSCRIBE")
       | Error e -> Error e)

  let ensure t =
    match t.c with
    | Some c when cis_open c -> Ok c
    | prev ->
      (match prev with
       | Some c ->
         cclose c;
         t.c <- None
       | None -> ());
      (match try_connect t with
       | Error e -> Error e
       | Ok c ->
         (match resume_sub t c with
          | Ok () -> Ok c
          | Error e ->
            cclose c;
            t.c <- None;
            Error e))

  let connect conf =
    let t =
      { conf; rng = Faults.create ~seed:conf.seed; c = None; addr_ix = 0;
        ever_connected = false; sub = None; stats = Hashtbl.create 8 }
    in
    match ensure t with Ok _ -> Ok t | Error e -> Error e

  let rec request_retry t req attempt =
    match ensure t with
    | Error e -> Error e
    | Ok c ->
      (match creq c req with
       | Ok msg -> Ok msg
       | Error (Closed _) when attempt < t.conf.retry_max ->
         cclose c;
         t.c <- None;
         request_retry t req (attempt + 1)
       | Error e -> Error e)

  let request t req = request_retry t req 0

  let subscribe t ~kind ~lo ~hi =
    match t.sub with
    | Some _ -> Error (Protocol "one subscription per resilient client")
    | None ->
      let s =
        { kind; lo; hi; server_sub = -1; canon = Canon.create (); replay = [];
          delivered_rev = []; ready = []; complete = false; expected_seq = 0;
          dropped = []; resyncs = 0 }
      in
      t.sub <- Some s;
      let rec go attempt =
        match ensure t with
        | Error e ->
          t.sub <- None;
          Error e
        | Ok c ->
          if s.server_sub >= 0 then Ok () (* [resume_sub] already issued it *)
          else begin
            match creq c (Proto.Subscribe { kind; lo; hi }) with
            | Ok (Proto.R_subscribe { sub }) ->
              s.server_sub <- sub;
              Ok ()
            | Ok (Proto.R_err { code; msg }) ->
              t.sub <- None;
              Error (Protocol (code ^ ": " ^ msg))
            | Ok _ ->
              t.sub <- None;
              Error (Protocol "unexpected response to SUBSCRIBE")
            | Error (Closed _) when attempt < t.conf.retry_max ->
              cclose c;
              t.c <- None;
              go (attempt + 1)
            | Error e ->
              t.sub <- None;
              Error e
          end
      in
      go 0

  (* Hand one canonical piece to the consumer — unless we are replaying
     after a resume, in which case it must byte-match the already
     delivered prefix and is suppressed. *)
  let deliver t s p =
    match s.replay with
    | expected :: rest ->
      if p = expected then begin
        s.replay <- rest;
        bump t "moq_client_suppressed_duplicates_total" 1
      end
      else begin
        (* the rebuilt stream disagrees with what we already delivered:
           count it and surface the new piece rather than hide it *)
        bump t "moq_client_divergence_total" 1;
        s.replay <- [];
        s.delivered_rev <- p :: s.delivered_rev;
        s.ready <- s.ready @ [ p ]
      end
    | [] ->
      s.delivered_rev <- p :: s.delivered_rev;
      s.ready <- s.ready @ [ p ]

  (* A backpressure drop punched a hole in the stream.  Retire the torn
     subscription and restart it from [lo], deduping the replay — the
     gap heals as long as the server still covers the window. *)
  let resync t s c =
    s.resyncs <- s.resyncs + 1;
    bump t "moq_client_resyncs_total" 1;
    ignore (creq c (Proto.Unsubscribe s.server_sub));
    match creq c (Proto.Subscribe { kind = s.kind; lo = s.lo; hi = s.hi }) with
    | Ok (Proto.R_subscribe { sub }) ->
      s.server_sub <- sub;
      s.canon <- Canon.create ();
      s.replay <- List.rev s.delivered_rev;
      s.expected_seq <- 0;
      true
    | Ok _ | Error _ -> false

  let record_drop s ~from_seq ~to_seq =
    s.dropped <- (from_seq, to_seq) :: s.dropped;
    s.expected_seq <- to_seq + 1

  let pump_once t s =
    match t.c with
    | None -> `Conn_lost
    | Some c ->
      (match cnext_event ~timeout:0.05 c with
       | None -> if cis_open c then `Idle else `Conn_lost
       | Some (Proto.E_pieces { sub; first_seq; pieces }) when sub = s.server_sub
         ->
         if first_seq <> s.expected_seq then
           (* an unannounced gap: account for it like a reported drop *)
           record_drop s ~from_seq:s.expected_seq ~to_seq:(first_seq - 1);
         s.expected_seq <- first_seq + List.length pieces;
         List.iter (fun p -> List.iter (deliver t s) (Canon.push s.canon p)) pieces;
         `Progress
       | Some (Proto.E_dropped { sub; from_seq; to_seq }) when sub = s.server_sub
         ->
         if s.resyncs < t.conf.resync_max then begin
           if not (resync t s c) then begin
             cclose c;
             t.c <- None
           end
         end
         else record_drop s ~from_seq ~to_seq;
         `Progress
       | Some (Proto.E_complete { sub }) when sub = s.server_sub ->
         List.iter (deliver t s) (Canon.flush s.canon);
         s.complete <- true;
         `Progress
       | Some (Proto.E_shutdown _) ->
         cclose c;
         t.c <- None;
         `Conn_lost
       | Some _ -> `Progress (* a retired sub's stragglers, repl chatter *))

  let pull ?timeout t =
    match t.sub with
    | None -> `Error (Protocol "no subscription")
    | Some s ->
      let timeout = Option.value timeout ~default:t.conf.timeout in
      let deadline = Unix.gettimeofday () +. timeout in
      let rec go () =
        match s.ready with
        | p :: rest ->
          s.ready <- rest;
          `Piece p
        | [] ->
          if s.complete then `Complete
          else if Unix.gettimeofday () > deadline then
            `Error (Timeout (Printf.sprintf "no event in %gs" timeout))
          else begin
            match pump_once t s with
            | `Progress | `Idle -> go ()
            | `Conn_lost ->
              (match ensure t with Ok _ -> go () | Error e -> `Error e)
          end
      in
      go ()

  let delivered t =
    match t.sub with None -> [] | Some s -> List.rev s.delivered_rev

  let dropped_ranges t =
    match t.sub with None -> [] | Some s -> List.rev s.dropped

  let close t =
    (match t.c with Some c -> cclose c | None -> ());
    t.c <- None
end
