(** The moq serving layer: a concurrent MOD server.

    One process owns a durable {!Moq_durable.Store} (sanitizer → WAL →
    checkpoint) and serves the moqp protocol (see {!Moq_proto.Proto}) over
    TCP or a Unix-domain socket.  Updates are globally serialized through
    the store — the paper's chronological-update discipline (Definition 3)
    becomes the admission rule of the wire — and fan out to every live
    subscription, each backed by its own {!Moq_core.Monitor} instance.
    Support-change pieces are pushed to subscribers the moment they become
    {e valid} in the sense of Definition 4 (no future update can change
    them), with per-subscription sequence numbers.

    Flow control: each session has a bounded output queue.  Above the soft
    limit, consecutive event frames for the same subscription are coalesced
    into one frame; above the hard limit, the oldest event frame is dropped
    and replaced by an [EVENT-DROPPED] marker covering its sequence range —
    subscribers always see a complete accounting, never silent loss.
    Responses are never dropped.

    Crash safety: every accepted update is on the WAL before its effects
    are observable, so a SIGKILL'd server recovers to the exact same MOD
    via {!Moq_durable.Store.recover}.  A graceful stop ([SIGTERM] →
    {!request_stop}) drains every push queue, notifies clients with
    [SHUTDOWN], checkpoints and exits.

    Replication: with [config.follow] set, the server runs as a {e read
    replica} — it bootstraps from the primary's shipped snapshot (or
    resumes as a delta of its own last applied position), tails the
    primary's commit stream over the moqp [REPL-*] messages, applies each
    update through its own store (so followers are durable too), serves
    queries and subscriptions locally, and byte-compares its serialized
    state against the primary's periodic digests ([moq_repl_divergence_total]
    stays zero iff replication is exact).  Followers reject [UPDATE] with
    [read-only], and can themselves be followed (chaining).  When a
    follower must re-bootstrap from a fresh snapshot, local subscription
    sessions are closed with [SHUTDOWN repl-reset] — their timelines were
    built over the replaced history. *)

module DB := Moq_mod.Mobdb

type addr = Tcp of string * int | Unix_sock of string

val pp_addr : Format.formatter -> addr -> unit

val addr_of_string : string -> (addr, string) result
(** ["tcp:HOST:PORT"], ["unix:PATH"], or a bare [PORT] (loopback TCP). *)

val sockaddr_of : addr -> Unix.sockaddr
(** Resolves host names; raises [Not_found] on resolution failure. *)

type config = {
  listen : addr;
  store_dir : string;
  init_db : DB.t option;
      (** seeds the store when [store_dir] has no checkpoint; required then *)
  fsync : bool;
  checkpoint_every : int;
  max_sessions : int;
  max_subs_per_session : int;
  queue_soft : int;  (** coalesce event frames above this queue length *)
  queue_hwm : int;  (** drop oldest event frames above this length *)
  idle_timeout : float;  (** seconds without a request; 0 disables *)
  writer_delay : float;  (** test knob: sleep per written frame; 0 in production *)
  follow : addr option;
      (** replicate from this primary — run as a read-only follower *)
  repl_digest_every : int;
      (** ship a state digest to followers every this many streamed
          updates; 0 disables (default 64) *)
  repl_backlog : int;
      (** commits kept in memory for delta resumes (default 4096) *)
  trace : bool;
      (** propagate [trace=] contexts and record pipeline spans; stage
          histograms are always collected regardless (default false) *)
  slow_query_ms : float;
      (** a query or per-subscription monitor step slower than this
          auto-captures its explain record into the structured log (and
          the flight recorder) and counts [moq_slowq_total]; 0 disables
          (default 250) *)
  hot_objects : bool;
      (** per-object sweep-cost attribution inside subscription monitors,
          exported as [moq_hot_*] gauges on STATS (default true) *)
  flight_capacity : int;
      (** flight-recorder ring size in events; 0 disables (default 2048) *)
}

val default_config : listen:addr -> store_dir:string -> config

type t

val start : ?registry:Moq_obs.Registry.t -> config -> (t, string) result
(** Bind, recover-or-init the store, spawn the accept loop.  All
    [moq_server_*] metrics (and the store/sanitizer instrumentation) land
    in [registry]. *)

val run : t -> unit
(** Block until the server has stopped (via {!request_stop}/{!stop}). *)

val bound_addr : t -> addr
(** Actual address — resolves port 0 to the kernel-chosen port. *)

val registry : t -> Moq_obs.Registry.t

val tracer : t -> Moq_obs.Trace.t
(** The server's span ring: pipeline stages (link, dispatch, queue, apply)
    recorded when [config.trace] is set. *)

val recorder : t -> Moq_obs.Recorder.t
(** The always-on flight recorder: updates admitted/rejected, session and
    subscription lifecycle, backpressure drops, repl digests, slow
    queries.  Dumped automatically on {!crash} and on a replication
    digest divergence; see {!flight_dump} for explicit triggers. *)

val flight_dump : t -> reason:string -> (string, string) result
(** Dump the flight-recorder ring to a timestamped JSON file in the store
    directory (next to the WAL, so [moq blackbox] can correlate the two);
    returns the path.  Used by the CLI's SIGQUIT handler. *)

val db_snapshot : t -> DB.t
(** Current MOD (persistent value, safe to use concurrently). *)

val clock : t -> Moq_numeric.Rat.t

val is_follower : t -> bool

val repl_connected : t -> bool
(** Follower: is the tail link to the primary currently up? *)

val repl_position : t -> (int * int) option
(** Follower: last applied primary [(epoch, seq)]. *)

val repl_divergence : t -> int
(** Follower: digest checks that did not match the primary's bytes. *)

val repl_seq : t -> int
(** Commits in this server's own epoch (what it serves to followers). *)

val shutdown_repl_link : t -> unit
(** Follower: cut the live tail connection to the primary (a fault
    lever for tests); the replication loop reconnects by itself. *)

val request_stop : t -> unit
(** Initiate a graceful drain; safe to call from a signal handler. *)

val stop : t -> unit
(** {!request_stop} then wait for the drain to finish. *)

val crash : t -> unit
(** Abrupt termination for tests/benchmarks: close every descriptor, skip
    the final checkpoint and store close — exactly what SIGKILL leaves
    behind.  The store directory is then ready for
    {!Moq_durable.Store.recover}. *)
