module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module T = Moq_mod.Trajectory
module DB = Moq_mod.Mobdb
module U = Moq_mod.Update
module IO = Moq_mod.Mod_io
module Oid = Moq_mod.Oid
module Store = Moq_durable.Store
module Sanitize = Moq_durable.Sanitize
module Crc32 = Moq_durable.Crc32
module Registry = Moq_obs.Registry
module Sink = Moq_obs.Sink
module Export = Moq_obs.Export
module Trace = Moq_obs.Trace
module Log = Moq_obs.Log
module Json = Moq_obs.Json
module Recorder = Moq_obs.Recorder
module Explain = Moq_core.Explain
module Frame = Moq_proto.Frame
module Proto = Moq_proto.Proto

module BX = Moq_core.Backend.Exact
module Agg = Moq_agg.Agg
module AggX = Moq_agg.Agg.Make (BX)
module Mon = Moq_core.Monitor.Make (BX)
module Knn = Moq_core.Knn.Make (BX)
module Range = Moq_core.Range_query.Make (BX)
module Fof = Moq_core.Fof
module Gdist = Moq_core.Gdist
module TL = Mon.TL

(* ---------------------------------------------------------------- *)
(* Addresses                                                         *)

type addr = Tcp of string * int | Unix_sock of string

let pp_addr fmt = function
  | Tcp (h, p) -> Format.fprintf fmt "tcp:%s:%d" h p
  | Unix_sock p -> Format.fprintf fmt "unix:%s" p

let addr_of_string s =
  match String.split_on_char ':' s with
  | [ "unix"; "" ] -> Error "unix socket path missing"
  | "unix" :: rest -> Ok (Unix_sock (String.concat ":" rest))
  | [ "tcp"; host; port ] ->
    (match int_of_string_opt port with
     | Some p when p >= 0 -> Ok (Tcp (host, p))
     | _ -> Error ("bad port: " ^ port))
  | [ port ] ->
    (match int_of_string_opt port with
     | Some p when p >= 0 -> Ok (Tcp ("127.0.0.1", p))
     | _ -> Error ("bad listen address: " ^ s))
  | _ -> Error ("bad listen address: " ^ s)

let inet_addr host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

let sockaddr_of = function
  | Tcp (host, port) -> Unix.ADDR_INET (inet_addr host, port)
  | Unix_sock path -> Unix.ADDR_UNIX path

(* ---------------------------------------------------------------- *)
(* Configuration                                                     *)

type config = {
  listen : addr;
  store_dir : string;
  init_db : DB.t option;
  fsync : bool;
  checkpoint_every : int;
  max_sessions : int;
  max_subs_per_session : int;
  queue_soft : int;
  queue_hwm : int;
  idle_timeout : float;
  writer_delay : float;
  follow : addr option;  (* replicate from this primary: run as a follower *)
  repl_digest_every : int;  (* digest cadence in streamed updates; 0 = never *)
  repl_backlog : int;  (* in-memory update ring for delta resumes *)
  trace : bool;  (* propagate trace contexts across moqp + record spans *)
  slow_query_ms : float;  (* queries/monitor steps over this auto-capture
                             their explain record into the log; 0 disables *)
  hot_objects : bool;  (* per-object sweep-cost attribution in sub monitors *)
  flight_capacity : int;  (* flight-recorder ring size; 0 disables *)
}

let default_config ~listen ~store_dir =
  { listen; store_dir; init_db = None; fsync = true; checkpoint_every = 256;
    max_sessions = 64; max_subs_per_session = 8; queue_soft = 64;
    queue_hwm = 256; idle_timeout = 300.; writer_delay = 0.; follow = None;
    repl_digest_every = 64; repl_backlog = 4096; trace = false;
    slow_query_ms = 250.; hot_objects = true; flight_capacity = 2048 }

(* ---------------------------------------------------------------- *)
(* Sessions and subscriptions                                        *)

type out_item =
  | O_msg of string  (* rendered response or notice; never dropped *)
  | O_event of {
      sub : int;
      first_seq : int;
      mutable count : int;
      mutable pieces_rev : Proto.piece list;  (* newest first *)
      mutable trace : (int * int) option;  (* latest contributing trace ctx *)
      enq : float;  (* queue-entry wall time: the queue-wait span start *)
    }
  | O_frame of {
      msg : string;  (* rendered single-line repl head; never dropped *)
      trace : (int * int) option;
      wm : bool;  (* stamp the commit watermark at pop time *)
      enq : float;
    }
  | O_dropped of { sub : int; mutable from_seq : int; to_seq : int }

(* What a subscription evaluates: a monitor streaming validated timeline
   pieces, or a continuous POI aggregation streaming finalized window
   rows.  Both ride the same EVENT sequence numbering and backpressure
   machinery. *)
type sub_body = S_mon of Mon.t | S_agg of AggX.Cont.t

type sub = {
  sub_id : int;
  sub_hi : Q.t;
  sub_shard : int * int;
      (* home cell of the subscription's reference trajectory under the
         affinity grid — the routing key a shard-affine worker pool
         (ROADMAP item 2) partitions subscriptions by *)
  body : sub_body;
  mutable next_seq : int;
}

(* Per-subscription fanout accounting: who costs the output path the most.
   Kept outside [sub] (in a table keyed by sub id) because writer threads
   attribute bytes after the subscription may already be retired. *)
type subacct = {
  mutable sa_bytes : int;   (* event payload bytes written for this sub *)
  mutable sa_events : int;  (* event frames written *)
  mutable sa_qpeak : int;   (* worst session queue depth seen at enqueue *)
  mutable sa_drops : int;   (* events dropped under backpressure *)
}

type session = {
  sid : int;
  fd : Unix.file_descr;
  qm : Mutex.t;
  qc : Condition.t;
  mutable outq : out_item list;  (* oldest first *)
  mutable qlen : int;
  mutable closing : bool;  (* writer drains the queue, then shuts down *)
  mutable dead : bool;  (* abrupt teardown: writer exits immediately *)
  mutable repl : bool;  (* a follower tailing us via REPL-HELLO *)
  mutable subs : sub list;
  mutable writer : Thread.t option;
}

type t = {
  cfg : config;
  reg : Registry.t;
  sink : Sink.t;
  tracer : Trace.t;
  recorder : Recorder.t;
  acct_m : Mutex.t;  (* leaf lock guarding [subacct]; never held across others *)
  subacct : (int, subacct) Hashtbl.t;
  mutable store : Store.t;  (* replaced wholesale on a follower snapshot reset *)
  mutable san : Sanitize.t;
  dim : int;
  lock : Mutex.t;  (* guards store, sanitizer, sessions list, subscriptions,
                      and all repl_* state *)
  mutable sessions : session list;
  mutable next_sid : int;
  mutable next_sub : int;
  mutable stopping : bool;
  mutable crashed : bool;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable readers : Thread.t list;
  (* Replication.  [epoch] names one incarnation of this server's update
     history; [repl_seq] counts commits within it.  The backlog ring keeps
     the last [cfg.repl_backlog] commits for delta resumes. *)
  mutable epoch : int;
  mutable repl_seq : int;
  repl_backlog_q : (int * U.t) Queue.t;
  mutable repl_since_digest : int;
  (* Follower side *)
  mutable repl_pos : (int * int) option;  (* last applied primary (epoch, seq) *)
  (* Freshness: the highest primary head seq seen on a watermark, and the
     receiver-local wall time at which we first fell behind it.  Lag is
     never a cross-host clock comparison — [lag_anchor] is our own clock. *)
  mutable lag_target : int;
  mutable lag_anchor : float;
  mutable repl_connected : bool;
  mutable repl_divergence : int;
  mutable repl_fd : Unix.file_descr option;
  mutable repl_thread : Thread.t option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let tctx (trace_id, span_id) = { Trace.trace_id; span_id }

let record t kind fields = Recorder.record t.recorder ~kind ~fields ()

(* Leaf-locked per-subscription accounting; creates the row on first use. *)
let acct t sub_id f =
  with_lock t.acct_m (fun () ->
      let a =
        match Hashtbl.find_opt t.subacct sub_id with
        | Some a -> a
        | None ->
          let a = { sa_bytes = 0; sa_events = 0; sa_qpeak = 0; sa_drops = 0 } in
          Hashtbl.replace t.subacct sub_id a;
          a
      in
      f a)

(* Dump the flight-recorder ring next to the WAL so `moq blackbox` can
   correlate the two without being told where either lives. *)
let flight_dump t ~reason =
  let r = Recorder.dump t.recorder ~dir:t.cfg.store_dir ~reason in
  (match r with
   | Ok path ->
     Log.warn
       ~fields:[ ("path", Json.Str path); ("reason", Json.Str reason) ]
       "flight recorder dumped"
   | Error e ->
     Log.error
       ~fields:[ ("reason", Json.Str reason); ("error", Json.Str e) ]
       "flight recorder dump failed");
  r

(* Time [f], observe the duration under [ns_metric], and — when a trace
   context is being propagated — record it as a depth-1 stage span. *)
let stage_obs t ?trace ~name ~ns_metric f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Sink.observe t.sink ns_metric (dt *. 1e9);
  (match trace with
   | Some c when t.cfg.trace ->
     ignore (Trace.record ~depth:1 ~ctx:(tctx c) t.tracer ~name ~start:t0 ~dur:dt ())
   | _ -> ());
  r

(* ---------------------------------------------------------------- *)
(* Output queue: enqueue, coalesce, drop                             *)

let render_item = function
  | O_msg s -> s
  | O_frame f -> f.msg
  | O_event e ->
    Proto.render_server_msg
      (Proto.E_pieces
         { sub = e.sub; first_seq = e.first_seq; pieces = List.rev e.pieces_rev })
  | O_dropped d ->
    Proto.render_server_msg
      (Proto.E_dropped { sub = d.sub; from_seq = d.from_seq; to_seq = d.to_seq })

(* Merge adjacent EVENT-DROPPED markers for the same subscription.  The
   queue holds each subscription's sequence numbers in order with nothing
   between adjacent items, so adjacent markers are always contiguous. *)
let rec compact = function
  | O_dropped a :: O_dropped b :: rest when a.sub = b.sub && b.from_seq = a.to_seq + 1 ->
    b.from_seq <- a.from_seq;
    compact (O_dropped b :: rest)
  | x :: rest -> x :: compact rest
  | [] -> []

(* qm held.  Replace the oldest event frame with a drop marker; [compact]
   then merges it into a neighbouring marker where possible.  Returns
   [false] when the queue holds no event frame left to drop. *)
let drop_oldest_event t sess =
  let rec go = function
    | [] -> None
    | O_event e :: rest ->
      Sink.count t.sink "moq_server_dropped_events_total" e.count;
      acct t e.sub (fun a -> a.sa_drops <- a.sa_drops + e.count);
      record t "backpressure_drop"
        [ ("sub", Json.Int e.sub); ("count", Json.Int e.count) ];
      Some
        (O_dropped
           { sub = e.sub; from_seq = e.first_seq; to_seq = e.first_seq + e.count - 1 }
        :: rest)
    | x :: rest -> Option.map (fun rest' -> x :: rest') (go rest)
  in
  match go sess.outq with
  | None -> false
  | Some q ->
    let q = compact q in
    sess.outq <- q;
    sess.qlen <- List.length q;
    true

(* qm held. *)
let enqueue_item t sess item =
  if not (sess.closing || sess.dead) then begin
    let coalesced =
      match item, (if sess.qlen >= t.cfg.queue_soft then List.rev sess.outq else []) with
      | O_event e, O_event last :: _
        when last.sub = e.sub && last.first_seq + last.count = e.first_seq ->
        last.pieces_rev <- e.pieces_rev @ last.pieces_rev;
        last.count <- last.count + e.count;
        (match e.trace with Some _ as tr -> last.trace <- tr | None -> ());
        Sink.count t.sink "moq_server_coalesced_events_total" 1;
        true
      | _ -> false
    in
    if not coalesced then begin
      sess.outq <- sess.outq @ [ item ];
      sess.qlen <- sess.qlen + 1
    end;
    while sess.qlen > t.cfg.queue_hwm && drop_oldest_event t sess do () done;
    (match item with
     | O_event e ->
       acct t e.sub (fun a -> if sess.qlen > a.sa_qpeak then a.sa_qpeak <- sess.qlen)
     | _ -> ());
    Sink.observe t.sink "moq_server_push_queue_depth" (float_of_int sess.qlen);
    Condition.signal sess.qc
  end

let enqueue t sess item = with_lock sess.qm (fun () -> enqueue_item t sess item)
let enqueue_msg t sess msg = enqueue t sess (O_msg (Proto.render_server_msg msg))

(* ---------------------------------------------------------------- *)
(* Timeline pieces -> wire                                           *)

let wire_instant i = Format.asprintf "%a" BX.pp_instant i

let wire_piece = function
  | TL.At (i, s) -> Proto.P_at (wire_instant i, Oid.Set.elements s)
  | TL.Span (a, b, s) -> Proto.P_span (wire_instant a, wire_instant b, Oid.Set.elements s)

(* ---------------------------------------------------------------- *)
(* Subscriptions                                                     *)

(* The reference trajectory for origin-relative distances must be alive
   before any queried interval; a very early start covers every sane use. *)
let gamma_start = Q.of_int (-1_000_000_000)

let origin_gamma dim = T.stationary ~start:gamma_start (Qvec.zero dim)

let gdist_of_kind t = function
  | Proto.Sub_knn _ | Proto.Sub_range _ | Proto.Sub_gdist (Proto.Euclidean_sq, _) ->
    Gdist.euclidean_sq ~gamma:(origin_gamma t.dim)
  | Proto.Sub_gdist (Proto.Speed_sq, _) -> Gdist.speed_sq
  | Proto.Sub_agg _ ->
    (* never monitored through a single g-distance: the subscribe path
       builds one monitor per POI inside Agg.Cont instead *)
    invalid_arg "agg subscriptions have no single g-distance"

(* Shard affinity.  Subscriptions and updates both hash to a cell of one
   coarse affinity grid; an update whose object moves in (or next to) a
   subscription's cell is shard-local to it.  Today this only drives the
   moq_server_shard_{local,remote}_updates_total counters — the measured
   case for the shard-affine worker pool of ROADMAP item 2, which will
   route each update to the worker owning its cell. *)
let affinity_cell = 256.0

let affinity_shard_of_pos pos =
  let x = Q.to_float (Qvec.get pos 0) in
  let y = if Qvec.dim pos >= 2 then Q.to_float (Qvec.get pos 1) else 0.0 in
  Moq_index.Grid.cell_of ~cell:affinity_cell (x, y)

(* The cell of the subscription's reference trajectory when the
   subscription starts.  Speed-relative subscriptions have no spatial
   anchor; they share the origin cell. *)
let affinity_shard_of_sub t kind ~lo =
  match kind with
  | Proto.Sub_gdist (Proto.Speed_sq, _) -> affinity_shard_of_pos (Qvec.zero t.dim)
  | Proto.Sub_agg { pois; _ } ->
    (* anchored at the first POI; a multi-POI subscription has no single
       home cell, but the first is as good a routing key as any *)
    (match pois with
     | (x :: rest) :: _ ->
       let y = match rest with y :: _ -> y | [] -> Q.zero in
       Moq_index.Grid.cell_of ~cell:affinity_cell (Q.to_float x, Q.to_float y)
     | _ -> affinity_shard_of_pos (Qvec.zero t.dim))
  | Proto.Sub_knn _ | Proto.Sub_range _ | Proto.Sub_gdist (Proto.Euclidean_sq, _) ->
    let gamma = origin_gamma t.dim in
    let at = Q.max lo gamma_start in
    if T.defined_at gamma at then affinity_shard_of_pos (T.position_exn gamma at)
    else affinity_shard_of_pos (Qvec.zero t.dim)

(* The cell the updated object lands in, from the post-commit MOD.  None
   when the update leaves the object undefined at its own timestamp (a
   deletion). *)
let affinity_shard_of_update t u =
  match DB.find (Store.db t.store) (U.oid u) with
  | None -> None
  | Some tr ->
    let at = U.time u in
    if T.defined_at tr at then Some (affinity_shard_of_pos (T.position_exn tr at))
    else None

let shard_local (ai, aj) (bi, bj) = abs (ai - bi) <= 1 && abs (aj - bj) <= 1

let query_of_kind kind ~lo ~hi =
  let interval = Fof.Interval.closed lo hi in
  match kind with
  | Proto.Sub_knn k -> if k = 1 then Fof.nearest_q ~interval else Fof.knn_q ~k ~interval
  | Proto.Sub_range b | Proto.Sub_gdist (_, b) -> Fof.within_q ~bound:b ~interval
  | Proto.Sub_agg _ -> invalid_arg "agg subscriptions have no single query"

let wire_row (r : Agg.row) =
  Proto.P_agg
    { poi = r.Agg.r_poi; widx = r.Agg.r_widx; w_lo = Q.to_string r.Agg.r_lo;
      w_hi = Q.to_string r.Agg.r_hi; count = r.Agg.r_count;
      density = r.Agg.r_density; distinct = r.Agg.r_distinct }

(* t.lock held.  Enqueue wire pieces for [sub] with consecutive sequence
   numbers. *)
let push_wire ?trace t sess sub wire =
  if wire <> [] then begin
    let n = List.length wire in
    Sink.count t.sink "moq_server_pushed_events_total" n;
    let t0 = Unix.gettimeofday () in
    enqueue t sess
      (O_event { sub = sub.sub_id; first_seq = sub.next_seq; count = n;
                 pieces_rev = List.rev wire; trace; enq = t0 });
    Sink.observe t.sink "moq_stage_enqueue_ns" ((Unix.gettimeofday () -. t0) *. 1e9);
    record t "sub_pieces" [ ("sub", Json.Int sub.sub_id); ("n", Json.Int n) ];
    sub.next_seq <- sub.next_seq + n
  end

(* t.lock held.  Push finalized aggregation rows, accounting the fanout
   per POI: each POI's row count lands in the flight recorder, the total
   in moq_agg_rows_pushed_total. *)
let push_agg_rows ?trace t sess sub (rows : Agg.row list) =
  if rows <> [] then begin
    Sink.count t.sink "moq_agg_rows_pushed_total" (List.length rows);
    let per_poi = Hashtbl.create 8 in
    List.iter
      (fun (r : Agg.row) ->
        let c = Option.value ~default:0 (Hashtbl.find_opt per_poi r.Agg.r_poi) in
        Hashtbl.replace per_poi r.Agg.r_poi (c + 1))
      rows;
    Hashtbl.iter
      (fun poi n ->
        record t "agg_rows"
          [ ("sub", Json.Int sub.sub_id); ("poi", Json.Int poi);
            ("n", Json.Int n) ])
      per_poi;
    push_wire ?trace t sess sub (List.map wire_row rows)
  end

(* t.lock held.  Push freshly validated pieces (or finalized aggregation
   rows) of [sub] to its session; retire the subscription once its whole
   interval is valid. *)
let push_fresh ?trace t sess sub =
  (match sub.body with
   | S_mon mon -> push_wire ?trace t sess sub (List.map wire_piece (Mon.drain_valid mon))
   | S_agg agg -> push_agg_rows ?trace t sess sub (AggX.Cont.drain_rows agg));
  let clk =
    match sub.body with S_mon mon -> Mon.clock mon | S_agg agg -> AggX.Cont.clock agg
  in
  if Q.compare clk sub.sub_hi >= 0 then begin
    (match sub.body with
     | S_mon _ -> ()
     | S_agg agg ->
       (* the per-POI monitors never close their trailing spans on their
          own; finalize them so the last windows' rows flush before the
          completion marker *)
       ignore (AggX.Cont.finalize agg);
       push_agg_rows ?trace t sess sub (AggX.Cont.drain_rows agg));
    Sink.count t.sink "moq_server_completed_subscriptions_total" 1;
    record t "sub_complete" [ ("sub", Json.Int sub.sub_id) ];
    enqueue_msg t sess (Proto.E_complete { sub = sub.sub_id });
    sess.subs <- List.filter (fun s -> s.sub_id <> sub.sub_id) sess.subs
  end

(* t.lock held: apply one accepted update to every live subscription. *)
let fanout ?trace t u =
  let ushard = affinity_shard_of_update t u in
  List.iter
    (fun sess ->
      List.iter
        (fun sub ->
          (match ushard with
           | Some c when shard_local c sub.sub_shard ->
             Sink.count t.sink "moq_server_shard_local_updates_total" 1
           | Some _ | None ->
             Sink.count t.sink "moq_server_shard_remote_updates_total" 1);
          let t0 = Unix.gettimeofday () in
          (match
             match sub.body with
             | S_mon mon -> Mon.apply_update mon u
             | S_agg agg -> AggX.Cont.apply_update agg u
           with
           | Ok () -> ()
           | Error _ -> Sink.count t.sink "moq_server_fanout_errors_total" 1);
          let dt_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
          Sink.observe t.sink "moq_stage_monitor_ns" (dt_ms *. 1e6);
          if t.cfg.slow_query_ms > 0. && dt_ms > t.cfg.slow_query_ms then begin
            Sink.count t.sink "moq_slowq_total" 1;
            Sink.count t.sink "moq_slowq_monitor_total" 1;
            let fields =
              [ ("source", Json.Str "monitor"); ("sub", Json.Int sub.sub_id);
                ("ms", Json.Float dt_ms); ("oid", Json.Int (U.oid u)) ]
            in
            record t "slow_monitor_step" fields;
            Log.warn ~fields "slow monitor step"
          end;
          push_fresh ?trace t sess sub)
        sess.subs)
    t.sessions

(* qm must NOT be held.  Replication frames are O_msg (never dropped), so
   a follower that stops draining would grow the queue without bound —
   kick it instead; it resumes from its last applied position. *)
let enqueue_repl t sess item =
  let kick =
    with_lock sess.qm (fun () ->
        enqueue_item t sess item;
        if sess.qlen > 2 * t.cfg.queue_hwm then begin
          sess.dead <- true;
          Condition.broadcast sess.qc;
          true
        end
        else false)
  in
  if kick then begin
    Sink.count t.sink "moq_repl_kicked_followers_total" 1;
    Log.warn
      ~fields:[ ("session", Json.Int sess.sid) ]
      "follower not draining its repl stream; kicking";
    try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

(* t.lock held: one update has been appended to the store.  Fan it out to
   the live subscriptions, remember it in the delta-resume backlog, and
   ship it — plus a periodic state digest — to tailing followers. *)
let committed ?trace t u =
  (* exactly one record per store append, in WAL order (quarantine
     graduates included) — the invariant `moq blackbox` correlates on *)
  record t "update_admitted"
    [ ("oid", Json.Int (U.oid u)); ("tau", Json.Str (Q.to_string (U.time u))) ];
  stage_obs t ?trace ~name:"fanout" ~ns_metric:"moq_stage_fanout_ns" (fun () ->
      fanout ?trace t u);
  t.repl_seq <- t.repl_seq + 1;
  Queue.push (t.repl_seq, u) t.repl_backlog_q;
  while Queue.length t.repl_backlog_q > t.cfg.repl_backlog do
    ignore (Queue.pop t.repl_backlog_q)
  done;
  match List.filter (fun s -> s.repl) t.sessions with
  | [] -> ()
  | followers ->
    let msg =
      Proto.render_server_msg
        (Proto.E_repl_update { seq = t.repl_seq; dim = t.dim; u })
    in
    Sink.count t.sink "moq_repl_streamed_updates_total" (List.length followers);
    let enq = Unix.gettimeofday () in
    List.iter
      (fun sess -> enqueue_repl t sess (O_frame { msg; trace; wm = true; enq }))
      followers;
    t.repl_since_digest <- t.repl_since_digest + 1;
    if t.cfg.repl_digest_every > 0
       && t.repl_since_digest >= t.cfg.repl_digest_every
    then begin
      t.repl_since_digest <- 0;
      let payload = IO.db_to_string (Store.db t.store) in
      let dmsg =
        Proto.render_server_msg
          (Proto.E_repl_digest
             { clock = Store.clock t.store; bytes = String.length payload;
               crc = Crc32.to_hex (Crc32.string payload) })
      in
      Sink.count t.sink "moq_repl_digests_total" 1;
      record t "repl_digest_sent"
        [ ("clock", Json.Str (Q.to_string (Store.clock t.store))) ];
      let enq = Unix.gettimeofday () in
      List.iter
        (fun sess ->
          enqueue_repl t sess (O_frame { msg = dmsg; trace = None; wm = true; enq }))
        followers
    end

(* t.lock held.  The sanitizer → WAL pipeline: like {!Store.ingest}, but
   every applied update — including quarantine graduates — is fanned out to
   the live subscriptions. *)
let ingest_and_fanout ?trace t u =
  let try_apply ?trace u =
    match
      stage_obs t ?trace ~name:"sanitize" ~ns_metric:"moq_stage_sanitize_ns"
        (fun () -> Sanitize.classify t.san (Store.db t.store) u)
    with
    | Sanitize.Accepted _ as v ->
      (match
         stage_obs t ?trace ~name:"append" ~ns_metric:"moq_stage_store_append_ns"
           (fun () -> Store.append t.store u)
       with
       | Ok () -> committed ?trace t u
       | Error _ -> () (* unreachable: classified against this very db *));
      v
    | v -> v
  in
  let verdict = try_apply ?trace u in
  (match verdict with
   | Sanitize.Accepted _ ->
     let rec drain () =
       let held = Sanitize.take_quarantine t.san in
       if held <> [] then begin
         let progress =
           List.fold_left
             (fun acc (hu, _) ->
               match try_apply hu with Sanitize.Accepted _ -> true | _ -> acc)
             false held
         in
         if progress then drain ()
       end
     in
     drain ()
   | Sanitize.Rejected (r, _) ->
     record t "update_rejected"
       [ ("oid", Json.Int (U.oid u));
         ("reason", Json.Str (Format.asprintf "%a" Sanitize.pp_reason r)) ]
   | Sanitize.Quarantined (r, _) ->
     record t "update_quarantined"
       [ ("oid", Json.Int (U.oid u));
         ("reason", Json.Str (Format.asprintf "%a" Sanitize.pp_reason r)) ]);
  verdict

let verdict_wire = function
  | Sanitize.Accepted _ -> Proto.V_accepted
  | Sanitize.Rejected (r, _) ->
    Proto.V_rejected (Format.asprintf "%a" Sanitize.pp_reason r)
  | Sanitize.Quarantined (r, _) ->
    Proto.V_quarantined (Format.asprintf "%a" Sanitize.pp_reason r)

(* ---------------------------------------------------------------- *)
(* Request dispatch                                                  *)

let update_gauges t =
  Registry.set (Registry.gauge t.reg "moq_server_connections")
    (float_of_int (List.length t.sessions));
  Registry.set (Registry.gauge t.reg "moq_server_subscriptions")
    (float_of_int (List.fold_left (fun a s -> a + List.length s.subs) 0 t.sessions))

(* t.lock held.  Merge per-object sweep-cost attribution across every live
   subscription monitor and export the top-5 (plus their share of all
   attributed comparisons) as rank-indexed gauges; likewise the costliest
   subscriptions by fanout bytes.  Rank gauges left over from a previous
   publish simply go stale at their old values — readers key on the
   current ranks 0..4 only. *)
let publish_hot t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun sess ->
      List.iter
        (fun sub ->
          match sub.body with
          | S_agg _ -> ()
          | S_mon mon ->
            List.iter
              (fun (h : Mon.E.hot) ->
                let c, s =
                  match Hashtbl.find_opt tbl h.Mon.E.h_oid with
                  | Some cs -> cs
                  | None -> (0, 0)
                in
                Hashtbl.replace tbl h.Mon.E.h_oid
                  (c + h.Mon.E.h_comparisons, s + h.Mon.E.h_swaps))
              (Mon.hot_objects mon))
        sess.subs)
    t.sessions;
  let rows = Hashtbl.fold (fun oid (c, s) acc -> (oid, c, s) :: acc) tbl [] in
  let rows = List.sort (fun (_, c1, _) (_, c2, _) -> compare c2 c1) rows in
  let total = List.fold_left (fun a (_, c, _) -> a + c) 0 rows in
  let top = ref 0 in
  List.iteri
    (fun i (oid, c, s) ->
      if i < 5 then begin
        top := !top + c;
        Sink.set t.sink (Printf.sprintf "moq_hot_oid_%d" i) (float_of_int oid);
        Sink.set t.sink (Printf.sprintf "moq_hot_comparisons_%d" i)
          (float_of_int c);
        Sink.set t.sink (Printf.sprintf "moq_hot_swaps_%d" i) (float_of_int s)
      end)
    rows;
  if total > 0 then
    Sink.set t.sink "moq_hot_coverage_pct"
      (100. *. float_of_int !top /. float_of_int total);
  let subs =
    with_lock t.acct_m (fun () ->
        Hashtbl.fold
          (fun id a acc -> (id, a.sa_bytes, a.sa_qpeak) :: acc)
          t.subacct [])
  in
  let subs = List.sort (fun (_, b1, _) (_, b2, _) -> compare b2 b1) subs in
  List.iteri
    (fun i (id, bytes, qpeak) ->
      if i < 5 then begin
        Sink.set t.sink (Printf.sprintf "moq_hot_sub_id_%d" i) (float_of_int id);
        Sink.set t.sink (Printf.sprintf "moq_hot_sub_bytes_%d" i)
          (float_of_int bytes);
        Sink.set t.sink (Printf.sprintf "moq_hot_sub_queue_%d" i)
          (float_of_int qpeak)
      end)
    subs

let rpc_name = function
  | Proto.Hello _ -> "hello"
  | Proto.Update _ -> "update"
  | Proto.Subscribe _ -> "subscribe"
  | Proto.Unsubscribe _ -> "unsubscribe"
  | Proto.Query _ -> "query"
  | Proto.Stats _ -> "stats"
  | Proto.Ping -> "ping"
  | Proto.Bye -> "bye"
  | Proto.Repl_hello _ -> "repl_hello"  (* snake_case: this names a metric *)

(* The propagated trace ctx for a request, when tracing is on. *)
let req_trace t (attrs : Proto.attrs) = if t.cfg.trace then attrs.Proto.a_trace else None

(* Record the cross-process link span: the gap between the sender stamping
   [ts] at socket write and this process parsing the frame at [arrival].
   Sender and receiver clocks only meet here — on one host (the deployment
   this repo's tests exercise) the gap is exact; across hosts it inherits
   clock skew, which is why the lag gauges use watermarks instead. *)
let record_link t ?(name = "link") (attrs : Proto.attrs) ~arrival =
  match (req_trace t attrs, attrs.Proto.a_ts) with
  | Some c, Some ts ->
    let start = Float.min ts arrival in
    ignore
      (Trace.record ~ctx:(tctx c) t.tracer ~name ~start ~dur:(arrival -. start) ())
  | _ -> ()

(* Returns [false] when the session should close. *)
let dispatch t sess (req : Proto.request) (attrs : Proto.attrs) ~arrival =
  Sink.count t.sink "moq_server_rpcs_total" 1;
  Sink.time t.sink (Printf.sprintf "moq_server_rpc_%s_seconds" (rpc_name req))
  @@ fun () ->
  match req with
  | Proto.Hello v ->
    if v <> Proto.version then begin
      enqueue_msg t sess
        (Proto.R_err { code = "bad-version";
                       msg = Printf.sprintf "server speaks moqp %d" Proto.version });
      false
    end
    else begin
      let clock = with_lock t.lock (fun () -> Store.clock t.store) in
      enqueue_msg t sess (Proto.R_hello { session = sess.sid; dim = t.dim; clock });
      true
    end
  | Proto.Ping ->
    let clock = with_lock t.lock (fun () -> Store.clock t.store) in
    enqueue_msg t sess (Proto.R_pong { clock });
    true
  | Proto.Bye ->
    enqueue_msg t sess Proto.R_bye;
    false
  | Proto.Update u ->
    if t.cfg.follow <> None then begin
      (* a follower's state is the primary's; local writes would fork it *)
      enqueue_msg t sess
        (Proto.R_err { code = "read-only";
                       msg = "this server is a follower; send updates to the primary" });
      true
    end
    else begin
      let trace = req_trace t attrs in
      record_link t attrs ~arrival;
      let verdict = with_lock t.lock (fun () -> ingest_and_fanout ?trace t u) in
      let t_done = Unix.gettimeofday () in
      Sink.observe t.sink "moq_stage_ingest_ns" ((t_done -. arrival) *. 1e9);
      (match trace with
       | Some c ->
         ignore
           (Trace.record ~ctx:(tctx c) t.tracer ~name:"dispatch" ~start:arrival
              ~dur:(t_done -. arrival) ())
       | None -> ());
      enqueue_msg t sess (Proto.R_update (verdict_wire verdict));
      true
    end
  | Proto.Subscribe { kind; lo; hi } ->
    with_lock t.lock (fun () ->
        if List.length sess.subs >= t.cfg.max_subs_per_session then
          enqueue_msg t sess
            (Proto.R_err
               { code = "limit";
                 msg = Printf.sprintf "at most %d subscriptions per session"
                         t.cfg.max_subs_per_session })
        else begin
          let mk_body () =
            match kind with
            | Proto.Sub_agg { d; window; pois } ->
              let pois = List.map Qvec.of_list pois in
              let agg =
                AggX.Cont.create ~sink:t.sink ~db:(Store.db t.store) ~pois ~d
                  ~window ~lo ~hi ()
              in
              Sink.count t.sink "moq_agg_subscriptions_total" 1;
              S_agg agg
            | _ ->
              let gdist = gdist_of_kind t kind in
              let query = query_of_kind kind ~lo ~hi in
              S_mon
                (Mon.create ~sink:t.sink ~attr:t.cfg.hot_objects
                   ~db:(Store.db t.store) ~gdist ~query ())
          in
          match mk_body () with
          | body ->
            let sub_id = t.next_sub in
            t.next_sub <- t.next_sub + 1;
            let sub_shard = affinity_shard_of_sub t kind ~lo in
            let sub = { sub_id; sub_hi = hi; sub_shard; body; next_seq = 0 } in
            sess.subs <- sub :: sess.subs;
            Sink.count t.sink "moq_server_subscriptions_total" 1;
            let si, sj = sub_shard in
            (* distinct shards with a live subscription: the worker-pool
               size a shard-affine fanout would need right now *)
            let shards =
              List.sort_uniq compare
                (List.concat_map
                   (fun s -> List.map (fun su -> su.sub_shard) s.subs)
                   t.sessions)
            in
            Sink.set t.sink "moq_server_sub_shards"
              (float_of_int (List.length shards));
            record t "subscribe"
              [ ("sub", Json.Int sub_id); ("session", Json.Int sess.sid);
                ("shard_i", Json.Int si); ("shard_j", Json.Int sj) ];
            (* response first, then any already-valid prefix as events —
               same lock scope, so no update can interleave *)
            enqueue_msg t sess (Proto.R_subscribe { sub = sub_id });
            push_fresh t sess sub
          | exception (Invalid_argument m | Failure m) ->
            enqueue_msg t sess (Proto.R_err { code = "proto"; msg = m })
        end);
    true
  | Proto.Unsubscribe sub_id ->
    with_lock t.lock (fun () ->
        match List.find_opt (fun s -> s.sub_id = sub_id) sess.subs with
        | None ->
          enqueue_msg t sess
            (Proto.R_err { code = "unknown-sub"; msg = string_of_int sub_id })
        | Some sub ->
          sess.subs <- List.filter (fun s -> s.sub_id <> sub_id) sess.subs;
          let pieces =
            match sub.body with
            | S_mon mon -> List.map wire_piece (Mon.valid_timeline mon)
            | S_agg agg -> List.map wire_row (AggX.Cont.rows agg)
          in
          enqueue_msg t sess (Proto.R_unsubscribe { sub = sub_id; pieces }));
    true
  | Proto.Query { kind; lo; hi } ->
    record_link t attrs ~arrival;
    (* snapshot under the lock, sweep outside it: the MOD is persistent *)
    let db = with_lock t.lock (fun () -> Store.db t.store) in
    let gdist = Gdist.euclidean_sq ~gamma:(origin_gamma t.dim) in
    let cval name = Option.value ~default:0 (Registry.counter_value t.reg name) in
    let ev0 = cval "moq_sweep_events_total" in
    let cmp0 = cval "moq_sweep_comparisons_total" in
    let t0 = Unix.gettimeofday () in
    (* the explain report is only assembled when the run turns out slow;
       each arm returns the timeline plus a thunk that builds it *)
    let timeline, mk_explain =
      match kind with
      | Proto.Qk_knn k ->
        let r = Knn.run_obs ~sink:t.sink ~db ~gdist ~k ~lo ~hi in
        let s = r.Knn.stats in
        ( r.Knn.timeline,
          fun ~counters ~phases ->
            let sweep =
              { Explain.batches = s.Knn.E.batches; crossings = s.Knn.E.crossings;
                births = s.Knn.E.births; deaths = s.Knn.E.deaths;
                jumps = s.Knn.E.jumps; swaps = s.Knn.E.swaps;
                comparisons = s.Knn.E.comparisons;
                support_changes =
                  s.Knn.E.crossings + s.Knn.E.births + s.Knn.E.deaths }
            in
            let hot =
              List.map
                (fun (h : Knn.E.hot) ->
                  { Explain.oid = h.Knn.E.h_oid;
                    comparisons = h.Knn.E.h_comparisons;
                    swaps = h.Knn.E.h_swaps })
                r.Knn.hot
            in
            Explain.make ~kind:"knn"
              ~query:(Printf.sprintf "server query knn k=%d" k)
              ~backend:"exact" ~n_objects:(List.length (DB.objects db))
              ~lo:(Q.to_float lo) ~hi:(Q.to_float hi)
              ~timeline_pieces:(List.length r.Knn.timeline) ~sweep ~hot
              ~phases ~counters () )
      | Proto.Qk_range b ->
        let r = Range.run ~db ~gdist ~bound:b ~lo ~hi in
        let s = r.Range.stats in
        ( r.Range.timeline,
          fun ~counters ~phases ->
            let sweep =
              { Explain.batches = s.Range.E.batches;
                crossings = s.Range.E.crossings; births = s.Range.E.births;
                deaths = s.Range.E.deaths; jumps = s.Range.E.jumps;
                swaps = s.Range.E.swaps; comparisons = s.Range.E.comparisons;
                support_changes =
                  s.Range.E.crossings + s.Range.E.births + s.Range.E.deaths }
            in
            Explain.make ~kind:"range"
              ~query:(Printf.sprintf "server query range bound=%s" (Q.to_string b))
              ~backend:"exact" ~n_objects:(List.length (DB.objects db))
              ~lo:(Q.to_float lo) ~hi:(Q.to_float hi)
              ~timeline_pieces:(List.length r.Range.timeline) ~sweep
              ~phases ~counters () )
    in
    let dur_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    if t.cfg.slow_query_ms > 0. && dur_ms > t.cfg.slow_query_ms then begin
      Sink.count t.sink "moq_slowq_total" 1;
      Sink.count t.sink "moq_slowq_query_total" 1;
      (* counter deltas around the run stand in for a private registry:
         exact when this query ran alone, approximate under concurrency *)
      let counters =
        [ ("moq_sweep_events_total",
           float_of_int (cval "moq_sweep_events_total" - ev0));
          ("moq_sweep_comparisons_total",
           float_of_int (cval "moq_sweep_comparisons_total" - cmp0)) ]
      in
      let ex =
        mk_explain ~counters
          ~phases:[ { Explain.name = "run"; ns = dur_ms *. 1e6 } ]
      in
      let fields =
        [ ("source", Json.Str "query"); ("session", Json.Int sess.sid);
          ("ms", Json.Float dur_ms); ("explain", Explain.to_json ex) ]
      in
      record t "slow_query" fields;
      Log.warn ~fields "slow query"
    end;
    (match req_trace t attrs with
     | Some c ->
       let t_done = Unix.gettimeofday () in
       ignore
         (Trace.record ~ctx:(tctx c) t.tracer ~name:"query" ~start:arrival
            ~dur:(t_done -. arrival) ())
     | None -> ());
    enqueue_msg t sess (Proto.R_query (List.map wire_piece timeline));
    true
  | Proto.Stats fmt ->
    with_lock t.lock (fun () ->
        update_gauges t;
        publish_hot t);
    let body =
      match fmt with
      | `Json -> Export.json_string t.reg
      | `Prometheus -> Export.prometheus t.reg
    in
    enqueue_msg t sess (Proto.R_stats body);
    true
  | Proto.Repl_hello { version = v; since } ->
    if v <> Proto.version then begin
      enqueue_msg t sess
        (Proto.R_err { code = "bad-version";
                       msg = Printf.sprintf "server speaks moqp %d" Proto.version });
      false
    end
    else begin
      with_lock t.lock (fun () ->
          let seq = t.repl_seq in
          let clock = Store.clock t.store in
          (* a delta resume is honest only within our own epoch and while
             the backlog ring still covers the follower's gap *)
          let delta_from =
            match since with
            | Some (e, s) when e = t.epoch && s <= seq ->
              if s = seq then Some s
              else (
                match Queue.peek_opt t.repl_backlog_q with
                | Some (first, _) when first <= s + 1 -> Some s
                | Some _ | None -> None)
            | Some _ | None -> None
          in
          let snapshot =
            match delta_from with
            | Some _ ->
              Sink.count t.sink "moq_repl_delta_resumes_total" 1;
              None
            | None ->
              Sink.count t.sink "moq_repl_snapshots_total" 1;
              Some (IO.db_to_string (Store.db t.store))
          in
          sess.repl <- true;
          enqueue_msg t sess
            (Proto.R_repl_hello
               { dim = t.dim; clock; epoch = t.epoch; seq; snapshot });
          (* replay the backlog gap now, in the same lock scope, so no
             commit can interleave between the handshake and the stream *)
          match delta_from with
          | Some s ->
            let enq = Unix.gettimeofday () in
            Queue.iter
              (fun (q, u) ->
                if q > s then
                  enqueue_repl t sess
                    (O_frame
                       { msg =
                           Proto.render_server_msg
                             (Proto.E_repl_update { seq = q; dim = t.dim; u });
                         trace = None; wm = true; enq }))
              t.repl_backlog_q
          | None -> ());
      true
    end

(* ---------------------------------------------------------------- *)
(* Per-session threads                                               *)

let writer_loop t sess =
  let rec go () =
    Mutex.lock sess.qm;
    while sess.outq = [] && not sess.closing && not sess.dead do
      Condition.wait sess.qc sess.qm
    done;
    if sess.dead then Mutex.unlock sess.qm
    else
      match sess.outq with
      | [] ->
        (* closing with an empty queue: flush complete *)
        Mutex.unlock sess.qm;
        (try Unix.shutdown sess.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
      | item :: rest ->
        sess.outq <- rest;
        sess.qlen <- sess.qlen - 1;
        Mutex.unlock sess.qm;
        let now = Unix.gettimeofday () in
        let payload : string =
          match item with
          | O_event e ->
            Sink.observe t.sink "moq_stage_queue_ns" ((now -. e.enq) *. 1e9);
            let msg =
              Proto.E_pieces
                { sub = e.sub; first_seq = e.first_seq; pieces = List.rev e.pieces_rev }
            in
            (match e.trace with
             | Some c when t.cfg.trace ->
               ignore
                 (Trace.record ~ctx:(tctx c) t.tracer ~name:"queue" ~start:e.enq
                    ~dur:(now -. e.enq) ());
               Proto.render_server_msg_attrs
                 { Proto.no_attrs with Proto.a_trace = Some c; a_ts = Some now }
                 msg
             | _ -> Proto.render_server_msg msg)
          | O_frame f ->
            Sink.observe t.sink "moq_stage_queue_ns" ((now -. f.enq) *. 1e9);
            let trace = if t.cfg.trace then f.trace else None in
            (match trace with
             | Some c ->
               ignore
                 (Trace.record ~ctx:(tctx c) t.tracer ~name:"queue" ~start:f.enq
                    ~dur:(now -. f.enq) ())
             | None -> ());
            (* unsynchronized read of epoch/repl_seq: both advance
               monotonically, so a momentarily stale watermark can only
               understate the follower's lag *)
            let wm = if f.wm then Some (t.epoch, t.repl_seq) else None in
            f.msg
            ^ Proto.render_attrs
                { Proto.a_trace = trace;
                  a_ts = (if trace <> None then Some now else None);
                  a_wm = wm }
          | item -> render_item item
        in
        (match item with
         | O_event e ->
           acct t e.sub (fun a ->
               a.sa_bytes <- a.sa_bytes + String.length payload;
               a.sa_events <- a.sa_events + 1)
         | _ -> ());
        (match Frame.write sess.fd payload with
         | Ok () ->
           Sink.observe t.sink "moq_stage_write_ns"
             ((Unix.gettimeofday () -. now) *. 1e9);
           if t.cfg.writer_delay > 0. then Thread.delay t.cfg.writer_delay;
           go ()
         | Error e ->
           (* an unshippable (oversized) payload: substitute a protocol
              error so the peer learns why, then close the session rather
              than leave its response stream desynchronized *)
           Sink.count t.sink "moq_server_protocol_errors_total" 1;
           let subst =
             Proto.render_server_msg
               (Proto.R_err { code = "proto"; msg = Frame.error_to_string e })
           in
           (match Frame.write sess.fd subst with
            | Ok () | Error _ -> ()
            | exception Unix.Unix_error _ -> ());
           with_lock sess.qm (fun () -> sess.dead <- true);
           (try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
         | exception Unix.Unix_error _ ->
           with_lock sess.qm (fun () -> sess.dead <- true))
  in
  go ()

let teardown t sess =
  (* the reader owns teardown: stop the writer, close the descriptor,
     forget the session and its subscriptions *)
  with_lock sess.qm (fun () ->
      sess.closing <- true;
      Condition.broadcast sess.qc);
  (match sess.writer with Some th -> (try Thread.join th with _ -> ()) | None -> ());
  (try Unix.close sess.fd with Unix.Unix_error _ -> ());
  record t "session_close" [ ("session", Json.Int sess.sid) ];
  Log.debug ~fields:[ ("session", Json.Int sess.sid) ] "session closed";
  if not t.crashed then
    with_lock t.lock (fun () ->
        t.sessions <- List.filter (fun s -> s.sid <> sess.sid) t.sessions;
        update_gauges t)

let reader_loop t sess =
  let r = Frame.reader sess.fd in
  let timeout = if t.cfg.idle_timeout > 0. then Some t.cfg.idle_timeout else None in
  let rec go ~hello_done =
    match Frame.read ?timeout r with
    | `Eof -> ()
    | `Timeout ->
      Sink.count t.sink "moq_server_idle_timeouts_total" 1;
      enqueue_msg t sess
        (Proto.R_err { code = "idle-timeout";
                       msg = Printf.sprintf "no request in %g s" t.cfg.idle_timeout })
    | `Garbage g ->
      Sink.count t.sink "moq_server_protocol_errors_total" 1;
      enqueue_msg t sess
        (Proto.R_err { code = "proto"; msg = Frame.error_to_string g })
    | `Frame payload ->
      (match Proto.parse_request_attrs ~dim:t.dim payload with
       | Error e ->
         Sink.count t.sink "moq_server_protocol_errors_total" 1;
         enqueue_msg t sess (Proto.R_err { code = "proto"; msg = e });
         go ~hello_done
       | Ok (((Proto.Hello _ | Proto.Repl_hello _) as req), attrs) ->
         if dispatch t sess req attrs ~arrival:(Unix.gettimeofday ()) then
           go ~hello_done:true
       | Ok _ when not hello_done ->
         Sink.count t.sink "moq_server_protocol_errors_total" 1;
         enqueue_msg t sess (Proto.R_err { code = "proto"; msg = "HELLO first" });
         go ~hello_done
       | Ok (req, attrs) ->
         if dispatch t sess req attrs ~arrival:(Unix.gettimeofday ()) then
           go ~hello_done)
  in
  (try go ~hello_done:false with _ -> ());
  teardown t sess

(* ---------------------------------------------------------------- *)
(* Accept loop, start/stop                                           *)

let handle_accept t fd =
  Unix.set_close_on_exec fd;
  let admitted =
    with_lock t.lock (fun () ->
        if t.stopping || List.length t.sessions >= t.cfg.max_sessions then None
        else begin
          let sid = t.next_sid in
          t.next_sid <- t.next_sid + 1;
          let sess =
            { sid; fd; qm = Mutex.create (); qc = Condition.create (); outq = [];
              qlen = 0; closing = false; dead = false; repl = false; subs = [];
              writer = None }
          in
          t.sessions <- sess :: t.sessions;
          Sink.count t.sink "moq_server_sessions_total" 1;
          update_gauges t;
          Some sess
        end)
  in
  match admitted with
  | None ->
    Sink.count t.sink "moq_server_rejected_sessions_total" 1;
    Log.warn
      ~fields:
        [ ("reason", Json.Str (if t.stopping then "shutting-down" else "busy")) ]
      "session rejected";
    let msg =
      Proto.render_server_msg
        (Proto.R_err
           { code = (if t.stopping then "shutting-down" else "busy");
             msg =
               (if t.stopping then "server is draining"
                else Printf.sprintf "at most %d sessions" t.cfg.max_sessions) })
    in
    (match Frame.write fd msg with
     | Ok () | Error _ -> ()
     | exception Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | Some sess ->
    record t "session_open" [ ("session", Json.Int sess.sid) ];
    Log.debug ~fields:[ ("session", Json.Int sess.sid) ] "session accepted";
    sess.writer <- Some (Thread.create (fun () -> writer_loop t sess) ());
    let reader = Thread.create (fun () -> reader_loop t sess) () in
    with_lock t.lock (fun () -> t.readers <- reader :: t.readers)

let accept_loop t =
  let rec go () =
    if not t.stopping then begin
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.) with
      | rs, _, _ ->
        if List.mem t.wake_r rs then begin
          let b = Bytes.create 16 in
          try ignore (Unix.read t.wake_r b 0 16) with Unix.Unix_error _ -> ()
        end;
        if (not t.stopping) && List.mem t.listen_fd rs then begin
          match Unix.accept t.listen_fd with
          | fd, _ -> handle_accept t fd
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
        end;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
    end
  in
  (try go () with _ -> ());
  (* graceful drain — skipped entirely on crash *)
  if not t.crashed then begin
    let sessions = with_lock t.lock (fun () -> t.sessions) in
    List.iter
      (fun sess ->
        enqueue t sess
          (O_msg (Proto.render_server_msg (Proto.E_shutdown { reason = "draining" })));
        with_lock sess.qm (fun () ->
            sess.closing <- true;
            Condition.broadcast sess.qc);
        (* unblock a reader waiting for the next request *)
        try Unix.shutdown sess.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      sessions;
    let readers = with_lock t.lock (fun () -> t.readers) in
    List.iter (fun th -> try Thread.join th with _ -> ()) readers;
    with_lock t.lock (fun () ->
        Store.checkpoint_now t.store;
        Store.close t.store);
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.cfg.listen with
     | Unix_sock path -> (try Sys.remove path with Sys_error _ -> ())
     | Tcp _ -> ())
  end

(* ---------------------------------------------------------------- *)
(* Follower: bootstrap from the primary and tail its commit stream.  *)

let fresh_epoch () = int_of_float (Unix.gettimeofday () *. 1e6) land max_int

(* t.lock held.  Replace local state with the primary's shipped image.
   Local subscriptions were built over the old history, so their sessions
   are told to go away ([SHUTDOWN repl-reset]) and re-subscribe against
   the new one; chained followers are cut the same way and re-handshake,
   landing on a snapshot of our new epoch. *)
let snapshot_reset t db =
  Store.close t.store;
  t.store <-
    Store.init ~fsync:t.cfg.fsync ~checkpoint_every:t.cfg.checkpoint_every
      ~sink:t.sink ~dir:t.cfg.store_dir db;
  t.san <- Sanitize.create ~sink:t.sink ();
  t.epoch <- fresh_epoch ();
  t.repl_seq <- 0;
  Queue.clear t.repl_backlog_q;
  t.repl_since_digest <- 0;
  Sink.count t.sink "moq_repl_resets_total" 1;
  Log.info ~fields:[ ("epoch", Json.Int t.epoch) ]
    "snapshot reset: state replaced from primary image";
  List.iter
    (fun sess ->
      if sess.repl || sess.subs <> [] then begin
        sess.subs <- [];
        enqueue t sess
          (O_msg
             (Proto.render_server_msg (Proto.E_shutdown { reason = "repl-reset" })));
        with_lock sess.qm (fun () ->
            sess.closing <- true;
            Condition.broadcast sess.qc);
        try Unix.shutdown sess.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ()
      end)
    t.sessions

(* t.lock held.  Refresh the freshness gauges from a commit watermark:
   [head] is the primary's head seq as carried on the last repl frame.
   Lag-in-updates is the watermark/applied delta; lag-in-ms is measured
   against the receiver-local instant we first fell behind — no cross-host
   clock comparison is ever involved. *)
let note_lag t ~head =
  let applied = match t.repl_pos with Some (_, s) -> s | None -> 0 in
  let now = Unix.gettimeofday () in
  if head > applied then begin
    if head > t.lag_target then begin
      if t.lag_target <= applied then t.lag_anchor <- now;
      t.lag_target <- head
    end;
    Sink.set t.sink "moq_repl_lag_updates" (float_of_int (head - applied));
    Sink.set t.sink "moq_repl_lag_ms" ((now -. t.lag_anchor) *. 1000.)
  end
  else begin
    t.lag_target <- applied;
    Sink.set t.sink "moq_repl_lag_updates" 0.;
    Sink.set t.sink "moq_repl_lag_ms" 0.
  end

(* One replication session over [fd]: handshake, apply the bootstrap
   snapshot or resume as a delta, then pump the commit stream.  Returns
   [true] when the handshake succeeded (resets the reconnect backoff). *)
let repl_tail t fd =
  let hello =
    Proto.render_request
      (Proto.Repl_hello { version = Proto.version; since = t.repl_pos })
  in
  match Frame.write fd hello with
  | Error _ -> false
  | exception Unix.Unix_error _ -> false
  | Ok () ->
    let rd = Frame.reader fd in
    let rec read_frame () =
      match Frame.read ~timeout:0.25 rd with
      | `Timeout -> if t.stopping then None else read_frame ()
      | `Eof | `Garbage _ -> None
      | `Frame p -> Some p
    in
    let rec await_hello () =
      match read_frame () with
      | None -> None
      | Some p ->
        (match Proto.parse_server_msg p with
         | Ok (Proto.R_repl_hello { dim; clock = _; epoch; seq; snapshot }) ->
           Some (Ok (dim, epoch, seq, snapshot))
         | Ok (Proto.R_err { code; msg }) -> Some (Error (code ^ ": " ^ msg))
         | Ok _ | Error _ -> await_hello ())
    in
    (match await_hello () with
     | None | Some (Error _) -> false
     | Some (Ok (dim, epoch, seq, snapshot)) ->
       if dim <> t.dim then begin
         Sink.count t.sink "moq_repl_dim_mismatch_total" 1;
         false
       end
       else begin
         let bootstrapped =
           with_lock t.lock (fun () ->
               match snapshot with
               | None -> true
               | Some image ->
                 (match IO.db_of_string image with
                  | Error _ -> false
                  | Ok db when DB.dim db <> t.dim -> false
                  | Ok db ->
                    snapshot_reset t db;
                    true))
         in
         if not bootstrapped then false
         else begin
           with_lock t.lock (fun () ->
               (* on a snapshot the image embodies state through [seq]; on a
                  delta our own position stands — the head seq in the reply
                  may be ahead of us, and the backlog replay covers the gap *)
               (match snapshot, t.repl_pos with
                | Some _, _ | None, None -> t.repl_pos <- Some (epoch, seq)
                | None, Some (_, s) ->
                  (* a delta is only granted within our epoch *)
                  t.repl_pos <- Some (epoch, s));
               t.repl_connected <- true;
               (* the handshake names the primary's head: seed the lag
                  gauges so a resume shows its backlog immediately *)
               note_lag t ~head:seq);
           Log.info
             ~fields:
               [ ("epoch", Json.Int epoch); ("seq", Json.Int seq);
                 ("mode", Json.Str (if snapshot = None then "delta" else "snapshot")) ]
             "replication stream connected";
           let rec pump () =
             match read_frame () with
             | None -> ()
             | Some p ->
               (match Proto.parse_server_msg_attrs p with
                | Ok (Proto.E_repl_update { seq = useq; dim = _; u }, attrs) ->
                  let arrival = Unix.gettimeofday () in
                  record_link t attrs ~arrival;
                  let trace = req_trace t attrs in
                  let contiguous =
                    with_lock t.lock (fun () ->
                        let last =
                          match t.repl_pos with Some (_, s) -> s | None -> -1
                        in
                        let r =
                          if useq <= last then true (* resume replay overlap *)
                          else if useq = last + 1 then begin
                            (match Store.append t.store u with
                             | Ok () -> committed ?trace t u
                             | Error _ ->
                               (* the primary accepted it; refusing it here is
                                  itself a divergence signal *)
                               Sink.count t.sink "moq_repl_apply_errors_total" 1);
                            t.repl_pos <- Some (epoch, useq);
                            true
                          end
                          else begin
                            (* a hole in the commit stream: the link delivered
                               frames out of order (a scrambling network, not
                               the primary).  Applying past the hole would lose
                               an update forever; drop the session instead and
                               delta-resume from our last applied position *)
                            Sink.count t.sink "moq_repl_stream_gaps_total" 1;
                            Log.warn
                              ~fields:
                                [ ("expected", Json.Int (last + 1));
                                  ("got", Json.Int useq) ]
                              "replication stream gap; dropping session to resume";
                            false
                          end
                        in
                        (* the frame's watermark names the primary's head at
                           send time — the freshness reference *)
                        (match attrs.Proto.a_wm with
                         | Some (we, head) when we = epoch -> note_lag t ~head
                         | _ -> note_lag t ~head:useq);
                        r)
                  in
                  let t_done = Unix.gettimeofday () in
                  Sink.observe t.sink "moq_stage_follower_apply_ns"
                    ((t_done -. arrival) *. 1e9);
                  (match trace with
                   | Some c ->
                     ignore
                       (Trace.record ~ctx:(tctx c) t.tracer ~name:"apply"
                          ~start:arrival ~dur:(t_done -. arrival) ())
                   | None -> ());
                  if contiguous then pump ()
                | Ok (Proto.E_repl_digest { clock; bytes; crc }, attrs) ->
                  with_lock t.lock (fun () ->
                      (match attrs.Proto.a_wm with
                       | Some (we, head) when we = epoch -> note_lag t ~head
                       | _ -> ());
                      (* the stream is ordered, so at the digest's clock our
                         state must serialize to the primary's exact bytes *)
                      if Q.compare (Store.clock t.store) clock = 0 then begin
                        Sink.count t.sink "moq_repl_digest_checks_total" 1;
                        let payload = IO.db_to_string (Store.db t.store) in
                        if String.length payload <> bytes
                           || Crc32.to_hex (Crc32.string payload) <> crc
                        then begin
                          t.repl_divergence <- t.repl_divergence + 1;
                          Sink.count t.sink "moq_repl_divergence_total" 1;
                          Log.error
                            ~fields:
                              [ ("clock", Json.Str (Q.to_string clock));
                                ("expected_bytes", Json.Int bytes);
                                ("got_bytes", Json.Int (String.length payload)) ]
                            "replica state diverges from primary digest";
                          (* the audit-violation analogue of a crash: the
                             evidence is the recent event history, so dump
                             it while it is still in the ring *)
                          record t "repl_divergence"
                            [ ("clock", Json.Str (Q.to_string clock)) ];
                          ignore (flight_dump t ~reason:"repl-divergence")
                        end
                      end);
                  pump ()
                | Ok (Proto.E_shutdown _, _) -> ()
                | Ok _ | Error _ -> pump ())
           in
           pump ();
           true
         end
       end)

let repl_loop t paddr =
  let backoff = ref 0.05 in
  let rec session () =
    if not t.stopping then begin
      match
        let domain =
          match paddr with Tcp _ -> Unix.PF_INET | Unix_sock _ -> Unix.PF_UNIX
        in
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec fd;
        (try Unix.connect fd (sockaddr_of paddr)
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
      with
      | exception Unix.Unix_error _ -> retry ()
      | fd ->
        t.repl_fd <- Some fd;
        Sink.count t.sink "moq_repl_connects_total" 1;
        let ok = (try repl_tail t fd with _ -> false) in
        t.repl_fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        with_lock t.lock (fun () -> t.repl_connected <- false);
        if not t.stopping then
          Log.info
            ~fields:[ ("handshake_ok", Json.Bool ok) ]
            "replication stream disconnected; reconnecting";
        if ok then backoff := 0.05;
        retry ()
    end
  and retry () =
    if not t.stopping then begin
      Thread.delay !backoff;
      backoff := Float.min 2. (!backoff *. 2.);
      session ()
    end
  in
  session ()

(* ---------------------------------------------------------------- *)

let start ?registry cfg =
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let sink = Sink.of_registry reg in
  let store_r =
    if Sys.file_exists (Filename.concat cfg.store_dir "checkpoint.mod") then
      match Store.open_ ~fsync:cfg.fsync ~checkpoint_every:cfg.checkpoint_every ~sink
              ~dir:cfg.store_dir () with
      | Ok (store, _) -> Ok store
      | Error e -> Error e
    else
      match cfg.init_db with
      | Some db ->
        Ok (Store.init ~fsync:cfg.fsync ~checkpoint_every:cfg.checkpoint_every ~sink
              ~dir:cfg.store_dir db)
      | None -> Error (cfg.store_dir ^ ": no checkpoint and no initial database")
  in
  match store_r with
  | Error e -> Error e
  | Ok store ->
    (match
       let domain =
         match cfg.listen with Tcp _ -> Unix.PF_INET | Unix_sock _ -> Unix.PF_UNIX
       in
       let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
       Unix.set_close_on_exec fd;
       (match cfg.listen with
        | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
        | Unix_sock path -> if Sys.file_exists path then Sys.remove path);
       Unix.bind fd (sockaddr_of cfg.listen);
       Unix.listen fd 64;
       fd
     with
     | listen_fd ->
       let wake_r, wake_w = Unix.pipe ~cloexec:true () in
       let san = Sanitize.create ~sink () in
       let tracer =
         Trace.create ~capacity:1024
           ~host:(match cfg.follow with Some _ -> "follower" | None -> "primary")
           ()
       in
       let t =
         { cfg; reg; sink; store; san; tracer; dim = Store.dim store;
           recorder = Recorder.create ~capacity:cfg.flight_capacity ();
           acct_m = Mutex.create (); subacct = Hashtbl.create 64;
           lock = Mutex.create ();
           sessions = []; next_sid = 1; next_sub = 1; stopping = false;
           crashed = false; listen_fd; wake_r; wake_w; accept_thread = None;
           readers = []; epoch = fresh_epoch (); repl_seq = 0;
           repl_backlog_q = Queue.create (); repl_since_digest = 0;
           repl_pos = None; repl_connected = false; repl_divergence = 0;
           lag_target = 0; lag_anchor = 0.;
           repl_fd = None; repl_thread = None }
       in
       update_gauges t;
       (* register the load-bearing counters at zero so a scrape (or `moq
          top`) before the first event still sees them *)
       Sink.count sink "moq_server_rpcs_total" 0;
       Sink.count sink "moq_server_dropped_events_total" 0;
       Sink.count sink "moq_slowq_total" 0;
       Sink.count sink "moq_agg_subscriptions_total" 0;
       Sink.count sink "moq_agg_rows_pushed_total" 0;
       if cfg.follow <> None then begin
         (* same for the freshness gauges before the first repl frame *)
         Sink.set sink "moq_repl_lag_updates" 0.;
         Sink.set sink "moq_repl_lag_ms" 0.
       end;
       t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
       (match cfg.follow with
        | Some paddr ->
          t.repl_thread <- Some (Thread.create (fun () -> repl_loop t paddr) ())
        | None -> ());
       Ok t
     | exception Unix.Unix_error (err, fn, arg) ->
       Store.close store;
       Error (Printf.sprintf "%s: %s (%s)" fn (Unix.error_message err) arg))

let run t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  match t.repl_thread with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ()

let bound_addr t =
  match t.cfg.listen, Unix.getsockname t.listen_fd with
  | Unix_sock p, _ -> Unix_sock p
  | Tcp (h, _), Unix.ADDR_INET (_, port) -> Tcp (h, port)
  | a, _ -> a

let registry t = t.reg
let tracer t = t.tracer
let recorder t = t.recorder
let db_snapshot t = with_lock t.lock (fun () -> Store.db t.store)
let clock t = with_lock t.lock (fun () -> Store.clock t.store)
let is_follower t = t.cfg.follow <> None
let repl_connected t = with_lock t.lock (fun () -> t.repl_connected)
let repl_position t = with_lock t.lock (fun () -> t.repl_pos)
let repl_divergence t = with_lock t.lock (fun () -> t.repl_divergence)
let repl_seq t = with_lock t.lock (fun () -> t.repl_seq)

let shutdown_repl_link t =
  match t.repl_fd with
  | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ()

let request_stop t =
  t.stopping <- true;
  shutdown_repl_link t;
  try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1) with Unix.Unix_error _ -> ()

let stop t =
  request_stop t;
  run t

let crash t =
  t.crashed <- true;
  t.stopping <- true;
  ignore (flight_dump t ~reason:"crash");
  shutdown_repl_link t;
  (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
   with Unix.Unix_error _ -> ());
  let sessions = with_lock t.lock (fun () -> t.sessions) in
  List.iter
    (fun sess ->
      with_lock sess.qm (fun () ->
          sess.dead <- true;
          Condition.broadcast sess.qc);
      (* shutdown, not close: the reader owns the close (in its teardown)
         and a thread blocked in read(2) is only unblocked by shutdown —
         closing here would race the recycled fd number against a later
         connection *)
      try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    sessions;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.listen with
   | Unix_sock path -> (try Sys.remove path with Sys_error _ -> ())
   | Tcp _ -> ());
  let readers = with_lock t.lock (fun () -> t.readers) in
  List.iter (fun th -> try Thread.join th with _ -> ()) readers;
  run t
