(** A uniform-grid spatial index over 2-d float points.

    Stands in for the R*-tree of Song–Roussopoulos [26] (DESIGN.md,
    substitutions): the baseline's behaviour under study is its {e re-search
    protocol}, not the index flavour, and a grid supplies the same
    range-search API. *)

type t

val build : cell:float -> (Moq_mod.Oid.t * (float * float)) list -> t
(** @raise Invalid_argument if [cell <= 0]. *)

val range : t -> center:float * float -> radius:float -> (Moq_mod.Oid.t * float) list
(** Objects within [radius] of [center], with their distances (unsorted). *)

val nearest_k : t -> center:float * float -> k:int -> (Moq_mod.Oid.t * float) list
(** The [k] nearest objects, ascending by (distance, oid) — found by
    growing the search radius ring by ring, exactly the range re-search
    loop of [26].  The oid tie-break makes the order canonical: duplicate
    positions, equidistant points and points on cell boundaries agree with
    a naive scan element for element.  Returns all objects (still sorted)
    when [k] exceeds the population; [[]] when [k <= 0]. *)

val size : t -> int
