module Oid = Moq_mod.Oid

type t = {
  cell : float;
  buckets : (int * int, (Oid.t * (float * float)) list) Hashtbl.t;
  count : int;
}

let key t (x, y) = (int_of_float (Float.floor (x /. t)), int_of_float (Float.floor (y /. t)))

let build ~cell points =
  if cell <= 0.0 then invalid_arg "Grid_index.build: cell <= 0";
  let buckets = Hashtbl.create (max 16 (List.length points)) in
  List.iter
    (fun (o, p) ->
      let k = key cell p in
      Hashtbl.replace buckets k ((o, p) :: (Option.value ~default:[] (Hashtbl.find_opt buckets k))))
    points;
  { cell; buckets; count = List.length points }

let size t = t.count

let dist (x1, y1) (x2, y2) = Float.hypot (x1 -. x2) (y1 -. y2)

let range t ~center ~radius =
  let cx, cy = key t.cell center in
  let r_cells = 1 + int_of_float (Float.ceil (radius /. t.cell)) in
  let acc = ref [] in
  let scan pts =
    List.iter
      (fun (o, p) ->
        let d = dist center p in
        if d <= radius then acc := (o, d) :: !acc)
      pts
  in
  let side = (2 * r_cells) + 1 in
  (* When the scan rectangle has more cells than the index has occupied
     buckets (a radius that doubled past the data), walking the occupied
     buckets is strictly cheaper than walking the rectangle. *)
  if side > 4096 || side * side > Hashtbl.length t.buckets then
    Hashtbl.iter
      (fun (i, j) pts ->
        if abs (i - cx) <= r_cells && abs (j - cy) <= r_cells then scan pts)
      t.buckets
  else
    for i = cx - r_cells to cx + r_cells do
      for j = cy - r_cells to cy + r_cells do
        match Hashtbl.find_opt t.buckets (i, j) with
        | None -> ()
        | Some pts -> scan pts
      done
    done;
  !acc

(* Ascending by (distance, oid): the oid tie-break makes the answer a
   function of the point set alone — duplicate positions and exact
   distance ties come back in one canonical order, so the index agrees
   with a naive scan element for element. *)
let by_dist_oid (o1, a) (o2, b) =
  match Float.compare a b with 0 -> Oid.compare o1 o2 | c -> c

let nearest_k t ~center ~k =
  if t.count = 0 || k <= 0 then []
  else begin
    (* grow the radius until at least k objects fall in range *)
    let rec grow radius =
      let found = range t ~center ~radius in
      if List.length found >= min k t.count then found else grow (2.0 *. radius)
    in
    let found = grow t.cell in
    let sorted = List.sort by_dist_oid found in
    List.filteri (fun i _ -> i < k) sorted
  end
