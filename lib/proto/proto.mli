(** The moq wire protocol, version 1 ("moqp 1").

    Every frame (see {!Frame}) carries one message.  A message payload is
    line-oriented: the first line is the message head (space-separated
    tokens), optional further lines carry timeline pieces.  Numbers travel
    as exact rationals ({!Moq_numeric.Rat} syntax); sweep instants — which
    may be algebraic — travel as their deterministic pretty-printed form,
    percent-encoded into a single token, so two peers can compare timelines
    bit-for-bit without an algebraic-number parser.

    Client requests:
    {v
    HELLO moqp 1
    UPDATE new 3 7 1 0 5 5        (Mod_io update-line syntax)
    SUBSCRIBE knn 2 0 100
    SUBSCRIBE range 50 0 100
    SUBSCRIBE gdist-threshold speed-sq 9 0 100
    SUBSCRIBE agg 5 10 2 0 0 40 40 0 100
    UNSUBSCRIBE 1
    QUERY knn 2 0 40 | QUERY range 50 0 40
    STATS json | STATS prometheus
    PING
    BYE
    v}

    Server messages are either responses (head starts with [OK] or [ERR];
    exactly one per request, in order) or asynchronous events ([EVENT],
    [EVENT-DROPPED], [EVENT-COMPLETE], [SHUTDOWN]).  Each subscription's
    event pieces carry consecutive sequence numbers from 0; a
    backpressure drop is reported as an [EVENT-DROPPED] covering the lost
    range, so a subscriber can always account for every sequence number.

    Replication ("REPL-*"): a follower handshakes with [REPL-HELLO moqp 1]
    (optionally [since <epoch> <seq>], its last applied replication
    position; the epoch names one primary incarnation).  The primary
    answers [OK REPL-HELLO] in mode [snapshot] — carrying a full
    serialized database to bootstrap from — or mode [delta] when the
    epoch is its own and its in-memory backlog still covers the
    follower's position.  From then on
    every accepted update is shipped in commit order as a [REPL-UPDATE]
    event, and the primary periodically emits [REPL-DIGEST] (byte length
    and CRC-32 of its serialized state at a given clock) so the follower
    can byte-compare its rebuilt state — the bit-identity machinery as a
    free divergence audit. *)

module Q := Moq_numeric.Rat
module U := Moq_mod.Update

val version : int

val encode_token : string -> string
(** Percent-encode ['%'], spaces, newlines and tabs. *)

val decode_token : string -> string

(** {1 Requests} *)

type gdist_id = Euclidean_sq | Speed_sq

type sub_kind =
  | Sub_knn of int  (** k nearest to the origin *)
  | Sub_range of Q.t  (** within squared distance of the origin *)
  | Sub_gdist of gdist_id * Q.t  (** below threshold under a named g-distance *)
  | Sub_agg of { d : Q.t; window : Q.t; pois : Q.t list list }
      (** continuous POI aggregation: per-POI tumbling-window rows over the
          objects within distance [d].  On the wire:
          [SUBSCRIBE agg <d> <window> <npois> <coord>... <lo> <hi>] with
          [npois × dim] coordinates *)

type query_kind = Qk_knn of int | Qk_range of Q.t

type request =
  | Hello of int  (** protocol version *)
  | Update of U.t
  | Subscribe of { kind : sub_kind; lo : Q.t; hi : Q.t }
  | Unsubscribe of int
  | Query of { kind : query_kind; lo : Q.t; hi : Q.t }
  | Stats of [ `Json | `Prometheus ]
  | Ping
  | Bye
  | Repl_hello of { version : int; since : (int * int) option }
      (** follower handshake; [since] is its last applied replication
          position as [(epoch, seq)] ([None]: bootstrap — ship a
          snapshot).  The epoch names one primary incarnation, so a
          restarted primary never mis-serves a stale delta *)

val render_request : request -> string

val parse_request : dim:int -> string -> (request, string) result
(** [dim] is the server database's dimension (updates carry one vector per
    coordinate). *)

(** {1 Timeline pieces on the wire} *)

type piece =
  | P_at of string * int list  (** encoded instant, answer OIDs ascending *)
  | P_span of string * string * int list
  | P_agg of {
      poi : int;  (** index into the subscription's POI list *)
      widx : int;  (** window index, 0-based *)
      w_lo : string;  (** window bounds, exact rational renderings *)
      w_hi : string;
      count : int;  (** objects within [d] at the window's end *)
      density : float;  (** time-weighted average count; travels as a hex
                            float literal, so the roundtrip is lossless *)
      distinct : int;  (** distinct visitors over the window *)
    }
      (** one finalized aggregation row; rides the same [EVENT] stream as
          timeline pieces and is never coalesced by {!simplify_pieces} *)

val render_piece : piece -> string
val parse_piece : string -> (piece, string) result

(** {1 Server messages} *)

type verdict = V_accepted | V_rejected of string | V_quarantined of string

val pp_verdict : Format.formatter -> verdict -> unit

type server_msg =
  | R_hello of { session : int; dim : int; clock : Q.t }
  | R_update of verdict
  | R_subscribe of { sub : int }
  | R_unsubscribe of { sub : int; pieces : piece list }
      (** the subscription's simplified validated timeline at retirement *)
  | R_query of piece list
  | R_stats of string  (** exporter output, verbatim *)
  | R_pong of { clock : Q.t }
  | R_bye
  | R_err of { code : string; msg : string }
      (** codes: [bad-version], [proto], [busy], [limit], [unknown-sub],
          [idle-timeout], [shutting-down] *)
  | E_pieces of { sub : int; first_seq : int; pieces : piece list }
  | E_dropped of { sub : int; from_seq : int; to_seq : int }  (** inclusive *)
  | E_complete of { sub : int }
  | E_shutdown of { reason : string }
  | R_repl_hello of
      { dim : int; clock : Q.t; epoch : int; seq : int; snapshot : string option }
      (** [(epoch, seq)] is the primary's replication position at
          handshake time; [Some image] bootstraps the follower from a full
          {!Moq_mod.Mod_io.db_to_string} snapshot, [None] resumes as a
          delta of [REPL-UPDATE] events after [since] *)
  | E_repl_update of { seq : int; dim : int; u : U.t }
      (** one accepted update in commit order — the shipped WAL record *)
  | E_repl_digest of { clock : Q.t; bytes : int; crc : string }
      (** primary state digest (serialized length and CRC-32) at [clock] *)

val is_event : server_msg -> bool
(** Asynchronous push, not a response. *)

val render_server_msg : server_msg -> string
val parse_server_msg : string -> (server_msg, string) result

(** {1 Frame attributes}

    Optional [key=value] tokens appended to the head line of a frame:
    [trace=<id>/<span>] (hex trace context for cross-process span
    stitching), [ts=<seconds>] (sender wall clock at socket write),
    [wm=<epoch>/<seq>] (commit watermark on repl frames, the follower's
    freshness reference).  Attributes ride only on heads whose grammar is
    closed over [=]-free tokens — updates, queries, subscriptions, events
    and repl frames; free-text heads ([ERR], [SHUTDOWN], verdicts) never
    carry them.  Backward compatible both ways: {!parse_request} /
    {!parse_server_msg} strip and ignore attributes (a moqp 1 peer keeps
    interoperating), and the attr-aware parsers accept attribute-free
    frames as {!no_attrs}.  Malformed attribute values are stripped and
    ignored rather than failing the frame. *)

type attrs = {
  a_trace : (int * int) option;  (** (trace_id, span_id), hex on the wire *)
  a_ts : float option;  (** sender wall clock, Unix seconds *)
  a_wm : (int * int) option;  (** (epoch, seq) commit watermark *)
}

val no_attrs : attrs

val render_attrs : attrs -> string
(** The rendered suffix, ["" ] when all fields are [None]; each present
    attribute contributes one leading-space-separated token. *)

val render_request_attrs : attrs -> request -> string
val parse_request_attrs : dim:int -> string -> (request * attrs, string) result
val render_server_msg_attrs : attrs -> server_msg -> string
val parse_server_msg_attrs : string -> (server_msg * attrs, string) result

(** {1 Canonical piece streams}

    Different monitor instances over the same database chunk their
    validated streams differently (a long-lived one cuts at every update
    instant, a freshly created one only at support changes), but the
    chunks always collapse to the same canonical form.  These helpers
    let a client compare — and dedup — streams across a reconnect or a
    failover to a replica. *)

val simplify_pieces : piece list -> piece list
(** Wire-level mirror of the core timeline simplifier: drop repeated
    instant pieces and collapse span·at·span runs carrying one answer
    set.  Instants compare by their canonical renderings. *)

(** Incremental canonicalizer: [push] raw pieces in stream order and
    collect canonical pieces as they become final; the concatenation of
    all [push] results plus the final [flush] equals {!simplify_pieces}
    of the whole input. *)
module Canon : sig
  type t

  val create : unit -> t
  val push : t -> piece -> piece list
  val flush : t -> piece list
end
