(** The moq wire protocol, version 1 ("moqp 1").

    Every frame (see {!Frame}) carries one message.  A message payload is
    line-oriented: the first line is the message head (space-separated
    tokens), optional further lines carry timeline pieces.  Numbers travel
    as exact rationals ({!Moq_numeric.Rat} syntax); sweep instants — which
    may be algebraic — travel as their deterministic pretty-printed form,
    percent-encoded into a single token, so two peers can compare timelines
    bit-for-bit without an algebraic-number parser.

    Client requests:
    {v
    HELLO moqp 1
    UPDATE new 3 7 1 0 5 5        (Mod_io update-line syntax)
    SUBSCRIBE knn 2 0 100
    SUBSCRIBE range 50 0 100
    SUBSCRIBE gdist-threshold speed-sq 9 0 100
    UNSUBSCRIBE 1
    QUERY knn 2 0 40 | QUERY range 50 0 40
    STATS json | STATS prometheus
    PING
    BYE
    v}

    Server messages are either responses (head starts with [OK] or [ERR];
    exactly one per request, in order) or asynchronous events ([EVENT],
    [EVENT-DROPPED], [EVENT-COMPLETE], [SHUTDOWN]).  Each subscription's
    event pieces carry consecutive sequence numbers from 0; a
    backpressure drop is reported as an [EVENT-DROPPED] covering the lost
    range, so a subscriber can always account for every sequence number. *)

module Q := Moq_numeric.Rat
module U := Moq_mod.Update

val version : int

val encode_token : string -> string
(** Percent-encode ['%'], spaces, newlines and tabs. *)

val decode_token : string -> string

(** {1 Requests} *)

type gdist_id = Euclidean_sq | Speed_sq

type sub_kind =
  | Sub_knn of int  (** k nearest to the origin *)
  | Sub_range of Q.t  (** within squared distance of the origin *)
  | Sub_gdist of gdist_id * Q.t  (** below threshold under a named g-distance *)

type query_kind = Qk_knn of int | Qk_range of Q.t

type request =
  | Hello of int  (** protocol version *)
  | Update of U.t
  | Subscribe of { kind : sub_kind; lo : Q.t; hi : Q.t }
  | Unsubscribe of int
  | Query of { kind : query_kind; lo : Q.t; hi : Q.t }
  | Stats of [ `Json | `Prometheus ]
  | Ping
  | Bye

val render_request : request -> string

val parse_request : dim:int -> string -> (request, string) result
(** [dim] is the server database's dimension (updates carry one vector per
    coordinate). *)

(** {1 Timeline pieces on the wire} *)

type piece =
  | P_at of string * int list  (** encoded instant, answer OIDs ascending *)
  | P_span of string * string * int list

val render_piece : piece -> string
val parse_piece : string -> (piece, string) result

(** {1 Server messages} *)

type verdict = V_accepted | V_rejected of string | V_quarantined of string

val pp_verdict : Format.formatter -> verdict -> unit

type server_msg =
  | R_hello of { session : int; dim : int; clock : Q.t }
  | R_update of verdict
  | R_subscribe of { sub : int }
  | R_unsubscribe of { sub : int; pieces : piece list }
      (** the subscription's simplified validated timeline at retirement *)
  | R_query of piece list
  | R_stats of string  (** exporter output, verbatim *)
  | R_pong of { clock : Q.t }
  | R_bye
  | R_err of { code : string; msg : string }
      (** codes: [bad-version], [proto], [busy], [limit], [unknown-sub],
          [idle-timeout], [shutting-down] *)
  | E_pieces of { sub : int; first_seq : int; pieces : piece list }
  | E_dropped of { sub : int; from_seq : int; to_seq : int }  (** inclusive *)
  | E_complete of { sub : int }
  | E_shutdown of { reason : string }

val is_event : server_msg -> bool
(** Asynchronous push, not a response. *)

val render_server_msg : server_msg -> string
val parse_server_msg : string -> (server_msg, string) result
