module Q = Moq_numeric.Rat
module U = Moq_mod.Update
module IO = Moq_mod.Mod_io

let version = 1

(* ---------------------------------------------------------------- *)
(* Token encoding                                                    *)

let must_escape c = c = '%' || c = ' ' || c = '\n' || c = '\t' || c = '\r'

let encode_token s =
  if not (String.exists must_escape s) then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let decode_token s =
  if not (String.contains s '%') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
         | Some c ->
           Buffer.add_char b (Char.chr c);
           i := !i + 2
         | None -> Buffer.add_char b s.[!i]
       end
       else Buffer.add_char b s.[!i]);
      incr i
    done;
    Buffer.contents b
  end

(* ---------------------------------------------------------------- *)
(* Small parsing helpers                                             *)

let ( let* ) = Result.bind

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let int_tok w =
  match int_of_string_opt w with Some i -> Ok i | None -> Error ("bad integer: " ^ w)

let rat_tok w =
  match Q.of_string w with
  | q -> Ok q
  | exception _ -> Error ("bad rational: " ^ w)

let head_and_body payload =
  match String.index_opt payload '\n' with
  | None -> (payload, [])
  | Some i ->
    ( String.sub payload 0 i,
      String.split_on_char '\n' (String.sub payload (i + 1) (String.length payload - i - 1))
      |> List.filter (fun l -> l <> "") )

(* ---------------------------------------------------------------- *)
(* Requests                                                          *)

type gdist_id = Euclidean_sq | Speed_sq

let gdist_name = function Euclidean_sq -> "euclidean-sq" | Speed_sq -> "speed-sq"

let gdist_of_name = function
  | "euclidean-sq" -> Ok Euclidean_sq
  | "speed-sq" -> Ok Speed_sq
  | w -> Error ("unknown g-distance: " ^ w)

type sub_kind =
  | Sub_knn of int
  | Sub_range of Q.t
  | Sub_gdist of gdist_id * Q.t
  | Sub_agg of { d : Q.t; window : Q.t; pois : Q.t list list }

type query_kind = Qk_knn of int | Qk_range of Q.t

type request =
  | Hello of int
  | Update of U.t
  | Subscribe of { kind : sub_kind; lo : Q.t; hi : Q.t }
  | Unsubscribe of int
  | Query of { kind : query_kind; lo : Q.t; hi : Q.t }
  | Stats of [ `Json | `Prometheus ]
  | Ping
  | Bye
  | Repl_hello of { version : int; since : (int * int) option }
      (** a follower's handshake: [since] is the [(epoch, seq)] replication
          position it has applied up to ([None]: no state — ship a
          snapshot).  The epoch names one primary incarnation; a seq only
          means anything within its epoch *)

let render_request = function
  | Hello v -> Printf.sprintf "HELLO moqp %d" v
  | Repl_hello { version; since } ->
    (match since with
     | None -> Printf.sprintf "REPL-HELLO moqp %d" version
     | Some (e, s) -> Printf.sprintf "REPL-HELLO moqp %d since %d %d" version e s)
  | Update u -> "UPDATE " ^ IO.update_to_line u
  | Subscribe { kind; lo; hi } ->
    let k =
      match kind with
      | Sub_knn k -> Printf.sprintf "knn %d" k
      | Sub_range b -> Printf.sprintf "range %s" (Q.to_string b)
      | Sub_gdist (g, b) ->
        Printf.sprintf "gdist-threshold %s %s" (gdist_name g) (Q.to_string b)
      | Sub_agg { d; window; pois } ->
        String.concat " "
          ("agg" :: Q.to_string d :: Q.to_string window
           :: string_of_int (List.length pois)
           :: List.concat_map (List.map Q.to_string) pois)
    in
    Printf.sprintf "SUBSCRIBE %s %s %s" k (Q.to_string lo) (Q.to_string hi)
  | Unsubscribe sub -> Printf.sprintf "UNSUBSCRIBE %d" sub
  | Query { kind; lo; hi } ->
    let k =
      match kind with
      | Qk_knn k -> Printf.sprintf "knn %d" k
      | Qk_range b -> Printf.sprintf "range %s" (Q.to_string b)
    in
    Printf.sprintf "QUERY %s %s %s" k (Q.to_string lo) (Q.to_string hi)
  | Stats `Json -> "STATS json"
  | Stats `Prometheus -> "STATS prometheus"
  | Ping -> "PING"
  | Bye -> "BYE"

let parse_interval lo hi =
  let* lo = rat_tok lo in
  let* hi = rat_tok hi in
  if Q.compare lo hi > 0 then Error "empty interval" else Ok (lo, hi)

let parse_request ~dim payload =
  let head, _body = head_and_body payload in
  match words head with
  | [ "HELLO"; "moqp"; v ] ->
    let* v = int_tok v in
    Ok (Hello v)
  | [ "REPL-HELLO"; "moqp"; v ] ->
    let* v = int_tok v in
    Ok (Repl_hello { version = v; since = None })
  | [ "REPL-HELLO"; "moqp"; v; "since"; e; s ] ->
    let* v = int_tok v in
    let* e = int_tok e in
    let* s = int_tok s in
    if s < 0 || e < 0 then Error "negative replication position"
    else Ok (Repl_hello { version = v; since = Some (e, s) })
  | "UPDATE" :: _ when String.length head > 7 ->
    let line = String.sub head 7 (String.length head - 7) in
    let* u = IO.update_of_line ~dim line in
    Ok (Update u)
  | [ "SUBSCRIBE"; "knn"; k; lo; hi ] ->
    let* k = int_tok k in
    if k < 1 then Error "k must be positive"
    else
      let* lo, hi = parse_interval lo hi in
      Ok (Subscribe { kind = Sub_knn k; lo; hi })
  | [ "SUBSCRIBE"; "range"; b; lo; hi ] ->
    let* b = rat_tok b in
    let* lo, hi = parse_interval lo hi in
    Ok (Subscribe { kind = Sub_range b; lo; hi })
  | [ "SUBSCRIBE"; "gdist-threshold"; g; b; lo; hi ] ->
    let* g = gdist_of_name g in
    let* b = rat_tok b in
    let* lo, hi = parse_interval lo hi in
    Ok (Subscribe { kind = Sub_gdist (g, b); lo; hi })
  | "SUBSCRIBE" :: "agg" :: d :: w :: np :: rest ->
    let* d = rat_tok d in
    let* window = rat_tok w in
    let* np = int_tok np in
    if np < 1 then Error "need at least one POI"
    else if Q.sign d < 0 then Error "d must be non-negative"
    else if Q.sign window <= 0 then Error "window must be positive"
    else if List.length rest <> (np * dim) + 2 then
      Error
        (Printf.sprintf "agg: expected %d coordinates plus lo hi, got %d tokens"
           (np * dim) (List.length rest))
    else begin
      let rec take_pois acc k toks =
        if k = 0 then Ok (List.rev acc, toks)
        else begin
          let rec coords cacc j toks =
            if j = 0 then Ok (List.rev cacc, toks)
            else
              match toks with
              | [] -> Error "agg: truncated POI coordinates"
              | t :: toks ->
                let* q = rat_tok t in
                coords (q :: cacc) (j - 1) toks
          in
          let* p, toks = coords [] dim toks in
          take_pois (p :: acc) (k - 1) toks
        end
      in
      let* pois, toks = take_pois [] np rest in
      match toks with
      | [ lo; hi ] ->
        let* lo, hi = parse_interval lo hi in
        Ok (Subscribe { kind = Sub_agg { d; window; pois }; lo; hi })
      | _ -> Error "agg: expected lo hi after POI coordinates"
    end
  | [ "UNSUBSCRIBE"; sub ] ->
    let* sub = int_tok sub in
    Ok (Unsubscribe sub)
  | [ "QUERY"; "knn"; k; lo; hi ] ->
    let* k = int_tok k in
    if k < 1 then Error "k must be positive"
    else
      let* lo, hi = parse_interval lo hi in
      Ok (Query { kind = Qk_knn k; lo; hi })
  | [ "QUERY"; "range"; b; lo; hi ] ->
    let* b = rat_tok b in
    let* lo, hi = parse_interval lo hi in
    Ok (Query { kind = Qk_range b; lo; hi })
  | [ "STATS" ] | [ "STATS"; "json" ] -> Ok (Stats `Json)
  | [ "STATS"; "prometheus" ] -> Ok (Stats `Prometheus)
  | [ "PING" ] -> Ok Ping
  | [ "BYE" ] -> Ok Bye
  | [] -> Error "empty request"
  | w :: _ -> Error ("unknown request: " ^ w)

(* ---------------------------------------------------------------- *)
(* Pieces                                                            *)

type piece =
  | P_at of string * int list
  | P_span of string * string * int list
  | P_agg of {
      poi : int;
      widx : int;
      w_lo : string;
      w_hi : string;
      count : int;
      density : float;
      distinct : int;
    }

let render_piece = function
  | P_at (i, oids) ->
    (* the oid list may be empty, so no trailing-space juggling *)
    String.concat " " ("at" :: encode_token i :: List.map string_of_int oids)
  | P_span (a, b, oids) ->
    String.concat " " ("span" :: encode_token a :: encode_token b :: List.map string_of_int oids)
  | P_agg { poi; widx; w_lo; w_hi; count; density; distinct } ->
    (* %h is a lossless hex float literal, so peers compare rows
       bit-for-bit like they compare timeline instants *)
    Printf.sprintf "agg %d %d %s %s %d %h %d" poi widx (encode_token w_lo)
      (encode_token w_hi) count density distinct

let parse_oids ws =
  List.fold_left
    (fun acc w ->
      let* acc = acc in
      let* o = int_tok w in
      Ok (o :: acc))
    (Ok []) ws
  |> Result.map List.rev

let parse_piece line =
  match words line with
  | "at" :: i :: oids ->
    let* oids = parse_oids oids in
    Ok (P_at (decode_token i, oids))
  | "span" :: a :: b :: oids ->
    let* oids = parse_oids oids in
    Ok (P_span (decode_token a, decode_token b, oids))
  | [ "agg"; poi; widx; w_lo; w_hi; count; density; distinct ] ->
    let* poi = int_tok poi in
    let* widx = int_tok widx in
    let* count = int_tok count in
    let* distinct = int_tok distinct in
    (match float_of_string_opt density with
     | None -> Error ("bad density: " ^ density)
     | Some density ->
       Ok
         (P_agg
            { poi; widx; w_lo = decode_token w_lo; w_hi = decode_token w_hi;
              count; density; distinct }))
  | _ -> Error ("bad piece: " ^ line)

let parse_pieces lines =
  List.fold_left
    (fun acc l ->
      let* acc = acc in
      let* p = parse_piece l in
      Ok (p :: acc))
    (Ok []) lines
  |> Result.map List.rev

(* ---------------------------------------------------------------- *)
(* Server messages                                                   *)

type verdict = V_accepted | V_rejected of string | V_quarantined of string

let pp_verdict fmt = function
  | V_accepted -> Format.pp_print_string fmt "accepted"
  | V_rejected r -> Format.fprintf fmt "rejected %s" r
  | V_quarantined r -> Format.fprintf fmt "quarantined %s" r

type server_msg =
  | R_hello of { session : int; dim : int; clock : Q.t }
  | R_update of verdict
  | R_subscribe of { sub : int }
  | R_unsubscribe of { sub : int; pieces : piece list }
  | R_query of piece list
  | R_stats of string
  | R_pong of { clock : Q.t }
  | R_bye
  | R_err of { code : string; msg : string }
  | E_pieces of { sub : int; first_seq : int; pieces : piece list }
  | E_dropped of { sub : int; from_seq : int; to_seq : int }
  | E_complete of { sub : int }
  | E_shutdown of { reason : string }
  | R_repl_hello of
      { dim : int; clock : Q.t; epoch : int; seq : int; snapshot : string option }
      (** replication handshake reply: [(epoch, seq)] is the primary's
          current replication position; [snapshot] carries a full
          {!Moq_mod.Mod_io.db_to_string} image when the follower must
          bootstrap ([None]: the stream resumes as a delta) *)
  | E_repl_update of { seq : int; dim : int; u : U.t }
      (** one accepted update in commit order, the shipped WAL record *)
  | E_repl_digest of { clock : Q.t; bytes : int; crc : string }
      (** primary state digest at [clock]: byte length and CRC-32 of its
          serialized database — the follower's divergence audit *)

let is_event = function
  | E_pieces _ | E_dropped _ | E_complete _ | E_shutdown _ | E_repl_update _
  | E_repl_digest _ -> true
  | R_hello _ | R_update _ | R_subscribe _ | R_unsubscribe _ | R_query _ | R_stats _
  | R_pong _ | R_bye | R_err _ | R_repl_hello _ -> false

let with_pieces head pieces =
  String.concat "\n" (head :: List.map render_piece pieces)

let render_server_msg = function
  | R_hello { session; dim; clock } ->
    Printf.sprintf "OK HELLO moqp %d session %d dim %d clock %s" version session dim
      (Q.to_string clock)
  | R_update V_accepted -> "OK UPDATE accepted"
  | R_update (V_rejected r) -> "OK UPDATE rejected " ^ encode_token r
  | R_update (V_quarantined r) -> "OK UPDATE quarantined " ^ encode_token r
  | R_subscribe { sub } -> Printf.sprintf "OK SUBSCRIBE %d" sub
  | R_unsubscribe { sub; pieces } ->
    with_pieces (Printf.sprintf "OK UNSUBSCRIBE %d %d" sub (List.length pieces)) pieces
  | R_query pieces -> with_pieces (Printf.sprintf "OK QUERY %d" (List.length pieces)) pieces
  | R_stats body -> "OK STATS\n" ^ body
  | R_pong { clock } -> Printf.sprintf "OK PONG clock %s" (Q.to_string clock)
  | R_bye -> "OK BYE"
  | R_err { code; msg } -> Printf.sprintf "ERR %s %s" code msg
  | E_pieces { sub; first_seq; pieces } ->
    with_pieces
      (Printf.sprintf "EVENT %d %d %d" sub first_seq (List.length pieces))
      pieces
  | E_dropped { sub; from_seq; to_seq } ->
    Printf.sprintf "EVENT-DROPPED %d %d %d" sub from_seq to_seq
  | E_complete { sub } -> Printf.sprintf "EVENT-COMPLETE %d" sub
  | E_shutdown { reason } -> "SHUTDOWN " ^ reason
  | R_repl_hello { dim; clock; epoch; seq; snapshot } ->
    let head mode =
      Printf.sprintf "OK REPL-HELLO moqp %d dim %d clock %s epoch %d seq %d mode %s"
        version dim (Q.to_string clock) epoch seq mode
    in
    (match snapshot with
     | None -> head "delta"
     | Some s -> head "snapshot" ^ "\n" ^ s)
  | E_repl_update { seq; dim; u } ->
    Printf.sprintf "REPL-UPDATE %d %d %s" seq dim (IO.update_to_line u)
  | E_repl_digest { clock; bytes; crc } ->
    Printf.sprintf "REPL-DIGEST %s %d %s" (Q.to_string clock) bytes crc

let parse_server_msg payload =
  let head, body = head_and_body payload in
  match words head with
  | [ "OK"; "HELLO"; "moqp"; _v; "session"; s; "dim"; d; "clock"; c ] ->
    let* session = int_tok s in
    let* dim = int_tok d in
    let* clock = rat_tok c in
    Ok (R_hello { session; dim; clock })
  | [ "OK"; "UPDATE"; "accepted" ] -> Ok (R_update V_accepted)
  | [ "OK"; "UPDATE"; "rejected"; r ] -> Ok (R_update (V_rejected (decode_token r)))
  | [ "OK"; "UPDATE"; "quarantined"; r ] ->
    Ok (R_update (V_quarantined (decode_token r)))
  | [ "OK"; "SUBSCRIBE"; sub ] ->
    let* sub = int_tok sub in
    Ok (R_subscribe { sub })
  | [ "OK"; "UNSUBSCRIBE"; sub; _n ] ->
    let* sub = int_tok sub in
    let* pieces = parse_pieces body in
    Ok (R_unsubscribe { sub; pieces })
  | [ "OK"; "QUERY"; _n ] ->
    let* pieces = parse_pieces body in
    Ok (R_query pieces)
  | "OK" :: "STATS" :: _ ->
    let i = String.index_opt payload '\n' in
    let body =
      match i with
      | Some i -> String.sub payload (i + 1) (String.length payload - i - 1)
      | None -> ""
    in
    Ok (R_stats body)
  | [ "OK"; "PONG"; "clock"; c ] ->
    let* clock = rat_tok c in
    Ok (R_pong { clock })
  | [ "OK"; "BYE" ] -> Ok R_bye
  | "ERR" :: code :: rest -> Ok (R_err { code; msg = String.concat " " rest })
  | [ "EVENT"; sub; first; _n ] ->
    let* sub = int_tok sub in
    let* first_seq = int_tok first in
    let* pieces = parse_pieces body in
    Ok (E_pieces { sub; first_seq; pieces })
  | [ "EVENT-DROPPED"; sub; a; b ] ->
    let* sub = int_tok sub in
    let* from_seq = int_tok a in
    let* to_seq = int_tok b in
    Ok (E_dropped { sub; from_seq; to_seq })
  | [ "EVENT-COMPLETE"; sub ] ->
    let* sub = int_tok sub in
    Ok (E_complete { sub })
  | "SHUTDOWN" :: rest -> Ok (E_shutdown { reason = String.concat " " rest })
  | [ "OK"; "REPL-HELLO"; "moqp"; _v; "dim"; d; "clock"; c; "epoch"; e; "seq"; s;
      "mode"; m ] ->
    let* dim = int_tok d in
    let* clock = rat_tok c in
    let* epoch = int_tok e in
    let* seq = int_tok s in
    (match m with
     | "delta" -> Ok (R_repl_hello { dim; clock; epoch; seq; snapshot = None })
     | "snapshot" ->
       (* the snapshot body is verbatim — everything past the head line *)
       let body =
         match String.index_opt payload '\n' with
         | Some i -> String.sub payload (i + 1) (String.length payload - i - 1)
         | None -> ""
       in
       Ok (R_repl_hello { dim; clock; epoch; seq; snapshot = Some body })
     | _ -> Error ("unknown replication mode: " ^ m))
  | "REPL-UPDATE" :: s :: d :: (_ :: _ as rest) ->
    let* seq = int_tok s in
    let* dim = int_tok d in
    (* update_to_line emits single-space-separated tokens, so rejoining the
       word split is lossless *)
    let* u = IO.update_of_line ~dim (String.concat " " rest) in
    Ok (E_repl_update { seq; dim; u })
  | [ "REPL-DIGEST"; c; b; crc ] ->
    let* clock = rat_tok c in
    let* bytes = int_tok b in
    Ok (E_repl_digest { clock; bytes; crc })
  | [] -> Error "empty message"
  | w :: _ -> Error ("unknown server message: " ^ w)

(* ---------------------------------------------------------------- *)
(* Frame attributes                                                  *)

(* Optional `key=value` attributes appended to the head line of a frame:
   `trace=<id>/<span>` (hex trace context), `ts=<wall>` (sender clock at
   socket write, seconds), `wm=<epoch>/<seq>` (commit watermark on repl
   frames).  Attributes ride only on heads whose grammar is closed over
   `=`-free tokens (updates, queries, events, repl frames) — free-text
   heads like ERR keep their tails verbatim.  moqp 1 peers that predate
   attributes parse these frames through {!parse_request} /
   {!parse_server_msg}, which strip and ignore the suffix; peers that
   never send attributes produce frames the attr-aware parsers accept
   with {!no_attrs}.  Malformed attribute values are stripped and
   ignored rather than failing the frame. *)

type attrs = {
  a_trace : (int * int) option;  (* (trace_id, span_id) *)
  a_ts : float option;           (* sender wall clock, Unix seconds *)
  a_wm : (int * int) option;     (* (epoch, seq) commit watermark *)
}

let no_attrs = { a_trace = None; a_ts = None; a_wm = None }

let render_attrs a =
  let b = Buffer.create 32 in
  (match a.a_trace with
   | Some (t, s) -> Buffer.add_string b (Printf.sprintf " trace=%x/%x" t s)
   | None -> ());
  (match a.a_ts with
   | Some ts -> Buffer.add_string b (Printf.sprintf " ts=%.6f" ts)
   | None -> ());
  (match a.a_wm with
   | Some (e, s) -> Buffer.add_string b (Printf.sprintf " wm=%d/%d" e s)
   | None -> ());
  Buffer.contents b

(* Heads that may carry attributes: their token grammar never produces a
   token starting with "trace=", "ts=" or "wm=", so stripping from the
   right is unambiguous.  ERR / SHUTDOWN / verdict reasons are free text
   and are left untouched. *)
let attr_capable_head head =
  let w =
    match String.index_opt head ' ' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  match w with
  | "UPDATE" | "QUERY" | "SUBSCRIBE" | "UNSUBSCRIBE" | "EVENT" | "EVENT-DROPPED"
  | "EVENT-COMPLETE" | "REPL-UPDATE" | "REPL-DIGEST" -> true
  | _ -> false

let pair_of_string ~hex v =
  match String.index_opt v '/' with
  | None -> None
  | Some i ->
    let a = String.sub v 0 i in
    let b = String.sub v (i + 1) (String.length v - i - 1) in
    let conv s = int_of_string_opt (if hex then "0x" ^ s else s) in
    (match (conv a, conv b) with
     | Some x, Some y when x >= 0 && y >= 0 -> Some (x, y)
     | _ -> None)

(* Merge one `k=v` token into [acc]; [None] when the token is not an
   attribute at all (ends the strip scan). *)
let apply_attr acc tok =
  match String.index_opt tok '=' with
  | None -> None
  | Some i ->
    let k = String.sub tok 0 i in
    let v = String.sub tok (i + 1) (String.length tok - i - 1) in
    (match k with
     | "trace" -> Some { acc with a_trace = (match pair_of_string ~hex:true v with None -> acc.a_trace | p -> p) }
     | "ts" ->
       let ts = match float_of_string_opt v with Some f when Float.is_finite f -> Some f | _ -> acc.a_ts in
       Some { acc with a_ts = ts }
     | "wm" -> Some { acc with a_wm = (match pair_of_string ~hex:false v with None -> acc.a_wm | p -> p) }
     | _ -> None)

let strip_head_attrs head =
  if not (attr_capable_head head) then (head, no_attrs)
  else begin
    let rec go head acc =
      match String.rindex_opt head ' ' with
      | Some i ->
        let tok = String.sub head (i + 1) (String.length head - i - 1) in
        (match apply_attr acc tok with
         | Some acc -> go (String.sub head 0 i) acc
         | None -> (head, acc))
      | None -> (head, acc)
    in
    go head no_attrs
  end

(* Split a payload at the head line; the second component keeps its
   leading '\n' so [head ^ rest] reassembles losslessly. *)
let split_head payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i -> (String.sub payload 0 i, String.sub payload i (String.length payload - i))

let strip_attrs payload =
  let head, rest = split_head payload in
  let head, attrs = strip_head_attrs head in
  (head ^ rest, attrs)

let attach_attrs attrs payload =
  let head, rest = split_head payload in
  if attr_capable_head head then head ^ render_attrs attrs ^ rest else payload

let parse_request_attrs ~dim payload =
  let payload, attrs = strip_attrs payload in
  let* r = parse_request ~dim payload in
  Ok (r, attrs)

let render_request_attrs attrs r = attach_attrs attrs (render_request r)

let parse_server_msg_attrs payload =
  let payload, attrs = strip_attrs payload in
  let* m = parse_server_msg payload in
  Ok (m, attrs)

let render_server_msg_attrs attrs m = attach_attrs attrs (render_server_msg m)

(* Attr-blind views: a moqp 1 peer that predates attributes sees exactly
   the frame minus the suffix. *)
let parse_request ~dim payload = Result.map fst (parse_request_attrs ~dim payload)
let parse_server_msg payload = Result.map fst (parse_server_msg_attrs payload)

(* ---------------------------------------------------------------- *)
(* Canonical piece streams                                           *)

(* Wire-level mirror of [Timeline.simplify]: collapse maximal runs with
   equal answer sets.  Instants compare as their canonical renderings —
   the exact algebra renders deterministically, so equal instants from the
   same data are equal strings.  Two different monitor instances over the
   same database chunk their validated streams differently (one cuts at
   every update instant, a freshly created one only at support changes),
   but both simplify to the same canonical sequence — which is what makes
   a resumed subscription's stream comparable to the original. *)
let rec simplify_once = function
  | P_at (a, s1) :: P_at (b, s2) :: rest when a = b && s1 = s2 ->
    simplify_once (P_at (a, s1) :: rest)
  | P_span (a, _, s1) :: P_at (_, s2) :: P_span (_, b, s3) :: rest
    when s1 = s2 && s2 = s3 ->
    simplify_once (P_span (a, b, s1) :: rest)
  | p :: rest -> p :: simplify_once rest
  | [] -> []

let simplify_pieces pieces =
  let rec fix l =
    let l' = simplify_once l in
    if List.length l' = List.length l then l else fix l'
  in
  fix pieces

(* Incremental canonicalizer: push raw pieces in stream order, collect the
   canonical pieces that can no longer be altered by later input.  The
   concatenation of every [push] result plus the final [flush] equals
   [simplify_pieces] of the whole input. *)
module Canon = struct
  (* [pending] holds the still-malleable tail, oldest first: at most a
     span and a same-set instant riding on it ([Span; At]), which a third
     same-set span would collapse (the middle rule of the simplifier). *)
  type t = { mutable pending : piece list }

  let create () = { pending = [] }

  let push t p =
    match t.pending, p with
    | [], p ->
      t.pending <- [ p ];
      []
    (* duplicate instant piece: absorb *)
    | [ P_at (a, s1) ], P_at (b, s2) when a = b && s1 = s2 -> []
    | [ P_span _; P_at (a, s1) ], P_at (b, s2) when a = b && s1 = s2 -> []
    (* a same-set instant after a span may yet collapse: hold both *)
    | [ (P_span (_, _, s1) as sp) ], (P_at (_, s2) as at) when s1 = s2 ->
      t.pending <- [ sp; at ];
      []
    (* span · at · span, all one set: collapse and keep riding *)
    | [ P_span (a, _, s1); P_at (_, s2) ], P_span (_, d, s3) when s1 = s2 && s2 = s3 ->
      t.pending <- [ P_span (a, d, s1) ];
      []
    (* anything else: the held prefix is final *)
    | held, p ->
      t.pending <- [ p ];
      held

  let flush t =
    let held = t.pending in
    t.pending <- [];
    held
end
