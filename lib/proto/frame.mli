(** Length-prefixed framing for the moq wire protocol.

    A frame on the wire is

    {v <decimal-byte-length> SP <payload> LF v}

    The payload is arbitrary text (it may itself contain newlines — the
    length is authoritative; the trailing [LF] is a frame separator that
    doubles as a cheap integrity check).  Frames larger than
    {!max_payload} are rejected so a garbage peer cannot make the reader
    allocate unboundedly. *)

val max_payload : int
(** 4 MiB. *)

type error =
  | Oversize of { size : int; limit : int }
      (** payload beyond {!max_payload}, announced by a peer or offered to
          {!write} *)
  | Bad_prefix of string
      (** malformed ["<len> "] prefix or missing frame terminator *)
  | Torn  (** the peer vanished mid-frame (including mid-length-prefix) *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val write : Unix.file_descr -> string -> (unit, error) result
(** Write one frame, looping over short writes.  [Error (Oversize _)] when
    the payload exceeds {!max_payload} — typed, so a server writer thread
    can substitute a protocol-error response instead of crashing.
    @raise Unix.Unix_error on a closed or broken descriptor. *)

type reader
(** Buffered frame reader over a file descriptor.  One reader per
    descriptor; not thread-safe. *)

val reader : Unix.file_descr -> reader

val read :
  ?timeout:float -> reader -> [ `Frame of string | `Eof | `Timeout | `Garbage of error ]
(** Next frame.  [timeout] (seconds, > 0) bounds the wait for the {e start}
    of the frame when the buffer is empty — a blocked peer mid-frame still
    blocks, which is fine for line-of-sight protocol peers.  [`Garbage]
    reports a typed framing error — oversize announcement, malformed
    length prefix or separator, or EOF mid-frame; the stream is
    unrecoverable after it. *)
