let max_payload = 4 * 1024 * 1024

(* Typed protocol-level framing errors: a session that hits one of these
   can answer with a structured PROTO-ERROR and close cleanly instead of
   letting a raw exception kill its thread. *)
type error =
  | Oversize of { size : int; limit : int }
      (** a payload beyond the frame cap, announced or offered for writing *)
  | Bad_prefix of string  (** malformed "<len> " prefix or missing terminator *)
  | Torn  (** the peer vanished mid-frame (including mid-length-prefix) *)

let error_to_string = function
  | Oversize { size; limit } ->
    Printf.sprintf "frame payload %d exceeds the %d-byte cap" size limit
  | Bad_prefix r -> r
  | Torn -> "eof mid-frame"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

(* write_all: Unix.write may write a prefix or be interrupted; loop.  (The
   durable layer has its own injectable copy — this one is deliberately
   dependency-free.) *)
let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

let write fd payload =
  let n = String.length payload in
  if n > max_payload then Error (Oversize { size = n; limit = max_payload })
  else begin
    let s = Printf.sprintf "%d %s\n" n payload in
    write_all fd (Bytes.unsafe_of_string s) 0 (String.length s);
    Ok ()
  end

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes received, not yet consumed *)
  chunk : Bytes.t;
  mutable pos : int;  (** consumed prefix of [buf] *)
}

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536; pos = 0 }

let compact r =
  if r.pos > 0 then begin
    let rest = Buffer.sub r.buf r.pos (Buffer.length r.buf - r.pos) in
    Buffer.clear r.buf;
    Buffer.add_string r.buf rest;
    r.pos <- 0
  end

(* Pull more bytes; [`Data] on progress. *)
let fill ?timeout r =
  let ready =
    match timeout with
    | None -> true
    | Some t ->
      (match Unix.select [ r.fd ] [] [] t with
       | [], _, _ -> false
       | _ -> true
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> false)
  in
  if not ready then `Timeout
  else begin
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes r.buf r.chunk 0 n;
      `Data
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Data
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF | Unix.EPIPE), _, _) -> `Eof
  end

let available r = Buffer.length r.buf - r.pos

(* A complete "<len> <payload>\n" at [pos]?  [`Need] if more bytes may
   complete it. *)
let try_parse r =
  let len = Buffer.length r.buf in
  let i = ref r.pos in
  while !i < len && Buffer.nth r.buf !i >= '0' && Buffer.nth r.buf !i <= '9' do incr i done;
  if !i = r.pos then
    if len > r.pos then `Garbage (Bad_prefix "frame length prefix missing") else `Need
  else if !i - r.pos > 8 then `Garbage (Bad_prefix "frame length prefix too long")
  else if !i >= len then `Need
  else if Buffer.nth r.buf !i <> ' ' then
    `Garbage (Bad_prefix "frame length not followed by a space")
  else begin
    let n = int_of_string (Buffer.sub r.buf r.pos (!i - r.pos)) in
    if n > max_payload then `Garbage (Oversize { size = n; limit = max_payload })
    else begin
      let start = !i + 1 in
      if len - start < n + 1 then `Need
      else if Buffer.nth r.buf (start + n) <> '\n' then
        `Garbage (Bad_prefix "frame payload not terminated by a newline")
      else begin
        let payload = Buffer.sub r.buf start n in
        r.pos <- start + n + 1;
        if r.pos = Buffer.length r.buf then begin
          Buffer.clear r.buf;
          r.pos <- 0
        end;
        `Frame payload
      end
    end
  end

let read ?timeout r =
  let rec go ~first =
    match try_parse r with
    | `Frame p -> `Frame p
    | `Garbage g -> `Garbage g
    | `Need ->
      compact r;
      (* only the wait for the frame's first byte is bounded *)
      let timeout = if first && available r = 0 then timeout else None in
      (match fill ?timeout r with
       | `Data -> go ~first:false
       | `Eof -> if available r = 0 then `Eof else `Garbage Torn
       | `Timeout -> `Timeout)
  in
  go ~first:true
