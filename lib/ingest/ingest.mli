(** Real-trace ingestion: sampled GPS-style rows → piecewise-linear updates.

    The paper's MOD stores piecewise-linear motion plans; real position
    data arrives as discrete samples [oid,t,x,y].  This adapter turns a
    sample stream into the [New]/[Chdir] update stream the rest of the
    system speaks, with a quantisation threshold that separates genuine
    motion from stationary jitter (GPS noise while parked), in the spirit
    of the [quantisation_factor] used by trajectory-extraction pipelines
    (SNIPPETS.md, Snippet 2).

    Segmentation contract, per object with samples [(t_0,p_0) .. (t_k,p_k)]
    and threshold [q]: the emitted trajectory is continuous piecewise
    linear, starts at [p_0], and at each sample time [t_i] either passes
    exactly through [p_i] (a moving segment) or is parked within distance
    [q] of it (a stationary segment — the model holds its last position and
    the sub-threshold displacement is absorbed, never integrated).  Moving
    segments take the constant velocity [(p_i − model)/(t_i − t_{i−1})]
    that lands the model exactly on the next sample, so drift never
    exceeds [q]. *)

module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module U = Moq_mod.Update

type sample = { oid : int; t : Q.t; pos : Qvec.t }

val parse_line : dim:int -> string -> (sample option, string) result
(** One CSV row [oid,t,x_1,...,x_dim] with exact decimal/rational fields
    (anything {!Moq_numeric.Rat.of_string} accepts).  [Ok None] for blank
    lines, [#]-comments, and a leading [oid,t,x,y] header. *)

val parse_csv : ?dim:int -> string -> (sample list, string) result
(** Whole-trace parse (default [dim = 2]); errors carry the 1-based line
    number.  Rows may arrive in any order. *)

val segment : ?quant:Q.t -> ?terminate:bool -> sample list -> U.t list
(** Updates from samples, merged across objects in time order.  [quant]
    (default 1/10) is the stationary threshold: an inter-sample
    displacement of squared length ≤ quant² parks the object instead of
    moving it.  Each object gets a [New] at its first sample; [Chdir]s
    only where the velocity actually changes; and at its last sample
    either a parking [Chdir] to velocity zero (default) or a [Terminate]
    when [terminate] is set.  Samples that repeat an object+time keep the
    first occurrence; a lone sample yields a parked object.

    The MOD accepts one update per instant with strictly increasing times
    (paper, Definition 3), while a trace samples many objects at the same
    tick — equal-time updates are therefore {e serialized}: the [j]-th
    event of a collision group (ordered by oid) is deferred by [j·δ] for a
    rational [δ] well inside the gap to the next event time, and deferred
    segments are re-aimed at their target sample, so moving samples are
    still passed through {e exactly}.  Only a deferred {e parking} event
    drifts: the object parks up to (speed)·(group size)·δ past where it
    would have — an arbitrarily small rational slack on top of the
    quantisation bound. *)

type stats = {
  samples : int;
  objects : int;
  updates : int;
  moving_segments : int;
  stationary_segments : int;
}

val segment_stats : ?quant:Q.t -> sample list -> stats
(** The segmentation summary [moq ingest] reports, without building the
    update list twice. *)

val csv_to_updates :
  ?dim:int -> ?quant:Q.t -> ?terminate:bool -> string ->
  (U.t list * stats, string) result
(** [parse_csv] + [segment] + [segment_stats] in one call. *)
