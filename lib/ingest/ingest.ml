module Q = Moq_numeric.Rat
module Qvec = Moq_geom.Vec.Qvec
module U = Moq_mod.Update

type sample = { oid : int; t : Q.t; pos : Qvec.t }

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let split_csv s =
  String.split_on_char ',' s |> List.map String.trim

let parse_line ~dim line =
  if is_blank line then Ok None
  else
    let line = String.trim line in
    if String.length line > 0 && line.[0] = '#' then Ok None
    else
      match split_csv line with
      | oid :: t :: coords when List.length coords = dim -> (
        (* a conventional header row is tolerated, once per file or not *)
        if String.lowercase_ascii oid = "oid" then Ok None
        else
          match int_of_string_opt oid with
          | None -> Error (Printf.sprintf "bad oid %S" oid)
          | Some oid when oid <= 0 -> Error (Printf.sprintf "oid must be positive, got %d" oid)
          | Some oid -> (
            let rat name s =
              match Q.of_string s with
              | q -> Ok q
              | exception _ -> Error (Printf.sprintf "bad %s %S" name s)
            in
            match rat "t" t with
            | Error _ as e -> e
            | Ok t -> (
              let rec coords_of acc i = function
                | [] -> Ok (List.rev acc)
                | c :: rest -> (
                  match rat (Printf.sprintf "x_%d" i) c with
                  | Error _ as e -> e
                  | Ok q -> coords_of (q :: acc) (i + 1) rest)
              in
              match coords_of [] 1 coords with
              | Error e -> Error e
              | Ok cs -> Ok (Some { oid; t; pos = Qvec.of_list cs }))))
      | fields ->
        Error
          (Printf.sprintf "expected oid,t and %d coordinates, got %d fields" dim
             (List.length fields))

let parse_csv ?(dim = 2) content =
  let lines = String.split_on_char '\n' content in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line ~dim line with
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | Ok None -> go acc (lineno + 1) rest
      | Ok (Some s) -> go (s :: acc) (lineno + 1) rest)
  in
  go [] 1 lines

(* ---- segmentation ---- *)

let default_quant = Q.of_ints 1 10

let by_object samples =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let prev = try Hashtbl.find tbl s.oid with Not_found -> [] in
      Hashtbl.replace tbl s.oid (s :: prev))
    samples;
  Hashtbl.fold
    (fun oid ss acc ->
      let ss = List.stable_sort (fun a b -> Q.compare a.t b.t) (List.rev ss) in
      (* duplicate timestamps: keep the first occurrence *)
      let rec dedup = function
        | a :: b :: rest when Q.equal a.t b.t -> dedup (a :: rest)
        | a :: rest -> a :: dedup rest
        | [] -> []
      in
      (oid, dedup ss) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Segmentation plans in event form.  A target is the sample a moving
   segment must pass through; [None] means park (velocity zero).  Keeping
   targets rather than velocities lets the serializer re-aim a segment
   whose start the collision pass had to defer. *)
type target = { tt : Q.t; tp : Qvec.t }

type ev_kind =
  | E_new of Qvec.t * target option  (** first position, first segment *)
  | E_seg of target option  (** segment boundary: retarget or park *)
  | E_term

type ev = { e_oid : int; e_tau : Q.t; e_kind : ev_kind }

(* Per-object plan.  Decide moving-vs-stationary per inter-sample
   displacement of the *model* position (stationary segments park the model,
   so sub-threshold jitter is absorbed, never integrated). *)
let plan_object ~quant2 ~terminate (oid, samples) =
  match samples with
  | [] -> ([], 0, 0)
  | [ only ] ->
    let final = if terminate then [ { e_oid = oid; e_tau = only.t; e_kind = E_term } ] else [] in
    ({ e_oid = oid; e_tau = only.t; e_kind = E_new (only.pos, None) } :: final, 0, 0)
  | first :: rest ->
    let moving = ref 0 and stationary = ref 0 in
    let model = ref first.pos in
    let segs =
      List.rev
        (fst
           (List.fold_left
              (fun (acc, prev_t) s ->
                let delta = Qvec.sub s.pos !model in
                let tgt =
                  if Q.compare (Qvec.len2 delta) quant2 <= 0 then begin
                    incr stationary;
                    None (* parked: jitter absorbed, model holds *)
                  end
                  else begin
                    incr moving;
                    model := s.pos;
                    Some { tt = s.t; tp = s.pos }
                  end
                in
                ((prev_t, tgt) :: acc, s.t))
              ([], first.t) rest))
    in
    let last_t = (List.nth samples (List.length samples - 1)).t in
    let tgt0 = match segs with [] -> None | (_, tgt) :: _ -> tgt in
    let news = { e_oid = oid; e_tau = first.t; e_kind = E_new (first.pos, tgt0) } in
    (* a boundary event per segment except stationary runs (parked stays
       parked with no update at all) *)
    let rec bounds prev = function
      | [] -> []
      | (tau, tgt) :: rest ->
        if tgt = None && prev = None then bounds prev rest
        else { e_oid = oid; e_tau = tau; e_kind = E_seg tgt } :: bounds tgt rest
    in
    let bound_evs = match segs with [] -> [] | (_, t0) :: rest -> bounds t0 rest in
    let final =
      if terminate then [ { e_oid = oid; e_tau = last_t; e_kind = E_term } ]
      else begin
        (* park at the trace end unless the last segment already parked *)
        match List.rev segs with
        | (_, Some _) :: _ -> [ { e_oid = oid; e_tau = last_t; e_kind = E_seg None } ]
        | _ -> []
      end
    in
    ((news :: bound_evs) @ final, !moving, !stationary)

(* The MOD accepts one update per instant, strictly increasing (paper,
   Definition 3) — but a real trace samples many objects at the same tick.
   Serialize collisions: within a group of equal-time events (ordered by
   oid) the j-th is deferred by j·δ, δ chosen well inside the gap to the
   next distinct event time, and every deferred segment is re-aimed at its
   target so moving samples are still hit exactly.  Deferred parking
   events park up to (old velocity)·(group size)·δ past the sample — an
   arbitrarily small, fully rational slack on top of the quantisation
   bound. *)
let serialize evs =
  let evs =
    List.stable_sort
      (fun a b ->
        let c = Q.compare a.e_tau b.e_tau in
        if c <> 0 then c else compare a.e_oid b.e_oid)
      evs
  in
  (* group by equal time, remembering each group's successor time *)
  let rec groups = function
    | [] -> []
    | e :: rest ->
      let same, later = List.partition (fun e' -> Q.equal e'.e_tau e.e_tau) rest in
      let next = match later with [] -> None | e' :: _ -> Some e'.e_tau in
      (e :: same, next) :: groups later
  in
  let state : (int, Qvec.t * Qvec.t) Hashtbl.t = Hashtbl.create 64 in
  (* (a, b): current trajectory x = a·t + b *)
  let emit acc (ev, tau') =
    match ev.e_kind with
    | E_term -> U.Terminate { oid = ev.e_oid; tau = tau' } :: acc
    | E_new (p, tgt) ->
      let dim = Qvec.dim p in
      let v =
        match tgt with
        | None -> Qvec.zero dim
        | Some { tt; tp } -> Qvec.scale (Q.div Q.one (Q.sub tt tau')) (Qvec.sub tp p)
      in
      let b = Qvec.sub p (Qvec.scale tau' v) in
      Hashtbl.replace state ev.e_oid (v, b);
      U.New { oid = ev.e_oid; tau = tau'; a = v; b } :: acc
    | E_seg tgt ->
      let a, b = Hashtbl.find state ev.e_oid in
      let pos = Qvec.add (Qvec.scale tau' a) b in
      let v =
        match tgt with
        | None -> Qvec.zero (Qvec.dim pos)
        | Some { tt; tp } ->
          Qvec.scale (Q.div Q.one (Q.sub tt tau')) (Qvec.sub tp pos)
      in
      if Qvec.equal v a then acc (* velocity unchanged: no update needed *)
      else begin
        Hashtbl.replace state ev.e_oid (v, Qvec.sub pos (Qvec.scale tau' v));
        U.Chdir { oid = ev.e_oid; tau = tau'; a = v } :: acc
      end
  in
  let acc =
    List.fold_left
      (fun acc (group, next) ->
        let k = List.length group in
        let tau = (List.hd group).e_tau in
        let delta =
          if k = 1 then Q.zero
          else
            let gap =
              match next with
              | Some n -> Q.sub n tau
              | None -> Q.one (* nothing follows: any positive slack works *)
            in
            Q.div gap (Q.of_int (2 * k))
        in
        fst
          (List.fold_left
             (fun (acc, j) ev ->
               let tau' = Q.add tau (Q.mul (Q.of_int j) delta) in
               (emit acc (ev, tau'), j + 1))
             (acc, 0) group))
      [] (groups evs)
  in
  List.rev acc

let segment_full ~quant ~terminate samples =
  let quant2 = Q.mul quant quant in
  let groups = by_object samples in
  let plans = List.map (plan_object ~quant2 ~terminate) groups in
  let updates = serialize (List.concat_map (fun (e, _, _) -> e) plans) in
  let moving = List.fold_left (fun a (_, m, _) -> a + m) 0 plans in
  let stationary = List.fold_left (fun a (_, _, s) -> a + s) 0 plans in
  (updates, List.length groups, moving, stationary)

let segment ?(quant = default_quant) ?(terminate = false) samples =
  let updates, _, _, _ = segment_full ~quant ~terminate samples in
  updates

type stats = {
  samples : int;
  objects : int;
  updates : int;
  moving_segments : int;
  stationary_segments : int;
}

let stats_of ~samples (updates, objects, moving, stationary) =
  {
    samples;
    objects;
    updates = List.length updates;
    moving_segments = moving;
    stationary_segments = stationary;
  }

let segment_stats ?(quant = default_quant) samples =
  stats_of ~samples:(List.length samples)
    (segment_full ~quant ~terminate:false samples)

let csv_to_updates ?(dim = 2) ?(quant = default_quant) ?(terminate = false)
    content =
  match parse_csv ~dim content with
  | Error _ as e -> e
  | Ok samples ->
    let ((updates, _, _, _) as full) = segment_full ~quant ~terminate samples in
    Ok (updates, stats_of ~samples:(List.length samples) full)
