(* The instrumentation boundary.  Hot paths (engine batches, WAL appends)
   hold a [Sink.t] — three closures — and the default is {!noop}, so an
   uninstrumented engine pays one physical-equality test per batch and
   nothing else.  {!of_registry} builds a live sink that resolves metric
   names to registry handles once and caches them, so steady-state cost is
   one hashtable hit per call. *)

type t = {
  count : string -> int -> unit;     (* monotonic counter increment *)
  observe : string -> float -> unit; (* histogram observation *)
  set : string -> float -> unit;     (* gauge assignment *)
}

let noop = { count = (fun _ _ -> ()); observe = (fun _ _ -> ()); set = (fun _ _ -> ()) }

let active t = t != noop

let count t name n = t.count name n
let observe t name v = t.observe name v
let set t name v = t.set name v

let wall = Unix.gettimeofday

(* Time [f] and observe the wall-clock duration under [name]; free on the
   no-op sink. *)
let time t name f =
  if t == noop then f ()
  else begin
    let t0 = wall () in
    Fun.protect ~finally:(fun () -> t.observe name (wall () -. t0)) f
  end

let of_registry reg =
  (* One mutex guards all three handle caches: sinks are shared across
     session/monitor/repl threads and Hashtbl is not thread-safe. *)
  let cache_m = Mutex.create () in
  let counters : (string, Registry.counter) Hashtbl.t = Hashtbl.create 32 in
  let gauges : (string, Registry.gauge) Hashtbl.t = Hashtbl.create 16 in
  let histos : (string, Histo.t) Hashtbl.t = Hashtbl.create 16 in
  let cached tbl make name =
    Mutex.lock cache_m;
    let v =
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
        let v = try make name with e -> Mutex.unlock cache_m; raise e in
        Hashtbl.add tbl name v;
        v
    in
    Mutex.unlock cache_m;
    v
  in
  (* Attach the glossary HELP text (when the name has one) at handle
     creation, so sink-counted metrics export with a [# HELP] line. *)
  let counter name =
    cached counters (fun n -> Registry.counter ?help:(Help.find n) reg n) name
  in
  let gauge name =
    cached gauges (fun n -> Registry.gauge ?help:(Help.find n) reg n) name
  in
  let histo name =
    cached histos (fun n -> Registry.histogram ?help:(Help.find n) reg n) name
  in
  { count = (fun name n -> Registry.add (counter name) n);
    observe = (fun name v -> Histo.observe (histo name) v);
    set = (fun name v -> Registry.set (gauge name) v);
  }
