(** HELP strings for exported metrics.

    One table, keyed by metric name, consulted by {!Sink.of_registry} when
    a handle is first created, so the Prometheus rendering ({!Export})
    carries a [# HELP] line for every listed metric.  The table is the
    code-side half of the README metric glossary: the [test/obs] parity
    test diffs the two, so a metric added here without a glossary row (or
    vice versa) fails CI. *)

val find : string -> string option
(** HELP text for a metric name; [None] for unlisted names (the exporter
    then omits the [# HELP] line, as before). *)

val all : (string * string) list
(** The whole table, in declaration order — for the parity test. *)
