(* Lightweight span tracer.  A span records wall-clock start/stop
   (Unix.gettimeofday) and process-CPU start/stop (Sys.time — monotone
   non-decreasing, so durations survive wall-clock adjustments), its nesting
   depth at open time, and timestamped event annotations.  Finished spans
   land in a bounded ring buffer: a long-running monitor can trace forever
   in constant memory, keeping the most recent [capacity] spans.

   Cross-process stitching: a span may carry a {!ctx} — a (trace id, span
   id) pair that rides moqp frames as a `trace=<id>/<span>` attribute — and
   every tracer carries a host label, so spans harvested from several
   tracers (primary, follower, client) can be correlated into one causal
   trace.  {!record} inserts an already-measured span (start + duration)
   directly into the ring; that is how pipeline stages observed on other
   threads (queue wait, link transit) become spans without a begin/end
   bracket on the recording thread. *)

type ctx = { trace_id : int; span_id : int }

let ctx_to_string c = Printf.sprintf "%x/%x" c.trace_id c.span_id

let ctx_of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
    let a = String.sub s 0 i in
    let b = String.sub s (i + 1) (String.length s - i - 1) in
    (match (int_of_string_opt ("0x" ^ a), int_of_string_opt ("0x" ^ b)) with
     | Some trace_id, Some span_id when trace_id >= 0 && span_id >= 0 ->
       Some { trace_id; span_id }
     | _ -> None)

(* Process-global id generator: a splitmix-style counter seeded from wall
   clock + pid, masked to 60 bits so ids stay positive on 64-bit OCaml and
   render compactly in hex. *)
let id_state =
  ref
    (Hashtbl.hash (Unix.gettimeofday ()) lxor (Unix.getpid () lsl 20)
     lxor Hashtbl.hash (Sys.executable_name))

let id_m = Mutex.create ()

let fresh_id () =
  Mutex.lock id_m;
  let z = !id_state + 0x2545F4914F6CDD1D in
  id_state := z;
  Mutex.unlock id_m;
  let z = (z lxor (z lsr 30)) * 0x27BB2EE687B0B0FD in
  let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D in
  (z lxor (z lsr 31)) land 0xFFF_FFFF_FFFF_FFF

let new_ctx () = { trace_id = fresh_id (); span_id = fresh_id () }
let child_ctx c = { c with span_id = fresh_id () }

type span = {
  id : int;
  name : string;
  depth : int;
  ctx : ctx option;  (* cross-process correlation, when propagated *)
  host : string;     (* tracer host label at record time *)
  wall_start : float;
  cpu_start : float;
  mutable wall_stop : float;
  mutable cpu_stop : float;
  mutable events : (float * string) list; (* (wall time, note), newest first *)
  mutable closed : bool;
}

type t = {
  capacity : int;
  ring : span option array;
  mutable pos : int;       (* next write slot *)
  mutable finished : int;  (* total spans ever finished *)
  mutable dropped : int;   (* finished spans evicted by the ring *)
  mutable stack : span list;
  mutable next_id : int;
  mutable host : string;
  epoch : float;           (* wall time at creation; offsets are relative *)
  m : Mutex.t;             (* spans are begun/ended/recorded from many threads *)
}

let create ?(capacity = 512) ?(host = "") () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; pos = 0; finished = 0; dropped = 0;
    stack = []; next_id = 0; host; epoch = Unix.gettimeofday (); m = Mutex.create () }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let epoch t = t.epoch
let host t = t.host
let set_host t h = locked t @@ fun () -> t.host <- h
let finished_count t = locked t @@ fun () -> t.finished
let dropped_count t = locked t @@ fun () -> t.dropped
let open_count t = locked t @@ fun () -> List.length t.stack

let begin_span ?ctx t name =
  locked t @@ fun () ->
  let s =
    { id = t.next_id; name; depth = List.length t.stack; ctx; host = t.host;
      wall_start = Unix.gettimeofday (); cpu_start = Sys.time ();
      wall_stop = nan; cpu_stop = nan; events = []; closed = false }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- s :: t.stack;
  s

let annotate s note =
  if not s.closed then s.events <- (Unix.gettimeofday (), note) :: s.events

let push_finished t s =
  if t.ring.(t.pos) <> None then t.dropped <- t.dropped + 1;
  t.ring.(t.pos) <- Some s;
  t.pos <- (t.pos + 1) mod t.capacity;
  t.finished <- t.finished + 1

let end_span t s =
  locked t @@ fun () ->
  if not s.closed then begin
    s.wall_stop <- Unix.gettimeofday ();
    s.cpu_stop <- Sys.time ();
    s.closed <- true;
    t.stack <- List.filter (fun x -> x != s) t.stack;
    push_finished t s
  end

(* Insert an already-measured span: [start] is an absolute wall time, [dur]
   wall seconds.  CPU time is unknown for externally-measured intervals and
   reports as zero. *)
let record ?(depth = 0) ?ctx t ~name ~start ~dur () =
  locked t @@ fun () ->
  let s =
    { id = t.next_id; name; depth; ctx; host = t.host;
      wall_start = start; cpu_start = 0.0;
      wall_stop = start +. dur; cpu_stop = 0.0; events = []; closed = true }
  in
  t.next_id <- t.next_id + 1;
  push_finished t s;
  s

let with_span ?ctx t name f =
  let s = begin_span ?ctx t name in
  Fun.protect ~finally:(fun () -> end_span t s) f

(* Finished spans, oldest retained first. *)
let spans t =
  locked t @@ fun () ->
  let out = ref [] in
  for k = t.capacity - 1 downto 0 do
    let i = (t.pos + k) mod t.capacity in
    match t.ring.(i) with Some s -> out := s :: !out | None -> ()
  done;
  !out

let duration s = s.wall_stop -. s.wall_start
let cpu_duration s = s.cpu_stop -. s.cpu_start
let events s = List.rev s.events
let span_name s = s.name
let span_depth s = s.depth
let span_ctx (s : span) = s.ctx
let span_host (s : span) = s.host
let span_start (s : span) = s.wall_start
let span_stop (s : span) = s.wall_stop

let span_tag (s : span) =
  match (s.host, s.ctx) with
  | "", None -> ""
  | h, None -> Printf.sprintf " [%s]" h
  | "", Some c -> Printf.sprintf " [%s]" (ctx_to_string c)
  | h, Some c -> Printf.sprintf " [%s %s]" h (ctx_to_string c)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf fmt "%*s[%+9.6fs] %s (%.3f ms wall, %.3f ms cpu)%s@,"
        (2 * s.depth) "" (s.wall_start -. t.epoch) s.name
        (1e3 *. duration s) (1e3 *. cpu_duration s) (span_tag s);
      List.iter
        (fun (at, note) ->
          Format.fprintf fmt "%*s  - [%+9.6fs] %s@," (2 * s.depth) "" (at -. t.epoch) note)
        (events s))
    (spans t);
  if dropped_count t > 0 then
    Format.fprintf fmt "(%d earlier spans evicted by the %d-span ring)@,"
      (dropped_count t) t.capacity;
  Format.fprintf fmt "@]"

let to_json t =
  let span_json s =
    Json.Obj
      ([ ("id", Json.Int s.id);
         ("name", Json.Str s.name);
         ("depth", Json.Int s.depth);
         ("start_s", Json.Float (s.wall_start -. t.epoch));
         ("wall_s", Json.Float (duration s));
         ("cpu_s", Json.Float (cpu_duration s));
       ]
       @ (match s.host with "" -> [] | h -> [ ("host", Json.Str h) ])
       @ (match s.ctx with
          | None -> []
          | Some c -> [ ("trace", Json.Str (ctx_to_string c)) ])
       @ [ ("events",
            Json.List
              (List.map
                 (fun (at, note) ->
                   Json.Obj [ ("at_s", Json.Float (at -. t.epoch)); ("note", Json.Str note) ])
                 (events s)));
         ])
  in
  Json.Obj
    [ ("finished", Json.Int (finished_count t));
      ("dropped", Json.Int (dropped_count t));
      ("spans", Json.List (List.map span_json (spans t)));
    ]
