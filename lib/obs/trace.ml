(* Lightweight span tracer.  A span records wall-clock start/stop
   (Unix.gettimeofday) and process-CPU start/stop (Sys.time — monotone
   non-decreasing, so durations survive wall-clock adjustments), its nesting
   depth at open time, and timestamped event annotations.  Finished spans
   land in a bounded ring buffer: a long-running monitor can trace forever
   in constant memory, keeping the most recent [capacity] spans. *)

type span = {
  id : int;
  name : string;
  depth : int;
  wall_start : float;
  cpu_start : float;
  mutable wall_stop : float;
  mutable cpu_stop : float;
  mutable events : (float * string) list; (* (wall time, note), newest first *)
  mutable closed : bool;
}

type t = {
  capacity : int;
  ring : span option array;
  mutable pos : int;       (* next write slot *)
  mutable finished : int;  (* total spans ever finished *)
  mutable dropped : int;   (* finished spans evicted by the ring *)
  mutable stack : span list;
  mutable next_id : int;
  epoch : float;           (* wall time at creation; offsets are relative *)
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; pos = 0; finished = 0; dropped = 0;
    stack = []; next_id = 0; epoch = Unix.gettimeofday () }

let epoch t = t.epoch
let finished_count t = t.finished
let dropped_count t = t.dropped
let open_count t = List.length t.stack

let begin_span t name =
  let s =
    { id = t.next_id; name; depth = List.length t.stack;
      wall_start = Unix.gettimeofday (); cpu_start = Sys.time ();
      wall_stop = nan; cpu_stop = nan; events = []; closed = false }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- s :: t.stack;
  s

let annotate s note =
  if not s.closed then s.events <- (Unix.gettimeofday (), note) :: s.events

let end_span t s =
  if not s.closed then begin
    s.wall_stop <- Unix.gettimeofday ();
    s.cpu_stop <- Sys.time ();
    s.closed <- true;
    t.stack <- List.filter (fun x -> x != s) t.stack;
    if t.ring.(t.pos) <> None then t.dropped <- t.dropped + 1;
    t.ring.(t.pos) <- Some s;
    t.pos <- (t.pos + 1) mod t.capacity;
    t.finished <- t.finished + 1
  end

let with_span t name f =
  let s = begin_span t name in
  Fun.protect ~finally:(fun () -> end_span t s) f

(* Finished spans, oldest retained first. *)
let spans t =
  let out = ref [] in
  for k = t.capacity - 1 downto 0 do
    let i = (t.pos + k) mod t.capacity in
    match t.ring.(i) with Some s -> out := s :: !out | None -> ()
  done;
  !out

let duration s = s.wall_stop -. s.wall_start
let cpu_duration s = s.cpu_stop -. s.cpu_start
let events s = List.rev s.events
let span_name s = s.name
let span_depth s = s.depth

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf fmt "%*s[%+9.6fs] %s (%.3f ms wall, %.3f ms cpu)@,"
        (2 * s.depth) "" (s.wall_start -. t.epoch) s.name
        (1e3 *. duration s) (1e3 *. cpu_duration s);
      List.iter
        (fun (at, note) ->
          Format.fprintf fmt "%*s  - [%+9.6fs] %s@," (2 * s.depth) "" (at -. t.epoch) note)
        (events s))
    (spans t);
  if t.dropped > 0 then
    Format.fprintf fmt "(%d earlier spans evicted by the %d-span ring)@," t.dropped t.capacity;
  Format.fprintf fmt "@]"

let to_json t =
  let span_json s =
    Json.Obj
      [ ("id", Json.Int s.id);
        ("name", Json.Str s.name);
        ("depth", Json.Int s.depth);
        ("start_s", Json.Float (s.wall_start -. t.epoch));
        ("wall_s", Json.Float (duration s));
        ("cpu_s", Json.Float (cpu_duration s));
        ("events",
         Json.List
           (List.map
              (fun (at, note) ->
                Json.Obj [ ("at_s", Json.Float (at -. t.epoch)); ("note", Json.Str note) ])
              (events s)));
      ]
  in
  Json.Obj
    [ ("finished", Json.Int t.finished);
      ("dropped", Json.Int t.dropped);
      ("spans", Json.List (List.map span_json (spans t)));
    ]
