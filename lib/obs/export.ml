(* Registry exporters: Prometheus text exposition (format version 0.0.4)
   and a JSON snapshot carrying the quantile summaries.  Metrics render in
   name order, so both outputs are deterministic for a given registry
   state — the Prometheus rendering is pinned by a golden test. *)

let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; anything else is
   mapped to '_' so a hostile or buggy metric name cannot corrupt the
   exposition stream. *)
let sanitize_name name =
  if name = "" then "_"
  else
    String.mapi
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
        | '0' .. '9' when i > 0 -> c
        | _ -> '_')
      name

(* HELP text escaping per exposition format 0.0.4: backslash and newline
   are the only escaped characters in HELP lines. *)
let escape_help h =
  let b = Buffer.create (String.length h + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    h;
  Buffer.contents b

let prometheus reg =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let help name h = if h <> "" then line "# HELP %s %s" name (escape_help h) in
  List.iter
    (function
      | Registry.Counter c ->
        let name = sanitize_name (Registry.counter_name c) in
        help name (Registry.counter_help c);
        line "# TYPE %s counter" name;
        line "%s %d" name (Registry.value c)
      | Registry.Gauge g ->
        let name = sanitize_name (Registry.gauge_name g) in
        help name (Registry.gauge_help g);
        line "# TYPE %s gauge" name;
        line "%s %s" name (num (Registry.gauge_value g))
      | Registry.Histogram h ->
        let name = sanitize_name (Histo.name h) in
        help name (Histo.help h);
        line "# TYPE %s histogram" name;
        List.iter
          (fun (ub, cum) -> line "%s_bucket{le=\"%s\"} %d" name (num ub) cum)
          (Histo.cumulative h);
        line "%s_bucket{le=\"+Inf\"} %d" name (Histo.count h);
        line "%s_sum %s" name (num (Histo.sum h));
        line "%s_count %d" name (Histo.count h))
    (Registry.items reg);
  Buffer.contents b

let histogram_json h =
  let f v = if Float.is_nan v then Json.Null else Json.Float v in
  Json.Obj
    [ ("count", Json.Int (Histo.count h));
      ("sum", f (Histo.sum h));
      ("mean", f (Histo.mean h));
      ("min", f (Histo.min_value h));
      ("max", f (Histo.max_value h));
      ("p50", f (Histo.quantile h 0.50));
      ("p90", f (Histo.quantile h 0.90));
      ("p99", f (Histo.quantile h 0.99));
    ]

let json reg =
  let counters, gauges, histos =
    List.fold_left
      (fun (cs, gs, hs) m ->
        match m with
        | Registry.Counter c ->
          ((Registry.counter_name c, Json.Int (Registry.value c)) :: cs, gs, hs)
        | Registry.Gauge g ->
          (cs, (Registry.gauge_name g, Json.Float (Registry.gauge_value g)) :: gs, hs)
        | Registry.Histogram h -> (cs, gs, (Histo.name h, histogram_json h) :: hs))
      ([], [], []) (Registry.items reg)
  in
  Json.Obj
    [ ("counters", Json.Obj (List.rev counters));
      ("gauges", Json.Obj (List.rev gauges));
      ("histograms", Json.Obj (List.rev histos));
    ]

let json_string reg = Json.to_string (json reg)
