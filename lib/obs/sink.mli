(** The instrumentation boundary between the engine/durable hot paths and
    the metrics registry.

    Components take a [Sink.t] (defaulting to {!noop}) instead of a
    registry, so the functors stay agnostic of the telemetry backend and an
    uninstrumented run costs one physical-equality test per batch. *)

type t = {
  count : string -> int -> unit;     (** monotonic counter increment *)
  observe : string -> float -> unit; (** histogram observation *)
  set : string -> float -> unit;     (** gauge assignment *)
}

val noop : t
(** Discards everything.  Compare with [==]/{!active} for fast-path guards. *)

val active : t -> bool
(** [t != noop]. *)

val count : t -> string -> int -> unit
val observe : t -> string -> float -> unit
val set : t -> string -> float -> unit

val wall : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); exposed so instrumented
    libraries need no direct unix dependency. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run [f], observing its wall-clock duration under [name]; calls [f]
    directly on the no-op sink. *)

val of_registry : Registry.t -> t
(** Live sink: metric names resolve to registry handles once and are
    cached. *)
