(** Leveled structured logger (JSON-lines or human text).

    One process-global configuration; emission is mutex-serialized so lines
    from concurrent threads never interleave.  Fields are [Json.t] values:

    {[ Log.info ~fields:[ ("addr", Json.Str addr); ("n", Json.Int n) ] "accepted" ]} *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> (level, string) result
val level_name : level -> string

val set_level : level -> unit
(** Minimum level that is emitted (default [Info]). *)

val set_json : bool -> unit
(** [true] renders one JSON object per line; [false] (default) renders
    [TIMESTAMP LEVEL msg key=value ...]. *)

val set_out : out_channel -> unit
(** Destination channel (default [stderr]). *)

val enabled : level -> bool

val debug : ?fields:(string * Json.t) list -> string -> unit
val info : ?fields:(string * Json.t) list -> string -> unit
val warn : ?fields:(string * Json.t) list -> string -> unit
val error : ?fields:(string * Json.t) list -> string -> unit

val debugf : ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val infof : ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val warnf : ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val errorf : ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
